module helium

go 1.24
