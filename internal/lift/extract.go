package lift

import (
	"errors"
	"fmt"
	"sort"

	"helium/internal/ir"
	"helium/internal/isa"
	"helium/internal/par"
	"helium/internal/trace"
)

// stencilRadius bounds how far (in pixels) an input load may sit from the
// output pixel it feeds.  It resolves the inherent ambiguity of mapping a
// padding byte to coordinates: a byte one position left of a row start is
// both (x=-1, y) and (x=stride-1, y-1), and only the candidate near the
// output pixel is a plausible stencil tap.
const stencilRadius = 4

// maxTreeNodes bounds the size of a single extracted expression tree.
const maxTreeNodes = 1 << 16

// guardNodeBudget bounds the slice of a single branch condition during
// guard collection.  Data-dependent guards (clamp compares) are tiny; loop
// machinery over large images can chain thousands of counter increments,
// and a condition that blows this budget is treated as loop control and
// skipped rather than failing the sample.
const guardNodeBudget = 4096

// maxGuards bounds how many distinct data-dependent branch conditions one
// sample may be predicated on (2^maxGuards paths could exist in theory;
// real clamp diamonds produce two or three).
const maxGuards = 16

// errTreeTooLarge marks a slice that exceeded its node budget.
var errTreeTooLarge = errors.New("expression tree too large")

// Guard records one data-dependent conditional branch the sample's dynamic
// window executed: Cond is the canonicalized predicate that holds when the
// branch is taken, Taken the outcome observed for this sample.
type Guard struct {
	// Key is Cond's canonical key, shared by every sample that executed
	// the same static compare.
	Key   string
	Cond  *ir.Expr
	Taken bool
}

// SampleTree is the expression tree extracted for one output sample,
// together with the branch predicates that guarded it.
type SampleTree struct {
	X, Y, C int
	Expr    *ir.Expr
	Guards  []Guard
}

// extractor performs backward slicing over one captured instruction trace.
type extractor struct {
	tr   *trace.InstTrace
	prog *isa.Program
	bufs *Buffers

	// xo, yo, curChannel identify the output sample currently being
	// sliced, used to pick input-coordinate candidates and channel deltas.
	xo, yo     int
	curChannel int

	// abs switches inputLoad to absolute coordinates: loads carry the
	// input pixel itself rather than an offset from an output pixel.  The
	// reduction recognizer uses this mode, where there is no output pixel
	// to be relative to.
	abs bool

	// outWrites lists (sorted) the trace positions that wrote into the
	// output region; consecutive entries delimit the per-sample dynamic
	// windows guard collection scans.
	outWrites []int

	// memo caches resolved references by their defining write, so shared
	// subexpressions become shared nodes within one sample's tree.
	memo  map[memoKey]*ir.Expr
	nodes int
	// limit is the active node budget: maxTreeNodes for the value slice,
	// temporarily tightened while slicing branch conditions.
	limit int
}

type memoKey struct {
	writeSeq int
	addr     uint64
	width    uint8
}

// Extract builds one expression tree per written output sample by slicing
// backward from the final write to each sample through the dynamic
// instruction trace (paper sections 4.5-4.7).  Trees terminate at input
// buffer loads (turned into coordinate-relative taps), read-only data
// segment accesses (constants when directly addressed, table lookups when
// indexed), immediates, and values the host wrote before tracing began
// (environment constants).
//
// Per-sample slices are independent (the memo is reset per sample), so the
// samples are distributed over a bounded worker pool sized by GOMAXPROCS.
func Extract(tr *trace.InstTrace, prog *isa.Program, bufs *Buffers) ([]SampleTree, error) {
	return ExtractWorkers(tr, prog, bufs, 0)
}

// ExtractWorkers is Extract with an explicit worker count (<= 0 means
// GOMAXPROCS).  The result is identical to a serial extraction regardless
// of worker count: trees land at their sample's row-major position and the
// reported error is the one a serial scan would have hit first.
func ExtractWorkers(tr *trace.InstTrace, prog *isa.Program, bufs *Buffers, workers int) ([]SampleTree, error) {
	return extractTrees(tr, prog, bufs, workers, false)
}

// extractTrees is the extraction driver behind Extract/ExtractWorkers.
// With abs set, input loads carry absolute input coordinates instead of
// output-relative offsets — the mode the affine refit uses when the
// relative trees refused to collapse.
func extractTrees(tr *trace.InstTrace, prog *isa.Program, bufs *Buffers, workers int, abs bool) ([]SampleTree, error) {
	out := bufs.Out
	total := out.Rows * out.RowBytes
	trees := make([]SampleTree, total)

	// The write index builds lazily on first use; force it here so the
	// workers only ever read the trace (the tracer usually built it
	// already, in which case this is free).
	tr.EnsureWriteIndex()
	outWrites := outputWrites(tr, out)

	// One sample per chunk: a single backward slice is heavy enough that
	// the hand-out cursor never dominates, and finer chunks balance the
	// very uneven per-sample slicing cost.
	err := par.For(total, 1, workers, func(int) func(int, int) error {
		ex := &extractor{tr: tr, prog: prog, bufs: bufs, outWrites: outWrites, abs: abs}
		return func(start, end int) error {
			for i := start; i < end; i++ {
				y, b := i/out.RowBytes, i%out.RowBytes
				x, c := b/out.Channels, b%out.Channels
				e, guards, err := ex.sample(x, y, c)
				if err != nil {
					return fmt.Errorf("lift: extracting output sample (%d,%d,%d): %w", x, y, c, err)
				}
				trees[i] = SampleTree{X: x, Y: y, C: c, Expr: e, Guards: guards}
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return trees, nil
}

// outputWrites lists, in trace order, the positions whose effects wrote
// into the output region.  Consecutive output writes delimit the dynamic
// window of one output sample, which is where guard collection looks for
// the branches predicating that sample's value.
func outputWrites(tr *trace.InstTrace, out OutputDesc) []int {
	lo := out.Base
	hi := out.Base + uint64(out.Rows-1)*uint64(out.Stride) + uint64(out.RowBytes)
	var seqs []int
	for i := range tr.Insts {
		for _, ef := range tr.Insts[i].Effects {
			d := ef.Dst
			if d.Space == trace.SpaceMem && d.Addr+uint64(d.Width) > lo && d.Addr < hi {
				seqs = append(seqs, tr.Insts[i].Seq)
				break
			}
		}
	}
	return seqs
}

// sample slices the final write to output sample (x, y, c) and collects
// the data-dependent branch guards of its dynamic window.
func (ex *extractor) sample(x, y, c int) (*ir.Expr, []Guard, error) {
	addr := ex.bufs.Out.Addr(x, y, c)
	writes := ex.tr.WritesTo(addr)
	if len(writes) == 0 {
		return nil, nil, fmt.Errorf("no trace write to %#x", addr)
	}
	seq := writes[len(writes)-1]
	di := &ex.tr.Insts[seq]
	ef := findEffect(di, addr, 1)
	if ef == nil {
		return nil, nil, fmt.Errorf("writer %v has no effect covering %#x", di.Op, addr)
	}

	ex.xo, ex.yo, ex.curChannel = x, y, c
	ex.memo = make(map[memoKey]*ir.Expr)
	ex.nodes = 0
	ex.limit = maxTreeNodes

	e, err := ex.effectExpr(di, ef)
	if err != nil {
		return nil, nil, err
	}
	// Narrow a wider store down to the addressed byte.
	if off := addr - ef.Dst.Addr; off != 0 || ef.Dst.Width != 1 {
		if ef.Dst.Float {
			return nil, nil, fmt.Errorf("output byte %#x is a narrow view of a %d-byte float store; float narrowing is not liftable", addr, ef.Dst.Width)
		}
		e = &ir.Expr{Op: ir.OpExtract, Val: int64(off), Width: 1, SrcWidth: int(ef.Dst.Width), Args: []*ir.Expr{e}}
	}
	guards, err := ex.collectGuards(seq)
	if err != nil {
		return nil, nil, err
	}
	return e, guards, nil
}

// collectGuards scans the sample's dynamic window — from the previous
// output write (exclusive) to the sample's own write at seq — for
// conditional branches whose condition depends on input data, and records
// each as a (predicate, outcome) guard.  Conditions without input loads
// (loop counters, tile bounds) are discarded; conditions whose slice blows
// the guard budget are treated as loop machinery and skipped.
func (ex *extractor) collectGuards(seq int) ([]Guard, error) {
	i := sort.SearchInts(ex.outWrites, seq)
	start := 0
	if i > 0 {
		start = ex.outWrites[i-1] + 1
	}
	// Branches taken while an earlier stage's reduction was still filling
	// its table belong to that stage, not to this sample: the first
	// sample's window would otherwise swallow the whole accumulation
	// phase, whose data-dependent loop bounds look like guards.
	if tb := ex.bufs.Tbl; tb != nil && tb.LastWrite+1 > start {
		start = tb.LastWrite + 1
	}
	var guards []Guard
	byKey := make(map[string]int)
	for s := start; s < seq; s++ {
		di := &ex.tr.Insts[s]
		if !di.Op.IsCondJump() {
			continue
		}
		// Each guard gets its own budget on top of whatever has been
		// sliced so far — deliberately not capped at maxTreeNodes, or a
		// long window of skipped loop conditions would saturate the
		// counter and make every later (genuine) guard look too large.
		ex.limit = ex.nodes + guardNodeBudget
		cond, err := ex.condExpr(s, di.Op)
		ex.limit = maxTreeNodes
		if err != nil {
			if errors.Is(err, errTreeTooLarge) {
				continue
			}
			return nil, fmt.Errorf("guard at seq %d: %w", s, err)
		}
		cond = Canonicalize(cond)
		if !containsLoad(cond) {
			continue
		}
		key := cond.Key()
		if prev, ok := byKey[key]; ok {
			if guards[prev].Taken != di.Taken {
				return nil, fmt.Errorf("guard at seq %d: condition %s observed with both outcomes in one sample window", s, cond)
			}
			continue
		}
		byKey[key] = len(guards)
		guards = append(guards, Guard{Key: key, Cond: cond, Taken: di.Taken})
		if len(guards) > maxGuards {
			return nil, fmt.Errorf("sample window is predicated on more than %d data-dependent branches", maxGuards)
		}
	}
	return guards, nil
}

// containsLoad reports whether the expression reads any input sample.
func containsLoad(e *ir.Expr) bool {
	found := false
	visitLoads(e, func(*ir.Expr) { found = true })
	return found
}

// condExpr lifts the condition of the conditional jump or set opcode cc
// evaluated at trace position seq, as the predicate that holds when the
// branch is taken (the set condition is true).  It slices the operands of
// the flags-producing compare and maps the condition code onto the IR's
// comparison operators.
func (ex *extractor) condExpr(seq int, cc isa.Opcode) (*ir.Expr, error) {
	w, ok := ex.tr.LastWriteBefore(seq, trace.FlagsAddr, 1)
	if !ok {
		return nil, fmt.Errorf("%v at seq %d has no flags producer in the trace", cc, seq)
	}
	pdi := &ex.tr.Insts[w]
	ef := findEffect(pdi, trace.FlagsAddr, 1)
	if ef == nil {
		return nil, fmt.Errorf("flags producer %v at seq %d has no flags effect", pdi.Op, w)
	}
	width := int(pdi.Width)
	if width == 0 {
		width = 4
	}

	switch ef.Op {
	case trace.OpCmp:
		a, err := ex.refExpr(pdi.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		b, err := ex.refExpr(pdi.Seq, ef.Srcs[1])
		if err != nil {
			return nil, err
		}
		return predAfterCmp(cc, width, a, b, pdi)

	case trace.OpTest:
		a, err := ex.refExpr(pdi.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		b, err := ex.refExpr(pdi.Seq, ef.Srcs[1])
		if err != nil {
			return nil, err
		}
		v := a
		if a.Key() != b.Key() {
			v = ir.Bin(ir.OpAnd, width, a, b)
		}
		return predOfValue(cc, width, v, pdi)

	default:
		// An arithmetic instruction set the flags: the sign and zero
		// conditions reflect its stored result, which the value slice can
		// reconstruct.  Conditions that need the overflow or carry flag of
		// an arithmetic result are not reconstructible from the value alone.
		for i := range pdi.Effects {
			vf := &pdi.Effects[i]
			if vf.Dst.Space != trace.SpaceFlags && vf.Dst.Space != trace.SpaceNone && vf.Op == ef.Op {
				v, err := ex.effectExpr(pdi, vf)
				if err != nil {
					return nil, err
				}
				return predOfValue(cc, width, v, pdi)
			}
		}
		return nil, fmt.Errorf("%v at %#x consumes flags of %v at %#x, which has no reconstructible value; the nearest liftable pattern compares with cmp or test",
			cc, ex.tr.Insts[seq].Addr, pdi.Op, pdi.Addr)
	}
}

// predAfterCmp maps a condition code evaluated after cmp(a, b) onto the
// IR comparison that is true exactly when the condition holds.
func predAfterCmp(cc isa.Opcode, w int, a, b *ir.Expr, pdi *trace.DynInst) (*ir.Expr, error) {
	switch cc {
	case isa.JZ, isa.SETZ:
		return ir.Bin(ir.OpCmpEq, w, a, b), nil
	case isa.JNZ, isa.SETNZ:
		return ir.Bin(ir.OpCmpNe, w, a, b), nil
	case isa.JL:
		return ir.Bin(ir.OpCmpLtS, w, a, b), nil
	case isa.JGE:
		return ir.Bin(ir.OpCmpLeS, w, b, a), nil
	case isa.JLE:
		return ir.Bin(ir.OpCmpLeS, w, a, b), nil
	case isa.JG:
		return ir.Bin(ir.OpCmpLtS, w, b, a), nil
	case isa.JB, isa.SETB:
		return ir.Bin(ir.OpCmpLtU, w, a, b), nil
	case isa.JNB, isa.SETNB:
		return ir.Bin(ir.OpCmpLeU, w, b, a), nil
	case isa.JBE:
		return ir.Bin(ir.OpCmpLeU, w, a, b), nil
	case isa.JA:
		return ir.Bin(ir.OpCmpLtU, w, b, a), nil
	}
	return nil, fmt.Errorf("%v after %v at %#x mixes sign and overflow flags and is not liftable; the nearest supported patterns are the signed (jl/jge/jle/jg) and unsigned (jb/jnb/jbe/ja) compare-and-branch forms",
		cc, pdi.Op, pdi.Addr)
}

// predOfValue maps a condition code onto a predicate over a reconstructed
// result value (test a, a; arithmetic flag producers).
func predOfValue(cc isa.Opcode, w int, v *ir.Expr, pdi *trace.DynInst) (*ir.Expr, error) {
	zero := ir.Const(0)
	switch cc {
	case isa.JZ, isa.SETZ:
		return ir.Bin(ir.OpCmpEq, w, v, zero), nil
	case isa.JNZ, isa.SETNZ:
		return ir.Bin(ir.OpCmpNe, w, v, zero), nil
	case isa.JS:
		return ir.Bin(ir.OpCmpLtS, w, v, zero), nil
	case isa.JNS:
		return ir.Bin(ir.OpCmpLeS, w, zero, v), nil
	}
	return nil, fmt.Errorf("%v after %v at %#x needs carry or overflow state a value slice cannot reconstruct; the nearest supported pattern is an explicit cmp before the branch",
		cc, pdi.Op, pdi.Addr)
}

// findEffect returns the effect of di whose destination covers the byte
// range [addr, addr+width).
func findEffect(di *trace.DynInst, addr uint64, width uint8) *trace.Effect {
	want := trace.Ref{Space: trace.SpaceMem, Addr: addr, Width: width}
	for i := range di.Effects {
		ef := &di.Effects[i]
		if ef.Dst.Space != trace.SpaceNone && ef.Dst.Space != trace.SpaceImm && ef.Dst.Contains(want) {
			return ef
		}
	}
	return nil
}

// refExpr resolves one operand reference observed at trace position seq.
func (ex *extractor) refExpr(seq int, ref trace.Ref) (*ir.Expr, error) {
	if ex.nodes > ex.limit {
		return nil, fmt.Errorf("%w (over %d nodes)", errTreeTooLarge, ex.limit)
	}
	switch ref.Space {
	case trace.SpaceImm:
		ex.nodes++
		if ref.Float {
			return ir.ConstF(ref.FVal), nil
		}
		return ir.Const(int64(ref.Val)), nil
	case trace.SpaceFlags:
		return nil, fmt.Errorf("%v at %#x (seq %d) consumes raw flag bits as data; only setcc, conditional branches and cmp/test flag flows are liftable",
			ex.tr.Insts[seq].Op, ex.tr.Insts[seq].Addr, seq)
	}

	// Input-region reads terminate the slice as stencil taps, even when an
	// earlier stage of the same filter wrote them: stage boundaries are
	// where multi-stage slicing stops (the producing stage is lifted
	// separately).  For first-stage inputs the bytes predate the trace and
	// this matches the no-trace-write path below.
	if ref.Space == trace.SpaceMem {
		if e, ok := ex.inputLoad(ref); ok {
			ex.nodes++
			return e, nil
		}
	}

	// Reads of an earlier stage's reduction table terminate the slice as
	// stage-input table lookups, the same way input-region reads terminate
	// as taps: the producing reduction is lifted separately, and slicing
	// through its accumulation would drag the whole reduction into every
	// consumer tree.
	if tb := ex.bufs.Tbl; tb != nil && ref.Space == trace.SpaceMem &&
		ref.Addr >= tb.Base && ref.Addr+uint64(ref.Width) <= tb.Base+uint64(tb.Size) {
		return ex.tableInRef(seq, ref, tb)
	}

	// A previous traced write defines the value: slice through it.
	if w, ok := ex.tr.LastWriteBefore(seq, ref.Addr, ref.Width); ok {
		key := memoKey{writeSeq: w, addr: ref.Addr, width: ref.Width}
		if e, hit := ex.memo[key]; hit {
			return e, nil
		}
		e, err := ex.throughWrite(w, ref)
		if err != nil {
			return nil, err
		}
		ex.memo[key] = e
		return e, nil
	}

	// No trace write: the value predates tracing.
	if ref.Space == trace.SpaceMem {
		if seg := ex.dataSegment(ref); seg != nil {
			return ex.segmentRef(seq, ref, seg)
		}
	}
	// Environment constant: host-initialized state (parameters, stack
	// contents) observed with a fixed value.
	ex.nodes++
	if ref.Float {
		return ir.ConstF(ref.FVal), nil
	}
	return ir.Const(int64(ref.Val)), nil
}

// throughWrite continues the slice through the effect that last wrote ref.
func (ex *extractor) throughWrite(w int, ref trace.Ref) (*ir.Expr, error) {
	di := &ex.tr.Insts[w]
	ef := findEffect(di, ref.Addr, ref.Width)
	if ef == nil {
		return nil, fmt.Errorf("%v at %#x (seq %d) wrote only part of %v; partial-write slicing is unsupported — the nearest liftable pattern stores the full destination width before any wider read (split the store, or read back at the stored width)",
			di.Op, di.Addr, w, ref)
	}
	e, err := ex.effectExpr(di, ef)
	if err != nil {
		return nil, err
	}
	// Reading a narrower view of a wider destination (AL out of EAX, a
	// byte out of a dword store) extracts the addressed bytes.
	if off := ref.Addr - ef.Dst.Addr; off != 0 || ref.Width != ef.Dst.Width {
		if ef.Dst.Float {
			return nil, fmt.Errorf("seq %d: narrow read of a %d-byte float value; float narrowing is not liftable", w, ef.Dst.Width)
		}
		ex.nodes++
		e = &ir.Expr{Op: ir.OpExtract, Val: int64(off), Width: int(ref.Width), SrcWidth: int(ef.Dst.Width), Args: []*ir.Expr{e}}
	}
	return e, nil
}

// effectExpr turns one architectural assignment into an expression node.
func (ex *extractor) effectExpr(di *trace.DynInst, ef *trace.Effect) (*ir.Expr, error) {
	ex.nodes++
	w := int(ef.Dst.Width)

	simple := map[trace.ExprOp]ir.Op{
		trace.OpAdd: ir.OpAdd, trace.OpSub: ir.OpSub, trace.OpMul: ir.OpMul,
		trace.OpMulHi: ir.OpMulHi, trace.OpDiv: ir.OpDiv, trace.OpMod: ir.OpMod,
		trace.OpAnd: ir.OpAnd, trace.OpOr: ir.OpOr, trace.OpXor: ir.OpXor,
		trace.OpShl: ir.OpShl, trace.OpShr: ir.OpShr, trace.OpSar: ir.OpSar,
		trace.OpNot: ir.OpNot, trace.OpNeg: ir.OpNeg,
		trace.OpFAdd: ir.OpFAdd, trace.OpFSub: ir.OpFSub,
		trace.OpFMul: ir.OpFMul, trace.OpFDiv: ir.OpFDiv,
	}

	switch ef.Op {
	case trace.OpIdentity:
		return ex.refExpr(di.Seq, ef.Srcs[0])

	case trace.OpZExt, trace.OpSExt:
		child, err := ex.refExpr(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		op := ir.OpZExt
		if ef.Op == trace.OpSExt {
			op = ir.OpSExt
		}
		return &ir.Expr{Op: op, Width: w, SrcWidth: int(ef.Srcs[0].Width), Args: []*ir.Expr{child}}, nil

	case trace.OpLea:
		// srcs = [base, index, scale, disp]: expand the address arithmetic.
		base, err := ex.refExpr(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		index, err := ex.refExpr(di.Seq, ef.Srcs[1])
		if err != nil {
			return nil, err
		}
		scale := int64(ef.Srcs[2].Val)
		disp := int64(int32(ef.Srcs[3].Val))
		scaled := index
		if scale != 1 {
			scaled = ir.Bin(ir.OpMul, w, index, ir.Const(scale))
		}
		return ir.Bin(ir.OpAdd, w, ir.Bin(ir.OpAdd, w, base, scaled), ir.Const(disp)), nil

	case trace.OpCall:
		child, err := ex.refExpr(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		return &ir.Expr{Op: ir.OpCall, Sym: di.Sym, Args: []*ir.Expr{child}}, nil

	case trace.OpIntToFP:
		child, err := ex.refExpr(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		return &ir.Expr{Op: ir.OpIntToFP, SrcWidth: int(ef.Srcs[0].Width), Args: []*ir.Expr{child}}, nil

	case trace.OpFPToInt:
		child, err := ex.refExpr(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		return &ir.Expr{Op: ir.OpFPToInt, Width: w, Args: []*ir.Expr{child}}, nil

	case trace.OpSelectSet:
		// setcc materializes a flag condition as a 0/1 byte: lift the
		// condition itself, which the IR comparisons express directly.
		cond, err := ex.condExpr(di.Seq, di.Op)
		if err != nil {
			return nil, err
		}
		return cond, nil
	}

	op, ok := simple[ef.Op]
	if !ok {
		return nil, fmt.Errorf("%v at %#x (seq %d): effect op %v is not liftable", di.Op, di.Addr, di.Seq, ef.Op)
	}
	if len(ef.Srcs) != arity(op) {
		return nil, fmt.Errorf("%v at %#x (seq %d): %v with %d operands reads the carry flag as data; flag-carrying chains (adc/sbb) are not liftable — the nearest supported pattern is plain add/sub at the full operand width",
			di.Op, di.Addr, di.Seq, ef.Op, len(ef.Srcs))
	}
	args := make([]*ir.Expr, len(ef.Srcs))
	for i, src := range ef.Srcs {
		child, err := ex.refExpr(di.Seq, src)
		if err != nil {
			return nil, err
		}
		args[i] = child
	}
	return &ir.Expr{Op: op, Width: w, Args: args}, nil
}

func arity(op ir.Op) int {
	switch op {
	case ir.OpNot, ir.OpNeg:
		return 1
	}
	return 2
}

// inputLoad tries to interpret a memory read as an input buffer tap.  The
// address maps to candidate (x, y) coordinates through the input geometry;
// the candidate within stencilRadius of the output pixel wins.  In
// absolute mode (the reduction recognizer, which has no output pixel) the
// load instead carries the input pixel itself and must land inside the
// interior scanline.
func (ex *extractor) inputLoad(ref trace.Ref) (*ir.Expr, bool) {
	if ref.Width != 1 {
		return nil, false
	}
	in := ex.bufs.In
	t := int64(ref.Addr) - int64(in.Base)
	y0 := floorDiv(t, in.Stride)
	rem := t - y0*in.Stride

	if ex.abs {
		if rem < 0 || rem >= in.Stride {
			return nil, false
		}
		var xi, ci int
		if in.Interleaved {
			xi, ci = int(rem)/in.Channels, int(rem)%in.Channels
		} else {
			xi, ci = int(rem), 0
		}
		return ir.Load(xi, int(y0), ci), true
	}

	best := (*ir.Expr)(nil)
	bestDist := stencilRadius*2 + 1
	for _, cand := range [][2]int64{
		{y0, rem},
		{y0 + 1, rem - in.Stride},
		{y0 - 1, rem + in.Stride},
	} {
		yi, xb := int(cand[0]), cand[1]
		var xi, ci int
		if in.Interleaved {
			xi, ci = int(floorDiv(xb, int64(in.Channels))), int(xb-floorDiv(xb, int64(in.Channels))*int64(in.Channels))
		} else {
			xi, ci = int(xb), 0
		}
		dx, dy := xi-ex.xo, yi-ex.yo
		if abs(dx) > stencilRadius || abs(dy) > stencilRadius {
			continue
		}
		if d := abs(dx) + abs(dy); d < bestDist {
			bestDist = d
			best = ir.Load(dx, dy, ci-ex.curC())
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// curC returns the channel of the sample being sliced; for planar inputs
// loads always carry channel 0, so the delta is taken against 0.
func (ex *extractor) curC() int {
	if !ex.bufs.In.Interleaved {
		return 0
	}
	return ex.curChannel
}

// dataSegment returns the program data segment containing ref, if any.
func (ex *extractor) dataSegment(ref trace.Ref) *isa.Segment {
	for i := range ex.prog.Data {
		seg := &ex.prog.Data[i]
		base := uint64(seg.Addr)
		if ref.Addr >= base && ref.Addr+uint64(ref.Width) <= base+uint64(len(seg.Data)) {
			return seg
		}
	}
	return nil
}

// segmentRef lifts a read-only data segment access: a fixed address is a
// compiled-in constant, a register-indexed address is a table lookup whose
// index expression is reconstructed from the address registers (paper
// section 4.7, table lookups such as Photoshop's brightness LUT).
func (ex *extractor) segmentRef(seq int, ref trace.Ref, seg *isa.Segment) (*ir.Expr, error) {
	di := &ex.tr.Insts[seq]
	if len(di.AddrRefs) == 0 || !di.HasMem || di.MemAddr != ref.Addr {
		ex.nodes++
		if ref.Float {
			return ir.ConstF(ref.FVal), nil
		}
		return ir.Const(int64(ref.Val)), nil
	}

	// Rebuild the index expression from the static operand's address
	// registers: index = base + index*scale + (disp - segment base).
	pc, ok := ex.prog.Lookup(di.Addr)
	if !ok {
		return nil, fmt.Errorf("seq %d: traced address %#x is not in the program", seq, di.Addr)
	}
	inst := ex.prog.Insts[pc]
	var memOp *isa.Operand
	for _, o := range []*isa.Operand{&inst.Dst, &inst.Src, &inst.Src2} {
		if o.Kind == isa.KindMem {
			memOp = o
			break
		}
	}
	if memOp == nil {
		return nil, fmt.Errorf("seq %d: table access without a memory operand", seq)
	}
	var terms []*ir.Expr
	if memOp.Base != isa.RegNone {
		e, err := ex.addrRegExpr(seq, di, memOp.Base)
		if err != nil {
			return nil, err
		}
		terms = append(terms, e)
	}
	if memOp.Index != isa.RegNone {
		e, err := ex.addrRegExpr(seq, di, memOp.Index)
		if err != nil {
			return nil, err
		}
		if memOp.Scale != 1 {
			e = ir.Bin(ir.OpMul, 4, e, ir.Const(int64(memOp.Scale)))
		}
		terms = append(terms, e)
	}
	if disp := int64(memOp.Disp) - int64(seg.Addr); disp != 0 || len(terms) == 0 {
		terms = append(terms, ir.Const(disp))
	}
	index := terms[0]
	for _, t := range terms[1:] {
		index = ir.Bin(ir.OpAdd, 4, index, t)
	}
	if int(ref.Width) == 0 {
		return nil, fmt.Errorf("seq %d: zero-width table access", seq)
	}
	ex.nodes++
	return &ir.Expr{
		Op:    ir.OpTable,
		Table: seg.Data,
		Elem:  int(ref.Width),
		Args:  []*ir.Expr{index},
	}, nil
}

// tableInRef lifts a read of an earlier stage's reduction table as a
// stage-input table lookup: the slot index is reconstructed from the
// access's scaled index register (mirroring the reduction recognizer's own
// index reconstruction), and the base register plus displacement must
// resolve to the table base so the index expression is in slots.  The
// table must be finished: a read ordered before the table's final write
// observes a partially built table, which no bind-at-eval-time table
// input can model.
func (ex *extractor) tableInRef(seq int, ref trace.Ref, tb *TableDesc) (*ir.Expr, error) {
	di := &ex.tr.Insts[seq]
	if seq < tb.LastWrite {
		return nil, fmt.Errorf("%v at %#x (seq %d) reads the reduction table at %#x before the table is fully written (final table write at seq %d); a consuming stage must run after the whole reduction",
			di.Op, di.Addr, seq, ref.Addr, tb.LastWrite)
	}
	if int(ref.Width) != tb.Elem {
		return nil, fmt.Errorf("%v at %#x (seq %d) reads %d bytes of a reduction table with %d-byte slots; only whole-slot table reads are liftable",
			di.Op, di.Addr, seq, ref.Width, tb.Elem)
	}
	if !di.HasMem || di.MemAddr != ref.Addr {
		return nil, fmt.Errorf("%v at %#x (seq %d) reads the reduction table without an addressable memory operand", di.Op, di.Addr, seq)
	}
	pc, ok := ex.prog.Lookup(di.Addr)
	if !ok {
		return nil, fmt.Errorf("seq %d: traced address %#x is not in the program", seq, di.Addr)
	}
	inst := ex.prog.Insts[pc]
	var memOp *isa.Operand
	for _, o := range []*isa.Operand{&inst.Dst, &inst.Src, &inst.Src2} {
		if o.Kind == isa.KindMem {
			memOp = o
			break
		}
	}
	if memOp == nil {
		return nil, fmt.Errorf("seq %d: table read without a memory operand", seq)
	}

	// Constant residual of the addressing, in slots: the base register's
	// observed value plus the displacement, relative to the table base.
	// The base register is the table pointer — loop-invariant host state —
	// so its observed value stands in for its slice; a data-dependent base
	// yields per-sample residuals whose trees cannot collapse, and
	// unification rejects the stage downstream.
	baseVal := int64(0)
	if memOp.Base != isa.RegNone {
		found := false
		for _, r := range di.AddrRefs {
			if r.Space == trace.SpaceReg && r.Addr == trace.RegAddr(memOp.Base) {
				baseVal, found = int64(r.Val), true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("seq %d: table base register %v not captured", seq, memOp.Base)
		}
	}
	residual := baseVal + int64(int32(memOp.Disp)) - int64(tb.Base)
	if residual%int64(tb.Elem) != 0 {
		return nil, fmt.Errorf("seq %d: table read residual %d is not slot-aligned (element width %d)", seq, residual, tb.Elem)
	}

	var idx *ir.Expr
	if memOp.Index == isa.RegNone {
		idx = ir.Const(residual / int64(tb.Elem))
	} else {
		if int(memOp.Scale) != tb.Elem {
			return nil, fmt.Errorf("seq %d: table read scales its index by %d but slots are %d bytes wide", seq, memOp.Scale, tb.Elem)
		}
		e, err := ex.addrRegExpr(seq, di, memOp.Index)
		if err != nil {
			return nil, err
		}
		idx = e
		if k := residual / int64(tb.Elem); k != 0 {
			idx = ir.Bin(ir.OpAdd, 4, idx, ir.Const(k))
		}
	}
	ex.nodes++
	return &ir.Expr{Op: ir.OpTableIn, Elem: tb.Elem, Args: []*ir.Expr{idx}}, nil
}

// addrRegExpr resolves the captured pre-execution value reference of an
// address register of instruction di.
func (ex *extractor) addrRegExpr(seq int, di *trace.DynInst, r isa.Reg) (*ir.Expr, error) {
	addr := trace.RegAddr(r)
	for _, ref := range di.AddrRefs {
		if ref.Space == trace.SpaceReg && ref.Addr == addr && int(ref.Width) == r.Width() {
			return ex.refExpr(seq, ref)
		}
	}
	return nil, fmt.Errorf("seq %d: address register %v not captured", seq, r)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
