package lift

import (
	"fmt"

	"helium/internal/ir"
	"helium/internal/isa"
	"helium/internal/par"
	"helium/internal/trace"
)

// stencilRadius bounds how far (in pixels) an input load may sit from the
// output pixel it feeds.  It resolves the inherent ambiguity of mapping a
// padding byte to coordinates: a byte one position left of a row start is
// both (x=-1, y) and (x=stride-1, y-1), and only the candidate near the
// output pixel is a plausible stencil tap.
const stencilRadius = 4

// maxTreeNodes bounds the size of a single extracted expression tree.
const maxTreeNodes = 1 << 16

// SampleTree is the expression tree extracted for one output sample.
type SampleTree struct {
	X, Y, C int
	Expr    *ir.Expr
}

// extractor performs backward slicing over one captured instruction trace.
type extractor struct {
	tr   *trace.InstTrace
	prog *isa.Program
	bufs *Buffers

	// xo, yo, curChannel identify the output sample currently being
	// sliced, used to pick input-coordinate candidates and channel deltas.
	xo, yo     int
	curChannel int

	// memo caches resolved references by their defining write, so shared
	// subexpressions become shared nodes within one sample's tree.
	memo  map[memoKey]*ir.Expr
	nodes int
}

type memoKey struct {
	writeSeq int
	addr     uint64
	width    uint8
}

// Extract builds one expression tree per written output sample by slicing
// backward from the final write to each sample through the dynamic
// instruction trace (paper sections 4.5-4.7).  Trees terminate at input
// buffer loads (turned into coordinate-relative taps), read-only data
// segment accesses (constants when directly addressed, table lookups when
// indexed), immediates, and values the host wrote before tracing began
// (environment constants).
//
// Per-sample slices are independent (the memo is reset per sample), so the
// samples are distributed over a bounded worker pool sized by GOMAXPROCS.
func Extract(tr *trace.InstTrace, prog *isa.Program, bufs *Buffers) ([]SampleTree, error) {
	return ExtractWorkers(tr, prog, bufs, 0)
}

// ExtractWorkers is Extract with an explicit worker count (<= 0 means
// GOMAXPROCS).  The result is identical to a serial extraction regardless
// of worker count: trees land at their sample's row-major position and the
// reported error is the one a serial scan would have hit first.
func ExtractWorkers(tr *trace.InstTrace, prog *isa.Program, bufs *Buffers, workers int) ([]SampleTree, error) {
	out := bufs.Out
	total := out.Rows * out.RowBytes
	trees := make([]SampleTree, total)

	// The write index builds lazily on first use; force it here so the
	// workers only ever read the trace (the tracer usually built it
	// already, in which case this is free).
	tr.EnsureWriteIndex()

	// One sample per chunk: a single backward slice is heavy enough that
	// the hand-out cursor never dominates, and finer chunks balance the
	// very uneven per-sample slicing cost.
	err := par.For(total, 1, workers, func(int) func(int, int) error {
		ex := &extractor{tr: tr, prog: prog, bufs: bufs}
		return func(start, end int) error {
			for i := start; i < end; i++ {
				y, b := i/out.RowBytes, i%out.RowBytes
				x, c := b/out.Channels, b%out.Channels
				e, err := ex.sample(x, y, c)
				if err != nil {
					return fmt.Errorf("lift: extracting output sample (%d,%d,%d): %w", x, y, c, err)
				}
				trees[i] = SampleTree{X: x, Y: y, C: c, Expr: e}
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return trees, nil
}

// sample slices the final write to output sample (x, y, c).
func (ex *extractor) sample(x, y, c int) (*ir.Expr, error) {
	addr := ex.bufs.Out.Addr(x, y, c)
	writes := ex.tr.WritesTo(addr)
	if len(writes) == 0 {
		return nil, fmt.Errorf("no trace write to %#x", addr)
	}
	seq := writes[len(writes)-1]
	di := &ex.tr.Insts[seq]
	ef := findEffect(di, addr, 1)
	if ef == nil {
		return nil, fmt.Errorf("writer %v has no effect covering %#x", di.Op, addr)
	}

	ex.xo, ex.yo, ex.curChannel = x, y, c
	ex.memo = make(map[memoKey]*ir.Expr)
	ex.nodes = 0

	e, err := ex.effectExpr(di, ef)
	if err != nil {
		return nil, err
	}
	// Narrow a wider store down to the addressed byte.
	if off := addr - ef.Dst.Addr; off != 0 || ef.Dst.Width != 1 {
		if ef.Dst.Float {
			return nil, fmt.Errorf("output byte %#x is a narrow view of a %d-byte float store; float narrowing is not liftable", addr, ef.Dst.Width)
		}
		e = &ir.Expr{Op: ir.OpExtract, Val: int64(off), Width: 1, SrcWidth: int(ef.Dst.Width), Args: []*ir.Expr{e}}
	}
	return e, nil
}

// findEffect returns the effect of di whose destination covers the byte
// range [addr, addr+width).
func findEffect(di *trace.DynInst, addr uint64, width uint8) *trace.Effect {
	want := trace.Ref{Space: trace.SpaceMem, Addr: addr, Width: width}
	for i := range di.Effects {
		ef := &di.Effects[i]
		if ef.Dst.Space != trace.SpaceNone && ef.Dst.Space != trace.SpaceImm && ef.Dst.Contains(want) {
			return ef
		}
	}
	return nil
}

// refExpr resolves one operand reference observed at trace position seq.
func (ex *extractor) refExpr(seq int, ref trace.Ref) (*ir.Expr, error) {
	if ex.nodes > maxTreeNodes {
		return nil, fmt.Errorf("expression tree exceeds %d nodes", maxTreeNodes)
	}
	switch ref.Space {
	case trace.SpaceImm:
		ex.nodes++
		if ref.Float {
			return ir.ConstF(ref.FVal), nil
		}
		return ir.Const(int64(ref.Val)), nil
	case trace.SpaceFlags:
		return nil, fmt.Errorf("flags dependence in a value slice (conditional data flow is not liftable here)")
	}

	// A previous traced write defines the value: slice through it.
	if w, ok := ex.tr.LastWriteBefore(seq, ref.Addr, ref.Width); ok {
		key := memoKey{writeSeq: w, addr: ref.Addr, width: ref.Width}
		if e, hit := ex.memo[key]; hit {
			return e, nil
		}
		e, err := ex.throughWrite(w, ref)
		if err != nil {
			return nil, err
		}
		ex.memo[key] = e
		return e, nil
	}

	// No trace write: the value predates tracing.
	if ref.Space == trace.SpaceMem {
		if e, ok := ex.inputLoad(ref); ok {
			ex.nodes++
			return e, nil
		}
		if seg := ex.dataSegment(ref); seg != nil {
			return ex.segmentRef(seq, ref, seg)
		}
	}
	// Environment constant: host-initialized state (parameters, stack
	// contents) observed with a fixed value.
	ex.nodes++
	if ref.Float {
		return ir.ConstF(ref.FVal), nil
	}
	return ir.Const(int64(ref.Val)), nil
}

// throughWrite continues the slice through the effect that last wrote ref.
func (ex *extractor) throughWrite(w int, ref trace.Ref) (*ir.Expr, error) {
	di := &ex.tr.Insts[w]
	ef := findEffect(di, ref.Addr, ref.Width)
	if ef == nil {
		return nil, fmt.Errorf("seq %d (%v) partially overlaps %v; partial-write slicing is unsupported", w, di.Op, ref)
	}
	e, err := ex.effectExpr(di, ef)
	if err != nil {
		return nil, err
	}
	// Reading a narrower view of a wider destination (AL out of EAX, a
	// byte out of a dword store) extracts the addressed bytes.
	if off := ref.Addr - ef.Dst.Addr; off != 0 || ref.Width != ef.Dst.Width {
		if ef.Dst.Float {
			return nil, fmt.Errorf("seq %d: narrow read of a %d-byte float value; float narrowing is not liftable", w, ef.Dst.Width)
		}
		ex.nodes++
		e = &ir.Expr{Op: ir.OpExtract, Val: int64(off), Width: int(ref.Width), SrcWidth: int(ef.Dst.Width), Args: []*ir.Expr{e}}
	}
	return e, nil
}

// effectExpr turns one architectural assignment into an expression node.
func (ex *extractor) effectExpr(di *trace.DynInst, ef *trace.Effect) (*ir.Expr, error) {
	ex.nodes++
	w := int(ef.Dst.Width)

	simple := map[trace.ExprOp]ir.Op{
		trace.OpAdd: ir.OpAdd, trace.OpSub: ir.OpSub, trace.OpMul: ir.OpMul,
		trace.OpMulHi: ir.OpMulHi, trace.OpDiv: ir.OpDiv, trace.OpMod: ir.OpMod,
		trace.OpAnd: ir.OpAnd, trace.OpOr: ir.OpOr, trace.OpXor: ir.OpXor,
		trace.OpShl: ir.OpShl, trace.OpShr: ir.OpShr, trace.OpSar: ir.OpSar,
		trace.OpNot: ir.OpNot, trace.OpNeg: ir.OpNeg,
		trace.OpFAdd: ir.OpFAdd, trace.OpFSub: ir.OpFSub,
		trace.OpFMul: ir.OpFMul, trace.OpFDiv: ir.OpFDiv,
	}

	switch ef.Op {
	case trace.OpIdentity:
		return ex.refExpr(di.Seq, ef.Srcs[0])

	case trace.OpZExt, trace.OpSExt:
		child, err := ex.refExpr(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		op := ir.OpZExt
		if ef.Op == trace.OpSExt {
			op = ir.OpSExt
		}
		return &ir.Expr{Op: op, Width: w, SrcWidth: int(ef.Srcs[0].Width), Args: []*ir.Expr{child}}, nil

	case trace.OpLea:
		// srcs = [base, index, scale, disp]: expand the address arithmetic.
		base, err := ex.refExpr(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		index, err := ex.refExpr(di.Seq, ef.Srcs[1])
		if err != nil {
			return nil, err
		}
		scale := int64(ef.Srcs[2].Val)
		disp := int64(int32(ef.Srcs[3].Val))
		scaled := index
		if scale != 1 {
			scaled = ir.Bin(ir.OpMul, w, index, ir.Const(scale))
		}
		return ir.Bin(ir.OpAdd, w, ir.Bin(ir.OpAdd, w, base, scaled), ir.Const(disp)), nil

	case trace.OpCall:
		child, err := ex.refExpr(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		return &ir.Expr{Op: ir.OpCall, Sym: di.Sym, Args: []*ir.Expr{child}}, nil

	case trace.OpIntToFP:
		child, err := ex.refExpr(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		return &ir.Expr{Op: ir.OpIntToFP, SrcWidth: int(ef.Srcs[0].Width), Args: []*ir.Expr{child}}, nil

	case trace.OpFPToInt:
		child, err := ex.refExpr(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, err
		}
		return &ir.Expr{Op: ir.OpFPToInt, Width: w, Args: []*ir.Expr{child}}, nil
	}

	op, ok := simple[ef.Op]
	if !ok {
		return nil, fmt.Errorf("seq %d: effect op %v is not liftable", di.Seq, ef.Op)
	}
	if len(ef.Srcs) != arity(op) {
		return nil, fmt.Errorf("seq %d: %v with %d operands (flag-carrying forms are not liftable)", di.Seq, ef.Op, len(ef.Srcs))
	}
	args := make([]*ir.Expr, len(ef.Srcs))
	for i, src := range ef.Srcs {
		child, err := ex.refExpr(di.Seq, src)
		if err != nil {
			return nil, err
		}
		args[i] = child
	}
	return &ir.Expr{Op: op, Width: w, Args: args}, nil
}

func arity(op ir.Op) int {
	switch op {
	case ir.OpNot, ir.OpNeg:
		return 1
	}
	return 2
}

// inputLoad tries to interpret a pre-trace memory read as an input buffer
// tap.  The address maps to candidate (x, y) coordinates through the input
// geometry; the candidate within stencilRadius of the output pixel wins.
func (ex *extractor) inputLoad(ref trace.Ref) (*ir.Expr, bool) {
	if ref.Width != 1 {
		return nil, false
	}
	in := ex.bufs.In
	t := int64(ref.Addr) - int64(in.Base)
	y0 := floorDiv(t, in.Stride)
	rem := t - y0*in.Stride

	best := (*ir.Expr)(nil)
	bestDist := stencilRadius*2 + 1
	for _, cand := range [][2]int64{
		{y0, rem},
		{y0 + 1, rem - in.Stride},
		{y0 - 1, rem + in.Stride},
	} {
		yi, xb := int(cand[0]), cand[1]
		var xi, ci int
		if in.Interleaved {
			xi, ci = int(floorDiv(xb, int64(in.Channels))), int(xb-floorDiv(xb, int64(in.Channels))*int64(in.Channels))
		} else {
			xi, ci = int(xb), 0
		}
		dx, dy := xi-ex.xo, yi-ex.yo
		if abs(dx) > stencilRadius || abs(dy) > stencilRadius {
			continue
		}
		if d := abs(dx) + abs(dy); d < bestDist {
			bestDist = d
			best = ir.Load(dx, dy, ci-ex.curC())
		}
	}
	if best == nil {
		return nil, false
	}
	return best, true
}

// curC returns the channel of the sample being sliced; for planar inputs
// loads always carry channel 0, so the delta is taken against 0.
func (ex *extractor) curC() int {
	if !ex.bufs.In.Interleaved {
		return 0
	}
	return ex.curChannel
}

// dataSegment returns the program data segment containing ref, if any.
func (ex *extractor) dataSegment(ref trace.Ref) *isa.Segment {
	for i := range ex.prog.Data {
		seg := &ex.prog.Data[i]
		base := uint64(seg.Addr)
		if ref.Addr >= base && ref.Addr+uint64(ref.Width) <= base+uint64(len(seg.Data)) {
			return seg
		}
	}
	return nil
}

// segmentRef lifts a read-only data segment access: a fixed address is a
// compiled-in constant, a register-indexed address is a table lookup whose
// index expression is reconstructed from the address registers (paper
// section 4.7, table lookups such as Photoshop's brightness LUT).
func (ex *extractor) segmentRef(seq int, ref trace.Ref, seg *isa.Segment) (*ir.Expr, error) {
	di := &ex.tr.Insts[seq]
	if len(di.AddrRefs) == 0 || !di.HasMem || di.MemAddr != ref.Addr {
		ex.nodes++
		if ref.Float {
			return ir.ConstF(ref.FVal), nil
		}
		return ir.Const(int64(ref.Val)), nil
	}

	// Rebuild the index expression from the static operand's address
	// registers: index = base + index*scale + (disp - segment base).
	inst := ex.prog.At(di.Addr)
	var memOp *isa.Operand
	for _, o := range []*isa.Operand{&inst.Dst, &inst.Src, &inst.Src2} {
		if o.Kind == isa.KindMem {
			memOp = o
			break
		}
	}
	if memOp == nil {
		return nil, fmt.Errorf("seq %d: table access without a memory operand", seq)
	}
	var terms []*ir.Expr
	if memOp.Base != isa.RegNone {
		e, err := ex.addrRegExpr(seq, di, memOp.Base)
		if err != nil {
			return nil, err
		}
		terms = append(terms, e)
	}
	if memOp.Index != isa.RegNone {
		e, err := ex.addrRegExpr(seq, di, memOp.Index)
		if err != nil {
			return nil, err
		}
		if memOp.Scale != 1 {
			e = ir.Bin(ir.OpMul, 4, e, ir.Const(int64(memOp.Scale)))
		}
		terms = append(terms, e)
	}
	if disp := int64(memOp.Disp) - int64(seg.Addr); disp != 0 || len(terms) == 0 {
		terms = append(terms, ir.Const(disp))
	}
	index := terms[0]
	for _, t := range terms[1:] {
		index = ir.Bin(ir.OpAdd, 4, index, t)
	}
	if int(ref.Width) == 0 {
		return nil, fmt.Errorf("seq %d: zero-width table access", seq)
	}
	ex.nodes++
	return &ir.Expr{
		Op:    ir.OpTable,
		Table: seg.Data,
		Elem:  int(ref.Width),
		Args:  []*ir.Expr{index},
	}, nil
}

// addrRegExpr resolves the captured pre-execution value reference of an
// address register of instruction di.
func (ex *extractor) addrRegExpr(seq int, di *trace.DynInst, r isa.Reg) (*ir.Expr, error) {
	addr := trace.RegAddr(r)
	for _, ref := range di.AddrRefs {
		if ref.Space == trace.SpaceReg && ref.Addr == addr && int(ref.Width) == r.Width() {
			return ex.refExpr(seq, ref)
		}
	}
	return nil, fmt.Errorf("seq %d: address register %v not captured", seq, r)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
