// Package lift implements the Helium lifting pipeline: code localization by
// coverage diffing, buffer structure reconstruction from memory traces and
// dumps, backward extraction of per-output-pixel expression trees from the
// dynamic instruction trace, and canonicalization that collapses the trees
// of unrolled and peeled loop copies into a single stencil expression
// (paper sections 3-5).
package lift

import (
	"fmt"
	"sort"

	"helium/internal/isa"
	"helium/internal/trace"
	"helium/internal/vm"
)

// Target is a legacy program under analysis together with the harness that
// plays host.  Setup must reset the machine, load the input data and
// configure the host state; apply selects whether the host asks for the
// filter (the on-run) or only the baseline work (the off-run).
type Target struct {
	Prog  *isa.Program
	Setup func(m *vm.Machine, apply bool)
	Known KnownInput

	// MaxSteps bounds every emulation run the pipeline performs (coverage
	// screening, profiling, tracing); 0 means the VM default.  Fuzzing
	// harnesses set a tight budget so a hostile binary can slow the
	// pipeline down but never hang it.
	MaxSteps uint64
	// MaxTraceInsts bounds the captured instruction trace (0 = unlimited).
	MaxTraceInsts int
}

// KnownInput describes the deterministic input injected by the harness,
// the "known data" buffer reconstruction searches memory for (paper
// section 4.3).
type KnownInput struct {
	Width, Height, Channels int
	// Interleaved selects between planar rows (Width samples) and
	// interleaved rows (Width*Channels samples).
	Interleaved bool
	// Interior holds the row-major interior samples.
	Interior []byte
}

// RowBytes returns the number of interior bytes per scanline.
func (k KnownInput) RowBytes() int {
	if k.Interleaved {
		return k.Width * k.Channels
	}
	return k.Width
}

// Row returns interior row y.
func (k KnownInput) Row(y int) []byte {
	rb := k.RowBytes()
	return k.Interior[y*rb : (y+1)*rb]
}

// Localization is the outcome of two-phase code localization: the filter
// function entry, the coverage difference that isolated it, and the memory
// trace of the profiling run restricted to the difference.
type Localization struct {
	// FilterEntry is the discovered entry address of the filter function.
	FilterEntry uint32
	// Candidates are all dynamic call targets inside the coverage
	// difference, outermost first.
	Candidates []uint32
	// Diff is the set of block leaders covered by the on-run but not the
	// off-run.
	Diff map[uint32]bool
	// OnBlocks and OffBlocks count covered blocks in the two screening
	// runs.
	OnBlocks, OffBlocks int
	// MemTrace is the memory access trace of the difference blocks,
	// collected by the profiling run.
	MemTrace []trace.MemAccess
}

// Localize performs two-phase code localization (paper section 3.1): a
// coverage screening run with the filter applied, one without, a diff to
// isolate filter-only code, and a profiling run instrumenting only the
// difference to collect its memory accesses and dynamic call targets.  The
// filter function is the outermost difference call target: a difference
// target whose call sites all lie inside another difference function is an
// internal helper (for example a tile worker under a tile driver).
func Localize(t Target) (*Localization, error) {
	m := vm.NewMachine(t.Prog)

	t.Setup(m, true)
	on, err := m.RunCoverage(vm.CoverageOptions{MaxSteps: t.MaxSteps})
	if err != nil {
		return nil, reject(PhaseLocalize, fmt.Errorf("lift: on-run coverage: %w", err))
	}
	t.Setup(m, false)
	off, err := m.RunCoverage(vm.CoverageOptions{MaxSteps: t.MaxSteps})
	if err != nil {
		return nil, reject(PhaseLocalize, fmt.Errorf("lift: off-run coverage: %w", err))
	}

	diff := make(map[uint32]bool)
	for b := range on.Blocks {
		if _, ok := off.Blocks[b]; !ok {
			diff[b] = true
		}
	}
	if len(diff) == 0 {
		return nil, reject(PhaseLocalize, fmt.Errorf("lift: coverage diff is empty: the filter flag changed nothing"))
	}

	t.Setup(m, true)
	prof, err := m.RunCoverage(vm.CoverageOptions{
		MaxSteps:         t.MaxSteps,
		InstrumentBlocks: diff,
		TraceMemory:      true,
	})
	if err != nil {
		return nil, reject(PhaseLocalize, fmt.Errorf("lift: profiling run: %w", err))
	}

	candidates := diffCallTargets(prof.CallTargets, diff)
	if len(candidates) == 0 {
		return nil, reject(PhaseLocalize, fmt.Errorf("lift: no call target found inside the coverage diff"))
	}
	ordered := orderOutermost(candidates, prof.CallTargets)

	return &Localization{
		FilterEntry: ordered[0],
		Candidates:  ordered,
		Diff:        diff,
		OnBlocks:    len(on.Blocks),
		OffBlocks:   len(off.Blocks),
		MemTrace:    prof.MemTrace,
	}, nil
}

// diffCallTargets returns the dynamic call targets that are themselves
// difference blocks, i.e. functions only the on-run entered.
func diffCallTargets(callTargets map[uint32]map[uint32]bool, diff map[uint32]bool) []uint32 {
	seen := make(map[uint32]bool)
	var out []uint32
	for _, tgts := range callTargets {
		for tgt := range tgts {
			if diff[tgt] && !seen[tgt] {
				seen[tgt] = true
				out = append(out, tgt)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// orderOutermost sorts candidates so that functions never called from
// inside another candidate's extent come first.  Function extents are
// approximated from the observed call targets: a function spans from its
// entry to the next entered function in address order, which holds for the
// contiguous-function binaries the corpus models.
func orderOutermost(candidates []uint32, callTargets map[uint32]map[uint32]bool) []uint32 {
	starts := append([]uint32(nil), candidates...)
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	extentEnd := func(entry uint32) uint32 {
		for _, s := range starts {
			if s > entry {
				return s
			}
		}
		return ^uint32(0)
	}
	nested := make(map[uint32]bool)
	for site, tgts := range callTargets {
		for tgt := range tgts {
			for _, cand := range candidates {
				if cand != tgt && site >= cand && site < extentEnd(cand) {
					nested[tgt] = true
				}
			}
		}
	}
	out := append([]uint32(nil), candidates...)
	sort.Slice(out, func(i, j int) bool {
		if nested[out[i]] != nested[out[j]] {
			return !nested[out[i]]
		}
		return out[i] < out[j]
	})
	return out
}
