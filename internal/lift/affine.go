// Affine index-map recovery.  A resize loop defeats the translation-based
// unifier: its per-output trees are identical stencils rooted at input
// pixels that move faster (downsample) or slower (upsample) than the
// output coordinate, so the output-relative load offsets differ from
// sample to sample and the trees refuse to collapse.  The refit here
// re-extracts the trees with absolute input coordinates, rebases each
// sample's loads to its own top-left tap, demands that the rebased trees
// are identical, and fits one rational map per axis — input = (a*x+b)/c —
// through the observed tap bases.  Any index arithmetic that is not
// affine in the output coordinate (x*x, data-dependent gather) leaves
// residuals no (a, b, c) explains and is rejected.
package lift

import (
	"fmt"

	"helium/internal/ir"
	"helium/internal/isa"
	"helium/internal/trace"
)

// Affine fit search bounds: strides (numerators) up to maxAffineNum and
// divisors up to maxAffineDen cover every realistic resize ratio while
// keeping the exhaustive fit trivial.
const (
	maxAffineNum = 32
	maxAffineDen = 8
)

// liftAffine retries one stage as an affine-map stencil after the
// translation-based unifier failed.  It returns a kernel with Origin
// (0, 0) whose MapX/MapY carry the fitted index maps and whose load
// offsets are relative to each output pixel's mapped input base.
func liftAffine(name string, tr *trace.InstTrace, prog *isa.Program, bufs *Buffers) (*ir.Kernel, error) {
	trees, err := extractTrees(tr, prog, bufs, 0, true)
	if err != nil {
		return nil, fmt.Errorf("absolute re-extraction: %w", err)
	}
	out := bufs.Out
	w, h, channels := out.Width(), out.Rows, out.Channels

	// Rebase every sample's loads to its own minimal tap and record the
	// per-axis bases; the rebased trees must be one tree per channel.
	reps := make([]*ir.Expr, channels)
	bx := make([]int, w)
	by := make([]int, h)
	seenX := make([]bool, w)
	seenY := make([]bool, h)
	for i := range trees {
		st := &trees[i]
		if len(st.Guards) > 0 {
			return nil, fmt.Errorf("sample (%d,%d) is branch-predicated; the affine refit handles unguarded kernels only", st.X, st.Y)
		}
		minX, minY, any := 0, 0, false
		visitLoads(st.Expr, func(l *ir.Expr) {
			if !any {
				minX, minY, any = l.DX, l.DY, true
				return
			}
			minX, minY = min(minX, l.DX), min(minY, l.DY)
		})
		if !any {
			return nil, fmt.Errorf("sample (%d,%d) reads no input pixels", st.X, st.Y)
		}
		visitLoads(st.Expr, func(l *ir.Expr) {
			l.DX -= minX
			l.DY -= minY
		})
		canon := Canonicalize(st.Expr)
		if reps[st.C] == nil {
			reps[st.C] = canon
		} else if reps[st.C].Key() != canon.Key() {
			return nil, fmt.Errorf("channel %d trees do not differ by a pure translation: sample (%d,%d) computes %s, others %s",
				st.C, st.X, st.Y, canon, reps[st.C])
		}
		// The tap base must separate: the same input column for every
		// output pixel in an output column, and likewise for rows.
		if seenX[st.X] && bx[st.X] != minX {
			return nil, fmt.Errorf("output column %d reads input columns %d and %d; the index map must depend on x alone", st.X, bx[st.X], minX)
		}
		if seenY[st.Y] && by[st.Y] != minY {
			return nil, fmt.Errorf("output row %d reads input rows %d and %d; the index map must depend on y alone", st.Y, by[st.Y], minY)
		}
		bx[st.X], seenX[st.X] = minX, true
		by[st.Y], seenY[st.Y] = minY, true
	}
	for c, r := range reps {
		if r == nil {
			return nil, fmt.Errorf("channel %d produced no samples", c)
		}
	}

	mx, err := fitAxisMap(bx)
	if err != nil {
		return nil, fmt.Errorf("x axis: %w", err)
	}
	my, err := fitAxisMap(by)
	if err != nil {
		return nil, fmt.Errorf("y axis: %w", err)
	}
	return &ir.Kernel{
		Name:      name,
		OutWidth:  w,
		OutHeight: h,
		Channels:  channels,
		MapX:      mx,
		MapY:      my,
		Trees:     reps,
	}, nil
}

// fitAxisMap finds the rational map input = (num*x+off)/den reproducing
// the observed per-output-coordinate tap bases.  Evenly spaced bases fit
// exactly with den 1; otherwise (an upsample's repeating bases) a bounded
// search over den in [2, maxAffineDen] and num in [0, maxAffineNum] tries
// every offset that places base 0 correctly.
func fitAxisMap(b []int) (ir.AxisMap, error) {
	if len(b) == 1 {
		return ir.AxisMap{Num: 1, Den: 1, Off: b[0]}, nil
	}
	d := b[1] - b[0]
	even := true
	for x := 1; x < len(b); x++ {
		if b[x]-b[x-1] != d {
			even = false
			break
		}
	}
	if even {
		if d < 0 {
			return ir.AxisMap{}, fmt.Errorf("tap bases decrease (stride %d); mirrored index maps are not supported", d)
		}
		return ir.AxisMap{Num: d, Den: 1, Off: b[0]}, nil
	}
	for den := 2; den <= maxAffineDen; den++ {
		for num := 0; num <= maxAffineNum; num++ {
			// floor(off/den) must equal b[0], which pins off to one
			// den-sized window.
			for off := b[0] * den; off < (b[0]+1)*den; off++ {
				m := ir.AxisMap{Num: num, Den: den, Off: off}
				ok := true
				for x := range b {
					if m.Apply(x) != b[x] {
						ok = false
						break
					}
				}
				if ok {
					return m, nil
				}
			}
		}
	}
	return ir.AxisMap{}, fmt.Errorf("tap bases %v do not fit an affine map (a*x+b)/c; index arithmetic is not affine in the output coordinate", clipInts(b, 12))
}

// clipInts truncates a slice for error messages.
func clipInts(b []int, n int) []int {
	if len(b) <= n {
		return b
	}
	return b[:n]
}
