package lift

import (
	"errors"
	"fmt"
)

// Phase names the pipeline stage at which a target was rejected.  The set
// is closed: fuzzing and CI count rejections per phase, so a new stage
// gets a new constant here rather than an ad-hoc string.
type Phase string

// Pipeline phases, in execution order.
const (
	PhaseLocalize  Phase = "localize"
	PhaseTrace     Phase = "trace"
	PhaseBuffers   Phase = "buffer-reconstruction"
	PhaseStages    Phase = "stage-discovery"
	PhaseExtract   Phase = "extract"
	PhaseUnify     Phase = "unify"
	PhaseCanon     Phase = "canon"
	PhaseReduction Phase = "reduction"
	PhaseCompile   Phase = "compile"
	PhaseVerify    Phase = "verify"
)

// Phases returns every pipeline phase in execution order.  Metric layers
// pre-register one instrument per phase from this list, so rejection and
// timing series exist (at zero) before the first lift runs.
func Phases() []Phase {
	return []Phase{
		PhaseLocalize, PhaseTrace, PhaseBuffers, PhaseStages,
		PhaseExtract, PhaseUnify, PhaseCanon, PhaseReduction,
		PhaseCompile, PhaseVerify,
	}
}

// Rejection is the typed diagnostic the pipeline returns for a target
// outside its pattern language.  It is the lifter's graceful-degradation
// contract: any binary, however hostile, either lifts and verifies
// bit-exact or comes back as a *Rejection naming the phase that gave up
// and why — never a panic, hang or silent wrong answer.  Callers that
// need to distinguish "this binary is not liftable" from environmental
// failures test for it with errors.As or AsRejection.
type Rejection struct {
	// Phase is the pipeline stage that rejected the target.
	Phase Phase
	// Err is the underlying diagnostic (which names the offending
	// instruction and the nearest supported pattern where one exists).
	Err error
}

// Error renders the rejection with its phase.
func (r *Rejection) Error() string {
	return fmt.Sprintf("lift: rejected at %s: %v", r.Phase, r.Err)
}

// Unwrap exposes the underlying diagnostic to errors.Is/As.
func (r *Rejection) Unwrap() error { return r.Err }

// reject wraps err as a Rejection at the given phase.  A nil error stays
// nil and an error that is already a Rejection keeps its original phase
// (the innermost stage knows best why it gave up).
func reject(phase Phase, err error) error {
	if err == nil {
		return nil
	}
	var r *Rejection
	if errors.As(err, &r) {
		return err
	}
	return &Rejection{Phase: phase, Err: err}
}

// AsRejection extracts the typed rejection inside err, if any.
func AsRejection(err error) (*Rejection, bool) {
	var r *Rejection
	if errors.As(err, &r) {
		return r, true
	}
	return nil, false
}
