package lift_test

import (
	"bytes"
	"testing"

	"helium/internal/legacy"
	"helium/internal/lift"
	"helium/internal/schedule"
)

// TestScheduledCorpusMatchesVM runs every corpus kernel under a spread of
// schedules — materialize with explicit tiles, lanes and worker counts,
// and (for multi-stage pipelines) sliding-window fusion at several window
// sizes — and demands byte-exact agreement with the legacy binary's own
// output.  This is the schedule layer's core contract: a schedule changes
// only the execution strategy, never the result.
func TestScheduledCorpusMatchesVM(t *testing.T) {
	cfg := legacy.Config{Width: 30, Height: 19, Seed: 5}
	for _, k := range legacy.Kernels() {
		inst := k.Instantiate(cfg)
		res, err := lift.Lift(k.Name, target(inst))
		if err != nil {
			t.Fatalf("%s: lift: %v", k.Name, err)
		}
		c, err := res.VerifyCompiled(3)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		nStages := len(res.Stages)
		scheds := []*schedule.Schedule{
			schedule.Default(),
			{Workers: 1},
			{Workers: 4, Stages: fillStages(nStages, schedule.Stage{TileW: 16, TileH: 4})},
			{Workers: 2, Stages: fillStages(nStages, schedule.Stage{Lane: 32})},
			{Workers: 3, Stages: fillStages(nStages, schedule.Stage{TileW: 8, TileH: 2, Lane: 64})},
		}
		if c.Fusable() {
			scheds = append(scheds,
				&schedule.Schedule{Fusion: schedule.SlidingWindow},
				&schedule.Schedule{Fusion: schedule.SlidingWindow, WindowRows: 5, Workers: 4},
			)
		}
		for _, sc := range scheds {
			if err := c.VerifySchedule(sc); err != nil {
				t.Errorf("%s: schedule %s: %v", k.Name, sc, err)
			}
		}
	}
}

func fillStages(n int, st schedule.Stage) []schedule.Stage {
	out := make([]schedule.Stage, n)
	for i := range out {
		out[i] = st
	}
	return out
}

// TestBlur2pFusedBitExactAndSmall is the acceptance test of the tentpole:
// sliding-window execution of the two-pass blur matches the materializing
// baseline (and the VM) bit for bit, while its only intermediate lives in
// a ring a fraction of the plane height.
func TestBlur2pFusedBitExactAndSmall(t *testing.T) {
	k, ok := legacy.Lookup("blur2p")
	if !ok {
		t.Fatal("blur2p missing from the corpus")
	}
	cfg := legacy.Config{Width: 40, Height: 32, Seed: 2}
	res, err := lift.Lift(k.Name, target(k.Instantiate(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := res.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Fusable() {
		t.Fatal("blur2p must be fusable")
	}

	rings, err := c.RingRows(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rings) != 1 {
		t.Fatalf("ring count %d, want 1", len(rings))
	}
	interH := res.Stages[0].Out.Rows
	if rings[0] >= interH {
		t.Fatalf("minimal ring holds %d rows — as much as the %d-row intermediate plane", rings[0], interH)
	}
	if rings[0] != 3 {
		t.Errorf("blur2p vertical pass has a 3-row footprint; ring = %d rows", rings[0])
	}

	src := res.MaterializeInput()
	want, err := c.Eval(src) // materializing baseline
	if err != nil {
		t.Fatal(err)
	}
	vmOut, err := res.VMOutput()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, vmOut) {
		t.Fatal("materializing baseline does not match the VM")
	}
	for _, sc := range []*schedule.Schedule{
		{Fusion: schedule.SlidingWindow, Workers: 1},
		{Fusion: schedule.SlidingWindow, Workers: 1, WindowRows: 8},
		{Fusion: schedule.SlidingWindow, Workers: 4},
		{Fusion: schedule.SlidingWindow, Workers: 4, WindowRows: 6},
	} {
		got, err := c.EvalScheduled(src, sc)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if !bytes.Equal(got, want) {
			bad := 0
			for i := range got {
				if got[i] != want[i] {
					bad++
				}
			}
			t.Errorf("%s: fused output differs from materializing on %d/%d samples", sc, bad, len(want))
		}
	}
}

// TestScheduleValidationSurfacesInEval pins that invalid schedules are
// rejected before execution rather than silently ignored.
func TestScheduleValidationSurfacesInEval(t *testing.T) {
	k, _ := legacy.Lookup("boxblur3")
	res, err := lift.Lift(k.Name, target(k.Instantiate(legacy.Config{Width: 16, Height: 8, Seed: 1})))
	if err != nil {
		t.Fatal(err)
	}
	c, err := res.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EvalScheduled(res.MaterializeInput(), &schedule.Schedule{Fusion: "bogus"}); err == nil {
		t.Fatal("bogus fusion strategy must be rejected")
	}
	if _, err := c.EvalScheduled(res.MaterializeInput(), &schedule.Schedule{Fusion: schedule.SlidingWindow}); err == nil {
		t.Fatal("sliding-window on a single-stage kernel must be rejected")
	}
}
