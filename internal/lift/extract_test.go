package lift_test

import (
	"strings"
	"testing"

	"helium/internal/isa"
	"helium/internal/lift"
	"helium/internal/trace"
)

// Synthetic single-sample traces: one output byte at outBase, one known
// input byte at inBase, so rejection paths and flag lifting can be
// exercised without building a whole legacy binary.
const (
	synthInBase  = 0x4000
	synthOutBase = 0x5000
)

func synthBufs() *lift.Buffers {
	return &lift.Buffers{
		In:  lift.InputDesc{Base: synthInBase, Stride: 16, Channels: 1},
		Out: lift.OutputDesc{Base: synthOutBase, Stride: 1, RowBytes: 1, Rows: 1, Channels: 1},
	}
}

func memRef(addr uint64, width uint8, val uint64) trace.Ref {
	return trace.Ref{Space: trace.SpaceMem, Addr: addr, Width: width, Val: val}
}

func regRef(r isa.Reg, width uint8, val uint64) trace.Ref {
	return trace.Ref{Space: trace.SpaceReg, Addr: trace.RegAddr(r), Width: width, Val: val}
}

func immRef(v int64) trace.Ref {
	return trace.Ref{Space: trace.SpaceImm, Width: 4, Val: uint64(v)}
}

func flagsRef() trace.Ref {
	return trace.Ref{Space: trace.SpaceFlags, Addr: trace.FlagsAddr, Width: 4}
}

func synthTrace(insts []trace.DynInst) *trace.InstTrace {
	for i := range insts {
		insts[i].Seq = i
	}
	return &trace.InstTrace{Insts: insts}
}

// extractErr runs extraction over a synthetic trace and returns the error
// text (failing the test on success).
func extractErr(t *testing.T, insts []trace.DynInst) string {
	t.Helper()
	_, err := lift.ExtractWorkers(synthTrace(insts), &isa.Program{}, synthBufs(), 1)
	if err == nil {
		t.Fatal("extraction of an unliftable trace succeeded")
	}
	return err.Error()
}

// TestExtractRejectsFlagCarrying pins the flag-carrying rejection: the
// error names the offending instruction and its address and points at the
// nearest supported pattern.
func TestExtractRejectsFlagCarrying(t *testing.T) {
	msg := extractErr(t, []trace.DynInst{{
		Addr: 0x401234, Op: isa.ADC,
		Effects: []trace.Effect{{
			Dst: memRef(synthOutBase, 1, 3),
			Op:  trace.OpAdd,
			// Three operands: the carry flag rides along, which a value
			// slice cannot reconstruct.
			Srcs: []trace.Ref{immRef(1), immRef(2), flagsRef()},
		}},
	}})
	for _, want := range []string{"adc", "0x401234", "carry flag", "plain add/sub"} {
		if !strings.Contains(msg, want) {
			t.Errorf("flag-carrying rejection %q does not mention %q", msg, want)
		}
	}
}

// TestExtractRejectsPartialWrite pins the partial-write rejection: the
// error names the writer, its address, and the supported alternative.
func TestExtractRejectsPartialWrite(t *testing.T) {
	msg := extractErr(t, []trace.DynInst{
		{
			// Writes only the low two bytes of EAX...
			Addr: 0x401100, Op: isa.MOV,
			Effects: []trace.Effect{{
				Dst:  regRef(isa.AX, 2, 7),
				Op:   trace.OpIdentity,
				Srcs: []trace.Ref{immRef(7)},
			}},
		},
		{
			// ...which the store then reads back at full width.
			Addr: 0x401108, Op: isa.MOV,
			Effects: []trace.Effect{{
				Dst:  memRef(synthOutBase, 1, 7),
				Op:   trace.OpIdentity,
				Srcs: []trace.Ref{regRef(isa.EAX, 4, 7)},
			}},
		},
	})
	for _, want := range []string{"mov", "0x401100", "partial-write slicing is unsupported", "stored width"} {
		if !strings.Contains(msg, want) {
			t.Errorf("partial-write rejection %q does not mention %q", msg, want)
		}
	}
}

// TestExtractRejectsSignOverflowBranch pins the guard rejection for
// condition codes a value slice cannot reconstruct (js after cmp needs
// the sign of the subtraction including overflow).
func TestExtractRejectsSignOverflowBranch(t *testing.T) {
	msg := extractErr(t, []trace.DynInst{
		{
			Addr: 0x401200, Op: isa.MOVZX,
			Effects: []trace.Effect{{
				Dst:  regRef(isa.EAX, 4, 9),
				Op:   trace.OpZExt,
				Srcs: []trace.Ref{memRef(synthInBase, 1, 9)},
			}},
		},
		{
			Addr: 0x401208, Op: isa.CMP, Width: 4,
			Effects: []trace.Effect{{
				Dst:  flagsRef(),
				Op:   trace.OpCmp,
				Srcs: []trace.Ref{regRef(isa.EAX, 4, 9), immRef(5)},
			}},
		},
		{
			Addr: 0x401210, Op: isa.JS, Taken: true,
			Effects: []trace.Effect{{
				Dst:  trace.Ref{Space: trace.SpaceNone},
				Op:   trace.OpBranch,
				Srcs: []trace.Ref{flagsRef()},
			}},
		},
		{
			Addr: 0x401218, Op: isa.MOV,
			Effects: []trace.Effect{{
				Dst:  memRef(synthOutBase, 1, 1),
				Op:   trace.OpIdentity,
				Srcs: []trace.Ref{immRef(1)},
			}},
		},
	})
	for _, want := range []string{"js", "cmp", "0x401208", "sign and overflow"} {
		if !strings.Contains(msg, want) {
			t.Errorf("sign/overflow guard rejection %q does not mention %q", msg, want)
		}
	}
}

// TestExtractLiftsSetcc checks the setcc path: a materialized flag
// condition lifts to the IR comparison itself.
func TestExtractLiftsSetcc(t *testing.T) {
	trees, err := lift.ExtractWorkers(synthTrace([]trace.DynInst{
		{
			Addr: 0x401300, Op: isa.MOVZX,
			Effects: []trace.Effect{{
				Dst:  regRef(isa.EAX, 4, 9),
				Op:   trace.OpZExt,
				Srcs: []trace.Ref{memRef(synthInBase, 1, 9)},
			}},
		},
		{
			Addr: 0x401308, Op: isa.CMP, Width: 4,
			Effects: []trace.Effect{{
				Dst:  flagsRef(),
				Op:   trace.OpCmp,
				Srcs: []trace.Ref{regRef(isa.EAX, 4, 9), immRef(5)},
			}},
		},
		{
			Addr: 0x401310, Op: isa.SETB,
			Effects: []trace.Effect{{
				Dst:  regRef(isa.BL, 1, 0),
				Op:   trace.OpSelectSet,
				Srcs: []trace.Ref{flagsRef()},
			}},
		},
		{
			Addr: 0x401318, Op: isa.MOV,
			Effects: []trace.Effect{{
				Dst:  memRef(synthOutBase, 1, 0),
				Op:   trace.OpIdentity,
				Srcs: []trace.Ref{regRef(isa.BL, 1, 0)},
			}},
		},
	}), &isa.Program{}, synthBufs(), 1)
	if err != nil {
		t.Fatalf("ExtractWorkers: %v", err)
	}
	got := lift.Canonicalize(trees[0].Expr).String()
	if want := "(in(x, y) <u 5)"; got != want {
		t.Errorf("setcc lifted to %s, want %s", got, want)
	}
}
