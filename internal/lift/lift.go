package lift

import (
	"bytes"
	"fmt"
	"sort"

	"helium/internal/image"
	"helium/internal/ir"
	"helium/internal/trace"
	"helium/internal/vm"
)

// Result is the outcome of the full lifting pipeline.
type Result struct {
	// Loc is the code localization outcome.
	Loc *Localization
	// Bufs is the reconstructed buffer structure.
	Bufs *Buffers
	// Kernel is the lifted stencil kernel.
	Kernel *ir.Kernel
	// Dump is the memory dump captured alongside the instruction trace; it
	// holds both the pristine input pages and the final output pages, so
	// verification needs no further VM runs.
	Dump *trace.MemDump
	// TraceInsts and TraceSteps count the captured dynamic instructions
	// and total executed instructions of the trace run.
	TraceInsts int
	TraceSteps uint64
	// Samples is the number of output samples whose trees were extracted.
	Samples int
}

// Lift runs the whole pipeline against a target: localize the filter by
// coverage diffing, capture a detailed instruction trace of it, rebuild
// the buffer structure, extract one expression tree per output sample, and
// canonicalize the trees.  Lifting succeeds only if, per channel, every
// output sample canonicalized to the same tree — the paper's test that
// unrolled, peeled and tiled copies really collapsed to one stencil.
func Lift(name string, t Target) (*Result, error) {
	loc, err := Localize(t)
	if err != nil {
		return nil, err
	}

	m := vm.NewMachine(t.Prog)
	t.Setup(m, true)
	tres, err := m.RunTrace(vm.TraceOptions{FilterEntry: loc.FilterEntry})
	if err != nil {
		return nil, fmt.Errorf("lift: trace run: %w", err)
	}
	if tres.FilterCalls == 0 {
		return nil, fmt.Errorf("lift: localized filter %#x was never entered during tracing", loc.FilterEntry)
	}

	bufs, err := ReconstructBuffers(t.Known, loc.MemTrace, tres.Dump)
	if err != nil {
		return nil, err
	}

	trees, err := Extract(tres.Trace, t.Prog, bufs)
	if err != nil {
		return nil, err
	}

	kernel, err := unify(name, bufs, trees)
	if err != nil {
		return nil, err
	}

	return &Result{
		Loc:        loc,
		Bufs:       bufs,
		Kernel:     kernel,
		Dump:       tres.Dump,
		TraceInsts: len(tres.Trace.Insts),
		TraceSteps: tres.Steps,
		Samples:    len(trees),
	}, nil
}

// unify canonicalizes all sample trees, demands a single canonical tree
// per channel, and assembles the lifted kernel with stencil offsets
// centered on the input pixel corresponding to each output pixel.
func unify(name string, bufs *Buffers, trees []SampleTree) (*ir.Kernel, error) {
	channels := bufs.Out.Channels
	type group struct {
		expr  *ir.Expr
		count int
	}
	groups := make([]map[string]*group, channels)
	for c := range groups {
		groups[c] = make(map[string]*group)
	}
	for _, st := range trees {
		canon := Canonicalize(st.Expr)
		key := canon.Key()
		g := groups[st.C][key]
		if g == nil {
			g = &group{expr: canon}
			groups[st.C][key] = g
		}
		g.count++
	}

	reps := make([]*ir.Expr, channels)
	for c, gs := range groups {
		if len(gs) != 1 {
			counts := make([]int, 0, len(gs))
			for _, g := range gs {
				counts = append(counts, g.count)
			}
			sort.Sort(sort.Reverse(sort.IntSlice(counts)))
			return nil, fmt.Errorf("lift: channel %d trees did not collapse: %d distinct canonical trees (counts %v)", c, len(gs), counts)
		}
		for _, g := range gs {
			reps[c] = g.expr.Clone()
		}
	}

	// Center the stencil: shift all load offsets so the output pixel sits
	// at the middle of the taps' bounding box, and record the shift as the
	// kernel's input origin.
	minX, maxX, minY, maxY := 0, 0, 0, 0
	first := true
	for _, r := range reps {
		visitLoads(r, func(l *ir.Expr) {
			if first {
				minX, maxX, minY, maxY = l.DX, l.DX, l.DY, l.DY
				first = false
				return
			}
			minX, maxX = min(minX, l.DX), max(maxX, l.DX)
			minY, maxY = min(minY, l.DY), max(maxY, l.DY)
		})
	}
	ox := (minX + maxX) / 2
	oy := (minY + maxY) / 2
	for _, r := range reps {
		visitLoads(r, func(l *ir.Expr) {
			l.DX -= ox
			l.DY -= oy
		})
	}

	return &ir.Kernel{
		Name:      name,
		OutWidth:  bufs.Out.Width(),
		OutHeight: bufs.Out.Rows,
		Channels:  channels,
		OriginX:   ox,
		OriginY:   oy,
		Trees:     reps,
	}, nil
}

// visitLoads calls fn once per distinct load node.  The visited-set makes
// shared-subexpression DAGs (which the extractor's memo produces) linear
// to walk and keeps fn from mutating a shared load twice.
func visitLoads(e *ir.Expr, fn func(*ir.Expr)) {
	seen := make(map[*ir.Expr]bool)
	var walk func(*ir.Expr)
	walk = func(e *ir.Expr) {
		if seen[e] {
			return
		}
		seen[e] = true
		if e.Op == ir.OpLoad {
			fn(e)
			return
		}
		for _, a := range e.Args {
			walk(a)
		}
	}
	walk(e)
}

// dumpSource feeds the evaluator input samples straight from the captured
// memory dump through the reconstructed input geometry, padding included.
type dumpSource struct {
	dump *trace.MemDump
	in   InputDesc
}

// Sample reads the input sample at (x, y, c); like the emulated machine,
// unmapped memory reads as zero.
func (s dumpSource) Sample(x, y, c int) uint8 {
	off := int64(y) * s.in.Stride
	if s.in.Interleaved {
		off += int64(x*s.in.Channels + c)
	} else {
		off += int64(x)
	}
	b, _ := s.dump.Byte(uint64(int64(s.in.Base) + off))
	return b
}

// InputSource returns an evaluator source backed by the trace memory dump.
func (r *Result) InputSource() ir.Source {
	return dumpSource{dump: r.Dump, in: r.Bufs.In}
}

// footprint returns the bounding box of input coordinates the kernel's
// trees touch over its whole output grid (origin applied), including the
// channel delta range of its taps.
func footprint(k *ir.Kernel) (xlo, xhi, ylo, yhi, dclo, dchi int) {
	minDX, maxDX, minDY, maxDY := 0, 0, 0, 0
	first := true
	for _, t := range k.Trees {
		visitLoads(t, func(l *ir.Expr) {
			if first {
				minDX, maxDX, minDY, maxDY = l.DX, l.DX, l.DY, l.DY
				dclo, dchi = l.DC, l.DC
				first = false
				return
			}
			minDX, maxDX = min(minDX, l.DX), max(maxDX, l.DX)
			minDY, maxDY = min(minDY, l.DY), max(maxDY, l.DY)
			dclo, dchi = min(dclo, l.DC), max(dchi, l.DC)
		})
	}
	xlo = k.OriginX + minDX
	xhi = k.OutWidth - 1 + k.OriginX + maxDX
	ylo = k.OriginY + minDY
	yhi = k.OutHeight - 1 + k.OriginY + maxDY
	return xlo, xhi, ylo, yhi, dclo, dchi
}

// MaterializeInput copies the dumped input into a concrete pixel backing
// (a padded image.Plane for planar kernels, an image.Interleaved for
// interleaved ones) covering the kernel's whole stencil footprint.  The
// compiled backend recognizes these backings and fuses every tap into a
// flat indexed load.  Every coordinate the kernel can touch reads the same
// byte the dump-backed source yields, so evaluation results are unchanged.
// When the footprint cannot be represented (an interleaved kernel tapping
// outside the image), the dump-backed source is returned instead.
func (r *Result) MaterializeInput() ir.Source {
	dsrc := dumpSource{dump: r.Dump, in: r.Bufs.In}
	k := r.Kernel
	xlo, xhi, ylo, yhi, dclo, dchi := footprint(k)
	if xhi < 0 || yhi < 0 || xhi < xlo || yhi < ylo {
		return dsrc
	}
	if r.Bufs.In.Interleaved {
		// The interleaved layout has no padding concept; taps left or
		// above the image — or cross-channel taps that step outside a
		// pixel's own samples — cannot be represented.
		if xlo < 0 || ylo < 0 || dclo < 0 || k.Channels-1+dchi >= r.Bufs.In.Channels {
			return dsrc
		}
		im := image.NewInterleaved(xhi+1, yhi+1, r.Bufs.In.Channels)
		for y := 0; y <= yhi; y++ {
			for x := 0; x <= xhi; x++ {
				for c := 0; c < im.Channels; c++ {
					im.Set(x, y, c, dsrc.Sample(x, y, c))
				}
			}
		}
		return ir.InterleavedSource{Im: im}
	}
	pad := max(0, -xlo, -ylo)
	p := image.NewPlane(max(xhi+1, 1), max(yhi+1, 1), pad)
	for y := -pad; y <= yhi; y++ {
		for x := -pad; x <= xhi; x++ {
			p.Set(x, y, dsrc.Sample(x, y, 0))
		}
	}
	return ir.PlaneSource{P: p}
}

// VMOutput reads the bytes the legacy binary wrote to the output region
// out of the memory dump, row-major.
func (r *Result) VMOutput() ([]byte, error) {
	out := r.Bufs.Out
	buf := make([]byte, 0, out.Rows*out.RowBytes)
	for y := 0; y < out.Rows; y++ {
		row, ok := r.Dump.Bytes(out.Base+uint64(y)*uint64(out.Stride), out.RowBytes)
		if !ok {
			return nil, fmt.Errorf("lift: output row %d missing from memory dump", y)
		}
		buf = append(buf, row...)
	}
	return buf, nil
}

// Verify evaluates the lifted kernel against the dumped input and compares
// every sample with what the legacy binary actually wrote.  A nil error
// means the lifted IR is pixel-exact.
func (r *Result) Verify() error {
	want, err := r.VMOutput()
	if err != nil {
		return err
	}
	got, err := r.Kernel.Eval(r.InputSource())
	if err != nil {
		return err
	}
	return compareToVM("IR evaluation", got, want)
}

// VerifyCompiled lowers the lifted kernel to register programs and checks
// the compiled backend against the legacy binary's own output on every
// execution path: serial and parallel (with the given worker count, <= 0
// meaning GOMAXPROCS), fused (materialized pixel backing) and generic
// (dump-backed source).  On success it returns the verified compiled
// kernel so drivers report and benchmark exactly the programs that were
// checked.
func (r *Result) VerifyCompiled(workers int) (*ir.CompiledKernel, error) {
	want, err := r.VMOutput()
	if err != nil {
		return nil, err
	}
	ck, err := r.Kernel.Compile()
	if err != nil {
		return nil, err
	}
	paths := []struct {
		name string
		src  ir.Source
	}{
		{"fused", r.MaterializeInput()},
		{"generic", r.InputSource()},
	}
	for _, p := range paths {
		got, err := ck.Eval(p.src)
		if err != nil {
			return nil, fmt.Errorf("lift: compiled %s eval: %w", p.name, err)
		}
		if err := compareToVM("compiled "+p.name+" evaluation", got, want); err != nil {
			return nil, err
		}
		got, err = ck.EvalParallel(p.src, workers)
		if err != nil {
			return nil, fmt.Errorf("lift: compiled %s parallel eval: %w", p.name, err)
		}
		if err := compareToVM("compiled "+p.name+" parallel evaluation", got, want); err != nil {
			return nil, err
		}
	}
	return ck, nil
}

// compareToVM demands got matches the VM's output byte for byte.
func compareToVM(what string, got, want []byte) error {
	if len(got) != len(want) {
		return fmt.Errorf("lift: verification size mismatch: %s %d vs VM %d samples", what, len(got), len(want))
	}
	if !bytes.Equal(got, want) {
		bad := 0
		for i := range got {
			if got[i] != want[i] {
				bad++
			}
		}
		return fmt.Errorf("lift: %s differs from VM output on %d/%d samples", what, bad, len(want))
	}
	return nil
}
