package lift

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"helium/internal/faultpoint"
	"helium/internal/image"
	"helium/internal/ir"
	"helium/internal/schedule"
	"helium/internal/trace"
	"helium/internal/vm"
)

// fpCorruptInput corrupts the reconstructed input stride, modeling a
// buffer-reconstruction bug; downstream extraction or verification must
// turn it into a typed rejection, never a wrong answer.  (The stride, not
// the base: the base is only the geometry's frame of reference, and a
// pure shift stays self-consistent end to end.)
var fpCorruptInput = faultpoint.Register("lift.corrupt-input",
	"corrupt the reconstructed input stride to break buffer geometry")

// Result is the outcome of the full lifting pipeline.
type Result struct {
	// Loc is the code localization outcome.
	Loc *Localization
	// Bufs holds the first-stage input and final-stage output geometries.
	Bufs *Buffers
	// Stages is the lifted filter pipeline in execution order; single-pass
	// filters have exactly one stage.
	Stages []Stage
	// Kernel is the final stage's stencil kernel (nil when the filter ends
	// in a reduction).
	Kernel *ir.Kernel
	// Reduction is the final stage's reduction (nil for stencil filters).
	Reduction *ir.Reduction
	// Dump is the memory dump captured alongside the instruction trace; it
	// holds both the pristine input pages and the final output pages, so
	// verification needs no further VM runs.
	Dump *trace.MemDump
	// TraceInsts and TraceSteps count the captured dynamic instructions
	// and total executed instructions of the trace run.
	TraceInsts int
	TraceSteps uint64
	// Samples is the number of output samples whose trees were extracted
	// (domain pixels for reductions), summed over stages.
	Samples int
	// PhaseTimes holds the accumulated wall time per pipeline phase, in
	// execution order of first occurrence.  Lift fills the analysis
	// phases; Verify, Compile and VerifyCompiled accumulate onto it as
	// they run.  Not safe for concurrent mutation — callers drive the
	// pipeline sequentially.
	PhaseTimes []PhaseTime
}

// PhaseTime is one pipeline phase's measured wall-clock span.
type PhaseTime struct {
	Phase Phase
	Dur   time.Duration
}

// addSpan accumulates d into the phase's span in a span list.
func addSpan(spans []PhaseTime, p Phase, d time.Duration) []PhaseTime {
	for i := range spans {
		if spans[i].Phase == p {
			spans[i].Dur += d
			return spans
		}
	}
	return append(spans, PhaseTime{Phase: p, Dur: d})
}

// addPhase accumulates d into the result's span for phase p.
func (r *Result) addPhase(p Phase, d time.Duration) {
	r.PhaseTimes = addSpan(r.PhaseTimes, p, d)
}

// PhaseDur returns the accumulated wall time of one phase (zero when the
// phase never ran).
func (r *Result) PhaseDur(p Phase) time.Duration {
	for _, pt := range r.PhaseTimes {
		if pt.Phase == p {
			return pt.Dur
		}
	}
	return 0
}

// Lift runs the whole pipeline against a target: localize the filter by
// coverage diffing, capture a detailed instruction trace of it, discover
// the stage structure from the written regions, rebuild each stage's
// buffer geometry, extract one expression tree per output sample, and
// canonicalize the trees.  Lifting succeeds only if, per channel and
// stage, every output sample canonicalized to one tree — or to a family
// of predicated trees whose branch guards merge into a single select tree
// (the paper's test that unrolled, peeled, tiled and branch-diverged
// copies really collapsed to one stencil).
func Lift(name string, t Target) (*Result, error) {
	var spans []PhaseTime
	t0 := time.Now()
	loc, err := Localize(t)
	spans = addSpan(spans, PhaseLocalize, time.Since(t0))
	if err != nil {
		return nil, err
	}

	m := vm.NewMachine(t.Prog)
	t.Setup(m, true)
	t0 = time.Now()
	tres, err := m.RunTrace(vm.TraceOptions{
		FilterEntry:   loc.FilterEntry,
		MaxSteps:      t.MaxSteps,
		MaxTraceInsts: t.MaxTraceInsts,
	})
	spans = addSpan(spans, PhaseTrace, time.Since(t0))
	if err != nil {
		return nil, reject(PhaseTrace, fmt.Errorf("lift: trace run: %w", err))
	}
	if tres.FilterCalls == 0 {
		return nil, reject(PhaseTrace, fmt.Errorf("lift: localized filter %#x was never entered during tracing", loc.FilterEntry))
	}

	t0 = time.Now()
	in0, err := locateInput(t.Known, tres.Dump)
	spans = addSpan(spans, PhaseBuffers, time.Since(t0))
	if err != nil {
		return nil, reject(PhaseBuffers, err)
	}
	if faultpoint.Enabled(fpCorruptInput) {
		in0.Stride++
	}
	t0 = time.Now()
	regions, err := stageRegions(loc.MemTrace)
	spans = addSpan(spans, PhaseStages, time.Since(t0))
	if err != nil {
		return nil, reject(PhaseStages, err)
	}
	if len(regions) > 1 && t.Known.Interleaved {
		return nil, reject(PhaseStages, fmt.Errorf("lift: filter writes %d regions; multi-stage lifting supports planar layouts only", len(regions)))
	}

	stages := make([]Stage, 0, len(regions))
	curIn := *in0
	samples := 0
	var tbl *TableDesc
	for i, reg := range regions {
		stageName := name
		if len(regions) > 1 {
			stageName = fmt.Sprintf("%s#%d", name, i)
		}
		if reg.maxWrites >= 2 {
			// Bytes rewritten during the filter are accumulator slots, not
			// image samples (stencil outputs are stored exactly once).
			if tbl != nil {
				return nil, reject(PhaseStages, fmt.Errorf("lift: filter builds two accumulator tables (at %#x and %#x); only one reduction stage is liftable", tbl.Base, reg.addrs[0]))
			}
			t0 = time.Now()
			red, out, lastW, err := recognizeReduction(stageName, tres.Trace, t.Prog, curIn, reg, t.Known)
			spans = addSpan(spans, PhaseReduction, time.Since(t0))
			if err != nil {
				return nil, reject(PhaseReduction, err)
			}
			stages = append(stages, Stage{Red: red, In: curIn, Out: *out})
			samples += red.DomW * red.DomH
			if i != len(regions)-1 {
				// A non-final reduction's finished table feeds the later
				// stages as a stage input; the image input stays as-is.
				tbl = &TableDesc{Base: out.Base, Size: out.RowBytes, Elem: red.Elem, LastWrite: lastW}
			}
			continue
		}

		t0 = time.Now()
		out, err := regionGeometry(reg.addrs, t.Known)
		spans = addSpan(spans, PhaseBuffers, time.Since(t0))
		if err != nil {
			return nil, reject(PhaseBuffers, err)
		}
		bufs := &Buffers{In: curIn, Out: *out, Tbl: tbl}
		t0 = time.Now()
		trees, err := Extract(tres.Trace, t.Prog, bufs)
		spans = addSpan(spans, PhaseExtract, time.Since(t0))
		if err != nil {
			return nil, reject(PhaseExtract, err)
		}
		var canonDur time.Duration
		t0 = time.Now()
		kernel, err := unify(stageName, bufs, trees, &canonDur)
		if err != nil {
			// The per-output trees differing by a translation is the
			// signature of a resize loop: retry the stage as an affine-map
			// stencil before giving up.
			ak, aerr := liftAffine(stageName, tres.Trace, t.Prog, bufs)
			if aerr != nil {
				return nil, reject(PhaseUnify, fmt.Errorf("%w (affine retry: %v)", err, aerr))
			}
			kernel = ak
		}
		spans = addSpan(spans, PhaseUnify, time.Since(t0)-canonDur)
		spans = addSpan(spans, PhaseCanon, canonDur)
		if i > 0 && stages[i-1].Red == nil {
			if err := checkStageFootprint(kernel, stages[i-1].Out); err != nil {
				return nil, reject(PhaseUnify, err)
			}
		}
		stages = append(stages, Stage{Kernel: kernel, In: curIn, Out: *out})
		samples += len(trees)
		tbl = nil
		curIn = stageInput(*out, t.Known.Interleaved)
	}

	last := &stages[len(stages)-1]
	return &Result{
		Loc:        loc,
		Bufs:       &Buffers{In: *in0, Out: last.Out},
		Stages:     stages,
		Kernel:     last.Kernel,
		Reduction:  last.Red,
		Dump:       tres.Dump,
		TraceInsts: len(tres.Trace.Insts),
		TraceSteps: tres.Steps,
		Samples:    samples,
		PhaseTimes: spans,
	}, nil
}

// guardVal is one condition's observed outcome within a tree group.
type guardVal struct {
	cond  *ir.Expr
	taken bool
}

// gtree is one group of samples that canonicalized to the same expression
// under the same branch-guard assignment.
type gtree struct {
	expr   *ir.Expr
	guards map[string]guardVal
	count  int
}

// groupKey renders a group's identity: the canonical expression key plus
// the sorted guard assignment.
func groupKey(exprKey string, guards map[string]guardVal) string {
	keys := make([]string, 0, len(guards))
	for k := range guards {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(exprKey)
	for _, k := range keys {
		b.WriteString("|")
		b.WriteString(k)
		if guards[k].taken {
			b.WriteString("=T")
		} else {
			b.WriteString("=F")
		}
	}
	return b.String()
}

// unify canonicalizes all sample trees, merges predicated families into
// select trees, demands a single tree per channel, and assembles the
// lifted kernel with stencil offsets centered on the input pixel
// corresponding to each output pixel.
func unify(name string, bufs *Buffers, trees []SampleTree, canonDur *time.Duration) (*ir.Kernel, error) {
	channels := bufs.Out.Channels
	groups := make([]map[string]*gtree, channels)
	for c := range groups {
		groups[c] = make(map[string]*gtree)
	}
	for _, st := range trees {
		tc := time.Now()
		canon := Canonicalize(st.Expr)
		*canonDur += time.Since(tc)
		guards := make(map[string]guardVal, len(st.Guards))
		for _, g := range st.Guards {
			guards[g.Key] = guardVal{cond: g.Cond, taken: g.Taken}
		}
		key := groupKey(canon.Key(), guards)
		g := groups[st.C][key]
		if g == nil {
			g = &gtree{expr: canon, guards: guards}
			groups[st.C][key] = g
		}
		g.count++
	}

	reps := make([]*ir.Expr, channels)
	for c, gm := range groups {
		keys := make([]string, 0, len(gm))
		for k := range gm {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		gs := make([]*gtree, len(keys))
		for i, k := range keys {
			gs[i] = gm[k]
		}
		merged, err := mergeGroups(gs)
		if err != nil {
			return nil, fmt.Errorf("lift: channel %d: %w", c, err)
		}
		tc := time.Now()
		reps[c] = Canonicalize(merged)
		*canonDur += time.Since(tc)
	}

	// Center the stencil: shift all load offsets so the output pixel sits
	// at the middle of the taps' bounding box, and record the shift as the
	// kernel's input origin.
	minX, maxX, minY, maxY := 0, 0, 0, 0
	first := true
	for _, r := range reps {
		visitLoads(r, func(l *ir.Expr) {
			if first {
				minX, maxX, minY, maxY = l.DX, l.DX, l.DY, l.DY
				first = false
				return
			}
			minX, maxX = min(minX, l.DX), max(maxX, l.DX)
			minY, maxY = min(minY, l.DY), max(maxY, l.DY)
		})
	}
	ox := (minX + maxX) / 2
	oy := (minY + maxY) / 2
	for _, r := range reps {
		visitLoads(r, func(l *ir.Expr) {
			l.DX -= ox
			l.DY -= oy
		})
	}

	return &ir.Kernel{
		Name:      name,
		OutWidth:  bufs.Out.Width(),
		OutHeight: bufs.Out.Rows,
		Channels:  channels,
		OriginX:   ox,
		OriginY:   oy,
		Trees:     reps,
	}, nil
}

// mergeGroups collapses a family of guarded tree groups into one
// expression.  A single unguarded group is the classic fully-collapsed
// case.  Otherwise the most widely observed condition splits the family:
// groups that took the branch go to the select's true arm, groups that
// fell through go to the false arm, and groups that never consulted the
// condition (their path decided it away, for example by clamping to a
// constant first) are valid under either outcome and join both sides.
// When every deciding group agrees on one outcome the condition never
// diverged on this input; it is dropped, and the bit-exact differential
// verification downstream gates the elision.
func mergeGroups(groups []*gtree) (*ir.Expr, error) {
	groups = dedupeGroups(groups)
	bare := true
	for _, g := range groups {
		if len(g.guards) > 0 {
			bare = false
			break
		}
	}
	if bare {
		if len(groups) == 1 {
			return groups[0].expr, nil
		}
		counts := make([]int, 0, len(groups))
		for _, g := range groups {
			counts = append(counts, g.count)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		return nil, fmt.Errorf("trees did not collapse: %d distinct canonical trees (counts %v)", len(groups), counts)
	}

	// Split on the condition observed by the most groups (ties break to
	// the smallest key, keeping the merge deterministic).
	seen := map[string]int{}
	for _, g := range groups {
		for k := range g.guards {
			seen[k]++
		}
	}
	best := ""
	for k, n := range seen {
		if best == "" || n > seen[best] || (n == seen[best] && k < best) {
			best = k
		}
	}
	var cond *ir.Expr
	var tg, fg []*gtree
	ambiguous := 0
	for _, g := range groups {
		gv, ok := g.guards[best]
		if !ok {
			tg = append(tg, stripGuard(g, best))
			fg = append(fg, stripGuard(g, best))
			ambiguous++
			continue
		}
		cond = gv.cond
		if gv.taken {
			tg = append(tg, stripGuard(g, best))
		} else {
			fg = append(fg, stripGuard(g, best))
		}
	}
	if len(tg) == ambiguous || len(fg) == ambiguous {
		// The branch went the same way for every sample that reached it:
		// the unobserved side cannot be reconstructed, so the condition is
		// elided (it holds on every observed sample).
		all := make([]*gtree, 0, len(groups))
		for _, g := range groups {
			all = append(all, stripGuard(g, best))
		}
		return mergeGroups(all)
	}
	t, err := mergeGroups(tg)
	if err != nil {
		return nil, err
	}
	f, err := mergeGroups(fg)
	if err != nil {
		return nil, err
	}
	return &ir.Expr{Op: ir.OpSelect, Args: []*ir.Expr{cond, t, f}}, nil
}

// stripGuard copies a group without the given condition key.
func stripGuard(g *gtree, key string) *gtree {
	out := &gtree{expr: g.expr, count: g.count, guards: make(map[string]guardVal, len(g.guards))}
	for k, v := range g.guards {
		if k != key {
			out.guards[k] = v
		}
	}
	return out
}

// dedupeGroups merges groups that became identical after guard stripping
// (duplicated ambiguous groups meeting again on one side of a split).
func dedupeGroups(groups []*gtree) []*gtree {
	byKey := make(map[string]*gtree)
	var keys []string
	for _, g := range groups {
		k := groupKey(g.expr.Key(), g.guards)
		if prev, ok := byKey[k]; ok {
			prev.count += g.count
			continue
		}
		byKey[k] = g
		keys = append(keys, k)
	}
	out := make([]*gtree, len(keys))
	for i, k := range keys {
		out[i] = byKey[k]
	}
	return out
}

// visitLoads calls fn once per distinct load node.  The visited-set makes
// shared-subexpression DAGs (which the extractor's memo produces) linear
// to walk and keeps fn from mutating a shared load twice.
func visitLoads(e *ir.Expr, fn func(*ir.Expr)) {
	seen := make(map[*ir.Expr]bool)
	var walk func(*ir.Expr)
	walk = func(e *ir.Expr) {
		if seen[e] {
			return
		}
		seen[e] = true
		if e.Op == ir.OpLoad {
			fn(e)
			return
		}
		for _, a := range e.Args {
			walk(a)
		}
	}
	walk(e)
}

// dumpSource feeds the evaluator input samples straight from the captured
// memory dump through the reconstructed input geometry, padding included.
type dumpSource struct {
	dump *trace.MemDump
	in   InputDesc
}

// Sample reads the input sample at (x, y, c); like the emulated machine,
// unmapped memory reads as zero.
func (s dumpSource) Sample(x, y, c int) uint8 {
	off := int64(y) * s.in.Stride
	if s.in.Interleaved {
		off += int64(x*s.in.Channels + c)
	} else {
		off += int64(x)
	}
	b, _ := s.dump.Byte(uint64(int64(s.in.Base) + off))
	return b
}

// InputSource returns an evaluator source backed by the trace memory dump.
func (r *Result) InputSource() ir.Source {
	return dumpSource{dump: r.Dump, in: r.Bufs.In}
}

// footprint returns the bounding box of input coordinates the kernel's
// trees touch over its whole output grid (origin applied), including the
// channel delta range of its taps.
func footprint(k *ir.Kernel) (xlo, xhi, ylo, yhi, dclo, dchi int) {
	minDX, maxDX, minDY, maxDY := 0, 0, 0, 0
	first := true
	for _, t := range k.Trees {
		visitLoads(t, func(l *ir.Expr) {
			if first {
				minDX, maxDX, minDY, maxDY = l.DX, l.DX, l.DY, l.DY
				dclo, dchi = l.DC, l.DC
				first = false
				return
			}
			minDX, maxDX = min(minDX, l.DX), max(maxDX, l.DX)
			minDY, maxDY = min(minDY, l.DY), max(maxDY, l.DY)
			dclo, dchi = min(dclo, l.DC), max(dchi, l.DC)
		})
	}
	// The axis maps are monotonically nondecreasing in the output
	// coordinate, so the extreme input columns/rows come from the extreme
	// output ones (identity maps reduce to the familiar slope-1 box).
	xlo = k.MapX.Apply(0) + k.OriginX + minDX
	xhi = k.MapX.Apply(k.OutWidth-1) + k.OriginX + maxDX
	ylo = k.MapY.Apply(0) + k.OriginY + minDY
	yhi = k.MapY.Apply(k.OutHeight-1) + k.OriginY + maxDY
	return xlo, xhi, ylo, yhi, dclo, dchi
}

// InputFootprint returns the bounding box of first-stage input
// coordinates a final render of (outW, outH) samples can touch: the
// stage's stencil taps (origin applied) swept over its output grid,
// which tracks the requested final extent by the lifted stage deltas.
// Serving layers use it to size the clamp padding of a caller-supplied
// input plane so every tap of every request geometry reads initialized
// bytes.
func (r *Result) InputFootprint(outW, outH int) (xlo, xhi, ylo, yhi int) {
	st0 := &r.Stages[0]
	w, h := stageDims(st0, r.finalStage(), outW, outH)
	k := st0.Kernel
	if st0.Red != nil {
		k = &ir.Kernel{Channels: 1, Trees: []*ir.Expr{st0.Red.Index}}
	}
	kc := *k
	kc.OutWidth, kc.OutHeight = w, h
	xlo, xhi, ylo, yhi, _, _ = footprint(&kc)
	return xlo, xhi, ylo, yhi
}

// MaterializeInput copies the dumped input into a concrete pixel backing
// (a padded image.Plane for planar kernels, an image.Interleaved for
// interleaved ones) covering the first stage's whole stencil footprint.
// The compiled backend recognizes these backings and fuses every tap into
// a flat indexed load.  Every coordinate the kernel can touch reads the
// same byte the dump-backed source yields, so evaluation results are
// unchanged.  When the footprint cannot be represented (an interleaved
// kernel tapping outside the image), the dump-backed source is returned
// instead.
func (r *Result) MaterializeInput() ir.Source {
	dsrc := dumpSource{dump: r.Dump, in: r.Bufs.In}
	st0 := &r.Stages[0]
	k := st0.Kernel
	if st0.Red != nil {
		// A reduction's input footprint is its index expression's taps
		// swept over the whole domain.
		k = &ir.Kernel{
			OutWidth: st0.Red.DomW, OutHeight: st0.Red.DomH, Channels: 1,
			Trees: []*ir.Expr{st0.Red.Index},
		}
	}
	xlo, xhi, ylo, yhi, dclo, dchi := footprint(k)
	if xhi < 0 || yhi < 0 || xhi < xlo || yhi < ylo {
		return dsrc
	}
	if r.Bufs.In.Interleaved {
		// The interleaved layout has no padding concept; taps left or
		// above the image — or cross-channel taps that step outside a
		// pixel's own samples — cannot be represented.
		if xlo < 0 || ylo < 0 || dclo < 0 || k.Channels-1+dchi >= r.Bufs.In.Channels {
			return dsrc
		}
		im := image.NewInterleaved(xhi+1, yhi+1, r.Bufs.In.Channels)
		for y := 0; y <= yhi; y++ {
			for x := 0; x <= xhi; x++ {
				for c := 0; c < im.Channels; c++ {
					im.Set(x, y, c, dsrc.Sample(x, y, c))
				}
			}
		}
		return ir.InterleavedSource{Im: im}
	}
	pad := max(0, -xlo, -ylo)
	p := image.NewPlane(max(xhi+1, 1), max(yhi+1, 1), pad)
	for y := -pad; y <= yhi; y++ {
		for x := -pad; x <= xhi; x++ {
			p.Set(x, y, dsrc.Sample(x, y, 0))
		}
	}
	return ir.PlaneSource{P: p}
}

// vmRegion reads the bytes the legacy binary left in a written region out
// of the memory dump, row-major.
func (r *Result) vmRegion(out OutputDesc) ([]byte, error) {
	buf := make([]byte, 0, out.Rows*out.RowBytes)
	for y := 0; y < out.Rows; y++ {
		row, ok := r.Dump.Bytes(out.Base+uint64(y)*uint64(out.Stride), out.RowBytes)
		if !ok {
			return nil, fmt.Errorf("lift: output row %d missing from memory dump", y)
		}
		buf = append(buf, row...)
	}
	return buf, nil
}

// VMOutput reads the bytes the legacy binary wrote to the final output
// region out of the memory dump, row-major.
func (r *Result) VMOutput() ([]byte, error) {
	return r.vmRegion(r.Bufs.Out)
}

// finalStage returns the pipeline's last stage.
func (r *Result) finalStage() *Stage { return &r.Stages[len(r.Stages)-1] }

// EvalDims returns the extents size-generic backends evaluate the lifted
// result at: the final output image for stencils, the input domain for
// reductions.
func (r *Result) EvalDims() (int, int) { return finalDims(r.finalStage()) }

// chain evaluates the stage pipeline: stage 0 reads src, every later
// stage reads its predecessor's computed output, and the final stage's
// bytes are returned.  Stage extents track the requested final extent by
// their lifted deltas.  run evaluates one stencil stage (reductions always
// use their own evaluator); each, when non-nil, observes every stage's
// output.
func (r *Result) chain(src ir.Source, outW, outH int,
	run func(i int, k *ir.Kernel, src ir.Source) ([]byte, error),
	each func(i int, out []byte) error) ([]byte, error) {
	final := r.finalStage()
	var out []byte
	var err error
	for i := range r.Stages {
		st := &r.Stages[i]
		w, h := stageDims(st, final, outW, outH)
		if st.Red != nil {
			red := *st.Red
			red.DomW, red.DomH = w, h
			out, err = red.Eval(src)
		} else {
			k := *st.Kernel
			k.OutWidth, k.OutHeight = w, h
			out, err = run(i, &k, src)
		}
		if err != nil {
			return nil, err
		}
		if each != nil {
			if err := each(i, out); err != nil {
				return nil, err
			}
		}
		if i+1 < len(r.Stages) {
			if st.Red != nil {
				// A reduction's bytes are the finished table, not an image:
				// later stages keep reading the same pixel source and bind
				// the table for their OpTableIn lookups.
				src = ir.TableSource{Src: src, Tbl: out}
			} else {
				src = stagePlaneSource(out, w, h)
			}
		}
	}
	return out, nil
}

// EvalIR evaluates the lifted pipeline with the tree-walking interpreter
// against the dumped input at the lifted geometry.
func (r *Result) EvalIR() ([]byte, error) {
	w, h := r.EvalDims()
	return r.EvalIRAt(r.InputSource(), w, h)
}

// EvalIRAt evaluates the lifted pipeline with the interpreter against an
// arbitrary first-stage source, rendering the final stage at (outW, outH).
func (r *Result) EvalIRAt(src ir.Source, outW, outH int) ([]byte, error) {
	return r.chain(src, outW, outH, func(_ int, k *ir.Kernel, s ir.Source) ([]byte, error) {
		return k.Eval(s)
	}, nil)
}

// Verify evaluates the lifted pipeline against the dumped input and
// compares every stage's output — intermediates included — with the bytes
// the legacy binary actually left in that stage's region.  A nil error
// means the lifted IR is pixel-exact.
func (r *Result) Verify() error {
	start := time.Now()
	defer func() { r.addPhase(PhaseVerify, time.Since(start)) }()
	w, h := r.EvalDims()
	_, err := r.chain(r.InputSource(), w, h,
		func(_ int, k *ir.Kernel, s ir.Source) ([]byte, error) { return k.Eval(s) },
		func(i int, out []byte) error {
			want, err := r.vmRegion(r.Stages[i].Out)
			if err != nil {
				return err
			}
			return compareToVM(fmt.Sprintf("IR evaluation (stage %d)", i), out, want)
		})
	return reject(PhaseVerify, err)
}

// CompiledResult is a lifted result with every stencil stage lowered to
// register programs.  Reduction stages have no register form (their
// scatter update is not row-vectorizable) and keep nil entries; the chain
// evaluators run them through the reduction evaluator.
type CompiledResult struct {
	res    *Result
	Stages []*ir.CompiledKernel
}

// Compile lowers every stencil stage of the result.
func (r *Result) Compile() (*CompiledResult, error) {
	start := time.Now()
	defer func() { r.addPhase(PhaseCompile, time.Since(start)) }()
	c := &CompiledResult{res: r, Stages: make([]*ir.CompiledKernel, len(r.Stages))}
	for i := range r.Stages {
		if r.Stages[i].Kernel == nil {
			continue
		}
		ck, err := r.Stages[i].Kernel.Compile()
		if err != nil {
			return nil, reject(PhaseCompile, err)
		}
		c.Stages[i] = ck
	}
	return c, nil
}

// Progs returns every stage's channel programs, for reporting.
func (c *CompiledResult) Progs() []*ir.Program {
	var out []*ir.Program
	for _, ck := range c.Stages {
		if ck != nil {
			out = append(out, ck.Progs...)
		}
	}
	return out
}

// Workers reports the effective parallel worker count of the widest
// stencil stage for a requested value (1 for reduction-only results).
func (c *CompiledResult) Workers(requested int) int {
	workers := 1
	for _, ck := range c.Stages {
		if ck != nil {
			workers = max(workers, ck.Workers(requested))
		}
	}
	return workers
}

// evalAt runs the compiled chain against src at (outW, outH); parallel
// selects the cache-blocked tiled driver for the stencil stages.
func (c *CompiledResult) evalAt(src ir.Source, outW, outH int, parallel bool, workers int) ([]byte, error) {
	return c.res.chain(src, outW, outH, func(i int, k *ir.Kernel, s ir.Source) ([]byte, error) {
		ck := *c.Stages[i]
		ck.OutWidth, ck.OutHeight = k.OutWidth, k.OutHeight
		if parallel {
			return ck.EvalParallel(s, workers)
		}
		return ck.Eval(s)
	}, nil)
}

// Eval runs the compiled chain serially at the lifted geometry.
func (c *CompiledResult) Eval(src ir.Source) ([]byte, error) {
	w, h := c.res.EvalDims()
	return c.evalAt(src, w, h, false, 0)
}

// EvalParallel runs the compiled chain with the tiled parallel driver at
// the lifted geometry (workers <= 0 means GOMAXPROCS).
func (c *CompiledResult) EvalParallel(src ir.Source, workers int) ([]byte, error) {
	w, h := c.res.EvalDims()
	return c.evalAt(src, w, h, true, workers)
}

// EvalAt runs the compiled chain serially against an arbitrary
// first-stage source at a fresh final geometry.
func (c *CompiledResult) EvalAt(src ir.Source, outW, outH int) ([]byte, error) {
	return c.evalAt(src, outW, outH, false, 0)
}

// EvalParallelAt is EvalAt through the tiled parallel driver.
func (c *CompiledResult) EvalParallelAt(src ir.Source, outW, outH int, workers int) ([]byte, error) {
	return c.evalAt(src, outW, outH, true, workers)
}

// stagedAt returns copies of the compiled stencil stages with their
// extents set for a final render at (outW, outH); reduction stages keep
// nil entries.
func (c *CompiledResult) stagedAt(outW, outH int) []*ir.CompiledKernel {
	final := c.res.finalStage()
	out := make([]*ir.CompiledKernel, len(c.Stages))
	for i, ck := range c.Stages {
		if ck == nil {
			continue
		}
		cp := *ck
		cp.OutWidth, cp.OutHeight = stageDims(&c.res.Stages[i], final, outW, outH)
		out[i] = &cp
	}
	return out
}

// Fusable reports whether the pipeline admits sliding-window fusion: two
// or more stages, all stencils, with planar single-channel intermediates
// whose footprints the fused driver's validation accepts.
func (c *CompiledResult) Fusable() bool {
	if len(c.Stages) < 2 {
		return false
	}
	w, h := c.res.EvalDims()
	_, err := ir.FusedRingRows(c.stagedAt(w, h), 0)
	return err == nil
}

// RingRows reports the fused intermediate ring heights (one per stage
// gap) at the lifted geometry under the given window setting.
func (c *CompiledResult) RingRows(windowRows int) ([]int, error) {
	w, h := c.res.EvalDims()
	return ir.FusedRingRows(c.stagedAt(w, h), windowRows)
}

// EvalScheduledAt runs the compiled chain under an explicit schedule at a
// fresh final geometry: slidingWindow fusion streams the stages through
// ring buffers, materialize runs the tiled parallel driver per stage with
// the schedule's tile/lane/worker overrides.  Output and errors are
// identical to EvalAt for every valid schedule.
func (c *CompiledResult) EvalScheduledAt(src ir.Source, outW, outH int, sc *schedule.Schedule) ([]byte, error) {
	if err := sc.Validate(len(c.Stages)); err != nil {
		return nil, err
	}
	if sc.FusionKind() == schedule.SlidingWindow {
		return ir.EvalFused(c.stagedAt(outW, outH), src, sc)
	}
	return c.res.chain(src, outW, outH, func(i int, k *ir.Kernel, s ir.Source) ([]byte, error) {
		ck := *c.Stages[i]
		ck.OutWidth, ck.OutHeight = k.OutWidth, k.OutHeight
		return ck.EvalParallelSched(s, sc.StageAt(i), sc.EffectiveWorkers())
	}, nil)
}

// EvalScheduled is EvalScheduledAt at the lifted geometry.
func (c *CompiledResult) EvalScheduled(src ir.Source, sc *schedule.Schedule) ([]byte, error) {
	w, h := c.res.EvalDims()
	return c.EvalScheduledAt(src, w, h, sc)
}

// VerifySchedule checks one schedule's execution against the legacy
// binary's own output, byte for byte.
func (c *CompiledResult) VerifySchedule(sc *schedule.Schedule) error {
	want, err := c.res.VMOutput()
	if err != nil {
		return reject(PhaseVerify, err)
	}
	got, err := c.EvalScheduled(c.res.MaterializeInput(), sc)
	if err != nil {
		return reject(PhaseCompile, fmt.Errorf("lift: scheduled eval (%s): %w", sc, err))
	}
	return reject(PhaseVerify, compareToVM(fmt.Sprintf("scheduled (%s) evaluation", sc), got, want))
}

// VerifyCompiled lowers the lifted pipeline to register programs and
// checks the compiled backend against the legacy binary's own output on
// every execution path: serial and parallel (with the given worker count,
// <= 0 meaning GOMAXPROCS), flat (materialized pixel backing) and generic
// (dump-backed source), plus — for fusable multi-stage pipelines — the
// sliding-window fused executor, serial and strip-parallel.  On success
// it returns the verified compiled pipeline so drivers report and
// benchmark exactly the programs that were checked.
func (r *Result) VerifyCompiled(workers int) (*CompiledResult, error) {
	want, err := r.VMOutput()
	if err != nil {
		return nil, reject(PhaseVerify, err)
	}
	c, err := r.Compile() // records its own compile span
	if err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() { r.addPhase(PhaseVerify, time.Since(start)) }()
	fusable := c.Fusable()
	paths := []struct {
		name string
		src  ir.Source
	}{
		{"fused", r.MaterializeInput()},
		{"generic", r.InputSource()},
	}
	for _, p := range paths {
		got, err := c.Eval(p.src)
		if err != nil {
			return nil, reject(PhaseCompile, fmt.Errorf("lift: compiled %s eval: %w", p.name, err))
		}
		if err := compareToVM("compiled "+p.name+" evaluation", got, want); err != nil {
			return nil, reject(PhaseVerify, err)
		}
		got, err = c.EvalParallel(p.src, workers)
		if err != nil {
			return nil, reject(PhaseCompile, fmt.Errorf("lift: compiled %s parallel eval: %w", p.name, err))
		}
		if err := compareToVM("compiled "+p.name+" parallel evaluation", got, want); err != nil {
			return nil, reject(PhaseVerify, err)
		}
		if !fusable {
			continue
		}
		for _, w := range []int{1, workers} {
			sc := &schedule.Schedule{Fusion: schedule.SlidingWindow, Workers: max(w, 0)}
			got, err = c.EvalScheduled(p.src, sc)
			if err != nil {
				return nil, reject(PhaseCompile, fmt.Errorf("lift: compiled %s sliding-window eval (%s): %w", p.name, sc, err))
			}
			if err := compareToVM(fmt.Sprintf("compiled %s sliding-window (%s) evaluation", p.name, sc), got, want); err != nil {
				return nil, reject(PhaseVerify, err)
			}
		}
	}
	return c, nil
}

// compareToVM demands got matches the VM's output byte for byte.
func compareToVM(what string, got, want []byte) error {
	if len(got) != len(want) {
		return fmt.Errorf("lift: verification size mismatch: %s %d vs VM %d samples", what, len(got), len(want))
	}
	if !bytes.Equal(got, want) {
		bad := 0
		for i := range got {
			if got[i] != want[i] {
				bad++
			}
		}
		return fmt.Errorf("lift: %s differs from VM output on %d/%d samples", what, bad, len(want))
	}
	return nil
}
