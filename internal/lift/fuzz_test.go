package lift

import (
	"testing"

	"helium/internal/ir"
)

// exprDecoder turns a fuzzer byte string into a bounded, arity-correct
// integer expression tree.  Only structurally valid trees are built — the
// canonicalizer's contract starts at well-formed extractor output — but
// within that, operators, widths, constants and tap offsets are whatever
// the bytes say.
type exprDecoder struct {
	data  []byte
	pos   int
	nodes int
}

func (d *exprDecoder) next() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

// canonOps are the integer operators the extractor can produce, tagged
// with their arity (OpSelect is handled separately).
var canonOps = []struct {
	op    ir.Op
	arity int
}{
	{ir.OpAdd, 2}, {ir.OpSub, 2}, {ir.OpMul, 2}, {ir.OpMulHi, 2},
	{ir.OpDiv, 2}, {ir.OpMod, 2}, {ir.OpAnd, 2}, {ir.OpOr, 2},
	{ir.OpXor, 2}, {ir.OpShl, 2}, {ir.OpShr, 2}, {ir.OpSar, 2},
	{ir.OpMin, 2}, {ir.OpMax, 2},
	{ir.OpCmpEq, 2}, {ir.OpCmpNe, 2}, {ir.OpCmpLtS, 2}, {ir.OpCmpLeS, 2},
	{ir.OpCmpLtU, 2}, {ir.OpCmpLeU, 2},
	{ir.OpNot, 1}, {ir.OpNeg, 1},
}

func (d *exprDecoder) width() int { return []int{1, 2, 4}[d.next()%3] }

func (d *exprDecoder) expr(depth int) *ir.Expr {
	d.nodes++
	b := d.next()
	if depth >= 8 || d.nodes > 300 || b < 64 {
		// Leaf.
		if b&1 == 0 {
			return ir.Const(int64(int8(d.next())) << (d.next() % 16))
		}
		return ir.Load(int(int8(d.next()))%4, int(int8(d.next()))%4, 0)
	}
	switch {
	case b < 80: // zext/sext/extract wrappers
		e := &ir.Expr{Width: d.width(), SrcWidth: d.width(), Args: []*ir.Expr{d.expr(depth + 1)}}
		switch b % 3 {
		case 0:
			e.Op = ir.OpZExt
		case 1:
			e.Op = ir.OpSExt
		default:
			e.Op = ir.OpExtract
			e.Val = int64(d.next() % 4)
		}
		return e
	case b < 96: // select
		return &ir.Expr{Op: ir.OpSelect, Width: d.width(),
			Args: []*ir.Expr{d.expr(depth + 1), d.expr(depth + 1), d.expr(depth + 1)}}
	case b < 112: // flattened associative chain (3..4 args)
		n := 3 + int(d.next()%2)
		e := &ir.Expr{Op: []ir.Op{ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor}[d.next()%5], Width: d.width()}
		for i := 0; i < n; i++ {
			e.Args = append(e.Args, d.expr(depth+1))
		}
		return e
	default:
		oa := canonOps[int(d.next())%len(canonOps)]
		e := &ir.Expr{Op: oa.op, Width: d.width()}
		for i := 0; i < oa.arity; i++ {
			e.Args = append(e.Args, d.expr(depth+1))
		}
		return e
	}
}

// FuzzCanon throws arbitrary well-formed trees at the canonicalizer and
// holds it to its two structural guarantees: it terminates without
// panicking, and it is idempotent — canonical form is a fixed point, so
// re-canonicalizing never changes the tree's key.  (Idempotence is what
// unification leans on: trees are compared by canonical key, so a canon
// that kept drifting would collapse nothing.)
func FuzzCanon(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &exprDecoder{data: data}
		e := d.expr(0)
		c1 := Canonicalize(e)
		c2 := Canonicalize(c1)
		if k1, k2 := c1.Key(), c2.Key(); k1 != k2 {
			t.Fatalf("canonicalization is not idempotent:\n first: %s\nsecond: %s", k1, k2)
		}
	})
}
