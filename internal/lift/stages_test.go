package lift_test

import (
	"fmt"
	"testing"

	"helium/internal/ir"
	"helium/internal/legacy"
	"helium/internal/lift"
)

// TestBlur2pStageStructure pins the discovered pipeline shape of the
// two-pass blur: two stencil stages chained through the reconstructed
// scratch plane, with the horizontal pass covering two extra rows and the
// origins mapping the frames onto each other.
func TestBlur2pStageStructure(t *testing.T) {
	k, _ := legacy.Lookup("blur2p")
	cfg := liftConfigs[0]
	res, err := lift.Lift(k.Name, target(k.Instantiate(cfg)))
	if err != nil {
		t.Fatalf("Lift: %v", err)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("blur2p lifted to %d stage(s), want 2", len(res.Stages))
	}
	s0, s1 := &res.Stages[0], &res.Stages[1]
	if s0.Kernel == nil || s1.Kernel == nil {
		t.Fatal("blur2p stages must both be stencils")
	}
	if s0.Kernel.OutWidth != cfg.Width || s0.Kernel.OutHeight != cfg.Height+2 {
		t.Errorf("stage 0 extent %dx%d, want %dx%d (one extra row above and below)",
			s0.Kernel.OutWidth, s0.Kernel.OutHeight, cfg.Width, cfg.Height+2)
	}
	if s1.Kernel.OutWidth != cfg.Width || s1.Kernel.OutHeight != cfg.Height {
		t.Errorf("stage 1 extent %dx%d, want %dx%d", s1.Kernel.OutWidth, s1.Kernel.OutHeight, cfg.Width, cfg.Height)
	}
	if s0.Kernel.OriginY != -1 || s1.Kernel.OriginY != 1 {
		t.Errorf("stage origins y (%d, %d), want (-1, 1)", s0.Kernel.OriginY, s1.Kernel.OriginY)
	}
	// The scratch plane's stride is an addressing detail of the binary;
	// reconstruction must have recovered it from the write runs.
	if want := int64(cfg.Width + 4); s0.Out.Stride != want {
		t.Errorf("scratch stride %d, want %d", s0.Out.Stride, want)
	}
	// Stage 1 reads the scratch region stage 0 wrote.
	if s1.In.Base != s0.Out.Base || s1.In.Stride != s0.Out.Stride {
		t.Errorf("stage 1 input %#x/%d does not chain to stage 0 output %#x/%d",
			s1.In.Base, s1.In.Stride, s0.Out.Base, s0.Out.Stride)
	}
}

// TestHist256ReductionStructure pins the recognized reduction: 256 4-byte
// zero-initialized bins, indexed by the pixel value, incremented by one.
func TestHist256ReductionStructure(t *testing.T) {
	k, _ := legacy.Lookup("hist256")
	cfg := liftConfigs[0]
	res, err := lift.Lift(k.Name, target(k.Instantiate(cfg)))
	if err != nil {
		t.Fatalf("Lift: %v", err)
	}
	if res.Kernel != nil || res.Reduction == nil || len(res.Stages) != 1 {
		t.Fatalf("hist256 must lift to a single reduction stage (kernel=%v reduction=%v stages=%d)",
			res.Kernel != nil, res.Reduction != nil, len(res.Stages))
	}
	r := res.Reduction
	if r.Bins != 256 || r.Elem != 4 || r.Delta != 1 {
		t.Errorf("reduction is %d bins x %d bytes += %d, want 256 x 4 += 1", r.Bins, r.Elem, r.Delta)
	}
	if r.DomW != cfg.Width || r.DomH != cfg.Height {
		t.Errorf("reduction domain %dx%d, want %dx%d", r.DomW, r.DomH, cfg.Width, cfg.Height)
	}
	for i, v := range r.Init {
		if v != 0 {
			t.Errorf("bin %d initializes to %d, want 0", i, v)
		}
	}
	if r.Index.Op != ir.OpLoad || r.Index.DX != 0 || r.Index.DY != 0 {
		t.Errorf("reduction index is %s, want in(x, y)", r.Index)
	}
}

// TestClampSharpDiverges asserts the property that makes clampsharp a
// predicated-lifting test at all: on every configuration the pipeline is
// exercised with, the clamp branches must go all three ways (below range,
// in range, above range), so the merge really sees divergent paths.
func TestClampSharpDiverges(t *testing.T) {
	configs := append([]legacy.Config{}, liftConfigs...)
	configs = append(configs,
		legacy.Config{Width: 40, Height: 24, Seed: 1}, // CLI and gen default
		legacy.Config{Width: 37, Height: 14, Seed: 99},
		legacy.Config{Width: 33, Height: 17, Seed: 9},
	)
	for _, cfg := range configs {
		t.Run(fmt.Sprint(cfg), func(t *testing.T) {
			if !legacy.ClampSharpDiverges(cfg) {
				t.Errorf("clamp branches do not diverge three ways at %s; pick another seed", cfg)
			}
		})
	}
}

// TestClampSharpGuards checks that predicated extraction really produced
// branch guards and that they survive worker-count changes (determinism of
// the guard records themselves, not just the value trees).
func TestClampSharpGuards(t *testing.T) {
	k, _ := legacy.Lookup("clampsharp")
	tgt, _, tres, bufs := traceFor(t, k, liftConfigs[0])
	serial, err := lift.ExtractWorkers(tres.Trace, tgt.Prog, bufs, 1)
	if err != nil {
		t.Fatalf("ExtractWorkers(1): %v", err)
	}
	guarded := 0
	for _, st := range serial {
		if len(st.Guards) > 0 {
			guarded++
		}
	}
	if guarded == 0 {
		t.Fatal("no sample carries branch guards; predicated extraction is not firing")
	}
	par, err := lift.ExtractWorkers(tres.Trace, tgt.Prog, bufs, 4)
	if err != nil {
		t.Fatalf("ExtractWorkers(4): %v", err)
	}
	for i := range par {
		if len(par[i].Guards) != len(serial[i].Guards) {
			t.Fatalf("sample %d guard count differs between 4 workers and serial", i)
		}
		for j := range par[i].Guards {
			if par[i].Guards[j].Key != serial[i].Guards[j].Key ||
				par[i].Guards[j].Taken != serial[i].Guards[j].Taken {
				t.Fatalf("sample %d guard %d differs between 4 workers and serial", i, j)
			}
		}
	}
}
