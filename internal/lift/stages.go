// Multi-stage lifting.  A filter that pipelines through intermediate
// buffers (a two-pass separable blur writing a temporary plane) or
// scatters into an accumulator table (a histogram) is discovered here: the
// profiling run's write addresses cluster into regions, the regions order
// into stages by first-write time, and each stage is lifted on its own
// with the previous stage's output region acting as its input buffer.
// Slicing stops at stage boundaries (extract.go resolves reads of the
// stage input region as stencil taps even when the trace wrote them), so
// every stage collapses to a single-stage kernel and the chain reproduces
// the whole filter.
package lift

import (
	"fmt"
	"sort"

	"helium/internal/image"
	"helium/internal/ir"
	"helium/internal/trace"
	"helium/internal/vm"
)

// stackWindow is how far below the initial stack pointer writes are still
// considered stack traffic.  The loader knows the host thread's stack
// extent (the original system reads it from the OS the same way its
// DynamoRIO clients do), so stack frames and spill slots never masquerade
// as output buffers regardless of how hot they are.
const stackWindow = 1 << 20

// Stage is one step of a lifted filter pipeline: a stencil kernel or a
// reduction, with the buffer geometry it reads and writes.  Stage inputs
// chain: stage 0 reads the injected source image, stage k reads stage
// k-1's output region.
type Stage struct {
	// Kernel is the stencil form; nil for reduction stages.
	Kernel *ir.Kernel
	// Red is the reduction form; nil for stencil stages.
	Red *ir.Reduction
	// In and Out are the stage's reconstructed buffer geometries.
	In  InputDesc
	Out OutputDesc
}

// writeRegion is one clustered region of filter writes, in first-write
// order.
type writeRegion struct {
	// addrs is the sorted set of unique written byte addresses.
	addrs []uint64
	// maxWrites is the largest per-byte write count: stencil outputs are
	// written once, reduction accumulators at least twice (init plus one
	// or more updates).
	maxWrites int
	// firstAt is the index in the memory trace of the region's first
	// write, which orders regions into pipeline stages.
	firstAt int
}

// stageRegions clusters the profiling run's writes into candidate stage
// output regions, ordered by first write.  Stack traffic is excluded by
// address: everything else the filter writes is a stage output.
func stageRegions(memTrace []trace.MemAccess) ([]writeRegion, error) {
	writes := make(map[uint64]int)
	firstAt := make(map[uint64]int)
	for i, acc := range memTrace {
		if !acc.Write {
			continue
		}
		for b := uint64(0); b < uint64(acc.Width); b++ {
			a := acc.Addr + b
			if writes[a] == 0 {
				firstAt[a] = i
			}
			writes[a]++
		}
	}
	addrs := make([]uint64, 0, len(writes))
	for a := range writes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	if len(addrs) == 0 {
		return nil, fmt.Errorf("lift: profiling run recorded no writes")
	}

	stackLo := uint64(vm.StackTop) - stackWindow
	var regions []writeRegion
	for _, cluster := range clusterRegions(addrs) {
		lo, hi := cluster[0], cluster[len(cluster)-1]
		if hi <= uint64(vm.StackTop) && lo >= stackLo {
			continue // stack frames, locals, call arguments
		}
		r := writeRegion{addrs: cluster, firstAt: len(memTrace)}
		for _, a := range cluster {
			r.maxWrites = max(r.maxWrites, writes[a])
			r.firstAt = min(r.firstAt, firstAt[a])
		}
		regions = append(regions, r)
	}
	if len(regions) == 0 {
		return nil, fmt.Errorf("lift: every filter write landed on the stack; no output buffer found")
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].firstAt < regions[j].firstAt })
	return regions, nil
}

// stageInput converts a stage's output geometry into the next stage's
// input geometry.
func stageInput(out OutputDesc, interleaved bool) InputDesc {
	return InputDesc{
		Base:        out.Base,
		Stride:      out.Stride,
		Channels:    out.Channels,
		Interleaved: interleaved,
	}
}

// checkStageFootprint demands that a consumer stage's taps stay inside its
// producer's written extent: intermediate buffers have no padding, so a
// tap outside the producer would read bytes no stage defined.
func checkStageFootprint(consumer *ir.Kernel, producer OutputDesc) error {
	xlo, xhi, ylo, yhi, _, _ := footprint(consumer)
	if xlo < 0 || ylo < 0 || xhi >= producer.Width() || yhi >= producer.Rows {
		return fmt.Errorf("lift: stage %s taps x [%d,%d] y [%d,%d], outside its %dx%d intermediate input buffer",
			consumer.Name, xlo, xhi, ylo, yhi, producer.Width(), producer.Rows)
	}
	return nil
}

// stagePlaneSource wraps one stage's computed output (row-major samples)
// as the evaluation source of the next stage.  Intermediate buffers are
// planar; the plane is sized exactly to the stage extent, which
// checkStageFootprint guarantees covers every consumer tap.
func stagePlaneSource(data []byte, outW, outH int) ir.Source {
	p := image.NewPlane(outW, outH, 0)
	p.SetInterior(data)
	return ir.PlaneSource{P: p}
}

// stageDims returns the evaluation extents of stage st when the final
// stage renders at (outW, outH): stage extents track the final extent by
// the constant deltas recorded at lift time.
func stageDims(st *Stage, final *Stage, outW, outH int) (int, int) {
	if st.Red != nil {
		return outW, outH
	}
	fw, fh := finalDims(final)
	return outW + st.Kernel.OutWidth - fw, outH + st.Kernel.OutHeight - fh
}

// finalDims returns the lifted extents of the final stage: the output
// image for stencils, the input domain for reductions.
func finalDims(st *Stage) (int, int) {
	if st.Red != nil {
		return st.Red.DomW, st.Red.DomH
	}
	return st.Kernel.OutWidth, st.Kernel.OutHeight
}
