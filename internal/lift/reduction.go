// Reduction recognition.  A histogram-shaped filter never maps cleanly to
// a stencil: its output bytes are rewritten many times, and which slot a
// write lands in depends on the *value* of an input pixel, not its
// coordinates.  The recognizer instead reads the accumulate-into-table
// pattern straight off the dynamic trace: every slot starts with a
// constant initializer, every later write adds a constant to the slot's
// previous value, and the slot address arithmetic names the input pixel
// through its index register.  Lifting succeeds when every input pixel
// contributes exactly one update and all updates share one canonical index
// expression — the Halide-style update definition `bins[f(in(x,y))] += d`.
package lift

import (
	"fmt"

	"helium/internal/ir"
	"helium/internal/isa"
	"helium/internal/trace"
)

// redEvent is one accumulate event observed in the trace.
type redEvent struct {
	seq  int
	slot int // bin index, from the write address
}

// recognizeReduction lifts an accumulator region written by the filter
// into an ir.Reduction.  in is the stage's input geometry (the image whose
// pixels drive the updates), reg the clustered write region, known the
// injected input.  Two accumulation shapes are recognized: one update per
// pixel (the plain histogram) and one run of consecutive updates ending at
// the last bin per pixel (the cumulative/suffix histogram).  Alongside the
// reduction it returns the trace position of the final table write, which
// gates later stages' reads of the table.
func recognizeReduction(name string, tr *trace.InstTrace, prog *isa.Program, in InputDesc, reg writeRegion, known KnownInput) (*ir.Reduction, *OutputDesc, int, error) {
	if known.Interleaved {
		return nil, nil, 0, fmt.Errorf("lift: reduction over an interleaved input is not supported")
	}
	base := reg.addrs[0]
	size := len(reg.addrs)
	lastWrite := 0
	if last := reg.addrs[size-1]; last-base+1 != uint64(size) {
		return nil, nil, 0, fmt.Errorf("lift: accumulator region at %#x has %d holes; a reduction table is contiguous",
			base, int(last-base+1)-size)
	}

	// Element width: every write to the region must use one width, which
	// is the slot size.
	elem := 0
	var initSeqs, updSeqs []redEvent
	for i := range tr.Insts {
		di := &tr.Insts[i]
		for e := range di.Effects {
			ef := &di.Effects[e]
			d := ef.Dst
			if d.Space != trace.SpaceMem || d.Addr < base || d.Addr >= base+uint64(size) {
				continue
			}
			if elem == 0 {
				elem = int(d.Width)
			} else if int(d.Width) != elem {
				return nil, nil, 0, fmt.Errorf("lift: accumulator writes mix %d- and %d-byte widths at %#x", elem, d.Width, d.Addr)
			}
			if (d.Addr-base)%uint64(elem) != 0 {
				return nil, nil, 0, fmt.Errorf("lift: accumulator write at %#x is not slot-aligned (element width %d)", d.Addr, elem)
			}
			ev := redEvent{seq: di.Seq, slot: int(d.Addr-base) / elem}
			lastWrite = max(lastWrite, di.Seq)
			if ef.Op == trace.OpIdentity {
				initSeqs = append(initSeqs, ev)
			} else {
				updSeqs = append(updSeqs, ev)
			}
		}
	}
	if elem == 0 || size%elem != 0 {
		return nil, nil, 0, fmt.Errorf("lift: accumulator region size %d is not a multiple of its %d-byte slots", size, elem)
	}
	bins := size / elem

	// Per-slot initial values, from the identity stores that precede the
	// accumulation (uninitialized slots keep whatever the dump read: the
	// legacy binary never defined them, so neither do we — reject).
	ex := &extractor{tr: tr, prog: prog, bufs: &Buffers{In: in}, abs: true}
	init := make([]uint64, bins)
	seenInit := make([]bool, bins)
	for _, ev := range initSeqs {
		di := &tr.Insts[ev.seq]
		ef := findEffect(di, base+uint64(ev.slot*elem), uint8(elem))
		if ef == nil {
			return nil, nil, 0, fmt.Errorf("lift: initializer at seq %d writes only part of slot %d", ev.seq, ev.slot)
		}
		c, err := ex.sliceConst(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, nil, 0, fmt.Errorf("lift: slot %d initializer: %w", ev.slot, err)
		}
		init[ev.slot] = uint64(c)
		seenInit[ev.slot] = true
	}
	for s, ok := range seenInit {
		if !ok {
			return nil, nil, 0, fmt.Errorf("lift: accumulator slot %d is updated but never initialized by the filter", s)
		}
	}

	// Accumulate events: slot += constant, with the slot index addressed
	// through an input-dependent register.  An event count equal to the
	// pixel count is the plain one-update-per-pixel histogram; otherwise
	// the events must group into suffix runs, one per pixel, whose first
	// update carries the pixel's index.
	var indexExpr *ir.Expr
	delta := uint64(0)
	haveDelta := false
	seen := make(map[[2]int]int)

	suffix := false
	firsts := updSeqs
	if len(updSeqs) > 0 && len(updSeqs) != known.Width*known.Height {
		runs, err := suffixRuns(updSeqs, bins)
		if err != nil {
			return nil, nil, 0, err
		}
		suffix, firsts = true, runs
	}

	updateDelta := func(ev redEvent) error {
		di := &tr.Insts[ev.seq]
		slotAddr := base + uint64(ev.slot*elem)
		ef := findEffect(di, slotAddr, uint8(elem))
		if ef == nil {
			return fmt.Errorf("lift: update at seq %d writes only part of slot %d", ev.seq, ev.slot)
		}
		if ef.Op != trace.OpAdd || len(ef.Srcs) != 2 {
			return fmt.Errorf("lift: update %v at %#x (seq %d) is %v; only additive accumulation (add/inc into the slot) is liftable",
				di.Op, di.Addr, ev.seq, ef.Op)
		}
		// One operand reads the slot back (the accumulator), the other is
		// the constant contribution.
		acc := -1
		for s, src := range ef.Srcs {
			if src.Space == trace.SpaceMem && src.Addr == slotAddr && int(src.Width) == elem {
				acc = s
			}
		}
		if acc < 0 {
			return fmt.Errorf("lift: update %v at %#x (seq %d) does not read its own slot back; not an accumulation",
				di.Op, di.Addr, ev.seq)
		}
		d, err := ex.sliceConst(di.Seq, ef.Srcs[1-acc])
		if err != nil {
			return fmt.Errorf("lift: update at seq %d: %w", ev.seq, err)
		}
		if haveDelta && uint64(d) != delta {
			return fmt.Errorf("lift: updates add different constants (%d vs %d); only uniform deltas are liftable", delta, d)
		}
		delta, haveDelta = uint64(d), true
		return nil
	}

	updateIndex := func(ev redEvent) error {
		di := &tr.Insts[ev.seq]
		slotAddr := base + uint64(ev.slot*elem)
		idx, px, py, err := ex.indexExpr(di, slotAddr, base, elem)
		if err != nil {
			return fmt.Errorf("lift: update at seq %d: %w", ev.seq, err)
		}
		if indexExpr == nil {
			indexExpr = idx
		} else if indexExpr.Key() != idx.Key() {
			return fmt.Errorf("lift: update at seq %d computes index %s, others %s; index expressions did not collapse",
				ev.seq, idx, indexExpr)
		}
		seen[[2]int{px, py}]++
		return nil
	}

	for _, ev := range updSeqs {
		if err := updateDelta(ev); err != nil {
			return nil, nil, 0, err
		}
	}
	for _, ev := range firsts {
		if err := updateIndex(ev); err != nil {
			return nil, nil, 0, err
		}
	}
	if indexExpr == nil {
		return nil, nil, 0, fmt.Errorf("lift: accumulator region at %#x has initializers but no updates", base)
	}

	// Every interior pixel must contribute exactly once: the reduction
	// domain is the whole input.
	for y := 0; y < known.Height; y++ {
		for x := 0; x < known.Width; x++ {
			switch n := seen[[2]int{x, y}]; {
			case n == 0:
				return nil, nil, 0, fmt.Errorf("lift: input pixel (%d,%d) contributed no table update; the reduction domain is not the whole image", x, y)
			case n > 1:
				return nil, nil, 0, fmt.Errorf("lift: input pixel (%d,%d) contributed %d updates; only one update per pixel is liftable", x, y, n)
			}
		}
	}
	if len(seen) != known.Width*known.Height {
		return nil, nil, 0, fmt.Errorf("lift: %d update pixels fall outside the %dx%d input interior", len(seen)-known.Width*known.Height, known.Width, known.Height)
	}

	red := &ir.Reduction{
		Name: name,
		DomW: known.Width, DomH: known.Height,
		Bins: bins, Elem: elem,
		Init:   init,
		Index:  indexExpr,
		Delta:  delta & (1<<(8*elem) - 1),
		Suffix: suffix,
	}
	out := &OutputDesc{
		Base:     base,
		Stride:   int64(size),
		RowBytes: size,
		Rows:     1,
		Channels: 1,
	}
	return red, out, lastWrite, nil
}

// suffixRuns groups the accumulate events into maximal runs of
// consecutive ascending slots, each ending at the last bin — the trace
// shape of the cumulative histogram, where every pixel updates
// bins[idx..bins-1] in order.  It returns each run's first event, which
// carries the pixel's index.
func suffixRuns(upd []redEvent, bins int) ([]redEvent, error) {
	var firsts []redEvent
	for i := 0; i < len(upd); {
		j := i
		for j+1 < len(upd) && upd[j].slot != bins-1 && upd[j+1].slot == upd[j].slot+1 {
			j++
		}
		if upd[j].slot != bins-1 {
			return nil, fmt.Errorf("lift: accumulator updates are neither one per input pixel nor suffix runs: the run starting at seq %d (slot %d) stops at slot %d of %d bins",
				upd[i].seq, upd[i].slot, upd[j].slot, bins)
		}
		firsts = append(firsts, upd[i])
		i = j + 1
	}
	return firsts, nil
}

// sliceConst slices a reference and demands it canonicalize to an integer
// constant.
func (ex *extractor) sliceConst(seq int, ref trace.Ref) (int64, error) {
	ex.memo = make(map[memoKey]*ir.Expr)
	ex.nodes, ex.limit = 0, maxTreeNodes
	e, err := ex.refExpr(seq, ref)
	if err != nil {
		return 0, err
	}
	c := Canonicalize(e)
	if c.Op != ir.OpConst {
		return 0, fmt.Errorf("value %s does not reduce to a constant", c)
	}
	return c.Val, nil
}

// indexExpr reconstructs the bin index of one update as an expression
// over the input pixel that drove it.  The update's memory operand is
// base + index*scale + disp; with scale equal to the slot width the index
// register's slice *is* the bin index (plus a constant fold of the base
// residual), and the absolute input load inside it names the pixel.
func (ex *extractor) indexExpr(di *trace.DynInst, slotAddr, base uint64, elem int) (idx *ir.Expr, px, py int, err error) {
	pc, ok := ex.prog.Lookup(di.Addr)
	if !ok {
		return nil, 0, 0, fmt.Errorf("update at %#x is not in the program", di.Addr)
	}
	inst := ex.prog.Insts[pc]
	var memOp *isa.Operand
	for _, o := range []*isa.Operand{&inst.Dst, &inst.Src, &inst.Src2} {
		if o.Kind == isa.KindMem {
			memOp = o
			break
		}
	}
	if memOp == nil || !di.HasMem || di.MemAddr != slotAddr {
		return nil, 0, 0, fmt.Errorf("update %v at %#x has no addressable memory operand", di.Op, di.Addr)
	}
	if memOp.Index == isa.RegNone {
		return nil, 0, 0, fmt.Errorf("update %v at %#x addresses a fixed slot; a data-dependent index register is what makes it a reduction", di.Op, di.Addr)
	}
	if int(memOp.Scale) != elem {
		return nil, 0, 0, fmt.Errorf("update %v at %#x scales its index by %d but slots are %d bytes wide", di.Op, di.Addr, memOp.Scale, elem)
	}

	ex.memo = make(map[memoKey]*ir.Expr)
	ex.nodes, ex.limit = 0, maxTreeNodes
	e, err := ex.addrRegExpr(di.Seq, di, memOp.Index)
	if err != nil {
		return nil, 0, 0, err
	}

	// Constant residual of the addressing: (base reg + disp - table base)
	// in slots.
	baseVal := int64(0)
	if memOp.Base != isa.RegNone {
		found := false
		for _, ref := range di.AddrRefs {
			if ref.Space == trace.SpaceReg && ref.Addr == trace.RegAddr(memOp.Base) {
				baseVal, found = int64(ref.Val), true
				break
			}
		}
		if !found {
			return nil, 0, 0, fmt.Errorf("update at %#x: base register %v not captured", di.Addr, memOp.Base)
		}
	}
	residual := baseVal + int64(int32(memOp.Disp)) - int64(base)
	if residual%int64(elem) != 0 {
		return nil, 0, 0, fmt.Errorf("update at %#x: address residual %d is not slot-aligned", di.Addr, residual)
	}
	if k := residual / int64(elem); k != 0 {
		e = ir.Bin(ir.OpAdd, 4, e, ir.Const(k))
	}

	// The slice carries absolute input loads; exactly one pixel must
	// appear, and it becomes the reduction's relative (0,0) tap.
	px, py = -1, -1
	bad := false
	visitLoads(e, func(l *ir.Expr) {
		if l.DC != 0 || (px >= 0 && (l.DX != px || l.DY != py)) {
			bad = true
			return
		}
		px, py = l.DX, l.DY
	})
	if bad {
		return nil, 0, 0, fmt.Errorf("update at %#x mixes several input pixels or channels in one index", di.Addr)
	}
	if px < 0 {
		return nil, 0, 0, fmt.Errorf("update at %#x has an index independent of the input; not a data reduction", di.Addr)
	}
	visitLoads(e, func(l *ir.Expr) { l.DX, l.DY = 0, 0 })
	return Canonicalize(e), px, py, nil
}
