// Reduction recognition.  A histogram-shaped filter never maps cleanly to
// a stencil: its output bytes are rewritten many times, and which slot a
// write lands in depends on the *value* of an input pixel, not its
// coordinates.  The recognizer instead reads the accumulate-into-table
// pattern straight off the dynamic trace: every slot starts with a
// constant initializer, every later write adds a constant to the slot's
// previous value, and the slot address arithmetic names the input pixel
// through its index register.  Lifting succeeds when every input pixel
// contributes exactly one update and all updates share one canonical index
// expression — the Halide-style update definition `bins[f(in(x,y))] += d`.
package lift

import (
	"fmt"

	"helium/internal/ir"
	"helium/internal/isa"
	"helium/internal/trace"
)

// redEvent is one accumulate event observed in the trace.
type redEvent struct {
	seq  int
	slot int // bin index, from the write address
}

// recognizeReduction lifts an accumulator region written by the filter
// into an ir.Reduction.  in is the stage's input geometry (the image whose
// pixels drive the updates), reg the clustered write region, known the
// injected input.
func recognizeReduction(name string, tr *trace.InstTrace, prog *isa.Program, in InputDesc, reg writeRegion, known KnownInput) (*ir.Reduction, *OutputDesc, error) {
	if known.Interleaved {
		return nil, nil, fmt.Errorf("lift: reduction over an interleaved input is not supported")
	}
	base := reg.addrs[0]
	size := len(reg.addrs)
	if last := reg.addrs[size-1]; last-base+1 != uint64(size) {
		return nil, nil, fmt.Errorf("lift: accumulator region at %#x has %d holes; a reduction table is contiguous",
			base, int(last-base+1)-size)
	}

	// Element width: every write to the region must use one width, which
	// is the slot size.
	elem := 0
	var initSeqs, updSeqs []redEvent
	for i := range tr.Insts {
		di := &tr.Insts[i]
		for e := range di.Effects {
			ef := &di.Effects[e]
			d := ef.Dst
			if d.Space != trace.SpaceMem || d.Addr < base || d.Addr >= base+uint64(size) {
				continue
			}
			if elem == 0 {
				elem = int(d.Width)
			} else if int(d.Width) != elem {
				return nil, nil, fmt.Errorf("lift: accumulator writes mix %d- and %d-byte widths at %#x", elem, d.Width, d.Addr)
			}
			if (d.Addr-base)%uint64(elem) != 0 {
				return nil, nil, fmt.Errorf("lift: accumulator write at %#x is not slot-aligned (element width %d)", d.Addr, elem)
			}
			ev := redEvent{seq: di.Seq, slot: int(d.Addr-base) / elem}
			if ef.Op == trace.OpIdentity {
				initSeqs = append(initSeqs, ev)
			} else {
				updSeqs = append(updSeqs, ev)
			}
		}
	}
	if elem == 0 || size%elem != 0 {
		return nil, nil, fmt.Errorf("lift: accumulator region size %d is not a multiple of its %d-byte slots", size, elem)
	}
	bins := size / elem

	// Per-slot initial values, from the identity stores that precede the
	// accumulation (uninitialized slots keep whatever the dump read: the
	// legacy binary never defined them, so neither do we — reject).
	ex := &extractor{tr: tr, prog: prog, bufs: &Buffers{In: in}, abs: true}
	init := make([]uint64, bins)
	seenInit := make([]bool, bins)
	for _, ev := range initSeqs {
		di := &tr.Insts[ev.seq]
		ef := findEffect(di, base+uint64(ev.slot*elem), uint8(elem))
		if ef == nil {
			return nil, nil, fmt.Errorf("lift: initializer at seq %d writes only part of slot %d", ev.seq, ev.slot)
		}
		c, err := ex.sliceConst(di.Seq, ef.Srcs[0])
		if err != nil {
			return nil, nil, fmt.Errorf("lift: slot %d initializer: %w", ev.slot, err)
		}
		init[ev.slot] = uint64(c)
		seenInit[ev.slot] = true
	}
	for s, ok := range seenInit {
		if !ok {
			return nil, nil, fmt.Errorf("lift: accumulator slot %d is updated but never initialized by the filter", s)
		}
	}

	// Accumulate events: slot += constant, with the slot index addressed
	// through an input-dependent register.
	var indexExpr *ir.Expr
	delta := uint64(0)
	haveDelta := false
	seen := make(map[[2]int]int)
	for _, ev := range updSeqs {
		di := &tr.Insts[ev.seq]
		slotAddr := base + uint64(ev.slot*elem)
		ef := findEffect(di, slotAddr, uint8(elem))
		if ef == nil {
			return nil, nil, fmt.Errorf("lift: update at seq %d writes only part of slot %d", ev.seq, ev.slot)
		}
		if ef.Op != trace.OpAdd || len(ef.Srcs) != 2 {
			return nil, nil, fmt.Errorf("lift: update %v at %#x (seq %d) is %v; only additive accumulation (add/inc into the slot) is liftable",
				di.Op, di.Addr, ev.seq, ef.Op)
		}
		// One operand reads the slot back (the accumulator), the other is
		// the constant contribution.
		acc := -1
		for s, src := range ef.Srcs {
			if src.Space == trace.SpaceMem && src.Addr == slotAddr && int(src.Width) == elem {
				acc = s
			}
		}
		if acc < 0 {
			return nil, nil, fmt.Errorf("lift: update %v at %#x (seq %d) does not read its own slot back; not an accumulation",
				di.Op, di.Addr, ev.seq)
		}
		d, err := ex.sliceConst(di.Seq, ef.Srcs[1-acc])
		if err != nil {
			return nil, nil, fmt.Errorf("lift: update at seq %d: %w", ev.seq, err)
		}
		if haveDelta && uint64(d) != delta {
			return nil, nil, fmt.Errorf("lift: updates add different constants (%d vs %d); only uniform deltas are liftable", delta, d)
		}
		delta, haveDelta = uint64(d), true

		idx, px, py, err := ex.indexExpr(di, slotAddr, base, elem)
		if err != nil {
			return nil, nil, fmt.Errorf("lift: update at seq %d: %w", ev.seq, err)
		}
		if indexExpr == nil {
			indexExpr = idx
		} else if indexExpr.Key() != idx.Key() {
			return nil, nil, fmt.Errorf("lift: update at seq %d computes index %s, others %s; index expressions did not collapse",
				ev.seq, idx, indexExpr)
		}
		seen[[2]int{px, py}]++
	}
	if indexExpr == nil {
		return nil, nil, fmt.Errorf("lift: accumulator region at %#x has initializers but no updates", base)
	}

	// Every interior pixel must contribute exactly once: the reduction
	// domain is the whole input.
	for y := 0; y < known.Height; y++ {
		for x := 0; x < known.Width; x++ {
			switch n := seen[[2]int{x, y}]; {
			case n == 0:
				return nil, nil, fmt.Errorf("lift: input pixel (%d,%d) contributed no table update; the reduction domain is not the whole image", x, y)
			case n > 1:
				return nil, nil, fmt.Errorf("lift: input pixel (%d,%d) contributed %d updates; only one update per pixel is liftable", x, y, n)
			}
		}
	}
	if len(seen) != known.Width*known.Height {
		return nil, nil, fmt.Errorf("lift: %d update pixels fall outside the %dx%d input interior", len(seen)-known.Width*known.Height, known.Width, known.Height)
	}

	red := &ir.Reduction{
		Name: name,
		DomW: known.Width, DomH: known.Height,
		Bins: bins, Elem: elem,
		Init:  init,
		Index: indexExpr,
		Delta: delta & (1<<(8*elem) - 1),
	}
	out := &OutputDesc{
		Base:     base,
		Stride:   int64(size),
		RowBytes: size,
		Rows:     1,
		Channels: 1,
	}
	return red, out, nil
}

// sliceConst slices a reference and demands it canonicalize to an integer
// constant.
func (ex *extractor) sliceConst(seq int, ref trace.Ref) (int64, error) {
	ex.memo = make(map[memoKey]*ir.Expr)
	ex.nodes, ex.limit = 0, maxTreeNodes
	e, err := ex.refExpr(seq, ref)
	if err != nil {
		return 0, err
	}
	c := Canonicalize(e)
	if c.Op != ir.OpConst {
		return 0, fmt.Errorf("value %s does not reduce to a constant", c)
	}
	return c.Val, nil
}

// indexExpr reconstructs the bin index of one update as an expression
// over the input pixel that drove it.  The update's memory operand is
// base + index*scale + disp; with scale equal to the slot width the index
// register's slice *is* the bin index (plus a constant fold of the base
// residual), and the absolute input load inside it names the pixel.
func (ex *extractor) indexExpr(di *trace.DynInst, slotAddr, base uint64, elem int) (idx *ir.Expr, px, py int, err error) {
	pc, ok := ex.prog.Lookup(di.Addr)
	if !ok {
		return nil, 0, 0, fmt.Errorf("update at %#x is not in the program", di.Addr)
	}
	inst := ex.prog.Insts[pc]
	var memOp *isa.Operand
	for _, o := range []*isa.Operand{&inst.Dst, &inst.Src, &inst.Src2} {
		if o.Kind == isa.KindMem {
			memOp = o
			break
		}
	}
	if memOp == nil || !di.HasMem || di.MemAddr != slotAddr {
		return nil, 0, 0, fmt.Errorf("update %v at %#x has no addressable memory operand", di.Op, di.Addr)
	}
	if memOp.Index == isa.RegNone {
		return nil, 0, 0, fmt.Errorf("update %v at %#x addresses a fixed slot; a data-dependent index register is what makes it a reduction", di.Op, di.Addr)
	}
	if int(memOp.Scale) != elem {
		return nil, 0, 0, fmt.Errorf("update %v at %#x scales its index by %d but slots are %d bytes wide", di.Op, di.Addr, memOp.Scale, elem)
	}

	ex.memo = make(map[memoKey]*ir.Expr)
	ex.nodes, ex.limit = 0, maxTreeNodes
	e, err := ex.addrRegExpr(di.Seq, di, memOp.Index)
	if err != nil {
		return nil, 0, 0, err
	}

	// Constant residual of the addressing: (base reg + disp - table base)
	// in slots.
	baseVal := int64(0)
	if memOp.Base != isa.RegNone {
		found := false
		for _, ref := range di.AddrRefs {
			if ref.Space == trace.SpaceReg && ref.Addr == trace.RegAddr(memOp.Base) {
				baseVal, found = int64(ref.Val), true
				break
			}
		}
		if !found {
			return nil, 0, 0, fmt.Errorf("update at %#x: base register %v not captured", di.Addr, memOp.Base)
		}
	}
	residual := baseVal + int64(int32(memOp.Disp)) - int64(base)
	if residual%int64(elem) != 0 {
		return nil, 0, 0, fmt.Errorf("update at %#x: address residual %d is not slot-aligned", di.Addr, residual)
	}
	if k := residual / int64(elem); k != 0 {
		e = ir.Bin(ir.OpAdd, 4, e, ir.Const(k))
	}

	// The slice carries absolute input loads; exactly one pixel must
	// appear, and it becomes the reduction's relative (0,0) tap.
	px, py = -1, -1
	bad := false
	visitLoads(e, func(l *ir.Expr) {
		if l.DC != 0 || (px >= 0 && (l.DX != px || l.DY != py)) {
			bad = true
			return
		}
		px, py = l.DX, l.DY
	})
	if bad {
		return nil, 0, 0, fmt.Errorf("update at %#x mixes several input pixels or channels in one index", di.Addr)
	}
	if px < 0 {
		return nil, 0, 0, fmt.Errorf("update at %#x has an index independent of the input; not a data reduction", di.Addr)
	}
	visitLoads(e, func(l *ir.Expr) { l.DX, l.DY = 0, 0 })
	return Canonicalize(e), px, py, nil
}
