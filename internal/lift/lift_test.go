package lift_test

import (
	"bytes"
	"fmt"
	"testing"

	"helium/internal/legacy"
	"helium/internal/lift"
	"helium/internal/vm"
)

var liftConfigs = []legacy.Config{
	{Width: 22, Height: 10, Seed: 1},
	{Width: 21, Height: 9, Seed: 7},  // odd width exercises the peeled remainders
	{Width: 32, Height: 16, Seed: 3}, // aligned width: planar buffers pack tightly
}

// target adapts a legacy instance to a lifting target.
func target(inst *legacy.Instance) lift.Target {
	return lift.Target{
		Prog:  inst.Prog,
		Setup: inst.Setup,
		Known: lift.KnownInput{
			Width:       inst.Width,
			Height:      inst.Height,
			Channels:    inst.Channels,
			Interleaved: inst.Interleaved,
			Interior:    inst.InputInterior,
		},
	}
}

// goldenIR pins the lifted, canonicalized expression of each corpus
// kernel.  These strings are the pipeline's user-visible product: a
// Halide-like update definition recovered from the stripped binary.
var goldenIR = map[string]string{
	"brighten": "out(x, y, c) = lut[in(x, y)]",
	"boxblur3": "out(x, y, c) = ((in(x-1, y-1) + in(x-1, y) + in(x-1, y+1) + in(x, y-1) + in(x, y) + in(x, y+1) + in(x+1, y-1) + in(x+1, y) + in(x+1, y+1) + 4) / 9)",
	"sharpen":  "out(x, y, c) = min(max(round(((sqrt((float(in(x, y)) *. float(in(x, y)))) *. 5) -. (((float(in(x-1, y)) +. float(in(x+1, y))) +. float(in(x, y-1))) +. float(in(x, y+1))))), 0), 255)",
}

// TestLiftEndToEnd runs the full pipeline on every corpus kernel and image
// size: localization must rediscover the ground-truth filter entry, all
// sample trees must collapse to a single canonical tree per channel, and
// evaluating the lifted IR must reproduce the VM's output pixel-exactly.
func TestLiftEndToEnd(t *testing.T) {
	for _, k := range legacy.Kernels() {
		for _, cfg := range liftConfigs {
			t.Run(fmt.Sprintf("%s/%s", k.Name, cfg), func(t *testing.T) {
				inst := k.Instantiate(cfg)
				res, err := lift.Lift(k.Name, target(inst))
				if err != nil {
					t.Fatalf("Lift: %v", err)
				}
				if res.Loc.FilterEntry != inst.FilterEntry {
					t.Errorf("localization found filter %#x, ground truth %#x (candidates %#x)",
						res.Loc.FilterEntry, inst.FilterEntry, res.Loc.Candidates)
				}
				if err := res.Verify(); err != nil {
					t.Errorf("Verify: %v", err)
				}
				if res.Samples == 0 || res.TraceInsts == 0 {
					t.Errorf("implausible stats: %d samples, %d trace insts", res.Samples, res.TraceInsts)
				}
			})
		}
	}
}

// TestLiftGoldenIR pins the printed IR of each lifted kernel.
func TestLiftGoldenIR(t *testing.T) {
	for _, k := range legacy.Kernels() {
		t.Run(k.Name, func(t *testing.T) {
			inst := k.Instantiate(liftConfigs[0])
			res, err := lift.Lift(k.Name, target(inst))
			if err != nil {
				t.Fatalf("Lift: %v", err)
			}
			got := fmt.Sprintf("out(x, y, c) = %s", res.Kernel.Trees[0])
			if got != goldenIR[k.Name] {
				t.Errorf("lifted IR drifted:\n got:  %s\n want: %s", got, goldenIR[k.Name])
			}
			for c, tree := range res.Kernel.Trees[1:] {
				if tree.Key() != res.Kernel.Trees[0].Key() {
					t.Errorf("channel %d tree differs from channel 0", c+1)
				}
			}
		})
	}
}

// TestLiftedKernelOnFreshInput checks that a lifted kernel generalizes: it
// is evaluated against a different image (new size and seed) and compared
// with the VM running the legacy binary on that same image.
func TestLiftedKernelOnFreshInput(t *testing.T) {
	for _, k := range legacy.Kernels() {
		t.Run(k.Name, func(t *testing.T) {
			res, err := lift.Lift(k.Name, target(k.Instantiate(liftConfigs[0])))
			if err != nil {
				t.Fatalf("Lift: %v", err)
			}
			fresh := k.Instantiate(legacy.Config{Width: 37, Height: 14, Seed: 99})
			fres, err := lift.Lift(k.Name, target(fresh))
			if err != nil {
				t.Fatalf("Lift(fresh): %v", err)
			}
			// The lifted kernel from the first image, evaluated over the
			// fresh image's input, must match the fresh VM output.
			kernel := *res.Kernel
			kernel.OutWidth = fres.Kernel.OutWidth
			kernel.OutHeight = fres.Kernel.OutHeight
			want, err := fres.VMOutput()
			if err != nil {
				t.Fatalf("VMOutput: %v", err)
			}
			got, err := kernel.Eval(fres.InputSource())
			if err != nil {
				t.Fatalf("Eval: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("lifted kernel does not generalize to a fresh input")
			}
		})
	}
}

// BenchmarkVMBoxBlur measures emulating the legacy box blur end to end.
func BenchmarkVMBoxBlur(b *testing.B) {
	k, _ := legacy.Lookup("boxblur3")
	inst := k.Instantiate(legacy.Config{Width: 64, Height: 64, Seed: 3})
	m := vm.NewMachine(inst.Prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Setup(m, true)
		if err := m.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIREvalBoxBlur measures evaluating the lifted box blur over the
// same image, the "recovered program" the pipeline produces.
func BenchmarkIREvalBoxBlur(b *testing.B) {
	k, _ := legacy.Lookup("boxblur3")
	inst := k.Instantiate(legacy.Config{Width: 64, Height: 64, Seed: 3})
	res, err := lift.Lift(k.Name, target(inst))
	if err != nil {
		b.Fatal(err)
	}
	src := res.InputSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Kernel.Eval(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiftPipeline measures the whole pipeline, trace to verified IR.
func BenchmarkLiftPipeline(b *testing.B) {
	k, _ := legacy.Lookup("brighten")
	inst := k.Instantiate(legacy.Config{Width: 32, Height: 16, Seed: 3})
	tgt := target(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lift.Lift(k.Name, tgt); err != nil {
			b.Fatal(err)
		}
	}
}
