package lift_test

import (
	"bytes"
	"fmt"
	"testing"

	"helium/internal/ir"
	"helium/internal/legacy"
	"helium/internal/lift"
	"helium/internal/trace"
	"helium/internal/vm"
)

var liftConfigs = []legacy.Config{
	{Width: 22, Height: 10, Seed: 1},
	{Width: 21, Height: 9, Seed: 7},  // odd width exercises the peeled remainders
	{Width: 32, Height: 16, Seed: 3}, // aligned width: planar buffers pack tightly
}

// target adapts a legacy instance to a lifting target.
func target(inst *legacy.Instance) lift.Target {
	return lift.Target{
		Prog:  inst.Prog,
		Setup: inst.Setup,
		Known: lift.KnownInput{
			Width:       inst.Width,
			Height:      inst.Height,
			Channels:    inst.Channels,
			Interleaved: inst.Interleaved,
			Interior:    inst.InputInterior,
		},
	}
}

// goldenIR pins the lifted, canonicalized definition of each corpus
// kernel, one entry per pipeline stage.  These strings are the pipeline's
// user-visible product: Halide-like update definitions recovered from the
// stripped binaries — including the multi-stage blur chain, the histogram
// reduction, and the branch-clamped sharpen collapsed to min/max.
var goldenIR = map[string][]string{
	"brighten": {"out(x, y, c) = lut[in(x, y)]"},
	"boxblur3": {"out(x, y, c) = ((in(x-1, y-1) + in(x-1, y) + in(x-1, y+1) + in(x, y-1) + in(x, y) + in(x, y+1) + in(x+1, y-1) + in(x+1, y) + in(x+1, y+1) + 4) / 9)"},
	"sharpen":  {"out(x, y, c) = min(max(round(((sqrt((float(in(x, y)) *. float(in(x, y)))) *. 5) -. (((float(in(x-1, y)) +. float(in(x+1, y))) +. float(in(x, y-1))) +. float(in(x, y+1))))), 0), 255)"},
	"blur2p": {
		"out(x, y, c) = ((in(x-1, y) + in(x, y) + in(x+1, y) + 1) / 3)",
		"out(x, y, c) = ((in(x, y-1) + in(x, y) + in(x, y+1) + 1) / 3)",
	},
	"hist256":      {"bins[in(x, y)] += 1"},
	"clampsharp":   {"out(x, y, c) = min(max((((((in(x, y) * 5) - in(x-1, y)) - in(x+1, y)) - in(x, y-1)) - in(x, y+1)), 0), 255)"},
	"downsample2x": {"out(x, y, c) = byte0(((in(x, y) + in(x, y+1) + in(x+1, y) + in(x+1, y+1) + 2) >> 2)) @ x' = 2*x, y' = 2*y"},
	"upsample2x":   {"out(x, y, c) = in(x, y) @ x' = (x)/2, y' = (y)/2"},
	"histeq": {
		"bins[(in(x, y) >> 3)..] += 1",
		"out(x, y, c) = byte0(((tbl[(in(x, y) >> 3)] * 255) / tbl[31]))",
	},
}

// axisIR renders one index map the way the goldens pin it (the same
// formula ir.AxisMap renders, with the axis named).
func axisIR(m ir.AxisMap, axis string) string {
	num, den, off := m.Norm()
	s := axis
	if num != 1 {
		s = fmt.Sprintf("%d*%s", num, axis)
	}
	if off != 0 {
		s = fmt.Sprintf("%s+%d", s, off)
	}
	if den != 1 {
		s = fmt.Sprintf("(%s)/%d", s, den)
	}
	return s
}

// stageIR renders one lifted stage the way the goldens pin it: cumulative
// reductions mark their suffix range, resize stages append their index
// maps.
func stageIR(st *lift.Stage) string {
	if st.Red != nil {
		if st.Red.Suffix {
			return fmt.Sprintf("bins[%s..] += %d", st.Red.Index, st.Red.Delta)
		}
		return fmt.Sprintf("bins[%s] += %d", st.Red.Index, st.Red.Delta)
	}
	s := fmt.Sprintf("out(x, y, c) = %s", st.Kernel.Trees[0])
	if st.Kernel.Mapped() {
		s += fmt.Sprintf(" @ x' = %s, y' = %s", axisIR(st.Kernel.MapX, "x"), axisIR(st.Kernel.MapY, "y"))
	}
	return s
}

// TestLiftEndToEnd runs the full pipeline on every corpus kernel and image
// size: localization must rediscover the ground-truth filter entry, all
// sample trees must collapse to a single canonical tree per channel, and
// evaluating the lifted IR must reproduce the VM's output pixel-exactly.
func TestLiftEndToEnd(t *testing.T) {
	for _, k := range legacy.Kernels() {
		for _, cfg := range liftConfigs {
			t.Run(fmt.Sprintf("%s/%s", k.Name, cfg), func(t *testing.T) {
				inst := k.Instantiate(cfg)
				res, err := lift.Lift(k.Name, target(inst))
				if err != nil {
					t.Fatalf("Lift: %v", err)
				}
				if res.Loc.FilterEntry != inst.FilterEntry {
					t.Errorf("localization found filter %#x, ground truth %#x (candidates %#x)",
						res.Loc.FilterEntry, inst.FilterEntry, res.Loc.Candidates)
				}
				if err := res.Verify(); err != nil {
					t.Errorf("Verify: %v", err)
				}
				if _, err := res.VerifyCompiled(0); err != nil {
					t.Errorf("VerifyCompiled: %v", err)
				}
				if res.Samples == 0 || res.TraceInsts == 0 {
					t.Errorf("implausible stats: %d samples, %d trace insts", res.Samples, res.TraceInsts)
				}
				// The flight recorder: every run of the full pipeline must
				// leave phase spans behind (Verify/VerifyCompiled above
				// accumulate theirs onto the same result).
				for _, p := range []lift.Phase{lift.PhaseLocalize, lift.PhaseTrace, lift.PhaseBuffers, lift.PhaseVerify, lift.PhaseCompile} {
					if res.PhaseDur(p) <= 0 {
						t.Errorf("phase %s has no recorded wall time", p)
					}
				}
			})
		}
	}
}

// TestLiftGoldenIR pins the printed IR of each lifted kernel, stage by
// stage — the multi-stage golden end-to-end check of the new corpus.
func TestLiftGoldenIR(t *testing.T) {
	for _, k := range legacy.Kernels() {
		t.Run(k.Name, func(t *testing.T) {
			inst := k.Instantiate(liftConfigs[0])
			res, err := lift.Lift(k.Name, target(inst))
			if err != nil {
				t.Fatalf("Lift: %v", err)
			}
			want := goldenIR[k.Name]
			if len(res.Stages) != len(want) {
				t.Fatalf("lifted %d stage(s), golden has %d", len(res.Stages), len(want))
			}
			for i := range res.Stages {
				st := &res.Stages[i]
				if got := stageIR(st); got != want[i] {
					t.Errorf("stage %d lifted IR drifted:\n got:  %s\n want: %s", i, got, want[i])
				}
				if st.Kernel == nil {
					continue
				}
				for c, tree := range st.Kernel.Trees[1:] {
					if tree.Key() != st.Kernel.Trees[0].Key() {
						t.Errorf("stage %d channel %d tree differs from channel 0", i, c+1)
					}
				}
			}
		})
	}
}

// TestLiftedKernelOnFreshInput checks that a lifted result generalizes:
// the whole stage chain is evaluated against a different image (new size
// and seed) and compared with the VM running the legacy binary on that
// same image.
func TestLiftedKernelOnFreshInput(t *testing.T) {
	for _, k := range legacy.Kernels() {
		t.Run(k.Name, func(t *testing.T) {
			res, err := lift.Lift(k.Name, target(k.Instantiate(liftConfigs[0])))
			if err != nil {
				t.Fatalf("Lift: %v", err)
			}
			fresh := k.Instantiate(legacy.Config{Width: 37, Height: 14, Seed: 99})
			fres, err := lift.Lift(k.Name, target(fresh))
			if err != nil {
				t.Fatalf("Lift(fresh): %v", err)
			}
			// The pipeline lifted from the first image, evaluated over the
			// fresh image's input, must match the fresh VM output.
			w, h := fres.EvalDims()
			want, err := fres.VMOutput()
			if err != nil {
				t.Fatalf("VMOutput: %v", err)
			}
			got, err := res.EvalIRAt(fres.InputSource(), w, h)
			if err != nil {
				t.Fatalf("EvalIRAt: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("lifted result does not generalize to a fresh input")
			}
			// The compiled backend must generalize identically, on the
			// fused backing and through the parallel driver alike.
			c, err := res.Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			fsrc := fres.MaterializeInput()
			cgot, err := c.EvalAt(fsrc, w, h)
			if err != nil {
				t.Fatalf("compiled EvalAt: %v", err)
			}
			if !bytes.Equal(cgot, want) {
				t.Errorf("compiled result does not generalize to a fresh input")
			}
			pgot, err := c.EvalParallelAt(fsrc, w, h, 0)
			if err != nil {
				t.Fatalf("compiled EvalParallelAt: %v", err)
			}
			if !bytes.Equal(pgot, want) {
				t.Errorf("parallel compiled result does not generalize to a fresh input")
			}
		})
	}
}

// TestMaterializeInputCrossChannel pins the fallback for cross-channel
// taps: an interleaved kernel whose tap steps outside a pixel's own
// samples cannot be represented by a concrete Interleaved backing (the
// last channel would index past it), so MaterializeInput must hand back
// the dump-backed source — and evaluation must agree either way.
func TestMaterializeInputCrossChannel(t *testing.T) {
	dump := trace.NewMemDump(4096)
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i*7 + 3)
	}
	dump.Pages[0x1000] = page
	mk := func(dc int) *lift.Result {
		tree := ir.Load(0, 0, dc)
		in := lift.InputDesc{Base: 0x1100, Stride: 16, Channels: 3, Interleaved: true}
		k := &ir.Kernel{Name: "xchan", OutWidth: 3, OutHeight: 2, Channels: 3,
			Trees: []*ir.Expr{tree, tree.Clone(), tree.Clone()}}
		return &lift.Result{
			Dump:   dump,
			Bufs:   &lift.Buffers{In: in},
			Stages: []lift.Stage{{Kernel: k, In: in}},
			Kernel: k,
		}
	}

	res := mk(1)
	src := res.MaterializeInput()
	if _, fused := src.(ir.InterleavedSource); fused {
		t.Fatal("cross-channel tap must not materialize a fused interleaved backing")
	}
	want, err := res.Kernel.Eval(res.InputSource())
	if err != nil {
		t.Fatal(err)
	}
	ck, err := res.Kernel.Compile()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ck.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("compiled eval over the fallback source differs from the interpreter")
	}

	// Channel-local taps still get the fused backing.
	if _, fused := mk(0).MaterializeInput().(ir.InterleavedSource); !fused {
		t.Error("channel-local taps should materialize a fused interleaved backing")
	}
}

// traceFor runs the front half of the pipeline (localize, trace,
// reconstruct) so extraction can be exercised directly.
func traceFor(t testing.TB, k legacy.Kernel, cfg legacy.Config) (lift.Target, *lift.Localization, *vm.TraceResult, *lift.Buffers) {
	inst := k.Instantiate(cfg)
	tgt := target(inst)
	loc, err := lift.Localize(tgt)
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	m := vm.NewMachine(tgt.Prog)
	tgt.Setup(m, true)
	tres, err := m.RunTrace(vm.TraceOptions{FilterEntry: loc.FilterEntry})
	if err != nil {
		t.Fatalf("RunTrace: %v", err)
	}
	bufs, err := lift.ReconstructBuffers(tgt.Known, loc.MemTrace, tres.Dump)
	if err != nil {
		t.Fatalf("ReconstructBuffers: %v", err)
	}
	return tgt, loc, tres, bufs
}

// TestExtractWorkersDeterministic checks that the parallel extraction is
// oblivious to the worker count: every sample tree lands at the same
// position with the same canonical structure.
func TestExtractWorkersDeterministic(t *testing.T) {
	for _, k := range legacy.Kernels() {
		t.Run(k.Name, func(t *testing.T) {
			if k.Name == "hist256" {
				// A reduction has no per-sample trees to extract; its
				// recognizer is single-threaded by construction.
				t.Skip("reduction kernels do not go through sample extraction")
			}
			if k.Name == "histeq" {
				// The remap stage only extracts once Lift threads the
				// reduction's table descriptor into Buffers; the raw
				// ReconstructBuffers geometry here has no table stage.
				t.Skip("reduction-consuming kernels need the table descriptor Lift builds")
			}
			tgt, _, tres, bufs := traceFor(t, k, liftConfigs[0])
			serial, err := lift.ExtractWorkers(tres.Trace, tgt.Prog, bufs, 1)
			if err != nil {
				t.Fatalf("ExtractWorkers(1): %v", err)
			}
			for _, workers := range []int{2, 3, 8} {
				par, err := lift.ExtractWorkers(tres.Trace, tgt.Prog, bufs, workers)
				if err != nil {
					t.Fatalf("ExtractWorkers(%d): %v", workers, err)
				}
				if len(par) != len(serial) {
					t.Fatalf("ExtractWorkers(%d) returned %d trees, serial %d", workers, len(par), len(serial))
				}
				for i := range par {
					if par[i].X != serial[i].X || par[i].Y != serial[i].Y || par[i].C != serial[i].C {
						t.Fatalf("tree %d at (%d,%d,%d), serial (%d,%d,%d)", i,
							par[i].X, par[i].Y, par[i].C, serial[i].X, serial[i].Y, serial[i].C)
					}
					if par[i].Expr.Key() != serial[i].Expr.Key() {
						t.Fatalf("tree %d differs between %d workers and serial", i, workers)
					}
				}
			}
		})
	}
}

// BenchmarkVMBoxBlur measures emulating the legacy box blur end to end.
func BenchmarkVMBoxBlur(b *testing.B) {
	k, _ := legacy.Lookup("boxblur3")
	inst := k.Instantiate(legacy.Config{Width: 64, Height: 64, Seed: 3})
	m := vm.NewMachine(inst.Prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.Setup(m, true)
		if err := m.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIREvalBoxBlur measures evaluating the lifted box blur over the
// same image, the "recovered program" the pipeline produces.
func BenchmarkIREvalBoxBlur(b *testing.B) {
	k, _ := legacy.Lookup("boxblur3")
	inst := k.Instantiate(legacy.Config{Width: 64, Height: 64, Seed: 3})
	res, err := lift.Lift(k.Name, target(inst))
	if err != nil {
		b.Fatal(err)
	}
	src := res.InputSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Kernel.Eval(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIREvalBoxBlurPlane is the interpreter over the materialized
// plane backing — the honest tree-walking baseline for the compiled
// backend (no dump page lookups on either side).
func BenchmarkIREvalBoxBlurPlane(b *testing.B) {
	k, _ := legacy.Lookup("boxblur3")
	inst := k.Instantiate(legacy.Config{Width: 64, Height: 64, Seed: 3})
	res, err := lift.Lift(k.Name, target(inst))
	if err != nil {
		b.Fatal(err)
	}
	src := res.MaterializeInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Kernel.Eval(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledEvalBoxBlur measures the compiled register program over
// the same image, single-threaded with fused load addressing.
func BenchmarkCompiledEvalBoxBlur(b *testing.B) {
	k, _ := legacy.Lookup("boxblur3")
	inst := k.Instantiate(legacy.Config{Width: 64, Height: 64, Seed: 3})
	res, err := lift.Lift(k.Name, target(inst))
	if err != nil {
		b.Fatal(err)
	}
	ck, err := res.Kernel.Compile()
	if err != nil {
		b.Fatal(err)
	}
	ex := ck.NewExecutor(res.MaterializeInput())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Eval(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledParallelBoxBlur measures the row-strip parallel driver;
// run with -cpu 1,2,4 to see the scaling.
func BenchmarkCompiledParallelBoxBlur(b *testing.B) {
	k, _ := legacy.Lookup("boxblur3")
	inst := k.Instantiate(legacy.Config{Width: 256, Height: 256, Seed: 3})
	res, err := lift.Lift(k.Name, target(inst))
	if err != nil {
		b.Fatal(err)
	}
	ck, err := res.Kernel.Compile()
	if err != nil {
		b.Fatal(err)
	}
	src := res.MaterializeInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ck.EvalParallel(src, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtract measures expression extraction alone; the worker pool
// follows GOMAXPROCS, so -cpu 1,2,4 shows the multi-core speedup.
func BenchmarkExtract(b *testing.B) {
	k, _ := legacy.Lookup("boxblur3")
	tgt, _, tres, bufs := traceFor(b, k, legacy.Config{Width: 32, Height: 16, Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lift.ExtractWorkers(tres.Trace, tgt.Prog, bufs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiftPipeline measures the whole pipeline, trace to verified IR.
func BenchmarkLiftPipeline(b *testing.B) {
	k, _ := legacy.Lookup("brighten")
	inst := k.Instantiate(legacy.Config{Width: 32, Height: 16, Seed: 3})
	tgt := target(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lift.Lift(k.Name, tgt); err != nil {
			b.Fatal(err)
		}
	}
}
