package lift

import (
	"math"
	"sort"

	"helium/internal/ir"
)

// Canonicalize rewrites an extracted expression tree into the canonical
// form the pipeline compares trees in (paper section 5): constants fold,
// associative integer chains flatten and sort, branch-free clamp idioms
// become min/max, and value-range analysis removes narrowing operations
// that cannot change the value.  Distinct dynamic copies of the same
// source computation — unrolled lanes, peeled remainder iterations, tile
// positions — all canonicalize to the same tree.  Floating point chains
// are never reassociated or reordered: that would change rounding.
func Canonicalize(e *ir.Expr) *ir.Expr {
	args := make([]*ir.Expr, len(e.Args))
	for i, a := range e.Args {
		args[i] = Canonicalize(a)
	}
	n := &ir.Expr{
		Op: e.Op, DX: e.DX, DY: e.DY, DC: e.DC,
		Val: e.Val, F: e.F, Width: e.Width, SrcWidth: e.SrcWidth,
		Sym: e.Sym, Table: e.Table, Elem: e.Elem, Args: args,
	}
	return rewrite(n)
}

func rewrite(e *ir.Expr) *ir.Expr {
	e = foldConst(e)
	if e.Op == ir.OpConst || e.Op == ir.OpConstF {
		return e
	}

	switch e.Op {
	case ir.OpSelect:
		return rewriteSelect(e)
	case ir.OpZExt:
		// Zero extension of a value that already fits its source width is
		// the value itself.
		if iv := ir.Bounds(e.Args[0]); iv.Within(0, int64(maskOf(e.SrcWidth))) {
			return e.Args[0]
		}
	case ir.OpSExt:
		// Sign extension with a provably clear sign bit changes nothing.
		if iv := ir.Bounds(e.Args[0]); iv.Within(0, int64(maskOf(e.SrcWidth))>>1) {
			return e.Args[0]
		}
	case ir.OpExtract:
		// Extracting the low bytes of a value that fits in them is a no-op.
		if e.Val == 0 {
			if iv := ir.Bounds(e.Args[0]); iv.Within(0, int64(maskOf(e.Width))) {
				return e.Args[0]
			}
		}
	case ir.OpShl, ir.OpShr, ir.OpSar:
		if isConst(e.Args[1], 0) {
			return e.Args[0]
		}
	case ir.OpSub:
		if isConst(e.Args[1], 0) {
			return e.Args[0]
		}
	}

	if e.Op.Associative() {
		e = flatten(e)
		if e.Op == ir.OpConst || len(e.Args) == 1 {
			if e.Op == ir.OpConst {
				return e
			}
			return e.Args[0]
		}
		if m := matchMin(e); m != nil {
			return m
		}
		if m := matchMax(e); m != nil {
			return m
		}
	}
	return e
}

// foldConst evaluates operations whose arguments are all constants.
func foldConst(e *ir.Expr) *ir.Expr {
	switch e.Op {
	case ir.OpLoad, ir.OpConst, ir.OpConstF, ir.OpTable, ir.OpSelect:
		return e
	}
	for _, a := range e.Args {
		if a.Op != ir.OpConst && a.Op != ir.OpConstF {
			return e
		}
	}
	v, err := e.Eval(nil, 0, 0, 0)
	if err != nil {
		return e
	}
	if e.Op.IsFloat() {
		return ir.ConstF(math.Float64frombits(v))
	}
	return ir.Const(int64(v))
}

// flatten merges nested chains of the same associative operation, combines
// constant operands, drops identity elements and sorts the operands by
// canonical key, so every unrolled copy of the same reduction linearizes
// identically.
func flatten(e *ir.Expr) *ir.Expr {
	var args []*ir.Expr
	var consts []int64
	var walk func(n *ir.Expr)
	walk = func(n *ir.Expr) {
		if n.Op == e.Op && n.Width == e.Width {
			for _, a := range n.Args {
				walk(a)
			}
			return
		}
		if n.Op == ir.OpConst {
			consts = append(consts, n.Val)
			return
		}
		args = append(args, n)
	}
	for _, a := range e.Args {
		walk(a)
	}

	if len(consts) > 0 {
		cval := consts[0]
		for _, c := range consts[1:] {
			switch e.Op {
			case ir.OpAdd:
				cval += c
			case ir.OpMul:
				cval *= c
			case ir.OpAnd:
				cval &= c
			case ir.OpOr:
				cval |= c
			case ir.OpXor:
				cval ^= c
			case ir.OpMin:
				cval = min(cval, c)
			case ir.OpMax:
				cval = max(cval, c)
			}
		}
		identity := false
		switch e.Op {
		case ir.OpAdd, ir.OpOr, ir.OpXor:
			identity = cval == 0 && len(args) > 0
		case ir.OpMul:
			if cval == 0 {
				return ir.Const(0)
			}
			identity = cval == 1 && len(args) > 0
		case ir.OpAnd:
			identity = e.Width > 0 && uint64(cval) == maskOf(e.Width) && len(args) > 0
		}
		if !identity {
			args = append(args, ir.Const(cval))
		}
	}

	// Canonical operand order: non-constants by key, constants last.
	sort.SliceStable(args, func(i, j int) bool {
		ci := args[i].Op == ir.OpConst || args[i].Op == ir.OpConstF
		cj := args[j].Op == ir.OpConst || args[j].Op == ir.OpConstF
		if ci != cj {
			return cj
		}
		return args[i].Key() < args[j].Key()
	})
	if len(args) == 1 {
		return args[0]
	}
	return &ir.Expr{Op: e.Op, Width: e.Width, Args: args}
}

func maskOf(width int) uint64 {
	return 1<<(8*width) - 1
}

func isConst(e *ir.Expr, v int64) bool {
	return e.Op == ir.OpConst && e.Val == v
}

// rewriteSelect simplifies a predicated node produced by branch-aware
// lifting.  A constant condition picks its arm, equal arms collapse, and
// the compare-and-pick shapes that are provably clamps become min/max —
// anything else stays a select.
func rewriteSelect(e *ir.Expr) *ir.Expr {
	cond, a, b := e.Args[0], e.Args[1], e.Args[2]
	if cond.Op == ir.OpConst {
		if cond.Val != 0 {
			return a
		}
		return b
	}
	if a.Key() == b.Key() {
		return a
	}
	// Hoist the store-narrowing byte extraction out of the arms so clamp
	// recognition sees the compare operands themselves:
	//
	//	select(c, byteN(x), K) == byteN(select(c, x, K))
	//
	// (a select only picks a value, so extraction commutes with it; a
	// constant arm that already fits the extracted width is its own
	// extraction).  The rewritten select often becomes min/max, whose
	// bounds then discharge the extraction entirely.
	if h := hoistExtract(cond, a, b); h != nil {
		return h
	}
	if cond.Op != ir.OpCmpLtS && cond.Op != ir.OpCmpLeS {
		return e
	}
	// select(x < y, x, y) is min(x, y); select(x < y, y, x) is max(x, y).
	// Both hold for <= as well: on equality every form yields the same
	// value.
	l, r := cond.Args[0], cond.Args[1]
	lk, rk, ak, bk := l.Key(), r.Key(), a.Key(), b.Key()
	w := cond.Width
	if ak == lk && bk == rk {
		return rewrite(&ir.Expr{Op: ir.OpMin, Width: w, Args: []*ir.Expr{a, b}})
	}
	if ak == rk && bk == lk {
		return rewrite(&ir.Expr{Op: ir.OpMax, Width: w, Args: []*ir.Expr{a, b}})
	}
	// Two-sided clamps built from sequential branches:
	//
	//	select(L <= v, min(v, C), L)  ==  min(max(v, L), C)   when C >= L
	//	select(v <= C, max(v, L), C)  ==  min(max(v, L), C)   when C >= L
	//
	// (the dropped compare cannot fire on the clamped side because the
	// clamp constants are ordered).
	if l.Op == ir.OpConst && b.Op == ir.OpConst && l.Val == b.Val &&
		a.Op == ir.OpMin && len(a.Args) == 2 {
		if c := constOperand(a, rk); c != nil && c.Val >= l.Val {
			return rewrite(&ir.Expr{Op: ir.OpMin, Width: w, Args: []*ir.Expr{
				rewrite(&ir.Expr{Op: ir.OpMax, Width: w, Args: []*ir.Expr{r, ir.Const(l.Val)}}), c,
			}})
		}
	}
	if r.Op == ir.OpConst && b.Op == ir.OpConst && r.Val == b.Val &&
		a.Op == ir.OpMax && len(a.Args) == 2 {
		if c := constOperand(a, lk); c != nil && r.Val >= c.Val {
			return rewrite(&ir.Expr{Op: ir.OpMin, Width: w, Args: []*ir.Expr{
				rewrite(&ir.Expr{Op: ir.OpMax, Width: w, Args: []*ir.Expr{l, c}}), ir.Const(r.Val),
			}})
		}
	}
	return e
}

// hoistExtract rewrites select(c, byte0(x), y) to byte0(select(c, x, y))
// when y is a constant fitting the extracted width (or an identical
// extraction), and nil when the shape does not apply.
func hoistExtract(cond, a, b *ir.Expr) *ir.Expr {
	ex := a
	other, otherFirst := b, false
	if ex.Op != ir.OpExtract || ex.Val != 0 {
		ex, other, otherFirst = b, a, true
	}
	if ex.Op != ir.OpExtract || ex.Val != 0 {
		return nil
	}
	var inner *ir.Expr
	switch {
	case other.Op == ir.OpConst && other.Val >= 0 && uint64(other.Val) <= maskOf(ex.Width):
		inner = other
	case other.Op == ir.OpExtract && other.Val == 0 && other.Width == ex.Width && other.SrcWidth == ex.SrcWidth:
		inner = other.Args[0]
	default:
		return nil
	}
	args := []*ir.Expr{cond, ex.Args[0], inner}
	if otherFirst {
		args = []*ir.Expr{cond, inner, ex.Args[0]}
	}
	sel := rewriteSelect(&ir.Expr{Op: ir.OpSelect, Args: args})
	return rewrite(&ir.Expr{Op: ir.OpExtract, Val: 0, Width: ex.Width, SrcWidth: ex.SrcWidth, Args: []*ir.Expr{sel}})
}

// constOperand returns the constant bound of a two-operand min/max whose
// other operand's key is vKey.
func constOperand(m *ir.Expr, vKey string) *ir.Expr {
	for i, arg := range m.Args {
		if arg.Op == ir.OpConst && m.Args[1-i].Key() == vKey {
			return arg
		}
	}
	return nil
}

// matchMax recognizes the branch-free lower clamp
//
//	x & ^(x >>a 31)  ==  max(x, 0)
//
// on a flattened, sorted AND node.
func matchMax(e *ir.Expr) *ir.Expr {
	if e.Op != ir.OpAnd || len(e.Args) != 2 || e.Width != 4 {
		return nil
	}
	for i := 0; i < 2; i++ {
		x, not := e.Args[i], e.Args[1-i]
		if not.Op != ir.OpNot {
			continue
		}
		sar := not.Args[0]
		if sar.Op != ir.OpSar || !isConst(sar.Args[1], 31) {
			continue
		}
		if sar.Args[0].Key() == x.Key() {
			return &ir.Expr{Op: ir.OpMax, Width: 4, Args: []*ir.Expr{x, ir.Const(0)}}
		}
	}
	return nil
}

// matchMin recognizes the branch-free upper clamp
//
//	c + ((x - c) & ((x - c) >>a 31))  ==  min(x, c)
//
// on a flattened, sorted ADD node.
func matchMin(e *ir.Expr) *ir.Expr {
	if e.Op != ir.OpAdd || len(e.Args) != 2 || e.Width != 4 {
		return nil
	}
	for i := 0; i < 2; i++ {
		c, and := e.Args[i], e.Args[1-i]
		if c.Op != ir.OpConst || and.Op != ir.OpAnd || len(and.Args) != 2 {
			continue
		}
		for j := 0; j < 2; j++ {
			t, sar := and.Args[j], and.Args[1-j]
			if sar.Op != ir.OpSar || !isConst(sar.Args[1], 31) || sar.Args[0].Key() != t.Key() {
				continue
			}
			if t.Op != ir.OpSub || !isConst(t.Args[1], c.Val) {
				continue
			}
			return &ir.Expr{Op: ir.OpMin, Width: 4, Args: []*ir.Expr{t.Args[0], ir.Const(c.Val)}}
		}
	}
	return nil
}
