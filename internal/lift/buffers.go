package lift

import (
	"bytes"
	"fmt"
	"sort"

	"helium/internal/trace"
)

// regionGap is the address distance that separates two buffer regions:
// accesses further apart than one page belong to different buffers.
const regionGap = 4096

// InputDesc is the reconstructed geometry of the input buffer: where
// sample (0, 0, channel 0) lives and how far apart scanlines are.  The
// interior may be surrounded by edge padding; loads resolve through the
// same geometry with negative or out-of-range coordinates.
type InputDesc struct {
	Base     uint64
	Stride   int64
	Channels int
	// Interleaved mirrors the known-input layout.
	Interleaved bool
}

// OutputDesc is the reconstructed geometry of the written output region.
type OutputDesc struct {
	// Base is the address of the first written sample.
	Base uint64
	// Stride is the byte distance between written scanlines.
	Stride int64
	// RowBytes is the number of bytes written per scanline.
	RowBytes int
	// Rows is the number of written scanlines.
	Rows int
	// Channels is the number of samples per pixel (from the known input:
	// Helium injects images in a known format).
	Channels int
}

// Width returns the written region's width in pixels.
func (o OutputDesc) Width() int { return o.RowBytes / o.Channels }

// Addr returns the address of channel c of written pixel (x, y).
func (o OutputDesc) Addr(x, y, c int) uint64 {
	return o.Base + uint64(y)*uint64(o.Stride) + uint64(x*o.Channels+c)
}

// Buffers is the outcome of buffer structure reconstruction.
type Buffers struct {
	In  InputDesc
	Out OutputDesc
	// Tbl, when non-nil, describes a reduction table an earlier stage of
	// the same filter produced: loads from it are lifted as stage-input
	// table lookups (OpTableIn) rather than sliced through the
	// accumulation that built it.
	Tbl *TableDesc
}

// TableDesc locates an earlier reduction stage's finished table in memory
// for the stages that consume it.
type TableDesc struct {
	// Base and Size delimit the table's bytes.
	Base uint64
	Size int
	// Elem is the slot width in bytes.
	Elem int
	// LastWrite is the trace position of the final write into the table;
	// reads before it observe a partially built table and are rejected.
	LastWrite int
}

// ReconstructBuffers recovers the input and output buffer geometry (paper
// section 4.3).  The output geometry comes from clustering the profiling
// run's write addresses into regions and reading the row structure off the
// largest one.  The input geometry comes from searching the trace memory
// dump for the known injected rows: the pair of row-0 and row-1 locations
// whose stride reproduces every remaining row is the input buffer — a copy
// of the image elsewhere in memory (for example the host's baseline output
// copy) fails the later rows because the filter overwrote them.
func ReconstructBuffers(known KnownInput, memTrace []trace.MemAccess, dump *trace.MemDump) (*Buffers, error) {
	out, err := reconstructOutput(known, memTrace)
	if err != nil {
		return nil, err
	}
	in, err := locateInput(known, dump)
	if err != nil {
		return nil, err
	}
	return &Buffers{In: *in, Out: *out}, nil
}

// writeBytes expands the write accesses of the memory trace into a sorted
// set of unique byte addresses.
func writeBytes(memTrace []trace.MemAccess) []uint64 {
	set := make(map[uint64]bool)
	for _, acc := range memTrace {
		if !acc.Write {
			continue
		}
		for i := uint64(0); i < uint64(acc.Width); i++ {
			set[acc.Addr+i] = true
		}
	}
	addrs := make([]uint64, 0, len(set))
	for a := range set {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// clusterRegions splits sorted addresses into regions at gaps of at least
// regionGap bytes.
func clusterRegions(addrs []uint64) [][]uint64 {
	var regions [][]uint64
	start := 0
	for i := 1; i <= len(addrs); i++ {
		if i == len(addrs) || addrs[i]-addrs[i-1] >= regionGap {
			regions = append(regions, addrs[start:i])
			start = i
		}
	}
	return regions
}

// reconstructOutput finds the written image region and reads its row
// structure: maximal contiguous runs are scanlines, the spacing of run
// starts is the stride.
func reconstructOutput(known KnownInput, memTrace []trace.MemAccess) (*OutputDesc, error) {
	addrs := writeBytes(memTrace)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("lift: profiling run recorded no writes")
	}
	regions := clusterRegions(addrs)
	// The output image dwarfs every other written region (stack frames,
	// spill slots), so pick the region with the most written bytes.
	best := regions[0]
	for _, r := range regions[1:] {
		if len(r) > len(best) {
			best = r
		}
	}
	return regionGeometry(best, known)
}

// regionGeometry reads the row structure off one written region's sorted
// byte addresses: maximal contiguous runs are scanlines, the spacing of
// run starts is the stride.  A single contiguous run (a tightly packed
// buffer) falls back to dimensionality inference from the known injected
// image.
func regionGeometry(best []uint64, known KnownInput) (*OutputDesc, error) {
	// Split the region into contiguous runs.
	var runs [][2]uint64 // [start, length]
	runStart := best[0]
	runLen := uint64(1)
	for i := 1; i <= len(best); i++ {
		if i < len(best) && best[i] == best[i-1]+1 {
			runLen++
			continue
		}
		runs = append(runs, [2]uint64{runStart, runLen})
		if i < len(best) {
			runStart = best[i]
			runLen = 1
		}
	}

	if len(runs) == 1 {
		// The buffer is tightly packed (stride equals the row length), so
		// the writes are one contiguous run and carry no row structure.
		// Fall back to dimensionality inference from the known injected
		// image: Helium controls the input, so the output row length is
		// known (paper section 4.3).
		rb := known.RowBytes()
		if int(runs[0][1])%rb != 0 {
			return nil, fmt.Errorf("lift: contiguous %d-byte write region is not a multiple of the known %d-byte rows", runs[0][1], rb)
		}
		return &OutputDesc{
			Base:     runs[0][0],
			Stride:   int64(rb),
			RowBytes: rb,
			Rows:     int(runs[0][1]) / rb,
			Channels: known.Channels,
		}, nil
	}

	rowBytes := runs[0][1]
	for _, r := range runs {
		if r[1] != rowBytes {
			return nil, fmt.Errorf("lift: written rows have unequal lengths (%d vs %d bytes)", r[1], rowBytes)
		}
	}
	if int(rowBytes)%known.Channels != 0 {
		return nil, fmt.Errorf("lift: written row length %d is not a multiple of %d channels", rowBytes, known.Channels)
	}
	stride := int64(runs[1][0] - runs[0][0])
	for i := 1; i < len(runs); i++ {
		if int64(runs[i][0]-runs[i-1][0]) != stride {
			return nil, fmt.Errorf("lift: written rows are not evenly spaced")
		}
	}
	return &OutputDesc{
		Base:     runs[0][0],
		Stride:   stride,
		RowBytes: int(rowBytes),
		Rows:     len(runs),
		Channels: known.Channels,
	}, nil
}

// locateInput searches the dump for the known input rows.
func locateInput(known KnownInput, dump *trace.MemDump) (*InputDesc, error) {
	if known.Height < 2 {
		return nil, fmt.Errorf("lift: need at least two input rows to infer the stride")
	}
	hits0 := dump.Find(known.Row(0))
	hits1 := dump.Find(known.Row(1))
	var found *InputDesc
	for _, a0 := range hits0 {
		for _, a1 := range hits1 {
			if a1 <= a0 {
				continue
			}
			stride := int64(a1 - a0)
			if stride < int64(known.RowBytes()) {
				continue
			}
			ok := true
			for y := 2; y < known.Height; y++ {
				got, have := dump.Bytes(a0+uint64(y)*uint64(stride), known.RowBytes())
				if !have || !bytes.Equal(got, known.Row(y)) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if found != nil && found.Base != a0 {
				return nil, fmt.Errorf("lift: known input found at both %#x and %#x", found.Base, a0)
			}
			found = &InputDesc{
				Base:        a0,
				Stride:      stride,
				Channels:    known.Channels,
				Interleaved: known.Interleaved,
			}
		}
	}
	if found == nil {
		return nil, fmt.Errorf("lift: known input rows not found in the memory dump")
	}
	return found, nil
}
