package lift_test

import (
	"testing"

	"helium/internal/ir"
	"helium/internal/lift"
)

// cmp builds a width-4 comparison node.
func cmp(op ir.Op, a, b *ir.Expr) *ir.Expr { return ir.Bin(op, 4, a, b) }

// sel builds a select node.
func sel(cond, a, b *ir.Expr) *ir.Expr {
	return &ir.Expr{Op: ir.OpSelect, Args: []*ir.Expr{cond, a, b}}
}

// v builds the stand-in value expression the select tests predicate on: a
// width-4 subtraction of two taps, which is bounded but can go negative
// (so clamps are not discharged by interval analysis alone).
func v() *ir.Expr {
	return ir.Bin(ir.OpSub, 4,
		&ir.Expr{Op: ir.OpZExt, Width: 4, SrcWidth: 1, Args: []*ir.Expr{ir.Load(0, 0, 0)}},
		&ir.Expr{Op: ir.OpZExt, Width: 4, SrcWidth: 1, Args: []*ir.Expr{ir.Load(1, 0, 0)}})
}

// TestCanonSelectToMinMax pins the clamp-from-branches rewrites: the
// compare-and-pick shapes predicated lifting produces must canonicalize to
// the same min/max trees branch-free clamp idioms produce, so both clamp
// styles collapse to one kernel.
func TestCanonSelectToMinMax(t *testing.T) {
	cases := []struct {
		name string
		in   *ir.Expr
		want string
	}{
		{"le-min", sel(cmp(ir.OpCmpLeS, v(), ir.Const(255)), v(), ir.Const(255)),
			"min((in(x, y) - in(x+1, y)), 255)"},
		{"le-max", sel(cmp(ir.OpCmpLeS, ir.Const(0), v()), v(), ir.Const(0)),
			"max((in(x, y) - in(x+1, y)), 0)"},
		{"lt-min", sel(cmp(ir.OpCmpLtS, v(), ir.Const(17)), v(), ir.Const(17)),
			"min((in(x, y) - in(x+1, y)), 17)"},
		{"lt-max", sel(cmp(ir.OpCmpLtS, ir.Const(-3), v()), v(), ir.Const(-3)),
			"max((in(x, y) - in(x+1, y)), -3)"},
		// Two-sided clamp diamonds, in both branch orders.
		{"low-then-high", sel(cmp(ir.OpCmpLeS, ir.Const(0), v()),
			&ir.Expr{Op: ir.OpMin, Width: 4, Args: []*ir.Expr{v(), ir.Const(255)}}, ir.Const(0)),
			"min(max((in(x, y) - in(x+1, y)), 0), 255)"},
		{"high-then-low", sel(cmp(ir.OpCmpLeS, v(), ir.Const(255)),
			&ir.Expr{Op: ir.OpMax, Width: 4, Args: []*ir.Expr{v(), ir.Const(0)}}, ir.Const(255)),
			"min(max((in(x, y) - in(x+1, y)), 0), 255)"},
		// Constant conditions pick their arm; equal arms collapse.
		{"const-true", sel(ir.Const(1), v(), ir.Const(9)), "(in(x, y) - in(x+1, y))"},
		{"const-false", sel(ir.Const(0), v(), ir.Const(9)), "9"},
		{"equal-arms", sel(cmp(ir.OpCmpEq, v(), ir.Const(4)), v(), v()),
			"(in(x, y) - in(x+1, y))"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := lift.Canonicalize(tc.in).String()
			if got != tc.want {
				t.Errorf("Canonicalize:\n got:  %s\n want: %s", got, tc.want)
			}
		})
	}
}

// TestCanonSelectKept pins the shapes that must NOT turn into min/max:
// unprovable predicates stay as honest selects.
func TestCanonSelectKept(t *testing.T) {
	cases := []struct {
		name string
		in   *ir.Expr
	}{
		// Equality picks between unrelated values: no clamp to prove.
		{"eq", sel(cmp(ir.OpCmpEq, v(), ir.Const(7)), ir.Const(1), ir.Const(2))},
		// Unsigned compare is not the signed min/max the IR ops define.
		{"unsigned", sel(cmp(ir.OpCmpLtU, v(), ir.Const(255)), v(), ir.Const(255))},
		// The picked values are not the compared values.
		{"unrelated-arms", sel(cmp(ir.OpCmpLtS, v(), ir.Const(9)), ir.Const(3), ir.Const(4))},
		// A two-sided shape whose constants are mis-ordered (C < L) is not
		// a clamp: min(max(v,L),C) would differ on the clamped side.
		{"misordered-clamp", sel(cmp(ir.OpCmpLeS, ir.Const(200), v()),
			&ir.Expr{Op: ir.OpMin, Width: 4, Args: []*ir.Expr{v(), ir.Const(100)}}, ir.Const(200))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := lift.Canonicalize(tc.in)
			if got.Op != ir.OpSelect {
				t.Errorf("Canonicalize rewrote an unprovable select to %s", got)
			}
		})
	}
}

// TestCanonSelectExtractHoist pins the store-narrowing hoist: the byte
// extraction the final store wraps around the unclamped arm must not hide
// the clamp from recognition.
func TestCanonSelectExtractHoist(t *testing.T) {
	ext := func(e *ir.Expr) *ir.Expr {
		return &ir.Expr{Op: ir.OpExtract, Val: 0, Width: 1, SrcWidth: 4, Args: []*ir.Expr{e}}
	}
	in := sel(cmp(ir.OpCmpLeS, ir.Const(0), v()),
		sel(cmp(ir.OpCmpLeS, v(), ir.Const(255)), ext(v()), ir.Const(255)),
		ir.Const(0))
	want := "min(max((in(x, y) - in(x+1, y)), 0), 255)"
	if got := lift.Canonicalize(in).String(); got != want {
		t.Errorf("Canonicalize:\n got:  %s\n want: %s", got, want)
	}
}
