package obs

import (
	"sync/atomic"
	"time"
)

// Trace ids are 64-bit, generated at request admission, never zero.  A
// process-local counter mixed through splitmix64 gives well-distributed
// ids without coordination or an entropy syscall per request; the boot
// seed keeps ids from colliding across restarts.
var (
	traceSeed = uint64(time.Now().UnixNano()) | 1
	traceCtr  atomic.Uint64
)

// NewTraceID returns the next trace id.  Safe for concurrent use and
// allocation-free.
func NewTraceID() uint64 {
	for {
		id := splitmix64(traceSeed + traceCtr.Add(1)*0x9e3779b97f4a7c15)
		if id != 0 {
			return id
		}
	}
}

func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const hexDigits = "0123456789abcdef"

// AppendHex16 appends v as exactly 16 lowercase hex digits.
func AppendHex16(dst []byte, v uint64) []byte {
	var tmp [16]byte
	for i := 15; i >= 0; i-- {
		tmp[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return append(dst, tmp[:]...)
}

// TraceString renders a trace id as its 16-hex-digit string — the
// X-Helium-Trace header value.  Allocates; use AppendHex16 on hot paths.
func TraceString(v uint64) string {
	return string(AppendHex16(nil, v))
}
