package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestExpositionGolden pins the full text exposition of a registry with
// one instrument of each kind, including label-value escaping.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()

	c := reg.Counter("test_requests_total", "Requests served.", L("status", "200"))
	c.Add(3)
	reg.Counter("test_requests_total", "Requests served.", L("status", "503")).Inc()

	g := reg.Gauge("test_queue_depth", "Jobs waiting.")
	g.Set(2.5)

	h := reg.Histogram("test_latency_seconds", "Request latency.", []float64{0.001, 0.01}, L("backend", "generated"))
	h.ObserveDuration(500 * time.Microsecond) // <= 0.001
	h.ObserveDuration(5 * time.Millisecond)   // <= 0.01
	h.ObserveDuration(50 * time.Millisecond)  // +Inf

	reg.Counter("test_escapes_total", `Help with \ and
newline.`, L("path", "a\"b\\c\nd")).Inc()

	var sb strings.Builder
	if err := reg.Write(&sb); err != nil {
		t.Fatalf("Write: %v", err)
	}
	want := `# HELP test_escapes_total Help with \\ and\nnewline.
# TYPE test_escapes_total counter
test_escapes_total{path="a\"b\\c\nd"} 1
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{backend="generated",le="0.001"} 1
test_latency_seconds_bucket{backend="generated",le="0.01"} 2
test_latency_seconds_bucket{backend="generated",le="+Inf"} 3
test_latency_seconds_sum{backend="generated"} 0.0555
test_latency_seconds_count{backend="generated"} 3
# HELP test_queue_depth Jobs waiting.
# TYPE test_queue_depth gauge
test_queue_depth 2.5
# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total{status="200"} 3
test_requests_total{status="503"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistrationIdempotent verifies re-registering returns the same
// instrument, so observation sites never double-count.
func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x", L("k", "v"))
	b := reg.Counter("x_total", "x", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := reg.Counter("x_total", "x", L("k", "w"))
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
}

// TestScrapeHook verifies OnScrape hooks run before values render.
func TestScrapeHook(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("hooked", "set at scrape")
	reg.OnScrape(func() { g.Set(7) })
	var sb strings.Builder
	reg.Write(&sb)
	if !strings.Contains(sb.String(), "hooked 7") {
		t.Fatalf("hook did not run before render:\n%s", sb.String())
	}
}

// TestHandler checks the HTTP surface: content type and body.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("h_total", "h").Add(9)
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 9") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestHistogramBucketEdges pins the le boundary convention: an
// observation exactly on a bound lands in that bound's bucket.
func TestHistogramBucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edge_seconds", "e", []float64{0.001})
	h.ObserveDuration(time.Millisecond) // exactly the bound: le="0.001"
	var sb strings.Builder
	reg.Write(&sb)
	if !strings.Contains(sb.String(), `edge_seconds_bucket{le="0.001"} 1`) {
		t.Fatalf("boundary observation not cumulative in its bucket:\n%s", sb.String())
	}
}
