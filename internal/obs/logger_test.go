package obs

import (
	"bytes"
	"errors"
	"io"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuf is a goroutine-safe writer for capturing log output.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestLineFormat(t *testing.T) {
	var buf lockedBuf
	log := NewLogger(&buf, LevelDebug)
	log.Line(LevelInfo, "eval").
		Str("kernel", "boxblur3").
		Int("w", 52).
		Uint64("n", 9).
		Hex64("trace", 0xdeadbeef).
		Dur("exec", 1234*time.Microsecond).
		Err(errors.New("queue full")).
		Log()
	line := buf.String()
	re := regexp.MustCompile(`^ts=\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z level=info msg=eval ` +
		`kernel=boxblur3 w=52 n=9 trace=00000000deadbeef exec=1\.234ms err="queue full"\n$`)
	if !re.MatchString(line) {
		t.Errorf("line %q does not match %v", line, re)
	}
}

func TestQuoting(t *testing.T) {
	var buf lockedBuf
	log := NewLogger(&buf, LevelDebug)
	log.Info("m", "a", `x "y" z`, "b", "", "c", "plain")
	line := buf.String()
	for _, want := range []string{`a="x \"y\" z"`, `b=""`, `c=plain`} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestLevelGating(t *testing.T) {
	var buf lockedBuf
	log := NewLogger(&buf, LevelWarn)
	log.Info("dropped")
	log.Debug("dropped")
	log.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Errorf("level gating wrong: %q", out)
	}
	if log.Line(LevelInfo, "x") != nil {
		t.Error("Line below level should return nil")
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var log *Logger
	// Every call must be a no-op, not a panic.
	log.Info("x", "k", "v")
	log.Line(LevelError, "y").Str("a", "b").Int("c", 1).Dur("d", time.Second).Log()
	if log.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}

func TestZeroAllocLine(t *testing.T) {
	log := NewLogger(io.Discard, LevelInfo)
	// Warm the pool.
	for i := 0; i < 10; i++ {
		log.Line(LevelInfo, "eval").Str("kernel", "brighten").Int("w", 40).
			Hex64("trace", 123).Dur("exec", time.Millisecond).Log()
	}
	allocs := testing.AllocsPerRun(100, func() {
		log.Line(LevelInfo, "eval").Str("kernel", "brighten").Int("w", 40).
			Hex64("trace", 123).Dur("exec", time.Millisecond).Log()
	})
	if allocs != 0 {
		t.Errorf("Line hot path allocates %.1f/op, want 0", allocs)
	}
	// A dropped line must also be free.
	allocs = testing.AllocsPerRun(100, func() {
		log.Line(LevelDebug, "eval").Str("kernel", "brighten").Log()
	})
	if allocs != 0 {
		t.Errorf("dropped Line allocates %.1f/op, want 0", allocs)
	}
}

func TestTraceIDs(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %x", id)
		}
		seen[id] = true
	}
	if s := TraceString(0xabc); s != "0000000000000abc" {
		t.Errorf("TraceString = %q", s)
	}
	if allocs := testing.AllocsPerRun(100, func() { NewTraceID() }); allocs != 0 {
		t.Errorf("NewTraceID allocates %.1f/op", allocs)
	}
}
