package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.  Lines below the logger's level are dropped
// before any formatting work happens.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff drops everything; NopLogger uses it.
	LevelOff
)

// String names the level as it appears in the level= field.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "off"
	}
}

// ParseLevel maps a flag value to a Level; unknown strings mean info.
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return LevelDebug
	case "warn":
		return LevelWarn
	case "error":
		return LevelError
	case "off":
		return LevelOff
	default:
		return LevelInfo
	}
}

// Logger writes leveled key=value lines (logfmt) to one writer.  The
// hot path is Line: a pooled builder that appends with strconv — no fmt,
// no allocation once the pool is warm.  A nil *Logger is valid and
// silently drops everything, so call sites need no nil checks.
type Logger struct {
	mu    sync.Mutex // serializes writes so lines never interleave
	w     io.Writer
	level atomic.Int32
	pool  sync.Pool
}

// NewLogger builds a logger writing to w at the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w}
	l.level.Store(int32(level))
	l.pool.New = func() any {
		return &Line{l: l, buf: make([]byte, 0, 256)}
	}
	return l
}

// NopLogger returns a logger that drops everything.
func NopLogger() *Logger { return NewLogger(io.Discard, LevelOff) }

// SetLevel changes the level at runtime.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// Enabled reports whether a line at this level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.level.Load()
}

// Line starts a log line, or returns nil when the level is disabled.
// Every Line method is nil-safe, so the builder chain costs nothing on
// a dropped line:
//
//	log.Line(obs.LevelInfo, "eval").Str("kernel", k).Int("w", w).Log()
func (l *Logger) Line(level Level, msg string) *Line {
	if !l.Enabled(level) {
		return nil
	}
	ln := l.pool.Get().(*Line)
	ln.buf = ln.buf[:0]
	ln.buf = append(ln.buf, "ts="...)
	ln.buf = time.Now().UTC().AppendFormat(ln.buf, "2006-01-02T15:04:05.000Z")
	ln.buf = append(ln.buf, " level="...)
	ln.buf = append(ln.buf, level.String()...)
	ln.buf = append(ln.buf, " msg="...)
	ln.buf = appendValue(ln.buf, msg)
	return ln
}

// Line is one in-flight log line.  Obtain via Logger.Line, finish with
// Log; do not retain after Log returns.
type Line struct {
	l   *Logger
	buf []byte
}

// Str appends a string field.
func (ln *Line) Str(key, v string) *Line {
	if ln == nil {
		return nil
	}
	ln.key(key)
	ln.buf = appendValue(ln.buf, v)
	return ln
}

// Int appends an integer field.
func (ln *Line) Int(key string, v int) *Line {
	if ln == nil {
		return nil
	}
	ln.key(key)
	ln.buf = strconv.AppendInt(ln.buf, int64(v), 10)
	return ln
}

// Uint64 appends an unsigned integer field.
func (ln *Line) Uint64(key string, v uint64) *Line {
	if ln == nil {
		return nil
	}
	ln.key(key)
	ln.buf = strconv.AppendUint(ln.buf, v, 10)
	return ln
}

// Hex64 appends a fixed-width 16-digit lowercase hex field — the trace
// id rendering, matching the X-Helium-Trace header byte for byte.
func (ln *Line) Hex64(key string, v uint64) *Line {
	if ln == nil {
		return nil
	}
	ln.key(key)
	ln.buf = AppendHex16(ln.buf, v)
	return ln
}

// Dur appends a duration field in milliseconds with microsecond
// resolution (e.g. queue_wait=0.135ms).
func (ln *Line) Dur(key string, d time.Duration) *Line {
	if ln == nil {
		return nil
	}
	ln.key(key)
	us := d.Microseconds()
	ln.buf = strconv.AppendInt(ln.buf, us/1000, 10)
	ln.buf = append(ln.buf, '.')
	frac := us % 1000
	ln.buf = append(ln.buf, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	ln.buf = append(ln.buf, "ms"...)
	return ln
}

// Err appends an error field; a nil error appends nothing.
func (ln *Line) Err(err error) *Line {
	if ln == nil || err == nil {
		return ln
	}
	return ln.Str("err", err.Error())
}

// Log terminates and writes the line, then recycles the builder.
func (ln *Line) Log() {
	if ln == nil {
		return
	}
	ln.buf = append(ln.buf, '\n')
	ln.l.mu.Lock()
	ln.l.w.Write(ln.buf)
	ln.l.mu.Unlock()
	ln.l.pool.Put(ln)
}

func (ln *Line) key(key string) {
	ln.buf = append(ln.buf, ' ')
	ln.buf = append(ln.buf, key...)
	ln.buf = append(ln.buf, '=')
}

// appendValue appends a logfmt value, quoting only when it contains
// spaces, quotes, '=' or control characters.
func appendValue(b []byte, v string) []byte {
	if !needsQuoting(v) {
		return append(b, v...)
	}
	b = append(b, '"')
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '"':
			b = append(b, `\"`...)
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, v[i])
		}
	}
	return append(b, '"')
}

func needsQuoting(v string) bool {
	if v == "" {
		return true
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c <= ' ' || c == '"' || c == '=' || c == '\\' {
			return true
		}
	}
	return false
}

// Debug, Info, Warn and Error are the cold-path conveniences: variadic
// key/value pairs, fmt-based fallback for arbitrary types.  Fine for
// startup and shutdown lines; the request path uses Line.
func (l *Logger) Debug(msg string, kv ...any) { l.emit(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.emit(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.emit(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.emit(LevelError, msg, kv) }

func (l *Logger) emit(level Level, msg string, kv []any) {
	ln := l.Line(level, msg)
	if ln == nil {
		return
	}
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		switch v := kv[i+1].(type) {
		case string:
			ln.Str(key, v)
		case int:
			ln.Int(key, v)
		case int64:
			ln.Int(key, int(v))
		case uint64:
			ln.Uint64(key, v)
		case time.Duration:
			ln.Dur(key, v)
		case error:
			ln.Str(key, v.Error())
		case bool:
			if v {
				ln.Str(key, "true")
			} else {
				ln.Str(key, "false")
			}
		default:
			ln.Str(key, fmt.Sprint(v))
		}
	}
	ln.Log()
}
