// Package obs is the observability layer: a dependency-free metrics
// registry (atomic counters, gauges and fixed-bucket latency histograms
// with Prometheus text exposition), a leveled key=value logger whose hot
// path allocates nothing, and per-request trace identifiers.
//
// The design contract is set by the serving hot path: every instrument
// is pre-registered (registration takes a lock, may allocate, and
// happens at startup or kernel-admission time), while every observation
// is a handful of atomic operations — no locks, no allocations, no
// formatting.  The serve package's AllocsPerRun == 0 steady-state gates
// run with metrics and access logging enabled, so any allocation snuck
// into an observation fails CI.
package obs

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric label pair, fixed at registration time.  A series
// is identified by its full label set; there is no dynamic labeling —
// pre-register every combination you intend to observe.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store overwrites the value.  It exists for counters that mirror an
// atomic maintained elsewhere (scrape hooks copy the source of truth in
// at exposition time); regular counters should only Inc/Add.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency histogram.  Bucket upper bounds
// are in seconds, ascending; an implicit +Inf bucket catches the rest.
// Observation is a linear scan plus three atomic adds — for the bucket
// counts involved this beats any search, and it allocates nothing.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last is +Inf
	total  atomic.Uint64
	sumNS  atomic.Int64
}

// ObserveDuration records one latency observation.
func (h *Histogram) ObserveDuration(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum reports the sum of all observations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNS.Load()) / 1e9 }

// LatencyBuckets is the default serving-latency bucket layout: 5µs to
// 10s, roughly 2.5x apart — tight enough at the microsecond end to
// resolve the zero-alloc fast path, wide enough at the top to catch a
// degradation chain walking every backend.
var LatencyBuckets = []float64{
	5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// series is one labeled instrument inside a family.
type series struct {
	labels string // pre-rendered {k="v",...} suffix, or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name: its metadata plus every registered series.
type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format.  Registration is idempotent: asking for an already
// registered (name, labels) series returns the existing instrument, so
// packages can register from multiple sites without coordination.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    []func()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// OnScrape registers a hook run at the start of every exposition, before
// any value is read.  Hooks copy externally maintained state into
// instruments (queue depths, breaker states, faultpoint trigger counts)
// so gauges are fresh at scrape time without polling.
func (r *Registry) OnScrape(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, f)
}

// lookup interns a (name, labels) series of the given type.
func (r *Registry) lookup(name, help, typ string, labels []Label) *series {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabels: map[string]*series{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic("obs: metric " + name + " registered as both " + f.typ + " and " + typ)
	}
	s := f.byLabels[ls]
	if s == nil {
		s = &series{labels: ls}
		f.byLabels[ls] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter registers (or returns) the counter series with these labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, "counter", labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns) the gauge series with these labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, "gauge", labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram registers (or returns) the histogram series with these
// labels.  bounds are upper bucket bounds in seconds, ascending; nil
// selects LatencyBuckets.  The bounds of an already registered series
// win — a second registration's bounds are ignored.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	s := r.lookup(name, help, "histogram", labels)
	if s.h == nil {
		s.h = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	return s.h
}

// Write renders the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series in registration
// order.  Scrape hooks run first.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, f := range hooks {
		f()
	}

	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b []byte
	for _, f := range fams {
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = appendEscapedHelp(b, f.help)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ...)
		b = append(b, '\n')
		for _, s := range f.series {
			switch {
			case s.c != nil:
				b = append(b, f.name...)
				b = append(b, s.labels...)
				b = append(b, ' ')
				b = strconv.AppendUint(b, s.c.Value(), 10)
				b = append(b, '\n')
			case s.g != nil:
				b = append(b, f.name...)
				b = append(b, s.labels...)
				b = append(b, ' ')
				b = strconv.AppendFloat(b, s.g.Value(), 'g', -1, 64)
				b = append(b, '\n')
			case s.h != nil:
				b = appendHistogram(b, f.name, s)
			}
		}
	}
	_, err := w.Write(b)
	return err
}

// appendHistogram renders one histogram series: cumulative buckets, sum
// and count, with the le label merged into the series labels.
func appendHistogram(b []byte, name string, s *series) []byte {
	cum := uint64(0)
	for i := range s.h.counts {
		cum += s.h.counts[i].Load()
		b = append(b, name...)
		b = append(b, "_bucket"...)
		le := "+Inf"
		if i < len(s.h.bounds) {
			le = strconv.FormatFloat(s.h.bounds[i], 'g', -1, 64)
		}
		b = appendMergedLabels(b, s.labels, "le", le)
		b = append(b, ' ')
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, "_sum"...)
	b = append(b, s.labels...)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, s.h.Sum(), 'g', -1, 64)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count"...)
	b = append(b, s.labels...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, s.h.Count(), 10)
	b = append(b, '\n')
	return b
}

// appendMergedLabels appends a label set with one extra pair tacked on.
func appendMergedLabels(b []byte, labels, key, value string) []byte {
	if labels == "" {
		b = append(b, '{')
	} else {
		b = append(b, labels[:len(labels)-1]...) // drop the closing }
		b = append(b, ',')
	}
	b = append(b, key...)
	b = append(b, `="`...)
	b = appendEscapedValue(b, value)
	b = append(b, `"}`...)
	return b
}

// renderLabels pre-renders a label set as its exposition suffix.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.Write(appendEscapedValue(nil, l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// appendEscapedValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func appendEscapedValue(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b = append(b, `\\`...)
		case '"':
			b = append(b, `\"`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, v[i])
		}
	}
	return b
}

// appendEscapedHelp escapes help text: backslash and newline.
func appendEscapedHelp(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, v[i])
		}
	}
	return b
}

// Handler serves the registry at GET /metrics in text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Write(w)
	})
}
