package par

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestForCoversEverything checks every index is visited exactly once for
// assorted totals, chunk sizes and worker counts.
func TestForCoversEverything(t *testing.T) {
	for _, total := range []int{0, 1, 7, 64, 1000} {
		for _, chunk := range []int{1, 3, 16} {
			for _, workers := range []int{1, 2, 5, 0} {
				hits := make([]int32, total)
				err := For(total, chunk, workers, func(int) func(int, int) error {
					return func(start, end int) error {
						for i := start; i < end; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
						return nil
					}
				})
				if err != nil {
					t.Fatalf("For(%d,%d,%d): %v", total, chunk, workers, err)
				}
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("For(%d,%d,%d): index %d visited %d times", total, chunk, workers, i, h)
					}
				}
			}
		}
	}
}

// TestForReportsLowestError checks the deterministic error guarantee:
// with several failing chunks, every worker count reports the error of
// the lowest-start one, exactly like a serial scan.
func TestForReportsLowestError(t *testing.T) {
	failAt := map[int]bool{40: true, 12: true, 90: true}
	for _, workers := range []int{1, 2, 4, 8} {
		err := For(100, 1, workers, func(int) func(int, int) error {
			return func(start, end int) error {
				if failAt[start] {
					return fmt.Errorf("chunk %d failed", start)
				}
				return nil
			}
		})
		if err == nil || err.Error() != "chunk 12 failed" {
			t.Fatalf("workers=%d: err = %v, want chunk 12 failed", workers, err)
		}
	}
}

// TestForPerWorkerState checks worker(w) runs once per worker and bodies
// see only their own closure state.
func TestForPerWorkerState(t *testing.T) {
	var built atomic.Int32
	err := For(64, 4, 4, func(int) func(int, int) error {
		built.Add(1)
		sum := 0
		return func(start, end int) error {
			sum += end - start // worker-local, no races
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if b := built.Load(); b < 1 || b > 4 {
		t.Fatalf("worker factory ran %d times, want 1..4", b)
	}
}
