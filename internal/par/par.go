// Package par provides the bounded, deterministic worker pool shared by
// the parallel lifter (per-sample expression extraction) and the compiled
// backend's parallel evaluator (row-strip rendering).  Work items are
// handed out in ascending order and results land at fixed positions, so
// callers produce identical output — and report the identical first error
// — regardless of worker count or scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For covers [0, total) in ascending chunks of the given size on a pool
// of workers.  worker(w) is called once per worker to build its body —
// per-worker state (scratch buffers, executors) lives in that closure —
// and the body is then invoked with half-open chunk bounds.
//
// workers <= 0 means GOMAXPROCS; the pool never exceeds the chunk count.
// A worker stops at its first error.  For returns the error of the
// lowest-start failing chunk: chunks are handed out in ascending order
// and every chunk before the first failing one succeeded, so that error
// is exactly the one a serial ascending scan would hit first.
func For(total, chunk, workers int, worker func(w int) func(start, end int) error) error {
	if total <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxWorkers := (total + chunk - 1) / chunk; workers > maxWorkers {
		workers = maxWorkers
	}

	if workers == 1 {
		body := worker(0)
		for start := 0; start < total; start += chunk {
			if err := body(start, min(start+chunk, total)); err != nil {
				return err
			}
		}
		return nil
	}

	var cursor atomic.Int64
	type chunkErr struct {
		start int
		err   error
	}
	errs := make([]chunkErr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := worker(w)
			for {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= total {
					return
				}
				if err := body(start, min(start+chunk, total)); err != nil {
					errs[w] = chunkErr{start: start, err: err}
					return
				}
			}
		}(w)
	}
	wg.Wait()

	best := -1
	for i := range errs {
		if errs[i].err != nil && (best < 0 || errs[i].start < errs[best].start) {
			best = i
		}
	}
	if best >= 0 {
		return errs[best].err
	}
	return nil
}
