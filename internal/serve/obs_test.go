package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"helium/internal/faultpoint"
	"helium/internal/obs"
)

// syncBuf is a goroutine-safe log sink for tests.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics: content type %q is not the text exposition format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample value from an exposition body; the
// series must match a full "name{labels}" prefix exactly.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s: unparsable value %q", series, rest)
		}
		return v
	}
	t.Fatalf("series %s not present in /metrics:\n%s", series, body)
	return 0
}

// TestMetricsEndpoint pins the /metrics surface: after a known request
// mix the status counters, latency histogram counts, backend attempt
// counters, lift outcome counters and per-kernel series must all report
// exactly what happened.
func TestMetricsEndpoint(t *testing.T) {
	faultpoint.Reset()
	s := New(Options{Workers: 2})
	s.Start()
	t.Cleanup(func() { s.Shutdown(t.Context()) })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		if r := eval(t, ts, "brighten", 40, 24, 1, nil); r.status != 200 {
			t.Fatalf("request %d: status %d", i, r.status)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/eval?kernel=no-such-kernel")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown kernel: status %d, want 404", resp.StatusCode)
	}

	body := scrape(t, ts)
	checks := []struct {
		series string
		want   float64
	}{
		{`helium_requests_total{status="200"}`, 3},
		{`helium_requests_total{status="404"}`, 1},
		{`helium_requests_total{status="500"}`, 0},
		{`helium_queue_wait_seconds_count`, 3},
		{`helium_execute_seconds_count`, 3},
		{`helium_backend_attempts_total{backend="generated",outcome="ok"}`, 3},
		{`helium_backend_attempts_total{backend="generated",outcome="error"}`, 0},
		{`helium_backend_seconds_count{backend="generated"}`, 3},
		{`helium_lifts_total{outcome="ok"}`, 1},
		{`helium_lifts_total{outcome="failed"}`, 0},
		{`helium_lift_seconds_count`, 1},
		{`helium_kernel_served_total{kernel="brighten",backend="generated"}`, 3},
		{`helium_breaker_state{kernel="brighten",backend="generated"}`, 0},
		{`helium_shed_total`, 0},
		{`helium_degraded_total`, 0},
		{`helium_failed_total`, 0},
	}
	for _, c := range checks {
		if got := metricValue(t, body, c.series); got != c.want {
			t.Errorf("%s = %v, want %v", c.series, got, c.want)
		}
	}
	if v := metricValue(t, body, `helium_execute_seconds_sum`); v <= 0 {
		t.Errorf("helium_execute_seconds_sum = %v, want > 0", v)
	}
	// Help/type metadata for a histogram family renders once.
	if n := strings.Count(body, "# TYPE helium_execute_seconds histogram"); n != 1 {
		t.Errorf("helium_execute_seconds TYPE line appears %d times, want 1", n)
	}
}

// TestTraceHeaderMatchesAccessLog pins the trace contract: every
// response carries X-Helium-Trace, and the id names exactly one eval
// access-log line recording the same status.
func TestTraceHeaderMatchesAccessLog(t *testing.T) {
	faultpoint.Reset()
	var sink syncBuf
	s := New(Options{Workers: 1, Logger: obs.NewLogger(&sink, obs.LevelInfo)})
	s.Start()
	t.Cleanup(func() { s.Shutdown(t.Context()) })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)

	// One success and one validation failure: both surfaces must stitch.
	cases := []struct {
		url    string
		status int
	}{
		{"/v1/eval?kernel=brighten&width=40&height=24&seed=1", 200},
		{"/v1/eval?kernel=brighten&width=4&height=4", 400},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Fatalf("%s: status %d, want %d", c.url, resp.StatusCode, c.status)
		}
		trace := resp.Header.Get("X-Helium-Trace")
		if !hexID.MatchString(trace) {
			t.Fatalf("%s: X-Helium-Trace %q is not a 16-hex-digit id", c.url, trace)
		}
		var line string
		for _, ln := range strings.Split(sink.String(), "\n") {
			if strings.Contains(ln, "trace="+trace) {
				line = ln
				break
			}
		}
		if line == "" {
			t.Fatalf("%s: no access-log line carries trace=%s; log:\n%s", c.url, trace, sink.String())
		}
		if !strings.Contains(line, "msg=eval") || !strings.Contains(line, "status="+strconv.Itoa(c.status)) {
			t.Fatalf("%s: access-log line %q does not record msg=eval status=%d", c.url, line, c.status)
		}
	}
}

// TestBreakerAndFaultpointMetrics extends the chaos suite onto the
// metrics surface: tripping and recovering a breaker must move the
// transition counters and state gauge, and armed faultpoints must move
// their trigger counters (process-wide, so asserted as deltas).
func TestBreakerAndFaultpointMetrics(t *testing.T) {
	s, ts, _ := newChaosServer(t)

	before := scrape(t, ts)
	openBefore := metricValue(t, before, `helium_breaker_transitions_total{backend="generated",to="open"}`)
	closeBefore := metricValue(t, before, `helium_breaker_transitions_total{backend="generated",to="closed"}`)
	fpBefore := metricValue(t, before, `helium_faultpoint_triggers_total{point="serve.slow-backend"}`)

	faultpoint.Enable(fpSlowBackend)
	for i := 0; i < s.opts.TripAfter; i++ {
		if r := eval(t, ts, "brighten", 40, 24, 1, nil); r.status != 200 {
			t.Fatalf("degraded request %d: status %d", i, r.status)
		}
	}

	mid := scrape(t, ts)
	if got := metricValue(t, mid, `helium_breaker_transitions_total{backend="generated",to="open"}`); got != openBefore+1 {
		t.Errorf("open transitions after trip: %v, want %v", got, openBefore+1)
	}
	if got := metricValue(t, mid, `helium_breaker_state{kernel="brighten",backend="generated"}`); got != 1 {
		t.Errorf("breaker state gauge after trip: %v, want 1 (open)", got)
	}
	if got := metricValue(t, mid, `helium_faultpoint_triggers_total{point="serve.slow-backend"}`); got < fpBefore+float64(s.opts.TripAfter) {
		t.Errorf("slow-backend trigger counter: %v, want >= %v", got, fpBefore+float64(s.opts.TripAfter))
	}
	if got := metricValue(t, mid, `helium_degraded_total`); got < float64(s.opts.TripAfter) {
		t.Errorf("helium_degraded_total = %v, want >= %v", got, s.opts.TripAfter)
	}

	// Clear the fault and drive the half-open probe to success.
	faultpoint.Reset()
	recovered := false
	for i := 0; i < s.opts.ProbeAfter+3 && !recovered; i++ {
		r := eval(t, ts, "brighten", 40, 24, 1, nil)
		recovered = r.status == 200 && r.backend == "generated"
	}
	if !recovered {
		t.Fatal("generated backend did not recover after the fault cleared")
	}
	after := scrape(t, ts)
	if got := metricValue(t, after, `helium_breaker_transitions_total{backend="generated",to="closed"}`); got != closeBefore+1 {
		t.Errorf("close transitions after recovery: %v, want %v", got, closeBefore+1)
	}
	if got := metricValue(t, after, `helium_breaker_state{kernel="brighten",backend="generated"}`); got != 0 {
		t.Errorf("breaker state gauge after recovery: %v, want 0 (closed)", got)
	}
}

// TestPprofMount pins the -pprof wiring: disabled by default, mounted
// under /debug/pprof/ when enabled.
func TestPprofMount(t *testing.T) {
	faultpoint.Reset()
	off := httptest.NewServer(New(Options{}).Handler())
	t.Cleanup(off.Close)
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("pprof served without EnablePprof")
	}

	on := httptest.NewServer(New(Options{EnablePprof: true}).Handler())
	t.Cleanup(on.Close)
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof cmdline with EnablePprof: status %d", resp.StatusCode)
	}
}
