package serve

import (
	"strconv"

	"helium/internal/faultpoint"
	"helium/internal/lift"
	"helium/internal/obs"
)

// evalStatuses is every status the eval path can produce; the request
// counter pre-registers one series per status so the hot path is a map
// read plus an atomic add.
var evalStatuses = []int{200, 400, 404, 405, 413, 422, 429, 500, 503, 504}

// metrics bundles the server's pre-registered instruments.  Everything
// the request path touches is resolved here, once, at construction:
// observing is atomic adds only, keeping the AllocsPerRun == 0 serve
// gates green with metrics enabled.
type metrics struct {
	reg *obs.Registry

	status      map[int]*obs.Counter // helium_requests_total{status=...}
	statusOther *obs.Counter

	queueDepth *obs.Gauge
	queueWait  *obs.Histogram
	execute    *obs.Histogram

	beOK  [numBackends]*obs.Counter
	beErr [numBackends]*obs.Counter
	beLat [numBackends]*obs.Histogram

	brkOpen  [numBackends]*obs.Counter
	brkClose [numBackends]*obs.Counter

	shed, limited, timeouts  *obs.Counter
	panics, degraded, failed *obs.Counter

	warmSeconds  *obs.Gauge
	liftOK       *obs.Counter
	liftFailed   *obs.Counter
	liftRejected map[lift.Phase]*obs.Counter
	liftSeconds  *obs.Histogram

	fpoints map[string]*obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{reg: reg, status: map[int]*obs.Counter{}}

	const reqHelp = "Eval requests by final HTTP status."
	for _, code := range evalStatuses {
		m.status[code] = reg.Counter("helium_requests_total", reqHelp,
			obs.L("status", strconv.Itoa(code)))
	}
	m.statusOther = reg.Counter("helium_requests_total", reqHelp, obs.L("status", "other"))

	m.queueDepth = reg.Gauge("helium_queue_depth", "Jobs waiting in the admission queue (sampled at scrape).")
	m.queueWait = reg.Histogram("helium_queue_wait_seconds", "Time jobs spent queued before a worker claimed them.", nil)
	m.execute = reg.Histogram("helium_execute_seconds", "Wall time of request execution (degradation chain included).", nil)

	const attHelp = "Backend attempts by outcome."
	const latHelp = "Per-backend attempt latency."
	const brkHelp = "Circuit breaker transitions by backend."
	for be := backendID(0); be < numBackends; be++ {
		name := backendNames[be]
		m.beOK[be] = reg.Counter("helium_backend_attempts_total", attHelp,
			obs.L("backend", name), obs.L("outcome", "ok"))
		m.beErr[be] = reg.Counter("helium_backend_attempts_total", attHelp,
			obs.L("backend", name), obs.L("outcome", "error"))
		m.beLat[be] = reg.Histogram("helium_backend_seconds", latHelp, nil, obs.L("backend", name))
		m.brkOpen[be] = reg.Counter("helium_breaker_transitions_total", brkHelp,
			obs.L("backend", name), obs.L("to", "open"))
		m.brkClose[be] = reg.Counter("helium_breaker_transitions_total", brkHelp,
			obs.L("backend", name), obs.L("to", "closed"))
	}

	m.shed = reg.Counter("helium_shed_total", "Requests shed by admission (draining or full queue).")
	m.limited = reg.Counter("helium_limited_total", "Requests refused by the per-kernel concurrency limit.")
	m.timeouts = reg.Counter("helium_timeouts_total", "Requests abandoned by an expired deadline before execution finished.")
	m.panics = reg.Counter("helium_panics_total", "Panics recovered inside request execution or lifting.")
	m.degraded = reg.Counter("helium_degraded_total", "Requests served after at least one fallback step.")
	m.failed = reg.Counter("helium_failed_total", "Requests that exhausted every eligible backend.")

	m.warmSeconds = reg.Gauge("helium_warm_seconds", "Wall time of the last corpus warm.")
	const liftHelp = "Lift pipeline outcomes."
	m.liftOK = reg.Counter("helium_lifts_total", liftHelp, obs.L("outcome", "ok"))
	m.liftFailed = reg.Counter("helium_lifts_total", liftHelp, obs.L("outcome", "failed"))
	m.liftRejected = map[lift.Phase]*obs.Counter{}
	for _, p := range lift.Phases() {
		m.liftRejected[p] = reg.Counter("helium_lift_rejections_total",
			"Typed lift rejections by pipeline phase.", obs.L("phase", string(p)))
	}
	m.liftSeconds = reg.Histogram("helium_lift_seconds", "Wall time of one-time kernel lifts (verify and compile included).", nil)

	m.fpoints = map[string]*obs.Counter{}
	for _, name := range faultpoint.Names() {
		m.fpoints[name] = reg.Counter("helium_faultpoint_triggers_total",
			"Faultpoint fires since process start (process-wide, mirrored at scrape).",
			obs.L("point", name))
	}
	return m
}

// observeStatus counts one finished request under its status series.
func (m *metrics) observeStatus(code int) {
	c, ok := m.status[code]
	if !ok {
		c = m.statusOther
	}
	c.Inc()
}

// breakerStateCode maps breaker state names onto the gauge encoding
// (0 closed, 1 open, 2 half-open).
func breakerStateCode(state string) float64 {
	switch state {
	case "open":
		return 1
	case "half-open":
		return 2
	}
	return 0
}

// installScrapeHook wires the scrape-time mirrors: queue depth, breaker
// state gauges, and the process-wide faultpoint trigger counts.
func (s *Server) installScrapeHook() {
	s.met.reg.OnScrape(func() {
		s.met.queueDepth.Set(float64(len(s.jobs)))
		for _, e := range s.reg.entries() {
			for be := range e.brkState {
				if e.brkState[be] != nil {
					e.brkState[be].Set(breakerStateCode(e.breakers[be].state()))
				}
			}
		}
		counts := faultpoint.TriggerCounts()
		for name, c := range s.met.fpoints {
			c.Store(counts[name])
		}
	})
}
