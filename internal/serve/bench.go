package serve

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"
)

// BenchOptions configures a load-generation run against an in-process
// server.
type BenchOptions struct {
	// Kernel is the kernel every request targets (default boxblur3).
	Kernel string
	// Width, Height and Seed fix the request geometry.
	Width, Height int
	Seed          uint64
	// Levels are the concurrent-client counts to sweep (default 1,4,16).
	Levels []int
	// Requests is the request count per level (default 400).
	Requests int
}

// BenchLevel is one concurrency level's measurements.
type BenchLevel struct {
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	DurationMS    float64 `json:"duration_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	Errors        int     `json:"errors"`
	Shed          uint64  `json:"shed"`
	Limited       uint64  `json:"limited"`
	Degraded      uint64  `json:"degraded"`
}

// BenchReport is the serialized BENCH_serve.json payload.
type BenchReport struct {
	Kernel     string       `json:"kernel"`
	Geometry   string       `json:"geometry"`
	InputBytes int          `json:"input_bytes"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	QueueDepth int          `json:"queue_depth"`
	Levels     []BenchLevel `json:"levels"`
}

// Bench spins the server up on a loopback listener, drives it with
// concurrent HTTP clients at each level, and reports throughput, latency
// quantiles and the overload counters.  Requests use client-supplied
// pixels — the zero-alloc production path.
func (s *Server) Bench(o BenchOptions) (*BenchReport, error) {
	if o.Kernel == "" {
		o.Kernel = "boxblur3"
	}
	if o.Width <= 0 {
		o.Width = s.opts.LiftWidth
	}
	if o.Height <= 0 {
		o.Height = s.opts.LiftHeight
	}
	if o.Seed == 0 {
		o.Seed = s.opts.LiftSeed
	}
	if len(o.Levels) == 0 {
		o.Levels = []int{1, 4, 16}
	}
	if o.Requests <= 0 {
		o.Requests = 400
	}

	n, err := s.InputSpec(o.Kernel, o.Width, o.Height)
	if err != nil {
		return nil, fmt.Errorf("input spec for %s: %w", o.Kernel, err)
	}
	body := make([]byte, n)
	rnd := uint64(0x9e3779b97f4a7c15)
	for i := range body {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		body[i] = byte(rnd)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go s.Serve(ln)
	defer ln.Close()
	url := fmt.Sprintf("http://%s/v1/eval?kernel=%s&width=%d&height=%d&seed=%d",
		ln.Addr(), o.Kernel, o.Width, o.Height, o.Seed)

	rep := &BenchReport{
		Kernel:     o.Kernel,
		Geometry:   fmt.Sprintf("%dx%d seed %d", o.Width, o.Height, o.Seed),
		InputBytes: n,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    s.opts.Workers,
		QueueDepth: s.opts.QueueDepth,
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	for _, clients := range o.Levels {
		before := s.Stats()
		lats := make([]time.Duration, o.Requests)
		errs := make([]int, clients)
		var next int
		var mu sync.Mutex
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= o.Requests {
						return
					}
					t0 := time.Now()
					resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
					if err != nil {
						errs[c]++
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					lats[i] = time.Since(t0)
					if resp.StatusCode != http.StatusOK {
						errs[c]++
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		after := s.Stats()

		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		quant := func(q float64) float64 {
			i := int(q * float64(len(lats)-1))
			return float64(lats[i].Microseconds()) / 1000
		}
		nerr := 0
		for _, e := range errs {
			nerr += e
		}
		rep.Levels = append(rep.Levels, BenchLevel{
			Clients:       clients,
			Requests:      o.Requests,
			DurationMS:    float64(elapsed.Microseconds()) / 1000,
			ThroughputRPS: float64(o.Requests) / elapsed.Seconds(),
			P50MS:         quant(0.50),
			P99MS:         quant(0.99),
			Errors:        nerr,
			Shed:          after.Shed - before.Shed,
			Limited:       after.Limited - before.Limited,
			Degraded:      after.Degraded - before.Degraded,
		})
	}
	return rep, nil
}
