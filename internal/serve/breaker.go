package serve

import "sync"

// breaker is a per-backend circuit breaker.  It is deliberately
// clock-free: state advances on request counts, not wall time, so chaos
// tests replay deterministically and an idle server never flips state
// behind the operator's back.
//
// States:
//
//	closed     every request may try the backend; tripAfter consecutive
//	           failures trip the breaker open.
//	open       the backend is skipped (its failure latency is no longer
//	           paid per request); after probeAfter skipped requests one
//	           half-open probe is let through.
//	half-open  exactly one in-flight probe; success closes the breaker,
//	           failure re-opens it for another probeAfter skips.
type breaker struct {
	mu         sync.Mutex
	tripAfter  int // consecutive failures that trip the breaker
	probeAfter int // skipped requests before a half-open probe

	fails   int // consecutive failures while closed
	open    bool
	skips   int // requests skipped since opening (or since last probe)
	probing bool
	trips   uint64

	// onOpen/onClose observe the closed->open trip and the probe-success
	// close.  Optional; called under mu, so hooks must only do lock-free
	// work (the metric layer's atomic increments).
	onOpen, onClose func()
}

// allow reports whether the caller may attempt the backend on this
// request.  A true return must be matched by exactly one report call.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing {
		return false
	}
	b.skips++
	if b.skips >= b.probeAfter {
		b.probing = true
		return true
	}
	return false
}

// report records the outcome of an attempt admitted by allow.
func (b *breaker) report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		b.probing = false
		b.skips = 0
		if ok {
			b.open = false
			b.fails = 0
			if b.onClose != nil {
				b.onClose()
			}
		}
		return
	}
	if b.open {
		// A pre-trip attempt finishing late; the breaker already decided.
		return
	}
	if ok {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.tripAfter {
		b.open = true
		b.skips = 0
		b.trips++
		if b.onOpen != nil {
			b.onOpen()
		}
	}
}

// state names the current breaker state for observability endpoints.
func (b *breaker) state() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.probing:
		return "half-open"
	case b.open:
		return "open"
	}
	return "closed"
}

// tripped returns the total number of trips so far.
func (b *breaker) tripped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
