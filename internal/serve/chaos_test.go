package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"helium/internal/faultpoint"
	"helium/internal/legacy"
)

// typedStatuses is the complete set of statuses the robustness contract
// permits under chaos: bit-exact 200s or typed 4xx/5xx — never a wrong
// answer, never a hang, never a dead process.
var typedStatuses = map[int]bool{
	200: true, 400: true, 404: true, 413: true, 422: true,
	429: true, 500: true, 503: true, 504: true,
}

// chaosTarget is one (kernel, geometry) the chaos run cycles through,
// with its precomputed ground truth.
type chaosTarget struct {
	kernel string
	w, h   int
	seed   uint64
	want   []byte // vm reference output
	pixels []byte // the pattern's input interior, for pixels-mode requests
}

// newChaosServer builds a warmed two-kernel server with fast injected
// delays, plus the ground-truth table every 200 is checked against.
func newChaosServer(t *testing.T) (*Server, *httptest.Server, []chaosTarget) {
	t.Helper()
	faultpoint.Reset()
	s := New(Options{SlowBackendDelay: 2 * time.Millisecond, TripAfter: 3, ProbeAfter: 8})
	s.Start()
	t.Cleanup(func() {
		faultpoint.Reset()
		faultpoint.Seed(1)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var targets []chaosTarget
	// histeq rides along: its reduction-fed pipeline exercises the
	// table-consuming stage under every fault, and its degraded interp
	// answers must stay bit-exact to the generated chain head's.
	for _, kernel := range []string{"brighten", "boxblur3", "histeq"} {
		for _, g := range []struct {
			w, h int
			seed uint64
		}{{40, 24, 1}, {52, 30, 7}} {
			want, err := s.Reference(kernel, g.w, g.h, g.seed)
			if err != nil {
				t.Fatalf("%s %dx%d reference: %v", kernel, g.w, g.h, err)
			}
			k, _ := legacy.Lookup(kernel)
			inst := k.Instantiate(legacy.Config{Width: g.w, Height: g.h, Seed: g.seed})
			targets = append(targets, chaosTarget{kernel, g.w, g.h, g.seed, want, inst.InputInterior})
		}
	}
	return s, ts, targets
}

// TestChaosContract is the acceptance gate: with every serve.* faultpoint
// and the backend faultpoints armed — always-on and probabilistic — a
// 200-request run yields only bit-exact 200s and typed 4xx/5xx, the
// process survives, and after the faults clear the chain head recovers
// (observable in X-Helium-Backend).
func TestChaosContract(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos contract is not a -short test")
	}
	_, ts, targets := newChaosServer(t)

	scenarios := []struct {
		name  string
		specs []string
		// allowed tightens the typed set where the outcome is known.
		allowed map[int]bool
	}{
		{"exec-panic always", []string{"serve.exec-panic"}, map[int]bool{500: true}},
		{"exec-panic probabilistic", []string{"serve.exec-panic:0.3"}, map[int]bool{200: true, 500: true}},
		{"slow-backend always", []string{"serve.slow-backend"}, map[int]bool{200: true}},
		{"slow-backend probabilistic", []string{"serve.slow-backend:0.25"}, map[int]bool{200: true}},
		{"slow-backend after-N", []string{"serve.slow-backend@20"}, map[int]bool{200: true}},
		{"shed probabilistic", []string{"serve.shed:0.2"}, map[int]bool{200: true, 503: true}},
		{"combined storm", []string{"serve.exec-panic:0.1", "serve.slow-backend:0.2", "serve.shed:0.1"}, nil},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			faultpoint.Seed(42)
			for _, spec := range sc.specs {
				if err := faultpoint.Arm(spec); err != nil {
					t.Fatalf("arming %q: %v", spec, err)
				}
			}
			counts := map[int]int{}
			degraded := 0
			for i := 0; i < 200; i++ {
				tgt := targets[i%len(targets)]
				var pixels []byte
				if i%3 == 0 {
					pixels = tgt.pixels
				}
				r := eval(t, ts, tgt.kernel, tgt.w, tgt.h, tgt.seed, pixels)
				counts[r.status]++
				if !typedStatuses[r.status] {
					t.Fatalf("request %d: untyped status %d", i, r.status)
				}
				if sc.allowed != nil && !sc.allowed[r.status] {
					t.Fatalf("request %d: status %d outside the scenario's expected set %v", i, r.status, sc.allowed)
				}
				if r.status == 200 && !bytes.Equal(r.body, tgt.want) {
					t.Fatalf("request %d (%s %dx%d): a 200 response carries wrong pixels", i, tgt.kernel, tgt.w, tgt.h)
				}
				// A degraded 200 — X-Helium-Degraded names the fallback
				// trail — is held to the same bit-exactness as a clean one;
				// the bytes.Equal above already ran, this records that the
				// scenario actually exercised a degraded answer.
				if r.status == 200 && r.degraded != "" {
					degraded++
				}
				if r.status == 503 && r.retryAfter == "" {
					t.Fatalf("request %d: shed 503 without Retry-After", i)
				}
			}
			faultpoint.Reset()
			if strings.Contains(sc.name, "slow-backend") && degraded == 0 {
				t.Fatalf("%s: no 200 carried an X-Helium-Degraded trail; the scenario never tested degraded bit-exactness", sc.name)
			}

			// The process must still be healthy, and — whatever breakers the
			// storm tripped — the generated chain head must recover within a
			// bounded number of requests once the faults clear.
			if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
				t.Fatalf("server unhealthy after chaos: %v", err)
			} else {
				resp.Body.Close()
			}
			recovered := false
			for i := 0; i < 50 && !recovered; i++ {
				r := eval(t, ts, "brighten", 40, 24, 1, nil)
				recovered = r.status == 200 && r.backend == "generated"
			}
			if !recovered {
				t.Fatalf("generated backend did not recover within 50 requests after %s", sc.name)
			}
			t.Logf("%s: statuses %v", sc.name, counts)
		})
	}
}

// TestChaosLiftFaults covers the backend faultpoints that strike at lift
// time: a fresh registry under an armed lift fault must answer every
// request with the same cached typed rejection, and under a probabilistic
// fault the singleflight lift yields one coherent outcome — all poisoned
// or all bit-exact.
func TestChaosLiftFaults(t *testing.T) {
	scenarios := []struct {
		name, spec string
	}{
		{"corrupt-input always", "lift.corrupt-input"},
		{"corrupt-input probabilistic", "lift.corrupt-input:0.6"},
		{"truncated trace always", "trace.truncate"},
		{"truncated trace probabilistic", "trace.truncate:0.6"},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			faultpoint.Reset()
			faultpoint.Seed(7)
			t.Cleanup(func() { faultpoint.Reset(); faultpoint.Seed(1) })
			s := New(Options{})
			s.Start()
			t.Cleanup(func() { s.Shutdown(context.Background()) })
			ts := httptest.NewServer(s.Handler())
			t.Cleanup(ts.Close)

			// Ground truth from a clean server, before any fault is armed.
			want, err := New(Options{}).Reference("boxblur3", 40, 24, 1)
			if err != nil {
				t.Fatalf("clean reference: %v", err)
			}
			if err := faultpoint.Arm(sc.spec); err != nil {
				t.Fatal(err)
			}
			first := eval(t, ts, "boxblur3", 40, 24, 1, nil)
			if !typedStatuses[first.status] {
				t.Fatalf("untyped status %d under %s", first.status, sc.spec)
			}
			for i := 0; i < 50; i++ {
				r := eval(t, ts, "boxblur3", 40, 24, 1, nil)
				if r.status != first.status {
					t.Fatalf("request %d: status %d, but the cached lift outcome answered %d first", i, r.status, first.status)
				}
				switch r.status {
				case 200:
					if !bytes.Equal(r.body, want) {
						t.Fatalf("request %d: 200 with wrong pixels under %s", i, sc.spec)
					}
				case 422:
					if r.errJSON["phase"] == "" {
						t.Fatalf("request %d: 422 without a rejection phase", i)
					}
				case 500:
					// A lift failure that is not a typed Rejection caches as
					// a 500; still typed, still consistent.
				default:
					t.Fatalf("request %d: lift fault produced status %d, want 200, 422 or 500", i, r.status)
				}
			}
		})
	}
}

// TestBreakerObservableInResponses walks one trip/recover cycle and pins
// every observable: the degradation note, the X-Helium-Backend switch,
// the open breaker in /v1/kernels, and the recovery probe.
func TestBreakerObservableInResponses(t *testing.T) {
	s, ts, _ := newChaosServer(t)

	breakerState := func(kernel, backend string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/kernels")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var infos []kernelInfo
		if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
			t.Fatal(err)
		}
		for _, info := range infos {
			if info.Name == kernel {
				return info.Breakers[backend]
			}
		}
		t.Fatalf("kernel %q not in /v1/kernels", kernel)
		return ""
	}

	if st := breakerState("brighten", "generated"); st != "closed" {
		t.Fatalf("generated breaker starts %q, want closed", st)
	}
	faultpoint.Enable(fpSlowBackend)

	// The first TripAfter requests degrade per-request: generated fails,
	// compiled answers, and the response says so.
	for i := 0; i < s.opts.TripAfter; i++ {
		r := eval(t, ts, "brighten", 40, 24, 1, nil)
		if r.status != 200 || r.backend != "compiled" {
			t.Fatalf("degraded request %d: status %d via %q, want 200 via compiled", i, r.status, r.backend)
		}
		if !strings.Contains(r.degraded, "generated:") {
			t.Fatalf("degraded request %d: trail %q does not name the failed generated backend", i, r.degraded)
		}
	}
	if st := breakerState("brighten", "generated"); st != "open" {
		t.Fatalf("generated breaker is %q after %d consecutive failures, want open", st, s.opts.TripAfter)
	}

	// While open, requests skip the generated attempt entirely.
	r := eval(t, ts, "brighten", 40, 24, 1, nil)
	if r.backend != "compiled" || !strings.Contains(r.degraded, "generated:breaker-open") {
		t.Fatalf("open-breaker request: backend %q trail %q, want compiled via breaker-open", r.backend, r.degraded)
	}

	// Clear the fault: after ProbeAfter skips a half-open probe succeeds
	// and the chain head serves again — observable purely from the
	// X-Helium-Backend header.
	faultpoint.Reset()
	recoveredAt := -1
	for i := 0; i < s.opts.ProbeAfter+3; i++ {
		r := eval(t, ts, "brighten", 40, 24, 1, nil)
		if r.status != 200 {
			t.Fatalf("recovery request %d: status %d", i, r.status)
		}
		if r.backend == "generated" {
			recoveredAt = i
			break
		}
	}
	if recoveredAt < 0 {
		t.Fatalf("generated backend did not recover within %d requests", s.opts.ProbeAfter+3)
	}
	if st := breakerState("brighten", "generated"); st != "closed" {
		t.Fatalf("generated breaker is %q after recovery, want closed", st)
	}
	if r := eval(t, ts, "brighten", 40, 24, 1, nil); r.backend != "generated" || r.degraded != "" {
		t.Fatalf("post-recovery request: backend %q trail %q, want clean generated", r.backend, r.degraded)
	}
}

// TestChaosShedFaultpoint pins the serve.shed faultpoint in always-on and
// after-N modes through the HTTP surface.
func TestChaosShedFaultpoint(t *testing.T) {
	_, ts, targets := newChaosServer(t)
	tgt := targets[0]
	url := fmt.Sprintf("%s/v1/eval?kernel=%s&width=%d&height=%d&seed=%d", ts.URL, tgt.kernel, tgt.w, tgt.h, tgt.seed)

	faultpoint.Enable(fpShed)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("forced shed: status %d Retry-After %q, want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// After-N mode: the first two requests sail through, the third sheds.
	faultpoint.EnableAfter(fpShed, 3)
	statuses := make([]int, 4)
	for i := range statuses {
		r := eval(t, ts, tgt.kernel, tgt.w, tgt.h, tgt.seed, nil)
		statuses[i] = r.status
		if r.status == 200 && !bytes.Equal(r.body, tgt.want) {
			t.Fatalf("after-N shed: request %d returned wrong pixels", i)
		}
	}
	faultpoint.Reset()
	want := []int{200, 200, 503, 503}
	for i := range want {
		if statuses[i] != want[i] {
			t.Fatalf("after-N shed: statuses %v, want %v", statuses, want)
		}
	}
}
