package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"helium/internal/faultpoint"
	"helium/internal/legacy"
	"helium/internal/schedule"
)

// Options configures a Server.  The zero value is usable: every field
// falls back to the documented default.
type Options struct {
	// LiftWidth, LiftHeight and LiftSeed fix the geometry kernels are
	// lifted and verified at (requests may use any geometry within the
	// limits below).  Defaults 40x24 seed 1, matching `helium run`.
	LiftWidth, LiftHeight int
	LiftSeed              uint64

	// Schedules is the tuned schedule set applied to the compiled
	// fallback backend; nil means heuristic defaults.
	Schedules *schedule.Set

	// Workers is the shared execution pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; a full queue sheds with 503
	// (default 64).
	QueueDepth int
	// PerKernel caps in-flight requests per kernel; beyond it requests
	// are refused with 429 (default Workers).
	PerKernel int

	// Timeout is the per-request execution deadline (default 10s).
	Timeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration

	// Request geometry limits (defaults 12x6 .. 2048x2048).
	MinWidth, MinHeight int
	MaxWidth, MaxHeight int

	// MaxVMSteps and MaxTraceInsts bound every emulation the server runs
	// (lift-time tracing and the vm terminal backend), so a hostile
	// binary can slow a request down but never hang it.
	MaxVMSteps    uint64
	MaxTraceInsts int

	// TripAfter consecutive failures open a backend's circuit breaker;
	// after ProbeAfter skipped requests a half-open probe may close it
	// (defaults 3 and 8).
	TripAfter, ProbeAfter int

	// EvalWorkers is the intra-request parallelism (default 1: requests
	// parallelize across the pool, not inside one request).
	EvalWorkers int

	// SlowBackendDelay is the injected latency of the serve.slow-backend
	// faultpoint (default 25ms).
	SlowBackendDelay time.Duration
}

func (o Options) withDefaults() Options {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&o.LiftWidth, 40)
	def(&o.LiftHeight, 24)
	if o.LiftSeed == 0 {
		o.LiftSeed = 1
	}
	def(&o.Workers, runtime.GOMAXPROCS(0))
	def(&o.QueueDepth, 64)
	def(&o.PerKernel, o.Workers)
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	def(&o.MinWidth, 12)
	def(&o.MinHeight, 6)
	def(&o.MaxWidth, 2048)
	def(&o.MaxHeight, 2048)
	if o.MaxVMSteps == 0 {
		o.MaxVMSteps = 200_000_000
	}
	def(&o.TripAfter, 3)
	def(&o.ProbeAfter, 8)
	def(&o.EvalWorkers, 1)
	if o.SlowBackendDelay <= 0 {
		o.SlowBackendDelay = 25 * time.Millisecond
	}
	return o
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	Errors   uint64 `json:"errors"`
	Degraded uint64 `json:"degraded"`
	Panics   uint64 `json:"panics"`
	Shed     uint64 `json:"shed"`
	Limited  uint64 `json:"limited"`
	Timeouts uint64 `json:"timeouts"`
}

// Server is the lifting-as-a-service HTTP server: a kernel registry, a
// bounded admission queue over a shared worker pool, and the per-request
// degradation machinery.
type Server struct {
	opts Options
	reg  *Registry

	jobs    chan *job
	jobPool sync.Pool
	wg      sync.WaitGroup

	started  atomic.Bool
	draining atomic.Bool
	warmed   atomic.Bool

	requests, ok, errs   atomic.Uint64
	degraded, panics     atomic.Uint64
	shed, limited, tmout atomic.Uint64

	mux  *http.ServeMux
	http *http.Server
}

// New builds a Server.  Call Start (or Serve) before submitting requests.
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts: o,
		reg:  newRegistry(o),
		jobs: make(chan *job, o.QueueDepth),
	}
	s.jobPool.New = func() any { return &job{done: make(chan struct{}, 1)} }
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/v1/eval", s.handleEval)
	s.mux.HandleFunc("/v1/kernels", s.handleKernels)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// Start spawns the worker pool (idempotent).
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Warm lifts the whole corpus up front so /readyz means "every kernel's
// lift outcome is cached".
func (s *Server) Warm() {
	s.reg.warm()
	s.warmed.Store(true)
}

// MarkReady reports readiness without pre-lifting (lazy warming): each
// kernel lifts on its first request instead.  Callers skipping Warm
// must call this or /readyz stays 503.
func (s *Server) MarkReady() { s.warmed.Store(true) }

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve starts the workers and serves HTTP on the listener until
// Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.Start()
	s.http = &http.Server{Handler: s.mux}
	err := s.http.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains gracefully: new requests are refused with 503, HTTP
// ingress stops, in-flight requests run to completion (bounded by ctx),
// then the worker pool exits.  Callers not using Serve must guarantee no
// Do calls are in flight or started after.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.http != nil {
		// Shutdown returns once every active handler — every possible
		// queue producer — has finished, making the close below safe.
		err = s.http.Shutdown(ctx)
	}
	if s.started.Load() {
		close(s.jobs)
		s.wg.Wait()
		s.started.Store(false)
	}
	return err
}

// Stats snapshots the global counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests: s.requests.Load(),
		OK:       s.ok.Load(),
		Errors:   s.errs.Load(),
		Degraded: s.degraded.Load(),
		Panics:   s.panics.Load(),
		Shed:     s.shed.Load(),
		Limited:  s.limited.Load(),
		Timeouts: s.tmout.Load(),
	}
}

// Registry exposes the kernel registry (for warmers and the -ref mode).
func (s *Server) Registry() *Registry { return s.reg }

// InputSpec returns the input interior byte count a request geometry
// needs for a kernel, lifting it first if necessary.  Load generators use
// it to build request bodies.
func (s *Server) InputSpec(kernel string, w, h int) (int, error) {
	e, err := s.reg.resolve(kernel)
	if err != nil {
		return 0, err
	}
	e.ensure()
	if e.rej != nil {
		return 0, e.rej
	}
	if e.err != nil {
		return 0, e.err
	}
	return e.inputBytes(w, h), nil
}

// Reference computes the ground-truth response for a pattern-mode request
// through the vm terminal backend alone — a fresh re-emulation of the
// legacy binary, independent of every lifted execution path.  CI uses it
// to check served bytes against the binary's own output.
func (s *Server) Reference(kernel string, w, h int, seed uint64) ([]byte, error) {
	e, err := s.reg.resolve(kernel)
	if err != nil {
		return nil, err
	}
	e.ensure()
	if e.rej != nil {
		return nil, e.rej
	}
	if e.err != nil {
		return nil, e.err
	}
	if !e.vmOK {
		return nil, fmt.Errorf("kernel %q has no vm reference window", kernel)
	}
	req := &request{w: w, h: h, seed: seed}
	req.inst = e.kern.Instantiate(legacy.Config{Width: w, Height: h, Seed: seed})
	outW, outH := e.outDims(w, h)
	full, err := req.inst.RunVMBounded(s.opts.MaxVMSteps)
	if err != nil {
		return nil, err
	}
	return e.vmWindow(full, req, outW, outH)
}

// job is one queued request.  Ownership is a three-state handshake:
// whichever side loses the pending->done / pending->abandoned race cleans
// up, so a deadline-expired handler can return immediately while the
// worker still owns the scratch.
type job struct {
	state atomic.Int32 // statePending -> stateDone | stateAbandoned
	ctx   context.Context
	e     *entry
	req   request
	rs    *reqScratch
	res   result
	done  chan struct{}
}

const (
	statePending int32 = iota
	stateDone
	stateAbandoned
)

// worker is one pool goroutine: it claims scratch, executes, and hands
// the job back — or cleans it up when the requester already left.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		if j.state.Load() == stateAbandoned {
			s.release(j)
			continue
		}
		j.rs = j.e.scratch.Get().(*reqScratch)
		j.res = j.e.execute(j.ctx, j.rs, &j.req)
		if j.state.CompareAndSwap(statePending, stateDone) {
			j.done <- struct{}{}
		} else {
			s.release(j)
		}
	}
}

// release returns a job's resources: scratch to the entry pool, the
// per-kernel slot, and the job itself.  Called exactly once per admitted
// job, by whichever side owns it last.
func (s *Server) release(j *job) {
	if j.rs != nil {
		j.e.scratch.Put(j.rs)
		j.rs = nil
	}
	<-j.e.sem
	j.ctx, j.e, j.req, j.res = nil, nil, request{}, result{}
	s.jobPool.Put(j)
}

// do submits one request through admission, the bounded queue and the
// worker pool, then calls emit with the outcome.  emit runs exactly once;
// a 200's body aliases pooled scratch and is only valid inside emit.
func (s *Server) do(ctx context.Context, kernel string, req *request, emit func(*result)) {
	s.requests.Add(1)
	if s.draining.Load() {
		s.shed.Add(1)
		r := result{status: 503, errMsg: "server is draining", retryAfter: 1}
		s.finish(emit, &r)
		return
	}
	e, err := s.reg.resolve(kernel)
	if err != nil {
		r := result{status: 404, errMsg: err.Error()}
		s.finish(emit, &r)
		return
	}
	// Per-kernel concurrency limit.
	select {
	case e.sem <- struct{}{}:
	default:
		s.limited.Add(1)
		r := result{status: 429, errMsg: "kernel concurrency limit reached", retryAfter: 1}
		s.finish(emit, &r)
		return
	}
	j := s.jobPool.Get().(*job)
	j.state.Store(statePending)
	j.ctx, j.e, j.req = ctx, e, *req
	// Bounded admission: a full queue (or the injected overload) sheds
	// rather than queueing unbounded latency.
	shed := faultpoint.Enabled(fpShed)
	if !shed {
		select {
		case s.jobs <- j:
		default:
			shed = true
		}
	}
	if shed {
		j.rs = nil
		s.release(j)
		s.shed.Add(1)
		r := result{status: 503, errMsg: "admission queue is full", retryAfter: 1}
		s.finish(emit, &r)
		return
	}
	select {
	case <-j.done:
		s.finish(emit, &j.res)
		s.release(j)
	case <-ctx.Done():
		if j.state.CompareAndSwap(statePending, stateAbandoned) {
			s.tmout.Add(1)
			r := result{status: 504, errMsg: "request deadline expired before execution finished"}
			s.finish(emit, &r)
			// The worker (or queue drain) releases the job.
			return
		}
		// The worker finished first; take the handoff normally.
		<-j.done
		s.finish(emit, &j.res)
		s.release(j)
	}
}

// finish updates outcome counters and invokes emit.
func (s *Server) finish(emit func(*result), r *result) {
	if r.status == 200 {
		s.ok.Add(1)
	} else {
		s.errs.Add(1)
	}
	if r.degraded != "" {
		s.degraded.Add(1)
	}
	emit(r)
}

// --- HTTP layer ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process serves, even while draining.
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || !s.started.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	if !s.warmed.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "warming\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

// handleEval is the serving endpoint:
//
//	POST /v1/eval?kernel=name&width=W&height=H[&seed=S]
//
// With a request body, the body is the raw input interior (the bytes the
// legacy filter would read) and the response is the kernel's output
// window.  Without a body (or with GET) the server generates the
// deterministic seed pattern — exactly `helium run`'s workload.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST", "")
		return
	}
	q := r.URL.Query()
	kernel := q.Get("kernel")
	if kernel == "" {
		httpError(w, http.StatusBadRequest, "missing kernel parameter", "")
		return
	}
	width, err1 := intParam(q.Get("width"), s.opts.LiftWidth)
	height, err2 := intParam(q.Get("height"), s.opts.LiftHeight)
	seed, err3 := uintParam(q.Get("seed"), s.opts.LiftSeed)
	if err1 != nil || err2 != nil || err3 != nil {
		httpError(w, http.StatusBadRequest, "width, height and seed must be integers", "")
		return
	}
	if width < s.opts.MinWidth || height < s.opts.MinHeight {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("dimensions %dx%d below the %dx%d minimum", width, height, s.opts.MinWidth, s.opts.MinHeight), "")
		return
	}
	if width > s.opts.MaxWidth || height > s.opts.MaxHeight {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("dimensions %dx%d exceed the %dx%d limit", width, height, s.opts.MaxWidth, s.opts.MaxHeight), "")
		return
	}

	var pixels []byte
	if r.Method == http.MethodPost && r.ContentLength != 0 {
		// Generous fixed bound: dimensions are already capped, and the
		// exact per-kernel length is enforced after the entry is lifted.
		maxBody := int64(s.opts.MaxWidth+16)*int64(s.opts.MaxHeight+16)*4 + 1
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds the input size limit", "")
			return
		}
		pixels = body
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	req := request{w: width, h: height, seed: seed, pixels: pixels}
	s.do(ctx, kernel, &req, func(res *result) {
		h := w.Header()
		if res.backend != "" {
			h.Set("X-Helium-Backend", res.backend)
		}
		if res.degraded != "" {
			h.Set("X-Helium-Degraded", res.degraded)
		}
		if res.retryAfter > 0 {
			h.Set("Retry-After", strconv.Itoa(res.retryAfter))
		}
		if res.status != http.StatusOK {
			httpError(w, res.status, res.errMsg, res.phase)
			return
		}
		if res.bins > 0 {
			h.Set("X-Helium-Output", fmt.Sprintf("bins:%d", res.bins))
		} else {
			h.Set("X-Helium-Output", fmt.Sprintf("%dx%d", res.outW, res.outH))
		}
		h.Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(res.body)
	})
}

// kernelInfo is one registry entry's observable state.
type kernelInfo struct {
	Name     string            `json:"name"`
	Hash     string            `json:"hash"`
	State    string            `json:"state"` // cold | ready | poisoned | failed
	Phase    string            `json:"phase,omitempty"`
	Backends map[string]any    `json:"backends,omitempty"`
	Breakers map[string]string `json:"breakers,omitempty"`
	Degraded uint64            `json:"degraded"`
	Panics   uint64            `json:"panics"`
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	var infos []kernelInfo
	for _, e := range s.reg.entries() {
		info := kernelInfo{
			Name:     e.name,
			Hash:     e.hash[:12],
			Degraded: e.degraded.Load(),
			Panics:   e.panics.Load(),
		}
		switch {
		case e.inst0 != nil:
			info.State = "cold"
		case e.rej != nil:
			info.State = "poisoned"
			info.Phase = string(e.rej.Phase)
		case e.err != nil:
			info.State = "failed"
		default:
			info.State = "ready"
			info.Backends = map[string]any{}
			info.Breakers = map[string]string{}
			for _, be := range e.chain {
				info.Backends[backendNames[be]] = e.served[be].Load()
				info.Breakers[backendNames[be]] = e.breakers[be].state()
			}
			if e.vmOK {
				info.Backends["vm"] = e.served[beVM].Load()
				info.Breakers["vm"] = e.breakers[beVM].state()
			}
		}
		infos = append(infos, info)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(infos)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// httpError writes the typed JSON error body.
func httpError(w http.ResponseWriter, status int, msg, phase string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := map[string]string{"error": msg}
	if phase != "" {
		body["phase"] = phase
	}
	json.NewEncoder(w).Encode(body)
}

func intParam(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

func uintParam(v string, def uint64) (uint64, error) {
	if v == "" {
		return def, nil
	}
	return strconv.ParseUint(v, 10, 64)
}
