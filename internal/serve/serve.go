package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"helium/internal/faultpoint"
	"helium/internal/legacy"
	"helium/internal/obs"
	"helium/internal/schedule"
)

// Options configures a Server.  The zero value is usable: every field
// falls back to the documented default.
type Options struct {
	// LiftWidth, LiftHeight and LiftSeed fix the geometry kernels are
	// lifted and verified at (requests may use any geometry within the
	// limits below).  Defaults 40x24 seed 1, matching `helium run`.
	LiftWidth, LiftHeight int
	LiftSeed              uint64

	// Schedules is the tuned schedule set applied to the compiled
	// fallback backend; nil means heuristic defaults.
	Schedules *schedule.Set

	// Workers is the shared execution pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; a full queue sheds with 503
	// (default 64).
	QueueDepth int
	// PerKernel caps in-flight requests per kernel; beyond it requests
	// are refused with 429 (default Workers).
	PerKernel int

	// Timeout is the per-request execution deadline (default 10s).
	Timeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration

	// Request geometry limits (defaults 12x6 .. 2048x2048).
	MinWidth, MinHeight int
	MaxWidth, MaxHeight int

	// MaxVMSteps and MaxTraceInsts bound every emulation the server runs
	// (lift-time tracing and the vm terminal backend), so a hostile
	// binary can slow a request down but never hang it.
	MaxVMSteps    uint64
	MaxTraceInsts int

	// TripAfter consecutive failures open a backend's circuit breaker;
	// after ProbeAfter skipped requests a half-open probe may close it
	// (defaults 3 and 8).
	TripAfter, ProbeAfter int

	// EvalWorkers is the intra-request parallelism (default 1: requests
	// parallelize across the pool, not inside one request).
	EvalWorkers int

	// SlowBackendDelay is the injected latency of the serve.slow-backend
	// faultpoint (default 25ms).
	SlowBackendDelay time.Duration

	// Logger receives operational and access-log lines (default: drop
	// everything).  The access-log hot path is allocation-free.
	Logger *obs.Logger
	// Metrics is the registry the server's instruments live in and that
	// GET /metrics exposes.  Default: a fresh per-server registry.  Two
	// servers sharing one registry would share (and double-count) its
	// instruments — give each server its own.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's own mux.
	EnablePprof bool
}

func (o Options) withDefaults() Options {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&o.LiftWidth, 40)
	def(&o.LiftHeight, 24)
	if o.LiftSeed == 0 {
		o.LiftSeed = 1
	}
	def(&o.Workers, runtime.GOMAXPROCS(0))
	def(&o.QueueDepth, 64)
	def(&o.PerKernel, o.Workers)
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	def(&o.MinWidth, 12)
	def(&o.MinHeight, 6)
	def(&o.MaxWidth, 2048)
	def(&o.MaxHeight, 2048)
	if o.MaxVMSteps == 0 {
		o.MaxVMSteps = 200_000_000
	}
	def(&o.TripAfter, 3)
	def(&o.ProbeAfter, 8)
	def(&o.EvalWorkers, 1)
	if o.SlowBackendDelay <= 0 {
		o.SlowBackendDelay = 25 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	Errors   uint64 `json:"errors"`
	Degraded uint64 `json:"degraded"`
	Panics   uint64 `json:"panics"`
	Shed     uint64 `json:"shed"`
	Limited  uint64 `json:"limited"`
	Timeouts uint64 `json:"timeouts"`
}

// Server is the lifting-as-a-service HTTP server: a kernel registry, a
// bounded admission queue over a shared worker pool, and the per-request
// degradation machinery.
type Server struct {
	opts Options
	reg  *Registry
	log  *obs.Logger
	met  *metrics

	jobs    chan *job
	jobPool sync.Pool
	wg      sync.WaitGroup

	started  atomic.Bool
	draining atomic.Bool
	warmed   atomic.Bool

	mux  *http.ServeMux
	http *http.Server
}

// New builds a Server.  Call Start (or Serve) before submitting requests.
func New(opts Options) *Server {
	o := opts.withDefaults()
	met := newMetrics(o.Metrics)
	s := &Server{
		opts: o,
		log:  o.Logger,
		met:  met,
		reg:  newRegistry(o, met),
		jobs: make(chan *job, o.QueueDepth),
	}
	s.jobPool.New = func() any { return &job{done: make(chan struct{}, 1)} }
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/v1/eval", s.handleEval)
	s.mux.HandleFunc("/v1/kernels", s.handleKernels)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.Handle("/metrics", o.Metrics.Handler())
	if o.EnablePprof {
		// Mounted explicitly on the private mux; the DefaultServeMux
		// registrations of the pprof package's init are never served.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.installScrapeHook()
	return s
}

// Start spawns the worker pool (idempotent).
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Warm lifts the whole corpus up front so /readyz means "every kernel's
// lift outcome is cached".
func (s *Server) Warm() {
	start := time.Now()
	s.reg.warm()
	d := time.Since(start)
	s.met.warmSeconds.Set(d.Seconds())
	s.log.Info("corpus warmed", "kernels", len(s.reg.entries()), "dur", d)
	s.warmed.Store(true)
}

// MarkReady reports readiness without pre-lifting (lazy warming): each
// kernel lifts on its first request instead.  Callers skipping Warm
// must call this or /readyz stays 503.
func (s *Server) MarkReady() { s.warmed.Store(true) }

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve starts the workers and serves HTTP on the listener until
// Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.Start()
	s.http = &http.Server{Handler: s.mux}
	err := s.http.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains gracefully: new requests are refused with 503, HTTP
// ingress stops, in-flight requests run to completion (bounded by ctx),
// then the worker pool exits.  Callers not using Serve must guarantee no
// Do calls are in flight or started after.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.http != nil {
		// Shutdown returns once every active handler — every possible
		// queue producer — has finished, making the close below safe.
		err = s.http.Shutdown(ctx)
	}
	if s.started.Load() {
		close(s.jobs)
		s.wg.Wait()
		s.started.Store(false)
	}
	return err
}

// Stats snapshots the global counters.  The snapshot is computed from
// the same obs instruments /metrics exposes, so the two surfaces can
// never disagree.
func (s *Server) Stats() Stats {
	st := Stats{
		Degraded: s.met.degraded.Value(),
		Panics:   s.met.panics.Value(),
		Shed:     s.met.shed.Value(),
		Limited:  s.met.limited.Value(),
		Timeouts: s.met.timeouts.Value(),
	}
	for code, c := range s.met.status {
		v := c.Value()
		st.Requests += v
		if code == 200 {
			st.OK += v
		} else {
			st.Errors += v
		}
	}
	v := s.met.statusOther.Value()
	st.Requests += v
	st.Errors += v
	return st
}

// Registry exposes the kernel registry (for warmers and the -ref mode).
func (s *Server) Registry() *Registry { return s.reg }

// InputSpec returns the input interior byte count a request geometry
// needs for a kernel, lifting it first if necessary.  Load generators use
// it to build request bodies.
func (s *Server) InputSpec(kernel string, w, h int) (int, error) {
	e, err := s.reg.resolve(kernel)
	if err != nil {
		return 0, err
	}
	e.ensure()
	if e.rej != nil {
		return 0, e.rej
	}
	if e.err != nil {
		return 0, e.err
	}
	return e.inputBytes(w, h), nil
}

// Reference computes the ground-truth response for a pattern-mode request
// through the vm terminal backend alone — a fresh re-emulation of the
// legacy binary, independent of every lifted execution path.  CI uses it
// to check served bytes against the binary's own output.
func (s *Server) Reference(kernel string, w, h int, seed uint64) ([]byte, error) {
	e, err := s.reg.resolve(kernel)
	if err != nil {
		return nil, err
	}
	e.ensure()
	if e.rej != nil {
		return nil, e.rej
	}
	if e.err != nil {
		return nil, e.err
	}
	if !e.vmOK {
		return nil, fmt.Errorf("kernel %q has no vm reference window", kernel)
	}
	req := &request{w: w, h: h, seed: seed}
	req.inst = e.kern.Instantiate(legacy.Config{Width: w, Height: h, Seed: seed})
	outW, outH := e.outDims(w, h)
	full, err := req.inst.RunVMBounded(s.opts.MaxVMSteps)
	if err != nil {
		return nil, err
	}
	return e.vmWindow(full, req, outW, outH)
}

// job is one queued request.  Ownership is a three-state handshake:
// whichever side loses the pending->done / pending->abandoned race cleans
// up, so a deadline-expired handler can return immediately while the
// worker still owns the scratch.
type job struct {
	state atomic.Int32 // statePending -> stateDone | stateAbandoned
	ctx   context.Context
	e     *entry
	req   request
	rs    *reqScratch
	res   result
	enq   time.Time // when admission queued the job
	done  chan struct{}
}

const (
	statePending int32 = iota
	stateDone
	stateAbandoned
)

// worker is one pool goroutine: it claims scratch, executes, and hands
// the job back — or cleans it up when the requester already left.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		if j.state.Load() == stateAbandoned {
			s.release(j)
			continue
		}
		wait := time.Since(j.enq)
		s.met.queueWait.ObserveDuration(wait)
		j.rs = j.e.scratch.Get().(*reqScratch)
		t0 := time.Now()
		j.res = j.e.execute(j.ctx, j.rs, &j.req)
		j.res.queueWait, j.res.exec = wait, time.Since(t0)
		s.met.execute.ObserveDuration(j.res.exec)
		if j.state.CompareAndSwap(statePending, stateDone) {
			j.done <- struct{}{}
		} else {
			s.release(j)
		}
	}
}

// release returns a job's resources: scratch to the entry pool, the
// per-kernel slot, and the job itself.  Called exactly once per admitted
// job, by whichever side owns it last.
func (s *Server) release(j *job) {
	if j.rs != nil {
		j.e.scratch.Put(j.rs)
		j.rs = nil
	}
	<-j.e.sem
	j.ctx, j.e, j.req, j.res = nil, nil, request{}, result{}
	s.jobPool.Put(j)
}

// do submits one request through admission, the bounded queue and the
// worker pool, then calls emit with the outcome.  emit runs exactly once;
// a 200's body aliases pooled scratch and is only valid inside emit.
// The request's trace id (generated here when the caller did not admit
// one) rides on the result and stitches the access-log line to the
// X-Helium-Trace header.
func (s *Server) do(ctx context.Context, kernel string, req *request, emit func(*result)) {
	start := time.Now()
	if req.trace == 0 {
		req.trace = obs.NewTraceID()
	}
	if s.draining.Load() {
		s.met.shed.Inc()
		r := result{status: 503, errMsg: "server is draining", retryAfter: 1}
		s.finish(kernel, req, start, emit, &r)
		return
	}
	e, err := s.reg.resolve(kernel)
	if err != nil {
		r := result{status: 404, errMsg: err.Error()}
		s.finish(kernel, req, start, emit, &r)
		return
	}
	// Per-kernel concurrency limit.
	select {
	case e.sem <- struct{}{}:
	default:
		s.met.limited.Inc()
		r := result{status: 429, errMsg: "kernel concurrency limit reached", retryAfter: 1}
		s.finish(kernel, req, start, emit, &r)
		return
	}
	j := s.jobPool.Get().(*job)
	j.state.Store(statePending)
	j.ctx, j.e, j.req, j.enq = ctx, e, *req, start
	// Bounded admission: a full queue (or the injected overload) sheds
	// rather than queueing unbounded latency.
	shed := faultpoint.Enabled(fpShed)
	if !shed {
		select {
		case s.jobs <- j:
		default:
			shed = true
		}
	}
	if shed {
		j.rs = nil
		s.release(j)
		s.met.shed.Inc()
		r := result{status: 503, errMsg: "admission queue is full", retryAfter: 1}
		s.finish(kernel, req, start, emit, &r)
		return
	}
	select {
	case <-j.done:
		s.finish(kernel, req, start, emit, &j.res)
		s.release(j)
	case <-ctx.Done():
		if j.state.CompareAndSwap(statePending, stateAbandoned) {
			s.met.timeouts.Inc()
			r := result{status: 504, errMsg: "request deadline expired before execution finished"}
			s.finish(kernel, req, start, emit, &r)
			// The worker (or queue drain) releases the job.
			return
		}
		// The worker finished first; take the handoff normally.
		<-j.done
		s.finish(kernel, req, start, emit, &j.res)
		s.release(j)
	}
}

// finish stamps the trace id, updates outcome counters, writes the
// access-log line and invokes emit.  Allocation-free in steady state.
func (s *Server) finish(kernel string, req *request, start time.Time, emit func(*result), r *result) {
	r.trace = req.trace
	s.met.observeStatus(r.status)
	if r.degraded != "" {
		s.met.degraded.Inc()
	}
	if ln := s.log.Line(obs.LevelInfo, "eval"); ln != nil {
		ln.Hex64("trace", req.trace).
			Str("kernel", kernel).
			Int("w", req.w).Int("h", req.h).
			Int("status", r.status).
			Str("backend", r.backend).
			Str("degraded", r.degraded).
			Dur("queue_wait", r.queueWait).
			Dur("exec", r.exec).
			Dur("total", time.Since(start)).
			Log()
	}
	emit(r)
}

// --- HTTP layer ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process serves, even while draining.
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || !s.started.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	if !s.warmed.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "warming\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

// handleEval is the serving endpoint:
//
//	POST /v1/eval?kernel=name&width=W&height=H[&seed=S]
//
// With a request body, the body is the raw input interior (the bytes the
// legacy filter would read) and the response is the kernel's output
// window.  Without a body (or with GET) the server generates the
// deterministic seed pattern — exactly `helium run`'s workload.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	// Trace admission: every response — validation failures included —
	// carries the id that names its access-log line.
	trace := obs.NewTraceID()
	w.Header().Set("X-Helium-Trace", obs.TraceString(trace))
	fail := func(status int, msg, kernel string, width, height int) {
		s.met.observeStatus(status)
		s.log.Line(obs.LevelInfo, "eval").
			Hex64("trace", trace).Str("kernel", kernel).
			Int("w", width).Int("h", height).Int("status", status).
			Str("err", msg).Log()
		httpError(w, status, msg, "")
	}
	if r.Method != http.MethodPost && r.Method != http.MethodGet {
		fail(http.StatusMethodNotAllowed, "use GET or POST", "", 0, 0)
		return
	}
	q := r.URL.Query()
	kernel := q.Get("kernel")
	if kernel == "" {
		fail(http.StatusBadRequest, "missing kernel parameter", "", 0, 0)
		return
	}
	width, err1 := intParam(q.Get("width"), s.opts.LiftWidth)
	height, err2 := intParam(q.Get("height"), s.opts.LiftHeight)
	seed, err3 := uintParam(q.Get("seed"), s.opts.LiftSeed)
	if err1 != nil || err2 != nil || err3 != nil {
		fail(http.StatusBadRequest, "width, height and seed must be integers", kernel, 0, 0)
		return
	}
	if width < s.opts.MinWidth || height < s.opts.MinHeight {
		fail(http.StatusBadRequest,
			fmt.Sprintf("dimensions %dx%d below the %dx%d minimum", width, height, s.opts.MinWidth, s.opts.MinHeight),
			kernel, width, height)
		return
	}
	if width > s.opts.MaxWidth || height > s.opts.MaxHeight {
		fail(http.StatusRequestEntityTooLarge,
			fmt.Sprintf("dimensions %dx%d exceed the %dx%d limit", width, height, s.opts.MaxWidth, s.opts.MaxHeight),
			kernel, width, height)
		return
	}

	var pixels []byte
	if r.Method == http.MethodPost && r.ContentLength != 0 {
		// Generous fixed bound: dimensions are already capped, and the
		// exact per-kernel length is enforced after the entry is lifted.
		maxBody := int64(s.opts.MaxWidth+16)*int64(s.opts.MaxHeight+16)*4 + 1
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			fail(http.StatusRequestEntityTooLarge, "request body exceeds the input size limit", kernel, width, height)
			return
		}
		pixels = body
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	req := request{w: width, h: height, seed: seed, pixels: pixels, trace: trace}
	s.do(ctx, kernel, &req, func(res *result) {
		h := w.Header()
		if res.backend != "" {
			h.Set("X-Helium-Backend", res.backend)
		}
		if res.degraded != "" {
			h.Set("X-Helium-Degraded", res.degraded)
		}
		if res.retryAfter > 0 {
			h.Set("Retry-After", strconv.Itoa(res.retryAfter))
		}
		if res.status != http.StatusOK {
			httpError(w, res.status, res.errMsg, res.phase)
			return
		}
		if res.bins > 0 {
			h.Set("X-Helium-Output", fmt.Sprintf("bins:%d", res.bins))
		} else {
			h.Set("X-Helium-Output", fmt.Sprintf("%dx%d", res.outW, res.outH))
		}
		h.Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(res.body)
	})
}

// kernelInfo is one registry entry's observable state.
type kernelInfo struct {
	Name     string            `json:"name"`
	Hash     string            `json:"hash"`
	State    string            `json:"state"` // cold | ready | poisoned | failed
	Phase    string            `json:"phase,omitempty"`
	Backends map[string]any    `json:"backends,omitempty"`
	Breakers map[string]string `json:"breakers,omitempty"`
	Degraded uint64            `json:"degraded"`
	Panics   uint64            `json:"panics"`
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	var infos []kernelInfo
	for _, e := range s.reg.entries() {
		info := kernelInfo{
			Name:     e.name,
			Hash:     e.hash[:12],
			Degraded: e.degradedC.Value(),
			Panics:   e.panicsC.Value(),
		}
		switch {
		case e.inst0 != nil:
			info.State = "cold"
		case e.rej != nil:
			info.State = "poisoned"
			info.Phase = string(e.rej.Phase)
		case e.err != nil:
			info.State = "failed"
		default:
			info.State = "ready"
			info.Backends = map[string]any{}
			info.Breakers = map[string]string{}
			for _, be := range e.chain {
				info.Backends[backendNames[be]] = e.servedC[be].Value()
				info.Breakers[backendNames[be]] = e.breakers[be].state()
			}
			if e.vmOK {
				info.Backends["vm"] = e.servedC[beVM].Value()
				info.Breakers["vm"] = e.breakers[beVM].state()
			}
		}
		infos = append(infos, info)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(infos)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// httpError writes the typed JSON error body.
func httpError(w http.ResponseWriter, status int, msg, phase string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := map[string]string{"error": msg}
	if phase != "" {
		body["phase"] = phase
	}
	json.NewEncoder(w).Encode(body)
}

func intParam(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

func uintParam(v string, def uint64) (uint64, error) {
	if v == "" {
		return def, nil
	}
	return strconv.ParseUint(v, 10, 64)
}
