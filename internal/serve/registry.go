// Package serve is the lifting-as-a-service layer: a long-running HTTP
// server that accepts an image and a corpus kernel name, executes the
// lifted-and-regenerated kernel, and returns the result.  It lifts the
// CLI's robustness contract into a server: under injected faults,
// overload and hostile requests every response is either bit-exact
// pixels or a typed error — never a wrong answer, a hung connection, or
// a crashed process.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"helium/internal/ir"
	"helium/internal/legacy"
	"helium/internal/lift"
	"helium/internal/liftedkernels"
	"helium/internal/obs"
	"helium/internal/schedule"
)

// backendID indexes the per-request degradation chain.
type backendID int

// The degradation chain, fastest first.  vm is the terminal backend: it
// re-emulates the legacy binary directly, so it needs no lifted result —
// but also no client pixels can feed it, so it only serves pattern-mode
// requests.
const (
	beGenerated backendID = iota
	beCompiled
	beInterp
	beVM
	numBackends
)

var backendNames = [numBackends]string{"generated", "compiled", "interp", "vm"}

// Registry interns lifted kernels by legacy-binary hash: the expensive
// lift+verify+compile runs exactly once per distinct binary (singleflight
// via sync.Once), its outcome — good or poisoned — is cached forever, and
// every name resolving to the same binary shares the entry.
type Registry struct {
	opts Options
	met  *metrics

	mu     sync.Mutex
	byName map[string]*entry
	byHash map[string]*entry
}

func newRegistry(opts Options, met *metrics) *Registry {
	return &Registry{
		opts:   opts,
		met:    met,
		byName: map[string]*entry{},
		byHash: map[string]*entry{},
	}
}

// progHash fingerprints a legacy binary: the disassembled instruction
// stream plus every initialized data segment.  Two corpus names wrapping
// the same binary hash identically and share one registry entry.
func progHash(k *legacy.Kernel, inst *legacy.Instance) string {
	h := sha256.New()
	h.Write([]byte(inst.Prog.Disassemble()))
	for _, seg := range inst.Prog.Data {
		var addr [4]byte
		binary.LittleEndian.PutUint32(addr[:], seg.Addr)
		h.Write(addr[:])
		h.Write(seg.Data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// resolve returns the registry entry serving a kernel name, creating it
// (without lifting yet) on first sight.  Unknown names are a typed error.
func (r *Registry) resolve(name string) (*entry, error) {
	r.mu.Lock()
	if e, ok := r.byName[name]; ok {
		r.mu.Unlock()
		return e, nil
	}
	r.mu.Unlock()

	k, ok := legacy.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown kernel %q", name)
	}
	// Instantiating (assembling) the binary is cheap next to lifting and
	// happens outside the lock; a racing resolve for the same name just
	// builds a second instance and discards it below.
	inst := k.Instantiate(legacy.Config{
		Width: r.opts.LiftWidth, Height: r.opts.LiftHeight, Seed: r.opts.LiftSeed,
	})
	hash := progHash(&k, inst)

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		return e, nil
	}
	e, ok := r.byHash[hash]
	if !ok {
		e = newEntry(r, name, k, inst, hash)
		r.byHash[hash] = e
	}
	r.byName[name] = e
	return e, nil
}

// entries snapshots the interned entries sorted by name.
func (r *Registry) entries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.byName))
	for _, e := range r.byName {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// warm resolves and lifts every corpus kernel so the first real request
// pays no lift latency; poisoned entries are warmed too (their typed
// rejection is what gets cached).
func (r *Registry) warm() {
	var wg sync.WaitGroup
	for _, k := range legacy.Kernels() {
		e, err := r.resolve(k.Name)
		if err != nil {
			continue
		}
		wg.Add(1)
		go func(e *entry) {
			defer wg.Done()
			e.ensure()
		}(e)
	}
	wg.Wait()
}

// entry is one distinct legacy binary's cached lift state plus its
// runtime serving state.
type entry struct {
	reg  *Registry
	name string
	kern legacy.Kernel
	hash string

	once  sync.Once
	inst0 *legacy.Instance // lift-geometry instance; consumed by init

	// Lift outcome (exactly one of rej/err set on failure; both nil on
	// success).  A poisoned entry answers 422 (rej) or 500 (err) forever
	// without re-lifting.
	rej *lift.Rejection
	err error

	res   *lift.Result
	ck    *lift.CompiledResult
	gk    *liftedkernels.Kernel
	tuned *schedule.Schedule

	// Geometry model: response extents are rational in the requested
	// config geometry — outW = floor(w*mulW/divW) + offW — with the
	// slope read off the final stage's affine index map (an identity
	// map gives the classic slope-1 delta) and the offset calibrated at
	// lift geometry.  Input interior extents stay slope-1.
	mulW, divW, offW int
	mulH, divH, offH int
	dInW, dInH       int // input interior extents minus request extents
	channels         int
	interleaved      bool
	pad              int // planar clamp padding covering the stencil footprint
	isRed            bool
	bins             int // reduction response length in 4-byte bins

	// vm terminal backend: the lifted output window's offset inside the
	// instance's full output interior, discovered at init by matching the
	// binary's own output; vmOK gates the backend.
	vmOX, vmOY int
	vmOK       bool

	// srcErr, when non-nil, means a client-style input plane cannot feed
	// the lifted evaluators for this kernel (for example an interleaved
	// footprint escaping the interior); such entries serve pattern-mode
	// requests through the vm backend only.
	srcErr error

	// chain is the per-request degradation order: the backends that
	// passed the init self-check, fastest first.
	chain []backendID

	breakers [numBackends]breaker
	sem      chan struct{} // per-kernel concurrency slots
	scratch  sync.Pool     // *reqScratch

	// Per-kernel instruments, registered once at entry creation so the
	// request path only does atomic adds.  The same counters back both
	// /v1/kernels and /metrics — the surfaces cannot disagree.
	servedC   [numBackends]*obs.Counter
	degradedC *obs.Counter
	panicsC   *obs.Counter
	failedC   *obs.Counter // requests that exhausted every backend
	brkState  [numBackends]*obs.Gauge
}

func newEntry(r *Registry, name string, k legacy.Kernel, inst *legacy.Instance, hash string) *entry {
	e := &entry{
		reg:   r,
		name:  name,
		kern:  k,
		hash:  hash,
		inst0: inst,
		sem:   make(chan struct{}, r.opts.PerKernel),
	}
	for i := range e.breakers {
		e.breakers[i] = breaker{tripAfter: r.opts.TripAfter, probeAfter: r.opts.ProbeAfter}
		be := backendID(i)
		e.breakers[i].onOpen = func() { r.met.brkOpen[be].Inc() }
		e.breakers[i].onClose = func() { r.met.brkClose[be].Inc() }
	}
	mreg := r.opts.Metrics
	kl := obs.L("kernel", name)
	for be := backendID(0); be < numBackends; be++ {
		e.servedC[be] = mreg.Counter("helium_kernel_served_total",
			"Successful responses by kernel and serving backend.", kl, obs.L("backend", backendNames[be]))
		e.brkState[be] = mreg.Gauge("helium_breaker_state",
			"Breaker state by kernel and backend (0 closed, 1 open, 2 half-open).", kl, obs.L("backend", backendNames[be]))
	}
	e.degradedC = mreg.Counter("helium_kernel_degraded_total",
		"Responses served after at least one fallback step, by kernel.", kl)
	e.panicsC = mreg.Counter("helium_kernel_panics_total",
		"Recovered panics (lift or request execution), by kernel.", kl)
	e.failedC = mreg.Counter("helium_kernel_failed_total",
		"Requests that exhausted every eligible backend, by kernel.", kl)
	e.scratch.New = func() any { return &reqScratch{} }
	return e
}

// ensure runs the one-time lift.  Concurrent first requests block here
// and share the single outcome — the singleflight dedup.
func (e *entry) ensure() { e.once.Do(e.init) }

// init lifts, verifies and compiles the binary once, then derives the
// serving geometry and self-checks every backend against the binary's
// own output.  Failures poison the entry with a typed outcome; a panic
// anywhere in the pipeline is caught and recorded, never propagated into
// a request.
func (e *entry) init() {
	inst := e.inst0
	e.inst0 = nil
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			e.panicsC.Inc()
			e.reg.met.panics.Inc()
			e.err = fmt.Errorf("lift panicked: %v", p)
		}
		e.recordLiftOutcome(time.Since(start))
	}()

	tgt := lift.Target{
		Prog:  inst.Prog,
		Setup: inst.Setup,
		Known: lift.KnownInput{
			Width:       inst.Width,
			Height:      inst.Height,
			Channels:    inst.Channels,
			Interleaved: inst.Interleaved,
			Interior:    inst.InputInterior,
		},
		MaxSteps:      e.reg.opts.MaxVMSteps,
		MaxTraceInsts: e.reg.opts.MaxTraceInsts,
	}
	res, err := lift.Lift(e.name, tgt)
	if err != nil {
		e.poison(err)
		return
	}
	if err := res.Verify(); err != nil {
		e.poison(err)
		return
	}
	ck, err := res.VerifyCompiled(0)
	if err != nil {
		e.poison(err)
		return
	}
	e.res, e.ck = res, ck
	if gk, ok := liftedkernels.Lookup(e.name); ok {
		e.gk = gk
	}
	e.tuned = e.reg.opts.Schedules.For(e.name)

	cfg := e.reg.opts
	outW0, outH0 := res.EvalDims()
	// The final stencil's index map fixes the response slope (identity
	// maps give 1/1 — the classic delta model); pipelines ending in a
	// reduction keep the identity slope for their domain extents.
	var mx, my ir.AxisMap
	if res.Kernel != nil {
		mx, my = res.Kernel.MapX, res.Kernel.MapY
	}
	nx, dx, _ := mx.Norm()
	ny, dy, _ := my.Norm()
	e.mulW, e.divW = dx, nx
	e.mulH, e.divH = dy, ny
	e.offW = outW0 - cfg.LiftWidth*e.mulW/e.divW
	e.offH = outH0 - cfg.LiftHeight*e.mulH/e.divH
	e.dInW, e.dInH = inst.Width-cfg.LiftWidth, inst.Height-cfg.LiftHeight
	e.channels, e.interleaved = inst.Channels, inst.Interleaved
	e.isRed = res.Reduction != nil

	want, err := res.VMOutput()
	if err != nil {
		e.err = fmt.Errorf("reading the binary's own output from the trace dump: %w", err)
		return
	}
	if e.isRed {
		e.bins = len(want) / 4
	}

	xlo, xhi, ylo, yhi := res.InputFootprint(outW0, outH0)
	if e.interleaved {
		// The interleaved layout has no padding concept: a footprint
		// escaping the interior cannot be rebuilt from client pixels.
		if xlo < 0 || ylo < 0 || xhi > inst.Width-1 || yhi > inst.Height-1 {
			e.srcErr = fmt.Errorf("kernel %s: interleaved stencil footprint [%d,%d]x[%d,%d] escapes the %dx%d interior",
				e.name, xlo, xhi, ylo, yhi, inst.Width, inst.Height)
		}
	} else {
		if e.channels != 1 {
			e.srcErr = fmt.Errorf("kernel %s: planar multi-channel inputs are not servable", e.name)
		}
		// Clamp padding must cover every tap outside the interior; all
		// four margins are geometry-independent constants (the footprint
		// tracks the extents with slope 1).
		e.pad = max(0, -xlo, -ylo, xhi-(inst.Width-1), yhi-(inst.Height-1))
	}

	e.vmOX, e.vmOY, e.vmOK = findVMWindow(inst, want, outW0, outH0, e.isRed)
	e.selfCheck(inst, want, outW0, outH0)
	if len(e.chain) == 0 && !e.vmOK {
		e.err = fmt.Errorf("kernel %s: no backend reproduces the binary's output bit-exactly", e.name)
	}
}

// poison records a lift failure as its typed form: a lift.Rejection
// caches as a 422, anything else as a 500.
func (e *entry) poison(err error) {
	if rej, ok := lift.AsRejection(err); ok {
		e.rej = rej
		return
	}
	e.err = err
}

// recordLiftOutcome counts the one-time lift under its outcome series,
// observes its wall time, and writes the per-kernel lift log line with
// the pipeline's phase spans.
func (e *entry) recordLiftOutcome(d time.Duration) {
	met := e.reg.met
	state := "ready"
	switch {
	case e.rej != nil:
		state = "poisoned"
		if c := met.liftRejected[e.rej.Phase]; c != nil {
			c.Inc()
		} else {
			met.liftFailed.Inc()
		}
	case e.err != nil:
		state = "failed"
		met.liftFailed.Inc()
	default:
		met.liftOK.Inc()
	}
	met.liftSeconds.ObserveDuration(d)

	ln := e.reg.opts.Logger.Line(obs.LevelInfo, "lift").
		Str("kernel", e.name).Str("state", state).Dur("total", d)
	if e.res != nil {
		for _, pt := range e.res.PhaseTimes {
			ln = ln.Dur(string(pt.Phase), pt.Dur)
		}
	}
	switch {
	case e.rej != nil:
		ln = ln.Str("phase", string(e.rej.Phase)).Err(e.rej.Err)
	case e.err != nil:
		ln = ln.Err(e.err)
	}
	ln.Log()
}

// selfCheck runs each lifted backend through the serving path's own
// input reconstruction at lift geometry and keeps only the backends that
// reproduce the binary's output bit-exactly.  A backend that fails here
// is dropped from the chain — degraded, not poisoned — so a stale
// generated package can never serve wrong pixels.
func (e *entry) selfCheck(inst *legacy.Instance, want []byte, outW0, outH0 int) {
	if e.srcErr != nil {
		return
	}
	rs := &reqScratch{}
	req := &request{w: e.reg.opts.LiftWidth, h: e.reg.opts.LiftHeight, pixels: inst.InputInterior}
	if err := e.buildInput(rs, req); err != nil {
		e.srcErr = err
		return
	}
	for _, be := range []backendID{beGenerated, beCompiled, beInterp} {
		if be == beGenerated && e.gk == nil {
			continue
		}
		got, err := e.evalBackend(be, rs, req, outW0, outH0)
		if err == nil && bytes.Equal(got, want) {
			e.chain = append(e.chain, be)
		}
	}
}

// findVMWindow locates the lifted output window inside the instance's
// full output interior by matching the binary's own bytes, giving the vm
// terminal backend a response window at any request geometry.  For
// reductions the window is the whole table.
func findVMWindow(inst *legacy.Instance, want []byte, outW0, outH0 int, isRed bool) (ox, oy int, ok bool) {
	if isRed {
		return 0, 0, bytes.Equal(inst.Reference, want)
	}
	c := inst.Channels
	refW, refH := inst.RefDims()
	if len(want) != outW0*outH0*c {
		return 0, 0, false
	}
	for oy = 0; oy+outH0 <= refH; oy++ {
		for ox = 0; ox+outW0 <= refW; ox++ {
			if vmWindowAt(inst.Reference, refW, c, want, ox, oy, outW0, outH0) {
				return ox, oy, true
			}
		}
	}
	return 0, 0, false
}

// vmWindowAt reports whether want equals the (ox, oy, w, h) sub-window of
// a full row-major interior.
func vmWindowAt(full []byte, fullW, channels int, want []byte, ox, oy, w, h int) bool {
	for y := 0; y < h; y++ {
		row := full[((oy+y)*fullW+ox)*channels:]
		if !bytes.Equal(row[:w*channels], want[y*w*channels:(y+1)*w*channels]) {
			return false
		}
	}
	return true
}

// inputBytes returns the input interior byte count a request geometry
// needs (valid after ensure).
func (e *entry) inputBytes(w, h int) int {
	return (w + e.dInW) * (h + e.dInH) * e.channels
}

// outDims returns the response window extents for a request geometry:
// rational in the request extents, matching the legacy binary's own loop
// bounds at any size (a downsampler answers floor(w/2) columns).
func (e *entry) outDims(w, h int) (int, int) {
	return w*e.mulW/e.divW + e.offW, h*e.mulH/e.divH + e.offH
}
