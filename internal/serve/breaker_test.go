package serve

import "testing"

// TestBreakerTripProbeRecover pins the deterministic state machine: three
// consecutive failures trip it, probeAfter skipped requests buy one
// half-open probe, a failed probe re-opens, a good probe closes.
func TestBreakerTripProbeRecover(t *testing.T) {
	b := breaker{tripAfter: 3, probeAfter: 4}
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.report(false)
	}
	if b.state() != "closed" {
		t.Fatalf("tripped after 2 failures, want 3 (state %s)", b.state())
	}
	if !b.allow() {
		t.Fatal("closed breaker refused the tripping attempt")
	}
	b.report(false)
	if b.state() != "open" || b.tripped() != 1 {
		t.Fatalf("state %s trips %d after 3 consecutive failures, want open/1", b.state(), b.tripped())
	}

	// Open: the next probeAfter-1 requests are skipped, then one probe.
	for i := 0; i < 3; i++ {
		if b.allow() {
			t.Fatalf("open breaker admitted skipped request %d", i)
		}
	}
	if !b.allow() {
		t.Fatal("no half-open probe after probeAfter skips")
	}
	if b.state() != "half-open" {
		t.Fatalf("state %s during probe, want half-open", b.state())
	}
	// While probing, everyone else is still skipped.
	if b.allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.report(false) // failed probe re-opens
	if b.state() != "open" {
		t.Fatalf("state %s after failed probe, want open", b.state())
	}

	for i := 0; i < 3; i++ {
		if b.allow() {
			t.Fatalf("re-opened breaker admitted skipped request %d", i)
		}
	}
	if !b.allow() {
		t.Fatal("no second probe after another probeAfter skips")
	}
	b.report(true) // good probe closes
	if b.state() != "closed" {
		t.Fatalf("state %s after good probe, want closed", b.state())
	}
	if !b.allow() {
		t.Fatal("closed breaker refused after recovery")
	}
	b.report(true)
}

// TestBreakerSuccessResetsFailureRun asserts non-consecutive failures
// never trip.
func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := breaker{tripAfter: 3, probeAfter: 4}
	for i := 0; i < 10; i++ {
		if !b.allow() {
			t.Fatalf("breaker tripped on alternating outcomes at %d", i)
		}
		b.report(i%2 == 0)
	}
	if b.state() != "closed" {
		t.Fatalf("state %s after alternating outcomes, want closed", b.state())
	}
}

// TestBreakerLateReportIgnored asserts an attempt admitted before the
// trip cannot flip an open breaker when it finally reports.
func TestBreakerLateReportIgnored(t *testing.T) {
	b := breaker{tripAfter: 1, probeAfter: 4}
	if !b.allow() {
		t.Fatal("closed breaker refused")
	}
	if !b.allow() {
		t.Fatal("closed breaker refused the in-flight second attempt")
	}
	b.report(false) // trips
	if b.state() != "open" {
		t.Fatalf("state %s, want open", b.state())
	}
	b.report(true) // the straggler from before the trip
	if b.state() != "open" {
		t.Fatalf("late success closed an open breaker (state %s)", b.state())
	}
}
