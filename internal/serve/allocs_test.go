package serve

import (
	"context"
	"io"
	"runtime"
	"testing"

	"helium/internal/faultpoint"
	"helium/internal/obs"
)

// TestZeroAllocSteadyState is the acceptance gate on the hot serving
// path: once a kernel is lifted and the pools are warm, a pixels-mode
// request at a stable geometry — admission, queue, worker handoff, input
// rebuild, tuned execution, response — allocates nothing.
func TestZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		// sync.Pool deliberately randomizes Get/Put under the race
		// detector, so the pooled path cannot promise zero allocations
		// there; the non-race CI pass still enforces the gate.
		t.Skip("race instrumentation defeats sync.Pool reuse")
	}
	faultpoint.Reset()
	s := New(Options{Workers: 1})
	s.Start()
	t.Cleanup(func() { s.Shutdown(context.Background()) })

	n, err := s.InputSpec("brighten", 40, 24)
	if err != nil {
		t.Fatal(err)
	}
	pixels := make([]byte, n)
	for i := range pixels {
		pixels[i] = byte(i * 31)
	}
	req := request{w: 40, h: 24, pixels: pixels}
	var status int
	var backend string
	emit := func(r *result) { status, backend = r.status, r.backend }

	ctx := context.Background()
	for i := 0; i < 50; i++ { // warm the job, scratch and plane pools
		s.do(ctx, "brighten", &req, emit)
		if status != 200 {
			t.Fatalf("warmup request %d: status %d", i, status)
		}
	}
	if backend != "generated" {
		t.Fatalf("steady state serves via %q, want generated", backend)
	}

	runtime.GC() // settle pool victim caches before counting
	allocs := testing.AllocsPerRun(200, func() {
		s.do(ctx, "brighten", &req, emit)
	})
	if status != 200 {
		t.Fatalf("measured request finished with status %d", status)
	}
	if allocs != 0 {
		t.Fatalf("steady-state request allocates %.1f objects, want 0", allocs)
	}
}

// TestZeroAllocWithObservability re-runs the steady-state gate with the
// full flight recorder armed — metrics observing and an enabled
// info-level access logger — proving instrumentation costs no
// allocations on the hot serving path.
func TestZeroAllocWithObservability(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool reuse")
	}
	faultpoint.Reset()
	s := New(Options{
		Workers: 1,
		Logger:  obs.NewLogger(io.Discard, obs.LevelInfo),
		Metrics: obs.NewRegistry(),
	})
	s.Start()
	t.Cleanup(func() { s.Shutdown(context.Background()) })

	n, err := s.InputSpec("brighten", 40, 24)
	if err != nil {
		t.Fatal(err)
	}
	pixels := make([]byte, n)
	for i := range pixels {
		pixels[i] = byte(i * 31)
	}
	req := request{w: 40, h: 24, pixels: pixels}
	var status int
	emit := func(r *result) { status = r.status }

	ctx := context.Background()
	for i := 0; i < 50; i++ {
		s.do(ctx, "brighten", &req, emit)
		if status != 200 {
			t.Fatalf("warmup request %d: status %d", i, status)
		}
	}

	runtime.GC()
	allocs := testing.AllocsPerRun(200, func() {
		s.do(ctx, "brighten", &req, emit)
	})
	if status != 200 {
		t.Fatalf("measured request finished with status %d", status)
	}
	if allocs != 0 {
		t.Fatalf("instrumented steady-state request allocates %.1f objects, want 0", allocs)
	}
}
