package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"helium/internal/faultpoint"
	"helium/internal/legacy"
)

// corpusNames is the whole legacy corpus, pinned so a test failure names
// the kernel.
var corpusNames = []string{"blur2p", "boxblur3", "brighten", "clampsharp", "downsample2x", "hist256", "histeq", "sharpen", "upsample2x"}

// sharedServer lifts the corpus exactly once for every read-only test in
// the package; tests that mutate global state (faultpoints, breakers,
// overload) build their own servers.
var (
	sharedOnce sync.Once
	sharedSrv  *Server
	sharedTS   *httptest.Server
)

func shared(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	sharedOnce.Do(func() {
		sharedSrv = New(Options{})
		sharedSrv.Start()
		sharedSrv.Warm()
		sharedTS = httptest.NewServer(sharedSrv.Handler())
	})
	return sharedSrv, sharedTS
}

// evalResp is one decoded /v1/eval response.
type evalResp struct {
	status     int
	body       []byte
	backend    string
	degraded   string
	output     string
	retryAfter string
	errJSON    map[string]string
}

// eval performs one request: pixels == nil selects pattern mode (GET),
// otherwise the pixels POST as the input interior.
func eval(t *testing.T, ts *httptest.Server, kernel string, w, h int, seed uint64, pixels []byte) evalResp {
	t.Helper()
	url := fmt.Sprintf("%s/v1/eval?kernel=%s&width=%d&height=%d&seed=%d", ts.URL, kernel, w, h, seed)
	var (
		resp *http.Response
		err  error
	)
	if pixels == nil {
		resp, err = http.Get(url)
	} else {
		resp, err = http.Post(url, "application/octet-stream", bytes.NewReader(pixels))
	}
	if err != nil {
		t.Fatalf("eval %s %dx%d: %v", kernel, w, h, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("eval %s: reading body: %v", kernel, err)
	}
	r := evalResp{
		status:     resp.StatusCode,
		body:       body,
		backend:    resp.Header.Get("X-Helium-Backend"),
		degraded:   resp.Header.Get("X-Helium-Degraded"),
		output:     resp.Header.Get("X-Helium-Output"),
		retryAfter: resp.Header.Get("Retry-After"),
	}
	if r.status != http.StatusOK {
		if err := json.Unmarshal(body, &r.errJSON); err != nil {
			t.Fatalf("eval %s: %d response body is not the typed JSON error: %q", kernel, r.status, body)
		}
		if r.errJSON["error"] == "" {
			t.Fatalf("eval %s: %d response carries no error message: %q", kernel, r.status, body)
		}
	}
	return r
}

// patternPixels returns the exact input interior the pattern mode would
// generate, so pixels-mode requests can be checked against pattern-mode
// ground truth.
func patternPixels(t *testing.T, kernel string, w, h int, seed uint64) []byte {
	t.Helper()
	k, ok := legacy.Lookup(kernel)
	if !ok {
		t.Fatalf("unknown corpus kernel %q", kernel)
	}
	return k.Instantiate(legacy.Config{Width: w, Height: h, Seed: seed}).InputInterior
}

// TestServeCorrectness drives every corpus kernel at several geometries in
// both request modes and checks each 200 byte-for-byte against the vm
// reference — a fresh re-emulation of the legacy binary, independent of
// every lifted path.
func TestServeCorrectness(t *testing.T) {
	s, ts := shared(t)
	geoms := []struct {
		w, h int
		seed uint64
	}{
		{40, 24, 1}, // the lift geometry
		{52, 30, 7}, // larger than lifted
		{16, 10, 3}, // smaller than lifted
	}
	for _, name := range corpusNames {
		for _, g := range geoms {
			want, err := s.Reference(name, g.w, g.h, g.seed)
			if err != nil {
				t.Fatalf("%s %dx%d: reference: %v", name, g.w, g.h, err)
			}
			r := eval(t, ts, name, g.w, g.h, g.seed, nil)
			if r.status != 200 {
				t.Fatalf("%s %dx%d pattern: status %d (%v)", name, g.w, g.h, r.status, r.errJSON)
			}
			if !bytes.Equal(r.body, want) {
				t.Fatalf("%s %dx%d pattern: served bytes differ from the binary's own output", name, g.w, g.h)
			}
			if r.backend != "generated" {
				t.Errorf("%s %dx%d pattern: served by %q, want the generated chain head", name, g.w, g.h, r.backend)
			}
			if r.degraded != "" {
				t.Errorf("%s %dx%d pattern: unexpected degradation %q", name, g.w, g.h, r.degraded)
			}

			// Pixels mode with the pattern's own interior must reproduce
			// the pattern response exactly.
			px := eval(t, ts, name, g.w, g.h, g.seed, patternPixels(t, name, g.w, g.h, g.seed))
			if px.status != 200 {
				t.Fatalf("%s %dx%d pixels: status %d (%v)", name, g.w, g.h, px.status, px.errJSON)
			}
			if !bytes.Equal(px.body, want) {
				t.Fatalf("%s %dx%d pixels: served bytes differ from the binary's own output", name, g.w, g.h)
			}
		}
	}
}

// TestServeArbitraryPixelsCrossBackend feeds random (non-pattern) client
// pixels and asserts the degraded compiled backend answers bit-identically
// to the generated chain head — cross-backend agreement on inputs no
// reference emulation can check.
func TestServeArbitraryPixelsCrossBackend(t *testing.T) {
	s, ts := shared(t)
	n, err := s.InputSpec("boxblur3", 48, 20)
	if err != nil {
		t.Fatal(err)
	}
	pixels := make([]byte, n)
	rnd := uint64(12345)
	for i := range pixels {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		pixels[i] = byte(rnd)
	}
	fast := eval(t, ts, "boxblur3", 48, 20, 1, pixels)
	if fast.status != 200 || fast.backend != "generated" {
		t.Fatalf("baseline: status %d backend %q", fast.status, fast.backend)
	}

	faultpoint.Enable(fpSlowBackend)
	t.Cleanup(faultpoint.Reset)
	slow := eval(t, ts, "boxblur3", 48, 20, 1, pixels)
	faultpoint.Reset()
	if slow.status != 200 {
		t.Fatalf("degraded request: status %d (%v)", slow.status, slow.errJSON)
	}
	if slow.backend != "compiled" {
		t.Fatalf("degraded request served by %q, want compiled", slow.backend)
	}
	if slow.degraded == "" {
		t.Fatal("degraded request carries no X-Helium-Degraded trail")
	}
	if !bytes.Equal(fast.body, slow.body) {
		t.Fatal("generated and compiled backends disagree on arbitrary client pixels")
	}
	driveBreakerClosed(t, ts, "boxblur3")
}

// driveBreakerClosed issues requests until the kernel's chain head serves
// again, so a test that tripped breakers leaves the shared server clean.
func driveBreakerClosed(t *testing.T, ts *httptest.Server, kernel string) {
	t.Helper()
	for i := 0; i < 30; i++ {
		r := eval(t, ts, kernel, 40, 24, 1, nil)
		if r.status == 200 && r.backend == "generated" {
			return
		}
	}
	t.Fatalf("%s: generated backend did not recover within 30 requests", kernel)
}

// TestHTTPValidation pins the typed-error status for each malformed
// request class.
func TestHTTPValidation(t *testing.T) {
	s, ts := shared(t)
	cases := []struct {
		name, url string
		status    int
	}{
		{"unknown kernel", "/v1/eval?kernel=nosuch", 404},
		{"missing kernel", "/v1/eval", 400},
		{"bad width", "/v1/eval?kernel=brighten&width=abc", 400},
		{"below minimum", "/v1/eval?kernel=brighten&width=4&height=4", 400},
		{"above maximum", "/v1/eval?kernel=brighten&width=5000&height=24", 413},
		{"bad seed", "/v1/eval?kernel=brighten&seed=-1", 400},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: body is not the typed JSON error: %q", tc.name, body)
		}
	}

	// A wrong-length pixel body is a 400 naming the expected size.
	want, err := s.InputSpec("brighten", 40, 24)
	if err != nil {
		t.Fatal(err)
	}
	r := eval(t, ts, "brighten", 40, 24, 1, make([]byte, want+3))
	if r.status != 400 {
		t.Errorf("wrong-length body: status %d, want 400 (%v)", r.status, r.errJSON)
	}
}

// TestKernelsAndStatsEndpoints checks the observability surfaces stay
// well-formed and reflect the registry.
func TestKernelsAndStatsEndpoints(t *testing.T) {
	_, ts := shared(t)
	resp, err := http.Get(ts.URL + "/v1/kernels")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []kernelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatalf("decoding /v1/kernels: %v", err)
	}
	if len(infos) != len(corpusNames) {
		t.Fatalf("/v1/kernels lists %d kernels, want %d", len(infos), len(corpusNames))
	}
	for _, info := range infos {
		if info.State != "ready" {
			t.Errorf("kernel %s: state %q after warm, want ready", info.Name, info.State)
		}
		if len(info.Hash) != 12 {
			t.Errorf("kernel %s: hash %q, want 12 hex chars", info.Name, info.Hash)
		}
		if _, ok := info.Breakers["generated"]; !ok {
			t.Errorf("kernel %s: no generated breaker state", info.Name)
		}
	}

	var st Stats
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /v1/stats: %v", err)
	}
	if st.Requests == 0 || st.OK == 0 {
		t.Errorf("stats show no traffic after the correctness tests: %+v", st)
	}
}

// TestRegistryInternsAndSingleflights asserts concurrent first requests
// share one lift and one entry.
func TestRegistryInternsAndSingleflights(t *testing.T) {
	opts := Options{}.withDefaults()
	reg := newRegistry(opts, newMetrics(opts.Metrics))
	const n = 8
	entries := make([]*entry, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := reg.resolve("brighten")
			if err != nil {
				t.Errorf("resolve: %v", err)
				return
			}
			e.ensure()
			entries[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if entries[i] != entries[0] {
			t.Fatal("concurrent resolves returned distinct entries for one name")
		}
	}
	e := entries[0]
	if e.rej != nil || e.err != nil {
		t.Fatalf("brighten poisoned: rej=%v err=%v", e.rej, e.err)
	}
	if len(e.chain) == 0 {
		t.Fatal("brighten has an empty degradation chain after init")
	}
	if len(reg.byHash) != 1 || len(reg.byName) != 1 {
		t.Fatalf("registry interned %d hashes / %d names, want 1/1", len(reg.byHash), len(reg.byName))
	}
}

// TestPoisonedLiftCachesTypedRejection arms a lift-phase fault on a fresh
// server and asserts the rejection is typed, phase-tagged, and cached —
// the second request answers from the poisoned entry without re-lifting.
func TestPoisonedLiftCachesTypedRejection(t *testing.T) {
	faultpoint.Enable("lift.corrupt-input")
	t.Cleanup(faultpoint.Reset)
	s := New(Options{})
	s.Start()
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	first := eval(t, ts, "brighten", 40, 24, 1, nil)
	if first.status != 422 {
		t.Fatalf("poisoned lift: status %d, want 422 (%v)", first.status, first.errJSON)
	}
	if first.errJSON["phase"] == "" {
		t.Fatalf("poisoned lift: 422 carries no rejection phase: %v", first.errJSON)
	}

	// Disarm: a cached poison must keep answering 422; a re-lift would
	// now succeed and betray the cache.
	faultpoint.Reset()
	second := eval(t, ts, "brighten", 40, 24, 1, nil)
	if second.status != 422 || second.errJSON["phase"] != first.errJSON["phase"] {
		t.Fatalf("poison not cached: second request got %d phase %q, want 422 phase %q",
			second.status, second.errJSON["phase"], first.errJSON["phase"])
	}
}

// overloadServer returns a server with the slow-backend fault armed and a
// started slow request occupying a worker, for the overload tests.
func overloadServer(t *testing.T, opts Options) (*Server, chan int) {
	t.Helper()
	faultpoint.Reset()
	s := New(opts)
	s.Start()
	t.Cleanup(func() {
		faultpoint.Reset()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	if _, err := s.InputSpec("brighten", 40, 24); err != nil { // lift before arming faults
		t.Fatal(err)
	}
	faultpoint.Enable(fpSlowBackend)

	first := make(chan int, 1)
	go s.do(context.Background(), "brighten", &request{w: 40, h: 24, seed: 1},
		func(r *result) { first <- r.status })
	time.Sleep(80 * time.Millisecond) // the worker is now inside the injected delay
	return s, first
}

// TestQueueShedsWhenFull pins bounded admission: one worker busy, one
// queue slot taken, the next request sheds with a typed 503.
func TestQueueShedsWhenFull(t *testing.T) {
	s, first := overloadServer(t, Options{
		Workers: 1, QueueDepth: 1, PerKernel: 4,
		SlowBackendDelay: 400 * time.Millisecond,
	})
	second := make(chan int, 1)
	go s.do(context.Background(), "brighten", &request{w: 40, h: 24, seed: 1},
		func(r *result) { second <- r.status })
	time.Sleep(40 * time.Millisecond) // the second request is queued

	var shedRes result
	s.do(context.Background(), "brighten", &request{w: 40, h: 24, seed: 1},
		func(r *result) { shedRes = *r })
	if shedRes.status != 503 || shedRes.retryAfter <= 0 {
		t.Fatalf("third request got %d retryAfter %d, want a shed 503 with Retry-After",
			shedRes.status, shedRes.retryAfter)
	}
	if got := <-first; got != 200 {
		t.Fatalf("first (slow) request got %d, want a degraded 200", got)
	}
	if got := <-second; got != 200 {
		t.Fatalf("queued request got %d, want a degraded 200", got)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("shed counter %d, want 1", st.Shed)
	}
}

// TestPerKernelConcurrencyLimit pins the 429: with one slot, a second
// in-flight request for the same kernel is refused immediately.
func TestPerKernelConcurrencyLimit(t *testing.T) {
	s, first := overloadServer(t, Options{
		Workers: 1, QueueDepth: 8, PerKernel: 1,
		SlowBackendDelay: 400 * time.Millisecond,
	})
	var limRes result
	s.do(context.Background(), "brighten", &request{w: 40, h: 24, seed: 1},
		func(r *result) { limRes = *r })
	if limRes.status != 429 || limRes.retryAfter <= 0 {
		t.Fatalf("second request got %d retryAfter %d, want 429 with Retry-After",
			limRes.status, limRes.retryAfter)
	}
	if got := <-first; got != 200 {
		t.Fatalf("first (slow) request got %d, want a degraded 200", got)
	}
	if st := s.Stats(); st.Limited != 1 {
		t.Fatalf("limited counter %d, want 1", st.Limited)
	}
}

// TestDeadlineReturns504AndRecyclesResources expires a request's context
// mid-execution, asserts the typed 504 arrives immediately, and that the
// abandoned job's scratch and kernel slot are recycled for the next
// request.
func TestDeadlineReturns504AndRecyclesResources(t *testing.T) {
	faultpoint.Reset()
	s := New(Options{Workers: 1, PerKernel: 1, SlowBackendDelay: 300 * time.Millisecond})
	s.Start()
	t.Cleanup(func() {
		faultpoint.Reset()
		s.Shutdown(context.Background())
	})
	if _, err := s.InputSpec("brighten", 40, 24); err != nil {
		t.Fatal(err)
	}
	faultpoint.Enable(fpSlowBackend)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	var res result
	s.do(ctx, "brighten", &request{w: 40, h: 24, seed: 1}, func(r *result) { res = *r })
	if res.status != 504 {
		t.Fatalf("expired request got %d, want 504", res.status)
	}
	if waited := time.Since(start); waited > 250*time.Millisecond {
		t.Fatalf("504 took %v — the handler waited for the worker instead of abandoning", waited)
	}

	// The worker still holds the job; once it finishes it must release
	// the single per-kernel slot so the kernel is servable again.
	faultpoint.Reset()
	time.Sleep(350 * time.Millisecond)
	var again result
	s.do(context.Background(), "brighten", &request{w: 40, h: 24, seed: 1}, func(r *result) { again = *r })
	if again.status != 200 {
		t.Fatalf("request after an abandoned job got %d, want 200", again.status)
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Fatalf("timeout counter %d, want 1", st.Timeouts)
	}
}

// TestReadyzGatesOnWarm pins the readiness lifecycle: a started but
// unwarmed server is live yet unready (load balancers must not route to
// it until every kernel's lift outcome is cached), and MarkReady is the
// lazy-warming escape hatch.
func TestReadyzGatesOnWarm(t *testing.T) {
	s := New(Options{Workers: 1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "warming") {
		t.Fatalf("unwarmed readyz = %d %q, want 503 warming", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("unwarmed healthz = %d, want 200 (live while warming)", code)
	}
	s.MarkReady()
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("marked-ready readyz = %d %q, want 200 ready", code, body)
	}
}

// TestGracefulShutdownDrains starts a real listener, parks a slow request
// in the worker, and shuts down: the in-flight request must complete with
// its degraded 200, Shutdown must return cleanly, and the listener must
// be closed afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	faultpoint.Reset()
	s := New(Options{Workers: 2, SlowBackendDelay: 300 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	waitHealthy(t, base)
	if _, err := s.InputSpec("brighten", 40, 24); err != nil {
		t.Fatal(err)
	}
	faultpoint.Enable(fpSlowBackend)
	t.Cleanup(faultpoint.Reset)

	type outcome struct {
		status  int
		backend string
	}
	inflight := make(chan outcome, 1)
	go func() {
		resp, err := http.Get(base + "/v1/eval?kernel=brighten")
		if err != nil {
			inflight <- outcome{}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- outcome{resp.StatusCode, resp.Header.Get("X-Helium-Backend")}
	}()
	time.Sleep(80 * time.Millisecond) // the request is inside the injected delay

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	got := <-inflight
	if got.status != 200 || got.backend != "compiled" {
		t.Fatalf("in-flight request during drain got %d via %q, want a degraded 200 via compiled",
			got.status, got.backend)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after Shutdown, want nil", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after Shutdown")
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}
