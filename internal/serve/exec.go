package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"helium/internal/faultpoint"
	"helium/internal/image"
	"helium/internal/ir"
	"helium/internal/legacy"
	"helium/internal/liftedkernels"
)

// The serving layer's injectable failures, powering the chaos tests
// (HELIUM_FAULTPOINTS=serve.exec-panic heliumd, or the intermittent
// forms serve.slow-backend:0.1 / serve.shed@3).
var (
	// fpSlowBackend delays the generated (first-chain) backend and fails
	// it, driving per-request degradation and breaker trips.
	fpSlowBackend = faultpoint.Register("serve.slow-backend",
		"delay the generated backend then fail it, forcing per-request degradation")
	// fpExecPanic panics inside every backend attempt; the per-request
	// recovery must turn it into a typed 500 while the server survives.
	fpExecPanic = faultpoint.Register("serve.exec-panic",
		"panic inside every backend attempt of a request")
	// fpShed makes admission treat the queue as full.
	fpShed = faultpoint.Register("serve.shed",
		"treat the admission queue as full, shedding the request with 503")
)

// request is one decoded eval request.
type request struct {
	w, h   int    // config-geometry extents (what helium -width/-height take)
	seed   uint64 // deterministic pattern seed, pattern mode only
	pixels []byte // client input interior; nil selects pattern mode
	trace  uint64 // trace id; do generates one when the caller left it 0

	inst *legacy.Instance // pattern-mode instance, built during execute
}

// result is one request's outcome.  body aliases the request's scratch
// and is only valid until the job is released.
type result struct {
	status     int
	backend    string // backend that served a 200
	degraded   string // comma-joined "backend:reason" fallback steps
	body       []byte
	outW, outH int // response window extents (stencils)
	bins       int // response bin count (reductions)
	errMsg     string
	phase      string // lift rejection phase on 422
	retryAfter int    // seconds, on 429/503

	trace     uint64        // stamped by finish from the request
	queueWait time.Duration // admission-to-worker latency (admitted jobs)
	exec      time.Duration // worker execution wall time
}

// reqScratch is the pooled per-request working set: the pixel backing the
// input is rebuilt into, the evaluator scratch, and the degradation note
// accumulator.  Steady-state requests at a stable geometry reuse every
// buffer and allocate nothing.
type reqScratch struct {
	sc    liftedkernels.Scratch
	plane *image.Plane
	inter *image.Interleaved
	img   liftedkernels.Image
	src   ir.Source
	notes []string
}

// execute runs one request through the entry's degradation chain.  Every
// failure mode — poisoned lift, backend error, backend panic, open
// breaker, expired deadline — degrades or returns typed; nothing
// propagates out of this function but a result.
func (e *entry) execute(ctx context.Context, rs *reqScratch, req *request) (res result) {
	defer func() {
		if p := recover(); p != nil {
			e.panicsC.Inc()
			e.reg.met.panics.Inc()
			res = result{status: 500, errMsg: fmt.Sprintf("request panicked: %v", p)}
		}
	}()

	e.ensure()
	if e.rej != nil {
		return result{status: 422, errMsg: e.rej.Error(), phase: string(e.rej.Phase)}
	}
	if e.err != nil {
		return result{status: 500, errMsg: e.err.Error()}
	}

	pattern := req.pixels == nil
	if pattern {
		// The instance is the authoritative pattern input — and the vm
		// terminal backend's executable form.
		req.inst = e.kern.Instantiate(legacy.Config{Width: req.w, Height: req.h, Seed: req.seed})
	}

	chain := e.chain
	srcErr := e.srcErr
	if srcErr == nil {
		if err := e.buildInput(rs, req); err != nil {
			if !pattern {
				return result{status: 400, errMsg: err.Error()}
			}
			srcErr = err
		}
	}
	if srcErr != nil {
		if !pattern {
			return result{status: 400, errMsg: srcErr.Error()}
		}
		chain = nil // only the vm backend can answer
	}

	outW, outH := e.outDims(req.w, req.h)
	rs.notes = rs.notes[:0]
	for _, be := range chain {
		if ctx.Err() != nil {
			return e.timeoutResult(rs)
		}
		br := &e.breakers[be]
		if !br.allow() {
			rs.notes = append(rs.notes, backendNames[be]+":breaker-open")
			continue
		}
		out, err := e.attempt(be, rs, req, outW, outH)
		br.report(err == nil)
		if err == nil {
			return e.okResult(rs, be, out, outW, outH)
		}
		rs.notes = append(rs.notes, backendNames[be]+":"+err.Error())
	}

	// The terminal vm backend re-emulates the binary; it exists only for
	// pattern-mode requests (the emulated binary generates its own input).
	if pattern && e.vmOK {
		if ctx.Err() != nil {
			return e.timeoutResult(rs)
		}
		br := &e.breakers[beVM]
		if br.allow() {
			out, err := e.attempt(beVM, rs, req, outW, outH)
			br.report(err == nil)
			if err == nil {
				return e.okResult(rs, beVM, out, outW, outH)
			}
			rs.notes = append(rs.notes, "vm:"+err.Error())
		} else {
			rs.notes = append(rs.notes, "vm:breaker-open")
		}
	}

	if ctx.Err() != nil {
		return e.timeoutResult(rs)
	}
	e.failedC.Inc()
	e.reg.met.failed.Inc()
	return result{
		status:   500,
		degraded: strings.Join(rs.notes, ", "),
		errMsg:   "every eligible backend failed",
	}
}

// attempt wraps one backend try with the per-backend attempt metrics.
func (e *entry) attempt(be backendID, rs *reqScratch, req *request, outW, outH int) ([]byte, error) {
	m := e.reg.met
	t0 := time.Now()
	out, err := e.runBackend(be, rs, req, outW, outH)
	m.beLat[be].ObserveDuration(time.Since(t0))
	if err == nil {
		m.beOK[be].Inc()
	} else {
		m.beErr[be].Inc()
	}
	return out, err
}

// okResult assembles a 200, noting the degradation trail when the serving
// backend was not the chain head.
func (e *entry) okResult(rs *reqScratch, be backendID, out []byte, outW, outH int) result {
	e.servedC[be].Inc()
	res := result{status: 200, backend: backendNames[be], body: out, outW: outW, outH: outH, bins: e.bins}
	if len(rs.notes) > 0 {
		e.degradedC.Inc()
		res.degraded = strings.Join(rs.notes, ", ")
	}
	return res
}

// timeoutResult is the typed 504 for a deadline expiring between backend
// attempts.
func (e *entry) timeoutResult(rs *reqScratch) result {
	return result{
		status:   504,
		degraded: strings.Join(rs.notes, ", "),
		errMsg:   "request deadline expired during execution",
	}
}

// runBackend attempts one backend with per-attempt panic isolation: a
// panicking backend is a failed backend, and the chain moves on.
func (e *entry) runBackend(be backendID, rs *reqScratch, req *request, outW, outH int) (out []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			e.panicsC.Inc()
			e.reg.met.panics.Inc()
			err = fmt.Errorf("backend panicked: %v", p)
		}
	}()
	if faultpoint.Enabled(fpExecPanic) {
		panic("injected request panic (serve.exec-panic)")
	}
	if be == beGenerated && faultpoint.Enabled(fpSlowBackend) {
		time.Sleep(e.reg.opts.SlowBackendDelay)
		return nil, errors.New("injected slow backend (serve.slow-backend)")
	}
	return e.evalBackend(be, rs, req, outW, outH)
}

// evalBackend dispatches one backend attempt.
func (e *entry) evalBackend(be backendID, rs *reqScratch, req *request, outW, outH int) ([]byte, error) {
	switch be {
	case beGenerated:
		if e.reg.opts.EvalWorkers <= 1 && e.gk.Tuned != nil {
			// The schedule-baked serial driver: the per-request fast path.
			// Requests parallelize across the worker pool, not inside one
			// request, so serial execution is the serving default.
			return e.gk.Tuned(&rs.sc, &rs.img, outW, outH)
		}
		spec := e.gk.Sched
		spec.Workers = e.reg.opts.EvalWorkers
		if spec.Workers <= 0 {
			spec.Workers = 1
		}
		return e.gk.EvalInto(&rs.sc, &rs.img, outW, outH, spec)
	case beCompiled:
		if e.tuned != nil {
			return e.ck.EvalScheduledAt(rs.src, outW, outH, e.tuned)
		}
		return e.ck.EvalAt(rs.src, outW, outH)
	case beInterp:
		return e.res.EvalIRAt(rs.src, outW, outH)
	case beVM:
		full, err := req.inst.RunVMBounded(e.reg.opts.MaxVMSteps)
		if err != nil {
			return nil, fmt.Errorf("vm re-emulation: %w", err)
		}
		return e.vmWindow(full, req, outW, outH)
	}
	return nil, fmt.Errorf("unknown backend %d", be)
}

// vmWindow extracts the lifted output window from the re-emulated
// binary's full output interior.
func (e *entry) vmWindow(full []byte, req *request, outW, outH int) ([]byte, error) {
	if e.isRed {
		if len(full) != e.bins*4 {
			return nil, fmt.Errorf("vm output is %d bytes, want a %d-bin table", len(full), e.bins)
		}
		return full, nil
	}
	c := e.channels
	fw, fh := req.inst.RefDims()
	if len(full) != fw*fh*c || e.vmOX+outW > fw || e.vmOY+outH > fh {
		return nil, fmt.Errorf("vm output window (%d,%d)+%dx%d does not fit the %dx%dx%d interior",
			e.vmOX, e.vmOY, outW, outH, fw, fh, c)
	}
	out := make([]byte, 0, outW*outH*c)
	for y := 0; y < outH; y++ {
		row := full[((e.vmOY+y)*fw+e.vmOX)*c:]
		out = append(out, row[:outW*c]...)
	}
	return out, nil
}

// buildInput rebuilds the request's input interior into the entry's
// native pixel layout: a clamp-padded plane for planar kernels (the
// padding covers the whole stencil footprint, matching the legacy
// layout's own edge clamp) or an interleaved backing.  Buffers live in
// the pooled scratch; a stable request geometry reuses them with zero
// allocations.
func (e *entry) buildInput(rs *reqScratch, req *request) error {
	iw, ih := req.w+e.dInW, req.h+e.dInH
	if iw < 1 || ih < 1 {
		return fmt.Errorf("input interior %dx%d is empty", iw, ih)
	}
	data := req.pixels
	if data == nil {
		data = req.inst.InputInterior
	}
	want := iw * ih * e.channels
	if len(data) != want {
		return fmt.Errorf("input is %d bytes, want %d (%dx%dx%d interior)", len(data), want, iw, ih, e.channels)
	}
	if !e.interleaved {
		if rs.plane == nil || rs.plane.Width != iw || rs.plane.Height != ih || rs.plane.Pad != e.pad {
			rs.plane = image.NewPlane(iw, ih, e.pad)
			rs.src = ir.PlaneSource{P: rs.plane}
		}
		rs.plane.SetInterior(data)
		rs.plane.PadEdges()
		pix, base, stride := rs.plane.Flat()
		rs.img = liftedkernels.Image{Pix: pix, Base: base, Stride: stride, PixStep: 1}
		return nil
	}
	if rs.inter == nil || rs.inter.Width != iw || rs.inter.Height != ih || rs.inter.Channels != e.channels {
		rs.inter = image.NewInterleaved(iw, ih, e.channels)
		rs.src = ir.InterleavedSource{Im: rs.inter}
	}
	rowBytes := iw * e.channels
	for y := 0; y < ih; y++ {
		copy(rs.inter.Pix[y*rs.inter.Stride:], data[y*rowBytes:(y+1)*rowBytes])
	}
	pix, base, stride, pixStep := rs.inter.Flat()
	rs.img = liftedkernels.Image{Pix: pix, Base: base, Stride: stride, PixStep: pixStep, ChanStep: 1}
	return nil
}
