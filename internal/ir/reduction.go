// Reductions.  A stencil kernel computes each output sample independently
// from input samples at constant offsets; a reduction instead scatters a
// contribution from every input pixel into a small accumulator table (a
// histogram is the canonical case).  The lifter's reduction recognizer
// produces this form from accumulate-into-table write patterns in the
// dynamic trace; the paper models these as Halide update definitions with a
// reduction domain over the whole input.
package ir

import (
	"fmt"
	"strings"
)

// Reduction is a lifted accumulate-into-table kernel:
//
//	bins[Index(x, y)] += Delta   for every input pixel (x, y)
//
// iterated over the DomW x DomH input domain, starting from the per-bin
// Init values, with Elem-byte wraparound arithmetic.  The serialized output
// is the little-endian bin table, exactly the bytes the legacy binary left
// in its output buffer.
type Reduction struct {
	Name string
	// DomW and DomH are the input domain extents in pixels.
	DomW, DomH int
	// Bins is the number of accumulator slots; Elem is the byte width of
	// one slot (accumulation wraps at this width).
	Bins, Elem int
	// Init holds the initial value of every bin, recovered from the
	// table-zeroing writes that precede the accumulation loop.
	Init []uint64
	// Index computes the bin index for input pixel (x, y); its loads are
	// relative to the domain pixel being visited (always offset (0,0) in
	// practice).
	Index *Expr
	// Delta is the constant added per visit.
	Delta uint64
	// Suffix marks a cumulative reduction: each visit adds Delta to every
	// bin from Index(x, y) through Bins-1, so the finished table is the
	// running (prefix-summed) histogram — the CDF shape histogram
	// equalization consumes.  Plain reductions update one bin per visit.
	Suffix bool
}

// errRedIndex matches the generated backend's failure mode for an index
// outside the bin table.
func errRedIndex(idx int64, bins int) error {
	return fmt.Errorf("ir: reduction index %d out of range (%d bins)", idx, bins)
}

// Eval runs the reduction over src's DomW x DomH domain and returns the
// serialized little-endian bin table.  Pixels are visited row-major, but the
// result is iteration-order independent: the only update is a wraparound
// addition by a constant.
func (r *Reduction) Eval(src Source) ([]byte, error) {
	if len(r.Init) != r.Bins {
		return nil, fmt.Errorf("ir: reduction %s has %d init values for %d bins", r.Name, len(r.Init), r.Bins)
	}
	bins := append([]uint64(nil), r.Init...)
	ev := evaluator{src: src}
	for y := 0; y < r.DomH; y++ {
		for x := 0; x < r.DomW; x++ {
			v, err := ev.evalBits(r.Index, x, y, 0)
			if err != nil {
				return nil, fmt.Errorf("ir: kernel %s at (%d,%d): %w", r.Name, x, y, err)
			}
			idx := int64(v)
			if idx < 0 || idx >= int64(r.Bins) {
				return nil, fmt.Errorf("ir: kernel %s at (%d,%d): %w", r.Name, x, y, errRedIndex(idx, r.Bins))
			}
			bins[idx] = maskW(bins[idx]+r.Delta, r.Elem)
		}
	}
	if r.Suffix {
		// Each visit incremented bins[idx..Bins-1]; having counted only
		// bins[idx] above, the running sum reconstructs the rest exactly
		// (wraparound addition is associative and commutative).
		var run uint64
		for i := range bins {
			run = maskW(run+bins[i]-r.Init[i], r.Elem)
			bins[i] = maskW(r.Init[i]+run, r.Elem)
		}
	}
	return r.serialize(bins), nil
}

// serialize renders the bins as the little-endian byte table the legacy
// binary's output buffer holds.
func (r *Reduction) serialize(bins []uint64) []byte {
	out := make([]byte, 0, r.Bins*r.Elem)
	for _, v := range bins {
		for i := 0; i < r.Elem; i++ {
			out = append(out, byte(v>>(8*i)))
		}
	}
	return out
}

// String renders the reduction as a Halide-like update definition.
func (r *Reduction) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s: %d bins x %d byte(s) over a %dx%d domain\n", r.Name, r.Bins, r.Elem, r.DomW, r.DomH)
	uniform := true
	for _, v := range r.Init {
		if v != r.Init[0] {
			uniform = false
			break
		}
	}
	if uniform && len(r.Init) > 0 {
		fmt.Fprintf(&b, "bins(t) = %d\n", r.Init[0])
	} else {
		b.WriteString("bins(t) = <per-bin init>\n")
	}
	if r.Suffix {
		fmt.Fprintf(&b, "bins[%s .. %d] += %d\n", r.Index, r.Bins-1, r.Delta)
	} else {
		fmt.Fprintf(&b, "bins[%s] += %d\n", r.Index, r.Delta)
	}
	return b.String()
}
