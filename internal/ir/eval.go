package ir

import (
	"fmt"
	"math"

	"helium/internal/image"
)

// Source supplies input samples to the evaluator.  Coordinates may reach
// outside the interior when the lifted kernel reads edge padding; sources
// backed by padded planes resolve those reads from the padding bytes.
type Source interface {
	Sample(x, y, c int) uint8
}

// PlaneSource adapts a single padded plane.  The channel coordinate is
// ignored.
type PlaneSource struct {
	P *image.Plane
}

// Sample returns the plane byte at (x, y), which may lie in the padding.
func (s PlaneSource) Sample(x, y, _ int) uint8 { return s.P.At(x, y) }

// InterleavedSource adapts an interleaved image.
type InterleavedSource struct {
	Im *image.Interleaved
}

// Sample returns channel c of pixel (x, y).
func (s InterleavedSource) Sample(x, y, c int) uint8 { return s.Im.At(x, y, c) }

// KnownCalls maps the library functions Helium special-cases to their
// implementations; it mirrors the import table of the emulated host.
var KnownCalls = map[string]func(float64) float64{
	"sqrt":  math.Sqrt,
	"floor": math.Floor,
	"ceil":  math.Ceil,
	"exp":   math.Exp,
	"log":   math.Log,
}

// value is the evaluator's runtime value: a zero-extended integer or a
// float64, matching the two value domains of the traced machine.
type value struct {
	i  uint64
	f  float64
	fl bool
}

func maskW(v uint64, width int) uint64 {
	switch width {
	case 1:
		return v & 0xff
	case 2:
		return v & 0xffff
	case 4:
		return v & 0xffffffff
	}
	return v
}

// boolVal maps a comparison outcome to the integer 0/1 value domain.
func boolVal(b bool) value {
	if b {
		return value{i: 1}
	}
	return value{}
}

func signExt(v uint64, width int) int64 {
	switch width {
	case 1:
		return int64(int8(v))
	case 2:
		return int64(int16(v))
	case 4:
		return int64(int32(v))
	}
	return int64(v)
}

// evaluator is the tree-walking interpreter's reusable state: the source
// being sampled and a scratch stack that holds operand values during the
// walk.  Reusing one evaluator across samples makes whole-image evaluation
// allocation-free in the steady state; the previous implementation
// allocated a []value per expression node per sample.
type evaluator struct {
	src Source
	// tbl is the bound stage-input table OpTableIn reads: the serialized
	// output of an earlier reduction stage.  Nil when the kernel has no
	// table-input nodes.
	tbl   []byte
	stack []value
}

// Eval computes the expression for output coordinate (x, y, c) against src.
func (e *Expr) Eval(src Source, x, y, c int) (uint64, error) {
	ev := evaluator{src: src}
	return ev.evalBits(e, x, y, c)
}

// evalBits evaluates e and flattens the result to raw bits: zero-extended
// integers stay as-is, floats become their IEEE-754 bit pattern.
func (ev *evaluator) evalBits(e *Expr, x, y, c int) (uint64, error) {
	v, err := ev.eval(e, x, y, c)
	if err != nil {
		return 0, err
	}
	if v.fl {
		return math.Float64bits(v.f), nil
	}
	return v.i, nil
}

// eval walks one node, parking operand values on the scratch stack.
func (ev *evaluator) eval(e *Expr, x, y, c int) (value, error) {
	switch e.Op {
	case OpLoad:
		return value{i: uint64(ev.src.Sample(x+e.DX, y+e.DY, c+e.DC))}, nil
	case OpConst:
		return value{i: uint64(e.Val)}, nil
	case OpConstF:
		return value{f: e.F, fl: true}, nil
	case OpTableIn:
		// The stage-input table lives on the evaluator, not the tree, so the
		// lookup happens here rather than in apply.
		if len(e.Args) < 1 {
			return value{}, fmt.Errorf("ir: op %v applied to 0 operands (needs 1)", e.Op)
		}
		if e.Elem <= 0 {
			return value{}, fmt.Errorf("ir: table-input node has element width %d", e.Elem)
		}
		v, err := ev.eval(e.Args[0], x, y, c)
		if err != nil {
			return value{}, err
		}
		idx := int64(v.i)
		off := idx * int64(e.Elem)
		if off < 0 || off+int64(e.Elem) > int64(len(ev.tbl)) {
			return value{}, fmt.Errorf("ir: table index %d out of range (%d elements)", idx, len(ev.tbl)/e.Elem)
		}
		var r uint64
		for i := 0; i < e.Elem; i++ {
			r |= uint64(ev.tbl[off+int64(i)]) << (8 * i)
		}
		return value{i: r}, nil
	}

	base := len(ev.stack)
	for _, a := range e.Args {
		v, err := ev.eval(a, x, y, c)
		if err != nil {
			ev.stack = ev.stack[:base]
			return value{}, err
		}
		ev.stack = append(ev.stack, v)
	}
	v, err := e.apply(ev.stack[base:])
	ev.stack = ev.stack[:base]
	return v, err
}

// minArity returns the fewest operands op can be applied to.  The
// evaluator checks it before indexing into the argument slice, so a
// malformed tree (a fuzzer's, or a lifter bug's) fails with an error
// instead of an out-of-range panic.
func minArity(op Op) int {
	switch op {
	case OpNot, OpNeg, OpZExt, OpSExt, OpExtract, OpTable, OpIntToFP, OpFPToInt, OpCall:
		return 1
	case OpSelect:
		return 3
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpMin, OpMax:
		return 1
	default:
		return 2
	}
}

// apply computes one operation over already-evaluated operand values.
func (e *Expr) apply(args []value) (value, error) {
	if len(args) < minArity(e.Op) {
		return value{}, fmt.Errorf("ir: op %v applied to %d operands (needs %d)", e.Op, len(args), minArity(e.Op))
	}
	w := e.Width
	switch e.Op {
	case OpAdd:
		r := uint64(0)
		for _, a := range args {
			r += a.i
		}
		return value{i: maskW(r, w)}, nil
	case OpSub:
		return value{i: maskW(args[0].i-args[1].i, w)}, nil
	case OpMul:
		r := uint64(1)
		for _, a := range args {
			r *= a.i
		}
		return value{i: maskW(r, w)}, nil
	case OpMulHi:
		return value{i: maskW((maskW(args[0].i, 4)*maskW(args[1].i, 4))>>32, w)}, nil
	case OpDiv:
		d := maskW(args[1].i, w)
		if d == 0 {
			return value{}, fmt.Errorf("ir: division by zero")
		}
		return value{i: maskW(args[0].i, w) / d}, nil
	case OpMod:
		d := maskW(args[1].i, w)
		if d == 0 {
			return value{}, fmt.Errorf("ir: modulo by zero")
		}
		return value{i: maskW(args[0].i, w) % d}, nil
	case OpAnd:
		r := ^uint64(0)
		for _, a := range args {
			r &= a.i
		}
		return value{i: maskW(r, w)}, nil
	case OpOr:
		r := uint64(0)
		for _, a := range args {
			r |= a.i
		}
		return value{i: maskW(r, w)}, nil
	case OpXor:
		r := uint64(0)
		for _, a := range args {
			r ^= a.i
		}
		return value{i: maskW(r, w)}, nil
	case OpNot:
		return value{i: maskW(^args[0].i, w)}, nil
	case OpNeg:
		return value{i: maskW(-args[0].i, w)}, nil
	case OpShl:
		return value{i: maskW(args[0].i<<(args[1].i&31), w)}, nil
	case OpShr:
		return value{i: maskW(args[0].i, w) >> (args[1].i & 31)}, nil
	case OpSar:
		return value{i: maskW(uint64(signExt(args[0].i, w)>>(args[1].i&31)), w)}, nil
	case OpZExt:
		return value{i: maskW(args[0].i, e.SrcWidth)}, nil
	case OpSExt:
		return value{i: maskW(uint64(signExt(args[0].i, e.SrcWidth)), w)}, nil
	case OpExtract:
		return value{i: maskW(args[0].i>>(8*uint(e.Val)), w)}, nil
	case OpMin:
		r := signExt(args[0].i, w)
		for _, a := range args[1:] {
			if s := signExt(a.i, w); s < r {
				r = s
			}
		}
		return value{i: maskW(uint64(r), w)}, nil
	case OpMax:
		r := signExt(args[0].i, w)
		for _, a := range args[1:] {
			if s := signExt(a.i, w); s > r {
				r = s
			}
		}
		return value{i: maskW(uint64(r), w)}, nil
	case OpSelect:
		if args[0].i != 0 {
			return args[1], nil
		}
		return args[2], nil
	case OpCmpEq:
		return boolVal(maskW(args[0].i, w) == maskW(args[1].i, w)), nil
	case OpCmpNe:
		return boolVal(maskW(args[0].i, w) != maskW(args[1].i, w)), nil
	case OpCmpLtS:
		return boolVal(signExt(args[0].i, w) < signExt(args[1].i, w)), nil
	case OpCmpLeS:
		return boolVal(signExt(args[0].i, w) <= signExt(args[1].i, w)), nil
	case OpCmpLtU:
		return boolVal(maskW(args[0].i, w) < maskW(args[1].i, w)), nil
	case OpCmpLeU:
		return boolVal(maskW(args[0].i, w) <= maskW(args[1].i, w)), nil
	case OpTable:
		idx := int64(args[0].i)
		off := idx * int64(e.Elem)
		if off < 0 || off+int64(e.Elem) > int64(len(e.Table)) {
			return value{}, fmt.Errorf("ir: table index %d out of range (%d elements)", idx, len(e.Table)/e.Elem)
		}
		var r uint64
		for i := 0; i < e.Elem; i++ {
			r |= uint64(e.Table[off+int64(i)]) << (8 * i)
		}
		return value{i: r}, nil
	case OpIntToFP:
		return value{f: float64(signExt(args[0].i, e.SrcWidth)), fl: true}, nil
	case OpFPToInt:
		return value{i: maskW(uint64(int64(math.RoundToEven(args[0].f))), w)}, nil
	case OpFAdd:
		return value{f: args[0].f + args[1].f, fl: true}, nil
	case OpFSub:
		return value{f: args[0].f - args[1].f, fl: true}, nil
	case OpFMul:
		return value{f: args[0].f * args[1].f, fl: true}, nil
	case OpFDiv:
		return value{f: args[0].f / args[1].f, fl: true}, nil
	case OpCall:
		fn, ok := KnownCalls[e.Sym]
		if !ok {
			return value{}, fmt.Errorf("ir: unknown library call %q", e.Sym)
		}
		return value{f: fn(args[0].f), fl: true}, nil
	}
	return value{}, fmt.Errorf("ir: cannot evaluate op %v", e.Op)
}

// EvalAt evaluates channel c of output pixel (x, y) and narrows the result
// to one sample byte, exactly as the legacy kernel's final store does.
func (k *Kernel) EvalAt(src Source, x, y, c int) (uint8, error) {
	return k.EvalAtTbl(src, nil, x, y, c)
}

// EvalAtTbl is EvalAt with a bound stage-input table for kernels whose
// trees contain table-input (OpTableIn) nodes.
func (k *Kernel) EvalAtTbl(src Source, tbl []byte, x, y, c int) (uint8, error) {
	if ts, ok := src.(TableSource); ok && tbl == nil {
		src, tbl = ts.Src, ts.Tbl
	}
	ev := evaluator{src: src, tbl: tbl}
	v, err := ev.evalBits(k.Trees[c], k.MapX.Apply(x)+k.OriginX, k.MapY.Apply(y)+k.OriginY, c)
	if err != nil {
		return 0, err
	}
	return uint8(v), nil
}

// Eval renders the whole output region in row-major sample order
// (OutWidth*Channels samples per row, OutHeight rows).  One evaluator is
// reused across all samples, so the walk allocates nothing per sample.
func (k *Kernel) Eval(src Source) ([]byte, error) {
	return k.EvalTbl(src, nil)
}

// EvalTbl is Eval with a bound stage-input table.
func (k *Kernel) EvalTbl(src Source, tbl []byte) ([]byte, error) {
	if len(k.Trees) != k.Channels {
		return nil, fmt.Errorf("ir: kernel %s has %d trees for %d channels", k.Name, len(k.Trees), k.Channels)
	}
	if ts, ok := src.(TableSource); ok && tbl == nil {
		src, tbl = ts.Src, ts.Tbl
	}
	ev := evaluator{src: src, tbl: tbl}
	out := make([]byte, 0, k.OutWidth*k.OutHeight*k.Channels)
	for y := 0; y < k.OutHeight; y++ {
		yIn := k.MapY.Apply(y) + k.OriginY
		for x := 0; x < k.OutWidth; x++ {
			xIn := k.MapX.Apply(x) + k.OriginX
			for c := 0; c < k.Channels; c++ {
				v, err := ev.evalBits(k.Trees[c], xIn, yIn, c)
				if err != nil {
					return nil, fmt.Errorf("ir: kernel %s at (%d,%d,%d): %w", k.Name, x, y, c, err)
				}
				out = append(out, uint8(v))
			}
		}
	}
	return out, nil
}
