package ir

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"helium/internal/image"
)

// testRNG is a splitmix64 generator so the differential trees are
// deterministic across runs and Go versions.
type testRNG uint64

func (r *testRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *testRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// opaqueSource hides the concrete backing from bindSource, forcing the
// compiled executor onto its generic Source path.
type opaqueSource struct{ s Source }

func (o opaqueSource) Sample(x, y, c int) uint8 { return o.s.Sample(x, y, c) }

// treeGen builds random well-formed expression trees covering every op,
// mixed widths, tables, float chains and deliberate domain mixes.
type treeGen struct {
	r *testRNG
}

func (g *treeGen) width() int {
	switch g.r.intn(8) {
	case 0:
		return 1
	case 1:
		return 2
	default:
		return 4
	}
}

func (g *treeGen) load() *Expr {
	return Load(g.r.intn(5)-2, g.r.intn(5)-2, 0)
}

func (g *treeGen) constant() *Expr {
	vals := []int64{0, 1, 2, 3, 9, 255, 256, -1, -8, 0x7fffffff, -0x80000000, 0xffffffff, 31}
	return Const(vals[g.r.intn(len(vals))])
}

func (g *treeGen) constantF() *Expr {
	vals := []float64{0, 1, 0.5, -2.25, 255, 1e-3, 3.75, -0.0, 2.5}
	return ConstF(vals[g.r.intn(len(vals))])
}

// intExpr generates an integer-domain tree.  With a small probability it
// returns a float tree instead, exercising the interpreter's rule that a
// float value consumed as an integer reads as zero.
func (g *treeGen) intExpr(depth int) *Expr {
	if g.r.intn(20) == 0 && depth > 0 {
		return g.floatExpr(depth - 1)
	}
	if depth <= 0 {
		if g.r.intn(2) == 0 {
			return g.load()
		}
		return g.constant()
	}
	w := g.width()
	switch g.r.intn(22) {
	case 0: // n-ary chains, including the degenerate single-operand form.
		n := 1 + g.r.intn(3)
		args := make([]*Expr, n)
		for i := range args {
			args[i] = g.intExpr(depth - 1)
		}
		ops := []Op{OpAdd, OpMul, OpAnd, OpOr, OpXor, OpMin, OpMax}
		return &Expr{Op: ops[g.r.intn(len(ops))], Width: w, Args: args}
	case 1:
		return Bin(OpSub, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 2:
		return Bin(OpMul, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 3:
		return Bin(OpMulHi, 4, g.intExpr(depth-1), g.intExpr(depth-1))
	case 4: // division, sometimes by zero
		return Bin(OpDiv, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 5:
		return Bin(OpMod, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 6:
		return Bin(OpAnd, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 7:
		return Bin(OpOr, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 8:
		return Bin(OpXor, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 9:
		return &Expr{Op: OpNot, Width: w, Args: []*Expr{g.intExpr(depth - 1)}}
	case 10:
		return &Expr{Op: OpNeg, Width: w, Args: []*Expr{g.intExpr(depth - 1)}}
	case 11:
		return Bin(OpShl, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 12:
		return Bin(OpShr, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 13:
		return Bin(OpSar, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 14:
		sw := []int{1, 2, 4}[g.r.intn(3)]
		return &Expr{Op: OpZExt, Width: w, SrcWidth: sw, Args: []*Expr{g.intExpr(depth - 1)}}
	case 15:
		sw := []int{1, 2, 4}[g.r.intn(3)]
		return &Expr{Op: OpSExt, Width: w, SrcWidth: sw, Args: []*Expr{g.intExpr(depth - 1)}}
	case 16:
		return &Expr{Op: OpExtract, Width: 1 + g.r.intn(2), SrcWidth: 4, Val: int64(g.r.intn(4)), Args: []*Expr{g.intExpr(depth - 1)}}
	case 17:
		return Bin(OpMin, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 18:
		return Bin(OpMax, w, g.intExpr(depth-1), g.intExpr(depth-1))
	case 19:
		a, b := g.intExpr(depth-1), g.intExpr(depth-1)
		// The compiler (rightly) rejects mixed-domain arms, so keep the
		// rare domain flips of both arms in agreement.
		if a.Op.IsFloat() != b.Op.IsFloat() {
			b = g.constant()
			if a.Op.IsFloat() {
				a = g.constant()
			}
		}
		return &Expr{Op: OpSelect, Args: []*Expr{g.intExpr(depth - 1), a, b}}
	case 20: // table lookup, sometimes sized so byte indices run off the end
		elem := 1 + g.r.intn(2)
		n := []int{16, 300}[g.r.intn(2)]
		table := make([]byte, elem*n)
		for i := range table {
			table[i] = byte(g.r.next())
		}
		idx := g.intExpr(depth - 1)
		if g.r.intn(2) == 0 {
			idx = &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{g.load()}}
		}
		return &Expr{Op: OpTable, Table: table, Elem: elem, Args: []*Expr{idx}}
	default: // round-trip through the float domain
		return &Expr{Op: OpFPToInt, Width: 4, Args: []*Expr{g.floatExpr(depth - 1)}}
	}
}

// floatExpr generates a float-domain tree, with the mirror-image rare
// domain mix (an integer value consumed as a float reads as 0.0).
func (g *treeGen) floatExpr(depth int) *Expr {
	if g.r.intn(20) == 0 && depth > 0 {
		return g.intExpr(depth - 1)
	}
	if depth <= 0 {
		return g.constantF()
	}
	switch g.r.intn(7) {
	case 0:
		sw := []int{1, 2, 4}[g.r.intn(3)]
		return &Expr{Op: OpIntToFP, SrcWidth: sw, Args: []*Expr{g.intExpr(depth - 1)}}
	case 1:
		return &Expr{Op: OpFAdd, Args: []*Expr{g.floatExpr(depth - 1), g.floatExpr(depth - 1)}}
	case 2:
		return &Expr{Op: OpFSub, Args: []*Expr{g.floatExpr(depth - 1), g.floatExpr(depth - 1)}}
	case 3:
		return &Expr{Op: OpFMul, Args: []*Expr{g.floatExpr(depth - 1), g.floatExpr(depth - 1)}}
	case 4:
		return &Expr{Op: OpFDiv, Args: []*Expr{g.floatExpr(depth - 1), g.floatExpr(depth - 1)}}
	case 5:
		syms := []string{"sqrt", "floor", "ceil", "exp", "log"}
		return &Expr{Op: OpCall, Sym: syms[g.r.intn(len(syms))], Args: []*Expr{g.floatExpr(depth - 1)}}
	default:
		return g.constantF()
	}
}

// diffPlane builds the deterministic plane all differential runs sample.
func diffPlane() *image.Plane {
	p := image.NewPlane(8, 6, 2)
	r := testRNG(42)
	for y := -2; y < 8; y++ {
		for x := -2; x < 10; x++ {
			p.Set(x, y, byte(r.next()))
		}
	}
	return p
}

// TestCompiledDifferential generates random well-formed trees and asserts
// compiled execution is bit-identical to the tree-walking interpreter —
// values and error outcomes alike — on both the fused plane path and the
// generic Source path.
func TestCompiledDifferential(t *testing.T) {
	plane := diffPlane()
	fused := PlaneSource{P: plane}
	generic := opaqueSource{s: fused}
	coords := [][2]int{{0, 0}, {3, 2}, {7, 5}, {2, 4}}

	r := testRNG(1)
	g := &treeGen{r: &r}
	trees := 0
	for i := 0; i < 400; i++ {
		var e *Expr
		if i%4 == 3 {
			e = g.floatExpr(4)
		} else {
			e = g.intExpr(4)
		}
		p, err := CompileExpr(e)
		if err != nil {
			t.Fatalf("tree %d: CompileExpr(%s): %v", i, e, err)
		}
		trees++
		for _, xy := range coords {
			x, y := xy[0], xy[1]
			want, werr := e.Eval(fused, x, y, 0)
			for _, src := range []Source{fused, generic} {
				got, gerr := p.Run(src, x, y, 0)
				if (werr != nil) != (gerr != nil) {
					t.Fatalf("tree %d at (%d,%d): interp err %v, compiled err %v\ntree: %s\nprogram:\n%s",
						i, x, y, werr, gerr, e, p.Disasm())
				}
				if werr == nil && got != want {
					t.Fatalf("tree %d at (%d,%d): interp %#x, compiled %#x\ntree: %s\nprogram:\n%s",
						i, x, y, want, got, e, p.Disasm())
				}
			}
		}
	}
	if trees != 400 {
		t.Fatalf("generated %d trees, want 400", trees)
	}
}

// TestCompiledRowDifferential pits the row-vectorized executor against the
// interpreter over whole kernel grids: outputs must be byte-identical and,
// when a tree faults on some sample, the error — failing coordinate and
// message alike — must be the one an x-then-c per-sample scan reports.
func TestCompiledRowDifferential(t *testing.T) {
	plane := diffPlane()
	src := PlaneSource{P: plane}
	generic := opaqueSource{s: src}
	values, faults := 0, 0
	for seed := uint64(0); seed < 150; seed++ {
		r := testRNG(seed)
		g := &treeGen{r: &r}
		tree := g.intExpr(4)
		k := &Kernel{Name: "rowdiff", OutWidth: 6, OutHeight: 4, Channels: 1,
			OriginX: 1, OriginY: 1, Trees: []*Expr{tree}}
		want, werr := k.Eval(src)
		ck, err := k.Compile()
		if err != nil {
			t.Fatalf("seed %d: Compile: %v", seed, err)
		}
		for _, s := range []Source{src, generic} {
			got, gerr := ck.Eval(s)
			if (werr != nil) != (gerr != nil) {
				t.Fatalf("seed %d: interp err %v, compiled err %v\ntree: %s", seed, werr, gerr, tree)
			}
			if werr != nil {
				if werr.Error() != gerr.Error() {
					t.Fatalf("seed %d: interp error %q, compiled error %q\ntree: %s", seed, werr, gerr, tree)
				}
				pgot, perr := ck.EvalParallel(s, 3)
				if perr == nil || perr.Error() != werr.Error() {
					t.Fatalf("seed %d: parallel error %v, want %q", seed, perr, werr)
				}
				_ = pgot
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: compiled row output differs from interpreter\ntree: %s", seed, tree)
			}
		}
		if werr != nil {
			faults++
		} else {
			values++
		}
	}
	if values == 0 || faults == 0 {
		t.Fatalf("differential corpus is unbalanced: %d value kernels, %d faulting kernels", values, faults)
	}
}

// TestCompiledErrorCases pins the runtime error parity on the cases the
// interpreter defines: division and modulo by zero and out-of-range table
// indices fail in both backends.
func TestCompiledErrorCases(t *testing.T) {
	cases := []*Expr{
		Bin(OpDiv, 4, Const(7), Const(0)),
		Bin(OpMod, 4, Const(7), Const(0)),
		Bin(OpDiv, 1, Const(7), Const(256)), // divisor masks to zero at width 1
		{Op: OpTable, Table: []byte{1, 2, 3}, Elem: 1, Args: []*Expr{Const(3)}},
		{Op: OpTable, Table: []byte{1, 2, 3, 4}, Elem: 2, Args: []*Expr{Const(-1)}},
	}
	for _, e := range cases {
		if _, err := e.Eval(nil, 0, 0, 0); err == nil {
			t.Fatalf("interp must error on %s", e)
		}
		p, err := CompileExpr(e)
		if err != nil {
			t.Fatalf("CompileExpr(%s): %v", e, err)
		}
		if _, err := p.Run(nil, 0, 0, 0); err == nil {
			t.Fatalf("compiled must error on %s", e)
		}
	}
}

// TestCompileRejects pins the cases compilation refuses up front; the
// interpreter fails on these at evaluation time (it evaluates all operands
// eagerly), so rejecting them early loses nothing.
func TestCompileRejects(t *testing.T) {
	cases := []*Expr{
		{Op: OpCall, Sym: "nope", Args: []*Expr{ConstF(1)}},
		{Op: OpSelect, Args: []*Expr{Const(1), Const(2), ConstF(3)}}, // mixed-domain arms
		{Op: OpAdd, Width: 4}, // no operands
		{Op: OpTable, Table: []byte{1}, Elem: 0, Args: []*Expr{Const(0)}},
	}
	for _, e := range cases {
		if _, err := CompileExpr(e); err == nil {
			t.Fatalf("CompileExpr must reject %s", e)
		}
	}
}

// TestCompileCSEAndPooling checks the two compile-time optimizations: a
// value-identical subtree computes once even without pointer sharing, and
// repeated constants occupy one pooled register.
func TestCompileCSEAndPooling(t *testing.T) {
	// float(in(x, y)) * float(in(x, y)) with structurally distinct children.
	f := func() *Expr {
		return &Expr{Op: OpIntToFP, SrcWidth: 1, Args: []*Expr{Load(0, 0, 0)}}
	}
	sq := &Expr{Op: OpFMul, Args: []*Expr{f(), f()}}
	p, err := CompileExpr(sq)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLoads() != 1 {
		t.Errorf("CSE left %d loads, want 1:\n%s", p.NumLoads(), p.Disasm())
	}
	if p.NumInsts() != 3 { // load, i2f, fmul
		t.Errorf("CSE left %d instructions, want 3:\n%s", p.NumInsts(), p.Disasm())
	}

	cp := Bin(OpAdd, 4, Bin(OpMul, 4, Load(0, 0, 0), Const(9)), Const(9))
	p, err = CompileExpr(cp)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumConsts() != 1 {
		t.Errorf("constant pool holds %d entries, want 1:\n%s", p.NumConsts(), p.Disasm())
	}
}

// TestCompileSharedDAGLinear pins compile-time behavior on heavily shared
// expression DAGs, which the extractor's per-sample memo deliberately
// produces: v1 = v0+v0, v2 = v1+v1, ... doubles the value 40 times but
// must compile in linear time to ~40 instructions (a full textual
// expansion of the sharing would need 2^40 visits).
func TestCompileSharedDAGLinear(t *testing.T) {
	const depth = 40
	v := Const(1)
	cur := &Expr{Op: OpAdd, Width: 0, Args: []*Expr{v, v}}
	for i := 1; i < depth; i++ {
		cur = &Expr{Op: OpAdd, Width: 0, Args: []*Expr{cur, cur}}
	}
	p, err := CompileExpr(cur)
	if err != nil {
		t.Fatalf("CompileExpr: %v", err)
	}
	if p.NumInsts() > depth+1 {
		t.Errorf("shared DAG compiled to %d instructions, want <= %d", p.NumInsts(), depth+1)
	}
	got, err := p.Run(nil, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(1) << depth; got != want {
		t.Errorf("doubling ladder = %d, want %d", got, want)
	}
}

// TestCompiledKernelMatchesInterp renders a whole kernel through every
// compiled path — serial executor, parallel driver at several worker
// counts, fused and generic bindings — and demands byte equality with the
// interpreter.
func TestCompiledKernelMatchesInterp(t *testing.T) {
	plane := diffPlane()
	// Walk seeds until the generator yields a tree that is total over the
	// whole grid (no data-dependent table/division errors); those error
	// paths are covered by the differential test above.
	var k *Kernel
	var want []byte
	for seed := uint64(7); ; seed++ {
		r := testRNG(seed)
		g := &treeGen{r: &r}
		tree := g.intExpr(4)
		k = &Kernel{Name: "diff", OutWidth: 6, OutHeight: 4, Channels: 1, OriginX: 1, OriginY: 1, Trees: []*Expr{tree}}
		out, err := k.Eval(PlaneSource{P: plane})
		if err == nil {
			want = out
			break
		}
		if seed > 100 {
			t.Fatalf("no total tree found in 100 seeds: %v", err)
		}
	}
	ck, err := k.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	srcs := map[string]Source{
		"fused":   PlaneSource{P: plane},
		"generic": opaqueSource{s: PlaneSource{P: plane}},
	}
	for name, src := range srcs {
		got, err := ck.Eval(src)
		if err != nil {
			t.Fatalf("%s Eval: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s compiled output differs from interpreter", name)
		}
		for _, workers := range []int{1, 2, 3, 7} {
			got, err := ck.EvalParallel(src, workers)
			if err != nil {
				t.Fatalf("%s EvalParallel(%d): %v", name, workers, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s EvalParallel(%d) output differs from serial", name, workers)
			}
		}
	}
}

// TestCompiledInterleavedFusion checks the fused interleaved binding
// against per-sample interface dispatch.
func TestCompiledInterleavedFusion(t *testing.T) {
	im := image.NewInterleaved(7, 5, 3)
	im.FillPattern(9)
	// Per-channel mix of neighboring samples, taps stay in bounds.
	tree := Bin(OpAdd, 1, Load(1, 0, 0), Bin(OpXor, 1, Load(0, 1, 0), Load(0, 0, 0)))
	k := &Kernel{Name: "ilv", OutWidth: 6, OutHeight: 4, Channels: 3, Trees: []*Expr{tree, tree.Clone(), tree.Clone()}}
	want, err := k.Eval(InterleavedSource{Im: im})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ck.Eval(InterleavedSource{Im: im})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("fused interleaved output differs from interpreter")
	}
	got, err = ck.EvalParallel(InterleavedSource{Im: im}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("parallel interleaved output differs from interpreter")
	}
}

// TestCompiledLoadOutOfBackingErrors pins the fused path's bounds
// behavior: a tap outside the concrete backing reports an error instead of
// reading out of range.
func TestCompiledLoadOutOfBackingErrors(t *testing.T) {
	p := image.NewPlane(4, 3, 0)
	prog, err := CompileExpr(Load(-1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(PlaneSource{P: p}, 0, 0, 0); err == nil {
		t.Error("fused load outside the backing must error")
	}
}

// TestProgramRootFloat checks the float-root convention matches the
// interpreter: the result is the IEEE-754 bit pattern.
func TestProgramRootFloat(t *testing.T) {
	e := &Expr{Op: OpFMul, Args: []*Expr{ConstF(1.5), ConstF(2)}}
	p, err := CompileExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Run(nil, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := math.Float64frombits(v); f != 3 {
		t.Errorf("float root = %g, want 3", f)
	}
	if !p.rootFloat {
		t.Error("rootFloat not set for a float tree")
	}
}

// sink prevents benchmark dead-code elimination.
var sink uint64

func BenchmarkProgramRunBoxBlurTree(b *testing.B) {
	// The canonical boxblur tree: (sum of 9 taps + 4) / 9.
	taps := make([]*Expr, 0, 10)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			taps = append(taps, &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{Load(dx, dy, 0)}})
		}
	}
	taps = append(taps, Const(4))
	tree := Bin(OpDiv, 4, &Expr{Op: OpAdd, Width: 4, Args: taps}, Const(9))
	p, err := CompileExpr(tree)
	if err != nil {
		b.Fatal(err)
	}
	plane := diffPlane()
	bd := bindSource(PlaneSource{P: plane})
	st := p.newState(&bd, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := p.run(&bd, st, 3, 3, 0)
		if err != nil {
			b.Fatal(err)
		}
		sink = v
	}
}

func init() {
	// Guard against accidental non-determinism in the generator: two
	// identically seeded generators must produce identical trees.
	r1, r2 := testRNG(5), testRNG(5)
	g1, g2 := &treeGen{r: &r1}, &treeGen{r: &r2}
	a, bb := g1.intExpr(3), g2.intExpr(3)
	if a.Key() != bb.Key() {
		panic(fmt.Sprintf("tree generator is nondeterministic: %s vs %s", a, bb))
	}
}
