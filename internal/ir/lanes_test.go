package ir

import (
	"bytes"
	"testing"
)

// narrowTreeGen builds random trees whose values provably stay small, so
// the width pass selects 8/16/32-bit lanes — the population the lane
// executor differential needs.  (The broad generator in compile_test.go
// mostly produces unbounded 32-bit arithmetic, which stays on the 64-bit
// reference path.)
type narrowTreeGen struct {
	r *testRNG
}

func (g *narrowTreeGen) byteLeaf() *Expr {
	if g.r.intn(3) == 0 {
		return Const(int64(g.r.intn(256)))
	}
	return &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{Load(g.r.intn(5)-2, g.r.intn(5)-2, 0)}}
}

func (g *narrowTreeGen) expr(depth int) *Expr {
	if depth <= 0 {
		return g.byteLeaf()
	}
	w := 4
	switch g.r.intn(12) {
	case 0: // tap sum, the stencil workhorse
		n := 2 + g.r.intn(6)
		args := make([]*Expr, n)
		for i := range args {
			args[i] = g.byteLeaf()
		}
		return &Expr{Op: OpAdd, Width: w, Args: args}
	case 1:
		return Bin(OpMul, w, g.expr(depth-1), Const(int64(1+g.r.intn(9))))
	case 2:
		return Bin(OpDiv, w, g.expr(depth-1), Const(int64(2+g.r.intn(15))))
	case 3:
		return Bin(OpMod, w, g.expr(depth-1), Const(int64(2+g.r.intn(15))))
	case 4:
		return Bin(OpShr, w, g.expr(depth-1), Const(int64(g.r.intn(5))))
	case 5:
		return Bin(OpMin, w, g.expr(depth-1), Const(int64(g.r.intn(4096))))
	case 6:
		return Bin(OpMax, w, g.expr(depth-1), Const(int64(g.r.intn(256))))
	case 7:
		return Bin(OpAnd, w, g.expr(depth-1), Const(int64(g.r.intn(65536))))
	case 8:
		return Bin(OpXor, 2, g.expr(depth-1), g.expr(depth-1))
	case 9:
		return Bin(OpOr, 2, g.expr(depth-1), g.expr(depth-1))
	case 10: // byte table lookup, always in range
		table := make([]byte, 256)
		for i := range table {
			table[i] = byte(g.r.next())
		}
		idx := &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{g.expr(depth - 1)}}
		return &Expr{Op: OpTable, Table: table, Elem: 1, Args: []*Expr{idx}}
	default:
		return &Expr{Op: OpExtract, Width: 1, SrcWidth: 4, Val: int64(g.r.intn(2)), Args: []*Expr{g.expr(depth - 1)}}
	}
}

// TestLaneRowDifferential drives the width-specialized row executors
// against the interpreter on trees the width pass can narrow: outputs (and
// the parallel tiled driver's outputs) must match byte for byte, and the
// corpus must actually select narrow lanes rather than silently falling
// back to 64-bit rows.
func TestLaneRowDifferential(t *testing.T) {
	plane := diffPlane()
	src := PlaneSource{P: plane}
	generic := opaqueSource{s: src}
	laneCounts := map[int]int{}
	for seed := uint64(0); seed < 250; seed++ {
		r := testRNG(seed * 977)
		g := &narrowTreeGen{r: &r}
		tree := g.expr(3)
		k := &Kernel{Name: "lanediff", OutWidth: 6, OutHeight: 4, Channels: 1,
			OriginX: 1, OriginY: 1, Trees: []*Expr{tree}}
		want, werr := k.Eval(src)
		if werr != nil {
			t.Fatalf("seed %d: narrow tree unexpectedly faults: %v\ntree: %s", seed, werr, tree)
		}
		ck, err := k.Compile()
		if err != nil {
			t.Fatalf("seed %d: Compile: %v", seed, err)
		}
		laneCounts[ck.Progs[0].LaneBits()]++
		for _, s := range []Source{src, generic} {
			got, gerr := ck.Eval(s)
			if gerr != nil {
				t.Fatalf("seed %d: compiled eval: %v\ntree: %s\n%s", seed, gerr, tree, ck.Progs[0].Disasm())
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: lane output differs from interpreter (lanes=%d)\ntree: %s\n%s",
					seed, ck.Progs[0].LaneBits(), tree, ck.Progs[0].Disasm())
			}
			got, gerr = ck.EvalParallel(s, 3)
			if gerr != nil || !bytes.Equal(got, want) {
				t.Fatalf("seed %d: parallel lane output differs (err %v)", seed, gerr)
			}
		}
	}
	if laneCounts[8]+laneCounts[16]+laneCounts[32] < 150 {
		t.Fatalf("width pass narrowed too few programs: %v", laneCounts)
	}
	if laneCounts[8] == 0 || laneCounts[16] == 0 {
		t.Fatalf("lane corpus must cover 8- and 16-bit paths: %v", laneCounts)
	}
	t.Logf("lane widths over corpus: %v", laneCounts)
}

// coordSource is a cheap unbounded synthetic source for wide-image tests.
type coordSource struct{}

func (coordSource) Sample(x, y, c int) uint8 { return uint8(x*31 ^ y*17 ^ c*5) }

// wideKernel builds a kernel big enough that the blocked driver genuinely
// splits it into multiple tiles in both dimensions.
func wideKernel(tree *Expr) *Kernel {
	return &Kernel{Name: "wide", OutWidth: 1500, OutHeight: 900, Channels: 1,
		OriginX: 1, OriginY: 1, Trees: []*Expr{tree}}
}

// TestTiledEvalMatchesSerial checks the cache-blocked parallel driver
// against the serial full-row executor on an image large enough for a real
// tile grid, across worker counts.
func TestTiledEvalMatchesSerial(t *testing.T) {
	// Enough distinct subexpressions that the row register file forces
	// tiling in x.
	taps := make([]*Expr, 0, 12)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			taps = append(taps, &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{Load(dx, dy, 0)}})
		}
	}
	taps = append(taps, Const(4))
	tree := Bin(OpMin, 4,
		Bin(OpDiv, 4, &Expr{Op: OpAdd, Width: 4, Args: taps}, Const(9)),
		Const(255))
	k := wideKernel(tree)
	ck, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tw, th := ck.tileSize()
	if tw >= k.OutWidth || th >= k.OutHeight {
		t.Fatalf("tile geometry %dx%d does not block a %dx%d image", tw, th, k.OutWidth, k.OutHeight)
	}
	src := coordSource{}
	want, err := ck.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		got, err := ck.EvalParallel(src, workers)
		if err != nil {
			t.Fatalf("EvalParallel(%d): %v", workers, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("tiled output differs from serial at %d workers (tiles %dx%d)", workers, tw, th)
		}
	}
}

// TestTiledErrorDeterministic pins the blocked driver's error semantics: a
// data-dependent fault must be reported at exactly the coordinate and with
// exactly the message the serial per-sample scan produces, for every
// worker count, even when the faulting sample sits in a late tile while an
// earlier-index tile also faults.
func TestTiledErrorDeterministic(t *testing.T) {
	// table has 128 entries, the index is the input byte: every sample
	// whose input is >= 128 faults, which happens all over the grid.
	table := make([]byte, 128)
	for i := range table {
		table[i] = byte(i * 3)
	}
	idx := &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{Load(0, 0, 0)}}
	tree := &Expr{Op: OpTable, Table: table, Elem: 1, Args: []*Expr{idx}}
	k := wideKernel(tree)
	ck, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	src := coordSource{}
	_, serr := ck.Eval(src)
	if serr == nil {
		t.Fatal("fault kernel must error serially")
	}
	for _, workers := range []int{1, 2, 5, 16} {
		_, perr := ck.EvalParallel(src, workers)
		if perr == nil {
			t.Fatalf("EvalParallel(%d): fault kernel must error", workers)
		}
		if perr.Error() != serr.Error() {
			t.Fatalf("EvalParallel(%d) error %q differs from serial %q", workers, perr, serr)
		}
	}
}

// TestWorkersCappedByWork pins the worker-count cap: workers never exceed
// the number of independent tiles, so a 3-row image never spins up 16
// goroutines' worth of executors — a small image collapses to one worker
// — while a wide short image still gets one worker per column tile.
func TestWorkersCappedByWork(t *testing.T) {
	k := &Kernel{Name: "short", OutWidth: 64, OutHeight: 3, Channels: 1,
		Trees: []*Expr{Load(0, 0, 0)}}
	ck, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, requested := range []int{16, 3, 2, 1, 0} {
		got := ck.Workers(requested)
		if got < 1 || got > 3 {
			t.Errorf("Workers(%d) on a 64x3 kernel = %d, want within [1, 3]", requested, got)
		}
	}
	// A wide short image with a fat register file tiles in x, so useful
	// parallelism can exceed the row count.
	args := make([]*Expr, 0, 40)
	for i := 0; i < 40; i++ {
		args = append(args, Bin(OpMul, 4,
			&Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{Load(i%5-2, i/5%5-2, 0)}},
			&Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{Load(i/25-2, i%25/5-2, 0)}}))
	}
	wide := &Kernel{Name: "wideshort", OutWidth: 1500, OutHeight: 3, Channels: 1,
		OriginX: 2, OriginY: 2, Trees: []*Expr{{Op: OpAdd, Width: 4, Args: args}}}
	wck, err := wide.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tw, th := wck.tileSize()
	tiles := ((wide.OutWidth + tw - 1) / tw) * ((wide.OutHeight + th - 1) / th)
	if tiles <= 3 {
		t.Fatalf("wide-short kernel only blocks into %d tiles; the test needs x-tiling", tiles)
	}
	if got := wck.Workers(64); got != tiles {
		t.Errorf("Workers(64) on a %d-tile kernel = %d, want %d", tiles, got, tiles)
	}
	// The cap must hold end to end, not just in the accessor.
	for _, kk := range []*CompiledKernel{ck, wck} {
		out, err := kk.EvalParallel(coordSource{}, 16)
		if err != nil {
			t.Fatal(err)
		}
		want, err := kk.Eval(coordSource{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, want) {
			t.Errorf("%s: capped parallel output differs from serial", kk.Name)
		}
	}
}

// TestFoldedConstantsDoNotWidenLanes pins two compiler interactions the
// width pass depends on: pool constants left behind by constant folding
// (float bit patterns especially) must not inflate the inferred lane
// width, and constant-folded sum operands must merge into the sumtaps
// bias rather than surviving as per-sample register adds.
func TestFoldedConstantsDoNotWidenLanes(t *testing.T) {
	load := func() *Expr {
		return &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{Load(0, 0, 0)}}
	}
	// FPToInt(2.5 + 0.5) folds to the integer 3, leaving float constants
	// in the pool that nothing references.
	folded := &Expr{Op: OpFPToInt, Width: 4, Args: []*Expr{
		{Op: OpFAdd, Args: []*Expr{ConstF(2.5), ConstF(0.5)}}}}
	tree := Bin(OpAdd, 4, load(), folded)
	p, err := CompileExpr(tree)
	if err != nil {
		t.Fatal(err)
	}
	if p.LaneBits() > 16 {
		t.Errorf("folded float constants widened lanes to %d, want <= 16:\n%s", p.LaneBits(), p.Disasm())
	}
	merged := false
	for i := range p.insts {
		if in := &p.insts[i]; in.op == opSumTaps {
			if in.val != 3 || len(in.args) != 1 {
				t.Errorf("folded constant not merged into the sum bias (bias %d, %d register args):\n%s",
					in.val, len(in.args), p.Disasm())
			}
			merged = true
		}
	}
	if !merged {
		t.Fatalf("expected a sumtaps instruction:\n%s", p.Disasm())
	}

	// A float subtree consumed as an integer reads as zero: its (pure)
	// float instructions go dead and must neither widen lanes nor
	// derail row execution; its loads keep their fault checks.
	deadFloat := Bin(OpAdd, 4, load(),
		&Expr{Op: OpIntToFP, SrcWidth: 1, Args: []*Expr{Load(1, 1, 0)}})
	p2, err := CompileExpr(deadFloat)
	if err != nil {
		t.Fatal(err)
	}
	if p2.LaneBits() > 16 {
		t.Errorf("dead float instructions widened lanes to %d, want <= 16:\n%s", p2.LaneBits(), p2.Disasm())
	}
	for _, tree := range []*Expr{tree, deadFloat} {
		k := &Kernel{Name: "fold", OutWidth: 6, OutHeight: 4, Channels: 1,
			OriginX: 1, OriginY: 1, Trees: []*Expr{tree}}
		src := PlaneSource{P: diffPlane()}
		want, err := k.Eval(src)
		if err != nil {
			t.Fatal(err)
		}
		ck, err := k.Compile()
		if err != nil {
			t.Fatal(err)
		}
		got, err := ck.Eval(src)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("narrowed execution differs from interpreter\ntree: %s", tree)
		}
	}
}
