// Ahead-of-time Go source generation.  This is the reproduction's
// counterpart of the paper's final step: Helium does not stop at an IR it
// can interpret — it regenerates first-class source (Halide there, Go
// here) and lets the host toolchain optimize it.  Generate lowers a lifted
// kernel's register programs to a standalone package of fully-inlined,
// width-narrowed row loops:
//
//   - each (kernel, channel) becomes one Go function whose body is the
//     register program in SSA form — no instruction dispatch, no register
//     file, just local variables the compiler allocates to machine
//     registers;
//   - arithmetic runs in the narrowest lane type the width-inference pass
//     proved (uint8/uint16/uint32), with masking elided wherever the lane
//     width already wraps identically;
//   - constants, tap offsets and magic-division multipliers fold into
//     literals; 16-bit-and-under lanes use a 32-bit magic multiply that
//     needs no 128-bit product at all;
//   - min/max/clamp emit as Go's branch-free min/max builtins, and the
//     per-row bounds check is hoisted so the hot loop carries no tap
//     bounds tests of its own.
//
// Execution semantics — values, error positions and error messages — are
// bit-identical to the interpreter and the register executor; the
// differential tests in codegen_test.go compile and run generated code
// with the real Go toolchain to prove it.
package ir

import (
	"fmt"
	"go/format"
	"math"
	"sort"
	"strings"

	"helium/internal/schedule"
)

// laneTypeName maps a lane width to the Go type generated code computes in.
func laneTypeName(bits int) string {
	switch bits {
	case 8:
		return "uint8"
	case 16:
		return "uint16"
	case 32:
		return "uint32"
	}
	return "uint64"
}

// signedTypeName is the same-width signed type used for sign-extension and
// signed comparison in generated code.
func signedTypeName(bits int) string {
	switch bits {
	case 8:
		return "int8"
	case 16:
		return "int16"
	case 32:
		return "int32"
	}
	return "int64"
}

// callSyms maps the known library calls to their Go spellings.
var callSyms = map[string]string{
	"sqrt":  "math.Sqrt",
	"floor": "math.Floor",
	"ceil":  "math.Ceil",
	"exp":   "math.Exp",
	"log":   "math.Log",
}

// goIdent turns a kernel name into an exported-safe Go identifier chunk.
func goIdent(name string) string {
	var b strings.Builder
	up := true
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z':
			if up {
				r = r - 'a' + 'A'
			}
			b.WriteRune(r)
			up = false
		case r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' && b.Len() > 0:
			b.WriteRune(r)
			up = false
		default:
			up = true
		}
	}
	if b.Len() == 0 {
		return "K"
	}
	return b.String()
}

// progGen emits one channel program as a row function.
type progGen struct {
	p  *Program
	b  *strings.Builder
	fg *fileGen

	bits int    // lane width
	T    string // lane type
	S    string // signed lane type

	c      int // channel this function renders
	kernel string
	// cvar spells the channel as a function parameter `c` instead of the
	// literal g.c, so structurally identical channel programs render to
	// identical bodies and collapse into one shared row function.
	cvar bool

	// isFloat[i] marks instructions computing in the float domain.
	isFloat []bool
	// used[i] marks instructions whose VALUE is consumed.  Dead pure
	// instructions (domain-coercion leftovers) are not emitted at all;
	// dead fault-capable instructions emit only their runtime checks, in
	// program order, so generated code faults exactly where the register
	// executor does.
	used []bool
	// alias[i] >= 0 redirects instruction i to the register whose value
	// it provably equals (no-op extensions the width pass discharges);
	// aliased instructions are not emitted.
	alias []int32
	// tabVars[i] names the package-level table literal of instruction i.
	tabVars map[int]string
	// offVars[i] / tapOffVars[i] name the per-call tap offset locals.
	offVars    map[int]string
	tapOffVars map[int][]string
	// storeFn overrides the per-sample store the loop ends with (the
	// reduction emitter accumulates into bins instead of storing a byte).
	storeFn func(w func(string, ...any))

	// xTerm spells the current sample index in emitted statements: "x" in
	// the rolled loops, "x+3" inside a batch-unrolled lane block.
	xTerm string
	// bceSlice maps a tap offset local ("o2") to the row slice hoisted
	// over it ("s2") in the bounds-check-free fast path; nil elsewhere.
	bceSlice map[string]string
	// bceDst names the re-sliced output row in the bounds-check-free fast
	// path; empty elsewhere (the store then spells dst[x*step]).
	bceDst string
	// bceIdx spells the ELEMENT index inside the head-cutting loops: a
	// lane constant ("0".."7" in the batch block, "0" in the tail) while
	// xTerm keeps the running sample coordinate for fault reporting.
	// Constant element indexes against slices whose heads advance in
	// lockstep are the one chunked idiom the prove pass discharges fully;
	// counted `s[x+k]` forms all keep at least the +k lanes checked.
	bceIdx string
	// bceTapIdx spells the ELEMENT index of the advancing TAP slices when
	// it differs from bceIdx — the strided batch loop of an index-mapped
	// kernel cuts tap slices by lanes*stride but the output by lanes, so
	// lane k reads s[k*stride] while writing d[k].  Empty when taps and
	// output advance in lockstep.
	bceTapIdx string
	// flatCh > 0 marks the flat-interleaved variant: the loop scans
	// n*flatCh contiguous samples and a fault splits the flat index back
	// into (x, c) through the variant's ok-return shape.
	flatCh int
	// noBCE suppresses the bounds-check-free fast path (reductions whose
	// bin store the compiler could not prove in-bounds).
	noBCE bool
	// mapped marks an affine index-mapped kernel (a resize): mx and my
	// are the normalized per-axis maps and orgX/orgY the kernel origins,
	// all baked into the emitted row bodies — the registration's origins
	// are zeroed so the drivers pass raw output coordinates through.
	mapped     bool
	mx, my     AxisMap
	orgX, orgY int
}

// setMap copies a compiled kernel's affine index-map state into the
// generator; identity maps leave the emitter in the classic
// translation-only mode, whose output is byte-identical to before maps
// existed.
func (g *progGen) setMap(ck *CompiledKernel) {
	if !ck.Mapped() {
		return
	}
	g.mapped = true
	nx, dx, ox := ck.MapX.Norm()
	ny, dy, oy := ck.MapY.Norm()
	g.mx = AxisMap{Num: nx, Den: dx, Off: ox}
	g.my = AxisMap{Num: ny, Den: dy, Off: oy}
	g.orgX, g.orgY = ck.OriginX, ck.OriginY
}

// xStep is the per-sample input column advance: the x map's numerator
// for a den-1 mapped kernel, 1 for classic stencils.
func (g *progGen) xStep() int {
	if g.mapped && g.mx.Den == 1 {
		return g.mx.Num
	}
	return 1
}

// fracX reports a fractional x map — the per-sample input column is a
// floor division of the output coordinate (an upsample), so rows walk
// sample by sample instead of by a constant stride.
func (g *progGen) fracX() bool { return g.mapped && g.mx.Den != 1 }

// hasTableIn reports whether the program performs stage-input table
// lookups, which need the `tbl := img.Tbl` hoist in the preamble.
func (g *progGen) hasTableIn() bool {
	for i := range g.p.insts {
		if g.p.insts[i].op == OpTableIn {
			return true
		}
	}
	return false
}

// mapExpr spells m.Apply(v)+org as Go source: num*v+off for den 1,
// floorDiv(num*v+off, den)+org otherwise.
func mapExpr(m AxisMap, v string, org int) string {
	var s string
	if m.Den == 1 {
		switch {
		case m.Num == 0:
			s = "0"
		case m.Num == 1:
			s = v
		default:
			s = fmt.Sprintf("%d*%s", m.Num, v)
		}
		return addConst(s, m.Off+org)
	}
	in := v
	switch {
	case m.Num == 0:
		in = "0"
	case m.Num != 1:
		in = fmt.Sprintf("%d*%s", m.Num, v)
	}
	if m.Off != 0 {
		in = fmt.Sprintf("%s%+d", in, m.Off)
	}
	s = fmt.Sprintf("floorDiv(%s, %d)", in, m.Den)
	return addConst(s, org)
}

// addConst appends a signed constant term to an expression.
func addConst(s string, d int) string {
	switch {
	case d > 0:
		return fmt.Sprintf("%s + %d", s, d)
	case d < 0:
		return fmt.Sprintf("%s - %d", s, -d)
	}
	return s
}

// errX spells the input x coordinate of a checked-load fault for the tap
// delta dx, matching the register executors' mapped-coordinate reports.
func (g *progGen) errX(dx int32) string {
	switch {
	case g.fracX():
		return fmt.Sprintf("xi+(%d)", dx)
	case g.xStep() != 1:
		return fmt.Sprintf("xbase+x*%d+(%d)", g.xStep(), dx)
	}
	return fmt.Sprintf("xbase+x+(%d)", dx)
}

// errXBase spells the input x coordinate of a checked opSumTaps fault
// (the executors report the sample's base coordinate, not the tap's).
func (g *progGen) errXBase() string {
	switch {
	case g.fracX():
		return "xi"
	case g.xStep() != 1:
		return fmt.Sprintf("xbase+x*%d", g.xStep())
	}
	return "xbase+x"
}

// bceLanes is the unroll factor of the bounds-check-free batch loop: 8
// samples per iteration amortizes the loop control and gives the
// compiler straight-line blocks to schedule, while the scalar tail keeps
// any n exact.
const bceLanes = 8

// fileGen tracks file-wide state: emitted tables (deduplicated by
// content) and required imports.
type fileGen struct {
	tables    map[string]string // fingerprint key -> var name
	tableDefs *strings.Builder
	needMath  bool
	needBits  bool
	needFmt   bool
}

// GenKernel is one unit of ahead-of-time generation: a stencil pipeline
// of one or more stages (multi-stage kernels chain through intermediate
// buffers), a reduction, or stencil stages chained into a final
// reduction.
type GenKernel struct {
	Name string
	// Stages holds the stencil stages in execution order.  At least one of
	// Stages and Red must be set; when both are, the last stage's output
	// becomes the reduction's input image.
	Stages []*Kernel
	// Red is the reduction (for example a histogram).
	Red *Reduction
	// RedFirst, with both Red and Stages set, reverses the chaining: the
	// reduction runs FIRST, over the input image, and its serialized
	// table binds as the stages' table input (the stage-input lookups a
	// histogram-equalization LUT performs); the last stage's output is
	// the kernel result.
	RedFirst bool
	// Sched, when non-nil, is the tuned default schedule embedded in the
	// registration (EvalTuned runs it; Eval stays the serial reference).
	Sched *schedule.Schedule
}

// Generate emits the Go source of a package holding ahead-of-time
// compiled forms of the given single-stage kernels (which must have
// distinct names).  Multi-stage pipelines and reductions go through
// GenerateUnits.
func Generate(pkg string, kernels []*Kernel) (string, error) {
	units := make([]GenKernel, len(kernels))
	for i, k := range kernels {
		units[i] = GenKernel{Name: k.Name, Stages: []*Kernel{k}}
	}
	return GenerateUnits(pkg, units)
}

// GenerateUnits emits the Go source of a package holding ahead-of-time
// compiled forms of the given generation units.  The output is
// deterministic: units are ordered by name, and all numbering is
// structural.
func GenerateUnits(pkg string, units []GenKernel) (string, error) {
	ks := append([]GenKernel(nil), units...)
	sort.Slice(ks, func(i, j int) bool { return ks[i].Name < ks[j].Name })
	for i := range ks {
		if i > 0 && ks[i].Name == ks[i-1].Name {
			return "", fmt.Errorf("ir: generate: duplicate kernel name %q", ks[i].Name)
		}
		if len(ks[i].Stages) == 0 && ks[i].Red == nil {
			return "", fmt.Errorf("ir: generate: kernel %q must have stages, a reduction, or both", ks[i].Name)
		}
	}

	fg := &fileGen{tables: map[string]string{}, tableDefs: &strings.Builder{}}
	var body strings.Builder
	for _, u := range ks {
		switch {
		case u.Red != nil && len(u.Stages) == 0:
			if err := genReduction(&body, fg, u.Name, u.Red, u.Sched); err != nil {
				return "", err
			}
		case u.Red == nil && len(u.Stages) == 1:
			k := u.Stages[0]
			if k.Name != u.Name {
				kc := *k
				kc.Name = u.Name
				k = &kc
			}
			ck, err := k.Compile()
			if err != nil {
				return "", fmt.Errorf("ir: generate %s: %w", u.Name, err)
			}
			if err := genKernel(&body, fg, k, ck, u.Sched); err != nil {
				return "", err
			}
		default:
			if err := genStaged(&body, fg, u); err != nil {
				return "", err
			}
		}
	}

	var out strings.Builder
	out.WriteString("// Code generated by \"helium gen\"; DO NOT EDIT.\n\n")
	fmt.Fprintf(&out, "package %s\n\n", pkg)
	var imports []string
	if fg.needFmt {
		imports = append(imports, `"fmt"`)
	}
	if fg.needMath {
		imports = append(imports, `"math"`)
	}
	if fg.needBits {
		imports = append(imports, `"math/bits"`)
	}
	if len(imports) > 0 {
		fmt.Fprintf(&out, "import (\n")
		for _, im := range imports {
			fmt.Fprintf(&out, "\t%s\n", im)
		}
		fmt.Fprintf(&out, ")\n\n")
	}
	out.WriteString(fg.tableDefs.String())
	out.WriteString(body.String())
	formatted, err := format.Source([]byte(out.String()))
	if err != nil {
		return "", fmt.Errorf("ir: generate: emitted source does not parse: %w\n%s", err, out.String())
	}
	return string(formatted), nil
}

// rowSet records how one compiled kernel's row functions were emitted:
// one function per channel, or — when every channel program renders to an
// identical body — one shared channel-parameterized function plus a thin
// whole-kernel wrapper that loops the channels.
type rowSet struct {
	lanes  []string
	rows   []string // per-channel function names; nil when shared
	rowAll string   // wrapper name when the channels collapsed
}

// regLines writes the registration fields of the row set at the given
// indent.
func (rs *rowSet) regLines(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sLaneBits: []int{%s},\n", indent, strings.Join(rs.lanes, ", "))
	if rs.rowAll != "" {
		fmt.Fprintf(b, "%sRowAll:   %s,\n", indent, rs.rowAll)
		return
	}
	fmt.Fprintf(b, "%sRows:     []RowFunc{%s},\n", indent, strings.Join(rs.rows, ", "))
}

// channelBodies renders every channel program with the channel spelled as
// a parameter, against scratch file state, so structural equality of the
// channel programs reduces to string equality of the bodies.  One scratch
// fileGen is shared across the channels: table names intern by content
// there, so channels applying the same table render the same token while
// channels applying different tables render different ones — distinct
// LUTs must never collapse into one shared body.
func channelBodies(ck *CompiledKernel) ([]string, error) {
	out := make([]string, len(ck.Progs))
	scratch := &fileGen{tables: map[string]string{}, tableDefs: &strings.Builder{}}
	for c, p := range ck.Progs {
		var b strings.Builder
		g := &progGen{
			p: p, fg: scratch, b: &b,
			bits: p.width.laneBits,
			c:    c, cvar: true, kernel: "X",
		}
		g.T = laneTypeName(g.bits)
		g.S = signedTypeName(g.bits)
		g.setMap(ck)
		if err := g.emitRowFunc("shared"); err != nil {
			return nil, err
		}
		out[c] = b.String()
	}
	return out, nil
}

// emitRowSet emits one compiled kernel's row functions.  prefix names the
// function family (for example "rowSharpen" or "rowBlur2pS0").
func emitRowSet(b *strings.Builder, fg *fileGen, what string, ck *CompiledKernel, prefix string) (rowSet, error) {
	rs := rowSet{lanes: make([]string, len(ck.Progs))}
	for c, p := range ck.Progs {
		rs.lanes[c] = fmt.Sprint(p.LaneBits())
	}

	if len(ck.Progs) > 1 {
		bodies, err := channelBodies(ck)
		if err != nil {
			return rs, fmt.Errorf("%s: %w", what, err)
		}
		same := true
		for _, body := range bodies[1:] {
			if body != bodies[0] {
				same = false
				break
			}
		}
		if same {
			shared := prefix
			rs.rowAll = prefix + "All"
			g := &progGen{
				p: ck.Progs[0], fg: fg, b: b,
				bits: ck.Progs[0].width.laneBits,
				c:    0, cvar: true, kernel: prefix,
			}
			g.T = laneTypeName(g.bits)
			g.S = signedTypeName(g.bits)
			g.setMap(ck)
			if err := g.emitRowFunc(shared); err != nil {
				return rs, fmt.Errorf("%s: %w", what, err)
			}
			// On the flat-interleaved layout the whole row is one
			// contiguous run of n*channels samples, so a second variant
			// scans it as a single flat loop — the only shape on which a
			// multi-channel kernel reaches the bounds-check-free batch
			// path (the per-channel calls below run at step == channels).
			flat := ""
			gf := &progGen{
				p: ck.Progs[0], fg: fg, b: b,
				bits: ck.Progs[0].width.laneBits,
				c:    0, cvar: true, kernel: prefix,
				flatCh: len(ck.Progs),
			}
			gf.T = laneTypeName(gf.bits)
			gf.S = signedTypeName(gf.bits)
			gf.setMap(ck)
			// The flat scan folds x and c into one index, which an index
			// map would have to divide back apart — mapped kernels keep
			// the per-channel path.
			if gf.hasLoads() && !ck.Mapped() {
				flat = prefix + "Flat"
				if err := gf.emitFlatRowFunc(flat); err != nil {
					return rs, fmt.Errorf("%s: %w", what, err)
				}
			}
			fmt.Fprintf(b, "// %s renders all %d channels of one output row through the shared\n", rs.rowAll, len(ck.Progs))
			fmt.Fprintf(b, "// channel body, with the reference x-then-c error selection.\n")
			fmt.Fprintf(b, "func %s(dst []byte, img *Image, y, xbase, n int) (int, int, error) {\n", rs.rowAll)
			if flat != "" {
				fmt.Fprintf(b, "\tif img.PixStep == %d && img.ChanStep == 1 {\n", len(ck.Progs))
				fmt.Fprintf(b, "\t\tif x, c, err, ok := %s(dst, img, y, xbase, n); ok {\n", flat)
				fmt.Fprintf(b, "\t\t\treturn x, c, err\n\t\t}\n\t}\n")
			}
			fmt.Fprintf(b, "\terrX, errC := -1, -1\n")
			fmt.Fprintf(b, "\tvar firstErr error\n")
			fmt.Fprintf(b, "\tfor c := 0; c < %d; c++ {\n", len(ck.Progs))
			fmt.Fprintf(b, "\t\tx, err := %s(dst[c:], %d, img, y, xbase, n, c)\n", shared, len(ck.Progs))
			fmt.Fprintf(b, "\t\tif err != nil && (errX < 0 || x < errX) {\n")
			fmt.Fprintf(b, "\t\t\terrX, errC, firstErr = x, c, err\n")
			fmt.Fprintf(b, "\t\t}\n\t}\n")
			fmt.Fprintf(b, "\treturn errX, errC, firstErr\n}\n\n")
			return rs, nil
		}
	}

	rs.rows = make([]string, len(ck.Progs))
	for c, p := range ck.Progs {
		rs.rows[c] = fmt.Sprintf("%sC%d", prefix, c)
		g := &progGen{
			p: p, fg: fg, b: b,
			bits: p.width.laneBits,
			c:    c, kernel: prefix,
		}
		g.T = laneTypeName(g.bits)
		g.S = signedTypeName(g.bits)
		g.setMap(ck)
		if err := g.emitRowFunc(rs.rows[c]); err != nil {
			return rs, fmt.Errorf("%s channel %d: %w", what, c, err)
		}
	}
	return rs, nil
}

// emitSched writes the kernel's tuned default schedule when it differs
// from the reference serial-materialize strategy.  Workers, fusion,
// window and per-stage tile extents embed (tiles drive the generated
// runtime's cache-blocked driver and, at one worker, the baked serial
// tile nest); lane overrides have no counterpart in generated code — the
// row loops are fully inlined at fixed lanes — so they do not embed.
func emitSched(b *strings.Builder, sc *schedule.Schedule) {
	if sc == nil {
		return
	}
	hasTiles := false
	for _, st := range sc.Stages {
		if st.TileW > 0 || st.TileH > 0 {
			hasTiles = true
		}
	}
	if sc.Workers == 0 && sc.FusionKind() == schedule.Materialize && sc.WindowRows == 0 && !hasTiles {
		return
	}
	fmt.Fprintf(b, "\t\tSched: ScheduleSpec{Workers: %d, Fusion: %q, WindowRows: %d",
		sc.Workers, string(sc.FusionKind()), sc.WindowRows)
	if hasTiles {
		fmt.Fprintf(b, ", Stages: []StageSched{")
		for i, st := range sc.Stages {
			if i > 0 {
				fmt.Fprintf(b, ", ")
			}
			fmt.Fprintf(b, "{TileW: %d, TileH: %d}", st.TileW, st.TileH)
		}
		fmt.Fprintf(b, "}")
	}
	fmt.Fprintf(b, "},\n")
}

// emitTunedDriver writes a serial driver whose loop nest carries the
// tuned tile extents as literal bounds — the schedule baked into the
// code itself.  EvalTuned dispatches to it when the embedded schedule
// resolves to one worker; the parallel path keeps the generic tiled
// driver, which reads the same tiles from the embedded ScheduleSpec.
func emitTunedDriver(b *strings.Builder, fg *fileGen, k *Kernel, rs *rowSet, name string, tileW, tileH int) {
	fg.needFmt = true
	ch := k.Channels
	fmt.Fprintf(b, "// %s renders through the tuned %dx%d tile blocking baked in as\n", name, tileW, tileH)
	fmt.Fprintf(b, "// literal loop bounds (the embedded schedule's serial fast path).\n")
	fmt.Fprintf(b, "func %s(sc *Scratch, img *Image, outW, outH int) ([]byte, error) {\n", name)
	fmt.Fprintf(b, "\tconst tileW, tileH = %d, %d\n", tileW, tileH)
	fmt.Fprintf(b, "\tout := sc.outBuf(outW * outH * %d)\n", ch)
	fmt.Fprintf(b, "\tvar first *rowErr\n")
	fmt.Fprintf(b, "\tfor ty := 0; ty < outH; ty += tileH {\n")
	fmt.Fprintf(b, "\t\tth := outH - ty\n\t\tif th > tileH {\n\t\t\tth = tileH\n\t\t}\n")
	fmt.Fprintf(b, "\t\tfor tx := 0; tx < outW; tx += tileW {\n")
	fmt.Fprintf(b, "\t\t\ttw := outW - tx\n\t\t\tif tw > tileW {\n\t\t\t\ttw = tileW\n\t\t\t}\n")
	fmt.Fprintf(b, "\t\t\tfor y := ty; y < ty+th; y++ {\n")
	switch {
	case rs.rowAll != "":
		fmt.Fprintf(b, "\t\t\t\tx, c, err := %s(out[(y*outW+tx)*%d:], img, y+%d, %d+tx, tw)\n", rs.rowAll, ch, k.OriginY, k.OriginX)
		fmt.Fprintf(b, "\t\t\t\tif err != nil {\n")
		fmt.Fprintf(b, "\t\t\t\t\te := &rowErr{y: y, x: x + tx, c: c, err: err}\n")
	case len(rs.rows) == 1:
		fmt.Fprintf(b, "\t\t\t\tx, err := %s(out[(y*outW+tx)*%d:], %d, img, y+%d, %d+tx, tw)\n", rs.rows[0], ch, ch, k.OriginY, k.OriginX)
		fmt.Fprintf(b, "\t\t\t\tif err != nil {\n")
		fmt.Fprintf(b, "\t\t\t\t\te := &rowErr{y: y, x: x + tx, c: 0, err: err}\n")
	default:
		// Distinct per-channel bodies: replicate the reference x-then-c
		// selection (the first channel keeps ties).
		fmt.Fprintf(b, "\t\t\t\terrX, errC := -1, -1\n")
		fmt.Fprintf(b, "\t\t\t\tvar ferr error\n")
		for c, row := range rs.rows {
			fmt.Fprintf(b, "\t\t\t\tif x, err := %s(out[(y*outW+tx)*%d+%d:], %d, img, y+%d, %d+tx, tw); err != nil && (errX < 0 || x < errX) {\n",
				row, ch, c, ch, k.OriginY, k.OriginX)
			fmt.Fprintf(b, "\t\t\t\t\terrX, errC, ferr = x, %d, err\n\t\t\t\t}\n", c)
		}
		fmt.Fprintf(b, "\t\t\t\tif ferr != nil {\n")
		fmt.Fprintf(b, "\t\t\t\t\te := &rowErr{y: y, x: errX + tx, c: errC, err: ferr}\n")
	}
	fmt.Fprintf(b, "\t\t\t\t\tif first == nil || e.before(first) {\n\t\t\t\t\t\tfirst = e\n\t\t\t\t\t}\n")
	fmt.Fprintf(b, "\t\t\t\t\tbreak\n\t\t\t\t}\n")
	fmt.Fprintf(b, "\t\t\t}\n\t\t}\n\t}\n")
	fmt.Fprintf(b, "\tif first != nil {\n")
	fmt.Fprintf(b, "\t\treturn nil, fmt.Errorf(\"ir: kernel %s at (%%d,%%d,%%d): %%w\", first.x, first.y, first.c, first.err)\n", k.Name)
	fmt.Fprintf(b, "\t}\n\treturn out, nil\n}\n\n")
}

// genKernel emits the registration literal and the row functions of one
// single-stage kernel.
func genKernel(b *strings.Builder, fg *fileGen, k *Kernel, ck *CompiledKernel, sc *schedule.Schedule) error {
	ident := goIdent(k.Name)
	fmt.Fprintf(b, "// %s is the lifted stencil\n", k.Name)
	for _, line := range strings.Split(strings.TrimRight(k.String(), "\n"), "\n") {
		fmt.Fprintf(b, "//\n//\t%s\n", line)
	}
	var fns strings.Builder
	rs, err := emitRowSet(&fns, fg, fmt.Sprintf("ir: generate %s", k.Name), ck, "row"+ident)
	if err != nil {
		return err
	}
	kreg := k
	if ck.Mapped() {
		// The affine index maps and the origins are baked into the row
		// bodies, so the registration's origins stay zero and the
		// drivers pass raw output coordinates through.
		kc := *k
		kc.OriginX, kc.OriginY = 0, 0
		kreg = &kc
	}
	tuned := ""
	if sc != nil {
		if st := sc.StageAt(0); st.TileW > 0 && st.TileH > 0 {
			tuned = "tuned" + ident
			emitTunedDriver(&fns, fg, kreg, &rs, tuned, st.TileW, st.TileH)
		}
	}
	fmt.Fprintf(b, "func init() {\n")
	fmt.Fprintf(b, "\tregister(&Kernel{\n")
	fmt.Fprintf(b, "\t\tName:          %q,\n", k.Name)
	fmt.Fprintf(b, "\t\tChannels:      %d,\n", k.Channels)
	fmt.Fprintf(b, "\t\tOriginX:       %d,\n", kreg.OriginX)
	fmt.Fprintf(b, "\t\tOriginY:       %d,\n", kreg.OriginY)
	fmt.Fprintf(b, "\t\tDefaultWidth:  %d,\n", k.OutWidth)
	fmt.Fprintf(b, "\t\tDefaultHeight: %d,\n", k.OutHeight)
	rs.regLines(b, "\t\t")
	if tuned != "" {
		fmt.Fprintf(b, "\t\tTuned:    %s,\n", tuned)
	}
	emitSched(b, sc)
	fmt.Fprintf(b, "\t})\n}\n\n")
	b.WriteString(fns.String())
	return nil
}

// emitFusedDriver writes the footprint-specialized sliding-window strip
// body for a two-stage planar pipeline: the consumer's recorded row
// footprint becomes literal ring geometry (ring height, slide amount,
// pull horizon), replacing the generic fusedProduce dispatch.  The
// runtime calls it only at the minimal window — an explicit WindowRows
// falls back to the generic ring — and only after evalStagesFused has
// validated the footprint, so the body may assume in-range reads.
// Returns the emitted function's name, or "" when the pipeline shape
// does not specialize (more than two stages, interleaved intermediates,
// or collapsed channel bodies).
func emitFusedDriver(b *strings.Builder, u GenKernel, cks []*CompiledKernel, sets []rowSet, ident string) string {
	if len(u.Stages) != 2 {
		return ""
	}
	for si, k := range u.Stages {
		if k.Channels != 1 || sets[si].rowAll != "" || len(sets[si].rows) != 1 {
			return ""
		}
	}
	g := cks[1].readFootprint()
	minDY, maxDY := g.loY, g.hiY
	ringRows := maxDY - minDY + 1
	name := "fused" + ident
	fmt.Fprintf(b, "// %s streams stage 0 through a %d-row ring sized by stage 1's\n", name, ringRows)
	fmt.Fprintf(b, "// literal row footprint [%d,%d] — the baked sliding-window strip body.\n", minDY, maxDY)
	fmt.Fprintf(b, "func %s(sc *Scratch, img *Image, out []byte, ws, hs []int, s0, s1 int, first, drain bool, errs []*rowErr) {\n", name)
	fmt.Fprintf(b, "\tconst maxDY = %d\n", maxDY)
	fmt.Fprintf(b, "\tconst ringRows = %d\n", ringRows)
	fmt.Fprintf(b, "\tw0, w1 := ws[0], ws[1]\n")
	fmt.Fprintf(b, "\tlo0 := s0 + %d\n", minDY)
	fmt.Fprintf(b, "\tif lo0 < 0 || first {\n\t\tlo0 = 0\n\t}\n")
	fmt.Fprintf(b, "\thi0 := s1 + maxDY\n")
	fmt.Fprintf(b, "\tif hi0 > hs[0] || drain {\n\t\thi0 = hs[0]\n\t}\n")
	fmt.Fprintf(b, "\tring := sc.buf(0, ringRows*w0)\n")
	fmt.Fprintf(b, "\trim := sc.img(0)\n")
	fmt.Fprintf(b, "\t*rim = Image{Pix: ring, Base: -lo0 * w0, Stride: w0, PixStep: 1, Tbl: img.Tbl}\n")
	fmt.Fprintf(b, "\tyBase, cur := lo0, lo0\n")
	fmt.Fprintf(b, "\tproduce := func(y int) bool {\n")
	fmt.Fprintf(b, "\t\tph := y - yBase\n")
	fmt.Fprintf(b, "\t\tif ph >= ringRows {\n")
	fmt.Fprintf(b, "\t\t\tcopy(ring, ring[w0:ringRows*w0])\n")
	fmt.Fprintf(b, "\t\t\tyBase++\n")
	fmt.Fprintf(b, "\t\t\trim.Base = -yBase * w0\n")
	fmt.Fprintf(b, "\t\t\tph = y - yBase\n")
	fmt.Fprintf(b, "\t\t}\n")
	fmt.Fprintf(b, "\t\tx, err := %s(ring[ph*w0:], 1, img, y+%d, %d, w0)\n", sets[0].rows[0], u.Stages[0].OriginY, u.Stages[0].OriginX)
	fmt.Fprintf(b, "\t\tif err != nil {\n")
	fmt.Fprintf(b, "\t\t\terrs[0] = &rowErr{y: y, x: x, c: 0, err: err}\n")
	fmt.Fprintf(b, "\t\t\treturn false\n\t\t}\n\t\treturn true\n\t}\n")
	fmt.Fprintf(b, "\tfor y := s0; y < s1; y++ {\n")
	fmt.Fprintf(b, "\t\tfor top := y + maxDY; cur <= top && cur < hi0; cur++ {\n")
	fmt.Fprintf(b, "\t\t\tif !produce(cur) {\n\t\t\t\treturn\n\t\t\t}\n\t\t}\n")
	fmt.Fprintf(b, "\t\tx, err := %s(out[y*w1:], 1, rim, y+%d, %d, w1)\n", sets[1].rows[0], u.Stages[1].OriginY, u.Stages[1].OriginX)
	fmt.Fprintf(b, "\t\tif err != nil {\n")
	fmt.Fprintf(b, "\t\t\terrs[1] = &rowErr{y: y, x: x, c: 0, err: err}\n")
	fmt.Fprintf(b, "\t\t\tbreak\n\t\t}\n\t}\n")
	fmt.Fprintf(b, "\t// Drain: the materializing chain computes every producer row, so a\n")
	fmt.Fprintf(b, "\t// fault above the consumed range must still surface.\n")
	fmt.Fprintf(b, "\tfor ; cur < hi0; cur++ {\n")
	fmt.Fprintf(b, "\t\tif !produce(cur) {\n\t\t\treturn\n\t\t}\n\t}\n")
	fmt.Fprintf(b, "}\n\n")
	return name
}

// genStaged emits a multi-stage pipeline, optionally chained into a final
// reduction: one set of row functions per stage, chained by the runtime
// through intermediate buffers whose extents track the requested output
// size by the constant per-stage deltas recorded at lift time.  With a
// reduction the deltas are relative to the reduction's input domain and
// the last stage's output becomes the reduction's input image.
func genStaged(b *strings.Builder, fg *fileGen, u GenKernel) error {
	ident := goIdent(u.Name)
	finalW := u.Stages[len(u.Stages)-1].OutWidth
	finalH := u.Stages[len(u.Stages)-1].OutHeight
	channels := u.Stages[len(u.Stages)-1].Channels
	switch {
	case u.Red != nil && u.RedFirst:
		fmt.Fprintf(b, "// %s is the lifted reduction-fed pipeline: the table computes over\n// the input, then %d stencil stage(s) consume it\n", u.Name, len(u.Stages))
	case u.Red != nil:
		finalW, finalH = u.Red.DomW, u.Red.DomH
		channels = 1
		fmt.Fprintf(b, "// %s is the lifted %d-stage pipeline ending in a reduction\n", u.Name, len(u.Stages))
	default:
		fmt.Fprintf(b, "// %s is the lifted %d-stage stencil pipeline\n", u.Name, len(u.Stages))
	}
	redComment := func() {
		for _, line := range strings.Split(strings.TrimRight(u.Red.String(), "\n"), "\n") {
			fmt.Fprintf(b, "//\n//\t%s\n", line)
		}
	}
	if u.Red != nil && u.RedFirst {
		redComment()
	}
	for _, k := range u.Stages {
		for _, line := range strings.Split(strings.TrimRight(k.String(), "\n"), "\n") {
			fmt.Fprintf(b, "//\n//\t%s\n", line)
		}
	}
	if u.Red != nil && !u.RedFirst {
		redComment()
	}
	cks := make([]*CompiledKernel, len(u.Stages))
	for si, k := range u.Stages {
		ck, err := k.Compile()
		if err != nil {
			return fmt.Errorf("ir: generate %s stage %d: %w", u.Name, si, err)
		}
		if ck.Mapped() {
			// The staged drivers share extents and footprints across
			// stages in output coordinates; an index-mapped stage breaks
			// that accounting, so maps only generate as single-stage
			// kernels (the corpus shape).
			return fmt.Errorf("ir: generate %s stage %d: affine index-mapped stages only generate single-stage", u.Name, si)
		}
		cks[si] = ck
	}

	var fns strings.Builder
	sets := make([]rowSet, len(cks))
	for si, ck := range cks {
		rs, err := emitRowSet(&fns, fg, fmt.Sprintf("ir: generate %s stage %d", u.Name, si), ck, fmt.Sprintf("row%sS%d", ident, si))
		if err != nil {
			return err
		}
		sets[si] = rs
	}
	fused := emitFusedDriver(&fns, u, cks, sets, ident)

	fmt.Fprintf(b, "func init() {\n")
	fmt.Fprintf(b, "\tregister(&Kernel{\n")
	fmt.Fprintf(b, "\t\tName:          %q,\n", u.Name)
	fmt.Fprintf(b, "\t\tChannels:      %d,\n", channels)
	fmt.Fprintf(b, "\t\tDefaultWidth:  %d,\n", finalW)
	fmt.Fprintf(b, "\t\tDefaultHeight: %d,\n", finalH)
	fmt.Fprintf(b, "\t\tStages: []StageSpec{\n")
	for si, k := range u.Stages {
		g := cks[si].readFootprint()
		fmt.Fprintf(b, "\t\t\t{Channels: %d, OriginX: %d, OriginY: %d, DW: %d, DH: %d, MinDY: %d, MaxDY: %d, MinDX: %d, MaxDX: %d,\n",
			k.Channels, k.OriginX, k.OriginY, k.OutWidth-finalW, k.OutHeight-finalH, g.loY, g.hiY, g.loX, g.hiX)
		sets[si].regLines(b, "\t\t\t\t")
		fmt.Fprintf(b, "\t\t\t},\n")
	}
	fmt.Fprintf(b, "\t\t},\n")
	if fused != "" {
		fmt.Fprintf(b, "\t\tFusedStrip: %s,\n", fused)
	}
	if u.Red != nil {
		rp, err := compileReduction(u.Name, u.Red)
		if err != nil {
			return err
		}
		if err := emitReductionSpec(b, &fns, fg, u.Name, ident, u.Red, rp); err != nil {
			return err
		}
		if u.RedFirst {
			fmt.Fprintf(b, "\t\tRedFirst: true,\n")
			if dw := u.Red.DomW - finalW; dw != 0 {
				fmt.Fprintf(b, "\t\tRedDW: %d,\n", dw)
			}
			if dh := u.Red.DomH - finalH; dh != 0 {
				fmt.Fprintf(b, "\t\tRedDH: %d,\n", dh)
			}
		}
	}
	emitSched(b, u.Sched)
	fmt.Fprintf(b, "\t})\n}\n\n")
	b.WriteString(fns.String())
	return nil
}

// compileReduction validates a reduction's generatable shape and lowers
// its index expression — the one compile both reduction emitters share.
func compileReduction(name string, r *Reduction) (*Program, error) {
	if r.Elem != 4 {
		return nil, fmt.Errorf("ir: generate %s: reduction bins are %d bytes; only 4-byte bins are generatable", name, r.Elem)
	}
	p, err := CompileExpr(r.Index)
	if err != nil {
		return nil, fmt.Errorf("ir: generate %s: index: %w", name, err)
	}
	if p.rootFloat {
		return nil, fmt.Errorf("ir: generate %s: float-valued reduction index is not generatable", name)
	}
	for i := range p.insts {
		if p.insts[i].op == OpTableIn {
			return nil, fmt.Errorf("ir: generate %s: reduction index with stage-input lookups is not generatable", name)
		}
	}
	return p, nil
}

// emitReductionSpec writes the Red registration field and the reduction
// row function (into fns) for a pre-compiled index program.
func emitReductionSpec(b, fns *strings.Builder, fg *fileGen, name, ident string, r *Reduction, p *Program) error {
	fmt.Fprintf(b, "\t\tRed: &ReductionSpec{\n")
	fmt.Fprintf(b, "\t\t\tBins: %d,\n", r.Bins)
	allZero := true
	for _, v := range r.Init {
		if v != 0 {
			allZero = false
		}
	}
	if !allZero {
		inits := make([]string, len(r.Init))
		for i, v := range r.Init {
			inits[i] = fmt.Sprint(uint32(v))
		}
		fmt.Fprintf(b, "\t\t\tInit: []uint32{%s},\n", strings.Join(inits, ", "))
	}
	if r.Suffix {
		fmt.Fprintf(b, "\t\t\tSuffix: true,\n")
	}
	fmt.Fprintf(b, "\t\t\tRow:  red%s,\n", ident)
	fmt.Fprintf(b, "\t\t},\n")

	g := &progGen{
		p: p, fg: fg, b: fns,
		bits:   p.width.laneBits,
		c:      0,
		kernel: ident,
	}
	g.T = laneTypeName(g.bits)
	g.S = signedTypeName(g.bits)
	if err := g.emitReductionFunc(fmt.Sprintf("red%s", ident), r); err != nil {
		return fmt.Errorf("ir: generate %s: %w", name, err)
	}
	return nil
}

// genReduction emits an accumulate-into-table kernel: a per-row
// accumulation function driven by the runtime's reduction driver.  Only
// 4-byte bins are generated (the corpus shape); wider tables would need a
// second bin type in the runtime.
func genReduction(b *strings.Builder, fg *fileGen, name string, r *Reduction, sc *schedule.Schedule) error {
	p, err := compileReduction(name, r)
	if err != nil {
		return err
	}
	ident := goIdent(name)
	fmt.Fprintf(b, "// %s is the lifted reduction\n", name)
	for _, line := range strings.Split(strings.TrimRight(r.String(), "\n"), "\n") {
		fmt.Fprintf(b, "//\n//\t%s\n", line)
	}
	var fns strings.Builder
	fmt.Fprintf(b, "func init() {\n")
	fmt.Fprintf(b, "\tregister(&Kernel{\n")
	fmt.Fprintf(b, "\t\tName:          %q,\n", name)
	fmt.Fprintf(b, "\t\tChannels:      1,\n")
	fmt.Fprintf(b, "\t\tDefaultWidth:  %d,\n", r.DomW)
	fmt.Fprintf(b, "\t\tDefaultHeight: %d,\n", r.DomH)
	fmt.Fprintf(b, "\t\tLaneBits:      []int{%d},\n", p.LaneBits())
	if err := emitReductionSpec(b, &fns, fg, name, ident, r, p); err != nil {
		return err
	}
	emitSched(b, sc)
	fmt.Fprintf(b, "\t})\n}\n\n")
	b.WriteString(fns.String())
	return nil
}

// floatness computes per-instruction float-domain flags.
func (g *progGen) floatness() {
	g.isFloat = make([]bool, len(g.p.insts))
	for i := range g.p.insts {
		in := &g.p.insts[i]
		if in.op.IsFloat() || (in.op == OpSelect && in.fl) {
			g.isFloat[i] = true
		}
	}
}

// operands lists the register operands an instruction's emitted value form
// reads.
func operands(in *pinst) []int32 {
	switch in.op {
	case OpLoad:
		return nil
	case opSumTaps, opMulN, opAndN, opOrN, opXorN, opMinN, opMaxN:
		return in.args
	case OpSub, OpMulHi, OpShl, OpShr, OpSar, OpDiv, OpMod, OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpCmpEq, OpCmpNe, OpCmpLtS, OpCmpLeS, OpCmpLtU, OpCmpLeU:
		return []int32{in.a, in.b}
	case OpSelect:
		return []int32{in.a, in.b, in.c}
	}
	return []int32{in.a}
}

// liveness computes the value-used set backwards from the root, keeping
// the operand chains that dead fault-capable instructions still need for
// their runtime checks.
func (g *progGen) liveness() {
	p := g.p
	g.used = make([]bool, len(p.insts))
	mark := func(id int32) {
		if i := g.instIdx(id); i >= 0 {
			g.used[i] = true
		}
	}
	mark(p.root)
	for i := len(p.insts) - 1; i >= 0; i-- {
		in := &p.insts[i]
		if g.used[i] {
			for _, r := range operands(in) {
				mark(r)
			}
			continue
		}
		// Dead but fault-capable: the check still runs and still needs
		// its inputs.
		switch in.op {
		case OpDiv, OpMod:
			mark(in.b)
		case OpTable:
			if !g.tableSafe(in) {
				mark(in.a)
			}
		case OpTableIn:
			// The table is bound at run time, so the range check can
			// never be discharged at generation time.
			mark(in.a)
		}
	}
}

// instIdx maps a register id to its defining instruction index, or -1 for
// pool constants.
func (g *progGen) instIdx(id int32) int {
	n := int32(len(g.p.consts))
	if id < n {
		return -1
	}
	return int(id - n)
}

// computeAliases finds the width-change instructions whose result provably
// equals their operand (the register bound proves the extension or
// truncation cannot change the value), so references skip straight to the
// producer.
func (g *progGen) computeAliases() {
	p := g.p
	g.alias = make([]int32, len(p.insts))
	for i := range p.insts {
		g.alias[i] = -1
		in := &p.insts[i]
		hiA := p.width.hi[in.a]
		switch in.op {
		case OpZExt:
			if hiA <= in.mask {
				g.alias[i] = in.a
			}
		case OpSExt:
			if signedWidthOK(hiA, in.sh) && hiA <= in.mask {
				g.alias[i] = in.a
			}
		case OpExtract:
			if in.val == 0 && hiA <= in.mask {
				g.alias[i] = in.a
			}
		}
	}
}

// resolve chases alias chains to the register whose value is actually
// materialized.
func (g *progGen) resolve(id int32) int32 {
	for {
		i := g.instIdx(id)
		if i < 0 || g.alias[i] < 0 {
			return id
		}
		id = g.alias[i]
	}
}

// tableSafe reports whether a table lookup's index is provably in range —
// the index register's bound covers the whole table — so the generated
// code needs no per-sample check.  Only narrow lanes qualify: a 64-bit
// index can reinterpret as negative.
func (g *progGen) tableSafe(in *pinst) bool {
	if g.bits > 32 {
		return false
	}
	hi := g.p.width.hi[g.resolve(in.a)]
	return (hi+1)*uint64(in.elem) <= uint64(len(in.table))
}

// ref renders an integer-domain operand: a literal for pool constants, the
// SSA variable otherwise.  Constants are truncated to the lane width —
// sound because either they fit (width pass) or the consumer's masking
// wraps identically.
func (g *progGen) ref(id int32) string {
	id = g.resolve(id)
	if i := g.instIdx(id); i >= 0 {
		return fmt.Sprintf("v%d", i)
	}
	return g.intLit(g.p.consts[id])
}

// refT renders an integer operand with an explicit lane type: needed where
// an untyped constant literal would otherwise pick up Go's default int
// type (shift left operands, := initializers, divisor temporaries).
func (g *progGen) refT(id int32) string {
	id = g.resolve(id)
	if i := g.instIdx(id); i >= 0 {
		return fmt.Sprintf("v%d", i)
	}
	return fmt.Sprintf("%s(%s)", g.T, g.intLit(g.p.consts[id]))
}

// refInt64 renders an operand as an int64 value, matching the reference
// executor's reinterpretation of the raw register bits.
func (g *progGen) refInt64(id int32) string {
	id = g.resolve(id)
	if i := g.instIdx(id); i >= 0 {
		return fmt.Sprintf("int64(v%d)", i)
	}
	return fmt.Sprintf("int64(%d)", int64(g.p.consts[id]))
}

// refF renders a float-domain operand.
func (g *progGen) refF(id int32) string {
	id = g.resolve(id)
	if i := g.instIdx(id); i >= 0 {
		return fmt.Sprintf("f%d", i)
	}
	g.fg.needMath = true
	return fmt.Sprintf("math.Float64frombits(%#x)", g.p.consts[id])
}

// intLit renders an integer constant truncated to the lane width.
func (g *progGen) intLit(v uint64) string {
	switch g.bits {
	case 8:
		v &= 0xff
	case 16:
		v &= 0xffff
	case 32:
		v &= 0xffffffff
	}
	if v < 1024 {
		return fmt.Sprint(v)
	}
	return fmt.Sprintf("%#x", v)
}

// laneMax is the all-ones value of the lane type.
func (g *progGen) laneMax() uint64 {
	if g.bits == 64 {
		return math.MaxUint64
	}
	return 1<<uint(g.bits) - 1
}

// maskSuffix renders " & mask" when masking at the instruction's width is
// not already implied by lane wraparound, and "" when it is.
func (g *progGen) maskSuffix(mask uint64) string {
	if mask >= g.laneMax() {
		return ""
	}
	return " & " + g.intLit(mask)
}

// sxExpr renders the sign extension of an integer operand at the signed
// width encoded by sh, as a signed lane value.  For sign widths wider than
// the lane every value is provably nonnegative, so the plain unsigned
// operand is returned with signed=false.  Constant operands sign-extend at
// generation time.
func (g *progGen) sxExpr(id int32, sh uint8) (expr string, signed bool) {
	id = g.resolve(id)
	sw := 64 - int(sh)
	if sw > g.bits {
		return g.refT(id), false
	}
	if i := g.instIdx(id); i < 0 {
		return fmt.Sprintf("%s(%d)", g.S, sx(g.p.consts[id], sh)), true
	}
	shl := g.bits - sw
	if shl == 0 {
		return fmt.Sprintf("%s(%s)", g.S, g.ref(id)), true
	}
	return fmt.Sprintf("%s(%s<<%d)>>%d", g.S, g.ref(id), shl, shl), true
}

// chanExpr renders the channel coordinate of an error report: a literal
// when the function is channel-specialized, `c` (plus the tap's channel
// delta) when the channel is a parameter.
func (g *progGen) chanExpr(dc int32) string {
	if !g.cvar {
		return fmt.Sprint(g.c + int(dc))
	}
	switch {
	case dc > 0:
		return fmt.Sprintf("c+%d", dc)
	case dc < 0:
		return fmt.Sprintf("c-%d", -dc)
	}
	return "c"
}

// chanTerm renders the channel term of pos0.
func (g *progGen) chanTerm() string {
	if g.cvar {
		return "c"
	}
	return fmt.Sprint(g.c)
}

// faultRet renders the return statement reporting a fault at the current
// sample (g.xTerm).  The flat-interleaved variant scans all channels in
// one flat index, so it splits the index back into (x, c) and returns
// through its four-value ok shape.
func (g *progGen) faultRet(errExpr string) string {
	if g.flatCh > 0 {
		return fmt.Sprintf("return (%s) / %d, (%s) %% %d, %s, true", g.xTerm, g.flatCh, g.xTerm, g.flatCh, errExpr)
	}
	return fmt.Sprintf("return %s, %s", g.xTerm, errExpr)
}

// writerAt returns a statement writer at the given tab depth.  Emitted
// source is gofmt-normalized at the end, so depth only needs to keep the
// output parseable.
func (g *progGen) writerAt(indent int) func(string, ...any) {
	tabs := strings.Repeat("\t", indent)
	return func(format string, args ...any) {
		g.b.WriteString(tabs)
		fmt.Fprintf(g.b, format, args...)
		g.b.WriteString("\n")
	}
}

// offExpr renders a tap's flat offset in terms of the image geometry.
func offExpr(dx, dy, dc int32) string {
	var terms []string
	if dy != 0 {
		terms = append(terms, fmt.Sprintf("%d*img.Stride", dy))
	}
	if dx != 0 {
		terms = append(terms, fmt.Sprintf("%d*ps", dx))
	}
	if dc != 0 {
		terms = append(terms, fmt.Sprintf("%d*img.ChanStep", dc))
	}
	if len(terms) == 0 {
		return "0"
	}
	return strings.Join(terms, " + ")
}

// tableVar interns a lookup table as a deduplicated package-level literal.
// Tables are sized arrays, not slices: an array's length is a compile-time
// constant, which is what lets the Go prove pass discharge the lookup's
// bounds check inside the batch loops (a package-level slice's length is
// mutable as far as the compiler knows).
func (g *progGen) tableVar(table []byte, elem int) string {
	key := fmt.Sprintf("%x/%d/%d", tableFingerprint(table), len(table), elem)
	if name, ok := g.fg.tables[key]; ok {
		return name
	}
	name := fmt.Sprintf("tab%d", len(g.fg.tables))
	g.fg.tables[key] = name
	d := g.fg.tableDefs
	fmt.Fprintf(d, "var %s = [%d]byte{", name, len(table))
	for i, v := range table {
		if i%16 == 0 {
			d.WriteString("\n\t")
		} else {
			d.WriteString(" ")
		}
		fmt.Fprintf(d, "0x%02x,", v)
	}
	d.WriteString("\n}\n\n")
	return name
}

// collectOffsets names the per-call tap offset locals hoisted out of the
// loop, returning their definitions.
func (g *progGen) collectOffsets() (offDefs []string) {
	p := g.p
	g.offVars = map[int]string{}
	g.tapOffVars = map[int][]string{}
	nOffs := 0
	addOff := func(dx, dy, dc int32) string {
		v := fmt.Sprintf("o%d", nOffs)
		nOffs++
		offDefs = append(offDefs, fmt.Sprintf("%s := %s", v, offExpr(dx, dy, dc)))
		return v
	}
	for i := range p.insts {
		in := &p.insts[i]
		switch in.op {
		case OpLoad:
			g.offVars[i] = addOff(in.dx, in.dy, in.dc)
		case opSumTaps:
			for _, t := range in.taps {
				g.tapOffVars[i] = append(g.tapOffVars[i], addOff(t.dx, t.dy, t.dc))
			}
		}
	}
	return offDefs
}

// emitBody writes the loop halves shared by the row and reduction
// emitters: under a hoisted whole-span bounds check, first the
// bounds-check-free batch+tail path (contiguous geometry only), then the
// strided fast loop; plus the checked edge path.
func (g *progGen) emitBody(offDefs []string) error {
	b := g.b
	if len(offDefs) > 0 {
		for _, d := range offDefs {
			fmt.Fprintf(b, "\t%s\n", d)
		}
		// Hoisted bounds check: when every tap's whole x-span lies inside
		// the backing, the row loop runs with unchecked loads.  Index
		// maps widen the span by their stride; fractional maps hoist the
		// first and last mapped columns (the maps are nondecreasing, so
		// those bound every sample).
		var conds []string
		switch {
		case g.fracX():
			fmt.Fprintf(b, "\txlo := %s\n", mapExpr(g.mx, "xbase", g.orgX))
			fmt.Fprintf(b, "\txhi := %s\n", mapExpr(g.mx, "(xbase+n-1)", g.orgX))
			for i := range offDefs {
				conds = append(conds, fmt.Sprintf("spanIn(pos0+xlo*ps+o%d, pos0+xhi*ps+o%d, len(pix))", i, i))
			}
		case g.xStep() != 1:
			for i := range offDefs {
				conds = append(conds, fmt.Sprintf("spanIn(pos0+o%d, pos0+o%d+(n-1)*%d*ps, len(pix))", i, i, g.xStep()))
			}
		default:
			for i := range offDefs {
				conds = append(conds, fmt.Sprintf("spanIn(pos0+o%d, pos0+o%d+(n-1)*ps, len(pix))", i, i))
			}
		}
		fmt.Fprintf(b, "\tif n > 0 && %s {\n", strings.Join(conds, " &&\n\t\t"))
		if err := g.emitFastPath(len(offDefs)); err != nil {
			return err
		}
		if err := g.emitLoop(2, false); err != nil {
			return err
		}
		fmt.Fprintf(b, "\t\treturn -1, nil\n\t}\n")
		// Edge path: identical arithmetic with per-tap bounds checks, so
		// faults report the exact coordinate the reference executors do.
		if err := g.emitLoop(1, true); err != nil {
			return err
		}
		fmt.Fprintf(b, "\treturn -1, nil\n}\n\n")
		return nil
	}
	if err := g.emitLoop(1, false); err != nil {
		return err
	}
	fmt.Fprintf(b, "\treturn -1, nil\n}\n\n")
	return nil
}

// emitFastPath writes the bounds-check-free half of the fast path: on
// contiguous geometry (unit pixel stride, and for row functions a unit
// output step) every tap's row re-slices to exactly the loop extent, so
// the compiler's prove pass discharges each load and store in the batch
// and tail loops.  It runs inside the whole-span guard and returns on
// completion; non-contiguous geometry falls through to the strided loop.
func (g *progGen) emitFastPath(nOffs int) error {
	if g.noBCE || g.fracX() || g.xStep() < 1 {
		// Fractional index maps re-divide per sample and constant-column
		// maps never advance — neither shape head-cuts, so both keep the
		// strided rolled loop (still unchecked under the span guard).
		return nil
	}
	b := g.b
	gate := "ps == 1 && step == 1"
	if g.storeFn != nil {
		gate = "ps == 1"
	}
	fmt.Fprintf(b, "\t\tif %s {\n", gate)
	if err := g.emitBCELoops(nOffs, "n", 3); err != nil {
		return err
	}
	fmt.Fprintf(b, "\t\t\treturn -1, nil\n")
	fmt.Fprintf(b, "\t\t}\n")
	return nil
}

// emitBCELoops writes the hoisted tap re-slices, the bceLanes-wide
// unrolled batch loop and the scalar tail over lenVar samples at tab
// depth d.  Everything between the bce:begin/bce:end markers must compile
// with zero bounds checks — the repository's check_bce gate greps the
// compiler's diagnostics against these markers.
//
// The loops are head-cutting, not counted: every live row slice (and the
// output row) advances in lockstep — s = s[8:] per batch block, s = s[1:]
// per tail sample — and elements are addressed by lane CONSTANTS (s[0]
// .. s[7]).  The loop condition is a conjunction of len(s) >= lanes over
// the advancing slices, which the prove pass discharges exactly; counted
// forms (`for x+8 <= n { s[x+k] }` in any spelling) leave the +k lanes
// checked.  The sample counter x still runs alongside purely so faults
// report the true coordinate.
func (g *progGen) emitBCELoops(nOffs int, lenVar string, d int) error {
	b := g.b
	t := strings.Repeat("\t", d)
	live := map[string]bool{}
	for i := range g.p.insts {
		if !g.used[i] {
			continue
		}
		switch g.p.insts[i].op {
		case OpLoad:
			live[g.offVars[i]] = true
		case opSumTaps:
			for _, ov := range g.tapOffVars[i] {
				live[ov] = true
			}
		}
	}
	xs := g.xStep()
	g.bceSlice = map[string]string{}
	var adv []string  // slices advanced in lockstep, in emission order
	var advStep []int // per-slice head-cut per sample (stride for taps)
	span := lenVar
	if xs != 1 {
		// A strided index map reads (n-1)*stride+1 input columns per
		// tap; the tap re-slices below span exactly that, so the length
		// conjunctions stay exact.
		span = "sp"
		fmt.Fprintf(b, "%ssp := (%s-1)*%d + 1\n", t, lenVar, xs)
	}
	for i := 0; i < nOffs; i++ {
		ov := fmt.Sprintf("o%d", i)
		if !live[ov] {
			continue
		}
		sv := fmt.Sprintf("s%d", i)
		g.bceSlice[ov] = sv
		adv = append(adv, sv)
		advStep = append(advStep, xs)
		// Full-slice re-slice: every advancing slice starts at exactly
		// the span it indexes, so the lockstep head-cuts keep their
		// lengths in step and the len() conjunctions below cover every
		// access.
		fmt.Fprintf(b, "%s%s := pix[pos0+%s : pos0+%s+%s : pos0+%s+%s]\n", t, sv, ov, ov, span, ov, span)
	}
	if g.storeFn == nil {
		g.bceDst = "d"
		adv = append(adv, "d")
		advStep = append(advStep, 1)
		fmt.Fprintf(b, "%sd := dst[:%s:%s]\n", t, lenVar, lenVar)
	}
	defer func() {
		g.bceSlice = nil
		g.bceDst = ""
		g.bceIdx = ""
		g.bceTapIdx = ""
		g.xTerm = ""
	}()
	if len(adv) == 0 {
		// No slice is indexed per sample (a reduction whose index program
		// reads no taps): a plain counted loop is already check-free — the
		// bin store is proved by the index's value range, not the loop.
		g.xTerm, g.bceIdx = "x", ""
		fmt.Fprintf(b, "%s// bce:begin\n", t)
		fmt.Fprintf(b, "%sfor x := 0; x < %s; x++ {\n", t, lenVar)
		if err := g.emitSampleBody(g.writerAt(d+1), false); err != nil {
			return err
		}
		fmt.Fprintf(b, "%s}\n", t)
		fmt.Fprintf(b, "%s// bce:end\n", t)
		return nil
	}
	lhs := strings.Join(adv, ", ")
	cut := func(k int) string {
		parts := make([]string, len(adv))
		for i, sv := range adv {
			parts[i] = fmt.Sprintf("%s[%d:]", sv, k*advStep[i])
		}
		return strings.Join(parts, ", ")
	}
	conds := func(lanes int, cmp string) string {
		parts := make([]string, len(adv))
		for i, sv := range adv {
			if lanes > 0 {
				parts[i] = fmt.Sprintf("len(%s) >= %d", sv, lanes*advStep[i])
			} else {
				parts[i] = fmt.Sprintf("len(%s) %s", sv, cmp)
			}
		}
		return strings.Join(parts, " && ")
	}
	fmt.Fprintf(b, "%sx := 0\n", t)
	fmt.Fprintf(b, "%s// bce:begin\n", t)
	fmt.Fprintf(b, "%sfor %s {\n", t, conds(bceLanes, ""))
	for k := 0; k < bceLanes; k++ {
		g.xTerm = "x"
		if k > 0 {
			g.xTerm = fmt.Sprintf("x+%d", k)
		}
		g.bceIdx = fmt.Sprintf("%d", k)
		if xs != 1 {
			g.bceTapIdx = fmt.Sprintf("%d", k*xs)
		}
		fmt.Fprintf(b, "%s\t{\n", t)
		if err := g.emitSampleBody(g.writerAt(d+2), false); err != nil {
			return err
		}
		fmt.Fprintf(b, "%s\t}\n", t)
	}
	fmt.Fprintf(b, "%s\t%s = %s\n", t, lhs, cut(bceLanes))
	fmt.Fprintf(b, "%s\tx += %d\n", t, bceLanes)
	fmt.Fprintf(b, "%s}\n", t)
	if xs != 1 {
		fmt.Fprintf(b, "%s// bce:end\n", t)
		// Strided tail: the last tap slice ends mid-stride, so head-
		// cutting it by the stride would overrun — the final < bceLanes
		// samples run the plain strided body instead, outside the
		// markers, where its residual checks are off the hot path.
		g.bceSlice, g.bceDst, g.bceIdx, g.bceTapIdx, g.xTerm = nil, "", "", "", "x"
		fmt.Fprintf(b, "%sfor ; x < %s; x++ {\n", t, lenVar)
		if err := g.emitSampleBody(g.writerAt(d+1), false); err != nil {
			return err
		}
		fmt.Fprintf(b, "%s}\n", t)
		return nil
	}
	g.xTerm, g.bceIdx = "x", "0"
	fmt.Fprintf(b, "%sfor %s {\n", t, conds(0, "> 0"))
	if err := g.emitSampleBody(g.writerAt(d+1), false); err != nil {
		return err
	}
	fmt.Fprintf(b, "%s\t%s = %s\n", t, lhs, cut(1))
	fmt.Fprintf(b, "%s\tx++\n", t)
	fmt.Fprintf(b, "%s}\n", t)
	fmt.Fprintf(b, "%s// bce:end\n", t)
	return nil
}

// elemIdx spells the element index for slice accesses in the emitted
// sample body: the lane constant inside the head-cutting loops, the
// running counter everywhere else.
func (g *progGen) elemIdx() string {
	if g.bceIdx != "" {
		return g.bceIdx
	}
	return g.xTerm
}

// tapIdx spells the element index for TAP slice accesses, which differs
// from elemIdx inside a strided batch block: lane k reads s[k*stride]
// while writing d[k].
func (g *progGen) tapIdx() string {
	if g.bceTapIdx != "" {
		return g.bceTapIdx
	}
	return g.elemIdx()
}

// emitRowFunc writes the complete row function for one channel program.
// With cvar set the channel is a trailing parameter instead of a baked-in
// literal, so one function can serve every channel of a kernel whose
// channel programs are structurally identical.
func (g *progGen) emitRowFunc(name string) error {
	g.floatness()
	g.computeAliases()
	g.liveness()
	b := g.b

	offDefs := g.collectOffsets()
	if g.cvar {
		fmt.Fprintf(b, "// %s renders any channel's rows in %d-bit lanes (%d instructions, %d taps);\n// the kernel's channel programs are identical, so one body serves them all.\n",
			name, g.bits, len(g.p.insts), len(offDefs))
		fmt.Fprintf(b, "func %s(dst []byte, step int, img *Image, y, xbase, n, c int) (int, error) {\n", name)
	} else {
		fmt.Fprintf(b, "// %s renders channel %d rows in %d-bit lanes (%d instructions, %d taps).\n",
			name, g.c, g.bits, len(g.p.insts), len(offDefs))
		fmt.Fprintf(b, "func %s(dst []byte, step int, img *Image, y, xbase, n int) (int, error) {\n", name)
	}
	if len(offDefs) > 0 {
		if g.mapped {
			// Bake the affine index maps: y (and, for whole-stride maps,
			// xbase) remap to INPUT coordinates on entry; fractional x
			// maps keep xbase raw and floor-divide per sample.
			if !g.my.Identity() || g.orgY != 0 {
				fmt.Fprintf(b, "\ty = %s\n", mapExpr(g.my, "y", g.orgY))
			}
			if g.mx.Den == 1 && (!g.mx.Identity() || g.orgX != 0) {
				fmt.Fprintf(b, "\txbase = %s\n", mapExpr(g.mx, "xbase", g.orgX))
			}
		}
		fmt.Fprintf(b, "\tpix := img.Pix\n")
		fmt.Fprintf(b, "\tps := img.PixStep\n")
		if g.fracX() {
			fmt.Fprintf(b, "\tpos0 := img.Base + y*img.Stride + %s*img.ChanStep\n", g.chanTerm())
		} else {
			fmt.Fprintf(b, "\tpos0 := img.Base + y*img.Stride + xbase*ps + %s*img.ChanStep\n", g.chanTerm())
		}
	} else if g.cvar {
		fmt.Fprintf(b, "\t_ = c\n")
	}
	if g.hasTableIn() {
		fmt.Fprintf(b, "\ttbl := img.Tbl\n")
	}
	return g.emitBody(offDefs)
}

// emitReductionFunc writes the per-row accumulation function of a
// reduction: the index program runs per pixel and bins[index] takes the
// constant delta.  When the width pass proves the index always lands
// inside the table the per-sample range check is discharged, exactly like
// safe table lookups.
func (g *progGen) emitReductionFunc(name string, r *Reduction) error {
	g.floatness()
	g.computeAliases()
	g.liveness()
	p := g.p
	b := g.b

	root := g.resolve(p.root)
	safe := g.bits <= 32 && p.width.hi[root] < uint64(r.Bins)
	// The batch path is only worth emitting when the compiler itself can
	// prove the bin store: the bins re-slice below makes len(bins) the
	// constant Bins, so an index whose TYPE ranges below Bins is free.
	g.noBCE = !safe || g.laneMax() >= uint64(r.Bins)
	defer func() { g.noBCE = false }()
	g.storeFn = func(w func(string, ...any)) {
		if safe {
			w("bins[%s] += %d", g.ref(p.root), uint32(r.Delta))
			return
		}
		w("bi := %s", g.refInt64(p.root))
		w("if bi < 0 || bi >= %d {", r.Bins)
		w("\t%s", g.faultRet(fmt.Sprintf("errRedIndex(bi, %d)", r.Bins)))
		w("}")
		w("bins[bi] += %d", uint32(r.Delta))
	}
	defer func() { g.storeFn = nil }()

	offDefs := g.collectOffsets()
	fmt.Fprintf(b, "// %s accumulates one input row into the bin table in %d-bit lanes (%d instructions).\n",
		name, g.bits, len(p.insts))
	fmt.Fprintf(b, "func %s(bins []uint32, img *Image, y, n int) (int, error) {\n", name)
	if !g.noBCE {
		fmt.Fprintf(b, "\tbins = bins[:%d:%d]\n", r.Bins, r.Bins)
	}
	if len(offDefs) > 0 {
		fmt.Fprintf(b, "\tpix := img.Pix\n")
		fmt.Fprintf(b, "\tps := img.PixStep\n")
		fmt.Fprintf(b, "\tpos0 := img.Base + y*img.Stride\n")
		// The checked-load error paths spell coordinates via xbase, which
		// for a reduction domain is always zero.
		fmt.Fprintf(b, "\tconst xbase = 0\n")
	}
	return g.emitBody(offDefs)
}

// hasLoads reports whether the program reads the pixel backing at all
// (the flat-interleaved variant is pointless — and unemittable — without
// tap offsets).
func (g *progGen) hasLoads() bool {
	for i := range g.p.insts {
		switch g.p.insts[i].op {
		case OpLoad:
			return true
		case opSumTaps:
			if len(g.p.insts[i].taps) > 0 {
				return true
			}
		}
	}
	return false
}

// emitFlatRowFunc writes the flat-interleaved variant of a collapsed
// multi-channel kernel: on PixStep == channels, ChanStep == 1 layouts one
// output row is n*channels contiguous samples whose tap offsets are
// channel-independent, so the whole row runs as a single unit-stride scan
// — the shape the bounds-check-free batch loops need.  The scan order
// (x-major, channel-minor) is exactly the reference x-then-c error order,
// and a fault's flat index splits back into (x, c).  ok reports whether
// the variant applied; on false the caller falls back to the per-channel
// path, whose checked loops report edge faults exactly.
func (g *progGen) emitFlatRowFunc(name string) error {
	g.floatness()
	g.computeAliases()
	g.liveness()
	b := g.b
	ch := g.flatCh

	offDefs := g.collectOffsets()
	fmt.Fprintf(b, "// %s renders all %d interleaved channels of one output row as one flat\n", name, ch)
	fmt.Fprintf(b, "// unit-stride scan of n*%d samples (bounds-check-free batch loops); ok is\n", ch)
	fmt.Fprintf(b, "// false when a tap leaves the backing and the caller must fall back.\n")
	fmt.Fprintf(b, "func %s(dst []byte, img *Image, y, xbase, n int) (int, int, error, bool) {\n", name)
	fmt.Fprintf(b, "\tpix := img.Pix\n")
	fmt.Fprintf(b, "\tps := img.PixStep\n")
	fmt.Fprintf(b, "\tpos0 := img.Base + y*img.Stride + xbase*ps\n")
	fmt.Fprintf(b, "\tm := n * %d\n", ch)
	fmt.Fprintf(b, "\tif m == 0 {\n\t\treturn -1, -1, nil, true\n\t}\n")
	for _, d := range offDefs {
		fmt.Fprintf(b, "\t%s\n", d)
	}
	var conds []string
	for i := range offDefs {
		conds = append(conds, fmt.Sprintf("spanIn(pos0+o%d, pos0+o%d+m-1, len(pix))", i, i))
	}
	fmt.Fprintf(b, "\tif %s {\n", strings.Join(conds, " &&\n\t\t"))
	if err := g.emitBCELoops(len(offDefs), "m", 2); err != nil {
		return err
	}
	fmt.Fprintf(b, "\t\treturn -1, -1, nil, true\n\t}\n")
	fmt.Fprintf(b, "\treturn 0, 0, nil, false\n}\n\n")
	return nil
}

// emitLoop writes the rolled per-sample loop at the given indent; checked
// selects bounds-checked loads.
func (g *progGen) emitLoop(indent int, checked bool) error {
	g.xTerm = "x"
	tabs := strings.Repeat("\t", indent)
	g.b.WriteString(tabs + "for x := 0; x < n; x++ {\n")
	if err := g.emitSampleBody(g.writerAt(indent+1), checked); err != nil {
		return err
	}
	g.b.WriteString(tabs + "}\n")
	return nil
}

// emitSampleBody writes one sample's instruction sequence and final store.
// The sample index is g.xTerm, so the batch-unrolled lane blocks of the
// bounds-check-free path reuse this body verbatim at shifted indices.
func (g *progGen) emitSampleBody(w func(string, ...any), checked bool) error {
	p := g.p
	if g.bceSlice == nil {
		pixUsed := false
		for i := range p.insts {
			in := &p.insts[i]
			switch in.op {
			case OpLoad:
				pixUsed = pixUsed || g.used[i] || checked
			case opSumTaps:
				pixUsed = pixUsed || len(in.taps) > 0 && (g.used[i] || checked)
			}
		}
		if pixUsed {
			switch {
			case g.fracX():
				w("xi := %s", mapExpr(g.mx, "(xbase+x)", g.orgX))
				w("p := pos0 + xi*ps")
			case g.xStep() != 1:
				w("p := pos0 + x*%d*ps", g.xStep())
			default:
				w("p := pos0 + x*ps")
			}
		}
	}
	for i := range p.insts {
		if err := g.emitInst(i, w, checked); err != nil {
			return err
		}
	}
	if g.storeFn != nil {
		g.storeFn(w)
		return nil
	}
	target := "dst[x*step]"
	if g.bceDst != "" {
		target = fmt.Sprintf("%s[%s]", g.bceDst, g.elemIdx())
	}
	// Final store: narrow the root to one sample byte exactly like the
	// reference executors (float roots store the low byte of their IEEE
	// bit pattern).
	switch ri := g.instIdx(g.resolve(p.root)); {
	case ri >= 0 && g.isFloat[ri]:
		g.fg.needMath = true
		w("%s = uint8(math.Float64bits(%s))", target, g.refF(p.root))
	case ri >= 0:
		w("%s = uint8(%s)", target, g.ref(p.root))
	default:
		// Constant root (the whole tree folded): the byte is a literal.
		w("%s = %d", target, uint8(p.consts[p.root]))
	}
	return nil
}

// emitInst writes one SSA statement (or statement group) for instruction i.
func (g *progGen) emitInst(i int, w func(string, ...any), checked bool) error {
	p := g.p
	in := &p.insts[i]
	v := fmt.Sprintf("v%d", i)
	f := fmt.Sprintf("f%d", i)
	T := g.T

	if g.alias[i] >= 0 {
		return nil
	}
	if !g.used[i] {
		// Dead value: emit only the runtime checks the reference
		// executors would still perform, at this program position.
		switch in.op {
		case OpDiv, OpMod:
			errFn := "errDivZero"
			if in.op == OpMod {
				errFn = "errModZero"
			}
			w("if %s%s == 0 {", g.refT(in.b), g.maskSuffix(in.mask))
			w("\t%s", g.faultRet(errFn+"()"))
			w("}")
		case OpTable:
			if g.tableSafe(in) {
				break
			}
			w("i%d := %s", i, g.refInt64(in.a))
			w("if j%d := i%d * %d; j%d < 0 || j%d+%d > %d {", i, i, in.elem, i, i, in.elem, len(in.table))
			w("\t%s", g.faultRet(fmt.Sprintf("errTable(i%d, %d)", i, len(in.table)/in.elem)))
			w("}")
		case OpLoad:
			if checked {
				w("if uint(p+%s) >= uint(len(pix)) {", g.offVars[i])
				w("\treturn x, errLoad(%s, y+(%d), %s)", g.errX(in.dx), in.dy, g.chanExpr(in.dc))
				w("}")
			}
		case opSumTaps:
			if checked {
				for _, ov := range g.tapOffVars[i] {
					w("if uint(p+%s) >= uint(len(pix)) {", ov)
					w("\treturn x, errLoad(%s, y, %s)", g.errXBase(), g.chanExpr(0))
					w("}")
				}
			}
		case OpTableIn:
			// Dead stage-input lookup: the range check against the bound
			// table still runs at this program position.
			w("i%d := %s", i, g.refInt64(in.a))
			w("if j%d := i%d * %d; j%d < 0 || j%d+%d > int64(len(tbl)) {", i, i, in.elem, i, i, in.elem)
			w("\t%s", g.faultRet(fmt.Sprintf("errTable(i%d, len(tbl)/%d)", i, in.elem)))
			w("}")
		}
		return nil
	}

	// nary joins operand references with an operator.
	nary := func(op string) string {
		parts := make([]string, len(in.args))
		for j, r := range in.args {
			parts[j] = g.ref(r)
		}
		return strings.Join(parts, " "+op+" ")
	}

	switch in.op {
	case OpLoad:
		switch {
		case checked:
			w("i%d := p + %s", i, g.offVars[i])
			w("if uint(i%d) >= uint(len(pix)) {", i)
			w("\treturn x, errLoad(%s, y+(%d), %s)", g.errX(in.dx), in.dy, g.chanExpr(in.dc))
			w("}")
			w("%s := %s(pix[i%d])", v, T, i)
		case g.bceSlice != nil:
			w("%s := %s(%s[%s])", v, T, g.bceSlice[g.offVars[i]], g.tapIdx())
		default:
			w("%s := %s(pix[p+%s])", v, T, g.offVars[i])
		}

	case opSumTaps:
		terms := []string{}
		if in.val != 0 {
			terms = append(terms, g.intLit(uint64(in.val)))
		}
		switch {
		case checked:
			for j, ov := range g.tapOffVars[i] {
				w("i%d_%d := p + %s", i, j, ov)
				w("if uint(i%d_%d) >= uint(len(pix)) {", i, j)
				w("\treturn x, errLoad(%s, y, %s)", g.errXBase(), g.chanExpr(0))
				w("}")
				terms = append(terms, fmt.Sprintf("%s(pix[i%d_%d])", T, i, j))
			}
		case g.bceSlice != nil:
			for _, ov := range g.tapOffVars[i] {
				terms = append(terms, fmt.Sprintf("%s(%s[%s])", T, g.bceSlice[ov], g.tapIdx()))
			}
		default:
			for _, ov := range g.tapOffVars[i] {
				terms = append(terms, fmt.Sprintf("%s(pix[p+%s])", T, ov))
			}
		}
		for _, r := range in.args {
			terms = append(terms, g.ref(r))
		}
		if len(terms) == 0 {
			terms = append(terms, "0")
		}
		w("%s := (%s)%s", v, strings.Join(terms, " + "), g.maskSuffix(in.mask))

	case opMulN:
		w("%s := (%s)%s", v, nary("*"), g.maskSuffix(in.mask))
	case opAndN:
		w("%s := (%s)%s", v, nary("&"), g.maskSuffix(in.mask))
	case opOrN:
		w("%s := (%s)%s", v, nary("|"), g.maskSuffix(in.mask))
	case opXorN:
		w("%s := (%s)%s", v, nary("^"), g.maskSuffix(in.mask))

	case opMinN, opMaxN:
		fn := "min"
		if in.op == opMaxN {
			fn = "max"
		}
		parts := make([]string, len(in.args))
		signed := false
		for j, r := range in.args {
			var s bool
			parts[j], s = g.sxExpr(r, in.sh)
			signed = signed || s
		}
		expr := fmt.Sprintf("%s(%s)", fn, strings.Join(parts, ", "))
		if signed {
			expr = fmt.Sprintf("%s(%s)", T, expr)
		}
		w("%s := %s%s", v, expr, g.maskSuffix(in.mask))

	case OpSub:
		w("%s := (%s - %s)%s", v, g.ref(in.a), g.ref(in.b), g.maskSuffix(in.mask))

	case OpMulHi:
		if g.bits <= 32 {
			// Operands provably fit 32 bits, so the widening product fits
			// uint64 exactly.
			w("%s := %s(uint64(%s) * uint64(%s) >> 32%s)", v, T, g.ref(in.a), g.ref(in.b), mask64Suffix(in.mask))
		} else {
			w("%s := (%s & 0xffffffff) * (%s & 0xffffffff) >> 32%s", v, g.ref(in.a), g.ref(in.b), g.maskSuffix(in.mask))
		}

	case OpDiv, OpMod:
		op := "/"
		errFn := "errDivZero"
		if in.op == OpMod {
			op = "%%"
			errFn = "errModZero"
		}
		w("d%d := %s%s", i, g.refT(in.b), g.maskSuffix(in.mask))
		w("if d%d == 0 {", i)
		w("\t%s", g.faultRet(errFn+"()"))
		w("}")
		w("%s := (%s%s) "+op+" d%d", v, g.refT(in.a), g.maskSuffix(in.mask), i)

	case opDivShift:
		w("%s := (%s%s) >> %d", v, g.refT(in.a), g.maskSuffix(in.mask), in.val)
	case opDivMagic:
		if g.bits <= 16 {
			// 32-bit magic: exact for numerators below 2^16 (see
			// divByConst for the error-term argument at 2^64; the same
			// bound holds one power-of-two scale down).
			magic32 := uint64(math.MaxUint32)/in.dcon + 1
			w("%s := %s(uint64(%s%s) * %#x >> 32)", v, T, g.ref(in.a), g.maskSuffix(in.mask), magic32)
		} else {
			g.fg.needBits = true
			w("h%d, _ := bits.Mul64(uint64(%s%s), %#x)", i, g.ref(in.a), g.maskSuffix(in.mask), in.magic)
			w("%s := %s(h%d)", v, T, i)
		}
	case opModShift:
		w("%s := %s%s & %s", v, g.refT(in.a), g.maskSuffix(in.mask), g.intLit(in.dcon-1))
	case opModMagic:
		if g.bits <= 16 {
			magic32 := uint64(math.MaxUint32)/in.dcon + 1
			w("m%d := uint64(%s%s)", i, g.ref(in.a), g.maskSuffix(in.mask))
			w("%s := %s(m%d - m%d*%#x>>32*%d)", v, T, i, i, magic32, in.dcon)
		} else {
			g.fg.needBits = true
			w("m%d := uint64(%s%s)", i, g.ref(in.a), g.maskSuffix(in.mask))
			w("h%d, _ := bits.Mul64(m%d, %#x)", i, i, in.magic)
			w("%s := %s(m%d - h%d*%d)", v, T, i, i, in.dcon)
		}

	case OpNot:
		w("%s := ^%s%s", v, g.refT(in.a), g.maskSuffix(in.mask))
	case OpNeg:
		w("%s := -%s%s", v, g.refT(in.a), g.maskSuffix(in.mask))
	case OpShl:
		w("%s := %s << (%s & 31)%s", v, g.refT(in.a), g.ref(in.b), g.maskSuffix(in.mask))
	case OpShr:
		w("%s := (%s%s) >> (%s & 31)", v, g.refT(in.a), g.maskSuffix(in.mask), g.ref(in.b))
	case OpSar:
		sx, signed := g.sxExpr(in.a, in.sh)
		if signed {
			w("%s := %s((%s) >> (%s & 31))%s", v, T, sx, g.ref(in.b), g.maskSuffix(in.mask))
		} else {
			w("%s := (%s) >> (%s & 31)%s", v, sx, g.ref(in.b), g.maskSuffix(in.mask))
		}

	case OpZExt:
		// mask is the source-width mask here.
		w("%s := %s%s", v, g.refT(in.a), g.maskSuffix(in.mask))
	case OpSExt:
		sx, signed := g.sxExpr(in.a, in.sh)
		if signed {
			w("%s := %s(%s)%s", v, T, sx, g.maskSuffix(in.mask))
		} else {
			w("%s := %s%s", v, sx, g.maskSuffix(in.mask))
		}
	case OpExtract:
		w("%s := %s >> %d%s", v, g.refT(in.a), 8*in.val, g.maskSuffix(in.mask))

	case OpSelect:
		if in.fl {
			w("%s := %s", f, g.refF(in.c))
			w("if %s != 0 {", g.refT(in.a))
			w("\t%s = %s", f, g.refF(in.b))
			w("}")
		} else {
			w("%s := %s", v, g.refT(in.c))
			w("if %s != 0 {", g.refT(in.a))
			w("\t%s = %s", v, g.refT(in.b))
			w("}")
		}

	case OpCmpEq, OpCmpNe, OpCmpLtU, OpCmpLeU:
		op := map[Op]string{OpCmpEq: "==", OpCmpNe: "!=", OpCmpLtU: "<", OpCmpLeU: "<="}[in.op]
		w("%s := %s(0)", v, T)
		w("if %s%s %s %s%s {", g.refT(in.a), g.maskSuffix(in.mask), op, g.refT(in.b), g.maskSuffix(in.mask))
		w("\t%s = 1", v)
		w("}")

	case OpCmpLtS, OpCmpLeS:
		op := "<"
		if in.op == OpCmpLeS {
			op = "<="
		}
		// Both operands share in.sh, so sxExpr picks the same form for
		// both: either the plain unsigned lane (sign width wider than the
		// lane, everything provably nonnegative) or the signed lane type.
		sa, _ := g.sxExpr(in.a, in.sh)
		sb, _ := g.sxExpr(in.b, in.sh)
		w("%s := %s(0)", v, T)
		w("if %s %s %s {", sa, op, sb)
		w("\t%s = 1", v)
		w("}")

	case OpTable:
		if g.tableSafe(in) && in.elem == 1 {
			// The width pass proved the index covers at most the table: no
			// per-sample range check.  The Go compiler cannot see that
			// proof, so the table is shaped for its prove pass instead:
			// when the index TYPE ranges past the table, the table pads to
			// a power of two and the index masks down — a no-op on every
			// proven-legal index, but now len-bounded by construction.
			idx := g.refT(in.a)
			table := in.table
			if g.laneMax() >= uint64(len(table)) {
				p2 := 1
				for p2 < len(table) {
					p2 <<= 1
				}
				if p2 > len(table) {
					table = append(append([]byte(nil), table...), make([]byte, p2-len(table))...)
				}
				idx = fmt.Sprintf("%s&%d", idx, p2-1)
			}
			w("%s := %s(%s[%s])", v, T, g.tableVar(table, in.elem), idx)
			break
		}
		tab := g.tableVar(in.table, in.elem)
		if g.tableSafe(in) {
			w("j%d := int(%s) * %d", i, g.refT(in.a), in.elem)
		} else {
			w("i%d := %s", i, g.refInt64(in.a))
			w("j%d := i%d * %d", i, i, in.elem)
			w("if j%d < 0 || j%d+%d > %d {", i, i, in.elem, len(in.table))
			w("\t%s", g.faultRet(fmt.Sprintf("errTable(i%d, %d)", i, len(in.table)/in.elem)))
			w("}")
		}
		parts := make([]string, in.elem)
		for e := 0; e < in.elem; e++ {
			term := fmt.Sprintf("%s(%s[j%d+%d])", T, tab, i, e)
			if e > 0 {
				term += fmt.Sprintf("<<%d", 8*e)
			}
			parts[e] = term
		}
		w("%s := %s", v, strings.Join(parts, " | "))

	case OpTableIn:
		// Stage-input lookup: the table binds at run time (Image.Tbl — a
		// reduction-first pipeline's serialized bins), so the fault guard
		// can never be discharged at generation time.  Splitting the
		// reference tableAt condition (j<0 || j+elem>len) into a reslice
		// at j plus a length branch keeps the semantics — same fault on
		// the same indices, message included — while leaving facts the
		// prove pass actually uses: every t[e] access below is
		// bounds-check free.
		w("i%d := %s", i, g.refInt64(in.a))
		w("j%d := i%d * %d", i, i, in.elem)
		w("if j%d < 0 || j%d > int64(len(tbl)) {", i, i)
		w("\t%s", g.faultRet(fmt.Sprintf("errTable(i%d, len(tbl)/%d)", i, in.elem)))
		w("}")
		w("t%d := tbl[j%d:]", i, i)
		w("if len(t%d) < %d {", i, in.elem)
		w("\t%s", g.faultRet(fmt.Sprintf("errTable(i%d, len(tbl)/%d)", i, in.elem)))
		w("}")
		parts := make([]string, in.elem)
		for e := 0; e < in.elem; e++ {
			term := fmt.Sprintf("%s(t%d[%d])", T, i, e)
			if e > 0 {
				term += fmt.Sprintf("<<%d", 8*e)
			}
			parts[e] = term
		}
		w("%s := %s", v, strings.Join(parts, " | "))

	case OpIntToFP:
		sx, _ := g.sxExpr(in.a, in.sh)
		w("%s := float64(%s)", f, sx)
	case OpFPToInt:
		g.fg.needMath = true
		w("%s := uint64(int64(math.RoundToEven(%s)))%s", v, g.refF(in.a), g.maskSuffix(in.mask))
	case OpFAdd:
		w("%s := %s + %s", f, g.refF(in.a), g.refF(in.b))
	case OpFSub:
		w("%s := %s - %s", f, g.refF(in.a), g.refF(in.b))
	case OpFMul:
		w("%s := %s * %s", f, g.refF(in.a), g.refF(in.b))
	case OpFDiv:
		w("%s := %s / %s", f, g.refF(in.a), g.refF(in.b))
	case OpCall:
		sym, ok := callSyms[in.sym]
		if !ok {
			return fmt.Errorf("op call %q has no Go spelling", in.sym)
		}
		g.fg.needMath = true
		w("%s := %s(%s)", f, sym, g.refF(in.a))

	default:
		return fmt.Errorf("op %v is not generatable", in.op)
	}
	return nil
}

// mask64Suffix renders masking of a uint64 intermediate (used where the
// generated code computes a widening product before narrowing back).
func mask64Suffix(mask uint64) string {
	if mask == ^uint64(0) || mask >= 0xffffffff {
		// The >>32 result fits 32 bits; a 32-bit-or-wider mask is a no-op.
		return ""
	}
	return fmt.Sprintf(" & %#x", mask)
}

// GenerateRuntime emits the fixed runtime half of the generated package:
// the Image geometry, the Kernel driver with reference-exact error
// selection, the ScheduleSpec execution layer (worker row strips and
// sliding-window stage fusion), and the shared error constructors.
func GenerateRuntime(pkg string) string {
	var b strings.Builder
	b.WriteString("// Code generated by \"helium gen\"; DO NOT EDIT.\n\n")
	fmt.Fprintf(&b, `// Package %s holds ahead-of-time Go source regenerated from the
// lifted stencil corpus — the reproduction's analogue of the Halide code
// Helium emits.  It is standalone: nothing here imports the lifting
// pipeline, so the package can be vendored into a host application as the
// drop-in replacement for the legacy filter.
//
// Values, error positions and error messages are bit-identical to the
// helium/internal/ir interpreter and register executors — under every
// ScheduleSpec: a schedule changes only the execution strategy (worker
// count, stage fusion), never the result.  The generator's differential
// tests enforce this with the real toolchain.
package %s

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Image is a flat 8-bit pixel backing: channel c of pixel (x, y) lives at
// Pix[Base + y*Stride + x*PixStep + c*ChanStep].  Planar layouts use
// PixStep 1 and ChanStep 0; interleaved layouts use PixStep = channels
// and ChanStep 1.
type Image struct {
	Pix                             []byte
	Base, Stride, PixStep, ChanStep int
	// Tbl is the bound stage-input table: the serialized bin table of a
	// reduction-first pipeline, which the consuming stages' lookup
	// instructions index at run time.  Nil for every other kernel shape.
	Tbl []byte
}

// RowFunc renders output samples x in [0, n) of one input row y into
// dst[x*step], xbase being the input-x of output sample 0.  It returns
// the first faulting x and its error, or (-1, nil).
type RowFunc func(dst []byte, step int, img *Image, y, xbase, n int) (int, error)

// RowAllFunc renders ALL channels of one output row into the row-major
// row slice dst, returning the first fault in x-then-c order as
// (x, c, err), or (-1, -1, nil).  The generator emits one when a kernel's
// channel programs are structurally identical, so one body serves every
// channel.
type RowAllFunc func(dst []byte, img *Image, y, xbase, n int) (int, int, error)

// ScheduleSpec selects an execution strategy.  The zero value is the
// production default: GOMAXPROCS workers, materializing stage chaining.
type ScheduleSpec struct {
	// Workers is the row-strip worker count; <= 0 means GOMAXPROCS, 1 is
	// the serial reference.
	Workers int
	// Fusion is the inter-stage strategy of multi-stage pipelines:
	// "" or "materialize" computes every stage fully into a fresh
	// intermediate buffer; "slidingWindow" streams the stages through
	// ring buffers sized to the consumer's row footprint.
	Fusion string
	// WindowRows is the ring height under slidingWindow; 0 picks the
	// minimal window, values clamp to [footprint, stage height].
	WindowRows int
	// Stages holds per-stage tile overrides; missing entries mean plain
	// row strips.
	Stages []StageSched
}

// StageSched is one stage's tile override within a ScheduleSpec: the
// stage's output blocks into TileW x TileH cache tiles (0 keeps straight
// row strips).
type StageSched struct {
	TileW, TileH int
}

// stageTile resolves stage i's tile override (0, 0 when unset).
func (s ScheduleSpec) stageTile(i int) (int, int) {
	if i < 0 || i >= len(s.Stages) {
		return 0, 0
	}
	return s.Stages[i].TileW, s.Stages[i].TileH
}

// effWorkers resolves the worker count (<= 0 means GOMAXPROCS).
func (s ScheduleSpec) effWorkers() int {
	if s.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Workers
}

// Serial is the reference schedule: one worker, materializing chaining.
func Serial() ScheduleSpec { return ScheduleSpec{Workers: 1} }

// Kernel is one regenerated stencil kernel.
type Kernel struct {
	Name             string
	Channels         int
	OriginX, OriginY int
	// DefaultWidth and DefaultHeight record the output geometry the
	// kernel was lifted at (the input domain for reductions); Eval
	// accepts any size.
	DefaultWidth, DefaultHeight int
	// LaneBits records the integer width each channel's row loop
	// computes in (8, 16, 32 or 64).
	LaneBits []int
	// Rows holds one row function per channel; RowAll replaces it when
	// the channel programs collapsed into one shared body.
	Rows   []RowFunc
	RowAll RowAllFunc
	// Stages, when non-empty, makes the kernel a multi-stage pipeline:
	// Eval chains the stages and the flat Rows/RowAll fields above are
	// unused.
	Stages []StageSpec
	// Red, when non-nil, makes the kernel a reduction: Eval accumulates
	// over the outW x outH domain (the last stage's output when Stages
	// is non-empty, the input image otherwise) and returns the
	// serialized little-endian bin table.
	Red *ReductionSpec
	// RedFirst reorders a Red+Stages pipeline: the reduction runs FIRST
	// over the input image, its serialized table binds as the stages'
	// table input, and the last stage's pixels are the result.  RedDW and
	// RedDH are the reduction domain extents minus the final output
	// extents.
	RedFirst     bool
	RedDW, RedDH int
	// Sched is the autotuned default schedule (zero when the kernel was
	// generated without one); EvalTuned runs it.
	Sched ScheduleSpec
	// Tuned, when non-nil, is the generated schedule-baked serial driver:
	// the autotuned tile extents are literal constants in its loop nest.
	// EvalTuned dispatches to it when Sched resolves to one worker.
	Tuned func(sc *Scratch, img *Image, outW, outH int) ([]byte, error)
	// FusedStrip, when non-nil, is the generated footprint-specialized
	// sliding-window strip driver; the fused executor dispatches to it at
	// the minimal window instead of the generic ring interpreter.
	FusedStrip FusedStripFunc
}

// FusedStripFunc streams one worker strip of final-stage rows [s0, s1)
// through a fused pipeline, writing each stage's first error (nil for
// clean stages) into errs.
type FusedStripFunc func(sc *Scratch, img *Image, out []byte, ws, hs []int, s0, s1 int, first, drain bool, errs []*rowErr)

// StageSpec is one stage of a multi-stage pipeline.  DW and DH are the
// stage's output extents minus the final extents (the last stage's for
// stencil pipelines, the reduction domain for pipelines ending in a
// reduction), so intermediate buffer sizes track any requested output
// size.  MinDY and MaxDY bound the input rows the stage reads for output
// row y — [y+MinDY, y+MaxDY], origin included — the footprint the
// sliding-window executor sizes its rings with; MinDX and MaxDX are the
// column counterpart, which fusion validates against the producer width.
type StageSpec struct {
	Channels         int
	OriginX, OriginY int
	DW, DH           int
	MinDY, MaxDY     int
	MinDX, MaxDX     int
	LaneBits         []int
	Rows             []RowFunc
	RowAll           RowAllFunc
}

// ReductionSpec is the accumulate-into-table form: Row accumulates one
// input row into the 4-byte bins, which start from Init (nil = all zero).
// Suffix runs a wraparound prefix sum over the bins after accumulation
// (a cumulative histogram) before serialization.
type ReductionSpec struct {
	Bins   int
	Init   []uint32
	Suffix bool
	Row    func(bins []uint32, img *Image, y, n int) (int, error)
}

// Scratch holds the reusable buffers of EvalInto: the output, stage
// intermediates and fused ring planes, the reduction bins, and per-worker
// sub-scratches for the parallel fused path.  A zero Scratch is ready to
// use; buffers grow on demand and persist, so a caller rendering frames
// in a loop reaches a zero-allocation steady state.  Results returned
// through a Scratch alias its buffers and are only valid until its next
// use.
type Scratch struct {
	out   []byte
	bufs  [][]byte
	imgs  []Image
	errs  []*rowErr
	fs    []fusedStage
	dims  []int
	bins  []uint32
	procs []*Scratch
}

// outBuf returns the reusable result buffer at length n.
func (sc *Scratch) outBuf(n int) []byte {
	if cap(sc.out) < n {
		sc.out = make([]byte, n)
	}
	return sc.out[:n:n]
}

// buf returns the i'th reusable plane buffer at length n (stage
// intermediates, fused ring planes).
func (sc *Scratch) buf(i, n int) []byte {
	for len(sc.bufs) <= i {
		sc.bufs = append(sc.bufs, nil)
	}
	if cap(sc.bufs[i]) < n {
		sc.bufs[i] = make([]byte, n)
	}
	return sc.bufs[i][:n:n]
}

// img returns the i'th reusable Image header; headers live inside the
// scratch so handing out their address does not allocate per eval.
func (sc *Scratch) img(i int) *Image {
	for len(sc.imgs) <= i {
		sc.imgs = append(sc.imgs, Image{})
	}
	return &sc.imgs[i]
}

// errSlots returns n cleared per-stage error slots.
func (sc *Scratch) errSlots(n int) []*rowErr {
	if cap(sc.errs) < n {
		sc.errs = make([]*rowErr, n)
	}
	sc.errs = sc.errs[:n]
	for i := range sc.errs {
		sc.errs[i] = nil
	}
	return sc.errs
}

// stages returns n zeroed fusedStage slots.
func (sc *Scratch) stages(n int) []fusedStage {
	if cap(sc.fs) < n {
		sc.fs = make([]fusedStage, n)
	}
	sc.fs = sc.fs[:n]
	for i := range sc.fs {
		sc.fs[i] = fusedStage{}
	}
	return sc.fs
}

// ints returns n reusable ints (the per-stage extent arrays).
func (sc *Scratch) ints(n int) []int {
	if cap(sc.dims) < n {
		sc.dims = make([]int, n)
	}
	return sc.dims[:n]
}

// binsBuf returns the reusable reduction bin table at length n.
func (sc *Scratch) binsBuf(n int) []uint32 {
	if cap(sc.bins) < n {
		sc.bins = make([]uint32, n)
	}
	return sc.bins[:n]
}

/// worker returns worker t's own scratch: the parallel fused path gives
// every strip private ring planes that persist across evals.
func (sc *Scratch) worker(t int) *Scratch {
	for len(sc.procs) <= t {
		sc.procs = append(sc.procs, &Scratch{})
	}
	return sc.procs[t]
}

var registry = map[string]*Kernel{}

func register(k *Kernel) { registry[k.Name] = k }

// Lookup returns the kernel with the given name.
func Lookup(name string) (*Kernel, bool) {
	k, ok := registry[name]
	return k, ok
}

// Kernels lists every registered kernel, ordered by name.
func Kernels() []*Kernel {
	out := make([]*Kernel, 0, len(registry))
	for _, k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Eval renders an outW x outH output region against img in row-major
// sample order with the serial reference schedule, exactly like the
// lifting pipeline's evaluators: when several channels fault on one row,
// the reported error is the one an x-then-c per-sample scan hits first.
// Multi-stage kernels chain their stages through intermediate buffers;
// reductions treat outW x outH as the domain and return the serialized
// bin table.
func (k *Kernel) Eval(img *Image, outW, outH int) ([]byte, error) {
	return k.EvalSched(img, outW, outH, Serial())
}

// EvalTuned is Eval under the kernel's autotuned default schedule.  When
// the schedule resolves to one worker and the generator baked a serial
// tuned driver, that driver runs instead of the generic dispatch.
func (k *Kernel) EvalTuned(img *Image, outW, outH int) ([]byte, error) {
	return k.EvalTunedInto(new(Scratch), img, outW, outH)
}

// EvalTunedInto is EvalTuned against caller-owned scratch.
func (k *Kernel) EvalTunedInto(sc *Scratch, img *Image, outW, outH int) ([]byte, error) {
	if k.Tuned != nil && k.Sched.effWorkers() == 1 {
		return k.Tuned(sc, img, outW, outH)
	}
	return k.EvalInto(sc, img, outW, outH, k.Sched)
}

// EvalSched is Eval under an explicit schedule.  The output — and any
// reported error, position and message included — is identical to Eval's
// for every valid spec.
func (k *Kernel) EvalSched(img *Image, outW, outH int, spec ScheduleSpec) ([]byte, error) {
	return k.EvalInto(new(Scratch), img, outW, outH, spec)
}

// EvalInto is EvalSched against caller-owned scratch: all working memory
// — including the returned buffer — comes from sc, so repeated calls with
// one scratch allocate nothing in the steady state.  The result aliases
// sc and is only valid until its next use.
func (k *Kernel) EvalInto(sc *Scratch, img *Image, outW, outH int, spec ScheduleSpec) ([]byte, error) {
	switch spec.Fusion {
	case "", "materialize":
	case "slidingWindow":
		if len(k.Stages) < 2 {
			return nil, fmt.Errorf("ir: kernel %%s: slidingWindow fusion needs at least 2 stages, kernel has %%d", k.Name, len(k.Stages))
		}
	default:
		return nil, fmt.Errorf("ir: kernel %%s: unknown fusion strategy %%q", k.Name, spec.Fusion)
	}
	if len(k.Stages) > 0 {
		src := img
		if k.Red != nil && k.RedFirst {
			tbl, err := k.evalReductionInto(sc.buf(len(k.Stages), k.Red.Bins*4), sc, img, outW+k.RedDW, outH+k.RedDH)
			if err != nil {
				return nil, err
			}
			ti := sc.img(len(k.Stages))
			*ti = *img
			ti.Tbl = tbl
			src = ti
		}
		fimg, err := k.evalStages(sc, src, outW, outH, spec)
		if err != nil {
			return nil, err
		}
		if k.Red != nil && !k.RedFirst {
			return k.evalReduction(sc, fimg, outW, outH)
		}
		return fimg.Pix, nil
	}
	if k.Red != nil {
		return k.evalReduction(sc, img, outW, outH)
	}
	out := sc.outBuf(outW * outH * k.Channels)
	var e *rowErr
	if tw, th := spec.stageTile(0); tw > 0 || th > 0 {
		e = evalTiled(out, img, k.Channels, k.OriginX, k.OriginY, outW, outH, tw, th, spec.Workers, k.Rows, k.RowAll)
	} else {
		e = evalStrips(out, img, k.Channels, k.OriginX, k.OriginY, outW, 0, outH, spec.Workers, k.Rows, k.RowAll)
	}
	if e != nil {
		return nil, fmt.Errorf("ir: kernel %%s at (%%d,%%d,%%d): %%w", k.Name, e.x, e.y, e.c, e.err)
	}
	return out, nil
}

// rowErr is one row range's first failure in scan order.
type rowErr struct {
	y, x, c int
	err     error
}

// before orders failures by the serial per-sample scan: row-major, then
// x, then channel.
func (e *rowErr) before(o *rowErr) bool {
	if e.y != o.y {
		return e.y < o.y
	}
	if e.x != o.x {
		return e.x < o.x
	}
	return e.c < o.c
}

// runRow renders one output row with the reference x-then-c error
// selection; dst is the row-major row slice.
func runRow(dst []byte, img *Image, channels, originX, originY, y, outW int, rows []RowFunc, rowAll RowAllFunc) *rowErr {
	if rowAll != nil {
		x, c, err := rowAll(dst, img, y+originY, originX, outW)
		if err != nil {
			return &rowErr{y: y, x: x, c: c, err: err}
		}
		return nil
	}
	errX, errC := -1, -1
	var firstErr error
	for c, row := range rows {
		x, err := row(dst[c:], channels, img, y+originY, originX, outW)
		if err != nil && (errX < 0 || x < errX) {
			errX, errC, firstErr = x, c, err
		}
	}
	if firstErr != nil {
		return &rowErr{y: y, x: errX, c: errC, err: firstErr}
	}
	return nil
}

// evalRowsRange renders output rows [y0, y1) into out (the full
// row-major buffer), returning the range's scan-order-first failure.
func evalRowsRange(out []byte, img *Image, channels, originX, originY, outW, y0, y1 int, rows []RowFunc, rowAll RowAllFunc) *rowErr {
	for y := y0; y < y1; y++ {
		if e := runRow(out[y*outW*channels:], img, channels, originX, originY, y, outW, rows, rowAll); e != nil {
			return e
		}
	}
	return nil
}

// evalStrips renders output rows [y0, y1) split across workers.  Every
// strip renders (no early abort) and the scan-order-minimum failure is
// reported, so the result — values and error — matches the serial scan
// for every worker count.
func evalStrips(out []byte, img *Image, channels, originX, originY, outW, y0, y1, workers int, rows []RowFunc, rowAll RowAllFunc) *rowErr {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > y1-y0 {
		workers = y1 - y0
	}
	if workers <= 1 {
		return evalRowsRange(out, img, channels, originX, originY, outW, y0, y1, rows, rowAll)
	}
	errs := make([]*rowErr, workers)
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		// Strip bounds are computed here and passed by value: a goroutine
		// capturing a reassigned variable (workers is clamped above) moves
		// it to the heap at FUNCTION entry, charging the serial path an
		// allocation per call it never uses.
		s0 := y0 + t*(y1-y0)/workers
		s1 := y0 + (t+1)*(y1-y0)/workers
		wg.Add(1)
		go func(t, s0, s1 int) {
			defer wg.Done()
			errs[t] = evalRowsRange(out, img, channels, originX, originY, outW, s0, s1, rows, rowAll)
		}(t, s0, s1)
	}
	wg.Wait()
	var best *rowErr
	for _, e := range errs {
		if e != nil && (best == nil || e.before(best)) {
			best = e
		}
	}
	return best
}

// runTile renders one output tile (tx, ty, tw, th) row by row, returning
// the tile's scan-order-first failure with coordinates rebased to the
// full output.
func runTile(out []byte, img *Image, channels, originX, originY, outW, tx, ty, tw, th int, rows []RowFunc, rowAll RowAllFunc) *rowErr {
	for y := ty; y < ty+th; y++ {
		if e := runRow(out[(y*outW+tx)*channels:], img, channels, originX+tx, originY, y, tw, rows, rowAll); e != nil {
			e.x += tx
			return e
		}
	}
	return nil
}

// renderTileBands renders tile bands [b0, b1) of a tileW x tileH blocking
// and returns the scan-order-first failure.  Tiles within a band share the
// row range, so a band's first erroring tile in tx order is NOT
// necessarily scan-first — every tile's error is min-merged.
func renderTileBands(out []byte, img *Image, channels, originX, originY, outW, outH, tileW, tileH, b0, b1 int, rows []RowFunc, rowAll RowAllFunc) *rowErr {
	var best *rowErr
	for b := b0; b < b1; b++ {
		ty := b * tileH
		th := outH - ty
		if th > tileH {
			th = tileH
		}
		for tx := 0; tx < outW; tx += tileW {
			tw := outW - tx
			if tw > tileW {
				tw = tileW
			}
			if e := runTile(out, img, channels, originX, originY, outW, tx, ty, tw, th, rows, rowAll); e != nil && (best == nil || e.before(best)) {
				best = e
			}
		}
	}
	return best
}

// evalTiled renders the output through a cache-blocked tileW x tileH loop
// nest — the schedule's literal tile extents — splitting tile bands over
// workers.  Values and the reported error match evalStrips exactly.
func evalTiled(out []byte, img *Image, channels, originX, originY, outW, outH, tileW, tileH, workers int, rows []RowFunc, rowAll RowAllFunc) *rowErr {
	if tileW <= 0 || tileW > outW {
		tileW = outW
	}
	if tileH <= 0 || tileH > outH {
		tileH = outH
	}
	if outW <= 0 || outH <= 0 {
		return nil
	}
	bands := (outH + tileH - 1) / tileH
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > bands {
		workers = bands
	}
	if workers <= 1 {
		return renderTileBands(out, img, channels, originX, originY, outW, outH, tileW, tileH, 0, bands, rows, rowAll)
	}
	errs := make([]*rowErr, workers)
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		// Band bounds and the clamped tile extents travel as arguments:
		// capturing reassigned variables (workers, tileW, tileH above)
		// would heap-allocate them at function entry, on the serial path
		// too.
		b0 := t * bands / workers
		b1 := (t + 1) * bands / workers
		wg.Add(1)
		go func(t, tw, th, b0, b1 int) {
			defer wg.Done()
			errs[t] = renderTileBands(out, img, channels, originX, originY, outW, outH, tw, th, b0, b1, rows, rowAll)
		}(t, tileW, tileH, b0, b1)
	}
	wg.Wait()
	var best *rowErr
	for _, e := range errs {
		if e != nil && (best == nil || e.before(best)) {
			best = e
		}
	}
	return best
}

// evalStages chains the pipeline under the schedule and returns the last
// stage's output as an image (the reduction driver's input when the
// kernel ends in one).  Every stage renders at the requested output size
// shifted by its recorded extent deltas.
func (k *Kernel) evalStages(sc *Scratch, img *Image, outW, outH int, spec ScheduleSpec) (*Image, error) {
	n := len(k.Stages)
	dims := sc.ints(2 * n)
	ws, hs := dims[:n:n], dims[n:]
	for si := range k.Stages {
		st := &k.Stages[si]
		ws[si], hs[si] = outW+st.DW, outH+st.DH
		if ws[si] <= 0 || hs[si] <= 0 {
			return nil, fmt.Errorf("ir: kernel %%s stage %%d extent %%dx%%d is empty", k.Name, si, ws[si], hs[si])
		}
	}
	if spec.Fusion == "slidingWindow" {
		return k.evalStagesFused(sc, img, ws, hs, spec)
	}
	cur := img
	for si := range k.Stages {
		st := &k.Stages[si]
		w, h := ws[si], hs[si]
		out := sc.buf(si, w*h*st.Channels)
		var e *rowErr
		if tw, th := spec.stageTile(si); tw > 0 || th > 0 {
			e = evalTiled(out, cur, st.Channels, st.OriginX, st.OriginY, w, h, tw, th, spec.Workers, st.Rows, st.RowAll)
		} else {
			e = evalStrips(out, cur, st.Channels, st.OriginX, st.OriginY, w, 0, h, spec.Workers, st.Rows, st.RowAll)
		}
		if e != nil {
			return nil, fmt.Errorf("ir: kernel %%s stage %%d at (%%d,%%d,%%d): %%w", k.Name, si, e.x, e.y, e.c, e.err)
		}
		ni := sc.img(si)
		*ni = Image{Pix: out, Stride: w * st.Channels, PixStep: st.Channels, ChanStep: 1, Tbl: cur.Tbl}
		cur = ni
	}
	return cur, nil
}

// fusedStage is one stage's streaming state within one worker strip of
// the sliding-window executor.
type fusedStage struct {
	st   *StageSpec
	w, h int
	in   *Image // the image this stage reads
	// Ring buffer of this stage's output (nil for the final stage).
	ring             []byte
	stride           int
	ringRows, winOut int
	yBase            int
	ringImg          Image // what the consumer reads; Base tracks yBase
	cursor, hi       int
	alive            bool
	fe               *rowErr
}

// evalStagesFused streams the pipeline: a producer stage computes only
// the rows its consumer still needs, ring-buffered, so no full-size
// intermediate plane is ever allocated.  Worker strips split the final
// rows and recompute their halo rows independently; per-stage errors
// merge to the scan-order first, and the earliest erroring stage wins —
// exactly the materializing executor's reporting.
func (k *Kernel) evalStagesFused(sc *Scratch, img *Image, ws, hs []int, spec ScheduleSpec) (*Image, error) {
	n := len(k.Stages)
	for si := 1; si < n; si++ {
		st := &k.Stages[si]
		if k.Stages[si-1].Channels != 1 {
			return nil, fmt.Errorf("ir: kernel %%s: only planar single-channel intermediates stream (stage %%d has %%d channels)", k.Name, si-1, k.Stages[si-1].Channels)
		}
		if st.MinDY < 0 || hs[si]-1+st.MaxDY >= hs[si-1] {
			return nil, fmt.Errorf("ir: kernel %%s stage %%d reads rows [%%d,%%d], outside its %%d-row producer", k.Name, si, st.MinDY, hs[si]-1+st.MaxDY, hs[si-1])
		}
		if st.MinDX < 0 || ws[si]-1+st.MaxDX >= ws[si-1] {
			// A horizontal overread wraps differently in a ring than in a
			// full plane; erroring keeps fusion result-identical or loud.
			return nil, fmt.Errorf("ir: kernel %%s stage %%d reads columns [%%d,%%d], outside its %%d-column producer", k.Name, si, st.MinDX, ws[si]-1+st.MaxDX, ws[si-1])
		}
	}
	last := n - 1
	out := sc.outBuf(ws[last] * hs[last] * k.Stages[last].Channels)
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	strips := workers
	if strips > hs[last] {
		strips = hs[last]
	}
	if strips < 1 {
		strips = 1
	}
	// The generated footprint-specialized strip driver replaces the
	// generic ring dispatch only at the minimal window (an explicit
	// WindowRows widens the ring, which the baked body does not model).
	gen := k.FusedStrip != nil && spec.WindowRows == 0
	if strips == 1 {
		errs := sc.errSlots(n)
		if gen {
			k.FusedStrip(sc, img, out, ws, hs, 0, hs[last], true, true, errs)
		} else {
			k.fusedStrip(sc, img, out, ws, hs, spec.WindowRows, 0, hs[last], true, true, errs)
		}
		for si := 0; si < n; si++ {
			if e := errs[si]; e != nil {
				return nil, fmt.Errorf("ir: kernel %%s stage %%d at (%%d,%%d,%%d): %%w", k.Name, si, e.x, e.y, e.c, e.err)
			}
		}
		ri := sc.img(n - 1)
		*ri = Image{Pix: out, Stride: ws[last] * k.Stages[last].Channels, PixStep: k.Stages[last].Channels, ChanStep: 1}
		return ri, nil
	}
	stripErrs := make([][]*rowErr, strips)
	var wg sync.WaitGroup
	for t := 0; t < strips; t++ {
		wsc := sc.worker(t)
		se := wsc.errSlots(n)
		stripErrs[t] = se
		// Strip bounds and the first/drain roles travel as arguments so
		// the goroutine never captures strips (reassigned above) — a
		// reassigned capture is heap-moved at function entry, charging the
		// single-strip path an allocation per call.
		s0 := t * hs[last] / strips
		s1 := (t + 1) * hs[last] / strips
		first, drain := t == 0, t == strips-1
		wg.Add(1)
		go func(wsc *Scratch, se []*rowErr, s0, s1 int, first, drain bool) {
			defer wg.Done()
			if gen {
				k.FusedStrip(wsc, img, out, ws, hs, s0, s1, first, drain, se)
			} else {
				k.fusedStrip(wsc, img, out, ws, hs, spec.WindowRows, s0, s1, first, drain, se)
			}
		}(wsc, se, s0, s1, first, drain)
	}
	wg.Wait()
	for si := 0; si < n; si++ {
		var best *rowErr
		for _, se := range stripErrs {
			if se[si] != nil && (best == nil || se[si].before(best)) {
				best = se[si]
			}
		}
		if best != nil {
			return nil, fmt.Errorf("ir: kernel %%s stage %%d at (%%d,%%d,%%d): %%w", k.Name, si, best.x, best.y, best.c, best.err)
		}
	}
	ri := sc.img(n - 1)
	*ri = Image{Pix: out, Stride: ws[last] * k.Stages[last].Channels, PixStep: k.Stages[last].Channels, ChanStep: 1}
	return ri, nil
}

// fusedStrip streams final-stage rows [s0, s1) through the chain and
// returns each stage's first error (nil entries for clean stages).  The
// first and drain strips also produce the producer rows no consumer row
// pulls — below and above the consumers' summed footprint — because the
// materializing chain computes every producer row and an error in one of
// them must not be lost.
func (k *Kernel) fusedStrip(sc *Scratch, img *Image, out []byte, ws, hs []int, windowRows, s0, s1 int, first, drain bool, errs []*rowErr) {
	n := len(k.Stages)
	fs := sc.stages(n)
	fs[n-1].cursor, fs[n-1].hi = s0, s1
	for i := n - 2; i >= 0; i-- {
		st := &k.Stages[i+1]
		lo := fs[i+1].cursor + st.MinDY
		if lo < 0 || first {
			lo = 0
		}
		hi := fs[i+1].hi + st.MaxDY
		if hi > hs[i] || drain {
			hi = hs[i]
		}
		fs[i].cursor, fs[i].hi = lo, hi
	}
	for i := range fs {
		s := &fs[i]
		s.st = &k.Stages[i]
		s.w, s.h = ws[i], hs[i]
		s.alive = true
		if i < n-1 {
			win := k.Stages[i+1].MaxDY - k.Stages[i+1].MinDY + 1
			rows := windowRows
			if rows < win {
				rows = win
			}
			if rows > hs[i] {
				rows = hs[i]
			}
			s.winOut, s.ringRows = win, rows
			s.stride = ws[i] // intermediates are planar single-channel
			s.ring = sc.buf(i, rows*s.stride)
			s.yBase = s.cursor
			s.ringImg = Image{Pix: s.ring, Base: -s.yBase * s.stride, Stride: s.stride, PixStep: 1, Tbl: img.Tbl}
		}
	}
	fs[0].in = img
	for i := 1; i < n; i++ {
		fs[i].in = &fs[i-1].ringImg
	}
	for fs[n-1].alive && fs[n-1].cursor < fs[n-1].hi {
		fusedProduce(fs, out, n-1)
	}
	for i := n - 2; i >= 0; i-- {
		for fs[i].alive && fs[i].cursor < fs[i].hi {
			fusedProduce(fs, out, i)
		}
	}
	for i := range fs {
		errs[i] = fs[i].fe
	}
}

// fusedProduce computes the current row of stage i, pulling the producer
// rows it needs first.  Stages stop at their first error; a stage whose
// producer died stops without an error of its own (the producer's
// dominates).
func fusedProduce(fs []fusedStage, out []byte, i int) {
	s := &fs[i]
	y := s.cursor
	if i > 0 {
		p := &fs[i-1]
		top := y + s.st.MaxDY
		for p.alive && p.cursor <= top && p.cursor < p.hi {
			fusedProduce(fs, out, i-1)
		}
		if !p.alive {
			s.alive = false
			return
		}
	}
	var dst []byte
	if i == len(fs)-1 {
		dst = out[y*s.w*s.st.Channels:]
	} else {
		ph := y - s.yBase
		if ph >= s.ringRows {
			// Recycle: slide the last winOut-1 rows (still needed by the
			// consumer) to the top and move the consumer's view so logical
			// row numbers stay put.
			shift := s.ringRows - (s.winOut - 1)
			copy(s.ring, s.ring[shift*s.stride:s.ringRows*s.stride])
			s.yBase += shift
			s.ringImg.Base = -s.yBase * s.stride
			ph = y - s.yBase
		}
		dst = s.ring[ph*s.stride:]
	}
	if e := runRow(dst, s.in, s.st.Channels, s.st.OriginX, s.st.OriginY, y, s.w, s.st.Rows, s.st.RowAll); e != nil {
		s.alive = false
		s.fe = e
		return
	}
	s.cursor++
}

// evalReduction accumulates over the domW x domH input domain and
// serializes the 4-byte bins little-endian.  The bin updates commute but
// error detection is a scan, so reduction rows always run serially.
func (k *Kernel) evalReduction(sc *Scratch, img *Image, domW, domH int) ([]byte, error) {
	// Accumulation over img completes inside evalReductionInto before the
	// serialization writes, so the shared output buffer is a safe target
	// even when a fused pipeline made img alias it.
	return k.evalReductionInto(sc.outBuf(k.Red.Bins*4), sc, img, domW, domH)
}

// evalReductionInto is evalReduction serializing into a caller-chosen
// buffer — the reduction-first path banks the table in a stage slot so
// the output buffer stays free for the consuming stages' pixels.
func (k *Kernel) evalReductionInto(out []byte, sc *Scratch, img *Image, domW, domH int) ([]byte, error) {
	r := k.Red
	bins := sc.binsBuf(r.Bins)
	clear(bins)
	copy(bins, r.Init)
	for y := 0; y < domH; y++ {
		if x, err := r.Row(bins, img, y, domW); err != nil {
			return nil, fmt.Errorf("ir: kernel %%s at (%%d,%%d): %%w", k.Name, x, y, err)
		}
	}
	if r.Suffix {
		var run uint32
		for i := range bins {
			run += bins[i]
			bins[i] = run
		}
	}
	for i, v := range bins {
		out[i*4] = byte(v)
		out[i*4+1] = byte(v >> 8)
		out[i*4+2] = byte(v >> 16)
		out[i*4+3] = byte(v >> 24)
	}
	return out, nil
}

// spanIn reports whether the whole index span [lo, hi] lies inside a
// backing of the given length — the hoisted bounds check of the row loops.
func spanIn(lo, hi, length int) bool {
	return lo >= 0 && hi < length
}

// floorDiv divides rounding toward negative infinity — the division the
// fractional affine index maps are defined with.
func floorDiv(a, b int) int {
	q := a / b
	if a%%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func errDivZero() error { return fmt.Errorf("ir: division by zero") }
func errModZero() error { return fmt.Errorf("ir: modulo by zero") }
func errTable(idx int64, n int) error {
	return fmt.Errorf("ir: table index %%d out of range (%%d elements)", idx, n)
}
func errLoad(x, y, c int) error {
	return fmt.Errorf("ir: compiled load at (%%d,%%d,%%d) outside the pixel backing", x, y, c)
}
func errRedIndex(idx int64, bins int) error {
	return fmt.Errorf("ir: reduction index %%d out of range (%%d bins)", idx, bins)
}
`, pkg, pkg)
	formatted, err := format.Source([]byte(b.String()))
	if err != nil {
		panic(fmt.Sprintf("ir: runtime template does not parse: %v", err))
	}
	return string(formatted)
}
