// Package ir defines the Halide-like stencil expression language lifted
// kernels are expressed in, together with an evaluator that executes a
// lifted kernel directly against image buffers (paper section 5: the
// expression trees extracted from the dynamic trace are the bodies of
// Halide update definitions).
//
// An expression computes one output sample as a function of input samples
// at constant offsets from the output coordinate (x, y, c), constants,
// read-only table lookups and known library calls.  Integer operations
// carry an explicit byte width and wrap exactly like the 32-bit machine the
// tree was lifted from, so evaluating a lifted kernel reproduces the legacy
// binary's output bit for bit.
package ir

import (
	"fmt"
	"math"
	"strings"
)

// Op enumerates the expression node kinds.
type Op uint8

// Expression operations.
const (
	OpInvalid Op = iota

	// Leaves.
	OpLoad   // input sample at (x+DX, y+DY, c+DC)
	OpConst  // integer constant (Val)
	OpConstF // floating point constant (F)

	// Integer arithmetic, masked to Width bytes.
	OpAdd
	OpSub
	OpMul
	OpMulHi // high 32 bits of a widening 32x32 unsigned multiply
	OpDiv   // unsigned
	OpMod   // unsigned
	OpAnd
	OpOr
	OpXor
	OpNot
	OpNeg
	OpShl
	OpShr // logical shift right
	OpSar // arithmetic shift right

	// Width changes.
	OpZExt    // zero extend (child masked at SrcWidth)
	OpSExt    // sign extend from SrcWidth to Width
	OpExtract // byte-extract Width bytes at byte offset Val from the child

	// High-level operations introduced by canonicalization.
	OpMin    // signed minimum
	OpMax    // signed maximum
	OpSelect // Args[0] != 0 ? Args[1] : Args[2]

	// Comparisons, introduced by predicated (branch-aware) lifting: the
	// operands are compared at Width bytes and the result is 0 or 1.
	// Greater-than forms are normalized away by swapping the operands, so
	// only equality, less-than and less-or-equal exist.
	OpCmpEq  // Args[0] == Args[1]
	OpCmpNe  // Args[0] != Args[1]
	OpCmpLtS // signed Args[0] < Args[1]
	OpCmpLeS // signed Args[0] <= Args[1]
	OpCmpLtU // unsigned Args[0] < Args[1]
	OpCmpLeU // unsigned Args[0] <= Args[1]

	// Table lookup: Table[index * Elem .. ), Args[0] is the index.
	OpTable
	// Stage-input table lookup: like OpTable, but the table bytes are not
	// baked into the tree — they are the serialized output of an earlier
	// reduction stage, bound at evaluation time.  Args[0] is the index,
	// Elem the element width in bytes.
	OpTableIn

	// Floating point.
	OpIntToFP // signed SrcWidth-byte integer to float64
	OpFPToInt // round float64 to nearest-even integer, masked to Width
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpCall // known library call Sym(Args[0])
)

var opNames = map[Op]string{
	OpLoad: "in", OpConst: "const", OpConstF: "constf",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpMulHi: "*hi", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpNot: "~", OpNeg: "neg",
	OpShl: "<<", OpShr: ">>", OpSar: ">>a",
	OpZExt: "zext", OpSExt: "sext", OpExtract: "extract",
	OpMin: "min", OpMax: "max", OpSelect: "select", OpTable: "table",
	OpTableIn: "tablein",
	OpCmpEq:   "==", OpCmpNe: "!=", OpCmpLtS: "<", OpCmpLeS: "<=",
	OpCmpLtU: "<u", OpCmpLeU: "<=u",
	OpIntToFP: "i2f", OpFPToInt: "f2i",
	OpFAdd: "+.", OpFSub: "-.", OpFMul: "*.", OpFDiv: "/.",
	OpCall: "call",
}

// String returns the compact spelling of the operation.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("irop(%d)", uint8(op))
}

// IsFloat reports whether the operation produces a floating point value.
func (op Op) IsFloat() bool {
	switch op {
	case OpConstF, OpIntToFP, OpFAdd, OpFSub, OpFMul, OpFDiv, OpCall:
		return true
	}
	return false
}

// IsCmp reports whether the operation is a comparison producing 0 or 1.
func (op Op) IsCmp() bool {
	switch op {
	case OpCmpEq, OpCmpNe, OpCmpLtS, OpCmpLeS, OpCmpLtU, OpCmpLeU:
		return true
	}
	return false
}

// Commutative reports whether the operation's integer arguments may be
// reordered without changing the result.  Floating point operations are
// excluded: reassociating or reordering them changes rounding.
func (op Op) Commutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpMin, OpMax:
		return true
	}
	return false
}

// Associative reports whether chains of the operation may be flattened.
func (op Op) Associative() bool {
	return op.Commutative()
}

// Expr is one node of a lifted stencil expression tree.
type Expr struct {
	Op Op

	// DX, DY, DC are the load offsets relative to the output coordinate
	// (OpLoad only).
	DX, DY, DC int

	// Val is the integer constant for OpConst and the byte offset for
	// OpExtract.
	Val int64
	// F is the floating point constant for OpConstF.
	F float64

	// Width is the result width in bytes for integer operations; results
	// wrap at this width exactly like the lifted machine code.  Zero means
	// "no masking" (leaves, float ops).
	Width int
	// SrcWidth is the source width in bytes for OpZExt, OpSExt, OpIntToFP
	// and OpExtract.
	SrcWidth int

	// Sym is the library function name for OpCall.
	Sym string

	// Table holds the read-only table contents for OpTable; Elem is the
	// element width in bytes.
	Table []byte
	Elem  int

	// Args are the operand subtrees.
	Args []*Expr
}

// Load returns an input-sample leaf at offset (dx, dy, dc).
func Load(dx, dy, dc int) *Expr { return &Expr{Op: OpLoad, DX: dx, DY: dy, DC: dc} }

// Const returns an integer constant leaf.
func Const(v int64) *Expr { return &Expr{Op: OpConst, Val: v} }

// ConstF returns a floating point constant leaf.
func ConstF(f float64) *Expr { return &Expr{Op: OpConstF, F: f} }

// Bin returns a width-masked binary integer node.
func Bin(op Op, width int, a, b *Expr) *Expr {
	return &Expr{Op: op, Width: width, Args: []*Expr{a, b}}
}

// Clone returns a deep copy of the expression.
func (e *Expr) Clone() *Expr {
	c := *e
	if e.Args != nil {
		c.Args = make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = a.Clone()
		}
	}
	return &c
}

// Size returns the number of nodes in the tree.
func (e *Expr) Size() int {
	n := 1
	for _, a := range e.Args {
		n += a.Size()
	}
	return n
}

// Key returns a canonical structural key for the tree: two trees compute
// the same function iff (after canonicalization) their keys are equal.
// Unlike String it encodes widths and table identities, so it is the
// equality the lifting pipeline uses to collapse unrolled copies.
func (e *Expr) Key() string {
	var b strings.Builder
	e.key(&b)
	return b.String()
}

func (e *Expr) key(b *strings.Builder) {
	if e.keyHeader(b, false) {
		return
	}
	b.WriteString("(")
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(",")
		}
		a.key(b)
	}
	b.WriteString(")")
}

// keyHeader writes the operator-and-scalar-field prefix of the node's
// structural key — everything except the children — and reports whether
// the node is a leaf.  exactFloats spells float constants as IEEE-754 bit
// patterns, so distinct NaN payloads never share a key; the compiler's
// common-subexpression elimination demands that exactness, the printable
// Key keeps the readable %g form.
func (e *Expr) keyHeader(b *strings.Builder, exactFloats bool) bool {
	switch e.Op {
	case OpLoad:
		fmt.Fprintf(b, "in(%d,%d,%d)", e.DX, e.DY, e.DC)
		return true
	case OpConst:
		fmt.Fprintf(b, "%d", e.Val)
		return true
	case OpConstF:
		if exactFloats {
			fmt.Fprintf(b, "f%016x", math.Float64bits(e.F))
		} else {
			fmt.Fprintf(b, "%g", e.F)
		}
		return true
	}
	b.WriteString(e.Op.String())
	switch e.Op {
	case OpZExt, OpSExt, OpIntToFP:
		fmt.Fprintf(b, "%d>%d", e.SrcWidth, e.Width)
	case OpExtract:
		fmt.Fprintf(b, "@%d w%d", e.Val, e.Width)
	case OpTable:
		fmt.Fprintf(b, "#%x/%d", tableFingerprint(e.Table), e.Elem)
	case OpTableIn:
		fmt.Fprintf(b, "/%d", e.Elem)
	case OpCall:
		fmt.Fprintf(b, ":%s", e.Sym)
	default:
		if e.Width != 0 {
			fmt.Fprintf(b, "w%d", e.Width)
		}
	}
	return false
}

// tableFingerprint hashes table contents (FNV-1a) so distinct tables get
// distinct keys without embedding the whole table in the key.
func tableFingerprint(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range data {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// String renders the expression in a compact Halide-like syntax, e.g.
//
//	min(max(5*in(x, y) - (in(x-1, y) + in(x+1, y)), 0), 255)
func (e *Expr) String() string {
	var b strings.Builder
	e.print(&b)
	return b.String()
}

func coord(base string, d int) string {
	switch {
	case d > 0:
		return fmt.Sprintf("%s+%d", base, d)
	case d < 0:
		return fmt.Sprintf("%s-%d", base, -d)
	}
	return base
}

func (e *Expr) print(b *strings.Builder) {
	switch e.Op {
	case OpLoad:
		fmt.Fprintf(b, "in(%s, %s", coord("x", e.DX), coord("y", e.DY))
		if e.DC != 0 {
			fmt.Fprintf(b, ", %s", coord("c", e.DC))
		}
		b.WriteString(")")
	case OpConst:
		fmt.Fprintf(b, "%d", e.Val)
	case OpConstF:
		fmt.Fprintf(b, "%g", e.F)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpSar, OpFAdd, OpFSub, OpFMul, OpFDiv, OpMulHi,
		OpCmpEq, OpCmpNe, OpCmpLtS, OpCmpLeS, OpCmpLtU, OpCmpLeU:
		b.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				fmt.Fprintf(b, " %s ", e.Op)
			}
			a.print(b)
		}
		b.WriteString(")")
	case OpNot, OpNeg:
		fmt.Fprintf(b, "%s(", e.Op)
		e.Args[0].print(b)
		b.WriteString(")")
	case OpZExt, OpSExt:
		// Width changes are semantically important but noisy; render the
		// child with a light annotation only for sign extension.
		if e.Op == OpSExt {
			fmt.Fprintf(b, "i%d(", e.SrcWidth*8)
			e.Args[0].print(b)
			b.WriteString(")")
		} else {
			e.Args[0].print(b)
		}
	case OpExtract:
		fmt.Fprintf(b, "byte%d(", e.Val)
		e.Args[0].print(b)
		b.WriteString(")")
	case OpMin, OpMax:
		fmt.Fprintf(b, "%s(", e.Op)
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			a.print(b)
		}
		b.WriteString(")")
	case OpSelect:
		b.WriteString("select(")
		e.Args[0].print(b)
		b.WriteString(", ")
		e.Args[1].print(b)
		b.WriteString(", ")
		e.Args[2].print(b)
		b.WriteString(")")
	case OpTable:
		b.WriteString("lut[")
		e.Args[0].print(b)
		b.WriteString("]")
	case OpTableIn:
		b.WriteString("tbl[")
		e.Args[0].print(b)
		b.WriteString("]")
	case OpIntToFP:
		b.WriteString("float(")
		e.Args[0].print(b)
		b.WriteString(")")
	case OpFPToInt:
		b.WriteString("round(")
		e.Args[0].print(b)
		b.WriteString(")")
	case OpCall:
		fmt.Fprintf(b, "%s(", e.Sym)
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			a.print(b)
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "%s(", e.Op)
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			a.print(b)
		}
		b.WriteString(")")
	}
}

// AxisMap is an affine (rational) index map along one output axis: output
// coordinate x reads input coordinate floor((Num*x + Off) / Den).  The
// zero value is the identity map (Num=1, Den=1, Off=0), so kernels lifted
// before index maps existed need no migration.  Lifted maps are
// normalized: Num >= 1, Den >= 1, Off >= 0, and gcd reduction is the
// lifter's job (a {2,2,0} map is spelled {1,1,0}).
type AxisMap struct {
	Num, Den, Off int
}

// Identity reports whether the map is the identity (including the zero
// value).
func (m AxisMap) Identity() bool {
	return m == AxisMap{} || (m.Num == 1 && m.Den == 1 && m.Off == 0)
}

// Norm returns the effective (num, den, off) triple, resolving the zero
// value to the identity.
func (m AxisMap) Norm() (num, den, off int) {
	if (m == AxisMap{}) {
		return 1, 1, 0
	}
	return m.Num, m.Den, m.Off
}

// Apply maps one output coordinate to its input coordinate.
func (m AxisMap) Apply(x int) int {
	num, den, off := m.Norm()
	if den == 1 {
		return num*x + off
	}
	return floorDiv(num*x+off, den)
}

// String renders the map as the input-coordinate formula for an axis.
func (m AxisMap) String() string { return m.axisString("x") }

func (m AxisMap) axisString(axis string) string {
	num, den, off := m.Norm()
	s := axis
	if num != 1 {
		s = fmt.Sprintf("%d*%s", num, axis)
	}
	if off != 0 {
		s = fmt.Sprintf("%s+%d", s, off)
	}
	if den != 1 {
		s = fmt.Sprintf("(%s)/%d", s, den)
	}
	return s
}

// floorDiv is division rounding toward negative infinity (what the x86
// sar-based strength reductions and C's >> compute for the lifted code).
func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Kernel is a lifted stencil kernel: one expression tree per output channel
// over an output grid.  The output coordinate frame is the written region
// discovered by buffer reconstruction; load offsets are relative to it.
type Kernel struct {
	Name string
	// OutWidth and OutHeight are the extents of the written output region
	// in pixels; Channels is the number of samples per pixel.
	OutWidth, OutHeight, Channels int
	// OriginX and OriginY map output coordinates into the input: output
	// pixel (x, y) is centered on input pixel (x+OriginX, y+OriginY).  A
	// filter that only writes an interior window (like the sharpen kernel)
	// has a nonzero origin; full-frame filters have origin (0, 0).
	OriginX, OriginY int
	// MapX and MapY are the affine index maps of a resize-style kernel:
	// output (x, y) is centered on input (MapX(x)+OriginX, MapY(y)+OriginY),
	// and load offsets are relative to that mapped center.  Zero values are
	// the identity, recovering the classic stencil frame.  Affine kernels
	// are normalized by the lifter to Origin (0, 0) with any centering
	// folded into the maps' offsets.
	MapX, MapY AxisMap
	// Trees holds the per-channel expression trees (len == Channels).
	Trees []*Expr
}

// Mapped reports whether the kernel uses a non-identity index map.
func (k *Kernel) Mapped() bool { return !k.MapX.Identity() || !k.MapY.Identity() }

// String renders the kernel as Halide-like update definitions.
func (k *Kernel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s: %dx%dx%d\n", k.Name, k.OutWidth, k.OutHeight, k.Channels)
	if k.Mapped() {
		fmt.Fprintf(&b, "// index map: x' = %s, y' = %s\n", k.MapX.axisString("x"), k.MapY.axisString("y"))
	}
	uniform := true
	for _, t := range k.Trees[1:] {
		if t.Key() != k.Trees[0].Key() {
			uniform = false
		}
	}
	if uniform {
		fmt.Fprintf(&b, "out(x, y, c) = %s\n", k.Trees[0])
	} else {
		for c, t := range k.Trees {
			fmt.Fprintf(&b, "out(x, y, %d) = %s\n", c, t)
		}
	}
	return b.String()
}
