package ir

import (
	"math"
	"testing"

	"helium/internal/image"
)

// constSource returns a fixed sample everywhere.
type constSource uint8

func (s constSource) Sample(x, y, c int) uint8 { return uint8(s) }

func evalInt(t *testing.T, e *Expr, src Source) int64 {
	t.Helper()
	v, err := e.Eval(src, 0, 0, 0)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return int64(v)
}

func TestIntegerWidthSemantics(t *testing.T) {
	// 32-bit wraparound: 0xffffffff + 1 == 0.
	add := Bin(OpAdd, 4, Const(0xffffffff), Const(1))
	if got := evalInt(t, add, nil); got != 0 {
		t.Errorf("32-bit add wrap = %d, want 0", got)
	}
	// Byte-width subtraction wraps at 8 bits.
	sub := Bin(OpSub, 1, Const(0), Const(1))
	if got := evalInt(t, sub, nil); got != 0xff {
		t.Errorf("8-bit sub wrap = %d, want 255", got)
	}
	// Arithmetic shift preserves the width-4 sign.
	sar := Bin(OpSar, 4, Const(-8&0xffffffff), Const(2))
	if got := evalInt(t, sar, nil); got != int64(uint32(0xfffffffe)) {
		t.Errorf("sar = %#x, want 0xfffffffe", got)
	}
	// Logical shift does not.
	shr := Bin(OpShr, 4, Const(-8&0xffffffff), Const(2))
	if got := evalInt(t, shr, nil); got != 0x3ffffffe {
		t.Errorf("shr = %#x, want 0x3ffffffe", got)
	}
	// MulHi returns the high half of the widening product.
	hi := Bin(OpMulHi, 4, Const(0x80000000), Const(4))
	if got := evalInt(t, hi, nil); got != 2 {
		t.Errorf("mulhi = %d, want 2", got)
	}
	// Sign extension from a byte.
	sx := &Expr{Op: OpSExt, Width: 4, SrcWidth: 1, Args: []*Expr{Const(0x80)}}
	if got := evalInt(t, sx, nil); got != int64(uint32(0xffffff80)) {
		t.Errorf("sext = %#x, want 0xffffff80", got)
	}
	// Extract pulls out an interior byte.
	ext := &Expr{Op: OpExtract, Width: 1, SrcWidth: 4, Val: 1, Args: []*Expr{Const(0xa1b2c3d4)}}
	if got := evalInt(t, ext, nil); got != 0xc3 {
		t.Errorf("extract byte 1 = %#x, want 0xc3", got)
	}
}

func TestMinMaxSelectSemantics(t *testing.T) {
	// Min/max compare signed at the node width: 0xffffffff is -1.
	minE := &Expr{Op: OpMin, Width: 4, Args: []*Expr{Const(0xffffffff), Const(3)}}
	if got := evalInt(t, minE, nil); got != int64(uint32(0xffffffff)) {
		t.Errorf("min(-1, 3) = %#x, want -1 (masked)", got)
	}
	maxE := &Expr{Op: OpMax, Width: 4, Args: []*Expr{Const(0xffffffff), Const(3)}}
	if got := evalInt(t, maxE, nil); got != 3 {
		t.Errorf("max(-1, 3) = %d, want 3", got)
	}
	sel := &Expr{Op: OpSelect, Args: []*Expr{Const(0), Const(10), Const(20)}}
	if got := evalInt(t, sel, nil); got != 20 {
		t.Errorf("select(0, 10, 20) = %d, want 20", got)
	}
}

func TestTableAndCall(t *testing.T) {
	table := &Expr{Op: OpTable, Table: []byte{10, 20, 30}, Elem: 1, Args: []*Expr{Load(0, 0, 0)}}
	if got := evalInt(t, table, constSource(2)); got != 30 {
		t.Errorf("table[2] = %d, want 30", got)
	}
	if _, err := table.Eval(constSource(3), 0, 0, 0); err == nil {
		t.Error("out-of-range table index must error")
	}

	call := &Expr{Op: OpCall, Sym: "sqrt", Args: []*Expr{ConstF(81)}}
	v, err := call.Eval(nil, 0, 0, 0)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if f := math.Float64frombits(v); f != 9 {
		t.Errorf("sqrt(81) = %g, want 9", f)
	}
	bad := &Expr{Op: OpCall, Sym: "nope", Args: []*Expr{ConstF(1)}}
	if _, err := bad.Eval(nil, 0, 0, 0); err == nil {
		t.Error("unknown call symbol must error")
	}
}

func TestFloatRoundTrip(t *testing.T) {
	// round(float(200) * 1.5) via the float pipeline.
	e := &Expr{Op: OpFPToInt, Width: 4, Args: []*Expr{
		{Op: OpFMul, Args: []*Expr{
			{Op: OpIntToFP, SrcWidth: 4, Args: []*Expr{Const(200)}},
			ConstF(1.5),
		}},
	}}
	if got := evalInt(t, e, nil); got != 300 {
		t.Errorf("round(200*1.5) = %d, want 300", got)
	}
	// Round-to-even at the .5 boundary, like the VM's FISTP.
	half := &Expr{Op: OpFPToInt, Width: 4, Args: []*Expr{ConstF(2.5)}}
	if got := evalInt(t, half, nil); got != 2 {
		t.Errorf("round(2.5) = %d, want 2 (round to even)", got)
	}
}

func TestKernelEvalOriginAndOffsets(t *testing.T) {
	p := image.NewPlane(4, 3, 1)
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			p.Set(x, y, byte(10*y+x))
		}
	}
	p.PadEdges()
	// out(x,y) = in(x+1, y) with origin (1, 0): reads two columns right.
	k := &Kernel{
		Name: "shift", OutWidth: 2, OutHeight: 3, Channels: 1,
		OriginX: 1,
		Trees:   []*Expr{Load(1, 0, 0)},
	}
	out, err := k.Eval(PlaneSource{P: p})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{2, 3, 12, 13, 22, 23}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestKeyDistinguishesWidthAndTables(t *testing.T) {
	a := Bin(OpAdd, 4, Load(0, 0, 0), Const(1))
	b := Bin(OpAdd, 2, Load(0, 0, 0), Const(1))
	if a.Key() == b.Key() {
		t.Error("keys must encode operation width")
	}
	t1 := &Expr{Op: OpTable, Table: []byte{1, 2}, Elem: 1, Args: []*Expr{Load(0, 0, 0)}}
	t2 := &Expr{Op: OpTable, Table: []byte{1, 3}, Elem: 1, Args: []*Expr{Load(0, 0, 0)}}
	if t1.Key() == t2.Key() {
		t.Error("keys must distinguish table contents")
	}
	if t1.Key() != t1.Clone().Key() {
		t.Error("cloning must preserve the key")
	}
}

func TestStringRendering(t *testing.T) {
	e := &Expr{Op: OpMin, Width: 4, Args: []*Expr{
		{Op: OpMax, Width: 4, Args: []*Expr{Load(-1, 2, 0), Const(0)}},
		Const(255),
	}}
	if got, want := e.String(), "min(max(in(x-1, y+2), 0), 255)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
