// Width inference over register programs.  The lifter's interval analysis
// (Bounds, in interval.go) proves facts about expression trees; this pass
// proves the corresponding facts about the lowered program: a conservative
// unsigned upper bound for the value stored in every register.  From those
// bounds the compiler picks the narrowest lane width — 8, 16 or 32 bits —
// in which the whole program can execute exactly, which both the
// width-specialized row executor (lanes.go) and the Go source backend
// (codegen.go) exploit: narrower lanes quarter or halve the row-buffer
// traffic and let generated code compute in uint8/uint16/uint32.
//
// Soundness: every register bound `hi[r]` satisfies "the value stored in r
// by the 64-bit reference executor is always <= hi[r]".  If every bound
// (including the pooled constants) fits below 2^B, then B-bit arithmetic
// reproduces the 64-bit execution bit for bit:
//
//   - for ops whose masking distributes over truncation (add, sub, mul,
//     bitwise ops, shifts left, negate, not, zero-extension), the B-bit
//     result is the low B bits of the 64-bit stored value, which IS the
//     stored value because it fits;
//   - for the value-exact ops (shr, div, mod, extract, table, select,
//     loads), all operands are exact so the result is exact;
//   - the signed ops (min, max, sar, sext) are executed by sign-extending
//     the exact operand value in 64-bit space (lanes.go reuses sx), so
//     they are exact by construction.
//
// Programs containing floating point stay at 64 bits: float values are
// full IEEE-754 bit patterns.
package ir

import (
	"math"
	"math/bits"
)

// widthInfo is the outcome of the width-inference pass.
type widthInfo struct {
	// laneBits is 8, 16 or 32 when every register provably fits that many
	// bits and every instruction is lane-executable; 64 otherwise.
	laneBits int
	// hi[r] is the conservative unsigned upper bound of register r's
	// stored value (post-mask); constants hold their exact value.
	hi []uint64
}

func satAdd(a, b uint64) uint64 {
	s, carry := bits.Add64(a, b, 0)
	if carry != 0 {
		return math.MaxUint64
	}
	return s
}

func satMul(a, b uint64) uint64 {
	h, l := bits.Mul64(a, b)
	if h != 0 {
		return math.MaxUint64
	}
	return l
}

// bitBound is the smallest all-ones value >= a: the tight upper bound for
// OR/XOR combinations of values <= a.
func bitBound(a uint64) uint64 {
	if a == math.MaxUint64 {
		return a
	}
	return 1<<bits.Len64(a) - 1
}

// signedWidthOK reports whether hi provably has the sign bit clear when
// interpreted at the signed width encoded by the sign-extension shift sh
// (sh 56/48/32 = 8/16/32-bit signed, sh 0 = 64-bit signed).
func signedWidthOK(hi uint64, sh uint8) bool {
	return hi <= math.MaxUint64>>(sh+1)
}

// tableBound scans a lookup table for its maximum element value.
func tableBound(table []byte, elem int) uint64 {
	var m uint64
	for off := 0; off+elem <= len(table); off += elem {
		var v uint64
		for i := 0; i < elem; i++ {
			v |= uint64(table[off+i]) << (8 * i)
		}
		m = max(m, v)
	}
	return m
}

// inferWidths runs the interval pass over a lowered program.  Must be
// called after finalize has stamped masks and shifts.
func inferWidths(p *Program) widthInfo {
	info := widthInfo{hi: make([]uint64, p.numRegs)}
	hi := info.hi
	for i, c := range p.consts {
		hi[i] = c
	}

	laneOK := true // all live instructions executable in narrow lanes
	for i := range p.insts {
		in := &p.insts[i]
		if in.dead {
			// Skipped by every executor: its value constrains nothing.
			continue
		}
		a := func() uint64 { return hi[in.a] }
		b := func() uint64 { return hi[in.b] }
		var h uint64
		switch in.op {
		case OpLoad:
			h = 255
		case opSumTaps:
			h = uint64(in.val)
			h = satAdd(h, satMul(255, uint64(len(in.taps))))
			for _, r := range in.args {
				h = satAdd(h, hi[r])
			}
			h = min(h, in.mask)
		case opMulN:
			h = 1
			for _, r := range in.args {
				h = satMul(h, hi[r])
			}
			h = min(h, in.mask)
		case opAndN:
			h = in.mask
			for _, r := range in.args {
				h = min(h, hi[r])
			}
		case opOrN, opXorN:
			h = 0
			for _, r := range in.args {
				h = max(h, hi[r])
			}
			h = min(bitBound(h), in.mask)
		case opMinN:
			// With every operand provably nonnegative at the compare
			// width, the minimum is <= the smallest operand bound.
			h = in.mask
			allPos := true
			for _, r := range in.args {
				if !signedWidthOK(hi[r], in.sh) {
					allPos = false
				}
				h = min(h, hi[r])
			}
			if !allPos {
				h = in.mask
			}
		case opMaxN:
			h = 0
			allPos := true
			for _, r := range in.args {
				if !signedWidthOK(hi[r], in.sh) {
					allPos = false
				}
				h = max(h, hi[r])
			}
			if allPos {
				h = min(h, in.mask)
			} else {
				h = in.mask
			}
		case OpSub, OpNot, OpNeg, OpShl:
			h = in.mask
		case OpMulHi:
			h = min(in.mask, (min(a(), 0xffffffff)*min(b(), 0xffffffff))>>32)
		case OpDiv, OpMod:
			h = min(a(), in.mask)
		case opDivShift:
			h = min(a(), in.mask) >> uint(in.val)
		case opDivMagic:
			h = min(a(), in.mask) / in.dcon
		case opModShift, opModMagic:
			h = min(in.dcon-1, min(a(), in.mask))
		case OpShr:
			h = min(a(), in.mask)
		case OpSar:
			if signedWidthOK(a(), in.sh) {
				h = min(a(), in.mask)
			} else {
				h = in.mask
			}
		case OpZExt:
			h = min(a(), in.mask) // mask is the srcWidth mask
		case OpSExt:
			if signedWidthOK(a(), in.sh) {
				h = min(a(), in.mask)
			} else {
				h = in.mask
			}
		case OpExtract:
			h = min(a()>>(8*uint(in.val)), in.mask)
		case OpSelect:
			h = max(b(), hi[in.c])
		case OpCmpEq, OpCmpNe, OpCmpLtS, OpCmpLeS, OpCmpLtU, OpCmpLeU:
			h = 1
		case OpTable:
			h = tableBound(in.table, in.elem)
		case OpTableIn:
			// The stage-input table is bound at evaluation time, so only
			// the element width bounds its values.
			h = widthMask(in.elem)
		default:
			// Floating point and anything unrecognized: full bit patterns,
			// not lane-executable.
			h = math.MaxUint64
			laneOK = false
		}
		hi[in.dst] = h
	}

	info.laneBits = 64
	if laneOK && !p.rootFloat {
		// Only registers live execution actually READS bound the lane
		// width: the root and the operands of executing instructions.
		// That covers every live result (each is someone's operand, or
		// the root), while excluding dead pool constants (fold
		// leftovers) and the never-read results of instructions kept
		// only for their fault checks.
		refd := make([]bool, p.numRegs)
		refd[p.root] = true
		for i := range p.insts {
			in := &p.insts[i]
			if in.dead {
				continue
			}
			for _, r := range operands(in) {
				refd[r] = true
			}
		}
		top := uint64(0)
		for r, h := range hi {
			if refd[r] {
				top = max(top, h)
			}
		}
		switch {
		case top <= math.MaxUint8:
			info.laneBits = 8
		case top <= math.MaxUint16:
			info.laneBits = 16
		case top <= math.MaxUint32:
			info.laneBits = 32
		}
	}
	return info
}

// LaneBits reports the inferred execution width of the program in bits: 8,
// 16 or 32 when the width-inference pass proved every intermediate value
// fits (and the row executor will run in that lane type), 64 otherwise.
func (p *Program) LaneBits() int { return p.width.laneBits }
