package ir

import (
	"bytes"
	"fmt"
	"testing"

	"helium/internal/image"
	"helium/internal/schedule"
)

// materializeChain is the reference the fused driver must match: every
// stage evaluates fully (serial), intermediates become exact-extent
// planes, and an erroring stage aborts the chain — the same structure as
// lift's chain evaluator.
func materializeChain(stages []*CompiledKernel, src Source) ([]byte, error) {
	var out []byte
	var err error
	for i, ck := range stages {
		out, err = ck.Eval(src)
		if err != nil {
			return nil, err
		}
		if i+1 < len(stages) {
			p := image.NewPlane(ck.OutWidth, ck.OutHeight, 0)
			p.SetInterior(out)
			src = PlaneSource{P: p}
		}
	}
	return out, nil
}

// exprBounds walks a tree for its tap offset bounding box.
func exprBounds(e *Expr) (minDX, maxDX, minDY, maxDY int) {
	first := true
	var walk func(*Expr)
	walk = func(e *Expr) {
		if e.Op == OpLoad {
			if first {
				minDX, maxDX, minDY, maxDY = e.DX, e.DX, e.DY, e.DY
				first = false
			} else {
				minDX, maxDX = min(minDX, e.DX), max(maxDX, e.DX)
				minDY, maxDY = min(minDY, e.DY), max(maxDY, e.DY)
			}
		}
		for _, a := range e.Args {
			walk(a)
		}
	}
	walk(e)
	return
}

// chainFromTrees builds a compiled pipeline whose final stage renders
// outW x outH: each stage's origin recenters its taps nonnegative and
// every producer's extent is exactly what its consumer touches, the same
// shape the lifter reconstructs.
func chainFromTrees(t *testing.T, trees []*Expr, outW, outH int) []*CompiledKernel {
	t.Helper()
	n := len(trees)
	stages := make([]*CompiledKernel, n)
	w, h := outW, outH
	for i := n - 1; i >= 0; i-- {
		minDX, maxDX, minDY, maxDY := exprBounds(trees[i])
		k := &Kernel{
			Name:     fmt.Sprintf("chain#%d", i),
			OutWidth: w, OutHeight: h, Channels: 1,
			OriginX: -minDX, OriginY: -minDY,
			Trees: []*Expr{trees[i]},
		}
		ck, err := k.Compile()
		if err != nil {
			t.Fatalf("stage %d: Compile: %v", i, err)
		}
		stages[i] = ck
		// The producer must cover this stage's whole footprint.
		w += maxDX - minDX
		h += maxDY - minDY
	}
	return stages
}

// fuseSource is the deterministic padded input plane of the fusion tests;
// generous padding keeps stage-0 taps in range unless a test wants
// faults.
func fuseSource(seed uint64, w, h, pad int) *image.Plane {
	p := image.NewPlane(w, h, pad)
	p.FillPattern(seed)
	return p
}

// zext wraps a byte tap to a 32-bit lane.
func zext(e *Expr) *Expr { return &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{e}} }

// fuseTreeGen builds random single-channel stage trees with bounded tap
// footprints and optional fault-capable ops (division by a data-dependent
// value, table lookups that can range-fault).
type fuseTreeGen struct {
	r      *testRNG
	faults bool
}

func (g *fuseTreeGen) tap() *Expr {
	return zext(Load(g.r.intn(3)-1, g.r.intn(5)-2, 0))
}

func (g *fuseTreeGen) tree(depth int) *Expr {
	if depth <= 0 {
		if g.r.intn(3) == 0 {
			return Const(int64(g.r.intn(9) + 1))
		}
		return g.tap()
	}
	switch g.r.intn(8) {
	case 0:
		return Bin(OpAdd, 4, g.tree(depth-1), g.tree(depth-1))
	case 1:
		return Bin(OpMul, 4, g.tree(depth-1), Const(int64(g.r.intn(5)+1)))
	case 2:
		return Bin(OpSub, 4, g.tree(depth-1), g.tree(depth-1))
	case 3:
		return &Expr{Op: OpMin, Width: 4, Args: []*Expr{g.tree(depth - 1), Const(255)}}
	case 4:
		return &Expr{Op: OpMax, Width: 4, Args: []*Expr{g.tree(depth - 1), Const(0)}}
	case 5:
		return Bin(OpDiv, 4, g.tree(depth-1), Const(int64(g.r.intn(7)+2)))
	case 6:
		if g.faults {
			// Divisor is a wrapping difference of taps: zero whenever two
			// neighborhood samples collide, a data-dependent fault.
			return Bin(OpDiv, 4, g.tree(depth-1), Bin(OpSub, 4, g.tap(), g.tap()))
		}
		return Bin(OpAnd, 4, g.tree(depth-1), Const(255))
	default:
		if g.faults && g.r.intn(2) == 0 {
			// A short table faults on bright samples.
			tab := make([]byte, 180)
			for i := range tab {
				tab[i] = byte(i * 3)
			}
			return &Expr{Op: OpTable, Table: tab, Elem: 1, Args: []*Expr{Load(0, g.r.intn(3)-1, 0)}}
		}
		return g.tap()
	}
}

// TestFusedRandomChains is the fusion property test: random 2-4 stage
// pipelines, evaluated materializing and fused under several window sizes
// and worker counts, must agree bit-exactly — values, error positions and
// error messages.
func TestFusedRandomChains(t *testing.T) {
	const outW, outH = 13, 11
	values, faults := 0, 0
	for i := 0; i < 120; i++ {
		r := testRNG(uint64(i)*2654435761 + 17)
		g := &fuseTreeGen{r: &r, faults: i%3 != 0}
		nStages := 2 + r.intn(3)
		trees := make([]*Expr, nStages)
		for s := range trees {
			trees[s] = g.tree(2 + r.intn(2))
		}
		stages := chainFromTrees(t, trees, outW, outH)
		src := PlaneSource{P: fuseSource(uint64(i), stages[0].OutWidth+4, stages[0].OutHeight+4, 4)}

		want, werr := materializeChain(stages, src)
		if werr != nil {
			faults++
		} else {
			values++
		}
		for _, win := range []int{0, 2, 7} {
			for _, workers := range []int{1, 2, 5} {
				sc := &schedule.Schedule{Fusion: schedule.SlidingWindow, WindowRows: win, Workers: workers}
				got, gerr := EvalFused(stages, src, sc)
				id := fmt.Sprintf("chain %d (%d stages) win=%d workers=%d", i, nStages, win, workers)
				if werr != nil {
					if gerr == nil {
						t.Fatalf("%s: fused succeeded, materializing errors with %v", id, werr)
					}
					if gerr.Error() != werr.Error() {
						t.Fatalf("%s: fused error %q, want %q", id, gerr, werr)
					}
					continue
				}
				if gerr != nil {
					t.Fatalf("%s: fused error %v, materializing succeeds", id, gerr)
				}
				if !bytes.Equal(got, want) {
					bad := 0
					for j := range got {
						if got[j] != want[j] {
							bad++
						}
					}
					t.Fatalf("%s: fused output differs on %d/%d samples", id, bad, len(want))
				}
			}
		}
	}
	if values < 20 || faults < 20 {
		t.Fatalf("fusion corpus is unbalanced: %d value chains, %d faulting chains", values, faults)
	}
	t.Logf("fused differential: %d chains (%d values, %d faults) bit-exact", values+faults, values, faults)
}

// TestFusedProducerErrorDominates pins the error-ordering semantics the
// drain pass exists for: when a consumer stage faults early but its
// producer faults anywhere at all, the chain must report the producer's
// error — the materializing executor never runs the consumer in that
// case.
func TestFusedProducerErrorDominates(t *testing.T) {
	const outW, outH = 10, 8
	// Stage 1 (consumer) table-faults at its very first sample; stage 0
	// (producer) divides by in(x,y)-K, faulting only near the bottom of
	// its extent — far later in fused production order.
	srcPlane := fuseSource(99, outW+8, outH+8, 4)

	tinyTab := []byte{1, 2, 3, 4}
	consumer := &Expr{Op: OpTable, Table: tinyTab, Elem: 1, Args: []*Expr{Load(0, 1, 0)}}

	// Pick K = the value of a sample in the producer's LAST row so the
	// producer's first fault lands there.
	prodH := outH + 1 // consumer taps dy in [0,1]
	k := int64(srcPlane.At(3, prodH-1))
	producer := Bin(OpDiv, 4, Const(1000), Bin(OpSub, 4, zext(Load(0, 0, 0)), Const(k)))

	stages := chainFromTrees(t, []*Expr{producer, consumer}, outW, outH)
	src := PlaneSource{P: srcPlane}

	want, werr := materializeChain(stages, src)
	if werr == nil {
		t.Fatalf("reference chain did not fault (want a producer fault); out len %d", len(want))
	}

	for _, workers := range []int{1, 3} {
		sc := &schedule.Schedule{Fusion: schedule.SlidingWindow, Workers: workers}
		_, gerr := EvalFused(stages, src, sc)
		if gerr == nil || gerr.Error() != werr.Error() {
			t.Fatalf("workers=%d: fused error %q, want producer-dominated %q", workers, gerr, werr)
		}
	}

	// Sanity: the consumer really does fault first in production order
	// when the producer is clean.
	clean := chainFromTrees(t, []*Expr{zext(Load(0, 0, 0)), consumer}, outW, outH)
	_, cerr := materializeChain(clean, src)
	if cerr == nil {
		t.Fatal("consumer stage did not fault on its own")
	}
	_, ferr := EvalFused(clean, src, &schedule.Schedule{Fusion: schedule.SlidingWindow})
	if ferr == nil || ferr.Error() != cerr.Error() {
		t.Fatalf("consumer-only fault: fused %q, want %q", ferr, cerr)
	}
}

// TestFusedRingStaysSmall pins the whole point of fusion: ring buffers
// track the consumer footprint, not the intermediate extent.
func TestFusedRingStaysSmall(t *testing.T) {
	const outW, outH = 16, 64
	trees := []*Expr{
		Bin(OpAdd, 4, zext(Load(0, -1, 0)), zext(Load(0, 1, 0))), // vertical pass
		Bin(OpAdd, 4, zext(Load(-1, 0, 0)), zext(Load(1, 0, 0))), // horizontal pass
	}
	stages := chainFromTrees(t, trees, outW, outH)
	rings, err := FusedRingRows(stages, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rings) != 1 {
		t.Fatalf("rings = %v, want one gap", rings)
	}
	if rings[0] != 1 {
		// The horizontal pass reads a single tmp row per output row.
		t.Fatalf("minimal ring = %d rows, want 1", rings[0])
	}
	if rings[0] >= stages[0].OutHeight {
		t.Fatalf("ring (%d rows) is as tall as the intermediate (%d rows)", rings[0], stages[0].OutHeight)
	}
	// A requested window clamps to [footprint, producer height].
	rings, err = FusedRingRows(stages, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rings[0] != stages[0].OutHeight {
		t.Fatalf("oversized window = %d rows, want clamp to %d", rings[0], stages[0].OutHeight)
	}
}

// TestFusedRejectsUnfusable pins the validation errors.
func TestFusedRejectsUnfusable(t *testing.T) {
	single := chainFromTrees(t, []*Expr{zext(Load(0, 0, 0))}, 8, 8)
	if _, err := FusedRingRows(single, 0); err == nil {
		t.Fatal("single-stage chain must not fuse")
	}
	stages := chainFromTrees(t, []*Expr{zext(Load(0, 0, 0)), zext(Load(0, 0, 0))}, 8, 8)
	if _, err := FusedRingRows([]*CompiledKernel{stages[0], nil}, 0); err == nil {
		t.Fatal("nil (reduction) stage must not fuse")
	}
	// A consumer tapping outside its producer's extent must be rejected:
	// shrink the producer below the consumer's footprint.
	bad := chainFromTrees(t, []*Expr{zext(Load(0, 0, 0)), Bin(OpAdd, 4, zext(Load(0, -1, 0)), zext(Load(0, 1, 0)))}, 8, 8)
	bad[0].OutHeight = 4
	if _, err := FusedRingRows(bad, 0); err == nil {
		t.Fatal("footprint outside the producer must not fuse")
	}
}

// TestFusedUnconsumedLowProducerRows pins the first-strip coverage rule:
// when a consumer's footprint starts below its producer's row 0 (positive
// MinDY), the producer rows no consumer ever pulls must still be
// computed — the materializing chain computes every producer row, and a
// fault confined to one of them must not vanish under fusion.
func TestFusedUnconsumedLowProducerRows(t *testing.T) {
	const outW, outH = 8, 8
	// Producer reads src at dy=-1 with origin 0: its row 0 reads source
	// row -1, which the unpadded plane cannot back, so the producer
	// faults at (0,0) — a row the consumer (origin 1, tap dy=0, so
	// footprint rows [1, 1+outH)) never consumes.
	p := &Kernel{Name: "p", OutWidth: outW, OutHeight: outH + 1, Channels: 1,
		Trees: []*Expr{zext(Load(0, -1, 0))}}
	c := &Kernel{Name: "c", OutWidth: outW, OutHeight: outH, Channels: 1, OriginY: 1,
		Trees: []*Expr{zext(Load(0, 0, 0))}}
	pk, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	stages := []*CompiledKernel{pk, ck}
	plane := image.NewPlane(outW, outH+1, 0)
	plane.FillPattern(7)
	src := PlaneSource{P: plane}

	_, werr := materializeChain(stages, src)
	if werr == nil {
		t.Fatal("materializing chain did not fault on the unconsumed producer row")
	}
	for _, workers := range []int{1, 2, 4} {
		_, gerr := EvalFused(stages, src, &schedule.Schedule{Fusion: schedule.SlidingWindow, Workers: workers})
		if gerr == nil || gerr.Error() != werr.Error() {
			t.Fatalf("workers=%d: fused error %q, want %q", workers, gerr, werr)
		}
	}
}
