// Width-specialized row execution.  When the width-inference pass proves
// every register of a program fits 8, 16 or 32 bits, the row executor runs
// in that lane type instead of uint64: the row register file shrinks by
// 8x/4x/2x, which keeps whole tiles of register rows inside L1 and moves
// 2-8x more samples per cache line through the hot loops.  Execution is
// bit-exact with the 64-bit reference path — see width.go for the
// soundness argument — including error positions and messages.
package ir

// lane is the set of narrow register types the row executor specializes
// over.
type lane interface {
	~uint8 | ~uint16 | ~uint32
}

// rowExec is one channel program's row-execution engine bound to a source:
// either the 64-bit reference executor or a lane-specialized one.
type rowExec interface {
	// runRow evaluates output samples x in [0, width) of channel c at
	// input row y, xbase being the input-x of output sample 0.  Error
	// semantics match Program.runRow.
	runRow(xbase, y, c, width int) (int, error)
	// storeRow narrows the result row to bytes: dst[x*step] = uint8(res[x])
	// for x in [0, n).
	storeRow(dst []byte, step, n int)
}

// rowExec64 adapts the uint64 reference path to the rowExec interface.
type rowExec64 struct {
	p  *Program
	bd *binding
	st *progState
}

func (r *rowExec64) runRow(xbase, y, c, width int) (int, error) {
	return r.p.runRow(r.bd, r.st, xbase, y, c, width)
}

func (r *rowExec64) storeRow(dst []byte, step, n int) {
	res := r.st.rows[r.p.root]
	for x := 0; x < n; x++ {
		dst[x*step] = uint8(res[x])
	}
}

// newRowExec picks the row executor for a program: the narrowest lane the
// width pass proved, widened to the schedule's requested lane when one is
// given.  Widening is always sound (every register provably fits the
// proven lane, hence any wider one); requests below the proven width are
// clamped up, so no schedule can select an unsound executor.
func newRowExec(p *Program, bd *binding, rowWidth, lane int) rowExec {
	bits := p.width.laneBits
	if lane > bits {
		bits = lane
	}
	switch bits {
	case 8:
		return newLaneState[uint8](p, bd, rowWidth)
	case 16:
		return newLaneState[uint16](p, bd, rowWidth)
	case 32:
		return newLaneState[uint32](p, bd, rowWidth)
	}
	return &rowExec64{p: p, bd: bd, st: p.newState(bd, rowWidth)}
}

// laneState is the lane-typed counterpart of progState: precomputed tap
// offsets plus a row register file in the narrow type.
type laneState[T lane] struct {
	p       *Program
	bd      *binding
	offs    []int
	tapOffs [][]int
	rows    [][]T
	argRows [][]T
}

func newLaneState[T lane](p *Program, bd *binding, rowWidth int) *laneState[T] {
	st := &laneState[T]{
		p:       p,
		bd:      bd,
		offs:    make([]int, len(p.insts)),
		tapOffs: make([][]int, len(p.insts)),
	}
	for i := range p.insts {
		in := &p.insts[i]
		if bd.pix != nil {
			switch in.op {
			case OpLoad:
				st.offs[i] = bd.flatOff(in.dx, in.dy, in.dc)
			case opSumTaps:
				offs := make([]int, len(in.taps))
				for j, t := range in.taps {
					offs[j] = bd.flatOff(t.dx, t.dy, t.dc)
				}
				st.tapOffs[i] = offs
			}
		}
	}
	st.rows = make([][]T, p.numRegs)
	backing := make([]T, p.numRegs*rowWidth)
	for r := range st.rows {
		st.rows[r] = backing[r*rowWidth : (r+1)*rowWidth]
	}
	for ci, cv := range p.consts {
		row := st.rows[ci]
		for x := range row {
			row[x] = T(cv)
		}
	}
	st.argRows = make([][]T, 0, 8)
	return st
}

func (st *laneState[T]) storeRow(dst []byte, step, n int) {
	res := st.rows[st.p.root]
	for x := 0; x < n; x++ {
		dst[x*step] = uint8(res[x])
	}
}

// gatherArgs collects the operand rows of an n-ary instruction, sliced to
// the active width, into the reusable scratch list.
func (st *laneState[T]) gatherArgs(in *pinst, n int) {
	as := st.argRows[:0]
	for _, r := range in.args {
		as = append(as, st.rows[r][:n])
	}
	st.argRows = as
}

// runRow mirrors Program.runRow over the narrow register file.  Only the
// integer operations the width pass admits appear here; the analysis never
// selects a lane width for programs containing anything else.
func (st *laneState[T]) runRow(xbase, y, c, width int) (int, error) {
	p, bd := st.p, st.bd
	n := width
	errX := -1
	var firstErr error
	fail := func(x int, err error) {
		errX, firstErr = x, err
		n = x
	}
	pos0 := 0
	if bd.pix != nil {
		pos0 = bd.base + y*bd.stride + xbase*bd.pixStep + c*bd.chanStep
	}
	xs := bd.xstep
	if xs == 0 {
		xs = 1
	}
	ps := bd.pixStep * xs
	rows := st.rows
	for i := range p.insts {
		if n == 0 {
			break
		}
		in := &p.insts[i]
		if in.dead {
			continue
		}
		d := rows[in.dst][:n]
		switch in.op {
		case OpLoad:
			if bd.pix != nil {
				off := pos0 + st.offs[i]
				lo, hi := off, off+(n-1)*ps
				if lo >= 0 && hi < len(bd.pix) {
					pix := bd.pix
					for x := range d {
						d[x] = T(pix[off+x*ps])
					}
				} else {
					for x := range d {
						idx := off + x*ps
						if uint(idx) >= uint(len(bd.pix)) {
							fail(x, errLoad(xbase+x*xs+int(in.dx), y+int(in.dy), c+int(in.dc)))
							break
						}
						d[x] = T(bd.pix[idx])
					}
				}
			} else {
				src := bd.src
				for x := range d {
					d[x] = T(src.Sample(xbase+x*xs+int(in.dx), y+int(in.dy), c+int(in.dc)))
				}
			}
		case opSumTaps:
			bias := T(uint64(in.val))
			mask := T(in.mask)
			if bd.pix != nil {
				pix := bd.pix
				safe := true
				for _, off := range st.tapOffs[i] {
					lo, hi := pos0+off, pos0+off+(n-1)*ps
					if lo < 0 || hi >= len(pix) {
						safe = false
						break
					}
				}
				if safe {
					for x := range d {
						s := bias
						base := pos0 + x*ps
						for _, off := range st.tapOffs[i] {
							s += T(pix[base+off])
						}
						d[x] = s
					}
				} else {
					for x := range d {
						s := bias
						base := pos0 + x*ps
						bad := false
						for _, off := range st.tapOffs[i] {
							idx := base + off
							if uint(idx) >= uint(len(pix)) {
								fail(x, errLoad(xbase+x*xs, y, c))
								bad = true
								break
							}
							s += T(pix[idx])
						}
						if bad {
							break
						}
						d[x] = s
					}
				}
			} else {
				src := bd.src
				for x := range d {
					s := bias
					for _, t := range in.taps {
						s += T(src.Sample(xbase+x*xs+int(t.dx), y+int(t.dy), c+int(t.dc)))
					}
					d[x] = s
				}
			}
			d = rows[in.dst][:n] // n may have shrunk
			for _, r := range in.args {
				a := rows[r][:n]
				for x := range d {
					d[x] += a[x]
				}
			}
			for x := range d {
				d[x] &= mask
			}
		case opMulN:
			st.gatherArgs(in, n)
			as := st.argRows
			a0 := as[0]
			for x := range d {
				d[x] = a0[x]
			}
			for _, a := range as[1:] {
				for x := range d {
					d[x] *= a[x]
				}
			}
			mask := T(in.mask)
			for x := range d {
				d[x] &= mask
			}
		case opAndN:
			st.gatherArgs(in, n)
			as := st.argRows
			a0 := as[0]
			for x := range d {
				d[x] = a0[x]
			}
			for _, a := range as[1:] {
				for x := range d {
					d[x] &= a[x]
				}
			}
			mask := T(in.mask)
			for x := range d {
				d[x] &= mask
			}
		case opOrN:
			st.gatherArgs(in, n)
			as := st.argRows
			a0 := as[0]
			for x := range d {
				d[x] = a0[x]
			}
			for _, a := range as[1:] {
				for x := range d {
					d[x] |= a[x]
				}
			}
			mask := T(in.mask)
			for x := range d {
				d[x] &= mask
			}
		case opXorN:
			st.gatherArgs(in, n)
			as := st.argRows
			a0 := as[0]
			for x := range d {
				d[x] = a0[x]
			}
			for _, a := range as[1:] {
				for x := range d {
					d[x] ^= a[x]
				}
			}
			mask := T(in.mask)
			for x := range d {
				d[x] &= mask
			}
		case opMinN:
			st.gatherArgs(in, n)
			as := st.argRows
			sh, mask := in.sh, in.mask
			a0 := as[0]
			for x := range d {
				s := sx(uint64(a0[x]), sh)
				for _, a := range as[1:] {
					if v := sx(uint64(a[x]), sh); v < s {
						s = v
					}
				}
				d[x] = T(uint64(s) & mask)
			}
		case opMaxN:
			st.gatherArgs(in, n)
			as := st.argRows
			sh, mask := in.sh, in.mask
			a0 := as[0]
			for x := range d {
				s := sx(uint64(a0[x]), sh)
				for _, a := range as[1:] {
					if v := sx(uint64(a[x]), sh); v > s {
						s = v
					}
				}
				d[x] = T(uint64(s) & mask)
			}
		case OpSub:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := T(in.mask)
			for x := range d {
				d[x] = (a[x] - b[x]) & mask
			}
		case OpMulHi:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := in.mask
			for x := range d {
				d[x] = T((uint64(a[x]) & 0xffffffff) * (uint64(b[x]) & 0xffffffff) >> 32 & mask)
			}
		case OpDiv:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := T(in.mask)
			for x := range d {
				dv := b[x] & mask
				if dv == 0 {
					fail(x, errDivZero())
					break
				}
				d[x] = (a[x] & mask) / dv
			}
		case OpMod:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := T(in.mask)
			for x := range d {
				dv := b[x] & mask
				if dv == 0 {
					fail(x, errModZero())
					break
				}
				d[x] = (a[x] & mask) % dv
			}
		case opDivShift:
			a := rows[in.a][:n]
			mask, s := T(in.mask), uint(in.val)
			for x := range d {
				d[x] = (a[x] & mask) >> s
			}
		case opDivMagic:
			a := rows[in.a][:n]
			mask, m := in.mask, in.magic
			for x := range d {
				d[x] = T(mulHi64(uint64(a[x])&mask, m))
			}
		case opModShift:
			a := rows[in.a][:n]
			mask, dm := T(in.mask), T(in.dcon-1)
			for x := range d {
				d[x] = a[x] & mask & dm
			}
		case opModMagic:
			a := rows[in.a][:n]
			mask, m, dc := in.mask, in.magic, in.dcon
			for x := range d {
				v := uint64(a[x]) & mask
				d[x] = T(v - mulHi64(v, m)*dc)
			}
		case OpNot:
			a := rows[in.a][:n]
			mask := T(in.mask)
			for x := range d {
				d[x] = ^a[x] & mask
			}
		case OpNeg:
			a := rows[in.a][:n]
			mask := T(in.mask)
			for x := range d {
				d[x] = -a[x] & mask
			}
		case OpShl:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := T(in.mask)
			for x := range d {
				d[x] = a[x] << (b[x] & 31) & mask
			}
		case OpShr:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := T(in.mask)
			for x := range d {
				d[x] = (a[x] & mask) >> (b[x] & 31)
			}
		case OpSar:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask, sh := in.mask, in.sh
			for x := range d {
				d[x] = T(uint64(sx(uint64(a[x]), sh)>>(uint64(b[x])&31)) & mask)
			}
		case OpZExt:
			a := rows[in.a][:n]
			mask := T(in.mask) // the srcWidth mask
			for x := range d {
				d[x] = a[x] & mask
			}
		case OpSExt:
			a := rows[in.a][:n]
			mask, sh := in.mask, in.sh
			for x := range d {
				d[x] = T(uint64(sx(uint64(a[x]), sh)) & mask)
			}
		case OpExtract:
			a := rows[in.a][:n]
			mask, s := T(in.mask), 8*uint(in.val)
			for x := range d {
				d[x] = a[x] >> s & mask
			}
		case OpSelect:
			cond, bv, cv := rows[in.a][:n], rows[in.b][:n], rows[in.c][:n]
			for x := range d {
				if cond[x] != 0 {
					d[x] = bv[x]
				} else {
					d[x] = cv[x]
				}
			}
		case OpCmpEq:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := T(in.mask)
			for x := range d {
				d[x] = T(b2u(a[x]&mask == b[x]&mask))
			}
		case OpCmpNe:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := T(in.mask)
			for x := range d {
				d[x] = T(b2u(a[x]&mask != b[x]&mask))
			}
		case OpCmpLtS:
			a, b := rows[in.a][:n], rows[in.b][:n]
			sh := in.sh
			for x := range d {
				d[x] = T(b2u(sx(uint64(a[x]), sh) < sx(uint64(b[x]), sh)))
			}
		case OpCmpLeS:
			a, b := rows[in.a][:n], rows[in.b][:n]
			sh := in.sh
			for x := range d {
				d[x] = T(b2u(sx(uint64(a[x]), sh) <= sx(uint64(b[x]), sh)))
			}
		case OpCmpLtU:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := T(in.mask)
			for x := range d {
				d[x] = T(b2u(a[x]&mask < b[x]&mask))
			}
		case OpCmpLeU:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := T(in.mask)
			for x := range d {
				d[x] = T(b2u(a[x]&mask <= b[x]&mask))
			}
		case OpTable:
			a := rows[in.a][:n]
			for x := range d {
				v, err := tableAt(in.table, in.elem, int64(a[x]))
				if err != nil {
					fail(x, err)
					break
				}
				d[x] = T(v)
			}
		case OpTableIn:
			a := rows[in.a][:n]
			for x := range d {
				v, err := tableAt(bd.tbl, in.elem, int64(a[x]))
				if err != nil {
					fail(x, err)
					break
				}
				d[x] = T(v)
			}
		default:
			return 0, errNotLaneExecutable(in.op)
		}
	}
	return errX, firstErr
}
