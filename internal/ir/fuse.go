// Sliding-window fusion of multi-stage compiled pipelines.  The
// materializing chain evaluates each stage fully into a freshly allocated
// intermediate plane before its consumer starts; the fused driver instead
// streams the stages, computing only the producer rows the consumer still
// needs and recycling them through a small ring buffer — a blur2p-style
// two-pass pipeline never holds a full-size intermediate plane, and rows
// move from producer to consumer while still cache-hot.
//
// Fusion is purely an execution strategy: values, error positions and
// error messages are bit-identical to the materializing chain for every
// window size and worker count.  Values are exact because every row is
// computed by the same channel programs from the same inputs (worker
// strips recompute their halo rows rather than share them).  Errors are
// exact because the materializing chain reports the first error of the
// earliest stage that has one (an erroring stage aborts the chain before
// later stages run), and the fused driver reproduces that selection: each
// stage computes its rows in ascending order and stops at its first
// error, upstream stages still run to their full extents afterwards (the
// drain pass), and the driver reports the lowest-numbered erroring
// stage's first error in row-then-x-then-channel order.
package ir

import (
	"fmt"

	"helium/internal/image"
	"helium/internal/par"
	"helium/internal/schedule"
)

// fuseGeom is the per-stage read footprint the fused driver schedules
// around: the rows and columns of the stage's input that its whole output
// row y (respectively column x) depends on, origins applied.
type fuseGeom struct {
	loY, hiY int // input rows read for output row y: [y+loY, y+hiY]
	loX, hiX int // input columns read for output column x: [x+loX, x+hiX]
}

// readFootprint collects the kernel's tap bounds across every channel
// program, including taps fused into sums.  Dead instructions are skipped
// exactly as the executors skip them (fault-capable loads are never
// marked dead, so no observable tap is missed).
func (ck *CompiledKernel) readFootprint() fuseGeom {
	minDX, maxDX, minDY, maxDY := 0, 0, 0, 0
	first := true
	see := func(dx, dy int32) {
		if first {
			minDX, maxDX, minDY, maxDY = int(dx), int(dx), int(dy), int(dy)
			first = false
			return
		}
		minDX, maxDX = min(minDX, int(dx)), max(maxDX, int(dx))
		minDY, maxDY = min(minDY, int(dy)), max(maxDY, int(dy))
	}
	for _, p := range ck.Progs {
		for i := range p.insts {
			in := &p.insts[i]
			if in.dead {
				continue
			}
			switch in.op {
			case OpLoad:
				see(in.dx, in.dy)
			case opSumTaps:
				for _, t := range in.taps {
					see(t.dx, t.dy)
				}
			}
		}
	}
	return fuseGeom{
		loY: ck.OriginY + minDY, hiY: ck.OriginY + maxDY,
		loX: ck.OriginX + minDX, hiX: ck.OriginX + maxDX,
	}
}

// fusePlan validates a stage chain for sliding-window fusion and computes
// the per-gap ring heights.
type fusePlan struct {
	geoms []fuseGeom
	// ringRows[i] is the ring height between stage i and stage i+1;
	// wins[i] is the minimal legal window (stage i+1's vertical read
	// footprint).
	ringRows, wins []int
}

// planFusion checks that a compiled chain is fusable — at least two
// stages, all stencils, planar single-channel intermediates, and every
// consumer's read footprint inside its producer's extent — and sizes the
// rings: windowRows == 0 picks the minimal window, larger values trade
// memory for fewer ring shifts, and everything clamps to [window,
// producer height].
func planFusion(stages []*CompiledKernel, windowRows int) (*fusePlan, error) {
	if len(stages) < 2 {
		return nil, fmt.Errorf("ir: fusion needs at least 2 stages, got %d", len(stages))
	}
	pl := &fusePlan{geoms: make([]fuseGeom, len(stages))}
	for i, ck := range stages {
		if ck == nil {
			return nil, fmt.Errorf("ir: fusion stage %d is not a stencil", i)
		}
		if ck.Mapped() {
			// A non-identity index map reads producer rows out of step with
			// the rows it emits, which the sliding window cannot schedule.
			return nil, fmt.Errorf("ir: fusion stage %d has a non-identity index map; mapped stages do not stream", i)
		}
		if ck.usesTableIn() {
			return nil, fmt.Errorf("ir: fusion stage %d reads a stage-input table; reduction consumers do not stream", i)
		}
		pl.geoms[i] = ck.readFootprint()
	}
	for i := 1; i < len(stages); i++ {
		p, c := stages[i-1], stages[i]
		g := pl.geoms[i]
		if p.Channels != 1 {
			return nil, fmt.Errorf("ir: fusion intermediate %d has %d channels; only planar single-channel intermediates stream", i-1, p.Channels)
		}
		if g.loY < 0 || c.OutHeight-1+g.hiY >= p.OutHeight ||
			g.loX < 0 || c.OutWidth-1+g.hiX >= p.OutWidth {
			return nil, fmt.Errorf("ir: fusion stage %d reads rows [%d,%d] cols [%d,%d], outside its %dx%d producer",
				i, g.loY, c.OutHeight-1+g.hiY, g.loX, c.OutWidth-1+g.hiX, p.OutWidth, p.OutHeight)
		}
		win := g.hiY - g.loY + 1
		rows := windowRows
		if rows < win {
			rows = win
		}
		rows = min(rows, p.OutHeight)
		pl.wins = append(pl.wins, win)
		pl.ringRows = append(pl.ringRows, rows)
	}
	return pl, nil
}

// FusedRingRows reports the ring-buffer heights (one per stage gap) the
// fused driver will allocate for a chain under the given window setting,
// or an error when the chain cannot fuse.  Drivers report it; tests use
// it to prove no full-size intermediate plane exists.
func FusedRingRows(stages []*CompiledKernel, windowRows int) ([]int, error) {
	pl, err := planFusion(stages, windowRows)
	if err != nil {
		return nil, err
	}
	return pl.ringRows, nil
}

// fusedStage is one stage's streaming state within one worker strip.
type fusedStage struct {
	ck *CompiledKernel
	ex *Executor
	// Ring buffer of this stage's OUTPUT (nil for the final stage, which
	// writes the shared out buffer directly).
	ringPix              []byte
	ringBase, ringStride int
	ringRows, winOut     int
	yBase                int // logical row at physical ring row 0
	cursor, hi           int // next row to produce; strip production bound
	geomHiY              int // highest producer row offset this stage reads
	alive                bool
	err                  tileError
	hasErr               bool
}

// fusedRun drives one worker strip of the chain.
type fusedRun struct {
	stages []fusedStage
	out    []byte
}

// produce computes the current row of stage i, pulling producer rows
// first.  It must not be called on a dead or finished stage.
func (f *fusedRun) produce(i int) {
	s := &f.stages[i]
	y := s.cursor
	k := s.ck
	if i > 0 {
		p := &f.stages[i-1]
		top := y + s.geomHiY
		for p.alive && p.cursor <= top && p.cursor < p.hi {
			f.produce(i - 1)
		}
		if !p.alive {
			s.alive = false // dominated by the producer's error
			return
		}
	}
	var dst []byte
	step := 1
	if i == len(f.stages)-1 {
		dst = f.out[y*k.OutWidth*k.Channels:]
		step = k.Channels
	} else {
		p := y - s.yBase
		if p >= s.ringRows {
			// Recycle: slide the last winOut-1 rows (still needed by the
			// consumer) to the top of the ring and move the consumer's
			// flat binding so logical row numbers stay put.
			shift := s.ringRows - (s.winOut - 1)
			copy(s.ringPix[s.ringBase:], s.ringPix[s.ringBase+shift*s.ringStride:s.ringBase+s.ringRows*s.ringStride])
			s.yBase += shift
			f.stages[i+1].ex.shiftBase(-shift * s.ringStride)
			p = y - s.yBase
		}
		dst = s.ringPix[s.ringBase+p*s.ringStride:]
	}
	n := k.OutWidth
	errX, errC := -1, -1
	var firstErr error
	for c := 0; c < k.Channels; c++ {
		x, err := s.ex.rows[c].runRow(k.OriginX, y+k.OriginY, c, n)
		if err != nil && (errX < 0 || x < errX) {
			errX, errC, firstErr = x, c, err
		}
		if err == nil {
			s.ex.rows[c].storeRow(dst[c:], step, n)
		}
	}
	if firstErr != nil {
		s.alive = false
		s.err = tileError{x: errX, y: y, c: errC, err: firstErr}
		s.hasErr = true
		return
	}
	s.cursor++
}

// EvalFused evaluates a compiled multi-stage stencil chain with
// sliding-window fusion under the given schedule: sc.WindowRows sizes the
// rings, sc.Workers picks the strip count (final-stage rows split across
// workers, halo rows recomputed per strip), and per-stage Lane overrides
// apply.  Tile extents do not apply — fused stages always stream whole
// rows.  The output and any reported error are identical to the
// materializing chain's.
func EvalFused(stages []*CompiledKernel, src Source, sc *schedule.Schedule) ([]byte, error) {
	pl, err := planFusion(stages, sc.WindowRows)
	if err != nil {
		return nil, err
	}
	n := len(stages)
	final := stages[n-1]
	out := make([]byte, final.OutWidth*final.OutHeight*final.Channels)

	strips := min(sc.EffectiveWorkers(), final.OutHeight)
	if strips < 1 {
		strips = 1
	}
	stripErrs := make([][]fusedStage, strips)
	_ = par.For(strips, 1, strips, func(int) func(int, int) error {
		return func(t0, t1 int) error {
			for t := t0; t < t1; t++ {
				s0 := t * final.OutHeight / strips
				s1 := (t + 1) * final.OutHeight / strips
				run := buildStrip(stages, pl, src, sc, out, s0, s1, t == 0, t == strips-1)
				f := &run
				last := len(f.stages) - 1
				for f.stages[last].alive && f.stages[last].cursor < f.stages[last].hi {
					f.produce(last)
				}
				// Drain: upstream stages finish their strip extents so a
				// late producer error still dominates a consumer's.
				for i := last - 1; i >= 0; i-- {
					for f.stages[i].alive && f.stages[i].cursor < f.stages[i].hi {
						f.produce(i)
					}
				}
				stripErrs[t] = f.stages
			}
			return nil
		}
	})

	// Merge: per stage, the scan-order-first error across strips; then the
	// earliest erroring stage wins, exactly like the materializing chain.
	for i := 0; i < n; i++ {
		best := tileError{}
		has := false
		for _, st := range stripErrs {
			if st[i].hasErr && (!has || st[i].err.before(best)) {
				best = st[i].err
				has = true
			}
		}
		if has {
			return nil, stages[i].wrapTileError(best)
		}
	}
	return out, nil
}

// buildStrip assembles the streaming state for final-stage rows [s0, s1):
// per-stage production ranges (halo included), ring allocations, and
// executors chained through the rings.  The first and last strips also
// produce the producer rows no consumer row ever pulls — below the
// consumers' summed footprint and above it, respectively — because the
// materializing chain computes every producer row and an error in one of
// them must not be lost.
func buildStrip(stages []*CompiledKernel, pl *fusePlan, src Source, sc *schedule.Schedule, out []byte, s0, s1 int, first, last bool) fusedRun {
	n := len(stages)
	f := fusedRun{stages: make([]fusedStage, n), out: out}
	lo := make([]int, n)
	hi := make([]int, n)
	lo[n-1], hi[n-1] = s0, s1
	for i := n - 2; i >= 0; i-- {
		g := pl.geoms[i+1]
		lo[i] = max(lo[i+1]+g.loY, 0)
		hi[i] = min(hi[i+1]-1+g.hiY+1, stages[i].OutHeight)
		if first {
			lo[i] = 0
		}
		if last {
			hi[i] = stages[i].OutHeight
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := &f.stages[i]
		s.ck = stages[i]
		s.cursor, s.hi = lo[i], hi[i]
		s.alive = true
		s.geomHiY = pl.geoms[i].hiY
		if i < n-1 {
			s.ringRows = pl.ringRows[i]
			s.winOut = pl.wins[i]
			s.yBase = lo[i]
			ring := image.NewPlane(stages[i].OutWidth, s.ringRows, 0)
			s.ringPix, s.ringBase, s.ringStride = ring.Flat()
			// The consumer executor reads the ring; its binding slides so
			// logical rows resolve to physical ring rows.
			c := &f.stages[i+1]
			c.ex = stages[i+1].newExecutor(PlaneSource{P: ring}, stages[i+1].OutWidth, sc.StageAt(i+1).Lane)
			c.ex.shiftBase(-s.yBase * s.ringStride)
		}
	}
	f.stages[0].ex = stages[0].newExecutor(src, stages[0].OutWidth, sc.StageAt(0).Lane)
	return f
}
