// Interval analysis over expression trees.  The lifter's canonicalizer
// uses it to prove narrowing operations redundant (a zero extension of a
// value that already fits its source width changes nothing), and the
// compiler's width-inference pass uses the same facts to narrow register
// arithmetic to the smallest lane type that provably holds every value —
// the "interval facts" live here, next to the compiler that consumes them,
// rather than being recomputed privately by each layer.
package ir

import "math"

// Interval is a possibly one-sided conservative bound on the signed value
// of an expression.  One-sided bounds matter for min/max: max(x, 0) has a
// known lower bound even when x is unbounded.
type Interval struct {
	Lo, Hi     int64
	LoOK, HiOK bool
}

// Within reports whether the interval is fully bounded inside [lo, hi].
func (iv Interval) Within(lo, hi int64) bool {
	return iv.LoOK && iv.HiOK && iv.Lo >= lo && iv.Hi <= hi
}

// widthMask is the unsigned all-ones value of a byte width (the inclusive
// upper bound of the width's unsigned range).
func widthMask(width int) uint64 {
	return 1<<(8*width) - 1
}

// Bounds computes a conservative signed interval for e.  Arithmetic rules
// require fully bounded operands and verify the result stays inside the
// node width's signed range, so masking cannot have wrapped the value;
// min/max propagate one-sided bounds.
func Bounds(e *Expr) Interval {
	none := Interval{}
	// full demands both sides and no wrap at the node's width.
	full := func(lo, hi int64) Interval {
		if lo > hi {
			return none
		}
		if e.Width > 0 {
			half := int64(widthMask(e.Width)) >> 1
			if lo < -half-1 || hi > half {
				return none
			}
		}
		return Interval{Lo: lo, Hi: hi, LoOK: true, HiOK: true}
	}

	switch e.Op {
	case OpLoad:
		return Interval{Lo: 0, Hi: 255, LoOK: true, HiOK: true}
	case OpConst:
		return full(e.Val, e.Val)
	case OpTable, OpTableIn:
		if e.Elem >= 1 && e.Elem <= 4 {
			return Interval{Lo: 0, Hi: int64(widthMask(e.Elem)), LoOK: true, HiOK: true}
		}
	case OpZExt:
		if iv := Bounds(e.Args[0]); iv.Within(0, int64(widthMask(e.SrcWidth))) {
			return iv
		}
		return Interval{Lo: 0, Hi: int64(widthMask(e.SrcWidth)), LoOK: true, HiOK: true}
	case OpExtract:
		if iv := Bounds(e.Args[0]); e.Val == 0 && iv.Within(0, int64(widthMask(e.Width))) {
			return iv
		}
		return Interval{Lo: 0, Hi: int64(widthMask(e.Width)), LoOK: true, HiOK: true}
	case OpAdd:
		lo, hi := int64(0), int64(0)
		for _, a := range e.Args {
			iv := Bounds(a)
			if !iv.LoOK || !iv.HiOK {
				return none
			}
			lo += iv.Lo
			hi += iv.Hi
		}
		return full(lo, hi)
	case OpSub:
		a, b := Bounds(e.Args[0]), Bounds(e.Args[1])
		if a.LoOK && a.HiOK && b.LoOK && b.HiOK {
			return full(a.Lo-b.Hi, a.Hi-b.Lo)
		}
	case OpMul:
		lo, hi := int64(1), int64(1)
		for _, a := range e.Args {
			iv := Bounds(a)
			if !iv.LoOK || !iv.HiOK || iv.Lo < 0 {
				return none
			}
			lo *= iv.Lo
			hi *= iv.Hi
		}
		return full(lo, hi)
	case OpDiv:
		a := Bounds(e.Args[0])
		if a.LoOK && a.HiOK && a.Lo >= 0 && e.Args[1].Op == OpConst && e.Args[1].Val > 0 {
			return full(a.Lo/e.Args[1].Val, a.Hi/e.Args[1].Val)
		}
	case OpCmpEq, OpCmpNe, OpCmpLtS, OpCmpLeS, OpCmpLtU, OpCmpLeU:
		return Interval{Lo: 0, Hi: 1, LoOK: true, HiOK: true}
	case OpSelect:
		// The value is one of the two arms; union their bounds.
		a, b := Bounds(e.Args[1]), Bounds(e.Args[2])
		return Interval{
			Lo: min(a.Lo, b.Lo), Hi: max(a.Hi, b.Hi),
			LoOK: a.LoOK && b.LoOK, HiOK: a.HiOK && b.HiOK,
		}
	case OpMin:
		// min(a, b) <= any single bounded argument; >= all lower bounds.
		out := Interval{LoOK: true}
		out.Lo = math.MaxInt64
		for _, a := range e.Args {
			iv := Bounds(a)
			if iv.HiOK && (!out.HiOK || iv.Hi < out.Hi) {
				out.HiOK = true
				out.Hi = iv.Hi
			}
			if iv.LoOK {
				out.Lo = min(out.Lo, iv.Lo)
			} else {
				out.LoOK = false
			}
		}
		if !out.LoOK {
			out.Lo = 0
		}
		return out
	case OpMax:
		// max(a, b) >= any single bounded argument; <= all upper bounds.
		out := Interval{HiOK: true}
		out.Hi = math.MinInt64
		for _, a := range e.Args {
			iv := Bounds(a)
			if iv.LoOK && (!out.LoOK || iv.Lo > out.Lo) {
				out.LoOK = true
				out.Lo = iv.Lo
			}
			if iv.HiOK {
				out.Hi = max(out.Hi, iv.Hi)
			} else {
				out.HiOK = false
			}
		}
		if !out.HiOK {
			out.Hi = 0
		}
		return out
	}
	return none
}
