package ir

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"helium/internal/image"
)

// TestGenerateDeterministic pins byte-identical output across runs — the
// gen-and-diff CI job depends on it.
func TestGenerateDeterministic(t *testing.T) {
	r := testRNG(3)
	g := &treeGen{r: &r}
	var ks []*Kernel
	for i := 0; i < 5; i++ {
		ks = append(ks, &Kernel{Name: fmt.Sprintf("det%d", i), OutWidth: 6, OutHeight: 4,
			Channels: 1, OriginX: 1, OriginY: 1, Trees: []*Expr{g.intExpr(4)}})
	}
	a, err := Generate("liftedkernels", ks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("liftedkernels", ks)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Generate is nondeterministic")
	}
	if GenerateRuntime("liftedkernels") != GenerateRuntime("liftedkernels") {
		t.Fatal("GenerateRuntime is nondeterministic")
	}
}

// TestGenerateRejectsDuplicateNames pins the one structural error Generate
// owns.
func TestGenerateRejectsDuplicateNames(t *testing.T) {
	k := &Kernel{Name: "dup", OutWidth: 1, OutHeight: 1, Channels: 1, Trees: []*Expr{Load(0, 0, 0)}}
	if _, err := Generate("p", []*Kernel{k, k}); err == nil {
		t.Fatal("Generate must reject duplicate kernel names")
	}
}

// genHarness materializes a module holding the generated package plus a
// main that evaluates every kernel against the embedded differential plane
// and prints one tab-separated line per kernel: name, OK/ERR, hex output
// or error text.
func genHarness(t *testing.T, dir, kernelsSrc string, plane *image.Plane) {
	t.Helper()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module gentest\n\ngo 1.24\n")
	write("lk/runtime.go", GenerateRuntime("liftedkernels"))
	write("lk/kernels.go", kernelsSrc)

	pix, base, stride := plane.Flat()
	var b strings.Builder
	b.WriteString("package main\n\nimport (\n\t\"bytes\"\n\t\"fmt\"\n\t\"encoding/hex\"\n\n\tlk \"gentest/lk\"\n)\n\n")
	fmt.Fprintf(&b, "var pix = []byte{")
	for i, v := range pix {
		if i%16 == 0 {
			b.WriteString("\n\t")
		}
		fmt.Fprintf(&b, "%#04x, ", v)
	}
	b.WriteString("\n}\n\n")
	// Alongside the serial reference Eval, every kernel re-runs under
	// non-default schedules (worker strips; sliding-window fusion for
	// multi-stage kernels) and the harness itself asserts the result —
	// values or error text — is identical.
	fmt.Fprintf(&b, `var scheds = []lk.ScheduleSpec{
	{Workers: 3},
	{Workers: 2, Fusion: "slidingWindow", WindowRows: 2},
	{Workers: 1, Fusion: "slidingWindow"},
}

func main() {
	img := &lk.Image{Pix: pix, Base: %d, Stride: %d, PixStep: 1, ChanStep: 0}
	for _, k := range lk.Kernels() {
		out, err := k.Eval(img, k.DefaultWidth, k.DefaultHeight)
		if err != nil {
			fmt.Printf("%%s\tERR\t%%s\n", k.Name, err)
		} else {
			fmt.Printf("%%s\tOK\t%%s\n", k.Name, hex.EncodeToString(out))
		}
		for si, spec := range scheds {
			if spec.Fusion == "slidingWindow" && len(k.Stages) < 2 {
				continue
			}
			got, gerr := k.EvalSched(img, k.DefaultWidth, k.DefaultHeight, spec)
			status, detail := "OK", ""
			switch {
			case err != nil && (gerr == nil || gerr.Error() != err.Error()):
				status, detail = "BAD", fmt.Sprintf("error %%v, want %%v", gerr, err)
			case err == nil && gerr != nil:
				status, detail = "BAD", fmt.Sprintf("unexpected error %%v", gerr)
			case err == nil && !bytes.Equal(got, out):
				status, detail = "BAD", "output differs from Eval"
			}
			fmt.Printf("%%s@sched%%d\t%%s\t%%s\n", k.Name, si, status, detail)
		}
	}
}
`, base, stride)
	write("main.go", b.String())
}

// checkSchedLines asserts every schedule re-run the harness performed
// agreed with the reference Eval.
func checkSchedLines(t *testing.T, results map[string][2]string) {
	t.Helper()
	n := 0
	for name, got := range results {
		if !strings.Contains(name, "@sched") {
			continue
		}
		n++
		if got[0] != "OK" {
			t.Errorf("%s: scheduled execution diverged: %s", name, got[1])
		}
	}
	if n == 0 {
		t.Error("harness ran no scheduled executions")
	}
}

// runHarness compiles and runs the generated module with the real Go
// toolchain and parses its per-kernel results.
func runHarness(t *testing.T, dir string) map[string][2]string {
	t.Helper()
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=-mod=mod")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run generated harness: %v\nstderr:\n%s", err, stderr.String())
	}
	results := map[string][2]string{}
	for _, line := range strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n") {
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			t.Fatalf("malformed harness line %q", line)
		}
		results[parts[0]] = [2]string{parts[1], parts[2]}
	}
	return results
}

// TestGeneratedCodeDifferential is the acceptance test of the source
// backend: it generates Go for a mixed corpus of random kernels (the broad
// generator, the narrow lane-friendly generator, and the canonical boxblur
// stencil), compiles the result with the real toolchain, runs it, and
// demands bit-exact agreement — values, error positions and error
// messages — with both the interpreter and the register executor.
func TestGeneratedCodeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles generated code with the go toolchain")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}

	const outW, outH = 6, 4
	plane := diffPlane()
	src := PlaneSource{P: plane}

	var kernels []*Kernel
	addTree := func(name string, tree *Expr) {
		kernels = append(kernels, &Kernel{Name: name, OutWidth: outW, OutHeight: outH,
			Channels: 1, OriginX: 1, OriginY: 1, Trees: []*Expr{tree}})
	}
	// The canonical boxblur stencil, the corpus shape codegen must win on.
	taps := make([]*Expr, 0, 10)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			taps = append(taps, &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{Load(dx, dy, 0)}})
		}
	}
	taps = append(taps, Const(4))
	addTree("boxref", Bin(OpDiv, 4, &Expr{Op: OpAdd, Width: 4, Args: taps}, Const(9)))

	// Comparison and select shapes from predicated lifting: every compare
	// operator over a signed-capable difference (32-bit lanes) and over
	// raw byte taps (8-bit lanes), plus selects that stay selects.
	ld := func(dx, dy int) *Expr {
		return &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{Load(dx, dy, 0)}}
	}
	cmpOps := []Op{OpCmpEq, OpCmpNe, OpCmpLtS, OpCmpLeS, OpCmpLtU, OpCmpLeU}
	for i, op := range cmpOps {
		diff := Bin(OpSub, 4, ld(0, 0), ld(1, 0)) // wraps negative: signed vs unsigned matters
		addTree(fmt.Sprintf("cmpw%d", i), Bin(op, 4, diff, Const(3)))
		addTree(fmt.Sprintf("cmpb%d", i), Bin(op, 1, Load(0, 0, 0), Load(0, 1, 0)))
	}
	addTree("selneg", &Expr{Op: OpSelect, Args: []*Expr{
		Bin(OpCmpLtS, 4, Bin(OpSub, 4, ld(0, 0), ld(1, 0)), Const(0)), Const(7), ld(0, 1)}})
	addTree("selparity", &Expr{Op: OpSelect, Args: []*Expr{
		Bin(OpCmpEq, 4, Bin(OpAnd, 4, ld(0, 0), Const(1)), Const(0)), ld(1, 1), ld(-1, -1)}})

	// Multi-channel kernels: chansame's three identical channel programs
	// must collapse into one shared row function; chandiff's distinct
	// programs must keep per-channel functions; chanfault exercises the
	// x-then-c error merge through the shared body.
	sameTree := Bin(OpAdd, 4, ld(0, 0), ld(1, 1))
	kernels = append(kernels, &Kernel{Name: "chansame", OutWidth: outW, OutHeight: outH,
		Channels: 3, OriginX: 1, OriginY: 1,
		Trees: []*Expr{sameTree, sameTree.Clone(), sameTree.Clone()}})
	kernels = append(kernels, &Kernel{Name: "chandiff", OutWidth: outW, OutHeight: outH,
		Channels: 3, OriginX: 1, OriginY: 1,
		Trees: []*Expr{
			Bin(OpAdd, 4, ld(0, 0), Const(1)),
			Bin(OpAdd, 4, ld(0, 0), Const(2)),
			Bin(OpAdd, 4, ld(0, 0), Const(3)),
		}})
	shortTab := make([]byte, 100)
	for i := range shortTab {
		shortTab[i] = byte(i)
	}
	faultTree := &Expr{Op: OpTable, Table: shortTab, Elem: 1, Args: []*Expr{Load(0, 0, 0)}}
	kernels = append(kernels, &Kernel{Name: "chanfault", OutWidth: outW, OutHeight: outH,
		Channels: 3, OriginX: 1, OriginY: 1,
		Trees: []*Expr{faultTree, faultTree.Clone(), faultTree.Clone()}})
	// chantabs: channel programs structurally identical except for their
	// lookup tables — these must NOT collapse into a shared body (each
	// channel applies its own LUT).
	lut := func(mul int) *Expr {
		tab := make([]byte, 256)
		for i := range tab {
			tab[i] = byte(i * mul)
		}
		return &Expr{Op: OpTable, Table: tab, Elem: 1, Args: []*Expr{Load(0, 0, 0)}}
	}
	kernels = append(kernels, &Kernel{Name: "chantabs", OutWidth: outW, OutHeight: outH,
		Channels: 3, OriginX: 1, OriginY: 1,
		Trees: []*Expr{lut(1), lut(3), lut(7)}})

	for i := 0; i < 80; i++ {
		r := testRNG(uint64(i)*131 + 7)
		g := &treeGen{r: &r}
		if i%4 == 3 {
			addTree(fmt.Sprintf("gf%03d", i), g.floatExpr(4))
		} else {
			addTree(fmt.Sprintf("gi%03d", i), g.intExpr(4))
		}
	}
	for i := 0; i < 40; i++ {
		r := testRNG(uint64(i)*977 + 5)
		g := &narrowTreeGen{r: &r}
		addTree(fmt.Sprintf("gn%03d", i), g.expr(3))
	}
	if len(kernels) < 100 {
		t.Fatalf("differential corpus has %d kernels, want >= 100", len(kernels))
	}

	srcCode, err := Generate("liftedkernels", kernels)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !strings.Contains(srcCode, "rowChansameAll") || strings.Contains(srcCode, "rowChansameC0") {
		t.Error("chansame's identical channel programs did not collapse into a shared row function")
	}
	if !strings.Contains(srcCode, "rowChandiffC2") {
		t.Error("chandiff's distinct channel programs lost their per-channel functions")
	}
	if !strings.Contains(srcCode, "rowChantabsC2") || strings.Contains(srcCode, "rowChantabsAll") {
		t.Error("chantabs' distinct per-channel tables wrongly collapsed into a shared row function")
	}
	dir := t.TempDir()
	genHarness(t, dir, srcCode, plane)
	results := runHarness(t, dir)
	checkSchedLines(t, results)

	values, faults := 0, 0
	for _, k := range kernels {
		got, ok := results[k.Name]
		if !ok {
			t.Fatalf("kernel %s missing from harness output", k.Name)
		}
		want, werr := k.Eval(src)
		ck, err := k.Compile()
		if err != nil {
			t.Fatalf("%s: Compile: %v", k.Name, err)
		}
		cgot, cerr := ck.Eval(src)
		if werr != nil {
			faults++
			if cerr == nil || cerr.Error() != werr.Error() {
				t.Fatalf("%s: register backend error %v, interpreter %v", k.Name, cerr, werr)
			}
			if got[0] != "ERR" {
				t.Errorf("%s: generated code returned a value, interpreter errors with %v", k.Name, werr)
				continue
			}
			if got[1] != werr.Error() {
				t.Errorf("%s: generated error %q, want %q", k.Name, got[1], werr)
			}
			continue
		}
		values++
		if cerr != nil || !bytes.Equal(cgot, want) {
			t.Fatalf("%s: register backend disagrees with interpreter", k.Name)
		}
		if got[0] != "OK" {
			t.Errorf("%s: generated code errored %q, interpreter succeeds", k.Name, got[1])
			continue
		}
		if got[1] != hex.EncodeToString(want) {
			t.Errorf("%s: generated output %s, want %s\ntree: %s", k.Name, got[1], hex.EncodeToString(want), k.Trees[0])
		}
	}
	if values < 40 || faults < 5 {
		t.Fatalf("differential corpus is unbalanced: %d value kernels, %d faulting kernels", values, faults)
	}
	t.Logf("generated-code differential: %d kernels (%d values, %d faults) bit-exact", len(kernels), values, faults)
}

// evalStagedRef chains the interpreter over a stage list the way the
// generated runtime's materializing driver does: full planes between
// stages, exact extents.
func evalStagedRef(stages []*Kernel, src Source) ([]byte, error) {
	var out []byte
	var err error
	for i, k := range stages {
		out, err = k.Eval(src)
		if err != nil {
			return nil, err
		}
		if i+1 < len(stages) {
			p := image.NewPlane(k.OutWidth, k.OutHeight, 0)
			p.SetInterior(out)
			src = PlaneSource{P: p}
		}
	}
	return out, nil
}

// TestGeneratedStagedAndReduction compiles multi-stage units — including
// a pipeline that chains a reduction after a stencil stage — with the
// real toolchain and checks values against the interpreter chain, plus
// (via the harness's schedule re-runs) that worker strips and
// sliding-window fusion reproduce Eval exactly, faults included.
func TestGeneratedStagedAndReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles generated code with the go toolchain")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}

	const outW, outH = 7, 6
	plane := diffPlane()
	src := PlaneSource{P: plane}
	zx := func(e *Expr) *Expr { return &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{e}} }

	// pipe2: horizontal then vertical pass (the blur2p shape).
	h0 := &Kernel{Name: "pipe2#0", OutWidth: outW, OutHeight: outH + 2, Channels: 1, OriginX: 1, OriginY: 0,
		Trees: []*Expr{Bin(OpDiv, 4, &Expr{Op: OpAdd, Width: 4,
			Args: []*Expr{zx(Load(-1, 0, 0)), zx(Load(0, 0, 0)), zx(Load(1, 0, 0))}}, Const(3))}}
	v1 := &Kernel{Name: "pipe2#1", OutWidth: outW, OutHeight: outH, Channels: 1, OriginX: 0, OriginY: 1,
		Trees: []*Expr{Bin(OpDiv, 4, &Expr{Op: OpAdd, Width: 4,
			Args: []*Expr{zx(Load(0, -1, 0)), zx(Load(0, 0, 0)), zx(Load(0, 1, 0))}}, Const(3))}}

	// pipefault: the second stage divides by the difference between an
	// intermediate sample and a value the intermediate provably takes at
	// (5, 4), so the chain faults there deterministically.
	f0 := &Kernel{Name: "pipefault#0", OutWidth: outW + 1, OutHeight: outH + 1, Channels: 1, OriginX: 0, OriginY: 0,
		Trees: []*Expr{Bin(OpShr, 4, zx(Load(0, 0, 0)), Const(3))}}
	collide := int64(plane.At(5, 4) >> 3)
	f1 := &Kernel{Name: "pipefault#1", OutWidth: outW, OutHeight: outH, Channels: 1, OriginX: 0, OriginY: 0,
		Trees: []*Expr{Bin(OpDiv, 4, Const(77),
			Bin(OpSub, 4, zx(Load(1, 1, 0)), Const(collide)))}}

	// redchain: a stencil stage feeding a histogram reduction.
	r0 := &Kernel{Name: "redchain#0", OutWidth: outW, OutHeight: outH, Channels: 1, OriginX: 1, OriginY: 1,
		Trees: []*Expr{Bin(OpAnd, 4, Bin(OpAdd, 4, zx(Load(0, 0, 0)), zx(Load(1, 1, 0))), Const(0xff))}}
	red := &Reduction{Name: "redchain", DomW: outW, DomH: outH, Bins: 256, Elem: 4,
		Init: make([]uint64, 256), Index: Load(0, 0, 0), Delta: 1}

	units := []GenKernel{
		{Name: "pipe2", Stages: []*Kernel{h0, v1}},
		{Name: "pipefault", Stages: []*Kernel{f0, f1}},
		{Name: "redchain", Stages: []*Kernel{r0}, Red: red},
	}
	srcCode, err := GenerateUnits("liftedkernels", units)
	if err != nil {
		t.Fatalf("GenerateUnits: %v", err)
	}
	dir := t.TempDir()
	genHarness(t, dir, srcCode, plane)
	results := runHarness(t, dir)
	checkSchedLines(t, results)

	// pipe2: values must match the interpreter chain.
	want, err := evalStagedRef([]*Kernel{h0, v1}, src)
	if err != nil {
		t.Fatalf("pipe2 reference: %v", err)
	}
	if got := results["pipe2"]; got[0] != "OK" || got[1] != hex.EncodeToString(want) {
		t.Errorf("pipe2: harness %v, want OK %s", got, hex.EncodeToString(want))
	}

	// pipefault: the interpreter chain faults; the harness must too (the
	// schedule re-runs above already proved fused == materialize).
	if _, err := evalStagedRef([]*Kernel{f0, f1}, src); err == nil {
		t.Fatal("pipefault reference did not fault")
	}
	if got := results["pipefault"]; got[0] != "ERR" {
		t.Errorf("pipefault: harness returned %v, want ERR", got)
	}

	// redchain: histogram of the stage output.
	stageOut, err := r0.Eval(src)
	if err != nil {
		t.Fatalf("redchain stage reference: %v", err)
	}
	bins := make([]uint32, 256)
	for _, v := range stageOut {
		bins[v]++
	}
	ref := make([]byte, 0, 1024)
	for _, v := range bins {
		ref = append(ref, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	if got := results["redchain"]; got[0] != "OK" || got[1] != hex.EncodeToString(ref) {
		t.Errorf("redchain: harness %v, want OK %s", got, hex.EncodeToString(ref))
	}
}

// TestGeneratedBatchTailWidths pins the head-cutting batch/tail split at
// its edge widths: below one batch (1, 7), exactly one batch (8), one
// batch plus a tail (9, 15), and two batches plus a tail (17).  Each
// width gets a value kernel (the boxblur shape) and two table-fault
// kernels — a dense one that faults on nearly every byte and a sparse
// one whose first out-of-range byte lands at a width-dependent scan
// position — and the generated code must agree with the interpreter
// bit-exactly: values, fault positions and fault messages.  A batch/tail
// boundary bug (a lane indexing past its block, a tail starting at the
// wrong sample, a fault reporting the lane constant instead of the
// running x) shows up here as a wrong value or a wrong reported
// coordinate.
func TestGeneratedBatchTailWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles generated code with the go toolchain")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}

	widths := []int{1, 7, 8, 9, 15, 17}
	const outH = 4
	// A plane wide enough for the largest width plus the stencil margin;
	// deterministic fill, margin included, like diffPlane.
	plane := image.NewPlane(20, outH+2, 2)
	r := testRNG(97)
	for y := -2; y < outH+4; y++ {
		for x := -2; x < 22; x++ {
			plane.Set(x, y, byte(r.next()))
		}
	}
	src := PlaneSource{P: plane}

	zx := func(e *Expr) *Expr { return &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{e}} }
	boxTree := func() *Expr {
		taps := make([]*Expr, 0, 10)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				taps = append(taps, zx(Load(dx, dy, 0)))
			}
		}
		taps = append(taps, Const(4))
		return Bin(OpDiv, 4, &Expr{Op: OpAdd, Width: 4, Args: taps}, Const(9))
	}
	faultTree := func(tabLen int) *Expr {
		tab := make([]byte, tabLen)
		for i := range tab {
			tab[i] = byte(i * 3)
		}
		return &Expr{Op: OpTable, Table: tab, Elem: 1, Args: []*Expr{Load(0, 0, 0)}}
	}

	var kernels []*Kernel
	for _, w := range widths {
		kernels = append(kernels,
			&Kernel{Name: fmt.Sprintf("btv%d", w), OutWidth: w, OutHeight: outH,
				Channels: 1, OriginX: 1, OriginY: 1, Trees: []*Expr{boxTree()}},
			// Dense faults (8-entry table): the very first sample of every
			// width is almost surely out of range, pinning the batch loop's
			// first lane.
			&Kernel{Name: fmt.Sprintf("btd%d", w), OutWidth: w, OutHeight: outH,
				Channels: 1, OriginX: 1, OriginY: 1, Trees: []*Expr{faultTree(8)}},
			// Sparse faults (200-entry table, ~22%% of bytes out of range):
			// the first fault lands mid-row at a width-dependent position,
			// often inside a tail or a later lane block.
			&Kernel{Name: fmt.Sprintf("bts%d", w), OutWidth: w, OutHeight: outH,
				Channels: 1, OriginX: 1, OriginY: 1, Trees: []*Expr{faultTree(200)}},
		)
	}

	srcCode, err := Generate("liftedkernels", kernels)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	dir := t.TempDir()
	genHarness(t, dir, srcCode, plane)
	results := runHarness(t, dir)
	checkSchedLines(t, results)

	faults := 0
	for _, k := range kernels {
		got, ok := results[k.Name]
		if !ok {
			t.Fatalf("kernel %s missing from harness output", k.Name)
		}
		want, werr := k.Eval(src)
		if werr != nil {
			faults++
			if got[0] != "ERR" || got[1] != werr.Error() {
				t.Errorf("%s: generated %s %q, want ERR %q", k.Name, got[0], got[1], werr)
			}
			continue
		}
		if got[0] != "OK" || got[1] != hex.EncodeToString(want) {
			t.Errorf("%s: generated %s %q, want OK %s", k.Name, got[0], got[1], hex.EncodeToString(want))
		}
	}
	// The dense-fault kernels guarantee one fault per width; losing them
	// all means the corpus stopped testing fault order at the edges.
	if faults < len(widths) {
		t.Fatalf("only %d faulting kernels across %d widths; the edge-width fault coverage collapsed", faults, len(widths))
	}
}

// TestGeneratedStridedEdgeWidths is the affine-map differential at the
// batch/tail edge geometries: resize-style kernels with strided index
// maps in(s*x+1, y) for s ∈ {2, 3} — plus upsample-style floor-divided
// maps in(x/2, y) — at outW ∈ {1, 7, 8, 9, 15, 17}, compiled with the
// real toolchain and held bit-exact against the interpreter: values,
// fault positions and fault messages.  A strided batch loop that steps
// its source pointer wrong, maps a tail sample through the lane constant,
// or reports a fault at the mapped input coordinate instead of the output
// x shows up here directly.
func TestGeneratedStridedEdgeWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles generated code with the go toolchain")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}

	widths := []int{1, 7, 8, 9, 15, 17}
	strides := []int{2, 3}
	const outH = 4
	// Wide enough for the farthest mapped tap: 3*16+1 plus the +1 tap.
	plane := image.NewPlane(52, outH+2, 2)
	r := testRNG(211)
	for y := -2; y < outH+4; y++ {
		for x := -2; x < 54; x++ {
			plane.Set(x, y, byte(r.next()))
		}
	}
	src := PlaneSource{P: plane}

	zx := func(e *Expr) *Expr { return &Expr{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{e}} }
	// The resize shape: a two-tap average at the mapped center.
	avgTree := func() *Expr {
		return Bin(OpDiv, 4, &Expr{Op: OpAdd, Width: 4,
			Args: []*Expr{zx(Load(0, 0, 0)), zx(Load(1, 0, 0)), Const(1)}}, Const(2))
	}
	faultTree := func(tabLen int) *Expr {
		tab := make([]byte, tabLen)
		for i := range tab {
			tab[i] = byte(i * 3)
		}
		return &Expr{Op: OpTable, Table: tab, Elem: 1, Args: []*Expr{Load(0, 0, 0)}}
	}

	var kernels []*Kernel
	for _, s := range strides {
		for _, w := range widths {
			mk := func(name string, tree *Expr) {
				kernels = append(kernels, &Kernel{Name: name, OutWidth: w, OutHeight: outH,
					Channels: 1, MapX: AxisMap{Num: s, Den: 1, Off: 1}, Trees: []*Expr{tree}})
			}
			mk(fmt.Sprintf("sv%dw%d", s, w), avgTree())
			// Dense faults (8-entry table): the first sample faults, pinning
			// the strided batch loop's first lane.
			mk(fmt.Sprintf("sd%dw%d", s, w), faultTree(8))
			// Sparse faults (200-entry table): the first out-of-range byte
			// lands at a width- and stride-dependent scan position, often
			// inside a tail or a later lane block.
			mk(fmt.Sprintf("ss%dw%d", s, w), faultTree(200))
		}
	}
	// Upsample-style floor division: every width again under in(x/2, y).
	for _, w := range widths {
		kernels = append(kernels,
			&Kernel{Name: fmt.Sprintf("uv%d", w), OutWidth: w, OutHeight: outH,
				Channels: 1, MapX: AxisMap{Num: 1, Den: 2}, Trees: []*Expr{avgTree()}},
			&Kernel{Name: fmt.Sprintf("ud%d", w), OutWidth: w, OutHeight: outH,
				Channels: 1, MapX: AxisMap{Num: 1, Den: 2}, Trees: []*Expr{faultTree(8)}})
	}

	srcCode, err := Generate("liftedkernels", kernels)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	dir := t.TempDir()
	genHarness(t, dir, srcCode, plane)
	results := runHarness(t, dir)
	checkSchedLines(t, results)

	faults := 0
	for _, k := range kernels {
		got, ok := results[k.Name]
		if !ok {
			t.Fatalf("kernel %s missing from harness output", k.Name)
		}
		want, werr := k.Eval(src)
		if werr != nil {
			faults++
			if got[0] != "ERR" || got[1] != werr.Error() {
				t.Errorf("%s: generated %s %q, want ERR %q", k.Name, got[0], got[1], werr)
			}
			continue
		}
		if got[0] != "OK" || got[1] != hex.EncodeToString(want) {
			t.Errorf("%s: generated %s %q, want OK %s", k.Name, got[0], got[1], hex.EncodeToString(want))
		}
	}
	// Every (stride, width) pair contributes a dense-fault kernel, and so
	// does every floor-divided width.
	if faults < len(strides)*len(widths)+len(widths) {
		t.Fatalf("only %d faulting kernels; the strided edge-width fault coverage collapsed", faults)
	}
}
