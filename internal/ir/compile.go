// Lowering from expression trees to flat register programs.
//
// The compiler performs three optimizations over a channel's tree:
//
//   - common-subexpression elimination: structurally identical subtrees
//     (by canonical key, so value-equal copies merge even when the tree
//     does not share pointers) compute into one register;
//   - constant pooling: every distinct constant, integer or float, is
//     materialized once in the register-file prefix and never reloaded;
//   - variadic binarization: canonicalized n-ary chains (the flattened
//     associative sums the lifting pipeline produces) become sequences of
//     binary instructions with identical masking semantics.
//
// Compilation is strict where the interpreter is lenient: malformed arities
// and unknown call symbols are rejected up front instead of failing at
// evaluation time.  Domain mismatches (an integer tree feeding a float
// operation or vice versa) are compiled to the zero value the interpreter's
// two-field value struct yields, so compiled execution stays bit-identical
// even on such trees.
package ir

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// cref is a compile-time value reference: a register in one of the two
// numbering spaces (constants are encoded as ^poolIndex, temporaries as
// their instruction index) plus the value's domain.
type cref struct {
	id    int32
	float bool
}

type poolKey struct {
	bits  uint64
	float bool
}

type compiler struct {
	consts []uint64
	pool   map[poolKey]int32
	insts  []pinst
	byPtr  map[*Expr]cref
	byID   map[int32]cref
	// Hash-consing state for exprID: structurally identical subtrees map
	// to one id.
	idByPtr map[*Expr]int32
	idByKey map[string]int32
}

// CompileExpr lowers one expression tree to a register program.
func CompileExpr(e *Expr) (*Program, error) {
	c := &compiler{
		pool:    make(map[poolKey]int32),
		byPtr:   make(map[*Expr]cref),
		byID:    make(map[int32]cref),
		idByPtr: make(map[*Expr]int32),
		idByKey: make(map[string]int32),
	}
	root, err := c.lower(e)
	if err != nil {
		return nil, err
	}
	p := &Program{
		consts:    c.consts,
		insts:     c.insts,
		numRegs:   len(c.consts) + len(c.insts),
		root:      c.fix(root.id),
		rootFloat: root.float,
	}
	for i := range p.insts {
		in := &p.insts[i]
		in.a, in.b, in.c = c.fix(in.a), c.fix(in.b), c.fix(in.c)
		for j := range in.args {
			in.args[j] = c.fix(in.args[j])
		}
		in.dst = c.fix(in.dst)
		finalize(in)
	}
	markLiveness(p)
	p.width = inferWidths(p)
	return p, nil
}

// markLiveness flags pure instructions whose value is never consumed —
// leftovers of the interpreter-exact domain coercions (a float subtree
// consumed as an integer reads as zero, so the float computation is dead).
// Fault-capable instructions (division, modulo, table lookups, fused
// loads) stay live: their runtime checks are observable, and the operands
// those checks read stay live with them.
func markLiveness(p *Program) {
	nc := int32(len(p.consts))
	live := make([]bool, len(p.insts))
	mark := func(id int32) {
		if id >= nc {
			live[id-nc] = true
		}
	}
	mark(p.root)
	for i := len(p.insts) - 1; i >= 0; i-- {
		in := &p.insts[i]
		if live[i] {
			for _, r := range operands(in) {
				mark(r)
			}
			continue
		}
		switch in.op {
		case OpDiv, OpMod:
			mark(in.b) // the zero check reads the divisor
		case OpTable, OpTableIn:
			mark(in.a) // the range check reads the index
		}
	}
	for i := range p.insts {
		if live[i] {
			continue
		}
		switch in := &p.insts[i]; in.op {
		case OpDiv, OpMod, OpTable, OpTableIn, OpLoad:
			// Fault-capable: keeps executing for its checks.
		case opSumTaps:
			if len(in.taps) == 0 {
				in.dead = true
			}
		default:
			in.dead = true
		}
	}
}

// finalize precomputes the executor's mask and sign-extension shift from
// the instruction's widths, replicating maskW and signExt exactly: widths
// 1, 2 and 4 mask and sign-extend, every other width passes values
// through untouched.
func finalize(in *pinst) {
	switch in.op {
	case OpZExt:
		in.mask = maskFor(int(in.srcWidth))
	case OpSExt:
		in.mask = maskFor(int(in.width))
		in.sh = shFor(int(in.srcWidth))
	case OpIntToFP:
		in.sh = shFor(int(in.srcWidth))
	case OpSar, opMinN, opMaxN, OpCmpLtS, OpCmpLeS:
		in.mask = maskFor(int(in.width))
		in.sh = shFor(int(in.width))
	case OpLoad, OpSelect, OpTable, OpTableIn, OpFAdd, OpFSub, OpFMul, OpFDiv, OpCall:
		// No masking: loads produce bytes, select copies a value, tables
		// produce at most elem bytes, float results stay full bit patterns.
	default:
		in.mask = maskFor(int(in.width))
	}
}

// divByConst strength-reduces an unsigned division or modulo by a
// constant.  A power-of-two divisor becomes a shift (or an AND for the
// remainder).  Any other divisor becomes an exact multiply-high with
// magic = floor(2^64/d) + 1: for a masked numerator a < 2^32 and divisor
// 2 <= d < 2^32, a*magic/2^64 <= a/d + a/2^64 < a/d + 1/d, so the high
// word is exactly floor(a/d).  Widths outside {1,2,4} leave the numerator
// unbounded and keep the runtime instruction, as does a divisor that
// masks to zero (which must keep faulting at runtime).
func divByConst(op Op, w uint8, d uint64, a int32) (pinst, bool) {
	dm := d & maskFor(int(w))
	if dm == 0 {
		return pinst{}, false
	}
	if dm&(dm-1) == 0 {
		if op == OpDiv {
			return pinst{op: opDivShift, width: w, val: int64(bits.TrailingZeros64(dm)), a: a}, true
		}
		return pinst{op: opModShift, width: w, dcon: dm, a: a}, true
	}
	if w != 1 && w != 2 && w != 4 {
		return pinst{}, false
	}
	magic := math.MaxUint64/dm + 1
	if op == OpDiv {
		return pinst{op: opDivMagic, width: w, magic: magic, dcon: dm, a: a}, true
	}
	return pinst{op: opModMagic, width: w, magic: magic, dcon: dm, a: a}, true
}

// fix maps an encoded register id to its final register-file index:
// constants keep their pool index, temporaries shift past the pool.
func (c *compiler) fix(id int32) int32 {
	if id < 0 {
		return ^id
	}
	return id + int32(len(c.consts))
}

// constRef pools a constant value, keyed by bits and domain.
func (c *compiler) constRef(bits uint64, float bool) cref {
	key := poolKey{bits: bits, float: float}
	if i, ok := c.pool[key]; ok {
		return cref{id: ^i, float: float}
	}
	i := int32(len(c.consts))
	c.consts = append(c.consts, bits)
	c.pool[key] = i
	return cref{id: ^i, float: float}
}

// emit appends one instruction defining a fresh temporary register.
func (c *compiler) emit(in pinst) cref {
	in.dst = int32(len(c.insts))
	c.insts = append(c.insts, in)
	return cref{id: in.dst, float: in.op.IsFloat() || in.op == OpConstF}
}

// asInt coerces a reference to the integer domain.  The interpreter's
// value struct zero-fills the unused field, so a float value consumed as an
// integer reads as 0; mirror that exactly.
func (c *compiler) asInt(r cref) cref {
	if !r.float {
		return r
	}
	return c.constRef(0, false)
}

// asFloat coerces a reference to the float domain (an integer value
// consumed as a float reads as 0.0, whose bit pattern is also zero).
func (c *compiler) asFloat(r cref) cref {
	if r.float {
		return r
	}
	return c.constRef(0, true)
}

func (c *compiler) lower(e *Expr) (cref, error) {
	if r, ok := c.byPtr[e]; ok {
		return r, nil
	}
	switch e.Op {
	case OpConst:
		r := c.constRef(uint64(e.Val), false)
		c.byPtr[e] = r
		return r, nil
	case OpConstF:
		r := c.constRef(math.Float64bits(e.F), true)
		c.byPtr[e] = r
		return r, nil
	}
	id := c.exprID(e)
	if r, ok := c.byID[id]; ok {
		c.byPtr[e] = r
		return r, nil
	}
	r, err := c.lowerOp(e)
	if err != nil {
		return cref{}, err
	}
	c.byPtr[e] = r
	c.byID[id] = r
	return r, nil
}

// exprID hash-conses the subtree: structurally identical subtrees (the
// value equality CSE merges by) get the same id.  Each node's key encodes
// its operator and scalar fields plus its children's *ids*, not their
// expansions, so key sizes and work stay linear even on the heavily
// shared DAGs the extractor's memo produces — a full textual expansion
// would be exponential there.
func (c *compiler) exprID(e *Expr) int32 {
	if id, ok := c.idByPtr[e]; ok {
		return id
	}
	var b strings.Builder
	e.keyHeader(&b, true)
	b.WriteString("(")
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "#%d", c.exprID(a))
	}
	b.WriteString(")")
	key := b.String()
	id, ok := c.idByKey[key]
	if !ok {
		id = int32(len(c.idByKey))
		c.idByKey[key] = id
	}
	c.idByPtr[e] = id
	return id
}

// foldArity gives the exact operand count of the ops the generic
// constant-folding path may evaluate; ops with flexible arity fold in
// their own lowering branches.
var foldArity = map[Op]int{
	OpSub: 2, OpMulHi: 2, OpShl: 2, OpShr: 2, OpSar: 2,
	OpNot: 1, OpNeg: 1, OpZExt: 1, OpSExt: 1, OpExtract: 1,
	OpSelect: 3, OpIntToFP: 1, OpFPToInt: 1,
	OpFAdd: 2, OpFSub: 2, OpFMul: 2, OpFDiv: 2, OpCall: 1,
	OpCmpEq: 2, OpCmpNe: 2, OpCmpLtS: 2, OpCmpLeS: 2, OpCmpLtU: 2, OpCmpLeU: 2,
}

// constVal recovers the interpreter value of a constant reference.
func (c *compiler) constVal(r cref) value {
	bits := c.consts[^r.id]
	if r.float {
		return value{f: math.Float64frombits(bits), fl: true}
	}
	return value{i: bits}
}

// foldRefs evaluates a pure operation whose operands all lowered to pool
// constants, with the interpreter's own apply so the semantics (masking,
// domain mixing, rounding) are identical by construction.  Division,
// modulo and table lookups are never folded: their runtime faults must
// keep happening at runtime.
func (c *compiler) foldRefs(e *Expr, args []cref) (cref, bool) {
	arity, ok := foldArity[e.Op]
	if !ok || arity != len(args) {
		return cref{}, false
	}
	if e.Op == OpSelect && args[1].float != args[2].float {
		// Mixed-domain arms are a compile error, not a foldable value.
		return cref{}, false
	}
	if e.Op == OpCall {
		if _, ok := KnownCalls[e.Sym]; !ok {
			return cref{}, false
		}
	}
	vals := make([]value, len(args))
	for i, r := range args {
		if r.id >= 0 {
			return cref{}, false
		}
		vals[i] = c.constVal(r)
	}
	v, err := e.apply(vals)
	if err != nil {
		return cref{}, false
	}
	if v.fl {
		return c.constRef(math.Float64bits(v.f), true), true
	}
	return c.constRef(v.i, false), true
}

func (c *compiler) lowerOp(e *Expr) (cref, error) {
	w := uint8(e.Width)

	switch e.Op {
	case OpLoad:
		return c.emit(pinst{op: OpLoad, dx: int32(e.DX), dy: int32(e.DY), dc: int32(e.DC)}), nil

	case OpAdd:
		// The workhorse of stencil kernels: fuse the whole (possibly
		// n-ary) sum into one instruction.  Input taps fold into a tap
		// list, constants into a compile-time bias, and everything else
		// becomes a register operand; the mask applies once at the end,
		// exactly like the interpreter's variadic sum.
		if len(e.Args) == 0 {
			return cref{}, fmt.Errorf("ir: compile: %v with no operands", e.Op)
		}
		var taps []tap
		var bias uint64
		var regArgs []int32
		for _, a := range e.Args {
			switch a.Op {
			case OpLoad:
				taps = append(taps, tap{dx: int32(a.DX), dy: int32(a.DY), dc: int32(a.DC)})
			case OpConst:
				bias += uint64(a.Val)
			case OpConstF:
				// A float constant consumed by an integer sum reads as
				// integer zero: contributes nothing.
			default:
				r, err := c.lower(a)
				if err != nil {
					return cref{}, err
				}
				// Operands that folded to constants merge into the bias
				// instead of burning a register add per sample.
				if id := c.asInt(r).id; id < 0 {
					bias += c.consts[^id]
				} else {
					regArgs = append(regArgs, id)
				}
			}
		}
		if len(taps) == 0 && len(regArgs) == 0 {
			// Every operand was a compile-time constant: the sum is one.
			return c.constRef(maskW(bias, e.Width), false), nil
		}
		return c.emit(pinst{op: opSumTaps, width: w, val: int64(bias), taps: taps, args: regArgs}), nil

	case OpMul, OpAnd, OpOr, OpXor, OpMin, OpMax:
		if len(e.Args) == 0 {
			return cref{}, fmt.Errorf("ir: compile: %v with no operands", e.Op)
		}
		nary := map[Op]Op{OpMul: opMulN, OpAnd: opAndN, OpOr: opOrN, OpXor: opXorN, OpMin: opMinN, OpMax: opMaxN}
		refs := make([]cref, len(e.Args))
		regArgs := make([]int32, len(e.Args))
		allConst := true
		for i, a := range e.Args {
			r, err := c.lower(a)
			if err != nil {
				return cref{}, err
			}
			refs[i] = r
			regArgs[i] = c.asInt(r).id
			if regArgs[i] >= 0 {
				allConst = false
			}
		}
		if allConst {
			vals := make([]value, len(refs))
			for i, r := range refs {
				vals[i] = c.constVal(r)
			}
			if v, err := e.apply(vals); err == nil {
				return c.constRef(v.i, false), nil
			}
		}
		return c.emit(pinst{op: nary[e.Op], width: w, args: regArgs}), nil

	case OpDiv, OpMod:
		if len(e.Args) != 2 {
			return cref{}, fmt.Errorf("ir: compile: %v with %d operands", e.Op, len(e.Args))
		}
		num, err := c.lower(e.Args[0])
		if err != nil {
			return cref{}, err
		}
		a := c.asInt(num).id
		if dv := e.Args[1]; dv.Op == OpConst {
			if in, ok := divByConst(e.Op, w, uint64(dv.Val), a); ok {
				return c.emit(in), nil
			}
		}
		den, err := c.lower(e.Args[1])
		if err != nil {
			return cref{}, err
		}
		return c.emit(pinst{op: e.Op, width: w, a: a, b: c.asInt(den).id}), nil
	}

	args := make([]cref, len(e.Args))
	for i, a := range e.Args {
		r, err := c.lower(a)
		if err != nil {
			return cref{}, err
		}
		args[i] = r
	}

	if r, ok := c.foldRefs(e, args); ok {
		return r, nil
	}

	switch e.Op {
	case OpSub, OpMulHi, OpShl, OpShr, OpSar,
		OpCmpEq, OpCmpNe, OpCmpLtS, OpCmpLeS, OpCmpLtU, OpCmpLeU:
		if len(args) != 2 {
			return cref{}, fmt.Errorf("ir: compile: %v with %d operands", e.Op, len(args))
		}
		return c.emit(pinst{op: e.Op, width: w, a: c.asInt(args[0]).id, b: c.asInt(args[1]).id}), nil

	case OpNot, OpNeg:
		if len(args) != 1 {
			return cref{}, fmt.Errorf("ir: compile: %v with %d operands", e.Op, len(args))
		}
		return c.emit(pinst{op: e.Op, width: w, a: c.asInt(args[0]).id}), nil

	case OpZExt, OpSExt:
		if len(args) != 1 {
			return cref{}, fmt.Errorf("ir: compile: %v with %d operands", e.Op, len(args))
		}
		return c.emit(pinst{op: e.Op, width: w, srcWidth: uint8(e.SrcWidth), a: c.asInt(args[0]).id}), nil

	case OpExtract:
		if len(args) != 1 {
			return cref{}, fmt.Errorf("ir: compile: extract with %d operands", len(args))
		}
		return c.emit(pinst{op: OpExtract, width: w, val: e.Val, a: c.asInt(args[0]).id}), nil

	case OpSelect:
		if len(args) != 3 {
			return cref{}, fmt.Errorf("ir: compile: select with %d operands", len(args))
		}
		if args[1].float != args[2].float {
			return cref{}, fmt.Errorf("ir: compile: select arms have mixed integer/float domains")
		}
		r := c.emit(pinst{op: OpSelect, fl: args[1].float, a: c.asInt(args[0]).id, b: args[1].id, c: args[2].id})
		r.float = args[1].float
		return r, nil

	case OpTable:
		if len(args) != 1 {
			return cref{}, fmt.Errorf("ir: compile: table with %d operands", len(args))
		}
		if e.Elem <= 0 {
			return cref{}, fmt.Errorf("ir: compile: table with element width %d", e.Elem)
		}
		return c.emit(pinst{op: OpTable, table: e.Table, elem: e.Elem, a: c.asInt(args[0]).id}), nil

	case OpTableIn:
		if len(args) != 1 {
			return cref{}, fmt.Errorf("ir: compile: tablein with %d operands", len(args))
		}
		if e.Elem <= 0 {
			return cref{}, fmt.Errorf("ir: compile: tablein with element width %d", e.Elem)
		}
		return c.emit(pinst{op: OpTableIn, elem: e.Elem, a: c.asInt(args[0]).id}), nil

	case OpIntToFP:
		if len(args) != 1 {
			return cref{}, fmt.Errorf("ir: compile: i2f with %d operands", len(args))
		}
		return c.emit(pinst{op: OpIntToFP, srcWidth: uint8(e.SrcWidth), a: c.asInt(args[0]).id}), nil

	case OpFPToInt:
		if len(args) != 1 {
			return cref{}, fmt.Errorf("ir: compile: f2i with %d operands", len(args))
		}
		return c.emit(pinst{op: OpFPToInt, width: w, a: c.asFloat(args[0]).id}), nil

	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		if len(args) != 2 {
			return cref{}, fmt.Errorf("ir: compile: %v with %d operands", e.Op, len(args))
		}
		return c.emit(pinst{op: e.Op, a: c.asFloat(args[0]).id, b: c.asFloat(args[1]).id}), nil

	case OpCall:
		if len(args) != 1 {
			return cref{}, fmt.Errorf("ir: compile: call with %d operands", len(args))
		}
		fn, ok := KnownCalls[e.Sym]
		if !ok {
			return cref{}, fmt.Errorf("ir: compile: unknown library call %q", e.Sym)
		}
		return c.emit(pinst{op: OpCall, fn: fn, sym: e.Sym, a: c.asFloat(args[0]).id}), nil
	}
	return cref{}, fmt.Errorf("ir: compile: op %v is not compilable", e.Op)
}

// Disasm renders the program for debugging and golden tests.
func (p *Program) Disasm() string {
	var b strings.Builder
	for i, cv := range p.consts {
		fmt.Fprintf(&b, "r%d = const %#x\n", i, cv)
	}
	for i := range p.insts {
		in := &p.insts[i]
		fmt.Fprintf(&b, "r%d = %s", in.dst, in.op)
		if in.width != 0 {
			fmt.Fprintf(&b, ".w%d", in.width)
		}
		switch in.op {
		case OpLoad:
			fmt.Fprintf(&b, " (%d,%d,%d)", in.dx, in.dy, in.dc)
		case opSumTaps:
			for _, t := range in.taps {
				fmt.Fprintf(&b, " (%d,%d,%d)", t.dx, t.dy, t.dc)
			}
			for _, r := range in.args {
				fmt.Fprintf(&b, " r%d", r)
			}
			if in.val != 0 {
				fmt.Fprintf(&b, " +%d", in.val)
			}
		case opMulN, opAndN, opOrN, opXorN, opMinN, opMaxN:
			for j, r := range in.args {
				if j > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, " r%d", r)
			}
		case opDivShift, opModShift, opDivMagic, opModMagic:
			fmt.Fprintf(&b, " r%d", in.a)
			if in.op == opDivShift {
				fmt.Fprintf(&b, ", %d", in.val)
			} else {
				fmt.Fprintf(&b, ", d=%d", in.dcon)
			}
		case OpNot, OpNeg, OpZExt, OpSExt, OpIntToFP, OpFPToInt, OpCall, OpTable, OpTableIn, OpExtract:
			fmt.Fprintf(&b, " r%d", in.a)
		case OpSelect:
			fmt.Fprintf(&b, " r%d, r%d, r%d", in.a, in.b, in.c)
		default:
			fmt.Fprintf(&b, " r%d, r%d", in.a, in.b)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "ret r%d\n", p.root)
	return b.String()
}
