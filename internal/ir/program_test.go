package ir

import (
	"bytes"
	"strings"
	"testing"
)

// TestMagicDivisionEdgeCases pins the constant-divisor strength reduction
// on the boundary inputs random differentials only hit by luck: divisor 1,
// powers of two, divisors masking to zero, max-uint dividends, and values
// on the signed boundary — for every width, for division and modulo, in
// scalar execution.  The reference is the tree-walking interpreter.
func TestMagicDivisionEdgeCases(t *testing.T) {
	widths := []int{1, 2, 4}
	dividends := []int64{
		0, 1, 2, 3, 9, 127, 128, 254, 255, 256, 257,
		32767, 32768, 65535, 65536, 65537,
		1<<31 - 1, 1 << 31, 1<<32 - 1, // signed boundary and max-uint
		-1, -128, // wrap to max values at every width
	}
	divisors := []int64{
		0, 1, 2, 3, 4, 5, 7, 8, 9, 10, 16, 100, 127, 128, 255, 256, 257,
		32767, 32768, 65535, 65536, 65537,
		1<<31 - 1, 1 << 31, 1<<31 + 1, 1<<32 - 1, 1 << 32, // masks to 0 at width 4
	}
	cases := 0
	for _, w := range widths {
		for _, a := range dividends {
			for _, d := range divisors {
				for _, op := range []Op{OpDiv, OpMod} {
					e := Bin(op, w, Const(a), Const(d))
					want, werr := e.Eval(nil, 0, 0, 0)
					p, err := CompileExpr(e)
					if err != nil {
						t.Fatalf("CompileExpr(%s): %v", e, err)
					}
					got, gerr := p.Run(nil, 0, 0, 0)
					if (werr != nil) != (gerr != nil) {
						t.Fatalf("w%d %d %s %d: interp err %v, compiled err %v\n%s", w, a, op, d, werr, gerr, p.Disasm())
					}
					if werr != nil {
						if werr.Error() != gerr.Error() {
							t.Fatalf("w%d %d %s %d: interp error %q, compiled error %q", w, a, op, d, werr, gerr)
						}
					} else if got != want {
						t.Fatalf("w%d %d %s %d: interp %#x, compiled %#x\n%s", w, a, op, d, want, got, p.Disasm())
					}
					cases++
				}
			}
		}
	}
	t.Logf("%d division/modulo edge cases bit-exact", cases)
}

// TestDivisionStrengthReduction pins which lowering each divisor class
// gets: shifts for powers of two (including the trivial divisor 1), exact
// multiply-high magic otherwise, and the faulting runtime instruction when
// the divisor masks to zero.
func TestDivisionStrengthReduction(t *testing.T) {
	cases := []struct {
		w    int
		d    int64
		want string
	}{
		{4, 1, "div>>"},  // 2^0: shift by zero
		{4, 8, "div>>"},  // power of two
		{1, 256, "/"},    // masks to zero: keeps the faulting runtime op
		{4, 9, "div*"},   // magic multiply
		{2, 255, "div*"}, // magic multiply near the mask
		{1, 129, "div*"}, // magic multiply at width 1
		{4, 1 << 31, "div>>"},
		{4, 1<<32 - 1, "div*"},
	}
	for _, c := range cases {
		p, err := CompileExpr(Bin(OpDiv, c.w, &Expr{Op: OpZExt, Width: c.w, SrcWidth: 4, Args: []*Expr{Load(0, 0, 0)}}, Const(c.d)))
		if err != nil {
			t.Fatal(err)
		}
		if dis := p.Disasm(); !strings.Contains(dis, c.want) {
			t.Errorf("div w%d by %d: lowering lacks %q:\n%s", c.w, c.d, c.want, dis)
		}
	}
}

// TestMagicDivisionRowAndLanes runs constant divisions over whole kernel
// grids so the row-vectorized paths — 64-bit reference and narrow lanes
// alike — execute the shift/magic forms on real data, including max-value
// inputs from the table trick below.
func TestMagicDivisionRowAndLanes(t *testing.T) {
	plane := diffPlane()
	src := PlaneSource{P: plane}
	// A table mapping every byte to 255 widens the dividend range to the
	// lane maximum without leaving the narrow-lane op set.
	maxTable := bytes.Repeat([]byte{255}, 256)
	numerators := []*Expr{
		{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{Load(0, 0, 0)}},
		{Op: OpTable, Table: maxTable, Elem: 1, Args: []*Expr{{Op: OpZExt, Width: 4, SrcWidth: 1, Args: []*Expr{Load(0, 0, 0)}}}},
	}
	divisors := []int64{1, 2, 3, 7, 8, 9, 10, 16, 100, 255}
	for ni, num := range numerators {
		for _, d := range divisors {
			for _, op := range []Op{OpDiv, OpMod} {
				tree := Bin(op, 4, num, Const(d))
				k := &Kernel{Name: "divgrid", OutWidth: 6, OutHeight: 4, Channels: 1,
					OriginX: 1, OriginY: 1, Trees: []*Expr{tree}}
				want, err := k.Eval(src)
				if err != nil {
					t.Fatal(err)
				}
				ck, err := k.Compile()
				if err != nil {
					t.Fatal(err)
				}
				if lanes := ck.Progs[0].LaneBits(); lanes > 16 {
					t.Errorf("numerator %d %s by %d: expected narrow lanes, got %d", ni, op, d, lanes)
				}
				got, err := ck.Eval(src)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("numerator %d: lane row division %s by %d differs from interpreter", ni, op, d)
				}
			}
		}
	}
}
