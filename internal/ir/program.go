// Compiled execution of lifted kernels.  A Program is an expression tree
// lowered to a flat SSA-style register program: common subexpressions are
// computed once, constants live in a pooled register-file prefix, integer
// sums collapse into a single multi-tap instruction with the constant bias
// folded in, and constant divisions strength-reduce to multiply-high
// sequences.  Whole rows execute vectorized — every instruction processes
// one output row of samples before the next dispatches — with input taps
// resolved by flat-index addressing against the concrete pixel backing: no
// interface dispatch, no allocation and almost no interpretive overhead on
// the per-sample path.  This is the reproduction's stand-in for the paper's
// regenerated Halide code: the lifted stencil as an executable program
// rather than a walked tree.
package ir

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"

	"helium/internal/par"
	"helium/internal/schedule"
)

// Internal opcodes the lowering introduces.  They live past the public Op
// range and never appear in expression trees.
const (
	// opSumTaps is an n-ary integer sum: constant bias + input taps +
	// register operands, masked once at the end exactly like the
	// interpreter's variadic OpAdd.
	opSumTaps Op = 200 + iota
	opMulN
	opAndN
	opOrN
	opXorN
	opMinN
	opMaxN
	// opDivShift / opDivMagic are unsigned division by a nonzero
	// constant: a power of two becomes a shift, anything else an exact
	// multiply-high (the divisor is < 2^32 and the masked numerator fits
	// 32 bits, so the magic form never misrounds).
	opDivShift
	opDivMagic
	opModShift
	opModMagic
)

func init() {
	for op, name := range map[Op]string{
		opSumTaps: "sumtaps", opMulN: "mulN", opAndN: "andN", opOrN: "orN",
		opXorN: "xorN", opMinN: "minN", opMaxN: "maxN",
		opDivShift: "div>>", opDivMagic: "div*", opModShift: "mod&", opModMagic: "mod*",
	} {
		opNames[op] = name
	}
}

// tap is one input sample read at a constant offset from the output
// coordinate.
type tap struct {
	dx, dy, dc int32
}

// pinst is one flat instruction.  Operand registers a, b, c (and args for
// n-ary forms) index the register file; dst is always past the constant
// pool prefix.
type pinst struct {
	op              Op
	width, srcWidth uint8
	// mask is the precomputed result mask (the srcWidth mask for OpZExt);
	// sh is the precomputed sign-extension shift for the ops that compare
	// or extend signed values.
	mask       uint64
	sh         uint8
	a, b, c    int32
	args       []int32
	dst        int32
	val        int64 // extract byte offset / shift amount / sum bias
	magic      uint64
	dcon       uint64 // constant divisor (for the mod reconstructions)
	taps       []tap
	table      []byte
	elem       int
	fn         func(float64) float64
	sym        string // OpCall symbol, kept for the source backend
	fl         bool   // OpSelect: arms are float-domain
	dx, dy, dc int32  // OpLoad tap offsets
	// dead marks a pure instruction whose value is never consumed (a
	// leftover of domain coercion): executors skip it, and the width pass
	// ignores it when narrowing lanes.  Fault-capable instructions are
	// never flagged — their runtime checks are observable behavior.
	dead bool
}

// Program is one channel's expression tree in executable form.
type Program struct {
	// consts holds the pooled constants (floats as IEEE-754 bits);
	// registers [0, len(consts)) are loaded from it once and are never
	// written by instructions.
	consts []uint64
	insts  []pinst
	// numRegs is the register file size: len(consts) plus one register
	// per instruction (SSA form: every instruction defines a fresh
	// register).
	numRegs int
	// root is the register holding the final value; rootFloat marks a
	// floating point result, returned as its bit pattern like Expr.Eval.
	root      int32
	rootFloat bool
	// width holds the width-inference results (per-register bounds and
	// the proven lane width), stamped by CompileExpr.
	width widthInfo
}

// NumInsts returns the instruction count (a proxy for per-sample work).
func (p *Program) NumInsts() int { return len(p.insts) }

// NumConsts returns the size of the pooled constant prefix.
func (p *Program) NumConsts() int { return len(p.consts) }

// NumLoads returns how many input taps the program performs per sample,
// counting both standalone loads and taps fused into sums; after CSE this
// is the number of *distinct* taps outside sums plus the taps of each sum.
func (p *Program) NumLoads() int {
	n := 0
	for i := range p.insts {
		switch p.insts[i].op {
		case OpLoad:
			n++
		case opSumTaps:
			n += len(p.insts[i].taps)
		}
	}
	return n
}

// newRegs allocates a scalar register file with the constant pool loaded.
func (p *Program) newRegs() []uint64 {
	regs := make([]uint64, p.numRegs)
	copy(regs, p.consts)
	return regs
}

// maskFor replicates maskW as a precomputed constant: widths 1, 2 and 4
// mask, every other width passes the value through.
func maskFor(width int) uint64 {
	switch width {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	case 4:
		return 0xffffffff
	}
	return ^uint64(0)
}

// shFor replicates signExt as a shift pair: int64(v<<sh)>>sh equals
// signExt(v, width) for widths 1, 2 and 4, and the identity int64(v)
// (shift 0) for every other width.
func shFor(width int) uint8 {
	switch width {
	case 1:
		return 56
	case 2:
		return 48
	case 4:
		return 32
	}
	return 0
}

// sx sign-extends with a precomputed shift.
func sx(v uint64, sh uint8) int64 { return int64(v<<sh) >> sh }

// binding resolves input taps for one concrete source.  When pix is
// non-nil the executor addresses the backing directly; otherwise it falls
// back to Source interface calls (still within the flat register loop).
type binding struct {
	pix                   []byte
	base, stride, pixStep int
	chanStep              int
	src                   Source
	// xstep is the per-output-sample input advance in pixels along x: 1
	// for classic stencils, the index map's numerator for affine kernels
	// with denominator 1 (row execution stays vectorized, just strided).
	xstep int
	// tbl is the bound stage-input table OpTableIn instructions read.
	tbl []byte
}

// bindSource recognizes the concrete pixel backings and extracts their
// flat geometry; any other Source is bound generically.
func bindSource(src Source) binding {
	switch s := src.(type) {
	case PlaneSource:
		pix, base, stride := s.P.Flat()
		return binding{pix: pix, base: base, stride: stride, pixStep: 1, xstep: 1}
	case *PlaneSource:
		pix, base, stride := s.P.Flat()
		return binding{pix: pix, base: base, stride: stride, pixStep: 1, xstep: 1}
	case InterleavedSource:
		pix, base, stride, pixStep := s.Im.Flat()
		return binding{pix: pix, base: base, stride: stride, pixStep: pixStep, chanStep: 1, xstep: 1}
	case *InterleavedSource:
		pix, base, stride, pixStep := s.Im.Flat()
		return binding{pix: pix, base: base, stride: stride, pixStep: pixStep, chanStep: 1, xstep: 1}
	case TableSource:
		bd := bindSource(s.Src)
		bd.tbl = s.Tbl
		return bd
	}
	return binding{src: src, xstep: 1}
}

// TableSource pairs a pixel source with a bound stage-input table for
// kernels whose programs contain OpTableIn instructions.  Sampling passes
// through to the underlying source.
type TableSource struct {
	Src Source
	Tbl []byte
}

// Sample delegates to the wrapped pixel source.
func (s TableSource) Sample(x, y, c int) uint8 { return s.Src.Sample(x, y, c) }

// flatOff is the flat-index delta of a tap under bd's geometry.
func (bd *binding) flatOff(dx, dy, dc int32) int {
	return int(dy)*bd.stride + int(dx)*bd.pixStep + int(dc)*bd.chanStep
}

// progState is the reusable per-program execution state of an Executor:
// precomputed tap offsets for the bound geometry, the scalar register file
// and the row-vector register file.
type progState struct {
	offs    []int   // flat offset per OpLoad instruction (fused path)
	tapOffs [][]int // flat offsets per opSumTaps instruction (fused path)
	regs    []uint64
	rows    [][]uint64 // numRegs rows of rowWidth; consts splatted
	argRows [][]uint64 // scratch operand-slice list for n-ary ops
}

func (p *Program) newState(bd *binding, rowWidth int) *progState {
	st := &progState{
		offs:    make([]int, len(p.insts)),
		tapOffs: make([][]int, len(p.insts)),
		regs:    p.newRegs(),
	}
	for i := range p.insts {
		in := &p.insts[i]
		if bd.pix != nil {
			switch in.op {
			case OpLoad:
				st.offs[i] = bd.flatOff(in.dx, in.dy, in.dc)
			case opSumTaps:
				offs := make([]int, len(in.taps))
				for j, t := range in.taps {
					offs[j] = bd.flatOff(t.dx, t.dy, t.dc)
				}
				st.tapOffs[i] = offs
			}
		}
	}
	if rowWidth > 0 {
		st.rows = make([][]uint64, p.numRegs)
		backing := make([]uint64, p.numRegs*rowWidth)
		for r := range st.rows {
			st.rows[r] = backing[r*rowWidth : (r+1)*rowWidth]
		}
		for ci, cv := range p.consts {
			row := st.rows[ci]
			for x := range row {
				row[x] = cv
			}
		}
		st.argRows = make([][]uint64, 0, 8)
	}
	return st
}

// errDivZero and friends match the interpreter's failure modes.
func errDivZero() error { return fmt.Errorf("ir: division by zero") }
func errModZero() error { return fmt.Errorf("ir: modulo by zero") }
func errTable(idx int64, table []byte, elem int) error {
	return fmt.Errorf("ir: table index %d out of range (%d elements)", idx, len(table)/elem)
}
func errLoad(x, y, c int) error {
	return fmt.Errorf("ir: compiled load at (%d,%d,%d) outside the pixel backing", x, y, c)
}
func errNotLaneExecutable(op Op) error {
	return fmt.Errorf("ir: op %v reached the lane executor", op)
}

// run executes the program for one output coordinate (x, y, c) in scalar
// form — the reference path behind Run and EvalAt.  Whole-image rendering
// goes through runRow instead.
func (p *Program) run(bd *binding, st *progState, x, y, c int) (uint64, error) {
	regs := st.regs
	pos := 0
	if bd.pix != nil {
		pos = bd.base + y*bd.stride + x*bd.pixStep + c*bd.chanStep
	}
	for i := range p.insts {
		in := &p.insts[i]
		if in.dead {
			continue
		}
		switch in.op {
		case OpLoad:
			if bd.pix != nil {
				idx := pos + st.offs[i]
				if uint(idx) >= uint(len(bd.pix)) {
					return 0, errLoad(x+int(in.dx), y+int(in.dy), c+int(in.dc))
				}
				regs[in.dst] = uint64(bd.pix[idx])
			} else {
				regs[in.dst] = uint64(bd.src.Sample(x+int(in.dx), y+int(in.dy), c+int(in.dc)))
			}
		case opSumTaps:
			s := uint64(in.val)
			if bd.pix != nil {
				for _, off := range st.tapOffs[i] {
					idx := pos + off
					if uint(idx) >= uint(len(bd.pix)) {
						return 0, errLoad(x, y, c)
					}
					s += uint64(bd.pix[idx])
				}
			} else {
				for _, t := range in.taps {
					s += uint64(bd.src.Sample(x+int(t.dx), y+int(t.dy), c+int(t.dc)))
				}
			}
			for _, r := range in.args {
				s += regs[r]
			}
			regs[in.dst] = s & in.mask
		case opMulN:
			s := uint64(1)
			for _, r := range in.args {
				s *= regs[r]
			}
			regs[in.dst] = s & in.mask
		case opAndN:
			s := ^uint64(0)
			for _, r := range in.args {
				s &= regs[r]
			}
			regs[in.dst] = s & in.mask
		case opOrN:
			s := uint64(0)
			for _, r := range in.args {
				s |= regs[r]
			}
			regs[in.dst] = s & in.mask
		case opXorN:
			s := uint64(0)
			for _, r := range in.args {
				s ^= regs[r]
			}
			regs[in.dst] = s & in.mask
		case opMinN:
			s := sx(regs[in.args[0]], in.sh)
			for _, r := range in.args[1:] {
				if v := sx(regs[r], in.sh); v < s {
					s = v
				}
			}
			regs[in.dst] = uint64(s) & in.mask
		case opMaxN:
			s := sx(regs[in.args[0]], in.sh)
			for _, r := range in.args[1:] {
				if v := sx(regs[r], in.sh); v > s {
					s = v
				}
			}
			regs[in.dst] = uint64(s) & in.mask
		case OpSub:
			regs[in.dst] = (regs[in.a] - regs[in.b]) & in.mask
		case OpMulHi:
			regs[in.dst] = ((regs[in.a] & 0xffffffff) * (regs[in.b] & 0xffffffff) >> 32) & in.mask
		case OpDiv:
			d := regs[in.b] & in.mask
			if d == 0 {
				return 0, errDivZero()
			}
			regs[in.dst] = (regs[in.a] & in.mask) / d
		case OpMod:
			d := regs[in.b] & in.mask
			if d == 0 {
				return 0, errModZero()
			}
			regs[in.dst] = (regs[in.a] & in.mask) % d
		case opDivShift:
			regs[in.dst] = (regs[in.a] & in.mask) >> uint(in.val)
		case opDivMagic:
			regs[in.dst] = mulHi64(regs[in.a]&in.mask, in.magic)
		case opModShift:
			regs[in.dst] = regs[in.a] & in.mask & (in.dcon - 1)
		case opModMagic:
			a := regs[in.a] & in.mask
			regs[in.dst] = a - mulHi64(a, in.magic)*in.dcon
		case OpNot:
			regs[in.dst] = ^regs[in.a] & in.mask
		case OpNeg:
			regs[in.dst] = -regs[in.a] & in.mask
		case OpShl:
			regs[in.dst] = regs[in.a] << (regs[in.b] & 31) & in.mask
		case OpShr:
			regs[in.dst] = (regs[in.a] & in.mask) >> (regs[in.b] & 31)
		case OpSar:
			regs[in.dst] = uint64(sx(regs[in.a], in.sh)>>(regs[in.b]&31)) & in.mask
		case OpZExt:
			regs[in.dst] = regs[in.a] & in.mask // mask is the srcWidth mask
		case OpSExt:
			regs[in.dst] = uint64(sx(regs[in.a], in.sh)) & in.mask
		case OpExtract:
			regs[in.dst] = regs[in.a] >> (8 * uint(in.val)) & in.mask
		case OpSelect:
			if regs[in.a] != 0 {
				regs[in.dst] = regs[in.b]
			} else {
				regs[in.dst] = regs[in.c]
			}
		case OpCmpEq:
			regs[in.dst] = b2u(regs[in.a]&in.mask == regs[in.b]&in.mask)
		case OpCmpNe:
			regs[in.dst] = b2u(regs[in.a]&in.mask != regs[in.b]&in.mask)
		case OpCmpLtS:
			regs[in.dst] = b2u(sx(regs[in.a], in.sh) < sx(regs[in.b], in.sh))
		case OpCmpLeS:
			regs[in.dst] = b2u(sx(regs[in.a], in.sh) <= sx(regs[in.b], in.sh))
		case OpCmpLtU:
			regs[in.dst] = b2u(regs[in.a]&in.mask < regs[in.b]&in.mask)
		case OpCmpLeU:
			regs[in.dst] = b2u(regs[in.a]&in.mask <= regs[in.b]&in.mask)
		case OpTable:
			idx := int64(regs[in.a])
			v, err := tableAt(in.table, in.elem, idx)
			if err != nil {
				return 0, err
			}
			regs[in.dst] = v
		case OpTableIn:
			idx := int64(regs[in.a])
			v, err := tableAt(bd.tbl, in.elem, idx)
			if err != nil {
				return 0, err
			}
			regs[in.dst] = v
		case OpIntToFP:
			regs[in.dst] = math.Float64bits(float64(sx(regs[in.a], in.sh)))
		case OpFPToInt:
			regs[in.dst] = uint64(int64(math.RoundToEven(math.Float64frombits(regs[in.a])))) & in.mask
		case OpFAdd:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) + math.Float64frombits(regs[in.b]))
		case OpFSub:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) - math.Float64frombits(regs[in.b]))
		case OpFMul:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) * math.Float64frombits(regs[in.b]))
		case OpFDiv:
			regs[in.dst] = math.Float64bits(math.Float64frombits(regs[in.a]) / math.Float64frombits(regs[in.b]))
		case OpCall:
			regs[in.dst] = math.Float64bits(in.fn(math.Float64frombits(regs[in.a])))
		default:
			return 0, fmt.Errorf("ir: compiled program contains unexecutable op %v", in.op)
		}
	}
	return regs[p.root], nil
}

// b2u maps a comparison outcome to the 0/1 register value.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// mulHi64 returns the high 64 bits of the full 128-bit product.
func mulHi64(a, b uint64) uint64 {
	hi, _ := bits.Mul64(a, b)
	return hi
}

// tableAt reads one little-endian element, mirroring the interpreter.
func tableAt(table []byte, elem int, idx int64) (uint64, error) {
	off := idx * int64(elem)
	if off < 0 || off+int64(elem) > int64(len(table)) {
		return 0, errTable(idx, table, elem)
	}
	var r uint64
	for i := 0; i < elem; i++ {
		r |= uint64(table[off+int64(i)]) << (8 * i)
	}
	return r, nil
}

// Run evaluates the program once for output coordinate (x, y, c), binding
// src on the fly — the compiled counterpart of Expr.Eval, convenient for
// tests and one-off evaluation.  Drivers rendering whole images should use
// an Executor, which reuses the register file and tap offsets.
func (p *Program) Run(src Source, x, y, c int) (uint64, error) {
	bd := bindSource(src)
	return p.run(&bd, p.newState(&bd, 0), x, y, c)
}

// runRow executes the program vectorized over one output row: every
// instruction processes samples x in [0, width) of channel c at input row
// y before the next instruction dispatches, so the interpretive dispatch
// cost is paid once per instruction per row rather than once per node per
// sample.  xbase is the input-x of output sample 0 (the kernel origin).
//
// Error semantics reproduce per-sample evaluation exactly: when an
// instruction faults at some x the row narrows to [0, x) for the remaining
// instructions, so the reported fault is the one an x-ascending per-sample
// loop would have hit first.  Returns the failing x (-1 if none).
func (p *Program) runRow(bd *binding, st *progState, xbase, y, c, width int) (int, error) {
	n := width
	errX := -1
	var firstErr error
	fail := func(x int, err error) {
		errX, firstErr = x, err
		n = x
	}
	pos0 := 0
	if bd.pix != nil {
		pos0 = bd.base + y*bd.stride + xbase*bd.pixStep + c*bd.chanStep
	}
	xs := bd.xstep
	if xs == 0 {
		xs = 1
	}
	// Consecutive output samples read xstep pixels apart; tap offsets stay
	// unscaled (they are deltas around each mapped position).
	ps := bd.pixStep * xs
	rows := st.rows
	for i := range p.insts {
		if n == 0 {
			break
		}
		in := &p.insts[i]
		if in.dead {
			continue
		}
		d := rows[in.dst][:n]
		switch in.op {
		case OpLoad:
			if bd.pix != nil {
				off := pos0 + st.offs[i]
				lo, hi := off, off+(n-1)*ps
				if lo >= 0 && hi < len(bd.pix) {
					pix := bd.pix
					for x := range d {
						d[x] = uint64(pix[off+x*ps])
					}
				} else {
					for x := range d {
						idx := off + x*ps
						if uint(idx) >= uint(len(bd.pix)) {
							fail(x, errLoad(xbase+x*xs+int(in.dx), y+int(in.dy), c+int(in.dc)))
							break
						}
						d[x] = uint64(bd.pix[idx])
					}
				}
			} else {
				src := bd.src
				for x := range d {
					d[x] = uint64(src.Sample(xbase+x*xs+int(in.dx), y+int(in.dy), c+int(in.dc)))
				}
			}
		case opSumTaps:
			bias := uint64(in.val)
			mask := in.mask
			if bd.pix != nil {
				pix := bd.pix
				safe := true
				for _, off := range st.tapOffs[i] {
					lo, hi := pos0+off, pos0+off+(n-1)*ps
					if lo < 0 || hi >= len(pix) {
						safe = false
						break
					}
				}
				if safe {
					for x := range d {
						s := bias
						base := pos0 + x*ps
						for _, off := range st.tapOffs[i] {
							s += uint64(pix[base+off])
						}
						d[x] = s
					}
				} else {
					for x := range d {
						s := bias
						base := pos0 + x*ps
						bad := false
						for _, off := range st.tapOffs[i] {
							idx := base + off
							if uint(idx) >= uint(len(pix)) {
								fail(x, errLoad(xbase+x*xs, y, c))
								bad = true
								break
							}
							s += uint64(pix[idx])
						}
						if bad {
							break
						}
						d[x] = s
					}
				}
			} else {
				src := bd.src
				for x := range d {
					s := bias
					for _, t := range in.taps {
						s += uint64(src.Sample(xbase+x*xs+int(t.dx), y+int(t.dy), c+int(t.dc)))
					}
					d[x] = s
				}
			}
			d = rows[in.dst][:n] // n may have shrunk
			for _, r := range in.args {
				a := rows[r][:n]
				for x := range d {
					d[x] += a[x]
				}
			}
			for x := range d {
				d[x] &= mask
			}
		case opMulN:
			st.gatherArgs(in, n)
			as := st.argRows
			a0 := as[0]
			for x := range d {
				d[x] = a0[x]
			}
			for _, a := range as[1:] {
				for x := range d {
					d[x] *= a[x]
				}
			}
			for x := range d {
				d[x] &= in.mask
			}
		case opAndN:
			st.gatherArgs(in, n)
			as := st.argRows
			a0 := as[0]
			for x := range d {
				d[x] = a0[x]
			}
			for _, a := range as[1:] {
				for x := range d {
					d[x] &= a[x]
				}
			}
			for x := range d {
				d[x] &= in.mask
			}
		case opOrN:
			st.gatherArgs(in, n)
			as := st.argRows
			a0 := as[0]
			for x := range d {
				d[x] = a0[x]
			}
			for _, a := range as[1:] {
				for x := range d {
					d[x] |= a[x]
				}
			}
			for x := range d {
				d[x] &= in.mask
			}
		case opXorN:
			st.gatherArgs(in, n)
			as := st.argRows
			a0 := as[0]
			for x := range d {
				d[x] = a0[x]
			}
			for _, a := range as[1:] {
				for x := range d {
					d[x] ^= a[x]
				}
			}
			for x := range d {
				d[x] &= in.mask
			}
		case opMinN:
			st.gatherArgs(in, n)
			as := st.argRows
			sh, mask := in.sh, in.mask
			a0 := as[0]
			for x := range d {
				d[x] = uint64(sx(a0[x], sh))
			}
			for _, a := range as[1:] {
				for x := range d {
					if v := sx(a[x], sh); v < int64(d[x]) {
						d[x] = uint64(v)
					}
				}
			}
			for x := range d {
				d[x] &= mask
			}
		case opMaxN:
			st.gatherArgs(in, n)
			as := st.argRows
			sh, mask := in.sh, in.mask
			a0 := as[0]
			for x := range d {
				d[x] = uint64(sx(a0[x], sh))
			}
			for _, a := range as[1:] {
				for x := range d {
					if v := sx(a[x], sh); v > int64(d[x]) {
						d[x] = uint64(v)
					}
				}
			}
			for x := range d {
				d[x] &= mask
			}
		case OpSub:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := in.mask
			for x := range d {
				d[x] = (a[x] - b[x]) & mask
			}
		case OpMulHi:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := in.mask
			for x := range d {
				d[x] = ((a[x] & 0xffffffff) * (b[x] & 0xffffffff) >> 32) & mask
			}
		case OpDiv:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := in.mask
			for x := range d {
				dv := b[x] & mask
				if dv == 0 {
					fail(x, errDivZero())
					break
				}
				d[x] = (a[x] & mask) / dv
			}
		case OpMod:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := in.mask
			for x := range d {
				dv := b[x] & mask
				if dv == 0 {
					fail(x, errModZero())
					break
				}
				d[x] = (a[x] & mask) % dv
			}
		case opDivShift:
			a := rows[in.a][:n]
			mask, s := in.mask, uint(in.val)
			for x := range d {
				d[x] = (a[x] & mask) >> s
			}
		case opDivMagic:
			a := rows[in.a][:n]
			mask, m := in.mask, in.magic
			for x := range d {
				d[x] = mulHi64(a[x]&mask, m)
			}
		case opModShift:
			a := rows[in.a][:n]
			mask, dm := in.mask, in.dcon-1
			for x := range d {
				d[x] = a[x] & mask & dm
			}
		case opModMagic:
			a := rows[in.a][:n]
			mask, m, dc := in.mask, in.magic, in.dcon
			for x := range d {
				v := a[x] & mask
				d[x] = v - mulHi64(v, m)*dc
			}
		case OpNot:
			a := rows[in.a][:n]
			mask := in.mask
			for x := range d {
				d[x] = ^a[x] & mask
			}
		case OpNeg:
			a := rows[in.a][:n]
			mask := in.mask
			for x := range d {
				d[x] = -a[x] & mask
			}
		case OpShl:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := in.mask
			for x := range d {
				d[x] = a[x] << (b[x] & 31) & mask
			}
		case OpShr:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := in.mask
			for x := range d {
				d[x] = (a[x] & mask) >> (b[x] & 31)
			}
		case OpSar:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask, sh := in.mask, in.sh
			for x := range d {
				d[x] = uint64(sx(a[x], sh)>>(b[x]&31)) & mask
			}
		case OpZExt:
			a := rows[in.a][:n]
			mask := in.mask // the srcWidth mask
			for x := range d {
				d[x] = a[x] & mask
			}
		case OpSExt:
			a := rows[in.a][:n]
			mask, sh := in.mask, in.sh
			for x := range d {
				d[x] = uint64(sx(a[x], sh)) & mask
			}
		case OpExtract:
			a := rows[in.a][:n]
			mask, s := in.mask, 8*uint(in.val)
			for x := range d {
				d[x] = a[x] >> s & mask
			}
		case OpSelect:
			cond, bv, cv := rows[in.a][:n], rows[in.b][:n], rows[in.c][:n]
			for x := range d {
				if cond[x] != 0 {
					d[x] = bv[x]
				} else {
					d[x] = cv[x]
				}
			}
		case OpCmpEq:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := in.mask
			for x := range d {
				d[x] = b2u(a[x]&mask == b[x]&mask)
			}
		case OpCmpNe:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := in.mask
			for x := range d {
				d[x] = b2u(a[x]&mask != b[x]&mask)
			}
		case OpCmpLtS:
			a, b := rows[in.a][:n], rows[in.b][:n]
			sh := in.sh
			for x := range d {
				d[x] = b2u(sx(a[x], sh) < sx(b[x], sh))
			}
		case OpCmpLeS:
			a, b := rows[in.a][:n], rows[in.b][:n]
			sh := in.sh
			for x := range d {
				d[x] = b2u(sx(a[x], sh) <= sx(b[x], sh))
			}
		case OpCmpLtU:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := in.mask
			for x := range d {
				d[x] = b2u(a[x]&mask < b[x]&mask)
			}
		case OpCmpLeU:
			a, b := rows[in.a][:n], rows[in.b][:n]
			mask := in.mask
			for x := range d {
				d[x] = b2u(a[x]&mask <= b[x]&mask)
			}
		case OpTable:
			a := rows[in.a][:n]
			for x := range d {
				v, err := tableAt(in.table, in.elem, int64(a[x]))
				if err != nil {
					fail(x, err)
					break
				}
				d[x] = v
			}
		case OpTableIn:
			a := rows[in.a][:n]
			for x := range d {
				v, err := tableAt(bd.tbl, in.elem, int64(a[x]))
				if err != nil {
					fail(x, err)
					break
				}
				d[x] = v
			}
		case OpIntToFP:
			a := rows[in.a][:n]
			sh := in.sh
			for x := range d {
				d[x] = math.Float64bits(float64(sx(a[x], sh)))
			}
		case OpFPToInt:
			a := rows[in.a][:n]
			mask := in.mask
			for x := range d {
				d[x] = uint64(int64(math.RoundToEven(math.Float64frombits(a[x])))) & mask
			}
		case OpFAdd:
			a, b := rows[in.a][:n], rows[in.b][:n]
			for x := range d {
				d[x] = math.Float64bits(math.Float64frombits(a[x]) + math.Float64frombits(b[x]))
			}
		case OpFSub:
			a, b := rows[in.a][:n], rows[in.b][:n]
			for x := range d {
				d[x] = math.Float64bits(math.Float64frombits(a[x]) - math.Float64frombits(b[x]))
			}
		case OpFMul:
			a, b := rows[in.a][:n], rows[in.b][:n]
			for x := range d {
				d[x] = math.Float64bits(math.Float64frombits(a[x]) * math.Float64frombits(b[x]))
			}
		case OpFDiv:
			a, b := rows[in.a][:n], rows[in.b][:n]
			for x := range d {
				d[x] = math.Float64bits(math.Float64frombits(a[x]) / math.Float64frombits(b[x]))
			}
		case OpCall:
			a := rows[in.a][:n]
			fn := in.fn
			for x := range d {
				d[x] = math.Float64bits(fn(math.Float64frombits(a[x])))
			}
		default:
			return 0, fmt.Errorf("ir: compiled program contains unexecutable op %v", in.op)
		}
	}
	return errX, firstErr
}

// gatherArgs collects the operand rows of an n-ary instruction, sliced to
// the active width, into the reusable scratch list.
func (st *progState) gatherArgs(in *pinst, n int) {
	as := st.argRows[:0]
	for _, r := range in.args {
		as = append(as, st.rows[r][:n])
	}
	st.argRows = as
}

// CompiledKernel is a lifted kernel with every channel tree lowered to a
// register program.  It is immutable after Compile and safe for concurrent
// use; per-evaluation state lives in Executors.
type CompiledKernel struct {
	Name                          string
	OutWidth, OutHeight, Channels int
	OriginX, OriginY              int
	// MapX and MapY are the kernel's affine output->input index maps
	// (identity for classic stencils); see Kernel.MapX.
	MapX, MapY AxisMap
	Progs      []*Program
}

// Mapped reports whether the kernel carries a non-identity index map.
func (ck *CompiledKernel) Mapped() bool { return !ck.MapX.Identity() || !ck.MapY.Identity() }

// usesTableIn reports whether any channel program performs stage-input
// table lookups (and therefore needs a table bound at evaluation time).
func (ck *CompiledKernel) usesTableIn() bool {
	for _, p := range ck.Progs {
		for i := range p.insts {
			if p.insts[i].op == OpTableIn {
				return true
			}
		}
	}
	return false
}

// Compile lowers every channel tree of the kernel.
func (k *Kernel) Compile() (*CompiledKernel, error) {
	if len(k.Trees) != k.Channels {
		return nil, fmt.Errorf("ir: kernel %s has %d trees for %d channels", k.Name, len(k.Trees), k.Channels)
	}
	ck := &CompiledKernel{
		Name:     k.Name,
		OutWidth: k.OutWidth, OutHeight: k.OutHeight, Channels: k.Channels,
		OriginX: k.OriginX, OriginY: k.OriginY,
		MapX: k.MapX, MapY: k.MapY,
	}
	for c, t := range k.Trees {
		p, err := CompileExpr(t)
		if err != nil {
			return nil, fmt.Errorf("ir: kernel %s channel %d: %w", k.Name, c, err)
		}
		ck.Progs = append(ck.Progs, p)
	}
	return ck, nil
}

// Executor evaluates a compiled kernel against one bound source.  It owns
// the register files and precomputed tap offsets, so evaluation performs
// no allocation.  An Executor is not safe for concurrent use; EvalParallel
// creates one per worker.
type Executor struct {
	k  *CompiledKernel
	bd binding
	// scalar holds the per-channel scalar state behind EvalAt; rows holds
	// the per-channel row executors (64-bit reference or lane-specialized,
	// as the width pass proved).
	scalar []*progState
	rows   []rowExec
}

// NewExecutor binds the kernel to a source.  Sources backed by
// image.Plane or image.Interleaved get fused flat-index addressing; other
// sources are sampled through the interface.
func (ck *CompiledKernel) NewExecutor(src Source) *Executor {
	return ck.newExecutor(src, ck.OutWidth, 0)
}

// newExecutor builds an executor whose row register files hold rowWidth
// samples — the full output width for serial evaluation, one tile width
// for the blocked parallel driver.  lane widens the register lane type
// beyond the proven minimum (0 keeps the width pass's choice).
func (ck *CompiledKernel) newExecutor(src Source, rowWidth, lane int) *Executor {
	ex := &Executor{k: ck, bd: bindSource(src)}
	if num, den, _ := ck.MapX.Norm(); den == 1 {
		// An integral x-map keeps row execution vectorized at a constant
		// stride; fractional maps take the scalar tile path instead.
		ex.bd.xstep = num
	}
	for _, p := range ck.Progs {
		ex.scalar = append(ex.scalar, p.newState(&ex.bd, 0))
		ex.rows = append(ex.rows, newRowExec(p, &ex.bd, rowWidth, lane))
	}
	return ex
}

// shiftBase slides the executor's flat binding by delta bytes.  The fused
// pipeline driver uses this to keep logical row numbers stable while the
// ring buffer the executor reads from recycles physical rows: tap offsets
// are deltas and never depend on the base, so only the base moves.
func (ex *Executor) shiftBase(delta int) { ex.bd.base += delta }

// EvalAt evaluates channel c of output pixel (x, y) to one sample byte.
func (ex *Executor) EvalAt(x, y, c int) (uint8, error) {
	k := ex.k
	v, err := k.Progs[c].run(&ex.bd, ex.scalar[c], k.MapX.Apply(x)+k.OriginX, k.MapY.Apply(y)+k.OriginY, c)
	return uint8(v), err
}

// tileError is one tile's first failure in x-then-c per-sample scan order;
// a nil err means the tile rendered completely.
type tileError struct {
	x, y, c int
	err     error
}

// before orders tile errors by the serial per-sample scan: row-major, then
// x, then channel.
func (e tileError) before(o tileError) bool {
	if e.y != o.y {
		return e.y < o.y
	}
	if e.x != o.x {
		return e.x < o.x
	}
	return e.c < o.c
}

func (ck *CompiledKernel) wrapTileError(e tileError) error {
	return fmt.Errorf("ir: kernel %s at (%d,%d,%d): %w", ck.Name, e.x, e.y, e.c, e.err)
}

// evalTile renders output samples [x0,x1) x [y0,y1) into out (the full
// row-major output buffer), row-vectorized per channel over the tile
// width.  The returned tileError is the first failure the serial
// per-sample scan of the tile would hit, so callers can merge errors
// across tiles deterministically.  The executor's row width must be at
// least x1-x0.
func (ex *Executor) evalTile(x0, x1, y0, y1 int, out []byte) tileError {
	k := ex.k
	if _, den, _ := k.MapX.Norm(); den != 1 {
		// Fractional x-maps (upsampling) repeat input pixels at a
		// non-uniform stride, so the row executors' constant advance does
		// not apply; evaluate the tile per sample instead.
		return ex.evalTileScalar(x0, x1, y0, y1, out)
	}
	w, ch := k.OutWidth, k.Channels
	n := x1 - x0
	for y := y0; y < y1; y++ {
		rowBase := y*w*ch + x0*ch
		errX, errC := -1, -1
		var firstErr error
		for c := 0; c < ch; c++ {
			x, err := ex.rows[c].runRow(k.MapX.Apply(x0)+k.OriginX, k.MapY.Apply(y)+k.OriginY, c, n)
			if err != nil && (errX < 0 || x < errX) {
				errX, errC, firstErr = x, c, err
			}
			if err == nil {
				ex.rows[c].storeRow(out[rowBase+c:], ch, n)
			}
		}
		if firstErr != nil {
			return tileError{x: x0 + errX, y: y, c: errC, err: firstErr}
		}
	}
	return tileError{}
}

// evalTileScalar renders the tile one sample at a time through the scalar
// programs, applying the index maps per coordinate.  The y-then-x-then-c
// scan makes the first error it hits exactly the serial per-sample one.
func (ex *Executor) evalTileScalar(x0, x1, y0, y1 int, out []byte) tileError {
	k := ex.k
	w, ch := k.OutWidth, k.Channels
	for y := y0; y < y1; y++ {
		yi := k.MapY.Apply(y) + k.OriginY
		for x := x0; x < x1; x++ {
			xi := k.MapX.Apply(x) + k.OriginX
			base := (y*w + x) * ch
			for c := 0; c < ch; c++ {
				v, err := k.Progs[c].run(&ex.bd, ex.scalar[c], xi, yi, c)
				if err != nil {
					return tileError{x: x, y: y, c: c, err: err}
				}
				out[base+c] = uint8(v)
			}
		}
	}
	return tileError{}
}

// Eval renders the whole output region in row-major sample order, exactly
// like Kernel.Eval but through the compiled programs.
func (ex *Executor) Eval() ([]byte, error) {
	out := make([]byte, ex.k.OutWidth*ex.k.OutHeight*ex.k.Channels)
	if te := ex.evalTile(0, ex.k.OutWidth, 0, ex.k.OutHeight, out); te.err != nil {
		return nil, ex.k.wrapTileError(te)
	}
	return out, nil
}

// Eval is the one-shot convenience: bind src and render the whole output.
func (ck *CompiledKernel) Eval(src Source) ([]byte, error) {
	return ck.NewExecutor(src).Eval()
}

// Cache budgets the tile heuristic targets: the row register file of a
// tile should fit comfortably in L1, the tile's input and output traffic
// in L2.  These are deliberately conservative round numbers rather than
// probed hardware values; getting within 2x of optimal tiling captures
// almost all of the win.
const (
	tileL1Budget = 32 << 10
	tileL2Budget = 192 << 10
)

// tileSize picks the 2-D tile extents for the blocked parallel driver:
// the width is shrunk until the widest channel program's row register file
// fits the L1 budget (narrow lanes buy proportionally wider tiles), the
// height until a tile's sample traffic fits the L2 budget.
func (ck *CompiledKernel) tileSize() (tw, th int) {
	return ck.tileSizeSched(schedule.Stage{})
}

// tileSizeSched is tileSize with schedule overrides: a positive TileW or
// TileH replaces the corresponding heuristic extent, clamped to the
// output.
func (ck *CompiledKernel) tileSizeSched(sc schedule.Stage) (tw, th int) {
	regBytes := 1
	for _, p := range ck.Progs {
		regBytes = max(regBytes, p.numRegs*p.width.laneBits/8)
	}
	tw = ck.OutWidth
	if tw*regBytes > tileL1Budget {
		tw = max(tileL1Budget/regBytes, 64)
		tw = min(tw, ck.OutWidth)
	}
	th = tileL2Budget / max(tw*ck.Channels, 1)
	th = min(max(th, 4), ck.OutHeight)
	if sc.TileW > 0 {
		tw = min(sc.TileW, ck.OutWidth)
	}
	if sc.TileH > 0 {
		th = min(sc.TileH, ck.OutHeight)
	}
	return tw, th
}

// EvalParallel renders the output with a pool of workers over
// cache-blocked 2-D tiles, each worker evaluating whole tiles with its own
// Executor.  workers <= 0 uses GOMAXPROCS.  The output — and any reported
// error — is identical to Eval's regardless of worker count, scheduling or
// tile geometry; src must tolerate concurrent Sample calls (all package
// sources and the lift dump source are read-only).
func (ck *CompiledKernel) EvalParallel(src Source, workers int) ([]byte, error) {
	return ck.EvalParallelSched(src, schedule.Stage{}, workers)
}

// EvalParallelSched is EvalParallel under a per-stage schedule: tile
// extents and the register lane width come from sc (zero fields keep the
// heuristics).  Output and error reporting are bit-identical to Eval for
// every valid schedule; only the execution strategy changes.
func (ck *CompiledKernel) EvalParallelSched(src Source, sc schedule.Stage, workers int) ([]byte, error) {
	workers = ck.workersSched(sc, workers)
	out := make([]byte, ck.OutWidth*ck.OutHeight*ck.Channels)
	tw, th := ck.tileSizeSched(sc)
	tilesX := (ck.OutWidth + tw - 1) / tw
	tilesY := (ck.OutHeight + th - 1) / th

	// Every tile renders (no early abort): the serial scan's first error
	// may live in a higher-index tile than another tile's failure, so the
	// driver collects every tile's first error and picks the scan-order
	// minimum afterwards.
	errs := make([]tileError, tilesX*tilesY)
	_ = par.For(tilesX*tilesY, 1, workers, func(int) func(int, int) error {
		ex := ck.newExecutor(src, tw, sc.Lane)
		return func(t0, t1 int) error {
			for t := t0; t < t1; t++ {
				ty, tx := t/tilesX, t%tilesX
				x0, y0 := tx*tw, ty*th
				errs[t] = ex.evalTile(x0, min(x0+tw, ck.OutWidth), y0, min(y0+th, ck.OutHeight), out)
			}
			return nil
		}
	})
	best := -1
	for i := range errs {
		if errs[i].err != nil && (best < 0 || errs[i].before(errs[best])) {
			best = i
		}
	}
	if best >= 0 {
		return nil, ck.wrapTileError(errs[best])
	}
	return out, nil
}

// Workers returns the effective worker count EvalParallel will use for a
// requested value, exposed so drivers can report it.  The count is capped
// by the number of tiles the output blocks into — a 3-row image never
// spins up 16 goroutines; it gets at most as many workers as it has
// independent tiles.
func (ck *CompiledKernel) Workers(requested int) int {
	return ck.workersSched(schedule.Stage{}, requested)
}

// workersSched is Workers under a stage schedule's tile extents.
func (ck *CompiledKernel) workersSched(sc schedule.Stage, requested int) int {
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	tw, th := ck.tileSizeSched(sc)
	tiles := ((ck.OutWidth + tw - 1) / tw) * ((ck.OutHeight + th - 1) / th)
	if requested > tiles {
		requested = tiles
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}
