package trace

import (
	"bytes"
	"testing"
)

// FuzzMemDump builds a dump from fuzzer-chosen pages and cross-checks the
// three read paths against each other: Byte and Bytes must agree, Bytes
// must fail exactly when some byte falls off the dumped pages, and every
// address Find returns must actually match the pattern byte for byte.
func FuzzMemDump(f *testing.F) {
	f.Fuzz(func(t *testing.T, pages []byte, pattern []byte, probe uint64) {
		pageSize := uint64(64)
		d := NewMemDump(pageSize)
		// Each 9-byte group plants one page: 8 address bytes (aligned down)
		// and one fill byte, with a little per-byte variation so patterns
		// can straddle page contents.
		for i := 0; i+9 <= len(pages) && len(d.Pages) < 64; i += 9 {
			var addr uint64
			for j := 0; j < 8; j++ {
				addr = addr<<8 | uint64(pages[i+j])
			}
			addr &^= pageSize - 1
			content := make([]byte, pageSize)
			for j := range content {
				content[j] = pages[i+8] + byte(j)
			}
			d.Pages[addr] = content
		}

		if d.Size() != len(d.Pages)*int(pageSize) {
			t.Fatalf("Size() = %d with %d pages of %d bytes", d.Size(), len(d.Pages), pageSize)
		}

		// Byte vs Bytes consistency around an arbitrary probe address.
		n := int(probe%(2*pageSize)) + 1
		if got, ok := d.Bytes(probe, n); ok {
			for i := 0; i < n; i++ {
				b, bok := d.Byte(probe + uint64(i))
				if !bok || b != got[i] {
					t.Fatalf("Bytes(%#x, %d)[%d] = %#x but Byte disagrees (ok=%v b=%#x)", probe, n, i, got[i], bok, b)
				}
			}
		} else {
			miss := false
			for i := 0; i < n; i++ {
				if _, bok := d.Byte(probe + uint64(i)); !bok {
					miss = true
					break
				}
			}
			if !miss {
				t.Fatalf("Bytes(%#x, %d) failed but every Byte succeeds", probe, n)
			}
		}

		// Every Find hit must really match.
		if len(pattern) > 0 && len(pattern) <= 16 {
			for _, addr := range d.Find(pattern) {
				got, ok := d.Bytes(addr, len(pattern))
				if !ok || !bytes.Equal(got, pattern) {
					t.Fatalf("Find(%x) returned %#x which reads back %x (ok=%v)", pattern, addr, got, ok)
				}
			}
		}

		// And a pattern read out of the dump must be found at that address.
		if sample, ok := d.Bytes(probe, 4); ok {
			found := false
			for _, addr := range d.Find(sample) {
				if addr == probe {
					found = true
				}
			}
			if !found {
				t.Fatalf("Find(%x) misses %#x, where those bytes were read from", sample, probe)
			}
		}
	})
}
