// Package trace defines the dynamically captured artifacts the Helium
// analyses consume: basic-block coverage records, memory access traces,
// full dynamic instruction traces and page-granularity memory dumps.
//
// These mirror the data the original system collects with DynamoRIO clients
// (paper sections 3.1 and 4.1).  All analyses downstream of the VM operate
// purely on these records; nothing else about the emulator leaks out.
package trace

import (
	"fmt"
	"sort"

	"helium/internal/isa"
)

// Space identifies the kind of location a Ref denotes.  Helium maps
// registers into a unified address space so that partial register reads and
// writes can be handled with the same byte-granularity overlap logic as
// memory (paper section 4.5); Addr below is always a unified address.
type Space uint8

// Location spaces.
const (
	SpaceNone  Space = iota
	SpaceMem         // an absolute memory address
	SpaceReg         // a register byte range mapped into the unified space
	SpaceFlags       // the flags register
	SpaceImm         // an immediate constant (no location)
)

// Unified address space layout.  Memory occupies the low 2^32 addresses;
// registers and flags are mapped above it.
const (
	// RegSpaceBase is the unified address of the first register byte.
	RegSpaceBase uint64 = 1 << 32
	// FlagsAddr is the unified address of the flags register.
	FlagsAddr uint64 = RegSpaceBase + uint64(isa.NumRegs)*8
)

// RegAddr returns the unified address of the first byte of register r,
// accounting for sub-register views (AH maps one byte above EAX).
func RegAddr(r isa.Reg) uint64 {
	return RegSpaceBase + uint64(r.Full())*8 + uint64(r.Offset())
}

// IsRegAddr reports whether a unified address refers to register space.
func IsRegAddr(addr uint64) bool { return addr >= RegSpaceBase }

// Ref is a single resolved operand reference in a dynamic instruction: a
// byte range in the unified address space together with the value observed
// there, or an immediate.
type Ref struct {
	Space Space
	// Addr is the unified address of the first byte (unused for SpaceImm).
	Addr uint64
	// Width is the width of the reference in bytes.
	Width uint8
	// Val is the integer value read or written (zero-extended), or the
	// immediate value for SpaceImm.
	Val uint64
	// FVal is the floating point value for float references.
	FVal float64
	// Float marks references to floating point data.
	Float bool
}

// Overlaps reports whether the byte ranges of r and other intersect.
func (r Ref) Overlaps(other Ref) bool {
	if r.Space == SpaceImm || other.Space == SpaceImm {
		return false
	}
	return r.Addr < other.Addr+uint64(other.Width) && other.Addr < r.Addr+uint64(r.Width)
}

// Contains reports whether r fully contains other's byte range.
func (r Ref) Contains(other Ref) bool {
	if r.Space == SpaceImm || other.Space == SpaceImm {
		return false
	}
	return r.Addr <= other.Addr && other.Addr+uint64(other.Width) <= r.Addr+uint64(r.Width)
}

// String renders the reference for debugging.
func (r Ref) String() string {
	switch r.Space {
	case SpaceImm:
		return fmt.Sprintf("imm:%d", int64(r.Val))
	case SpaceFlags:
		return "flags"
	case SpaceReg:
		return fmt.Sprintf("reg@%#x/%d=%d", r.Addr, r.Width, r.Val)
	case SpaceMem:
		return fmt.Sprintf("mem@%#x/%d=%d", r.Addr, r.Width, r.Val)
	}
	return "none"
}

// MemAccess is one entry of the lightweight memory trace collected during
// code localization (paper section 3.1): the static instruction address,
// the absolute address touched, the access width and the direction.
type MemAccess struct {
	InstAddr uint32
	Addr     uint64
	Width    uint8
	Write    bool
}

// ExprOp is the semantic operation of a single effect.  The backward
// analysis turns effects directly into expression tree nodes, so ExprOp is
// deliberately at the level of the lifted expression language rather than
// the ISA: instruction selection details (two-address forms, lea tricks,
// partial registers) are already erased by the tracer.
type ExprOp uint8

// Effect operations.
const (
	OpNone ExprOp = iota
	OpIdentity
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpMulHi // high half of a widening unsigned multiply (the EDX result of MUL)
	OpAnd
	OpOr
	OpXor
	OpNot
	OpNeg
	OpShl
	OpShr // logical shift right
	OpSar // arithmetic shift right
	OpZExt
	OpSExt
	OpLea  // srcs = [base, index, scale, disp]; expands to base+index*scale+disp
	OpCmp  // flag producer: srcs = [a, b]
	OpTest // flag producer: srcs = [a, b]
	OpBranch
	OpCall    // external call; Sym on the DynInst names the function
	OpIntToFP // integer to floating point conversion
	OpFPToInt // floating point to integer conversion (round)
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpSelectSet // setcc: srcs = [flags]
)

var exprOpNames = map[ExprOp]string{
	OpNone: "none", OpIdentity: "id", OpAdd: "+", OpSub: "-", OpMul: "*",
	OpDiv: "/", OpMod: "%", OpMulHi: "*hi", OpAnd: "&", OpOr: "|", OpXor: "^", OpNot: "~",
	OpNeg: "neg", OpShl: "<<", OpShr: ">>", OpSar: ">>a", OpZExt: "zext",
	OpSExt: "sext", OpLea: "lea", OpCmp: "cmp", OpTest: "test",
	OpBranch: "branch", OpCall: "call", OpIntToFP: "i2f", OpFPToInt: "f2i",
	OpFAdd: "+f", OpFSub: "-f", OpFMul: "*f", OpFDiv: "/f", OpSelectSet: "setcc",
}

// String returns a compact spelling of the operation.
func (op ExprOp) String() string {
	if s, ok := exprOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("exprop(%d)", uint8(op))
}

// Effect is one architectural assignment performed by a dynamic
// instruction: Dst receives Op applied to Srcs.  An instruction may have
// several effects (a result register, the flags register, a stack pointer
// update); keeping them separate lets the analyses reason about each
// assignment independently of x86 instruction packaging.
type Effect struct {
	Dst  Ref
	Op   ExprOp
	Srcs []Ref
}

// DynInst is one entry of the detailed dynamic instruction trace collected
// during expression extraction (paper section 4.1).
type DynInst struct {
	// Seq is the position of the record in the trace.
	Seq int
	// Addr is the static instruction address.
	Addr uint32
	// Op is the ISA operation executed.
	Op isa.Opcode
	// Width is the operation width in bytes.
	Width uint8
	// Effects are the architectural assignments the instruction performed.
	Effects []Effect
	// AddrRefs are the register references used to form memory operand
	// addresses (base and index registers with their observed values).  The
	// forward analysis uses them to flag indirect buffer accesses and the
	// backward analysis uses them to expand address expressions for table
	// lookups (paper sections 4.6 and 4.7).
	AddrRefs []Ref
	// MemAddr is the absolute address of the memory operand, if any.
	MemAddr uint64
	// HasMem reports whether the instruction had a memory operand.
	HasMem bool
	// Taken records the outcome of conditional jumps.
	Taken bool
	// Sym is the imported symbol for external calls.
	Sym string
}

// Sink consumes dynamic instruction records as the tracer produces them.
// Streaming consumers (on-line analyses, filters, serializers) implement
// Sink directly; batch consumers collect into an InstTrace, which is itself
// a Sink.  Emit must not retain di or its slices past the call unless it
// copies them.
type Sink interface {
	Emit(di DynInst) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(di DynInst) error

// Emit calls f(di).
func (f SinkFunc) Emit(di DynInst) error { return f(di) }

// InstTrace is a captured instruction trace together with the write index
// needed by the backward analysis.
type InstTrace struct {
	Insts []DynInst

	// writesAt maps a unified byte address to the ordered list of trace
	// sequence numbers that wrote that byte.
	writesAt map[uint64][]int
}

// Emit appends a record, making InstTrace the batch-collecting Sink.  The
// write index is invalidated; call BuildWriteIndex again after the trace is
// complete.
func (t *InstTrace) Emit(di DynInst) error {
	t.Insts = append(t.Insts, di)
	t.writesAt = nil
	return nil
}

// BuildWriteIndex constructs the per-byte write index used by
// LastWriteBefore.  It must be called once after the trace is complete.
func (t *InstTrace) BuildWriteIndex() {
	t.writesAt = make(map[uint64][]int)
	for _, di := range t.Insts {
		for _, ef := range di.Effects {
			d := ef.Dst
			if d.Space == SpaceImm || d.Space == SpaceNone {
				continue
			}
			for b := uint64(0); b < uint64(d.Width); b++ {
				a := d.Addr + b
				t.writesAt[a] = append(t.writesAt[a], di.Seq)
			}
		}
	}
}

// EnsureWriteIndex builds the write index only if it has not been built
// since the last Emit.  Call it before sharing the trace across
// goroutines: the index itself is read-only once built, but the lazy
// first build is not.
func (t *InstTrace) EnsureWriteIndex() {
	if t.writesAt == nil {
		t.BuildWriteIndex()
	}
}

// LastWriteBefore returns the sequence number of the most recent instruction
// before seq that wrote any byte in [addr, addr+width), and whether one
// exists.  When several bytes were last written by different instructions
// the latest of them is returned; the backward analysis then discovers the
// partial overlap while matching widths.
func (t *InstTrace) LastWriteBefore(seq int, addr uint64, width uint8) (int, bool) {
	if t.writesAt == nil {
		t.BuildWriteIndex()
	}
	best := -1
	for b := uint64(0); b < uint64(width); b++ {
		ws := t.writesAt[addr+b]
		// Binary search for the last write strictly before seq.
		i := sort.SearchInts(ws, seq)
		if i > 0 && ws[i-1] > best {
			best = ws[i-1]
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// WritesTo returns all trace sequence numbers that wrote the exact byte
// address, in order.
func (t *InstTrace) WritesTo(addr uint64) []int {
	if t.writesAt == nil {
		t.BuildWriteIndex()
	}
	return t.writesAt[addr]
}

// MemDump is a page-granularity dump of the memory touched by candidate
// instructions.  Read pages are captured eagerly, written pages at filter
// function exit (paper section 4.1).
type MemDump struct {
	// Pages maps page-aligned addresses to page contents.
	Pages map[uint64][]byte
	// PageSize is the dump granularity in bytes.
	PageSize uint64
}

// NewMemDump returns an empty dump with the given page size.
func NewMemDump(pageSize uint64) *MemDump {
	return &MemDump{Pages: make(map[uint64][]byte), PageSize: pageSize}
}

// Size returns the total number of bytes captured.
func (d *MemDump) Size() int {
	return len(d.Pages) * int(d.PageSize)
}

// Byte returns the byte at addr and whether the page containing it was
// dumped.
func (d *MemDump) Byte(addr uint64) (byte, bool) {
	page := addr &^ (d.PageSize - 1)
	p, ok := d.Pages[page]
	if !ok {
		return 0, false
	}
	return p[addr-page], true
}

// Bytes copies n bytes starting at addr out of the dump.  The second result
// is false if any byte falls outside the dumped pages.
func (d *MemDump) Bytes(addr uint64, n int) ([]byte, bool) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		b, ok := d.Byte(addr + uint64(i))
		if !ok {
			return nil, false
		}
		out[i] = b
	}
	return out, true
}

// Find searches the dump for the byte pattern and returns the addresses at
// which it occurs, in increasing order.  Helium uses this to locate known
// input and output data when inferring buffer dimensions (paper section
// 4.3).
func (d *MemDump) Find(pattern []byte) []uint64 {
	if len(pattern) == 0 {
		return nil
	}
	pages := make([]uint64, 0, len(d.Pages))
	for p := range d.Pages {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var hits []uint64
	for _, page := range pages {
		data := d.Pages[page]
		for off := 0; off < len(data); off++ {
			addr := page + uint64(off)
			ok := true
			for i := 0; i < len(pattern); i++ {
				b, have := d.Byte(addr + uint64(i))
				if !have || b != pattern[i] {
					ok = false
					break
				}
			}
			if ok {
				hits = append(hits, addr)
			}
		}
	}
	return hits
}
