package trace

import (
	"testing"

	"helium/internal/isa"
)

func TestRegAddrSubRegisters(t *testing.T) {
	// Full registers occupy 8-byte slots in the unified space.
	if RegAddr(isa.EAX)+8 > RegAddr(isa.ECX) {
		t.Error("full registers overlap in the unified space")
	}
	// 16-bit and low-byte views alias the low bytes of the full register.
	if RegAddr(isa.AX) != RegAddr(isa.EAX) {
		t.Error("AX does not alias the low bytes of EAX")
	}
	if RegAddr(isa.AL) != RegAddr(isa.EAX) {
		t.Error("AL does not alias the low byte of EAX")
	}
	// High-byte views sit one byte above.
	if RegAddr(isa.AH) != RegAddr(isa.EAX)+1 {
		t.Error("AH does not sit one byte above EAX")
	}
	if RegAddr(isa.BH) != RegAddr(isa.EBX)+1 {
		t.Error("BH does not sit one byte above EBX")
	}
	// Register space is disjoint from memory space.
	if IsRegAddr(0xffffffff) {
		t.Error("top of memory space misclassified as register space")
	}
	if !IsRegAddr(RegAddr(isa.EDI)) {
		t.Error("register address not classified as register space")
	}
	if FlagsAddr < RegAddr(isa.F7)+8 {
		t.Error("flags overlap the floating point registers")
	}
}

func TestRefOverlapLogic(t *testing.T) {
	eax := Ref{Space: SpaceReg, Addr: RegAddr(isa.EAX), Width: 4}
	al := Ref{Space: SpaceReg, Addr: RegAddr(isa.AL), Width: 1}
	ah := Ref{Space: SpaceReg, Addr: RegAddr(isa.AH), Width: 1}
	ax := Ref{Space: SpaceReg, Addr: RegAddr(isa.AX), Width: 2}
	ebx := Ref{Space: SpaceReg, Addr: RegAddr(isa.EBX), Width: 4}

	if !eax.Overlaps(al) || !al.Overlaps(eax) {
		t.Error("EAX and AL must overlap")
	}
	if !eax.Overlaps(ah) {
		t.Error("EAX and AH must overlap")
	}
	if al.Overlaps(ah) {
		t.Error("AL and AH must not overlap")
	}
	if !ax.Overlaps(ah) {
		t.Error("AX covers AH")
	}
	if eax.Overlaps(ebx) {
		t.Error("EAX and EBX must not overlap")
	}
	if !eax.Contains(al) || !eax.Contains(ah) || !eax.Contains(ax) {
		t.Error("EAX contains its sub-register views")
	}
	if al.Contains(eax) {
		t.Error("AL cannot contain EAX")
	}
	if !eax.Contains(eax) {
		t.Error("a ref contains itself")
	}

	imm := Ref{Space: SpaceImm, Val: 5}
	if imm.Overlaps(eax) || eax.Overlaps(imm) || eax.Contains(imm) {
		t.Error("immediates have no location and never overlap")
	}

	// Byte-range overlap across memory refs.
	m1 := Ref{Space: SpaceMem, Addr: 0x1000, Width: 4}
	m2 := Ref{Space: SpaceMem, Addr: 0x1003, Width: 4}
	m3 := Ref{Space: SpaceMem, Addr: 0x1004, Width: 4}
	if !m1.Overlaps(m2) {
		t.Error("[0x1000,4) and [0x1003,4) overlap")
	}
	if m1.Overlaps(m3) {
		t.Error("[0x1000,4) and [0x1004,4) are adjacent, not overlapping")
	}
}

func TestLastWriteBefore(t *testing.T) {
	tr := &InstTrace{}
	mkWrite := func(seq int, addr uint64, width uint8) DynInst {
		return DynInst{
			Seq: seq,
			Effects: []Effect{{
				Dst: Ref{Space: SpaceMem, Addr: addr, Width: width},
				Op:  OpIdentity,
			}},
		}
	}
	// seq 0 writes [100,4), seq 1 writes [102,2), seq 2 writes [200,1).
	for i, di := range []DynInst{
		mkWrite(0, 100, 4),
		mkWrite(1, 102, 2),
		mkWrite(2, 200, 1),
	} {
		if err := tr.Emit(di); err != nil {
			t.Fatalf("Emit %d: %v", i, err)
		}
	}
	tr.BuildWriteIndex()

	if w, ok := tr.LastWriteBefore(5, 100, 1); !ok || w != 0 {
		t.Errorf("byte 100: got (%d,%v), want (0,true)", w, ok)
	}
	// The partially overwritten range reports the latest writer.
	if w, ok := tr.LastWriteBefore(5, 100, 4); !ok || w != 1 {
		t.Errorf("range [100,4): got (%d,%v), want (1,true)", w, ok)
	}
	// Strictly-before semantics: at seq 1 the only prior writer is seq 0.
	if w, ok := tr.LastWriteBefore(1, 102, 2); !ok || w != 0 {
		t.Errorf("range [102,2) before seq 1: got (%d,%v), want (0,true)", w, ok)
	}
	if _, ok := tr.LastWriteBefore(0, 100, 4); ok {
		t.Error("no writes strictly before seq 0")
	}
	if _, ok := tr.LastWriteBefore(5, 300, 4); ok {
		t.Error("unwritten range must report no writer")
	}
	if ws := tr.WritesTo(200); len(ws) != 1 || ws[0] != 2 {
		t.Errorf("WritesTo(200) = %v, want [2]", ws)
	}
}

func TestEmitInvalidatesWriteIndex(t *testing.T) {
	tr := &InstTrace{}
	w := func(seq int, addr uint64) DynInst {
		return DynInst{Seq: seq, Effects: []Effect{{
			Dst: Ref{Space: SpaceMem, Addr: addr, Width: 1}, Op: OpIdentity,
		}}}
	}
	tr.Emit(w(0, 10))
	tr.BuildWriteIndex()
	tr.Emit(w(1, 10)) // must invalidate the stale index
	if got, ok := tr.LastWriteBefore(2, 10, 1); !ok || got != 1 {
		t.Errorf("after Emit, LastWriteBefore = (%d,%v), want (1,true)", got, ok)
	}
}

func TestMemDump(t *testing.T) {
	d := NewMemDump(4096)
	page := make([]byte, 4096)
	copy(page[16:], []byte{1, 2, 3, 4, 5})
	d.Pages[0x1000] = page

	if b, ok := d.Byte(0x1010); !ok || b != 1 {
		t.Errorf("Byte(0x1010) = (%d,%v)", b, ok)
	}
	if _, ok := d.Byte(0x3000); ok {
		t.Error("byte in undumped page must be missing")
	}
	if got, ok := d.Bytes(0x1010, 5); !ok || got[4] != 5 {
		t.Errorf("Bytes = (%v,%v)", got, ok)
	}
	if _, ok := d.Bytes(0x1ffe, 4); ok {
		t.Error("range crossing into an undumped page must fail")
	}
	hits := d.Find([]byte{2, 3, 4})
	if len(hits) != 1 || hits[0] != 0x1011 {
		t.Errorf("Find = %#x, want [0x1011]", hits)
	}
	if d.Size() != 4096 {
		t.Errorf("Size = %d", d.Size())
	}
}
