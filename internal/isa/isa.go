// Package isa defines the 32-bit x86-like instruction set used throughout
// the Helium reproduction.
//
// The real Helium system analyzes stripped 32-bit x86 binaries.  Because the
// lifting algorithms only depend on the dynamic stream of executed
// instructions, their operand locations and the absolute memory addresses
// they touch, we substitute a compact x86-like ISA that preserves the
// features the analyses have to fight: sub-register reads and writes
// (AL/AH/AX inside EAX), complex memory operands (base + index*scale +
// disp), a flags register written implicitly by arithmetic, an x87-style
// floating-point register stack, and external calls resolved through import
// symbols.  The legacy corpus in internal/legacy is "compiled" to this ISA
// with the same optimizations the paper encounters: the brighten kernel is
// unrolled with a peeled remainder loop, the box blur runs under a tiled
// column driver, and the sharpen kernel mixes unrolled x87 float code with
// branch-free clamping.
package isa

import (
	"fmt"
	"strings"
)

// Reg names an architectural register or one of its sub-register views.
// The zero value RegNone means "no register".
type Reg uint8

// General purpose registers and their 16-bit and 8-bit views, the flags
// register, and the physical x87-style floating point registers F0..F7.
const (
	RegNone Reg = iota

	EAX
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI

	AX
	CX
	DX
	BX
	SP
	BP
	SI
	DI

	AL
	CL
	DL
	BL
	AH
	CH
	DH
	BH

	EFLAGS

	// F0..F7 are the physical floating point registers.  The VM resolves
	// x87-style stack-relative names (ST0..ST7) to physical registers while
	// tracing, mirroring the floating point stack renaming Helium performs
	// during instruction trace preprocessing (paper section 4.5).
	F0
	F1
	F2
	F3
	F4
	F5
	F6
	F7

	numRegs
)

// NumRegs is the number of distinct Reg values (including RegNone).
const NumRegs = int(numRegs)

var regNames = map[Reg]string{
	RegNone: "none",
	EAX:     "eax", ECX: "ecx", EDX: "edx", EBX: "ebx",
	ESP: "esp", EBP: "ebp", ESI: "esi", EDI: "edi",
	AX: "ax", CX: "cx", DX: "dx", BX: "bx",
	SP: "sp", BP: "bp", SI: "si", DI: "di",
	AL: "al", CL: "cl", DL: "dl", BL: "bl",
	AH: "ah", CH: "ch", DH: "dh", BH: "bh",
	EFLAGS: "eflags",
	F0:     "f0", F1: "f1", F2: "f2", F3: "f3",
	F4: "f4", F5: "f5", F6: "f6", F7: "f7",
}

// String returns the conventional assembler spelling of the register.
func (r Reg) String() string {
	if s, ok := regNames[r]; ok {
		return s
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// Full returns the full-width architectural register containing r.
// For example AH.Full() == EAX.  Full-width registers map to themselves.
func (r Reg) Full() Reg {
	switch {
	case r >= EAX && r <= EDI:
		return r
	case r >= AX && r <= DI:
		return EAX + (r - AX)
	case r >= AL && r <= BL:
		return EAX + (r - AL)
	case r >= AH && r <= BH:
		return EAX + (r - AH)
	default:
		return r
	}
}

// Offset returns the byte offset of r within its full register.  It is 1
// only for the high-byte views AH, CH, DH and BH.
func (r Reg) Offset() int {
	if r >= AH && r <= BH {
		return 1
	}
	return 0
}

// Width returns the width of the register in bytes.  Floating point
// registers are 8 bytes wide; EFLAGS is treated as 4.
func (r Reg) Width() int {
	switch {
	case r == RegNone:
		return 0
	case r >= EAX && r <= EDI:
		return 4
	case r >= AX && r <= DI:
		return 2
	case r >= AL && r <= BH:
		return 1
	case r == EFLAGS:
		return 4
	case r >= F0 && r <= F7:
		return 8
	default:
		return 0
	}
}

// IsFloat reports whether r is one of the floating point registers.
func (r Reg) IsFloat() bool { return r >= F0 && r <= F7 }

// IsGP reports whether r is a general purpose register or one of its views.
func (r Reg) IsGP() bool { return r >= EAX && r <= BH }

// Opcode identifies an instruction operation.
type Opcode uint8

// The instruction set.  It is a small but representative subset of 32-bit
// x86: enough to express the optimized stencil kernels Helium lifts, with
// the addressing modes, implicit flag updates and partial register traffic
// that make the binaries hard to analyze.
const (
	NOP Opcode = iota

	// Data movement.
	MOV   // mov dst, src
	MOVZX // zero-extending load of a narrower source
	MOVSX // sign-extending load of a narrower source
	LEA   // address computation without memory access
	PUSH
	POP
	CDQ // sign-extend EAX into EDX:EAX

	// Integer arithmetic and logic.  Two-operand forms dst op= src.
	ADD
	ADC
	SUB
	SBB
	IMUL // imul dst, src  or  imul dst, src, imm
	MUL  // unsigned EDX:EAX = EAX * src
	DIV  // unsigned EAX = EDX:EAX / src, EDX = remainder
	AND
	OR
	XOR
	NOT
	NEG
	INC
	DEC
	SHL
	SHR
	SAR

	// Comparison (flag producers without a register result).
	CMP
	TEST

	// Control transfer.
	JMP
	JZ
	JNZ
	JB
	JNB
	JBE
	JA
	JL
	JGE
	JLE
	JG
	JS
	JNS
	CALL
	RET

	// Conditional set (used by branch-free legacy code).
	SETZ
	SETNZ
	SETB
	SETNB

	// x87-style floating point.  Stack-relative operands are resolved to
	// physical registers by the assembler/VM.
	FLD   // push float from memory or register
	FILD  // push integer from memory, converted to float
	FST   // store top of stack to memory/register without popping
	FSTP  // store top of stack and pop
	FISTP // store top of stack as rounded integer and pop
	FADD
	FSUB
	FMUL
	FDIV
	FADDP // add and pop
	FMULP
	FXCH // exchange top of stack with another stack slot
	FLDZ // push +0.0

	// Miscellaneous.
	CPUID // intercepted by the VM: reports no vector extensions

	numOpcodes
)

// NumOpcodes is the number of defined opcodes; fuzzers use it to decode
// arbitrary bytes into in-range (if not necessarily well-formed) opcodes.
const NumOpcodes = int(numOpcodes)

var opNames = [numOpcodes]string{
	NOP: "nop", MOV: "mov", MOVZX: "movzx", MOVSX: "movsx", LEA: "lea",
	PUSH: "push", POP: "pop", CDQ: "cdq",
	ADD: "add", ADC: "adc", SUB: "sub", SBB: "sbb", IMUL: "imul", MUL: "mul",
	DIV: "div", AND: "and", OR: "or", XOR: "xor", NOT: "not", NEG: "neg",
	INC: "inc", DEC: "dec", SHL: "shl", SHR: "shr", SAR: "sar",
	CMP: "cmp", TEST: "test",
	JMP: "jmp", JZ: "jz", JNZ: "jnz", JB: "jb", JNB: "jnb", JBE: "jbe",
	JA: "ja", JL: "jl", JGE: "jge", JLE: "jle", JG: "jg", JS: "js", JNS: "jns",
	CALL: "call", RET: "ret",
	SETZ: "setz", SETNZ: "setnz", SETB: "setb", SETNB: "setnb",
	FLD: "fld", FILD: "fild", FST: "fst", FSTP: "fstp", FISTP: "fistp",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
	FADDP: "faddp", FMULP: "fmulp", FXCH: "fxch", FLDZ: "fldz",
	CPUID: "cpuid",
}

// String returns the assembler mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsCondJump reports whether the opcode is a conditional jump.
func (op Opcode) IsCondJump() bool {
	return op >= JZ && op <= JNS
}

// IsJump reports whether the opcode is any jump (conditional or not).
func (op Opcode) IsJump() bool {
	return op == JMP || op.IsCondJump()
}

// IsBranch reports whether the opcode ends a basic block.
func (op Opcode) IsBranch() bool {
	return op.IsJump() || op == CALL || op == RET
}

// IsFloat reports whether the opcode belongs to the floating point subset.
func (op Opcode) IsFloat() bool {
	return op >= FLD && op <= FLDZ
}

// WritesFlags reports whether the opcode updates the flags register.
func (op Opcode) WritesFlags() bool {
	switch op {
	case ADD, ADC, SUB, SBB, IMUL, MUL, DIV, AND, OR, XOR, NOT, NEG,
		INC, DEC, SHL, SHR, SAR, CMP, TEST:
		return true
	}
	return false
}

// ReadsFlags reports whether the opcode consumes the flags register.
func (op Opcode) ReadsFlags() bool {
	switch op {
	case ADC, SBB, SETZ, SETNZ, SETB, SETNB:
		return true
	}
	return op.IsCondJump()
}

// OperandKind distinguishes the operand forms.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg              // a register operand
	KindImm              // an immediate constant
	KindMem              // a memory operand [base + index*scale + disp]
)

// Operand is a single instruction operand.
type Operand struct {
	Kind OperandKind

	// KindReg.
	Reg Reg

	// KindImm.  Imm holds integer immediates; FImm holds floating point
	// immediates used by the handful of float constant loads.
	Imm  int64
	FImm float64

	// KindMem.
	Base  Reg
	Index Reg
	Scale int32
	Disp  int32
	// Width is the memory access width in bytes (1, 2, 4 or 8).
	Width int
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp returns an integer immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// MemOp returns a memory operand [base + index*scale + disp] with the given
// access width in bytes.
func MemOp(base, index Reg, scale int32, disp int32, width int) Operand {
	return Operand{Kind: KindMem, Base: base, Index: index, Scale: scale, Disp: disp, Width: width}
}

// Mem returns a simple [base + disp] memory operand.
func Mem(base Reg, disp int32, width int) Operand {
	return MemOp(base, RegNone, 0, disp, width)
}

// OpWidth returns the width in bytes represented by the operand: the
// register width for registers, the access width for memory, and 4 for
// immediates.
func (o Operand) OpWidth() int {
	switch o.Kind {
	case KindReg:
		return o.Reg.Width()
	case KindMem:
		return o.Width
	case KindImm:
		return 4
	}
	return 0
}

// String renders the operand in Intel-ish assembler syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return ""
	case KindReg:
		return o.Reg.String()
	case KindImm:
		return fmt.Sprintf("0x%x", o.Imm)
	case KindMem:
		var b strings.Builder
		switch o.Width {
		case 1:
			b.WriteString("byte ptr [")
		case 2:
			b.WriteString("word ptr [")
		case 8:
			b.WriteString("qword ptr [")
		default:
			b.WriteString("dword ptr [")
		}
		first := true
		if o.Base != RegNone {
			b.WriteString(o.Base.String())
			first = false
		}
		if o.Index != RegNone {
			if !first {
				b.WriteString("+")
			}
			fmt.Fprintf(&b, "%s*%d", o.Index, o.Scale)
			first = false
		}
		if o.Disp != 0 || first {
			if !first && o.Disp >= 0 {
				b.WriteString("+")
			}
			fmt.Fprintf(&b, "%#x", o.Disp)
		}
		b.WriteString("]")
		return b.String()
	}
	return "?"
}

// Inst is a single static instruction.
type Inst struct {
	// Addr is the virtual address of the instruction.
	Addr uint32
	// Op is the operation.
	Op Opcode
	// Dst, Src and Src2 are the operands.  Most instructions use Dst and
	// Src; three-operand forms (imul dst, src, imm) also use Src2.
	Dst  Operand
	Src  Operand
	Src2 Operand
	// Target is the resolved branch or call target for control transfers
	// within the program.
	Target uint32
	// Sym names the imported external function for CALL instructions that
	// leave the program (for example "sqrt" or "floor").  External symbols
	// survive stripping because the dynamic linker needs them, which is why
	// Helium can special-case known library calls.
	Sym string
}

// String renders the instruction in Intel-ish assembler syntax.
func (in Inst) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%08x  %-6s", in.Addr, in.Op)
	ops := make([]string, 0, 3)
	if in.Op.IsJump() || in.Op == CALL {
		if in.Sym != "" {
			ops = append(ops, in.Sym)
		} else {
			ops = append(ops, fmt.Sprintf("0x%x", in.Target))
		}
	} else {
		for _, o := range []Operand{in.Dst, in.Src, in.Src2} {
			if o.Kind != KindNone {
				ops = append(ops, o.String())
			}
		}
	}
	if len(ops) > 0 {
		b.WriteString(" ")
		b.WriteString(strings.Join(ops, ", "))
	}
	return b.String()
}

// Segment is a block of initialized data placed in the program image, used
// for read-only tables (stencil weights, lookup tables).
type Segment struct {
	Addr uint32
	Data []byte
}

// Program is a loaded, "stripped" program image: a flat list of
// instructions plus initialized data segments.  There is no symbol
// information beyond import symbols referenced by CALL instructions.
type Program struct {
	Name string
	// Entry is the address execution starts at.
	Entry uint32
	// Insts holds the instructions sorted by address.
	Insts []Inst
	// Data holds initialized data segments.
	Data []Segment

	index map[uint32]int
}

// BuildIndex (re)builds the address-to-instruction index.  It must be called
// after the instruction slice is modified.
func (p *Program) BuildIndex() {
	p.index = make(map[uint32]int, len(p.Insts))
	for i, in := range p.Insts {
		p.index[in.Addr] = i
	}
}

// Lookup returns the index of the instruction at addr and whether it exists.
func (p *Program) Lookup(addr uint32) (int, bool) {
	if p.index == nil {
		p.BuildIndex()
	}
	i, ok := p.index[addr]
	return i, ok
}

// At returns the instruction at addr.  It panics if addr is not the address
// of an instruction in the program; callers validate addresses beforehand.
func (p *Program) At(addr uint32) Inst {
	i, ok := p.Lookup(addr)
	if !ok {
		panic(fmt.Sprintf("isa: no instruction at %#x in %s", addr, p.Name))
	}
	return p.Insts[i]
}

// Next returns the address of the instruction following addr in layout
// order, or 0 if addr is the last instruction.
func (p *Program) Next(addr uint32) uint32 {
	i, ok := p.Lookup(addr)
	if !ok || i+1 >= len(p.Insts) {
		return 0
	}
	return p.Insts[i+1].Addr
}

// Leaders computes the set of static basic block leader addresses: the
// entry point, every branch target and every instruction following a
// control transfer.
func (p *Program) Leaders() map[uint32]bool {
	leaders := map[uint32]bool{p.Entry: true}
	for i, in := range p.Insts {
		if in.Op.IsJump() || in.Op == CALL {
			if in.Sym == "" && in.Target != 0 {
				leaders[in.Target] = true
			}
		}
		if in.Op.IsBranch() && i+1 < len(p.Insts) {
			leaders[p.Insts[i+1].Addr] = true
		}
	}
	return leaders
}

// BlockLeader returns the leader address of the basic block containing
// addr, given the leader set.
func (p *Program) BlockLeader(leaders map[uint32]bool, addr uint32) uint32 {
	i, ok := p.Lookup(addr)
	if !ok {
		return addr
	}
	for ; i > 0; i-- {
		if leaders[p.Insts[i].Addr] {
			break
		}
	}
	return p.Insts[i].Addr
}

// Disassemble renders the whole program as text, one instruction per line.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for _, in := range p.Insts {
		b.WriteString(in.String())
		b.WriteString("\n")
	}
	return b.String()
}
