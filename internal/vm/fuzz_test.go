package vm

import (
	"testing"

	"helium/internal/isa"
)

// fuzzEntry is where fuzzed programs are laid out; the value itself is
// arbitrary (hostile branch targets leave it on purpose).
const fuzzEntry uint32 = 0x00401000

// fuzzOperand decodes four bytes into an operand, deliberately including
// encodings no assembler would emit: out-of-range registers, zero and odd
// memory widths, invalid kinds.  The machine must fault, not panic.
func fuzzOperand(b []byte) isa.Operand {
	switch b[0] % 5 {
	case 0:
		return isa.RegOp(isa.Reg(b[1]))
	case 1:
		return isa.ImmOp(int64(int8(b[1])) << (b[2] % 24))
	case 2:
		return isa.Mem(isa.Reg(b[1]), int32(int8(b[2]))*257, []int{1, 2, 4, 8}[b[3]%4])
	case 3:
		return isa.MemOp(isa.Reg(b[1]%32), isa.Reg(b[2]%32), int32(1<<(b[3]%4)),
			int32(int8(b[3])), []int{1, 2, 4, 8}[b[1]%4])
	default:
		// Raw operand: arbitrary kind, arbitrary width (0..8).
		return isa.Operand{Kind: isa.OperandKind(b[1] % 4), Reg: isa.Reg(b[2]),
			Base: isa.Reg(b[3]), Width: int(b[2] % 9)}
	}
}

// fuzzProgram decodes a byte string into a hostile program: every 10-byte
// group is one instruction whose opcode, operands and branch target all
// come straight from the fuzzer.  Targets mostly stay inside the program
// so control flow actually happens; one encoding escapes it to exercise
// the no-instruction-at-eip fault.
func fuzzProgram(data []byte) *isa.Program {
	const instBytes = 10
	n := len(data) / instBytes
	if n == 0 {
		return nil
	}
	if n > 512 {
		n = 512
	}
	p := &isa.Program{Name: "fuzz", Entry: fuzzEntry}
	for i := 0; i < n; i++ {
		b := data[i*instBytes : (i+1)*instBytes]
		target := fuzzEntry + uint32(b[9]%byte(n))*4
		if b[9] == 0xff {
			target = fuzzEntry - 4 // branch out of the program
		}
		p.Insts = append(p.Insts, isa.Inst{
			Addr:   fuzzEntry + uint32(i)*4,
			Op:     isa.Opcode(int(b[0]) % isa.NumOpcodes),
			Dst:    fuzzOperand(b[1:5]),
			Src:    fuzzOperand(b[5:9]),
			Src2:   isa.ImmOp(int64(b[9] % 8)),
			Target: target,
		})
	}
	p.BuildIndex()
	return p
}

// FuzzVM feeds arbitrary instruction streams to the emulator under every
// instrumentation mode.  The contract is narrow and absolute: bounded
// runs return — with a structured fault or a clean halt — and never
// panic, whatever the bytes decode to.
func FuzzVM(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		p := fuzzProgram(data)
		if p == nil {
			return
		}
		const budget = 10_000

		m := NewMachine(p)
		_ = m.Run(budget)
		if m.Steps() > budget {
			t.Fatalf("run overshot its step budget: %d > %d", m.Steps(), budget)
		}

		m.Reset()
		_, _ = m.RunCoverage(CoverageOptions{MaxSteps: budget})

		m.Reset()
		_, _ = m.RunTrace(TraceOptions{MaxSteps: budget, FilterEntry: p.Entry, MaxTraceInsts: budget})
	})
}
