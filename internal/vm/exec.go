package vm

import (
	"math"

	"helium/internal/isa"
	"helium/internal/trace"
)

// stepRecord collects everything instrumentation wants to know about a
// single executed instruction.  A nil record disables all collection.
type stepRecord struct {
	instAddr uint32
	op       isa.Opcode
	width    uint8
	effects  []trace.Effect
	addrRefs []trace.Ref
	memAddr  uint64
	hasMem   bool
	taken    bool
	isBranch bool
	sym      string
	accesses []trace.MemAccess
}

func (r *stepRecord) reset() {
	r.instAddr = 0
	r.op = isa.NOP
	r.width = 0
	r.effects = r.effects[:0]
	r.addrRefs = r.addrRefs[:0]
	r.accesses = r.accesses[:0]
	r.memAddr = 0
	r.hasMem = false
	r.taken = false
	r.isBranch = false
	r.sym = ""
}

func (r *stepRecord) effect(dst trace.Ref, op trace.ExprOp, srcs ...trace.Ref) {
	if r == nil {
		return
	}
	cp := make([]trace.Ref, len(srcs))
	copy(cp, srcs)
	r.effects = append(r.effects, trace.Effect{Dst: dst, Op: op, Srcs: cp})
}

func (r *stepRecord) access(instAddr uint32, addr uint32, width int, write bool) {
	if r == nil {
		return
	}
	r.accesses = append(r.accesses, trace.MemAccess{
		InstAddr: instAddr, Addr: uint64(addr), Width: uint8(width), Write: write,
	})
}

// maskWidth truncates v to the given byte width.
func maskWidth(v uint64, width int) uint64 {
	switch width {
	case 1:
		return v & 0xff
	case 2:
		return v & 0xffff
	case 4:
		return v & 0xffffffff
	default:
		return v
	}
}

// signExtend sign-extends a value of the given byte width to 64 bits.
func signExtend(v uint64, width int) int64 {
	switch width {
	case 1:
		return int64(int8(v))
	case 2:
		return int64(int16(v))
	case 4:
		return int64(int32(v))
	default:
		return int64(v)
	}
}

// operandValue reads an operand, returning its value, the Ref describing
// it, and memory metadata when the operand is a memory reference.
func (m *Machine) operandValue(inst isa.Inst, o isa.Operand, rec *stepRecord) (uint64, trace.Ref, error) {
	switch o.Kind {
	case isa.KindReg:
		return m.readReg(o.Reg), m.regRef(o.Reg), nil
	case isa.KindImm:
		return uint64(o.Imm), immRef(o.Imm), nil
	case isa.KindMem:
		addr, addrRefs := m.effectiveAddr(o)
		v := m.Mem.Read(addr, o.Width)
		if rec != nil {
			rec.addrRefs = append(rec.addrRefs, addrRefs...)
			rec.memAddr = uint64(addr)
			rec.hasMem = true
			rec.access(inst.Addr, addr, o.Width, false)
		}
		return v, memRef(addr, o.Width, v), nil
	}
	return 0, trace.Ref{}, m.faultf("unsupported operand kind %d", o.Kind)
}

// operandFloat reads a floating point memory operand (width 4 or 8) or an
// integer memory operand for FILD.
func (m *Machine) operandFloat(inst isa.Inst, o isa.Operand, rec *stepRecord) (float64, trace.Ref, error) {
	if o.Kind != isa.KindMem {
		return 0, trace.Ref{}, m.faultf("float operand must be memory")
	}
	addr, addrRefs := m.effectiveAddr(o)
	bits := m.Mem.Read(addr, o.Width)
	var v float64
	if o.Width == 4 {
		v = float64(math.Float32frombits(uint32(bits)))
	} else {
		v = math.Float64frombits(bits)
	}
	if rec != nil {
		rec.addrRefs = append(rec.addrRefs, addrRefs...)
		rec.memAddr = uint64(addr)
		rec.hasMem = true
		rec.access(inst.Addr, addr, o.Width, false)
	}
	return v, memRefF(addr, o.Width, v), nil
}

// writeOperand writes v to a register or memory destination and returns the
// Ref describing the write.
func (m *Machine) writeOperand(inst isa.Inst, o isa.Operand, v uint64, rec *stepRecord) (trace.Ref, error) {
	switch o.Kind {
	case isa.KindReg:
		m.writeReg(o.Reg, maskWidth(v, o.Reg.Width()))
		ref := m.regRef(o.Reg)
		return ref, nil
	case isa.KindMem:
		addr, addrRefs := m.effectiveAddr(o)
		v = maskWidth(v, o.Width)
		m.Mem.Write(addr, o.Width, v)
		if rec != nil {
			rec.addrRefs = append(rec.addrRefs, addrRefs...)
			rec.memAddr = uint64(addr)
			rec.hasMem = true
			rec.access(inst.Addr, addr, o.Width, true)
		}
		return memRef(addr, o.Width, v), nil
	}
	return trace.Ref{}, m.faultf("cannot write operand kind %d", o.Kind)
}

// setFlagsArith updates flags after an addition or subtraction of two
// values of the given width.  sub selects subtraction semantics.
func (m *Machine) setFlagsArith(a, b, result uint64, width int, sub bool, keepCF bool) {
	r := maskWidth(result, width)
	m.flag.zf = r == 0
	signBit := uint64(1) << (uint(width)*8 - 1)
	m.flag.sf = r&signBit != 0
	if !keepCF {
		if sub {
			m.flag.cf = maskWidth(a, width) < maskWidth(b, width)
		} else {
			m.flag.cf = r < maskWidth(a, width) || r < maskWidth(b, width)
		}
	}
	sa, sb := signExtend(a, width), signExtend(b, width)
	var full int64
	if sub {
		full = sa - sb
	} else {
		full = sa + sb
	}
	m.flag.of = full != signExtend(r, width)
}

// setFlagsLogic updates flags after a bitwise operation.
func (m *Machine) setFlagsLogic(result uint64, width int) {
	r := maskWidth(result, width)
	m.flag.zf = r == 0
	m.flag.sf = r&(uint64(1)<<(uint(width)*8-1)) != 0
	m.flag.cf = false
	m.flag.of = false
}

// evalCond evaluates a conditional jump or set opcode against the current
// flags.
func (m *Machine) evalCond(op isa.Opcode) bool {
	f := m.flag
	switch op {
	case isa.JZ, isa.SETZ:
		return f.zf
	case isa.JNZ, isa.SETNZ:
		return !f.zf
	case isa.JB, isa.SETB:
		return f.cf
	case isa.JNB, isa.SETNB:
		return !f.cf
	case isa.JBE:
		return f.cf || f.zf
	case isa.JA:
		return !f.cf && !f.zf
	case isa.JL:
		return f.sf != f.of
	case isa.JGE:
		return f.sf == f.of
	case isa.JLE:
		return f.zf || f.sf != f.of
	case isa.JG:
		return !f.zf && f.sf == f.of
	case isa.JS:
		return f.sf
	case isa.JNS:
		return !f.sf
	}
	return false
}

// step executes one instruction, optionally filling rec with its effects
// and memory accesses.
func (m *Machine) step(rec *stepRecord) error {
	if m.halted {
		return m.faultf("machine is halted")
	}
	idx, ok := m.Prog.Lookup(m.eip)
	if !ok {
		return m.faultf("no instruction at eip")
	}
	in := m.Prog.Insts[idx]
	next := uint32(0)
	if idx+1 < len(m.Prog.Insts) {
		next = m.Prog.Insts[idx+1].Addr
	}
	m.steps++
	if rec != nil {
		rec.instAddr = in.Addr
		rec.op = in.Op
		w := in.Dst.OpWidth()
		if w == 0 {
			w = in.Src.OpWidth()
		}
		rec.width = uint8(w)
	}

	branchTo := uint32(0)
	branched := false

	switch in.Op {
	case isa.NOP:

	case isa.MOV:
		v, src, err := m.operandValue(in, in.Src, rec)
		if err != nil {
			return err
		}
		dst, err := m.writeOperand(in, in.Dst, v, rec)
		if err != nil {
			return err
		}
		rec.effect(dst, trace.OpIdentity, src)

	case isa.MOVZX:
		v, src, err := m.operandValue(in, in.Src, rec)
		if err != nil {
			return err
		}
		dst, err := m.writeOperand(in, in.Dst, v, rec)
		if err != nil {
			return err
		}
		rec.effect(dst, trace.OpZExt, src)

	case isa.MOVSX:
		v, src, err := m.operandValue(in, in.Src, rec)
		if err != nil {
			return err
		}
		sv := uint64(signExtend(v, in.Src.OpWidth()))
		dst, err := m.writeOperand(in, in.Dst, sv, rec)
		if err != nil {
			return err
		}
		rec.effect(dst, trace.OpSExt, src)

	case isa.LEA:
		addr, addrRefs := m.effectiveAddr(in.Src)
		dst, err := m.writeOperand(in, in.Dst, uint64(addr), rec)
		if err != nil {
			return err
		}
		// lea performs no memory access, so nothing is added to the memory
		// trace, but the computation itself is data flow.
		base := immRef(0)
		if in.Src.Base != isa.RegNone {
			base = m.regRefBefore(in.Src.Base, addrRefs)
		}
		index := immRef(0)
		if in.Src.Index != isa.RegNone {
			index = m.regRefBefore(in.Src.Index, addrRefs)
		}
		rec.effect(dst, trace.OpLea, base, index, immRef(int64(in.Src.Scale)), immRef(int64(in.Src.Disp)))

	case isa.PUSH:
		v, src, err := m.operandValue(in, in.Src, rec)
		if err != nil {
			// Allow push with the operand in Dst for convenience.
			v, src, err = m.operandValue(in, in.Dst, rec)
			if err != nil {
				return err
			}
		}
		espOld := m.regRef(isa.ESP)
		esp := m.regs[isa.ESP-isa.EAX] - 4
		m.regs[isa.ESP-isa.EAX] = esp
		m.Mem.Write(esp, 4, maskWidth(v, 4))
		rec.access(in.Addr, esp, 4, true)
		rec.effect(memRef(esp, 4, maskWidth(v, 4)), trace.OpIdentity, src)
		rec.effect(m.regRef(isa.ESP), trace.OpSub, espOld, immRef(4))

	case isa.POP:
		espOld := m.regRef(isa.ESP)
		esp := m.regs[isa.ESP-isa.EAX]
		v := m.Mem.Read(esp, 4)
		rec.access(in.Addr, esp, 4, false)
		m.regs[isa.ESP-isa.EAX] = esp + 4
		dst, err := m.writeOperand(in, in.Dst, v, rec)
		if err != nil {
			return err
		}
		rec.effect(dst, trace.OpIdentity, memRef(esp, 4, v))
		rec.effect(m.regRef(isa.ESP), trace.OpAdd, espOld, immRef(4))

	case isa.CDQ:
		eax := m.regRef(isa.EAX)
		var edx uint64
		if int32(m.regs[0]) < 0 {
			edx = 0xffffffff
		}
		m.writeReg(isa.EDX, edx)
		rec.effect(m.regRef(isa.EDX), trace.OpSar, eax, immRef(31))

	case isa.ADD, isa.ADC, isa.SUB, isa.SBB, isa.AND, isa.OR, isa.XOR, isa.IMUL:
		if err := m.execBinary(in, rec); err != nil {
			return err
		}

	case isa.NOT, isa.NEG, isa.INC, isa.DEC:
		if err := m.execUnary(in, rec); err != nil {
			return err
		}

	case isa.SHL, isa.SHR, isa.SAR:
		if err := m.execShift(in, rec); err != nil {
			return err
		}

	case isa.MUL, isa.DIV:
		if err := m.execMulDiv(in, rec); err != nil {
			return err
		}

	case isa.CMP:
		a, aref, err := m.operandValue(in, in.Dst, rec)
		if err != nil {
			return err
		}
		b, bref, err := m.operandValue(in, in.Src, rec)
		if err != nil {
			return err
		}
		w := in.Dst.OpWidth()
		m.setFlagsArith(a, b, a-b, w, true, false)
		rec.effect(m.flagsRef(), trace.OpCmp, aref, bref)

	case isa.TEST:
		a, aref, err := m.operandValue(in, in.Dst, rec)
		if err != nil {
			return err
		}
		b, bref, err := m.operandValue(in, in.Src, rec)
		if err != nil {
			return err
		}
		m.setFlagsLogic(a&b, in.Dst.OpWidth())
		rec.effect(m.flagsRef(), trace.OpTest, aref, bref)

	case isa.JMP:
		branched, branchTo = true, in.Target

	case isa.JZ, isa.JNZ, isa.JB, isa.JNB, isa.JBE, isa.JA,
		isa.JL, isa.JGE, isa.JLE, isa.JG, isa.JS, isa.JNS:
		taken := m.evalCond(in.Op)
		if rec != nil {
			rec.taken = taken
			rec.isBranch = true
		}
		rec.effect(trace.Ref{Space: trace.SpaceNone}, trace.OpBranch, m.flagsRef())
		if taken {
			branched, branchTo = true, in.Target
		}

	case isa.SETZ, isa.SETNZ, isa.SETB, isa.SETNB:
		var v uint64
		if m.evalCond(in.Op) {
			v = 1
		}
		dst, err := m.writeOperand(in, in.Dst, v, rec)
		if err != nil {
			return err
		}
		rec.effect(dst, trace.OpSelectSet, m.flagsRef())

	case isa.CALL:
		if in.Sym != "" {
			handler, ok := m.Imports[in.Sym]
			if !ok {
				return m.faultf("unresolved import %q", in.Sym)
			}
			before := m.regRef(m.fpuTopReg())
			if err := handler(m); err != nil {
				return err
			}
			rec.effect(m.regRef(m.fpuTopReg()), trace.OpCall, before)
			if rec != nil {
				rec.sym = in.Sym
			}
		} else {
			m.push32(next)
			rec.access(in.Addr, m.regs[isa.ESP-isa.EAX], 4, true)
			m.callDepth++
			branched, branchTo = true, in.Target
		}

	case isa.RET:
		ret := m.pop32()
		m.callDepth--
		if ret == retSentinel {
			m.halted = true
			return nil
		}
		branched, branchTo = true, ret

	case isa.CPUID:
		// The instrumentation tool intercepts cpuid and reports that no
		// vector instruction sets are available (paper section 6.1), forcing
		// the application onto its general purpose code paths.
		for _, r := range []isa.Reg{isa.EAX, isa.EBX, isa.ECX, isa.EDX} {
			m.writeReg(r, 0)
			rec.effect(m.regRef(r), trace.OpIdentity, immRef(0))
		}

	case isa.FLD, isa.FILD, isa.FLDZ, isa.FST, isa.FSTP, isa.FISTP,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FADDP, isa.FMULP, isa.FXCH:
		if err := m.execFloat(in, rec); err != nil {
			return err
		}

	default:
		return m.faultf("unimplemented opcode %v", in.Op)
	}

	if branched {
		m.eip = branchTo
	} else {
		if next == 0 {
			m.halted = true
		}
		m.eip = next
	}
	return nil
}

// regRefBefore returns the Ref for register r captured in refs (its value
// before any write this instruction performed), falling back to the current
// value.
func (m *Machine) regRefBefore(r isa.Reg, refs []trace.Ref) trace.Ref {
	addr := trace.RegAddr(r)
	for _, ref := range refs {
		if ref.Space == trace.SpaceReg && ref.Addr == addr && int(ref.Width) == r.Width() {
			return ref
		}
	}
	return m.regRef(r)
}

// execBinary handles two-operand integer arithmetic and logic.
func (m *Machine) execBinary(in isa.Inst, rec *stepRecord) error {
	// Three-operand imul: dst = src * imm.
	if in.Op == isa.IMUL && in.Src2.Kind == isa.KindImm {
		a, aref, err := m.operandValue(in, in.Src, rec)
		if err != nil {
			return err
		}
		w := in.Dst.OpWidth()
		res := maskWidth(uint64(int64(a)*in.Src2.Imm), w)
		dst, err := m.writeOperand(in, in.Dst, res, rec)
		if err != nil {
			return err
		}
		m.setFlagsLogic(res, w)
		rec.effect(dst, trace.OpMul, aref, immRef(in.Src2.Imm))
		rec.effect(m.flagsRef(), trace.OpMul, aref, immRef(in.Src2.Imm))
		return nil
	}

	a, aref, err := m.operandValue(in, in.Dst, rec)
	if err != nil {
		return err
	}
	b, bref, err := m.operandValue(in, in.Src, rec)
	if err != nil {
		return err
	}
	w := in.Dst.OpWidth()
	var res uint64
	var op trace.ExprOp
	var srcs []trace.Ref
	carryIn := uint64(0)
	if m.flag.cf {
		carryIn = 1
	}
	flagsBefore := m.flagsRef()

	switch in.Op {
	case isa.ADD:
		res = a + b
		op, srcs = trace.OpAdd, []trace.Ref{aref, bref}
		m.setFlagsArith(a, b, res, w, false, false)
	case isa.ADC:
		res = a + b + carryIn
		op, srcs = trace.OpAdd, []trace.Ref{aref, bref, flagsBefore}
		m.setFlagsArith(a, b+carryIn, res, w, false, false)
	case isa.SUB:
		res = a - b
		op, srcs = trace.OpSub, []trace.Ref{aref, bref}
		m.setFlagsArith(a, b, res, w, true, false)
	case isa.SBB:
		res = a - b - carryIn
		op, srcs = trace.OpSub, []trace.Ref{aref, bref, flagsBefore}
		m.setFlagsArith(a, b+carryIn, res, w, true, false)
	case isa.AND:
		res = a & b
		op, srcs = trace.OpAnd, []trace.Ref{aref, bref}
		m.setFlagsLogic(res, w)
	case isa.OR:
		res = a | b
		op, srcs = trace.OpOr, []trace.Ref{aref, bref}
		m.setFlagsLogic(res, w)
	case isa.XOR:
		res = a ^ b
		m.setFlagsLogic(res, w)
		// xor r, r is the canonical zeroing idiom; treating it as a constant
		// load avoids a bogus data dependency on the previous register value.
		if in.Dst.Kind == isa.KindReg && in.Src.Kind == isa.KindReg && in.Dst.Reg == in.Src.Reg {
			op, srcs = trace.OpIdentity, []trace.Ref{immRef(0)}
		} else {
			op, srcs = trace.OpXor, []trace.Ref{aref, bref}
		}
	case isa.IMUL:
		res = uint64(signExtend(a, w) * signExtend(b, w))
		op, srcs = trace.OpMul, []trace.Ref{aref, bref}
		m.setFlagsLogic(maskWidth(res, w), w)
	}
	res = maskWidth(res, w)
	dst, err := m.writeOperand(in, in.Dst, res, rec)
	if err != nil {
		return err
	}
	rec.effect(dst, op, srcs...)
	rec.effect(m.flagsRef(), op, srcs...)
	return nil
}

// execUnary handles single-operand integer instructions.
func (m *Machine) execUnary(in isa.Inst, rec *stepRecord) error {
	a, aref, err := m.operandValue(in, in.Dst, rec)
	if err != nil {
		return err
	}
	w := in.Dst.OpWidth()
	var res uint64
	var op trace.ExprOp
	var srcs []trace.Ref
	switch in.Op {
	case isa.NOT:
		res = ^a
		op, srcs = trace.OpNot, []trace.Ref{aref}
		// not does not affect flags.
	case isa.NEG:
		res = -a
		op, srcs = trace.OpNeg, []trace.Ref{aref}
		m.setFlagsArith(0, a, res, w, true, false)
	case isa.INC:
		res = a + 1
		op, srcs = trace.OpAdd, []trace.Ref{aref, immRef(1)}
		m.setFlagsArith(a, 1, res, w, false, true)
	case isa.DEC:
		res = a - 1
		op, srcs = trace.OpSub, []trace.Ref{aref, immRef(1)}
		m.setFlagsArith(a, 1, res, w, true, true)
	}
	res = maskWidth(res, w)
	dst, err := m.writeOperand(in, in.Dst, res, rec)
	if err != nil {
		return err
	}
	rec.effect(dst, op, srcs...)
	if in.Op != isa.NOT {
		rec.effect(m.flagsRef(), op, srcs...)
	}
	return nil
}

// execShift handles shift instructions; the count is an immediate or CL.
func (m *Machine) execShift(in isa.Inst, rec *stepRecord) error {
	a, aref, err := m.operandValue(in, in.Dst, rec)
	if err != nil {
		return err
	}
	cnt, cref, err := m.operandValue(in, in.Src, rec)
	if err != nil {
		return err
	}
	w := in.Dst.OpWidth()
	sh := uint(cnt & 31)
	var res uint64
	var op trace.ExprOp
	switch in.Op {
	case isa.SHL:
		res = a << sh
		op = trace.OpShl
	case isa.SHR:
		res = maskWidth(a, w) >> sh
		op = trace.OpShr
	case isa.SAR:
		res = uint64(signExtend(a, w) >> sh)
		op = trace.OpSar
	}
	res = maskWidth(res, w)
	m.setFlagsLogic(res, w)
	dst, err := m.writeOperand(in, in.Dst, res, rec)
	if err != nil {
		return err
	}
	rec.effect(dst, op, aref, cref)
	rec.effect(m.flagsRef(), op, aref, cref)
	return nil
}

// execMulDiv handles the one-operand EDX:EAX multiply and divide forms.
func (m *Machine) execMulDiv(in isa.Inst, rec *stepRecord) error {
	b, bref, err := m.operandValue(in, in.Dst, rec)
	if err != nil {
		return err
	}
	eaxRef := m.regRef(isa.EAX)
	a := uint64(m.regs[0])
	switch in.Op {
	case isa.MUL:
		full := a * maskWidth(b, 4)
		m.writeReg(isa.EAX, full&0xffffffff)
		m.writeReg(isa.EDX, full>>32)
		rec.effect(m.regRef(isa.EAX), trace.OpMul, eaxRef, bref)
		rec.effect(m.regRef(isa.EDX), trace.OpMulHi, eaxRef, bref)
	case isa.DIV:
		if maskWidth(b, 4) == 0 {
			return m.faultf("division by zero")
		}
		q := a / maskWidth(b, 4)
		r := a % maskWidth(b, 4)
		m.writeReg(isa.EAX, q)
		m.writeReg(isa.EDX, r)
		rec.effect(m.regRef(isa.EAX), trace.OpDiv, eaxRef, bref)
		rec.effect(m.regRef(isa.EDX), trace.OpMod, eaxRef, bref)
	}
	return nil
}

// execFloat handles the x87-style floating point subset.  Stack-relative
// locations are resolved to physical registers here, so the trace already
// contains renamed registers (paper section 4.5).
func (m *Machine) execFloat(in isa.Inst, rec *stepRecord) error {
	switch in.Op {
	case isa.FLDZ:
		r := m.fpuPush(0)
		rec.effect(m.regRef(r), trace.OpIdentity, trace.Ref{Space: trace.SpaceImm, Width: 8, Val: 0, Float: true})

	case isa.FLD:
		v, src, err := m.operandFloat(in, in.Dst, rec)
		if err != nil {
			return err
		}
		r := m.fpuPush(v)
		rec.effect(m.regRef(r), trace.OpIdentity, src)

	case isa.FILD:
		if in.Dst.Kind != isa.KindMem {
			return m.faultf("fild requires a memory operand")
		}
		addr, addrRefs := m.effectiveAddr(in.Dst)
		iv := signExtend(m.Mem.Read(addr, in.Dst.Width), in.Dst.Width)
		if rec != nil {
			rec.addrRefs = append(rec.addrRefs, addrRefs...)
			rec.memAddr = uint64(addr)
			rec.hasMem = true
			rec.access(in.Addr, addr, in.Dst.Width, false)
		}
		r := m.fpuPush(float64(iv))
		rec.effect(m.regRef(r), trace.OpIntToFP, memRef(addr, in.Dst.Width, uint64(iv)))

	case isa.FST, isa.FSTP:
		if in.Dst.Kind != isa.KindMem {
			return m.faultf("fst requires a memory operand")
		}
		addr, addrRefs := m.effectiveAddr(in.Dst)
		topRef := m.regRef(m.fpuTopReg())
		v := m.fpuTop()
		var bits uint64
		if in.Dst.Width == 4 {
			bits = uint64(math.Float32bits(float32(v)))
		} else {
			bits = math.Float64bits(v)
		}
		m.Mem.Write(addr, in.Dst.Width, bits)
		if rec != nil {
			rec.addrRefs = append(rec.addrRefs, addrRefs...)
			rec.memAddr = uint64(addr)
			rec.hasMem = true
			rec.access(in.Addr, addr, in.Dst.Width, true)
		}
		rec.effect(memRefF(addr, in.Dst.Width, v), trace.OpIdentity, topRef)
		if in.Op == isa.FSTP {
			m.fpuPop()
		}

	case isa.FISTP:
		if in.Dst.Kind != isa.KindMem {
			return m.faultf("fistp requires a memory operand")
		}
		addr, addrRefs := m.effectiveAddr(in.Dst)
		topRef := m.regRef(m.fpuTopReg())
		v := m.fpuTop()
		iv := int64(math.RoundToEven(v))
		m.Mem.Write(addr, in.Dst.Width, maskWidth(uint64(iv), in.Dst.Width))
		if rec != nil {
			rec.addrRefs = append(rec.addrRefs, addrRefs...)
			rec.memAddr = uint64(addr)
			rec.hasMem = true
			rec.access(in.Addr, addr, in.Dst.Width, true)
		}
		rec.effect(memRef(addr, in.Dst.Width, maskWidth(uint64(iv), in.Dst.Width)), trace.OpFPToInt, topRef)
		m.fpuPop()

	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		v, src, err := m.operandFloat(in, in.Dst, rec)
		if err != nil {
			return err
		}
		topRef := m.regRef(m.fpuTopReg())
		a := m.fpuTop()
		var res float64
		var op trace.ExprOp
		switch in.Op {
		case isa.FADD:
			res, op = a+v, trace.OpFAdd
		case isa.FSUB:
			res, op = a-v, trace.OpFSub
		case isa.FMUL:
			res, op = a*v, trace.OpFMul
		case isa.FDIV:
			res, op = a/v, trace.OpFDiv
		}
		m.fpuReplaceTop(res)
		rec.effect(m.regRef(m.fpuTopReg()), op, topRef, src)

	case isa.FADDP, isa.FMULP:
		st0Ref := m.regRef(m.fpuTopReg())
		st1Reg := m.fpuST(1)
		st1Ref := m.regRef(st1Reg)
		a := m.fregs[st1Reg-isa.F0]
		b := m.fpuTop()
		var res float64
		var op trace.ExprOp
		if in.Op == isa.FADDP {
			res, op = a+b, trace.OpFAdd
		} else {
			res, op = a*b, trace.OpFMul
		}
		m.fregs[st1Reg-isa.F0] = res
		m.fpuPop()
		rec.effect(m.regRef(st1Reg), op, st1Ref, st0Ref)

	case isa.FXCH:
		st0 := m.fpuTopReg()
		st1 := m.fpuST(1)
		r0, r1 := m.regRef(st0), m.regRef(st1)
		m.fregs[st0-isa.F0], m.fregs[st1-isa.F0] = m.fregs[st1-isa.F0], m.fregs[st0-isa.F0]
		rec.effect(m.regRef(st0), trace.OpIdentity, r1)
		rec.effect(m.regRef(st1), trace.OpIdentity, r0)
	}
	return nil
}
