// Package vm emulates the x86-like ISA defined in internal/isa and provides
// the instrumentation Helium needs: basic-block coverage, memory tracing,
// detailed dynamic instruction traces with resolved operand locations, and
// page-granularity memory dumps.
//
// It plays the role DynamoRIO plays for the original system (paper section
// 2): the analyses never look at the emulator itself, only at the captured
// artifacts defined in internal/trace.
package vm

import "fmt"

// pageSize is the granularity of the sparse memory map and of memory dumps.
const pageSize = 4096

// Memory is a sparse, page-based 32-bit address space.
type Memory struct {
	pages map[uint32]*[pageSize]byte
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	base := addr &^ (pageSize - 1)
	p, ok := m.pages[base]
	if !ok && create {
		p = new([pageSize]byte)
		m.pages[base] = p
	}
	return p
}

// LoadByte returns the byte at addr; unmapped memory reads as zero.
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// StoreByte stores a byte at addr, mapping the page if necessary.
func (m *Memory) StoreByte(addr uint32, v byte) {
	p := m.page(addr, true)
	p[addr&(pageSize-1)] = v
}

// Read returns width bytes starting at addr as a little-endian unsigned
// integer.  Width must be 1, 2, 4 or 8.
func (m *Memory) Read(addr uint32, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v |= uint64(m.LoadByte(addr+uint32(i))) << (8 * i)
	}
	return v
}

// Write stores width bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint32, width int, v uint64) {
	for i := 0; i < width; i++ {
		m.StoreByte(addr+uint32(i), byte(v>>(8*i)))
	}
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint32(i))
	}
	return out
}

// WriteBytes copies data into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.StoreByte(addr+uint32(i), b)
	}
}

// PageBytes returns a copy of the page containing addr.
func (m *Memory) PageBytes(addr uint32) []byte {
	out := make([]byte, pageSize)
	if p := m.page(addr, false); p != nil {
		copy(out, p[:])
	}
	return out
}

// MappedPages returns the number of mapped pages, for diagnostics.
func (m *Memory) MappedPages() int { return len(m.pages) }

// String summarises the memory map.
func (m *Memory) String() string {
	return fmt.Sprintf("memory{%d pages}", len(m.pages))
}
