package vm

import (
	"fmt"

	"helium/internal/faultpoint"
	"helium/internal/isa"
	"helium/internal/trace"
)

// DefaultMaxSteps bounds a run when the caller does not specify a limit.
const DefaultMaxSteps uint64 = 500_000_000

// fpTruncateTrace fails the trace run after a short prefix, modeling a
// capture that died mid-filter (the paper's traces come from an external
// Pin tool, which can be killed or run out of disk).
var fpTruncateTrace = faultpoint.Register("trace.truncate",
	"abort the instruction trace after 256 records")

// fpTruncateAfter is the record count at which the armed faultpoint fires.
const fpTruncateAfter = 256

// Edge is a dynamic control-flow edge between two basic block leaders.
type Edge struct {
	From, To uint32
}

// CoverageOptions configures an instrumented coverage/profiling run
// (paper section 3.1).
type CoverageOptions struct {
	// MaxSteps bounds the number of executed instructions (0 = default).
	MaxSteps uint64
	// InstrumentBlocks restricts instrumentation to the given block leaders.
	// A nil map instruments every block (used for the initial coverage
	// screening runs); the second profiling run passes the coverage
	// difference here.
	InstrumentBlocks map[uint32]bool
	// TraceMemory collects a memory access trace for instrumented blocks.
	TraceMemory bool
}

// CoverageResult is the outcome of a coverage/profiling run.
type CoverageResult struct {
	// Blocks maps basic block leader addresses to execution counts.
	Blocks map[uint32]uint64
	// Edges maps predecessor edges between instrumented blocks to counts.
	Edges map[Edge]uint64
	// CallTargets maps call instruction addresses to the set of dynamic
	// callee entry addresses.
	CallTargets map[uint32]map[uint32]bool
	// MemTrace is the memory access trace of instrumented blocks (only when
	// TraceMemory was set).
	MemTrace []trace.MemAccess
	// Steps is the number of instructions executed.
	Steps uint64
}

// Covered returns the set of covered block leaders.
func (r *CoverageResult) Covered() map[uint32]bool {
	out := make(map[uint32]bool, len(r.Blocks))
	for b := range r.Blocks {
		out[b] = true
	}
	return out
}

// RunCoverage executes the program from its current state until it halts,
// collecting basic block coverage, dynamic control-flow edges, call targets
// and (optionally) a memory trace.
func (m *Machine) RunCoverage(opts CoverageOptions) (*CoverageResult, error) {
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	leaders := m.Prog.Leaders()
	res := &CoverageResult{
		Blocks:      make(map[uint32]uint64),
		Edges:       make(map[Edge]uint64),
		CallTargets: make(map[uint32]map[uint32]bool),
	}
	rec := &stepRecord{}
	var curBlock uint32
	var haveBlock bool
	curInstrumented := true

	for !m.halted {
		if m.steps >= maxSteps {
			return nil, fmt.Errorf("vm: %s exceeded %d steps during coverage run", m.Prog.Name, maxSteps)
		}
		eip := m.eip
		if leaders[eip] {
			instrumented := opts.InstrumentBlocks == nil || opts.InstrumentBlocks[eip]
			if instrumented {
				res.Blocks[eip]++
				if haveBlock && curInstrumented {
					res.Edges[Edge{From: curBlock, To: eip}]++
				}
			}
			curBlock, haveBlock, curInstrumented = eip, true, instrumented
		}
		idx, ok := m.Prog.Lookup(eip)
		if !ok {
			return nil, m.faultf("no instruction at eip")
		}
		in := m.Prog.Insts[idx]
		if in.Op == isa.CALL && in.Sym == "" && curInstrumented {
			if res.CallTargets[in.Addr] == nil {
				res.CallTargets[in.Addr] = make(map[uint32]bool)
			}
			res.CallTargets[in.Addr][in.Target] = true
		}

		var r *stepRecord
		if opts.TraceMemory && curInstrumented {
			rec.reset()
			r = rec
		}
		if err := m.step(r); err != nil {
			return nil, err
		}
		if r != nil && len(r.accesses) > 0 {
			res.MemTrace = append(res.MemTrace, r.accesses...)
		}
	}
	res.Steps = m.steps
	return res, nil
}

// TraceOptions configures a detailed instruction trace capture run
// (paper section 4.1).
type TraceOptions struct {
	// MaxSteps bounds the number of executed instructions (0 = default).
	MaxSteps uint64
	// FilterEntry is the entry address of the filter function selected by
	// code localization.  Tracing is active from each entry to the matching
	// return and includes functions the filter calls.
	FilterEntry uint32
	// MaxTraceInsts bounds the number of captured dynamic instructions
	// (0 = unlimited).
	MaxTraceInsts int
}

// StreamResult is the outcome of a streaming trace run: everything RunTrace
// reports except the collected instruction records, which went to the sink.
type StreamResult struct {
	// Dump is the page-granularity memory dump of memory touched by the
	// filter function: read pages captured eagerly, written pages at filter
	// exit.
	Dump *trace.MemDump
	// FilterCalls is the number of times the filter function was entered.
	FilterCalls int
	// Insts is the number of dynamic instruction records emitted.
	Insts int
	// Steps is the total number of instructions executed (traced or not).
	Steps uint64
}

// TraceResult is the outcome of a batch trace capture run.
type TraceResult struct {
	// Trace is the captured dynamic instruction trace.
	Trace *trace.InstTrace
	// Dump is the page-granularity memory dump of memory touched by the
	// filter function: read pages captured eagerly, written pages at filter
	// exit.
	Dump *trace.MemDump
	// FilterCalls is the number of times the filter function was entered.
	FilterCalls int
	// Steps is the total number of instructions executed (traced or not).
	Steps uint64
}

// RunTraceStream executes the program from its current state until it
// halts, streaming one trace.DynInst per dynamic instruction executed
// inside the filter function (including its callees) to sink.  The memory
// dump is still accumulated here because only the emulator can snapshot
// pages before later writes disturb them.
func (m *Machine) RunTraceStream(opts TraceOptions, sink trace.Sink) (*StreamResult, error) {
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	res := &StreamResult{
		Dump: trace.NewMemDump(pageSize),
	}
	writtenPages := make(map[uint64]bool)
	dumpWritten := func() {
		for page := range writtenPages {
			res.Dump.Pages[page] = m.Mem.PageBytes(uint32(page))
		}
	}

	rec := &stepRecord{}
	tracing := false
	entryDepth := 0

	for !m.halted {
		if m.steps >= maxSteps {
			return nil, fmt.Errorf("vm: %s exceeded %d steps during trace run", m.Prog.Name, maxSteps)
		}
		if !tracing && m.eip == opts.FilterEntry {
			tracing = true
			entryDepth = m.callDepth
			res.FilterCalls++
		}
		var r *stepRecord
		if tracing {
			rec.reset()
			r = rec
		}
		if err := m.step(r); err != nil {
			return nil, err
		}
		if r != nil {
			di := trace.DynInst{
				Seq:     res.Insts,
				Addr:    r.instAddr,
				Op:      r.op,
				Width:   r.width,
				Taken:   r.taken,
				Sym:     r.sym,
				MemAddr: r.memAddr,
				HasMem:  r.hasMem,
			}
			if len(r.effects) > 0 {
				di.Effects = append([]trace.Effect(nil), r.effects...)
			}
			if len(r.addrRefs) > 0 {
				di.AddrRefs = append([]trace.Ref(nil), r.addrRefs...)
			}
			if err := sink.Emit(di); err != nil {
				return nil, err
			}
			res.Insts++
			if opts.MaxTraceInsts > 0 && res.Insts > opts.MaxTraceInsts {
				return nil, fmt.Errorf("vm: trace exceeded %d instructions", opts.MaxTraceInsts)
			}
			if res.Insts == fpTruncateAfter && faultpoint.Enabled(fpTruncateTrace) {
				return nil, fmt.Errorf("vm: trace capture aborted after %d records (injected fault %s)", res.Insts, fpTruncateTrace)
			}
			// Memory dump: read pages are captured eagerly (before any later
			// write can disturb them), written pages at filter exit.
			for _, acc := range r.accesses {
				page := acc.Addr &^ uint64(pageSize-1)
				if acc.Write {
					writtenPages[page] = true
				} else if _, ok := res.Dump.Pages[page]; !ok {
					res.Dump.Pages[page] = m.Mem.PageBytes(uint32(page))
				}
			}
			if tracing && m.callDepth < entryDepth {
				tracing = false
				dumpWritten()
			}
		}
	}
	dumpWritten()
	res.Steps = m.steps
	return res, nil
}

// RunTrace is the batch form of RunTraceStream: it collects the streamed
// records into an InstTrace with its write index built, ready for the
// backward analysis.
func (m *Machine) RunTrace(opts TraceOptions) (*TraceResult, error) {
	t := &trace.InstTrace{}
	sr, err := m.RunTraceStream(opts, t)
	if err != nil {
		return nil, err
	}
	t.BuildWriteIndex()
	return &TraceResult{
		Trace:       t,
		Dump:        sr.Dump,
		FilterCalls: sr.FilterCalls,
		Steps:       sr.Steps,
	}, nil
}

// Run executes the program from its current state until it halts, without
// instrumentation.  It is used by harnesses that only need the program's
// output (for example to validate lifted kernels against the original).
func (m *Machine) Run(maxSteps uint64) error {
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	for !m.halted {
		if m.steps >= maxSteps {
			return fmt.Errorf("vm: %s exceeded %d steps", m.Prog.Name, maxSteps)
		}
		if err := m.step(nil); err != nil {
			return err
		}
	}
	return nil
}
