package vm

import (
	"fmt"
	"math"

	"helium/internal/isa"
	"helium/internal/trace"
)

// Address space layout conventions used by the legacy corpus and the test
// harnesses.  They are conventions only; the analyses never rely on them.
const (
	// StackTop is the initial stack pointer.
	StackTop uint32 = 0x0ff0000
	// ParamBlock is the address of the host parameter block read by program
	// entry points (input/output buffer pointers, sizes, flags).
	ParamBlock uint32 = 0x0800000
	// HeapBase is where harnesses place image buffers.
	HeapBase uint32 = 0x1000000
	// retSentinel is pushed as the return address of the outermost call; the
	// machine halts when control returns to it.
	retSentinel uint32 = 0xffffffff
)

// ImportHandler implements an external library function.  The handler
// receives the machine so it can read its argument from the floating point
// stack (the corpus convention: argument and result in st0).
type ImportHandler func(m *Machine) error

// DefaultImports returns the known external library functions Helium
// special-cases (paper section 4.7, "Known library calls").
func DefaultImports() map[string]ImportHandler {
	return map[string]ImportHandler{
		"sqrt":  func(m *Machine) error { m.fpuReplaceTop(math.Sqrt(m.fpuTop())); return nil },
		"floor": func(m *Machine) error { m.fpuReplaceTop(math.Floor(m.fpuTop())); return nil },
		"ceil":  func(m *Machine) error { m.fpuReplaceTop(math.Ceil(m.fpuTop())); return nil },
		"exp":   func(m *Machine) error { m.fpuReplaceTop(math.Exp(m.fpuTop())); return nil },
		"log":   func(m *Machine) error { m.fpuReplaceTop(math.Log(m.fpuTop())); return nil },
	}
}

// flags models the subset of EFLAGS the corpus relies on.
type flags struct {
	zf, sf, cf, of bool
}

func (f flags) pack() uint64 {
	var v uint64
	if f.zf {
		v |= 1 << 6
	}
	if f.sf {
		v |= 1 << 7
	}
	if f.cf {
		v |= 1
	}
	if f.of {
		v |= 1 << 11
	}
	return v
}

// Machine is a single-threaded emulator for an isa.Program.
type Machine struct {
	Prog *isa.Program
	Mem  *Memory

	// Imports maps external symbols to their implementations.
	Imports map[string]ImportHandler

	regs  [8]uint32  // EAX..EDI indexed by reg-EAX
	fregs [8]float64 // physical floating point registers
	ftop  int        // physical index of the current top of stack
	fcnt  int        // number of live stack entries (for diagnostics)
	flag  flags
	eip   uint32

	callDepth int
	halted    bool
	steps     uint64
}

// NewMachine returns a machine loaded with the program's data segments and
// ready to run from the program entry point.
func NewMachine(p *isa.Program) *Machine {
	m := &Machine{Prog: p, Imports: DefaultImports()}
	m.Reset()
	return m
}

// Reset clears registers and memory, reloads the program's data segments
// and re-arms the entry point.  Buffers written by a previous run are
// discarded; harnesses repopulate the parameter block and input buffers
// after calling Reset.
func (m *Machine) Reset() {
	m.Mem = NewMemory()
	for _, seg := range m.Prog.Data {
		m.Mem.WriteBytes(seg.Addr, seg.Data)
	}
	m.regs = [8]uint32{}
	m.fregs = [8]float64{}
	m.ftop = 0
	m.fcnt = 0
	m.flag = flags{}
	m.eip = m.Prog.Entry
	m.halted = false
	m.callDepth = 0
	m.steps = 0
	// Arrange for the outermost return to halt the machine.
	m.regs[isa.ESP-isa.EAX] = StackTop
	m.push32(retSentinel)
}

// Steps returns the number of instructions executed since the last Reset.
func (m *Machine) Steps() uint64 { return m.steps }

// Halted reports whether the program has returned from its entry point.
func (m *Machine) Halted() bool { return m.halted }

// EIP returns the current instruction pointer.
func (m *Machine) EIP() uint32 { return m.eip }

// CallDepth returns the current dynamic call nesting depth.
func (m *Machine) CallDepth() int { return m.callDepth }

// Reg returns the value of a register (any width view).
func (m *Machine) Reg(r isa.Reg) uint32 { return uint32(m.readReg(r)) }

// SetReg sets the value of a register (any width view).
func (m *Machine) SetReg(r isa.Reg, v uint32) { m.writeReg(r, uint64(v)) }

// readReg returns the zero-extended value of the register view r.
func (m *Machine) readReg(r isa.Reg) uint64 {
	if r.IsFloat() {
		return math.Float64bits(m.fregs[r-isa.F0])
	}
	if !r.IsGP() {
		// Hostile instructions can name EFLAGS or out-of-range register
		// encodings as data operands; they read as zero rather than
		// indexing outside the GP file.
		return 0
	}
	full := m.regs[r.Full()-isa.EAX]
	switch r.Width() {
	case 4:
		return uint64(full)
	case 2:
		return uint64(full & 0xffff)
	case 1:
		return uint64((full >> (8 * uint(r.Offset()))) & 0xff)
	}
	return 0
}

// writeReg writes v into the register view r, merging into the containing
// full register for narrow views (as x86 does).
func (m *Machine) writeReg(r isa.Reg, v uint64) {
	if r.IsFloat() {
		m.fregs[r-isa.F0] = math.Float64frombits(v)
		return
	}
	if !r.IsGP() {
		// Writes through non-GP register views are dropped (see readReg).
		return
	}
	idx := r.Full() - isa.EAX
	full := m.regs[idx]
	switch r.Width() {
	case 4:
		full = uint32(v)
	case 2:
		full = (full &^ 0xffff) | uint32(v&0xffff)
	case 1:
		shift := 8 * uint(r.Offset())
		full = (full &^ (0xff << shift)) | (uint32(v&0xff) << shift)
	}
	m.regs[idx] = full
}

// fpu helpers.

func (m *Machine) fpuPush(v float64) isa.Reg {
	m.ftop = (m.ftop + 7) % 8
	m.fregs[m.ftop] = v
	m.fcnt++
	return isa.F0 + isa.Reg(m.ftop)
}

func (m *Machine) fpuPop() (float64, isa.Reg) {
	r := isa.F0 + isa.Reg(m.ftop)
	v := m.fregs[m.ftop]
	m.ftop = (m.ftop + 1) % 8
	if m.fcnt > 0 {
		m.fcnt--
	}
	return v, r
}

func (m *Machine) fpuTop() float64 { return m.fregs[m.ftop] }

func (m *Machine) fpuTopReg() isa.Reg { return isa.F0 + isa.Reg(m.ftop) }

func (m *Machine) fpuST(i int) isa.Reg { return isa.F0 + isa.Reg((m.ftop+i)%8) }

func (m *Machine) fpuReplaceTop(v float64) { m.fregs[m.ftop] = v }

// stack helpers.

func (m *Machine) push32(v uint32) {
	esp := m.regs[isa.ESP-isa.EAX] - 4
	m.regs[isa.ESP-isa.EAX] = esp
	m.Mem.Write(esp, 4, uint64(v))
}

func (m *Machine) pop32() uint32 {
	esp := m.regs[isa.ESP-isa.EAX]
	v := uint32(m.Mem.Read(esp, 4))
	m.regs[isa.ESP-isa.EAX] = esp + 4
	return v
}

// effectiveAddr computes the absolute address of a memory operand and
// returns the register references used to form it.
func (m *Machine) effectiveAddr(o isa.Operand) (uint32, []trace.Ref) {
	var addr uint32
	var refs []trace.Ref
	if o.Base != isa.RegNone {
		v := uint32(m.readReg(o.Base))
		addr += v
		refs = append(refs, m.regRef(o.Base))
	}
	if o.Index != isa.RegNone {
		v := uint32(m.readReg(o.Index))
		addr += v * uint32(o.Scale)
		refs = append(refs, m.regRef(o.Index))
	}
	addr += uint32(o.Disp)
	return addr, refs
}

// regRef builds a trace.Ref for the current value of a register view.
func (m *Machine) regRef(r isa.Reg) trace.Ref {
	ref := trace.Ref{
		Space: trace.SpaceReg,
		Addr:  trace.RegAddr(r),
		Width: uint8(r.Width()),
		Val:   m.readReg(r),
	}
	if r.IsFloat() {
		ref.Float = true
		ref.FVal = m.fregs[r-isa.F0]
	}
	return ref
}

// memRef builds a trace.Ref for a memory location holding the given value.
func memRef(addr uint32, width int, val uint64) trace.Ref {
	return trace.Ref{Space: trace.SpaceMem, Addr: uint64(addr), Width: uint8(width), Val: val}
}

// memRefF builds a trace.Ref for a floating point memory location.
func memRefF(addr uint32, width int, fval float64) trace.Ref {
	var bits uint64
	if width == 4 {
		bits = uint64(math.Float32bits(float32(fval)))
	} else {
		bits = math.Float64bits(fval)
	}
	return trace.Ref{Space: trace.SpaceMem, Addr: uint64(addr), Width: uint8(width), Val: bits, Float: true, FVal: fval}
}

// immRef builds a trace.Ref for an immediate.
func immRef(v int64) trace.Ref {
	return trace.Ref{Space: trace.SpaceImm, Width: 4, Val: uint64(v)}
}

// flagsRef builds a trace.Ref for the flags register with its packed value.
func (m *Machine) flagsRef() trace.Ref {
	return trace.Ref{Space: trace.SpaceFlags, Addr: trace.FlagsAddr, Width: 4, Val: m.flag.pack()}
}

// fault describes an emulation error with the offending address.
type fault struct {
	addr uint32
	msg  string
}

func (f *fault) Error() string {
	return fmt.Sprintf("vm: fault at %#x: %s", f.addr, f.msg)
}

func (m *Machine) faultf(format string, args ...any) error {
	return &fault{addr: m.eip, msg: fmt.Sprintf(format, args...)}
}
