// Package asm provides a small program builder ("assembler") used to
// construct the legacy binary corpus in internal/legacy (brighten, boxblur3
// and sharpen, each wrapped in a host-application-like main).
//
// The builder assigns virtual addresses, resolves labels, lays out data
// segments and produces an isa.Program.  It is deliberately low level: the
// legacy kernels are written instruction by instruction, with the loop
// unrolling, peeling and tile-driver structure of the optimized binaries
// Helium targets, so that the dynamic analyses in internal/lift face the
// same obfuscation the paper describes.
package asm

import (
	"fmt"

	"helium/internal/isa"
)

// CodeBase is the virtual address where program text is laid out.
const CodeBase uint32 = 0x00401000

// DataBase is the virtual address where read-only data segments are laid
// out.
const DataBase uint32 = 0x00600000

// pendingInst is an instruction whose branch target may still be a label.
type pendingInst struct {
	inst  isa.Inst
	label string // non-empty for unresolved branch/call targets
}

// Builder accumulates instructions and data and produces an isa.Program.
type Builder struct {
	name     string
	insts    []pendingInst
	labels   map[string]int // label -> instruction index
	data     []isa.Segment
	dataNext uint32
	err      error
}

// New returns a builder for a program with the given name.
func New(name string) *Builder {
	return &Builder{
		name:     name,
		labels:   make(map[string]int),
		dataNext: DataBase,
	}
}

// Err returns the first error recorded while building, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Label defines a label at the current position.  Branches may reference
// labels before or after their definition.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.setErr(fmt.Errorf("asm: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.insts)
}

// Data appends a read-only data segment and returns its virtual address.
func (b *Builder) Data(bytes []byte) uint32 {
	addr := b.dataNext
	seg := isa.Segment{Addr: addr, Data: append([]byte(nil), bytes...)}
	b.data = append(b.data, seg)
	// Round the next segment up to a 64-byte boundary so segments never
	// touch, which keeps buffer structure reconstruction honest.
	sz := uint32(len(bytes))
	b.dataNext += (sz + 63) &^ 63
	if sz == 0 {
		b.dataNext += 64
	}
	return addr
}

// Emit appends a fully formed instruction.
func (b *Builder) Emit(in isa.Inst) {
	b.insts = append(b.insts, pendingInst{inst: in})
}

// emit2 appends a two-operand instruction.
func (b *Builder) emit2(op isa.Opcode, dst, src isa.Operand) {
	b.Emit(isa.Inst{Op: op, Dst: dst, Src: src})
}

// emit1 appends a one-operand instruction.
func (b *Builder) emit1(op isa.Opcode, dst isa.Operand) {
	b.Emit(isa.Inst{Op: op, Dst: dst})
}

// Mov emits mov dst, src.
func (b *Builder) Mov(dst, src isa.Operand) { b.emit2(isa.MOV, dst, src) }

// Movzx emits movzx dst, src (zero extension).
func (b *Builder) Movzx(dst, src isa.Operand) { b.emit2(isa.MOVZX, dst, src) }

// Movsx emits movsx dst, src (sign extension).
func (b *Builder) Movsx(dst, src isa.Operand) { b.emit2(isa.MOVSX, dst, src) }

// Lea emits lea dst, [mem].
func (b *Builder) Lea(dst isa.Reg, mem isa.Operand) { b.emit2(isa.LEA, isa.RegOp(dst), mem) }

// Add emits add dst, src.
func (b *Builder) Add(dst, src isa.Operand) { b.emit2(isa.ADD, dst, src) }

// Adc emits adc dst, src.
func (b *Builder) Adc(dst, src isa.Operand) { b.emit2(isa.ADC, dst, src) }

// Sub emits sub dst, src.
func (b *Builder) Sub(dst, src isa.Operand) { b.emit2(isa.SUB, dst, src) }

// Sbb emits sbb dst, src.
func (b *Builder) Sbb(dst, src isa.Operand) { b.emit2(isa.SBB, dst, src) }

// Imul emits imul dst, src.
func (b *Builder) Imul(dst, src isa.Operand) { b.emit2(isa.IMUL, dst, src) }

// Imul3 emits the three operand form imul dst, src, imm.
func (b *Builder) Imul3(dst isa.Reg, src isa.Operand, imm int64) {
	b.Emit(isa.Inst{Op: isa.IMUL, Dst: isa.RegOp(dst), Src: src, Src2: isa.ImmOp(imm)})
}

// And emits and dst, src.
func (b *Builder) And(dst, src isa.Operand) { b.emit2(isa.AND, dst, src) }

// Or emits or dst, src.
func (b *Builder) Or(dst, src isa.Operand) { b.emit2(isa.OR, dst, src) }

// Xor emits xor dst, src.
func (b *Builder) Xor(dst, src isa.Operand) { b.emit2(isa.XOR, dst, src) }

// Not emits not dst.
func (b *Builder) Not(dst isa.Operand) { b.emit1(isa.NOT, dst) }

// Neg emits neg dst.
func (b *Builder) Neg(dst isa.Operand) { b.emit1(isa.NEG, dst) }

// Inc emits inc dst.
func (b *Builder) Inc(dst isa.Operand) { b.emit1(isa.INC, dst) }

// Dec emits dec dst.
func (b *Builder) Dec(dst isa.Operand) { b.emit1(isa.DEC, dst) }

// Shl emits shl dst, imm.
func (b *Builder) Shl(dst isa.Operand, imm int64) { b.emit2(isa.SHL, dst, isa.ImmOp(imm)) }

// Shr emits shr dst, imm.
func (b *Builder) Shr(dst isa.Operand, imm int64) { b.emit2(isa.SHR, dst, isa.ImmOp(imm)) }

// Sar emits sar dst, imm.
func (b *Builder) Sar(dst isa.Operand, imm int64) { b.emit2(isa.SAR, dst, isa.ImmOp(imm)) }

// Mul emits mul src (unsigned EDX:EAX = EAX * src).
func (b *Builder) Mul(src isa.Operand) { b.emit1(isa.MUL, src) }

// Div emits div src (unsigned EAX = EAX / src, EDX = remainder).
func (b *Builder) Div(src isa.Operand) { b.emit1(isa.DIV, src) }

// Cmp emits cmp a, b.
func (b *Builder) Cmp(a, c isa.Operand) { b.emit2(isa.CMP, a, c) }

// Test emits test a, b.
func (b *Builder) Test(a, c isa.Operand) { b.emit2(isa.TEST, a, c) }

// Push emits push src.
func (b *Builder) Push(src isa.Operand) { b.emit1(isa.PUSH, src) }

// Pop emits pop dst.
func (b *Builder) Pop(dst isa.Operand) { b.emit1(isa.POP, dst) }

// Nop emits a nop.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.NOP}) }

// Cpuid emits cpuid.
func (b *Builder) Cpuid() { b.Emit(isa.Inst{Op: isa.CPUID}) }

// Ret emits ret.
func (b *Builder) Ret() { b.Emit(isa.Inst{Op: isa.RET}) }

// Jmp emits an unconditional jump to the label.
func (b *Builder) Jmp(label string) { b.jump(isa.JMP, label) }

// Jcc emits a conditional jump with the given opcode to the label.
func (b *Builder) Jcc(op isa.Opcode, label string) {
	if !op.IsCondJump() {
		b.setErr(fmt.Errorf("asm: %v is not a conditional jump", op))
		return
	}
	b.jump(op, label)
}

func (b *Builder) jump(op isa.Opcode, label string) {
	b.insts = append(b.insts, pendingInst{inst: isa.Inst{Op: op}, label: label})
}

// Call emits a call to the label (an internal function).
func (b *Builder) Call(label string) {
	b.insts = append(b.insts, pendingInst{inst: isa.Inst{Op: isa.CALL}, label: label})
}

// CallSym emits a call to an imported external function such as "sqrt".
func (b *Builder) CallSym(sym string) {
	b.Emit(isa.Inst{Op: isa.CALL, Sym: sym})
}

// Fld emits fld src (push floating point value).
func (b *Builder) Fld(src isa.Operand) { b.emit1(isa.FLD, src) }

// Fild emits fild src (push integer converted to floating point).
func (b *Builder) Fild(src isa.Operand) { b.emit1(isa.FILD, src) }

// Fstp emits fstp dst (store top of stack and pop).
func (b *Builder) Fstp(dst isa.Operand) { b.emit1(isa.FSTP, dst) }

// Fistp emits fistp dst (store rounded integer and pop).
func (b *Builder) Fistp(dst isa.Operand) { b.emit1(isa.FISTP, dst) }

// Fadd emits fadd src (st0 += src).
func (b *Builder) Fadd(src isa.Operand) { b.emit1(isa.FADD, src) }

// Fsub emits fsub src (st0 -= src).
func (b *Builder) Fsub(src isa.Operand) { b.emit1(isa.FSUB, src) }

// Fmul emits fmul src (st0 *= src).
func (b *Builder) Fmul(src isa.Operand) { b.emit1(isa.FMUL, src) }

// Fdiv emits fdiv src (st0 /= src).
func (b *Builder) Fdiv(src isa.Operand) { b.emit1(isa.FDIV, src) }

// Faddp emits faddp (st1 = st1 + st0, pop).
func (b *Builder) Faddp() { b.Emit(isa.Inst{Op: isa.FADDP}) }

// Fmulp emits fmulp (st1 = st1 * st0, pop).
func (b *Builder) Fmulp() { b.Emit(isa.Inst{Op: isa.FMULP}) }

// Fldz emits fldz (push +0.0).
func (b *Builder) Fldz() { b.Emit(isa.Inst{Op: isa.FLDZ}) }

// Prologue emits the conventional function prologue
//
//	push ebp; mov ebp, esp; sub esp, frameSize
//
// used by the legacy kernels so arguments are at [ebp+8], [ebp+12], ... and
// locals below ebp.
func (b *Builder) Prologue(frameSize int32) {
	b.Push(isa.RegOp(isa.EBP))
	b.Mov(isa.RegOp(isa.EBP), isa.RegOp(isa.ESP))
	if frameSize > 0 {
		b.Sub(isa.RegOp(isa.ESP), isa.ImmOp(int64(frameSize)))
	}
}

// Epilogue emits the matching epilogue: mov esp, ebp; pop ebp; ret.
func (b *Builder) Epilogue() {
	b.Mov(isa.RegOp(isa.ESP), isa.RegOp(isa.EBP))
	b.Pop(isa.RegOp(isa.EBP))
	b.Ret()
}

// Arg returns the memory operand of the n-th (0-based) 32-bit stack
// argument of a function built with Prologue.
func Arg(n int) isa.Operand {
	return isa.Mem(isa.EBP, int32(8+4*n), 4)
}

// Local returns the memory operand of a 32-bit local at the given negative
// frame offset (1 => [ebp-4], 2 => [ebp-8], ...).
func Local(n int) isa.Operand {
	return isa.Mem(isa.EBP, int32(-4*n), 4)
}

// instLen returns the pseudo encoded length of an instruction.  The exact
// values are unimportant; they only need to be stable so addresses look
// like real, variable-length x86.
func instLen(in isa.Inst) uint32 {
	n := uint32(1)
	for _, o := range []isa.Operand{in.Dst, in.Src, in.Src2} {
		switch o.Kind {
		case isa.KindReg:
			n++
		case isa.KindImm:
			n += 4
		case isa.KindMem:
			n += 2
			if o.Disp != 0 {
				n += 2
			}
		}
	}
	if in.Op.IsJump() || in.Op == isa.CALL {
		n += 4
	}
	return n
}

// Build assigns addresses, resolves labels and returns the finished
// program.  The entry point is the first instruction unless a label named
// "main" exists, in which case that label is the entry point.
func (b *Builder) Build() (*isa.Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.insts) == 0 {
		return nil, fmt.Errorf("asm: program %q has no instructions", b.name)
	}
	// Assign addresses.
	addrs := make([]uint32, len(b.insts))
	addr := CodeBase
	for i, pi := range b.insts {
		addrs[i] = addr
		addr += instLen(pi.inst)
	}
	// Resolve labels.
	insts := make([]isa.Inst, len(b.insts))
	for i, pi := range b.insts {
		in := pi.inst
		in.Addr = addrs[i]
		if pi.label != "" {
			idx, ok := b.labels[pi.label]
			if !ok {
				return nil, fmt.Errorf("asm: undefined label %q in %s", pi.label, b.name)
			}
			if idx >= len(addrs) {
				return nil, fmt.Errorf("asm: label %q points past end of program", pi.label)
			}
			in.Target = addrs[idx]
		}
		insts[i] = in
	}
	entry := addrs[0]
	if idx, ok := b.labels["main"]; ok {
		entry = addrs[idx]
	}
	p := &isa.Program{
		Name:  b.name,
		Entry: entry,
		Insts: insts,
		Data:  b.data,
	}
	p.BuildIndex()
	return p, nil
}

// MustBuild is like Build but panics on error.  The legacy corpus is
// constructed from literal builder code, so a failure is a programming
// error in this repository, not a runtime condition.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// LabelAddr returns the resolved address of a label in a built program.  It
// is a convenience for tests and the legacy corpus, which need to know
// function entry addresses (for example to check localization results).
func LabelAddr(b *Builder, p *isa.Program, label string) (uint32, bool) {
	idx, ok := b.labels[label]
	if !ok || idx >= len(p.Insts) {
		return 0, false
	}
	return p.Insts[idx].Addr, true
}
