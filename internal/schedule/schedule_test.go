package schedule

import (
	"path/filepath"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		s      *Schedule
		stages int
		ok     bool
	}{
		{"nil", nil, 1, true},
		{"default", Default(), 1, true},
		{"materialize", &Schedule{Fusion: Materialize, Workers: 4}, 1, true},
		{"sliding", &Schedule{Fusion: SlidingWindow, WindowRows: 3}, 2, true},
		{"sliding single-stage", &Schedule{Fusion: SlidingWindow}, 1, false},
		{"unknown fusion", &Schedule{Fusion: "speculate"}, 2, false},
		{"negative workers", &Schedule{Workers: -1}, 1, false},
		{"negative window", &Schedule{WindowRows: -2}, 2, false},
		{"too many stages", &Schedule{Stages: make([]Stage, 3)}, 2, false},
		{"bad lane", &Schedule{Stages: []Stage{{Lane: 24}}}, 1, false},
		{"good lane", &Schedule{Stages: []Stage{{Lane: 32, TileW: 64}}}, 1, true},
		{"negative tile", &Schedule{Stages: []Stage{{TileW: -4}}}, 1, false},
	}
	for _, c := range cases {
		err := c.s.Validate(c.stages)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestFusionKindAndStageAt(t *testing.T) {
	var nilSched *Schedule
	if nilSched.FusionKind() != Materialize {
		t.Errorf("nil schedule fusion = %q, want materialize", nilSched.FusionKind())
	}
	if (&Schedule{}).FusionKind() != Materialize {
		t.Error("empty fusion does not normalize to materialize")
	}
	s := &Schedule{Fusion: SlidingWindow, Stages: []Stage{{TileW: 32}}}
	if s.FusionKind() != SlidingWindow {
		t.Error("explicit slidingWindow lost")
	}
	if got := s.StageAt(0); got.TileW != 32 {
		t.Errorf("StageAt(0) = %+v", got)
	}
	if got := s.StageAt(5); got != (Stage{}) {
		t.Errorf("StageAt(5) = %+v, want zero", got)
	}
	if got := nilSched.StageAt(0); got != (Stage{}) {
		t.Errorf("nil StageAt = %+v, want zero", got)
	}
}

func TestSetRoundTrip(t *testing.T) {
	set := &Set{
		Config:     "40x24 seed 1",
		GoMaxProcs: 1,
		Kernels: map[string]*Schedule{
			"blur2p": {Fusion: SlidingWindow, WindowRows: 3, Workers: 2},
			"boxblur3": {Workers: 1, Stages: []Stage{
				{TileW: 128, TileH: 16, Lane: 16}}},
			"hist256": {},
		},
	}
	path := filepath.Join(t.TempDir(), "schedules.json")
	if err := set.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != set.Config || got.GoMaxProcs != set.GoMaxProcs {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Kernels) != len(set.Kernels) {
		t.Fatalf("kernel count %d, want %d", len(got.Kernels), len(set.Kernels))
	}
	b := got.For("blur2p")
	if b == nil || b.FusionKind() != SlidingWindow || b.WindowRows != 3 || b.Workers != 2 {
		t.Fatalf("blur2p schedule did not round-trip: %+v", b)
	}
	if st := got.For("boxblur3").StageAt(0); st.TileW != 128 || st.Lane != 16 {
		t.Fatalf("boxblur3 stage overrides did not round-trip: %+v", st)
	}
	if got.For("nosuch") != nil {
		t.Fatal("For(unknown) must be nil")
	}
	var nilSet *Set
	if nilSet.For("blur2p") != nil {
		t.Fatal("nil set For must be nil")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	set := &Set{Kernels: map[string]*Schedule{"k": {Fusion: "bogus"}}}
	if err := set.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load must reject an invalid fusion strategy")
	}
}

func TestGrid(t *testing.T) {
	full := Grid(GridOpts{Stages: 2, MinWindow: 3, OutW: 256, OutH: 256, MaxWorkers: 4})
	if len(full) < 8 {
		t.Fatalf("full grid has only %d candidates", len(full))
	}
	if full[0].String() != Default().String() {
		t.Fatalf("grid[0] = %s, want the heuristic default first", full[0])
	}
	seen := map[string]bool{}
	slidingOK := false
	for _, s := range full {
		if err := s.Validate(2); err != nil {
			t.Errorf("grid candidate %s invalid: %v", s, err)
		}
		if seen[s.String()] {
			t.Errorf("duplicate candidate %s", s)
		}
		seen[s.String()] = true
		if s.FusionKind() == SlidingWindow {
			slidingOK = true
			if s.WindowRows != 0 && s.WindowRows < 3 {
				t.Errorf("candidate %s window below the minimum", s)
			}
		}
	}
	if !slidingOK {
		t.Fatal("multi-stage grid has no slidingWindow candidates")
	}

	smoke := Grid(GridOpts{Stages: 2, MinWindow: 3, OutW: 64, OutH: 64, MaxWorkers: 1, Smoke: true})
	if len(smoke) == 0 || len(smoke) >= len(full) {
		t.Fatalf("smoke grid has %d candidates (full %d)", len(smoke), len(full))
	}

	single := Grid(GridOpts{Stages: 1, OutW: 64, OutH: 64, MaxWorkers: 1})
	for _, s := range single {
		if s.FusionKind() == SlidingWindow {
			t.Fatalf("single-stage grid offers fusion candidate %s", s)
		}
	}
}

func TestMatchesMachine(t *testing.T) {
	host := HostMachineKey()
	cases := []struct {
		set  *Set
		want bool
	}{
		{nil, true},                        // no set: nothing to contradict
		{&Set{}, true},                     // unstamped set matches anywhere
		{&Set{Machine: host}, true},        // same class
		{&Set{Machine: "64c/512b"}, false}, // tuned elsewhere
	}
	for _, tc := range cases {
		if got := tc.set.MatchesMachine(host); got != tc.want {
			t.Errorf("MatchesMachine(%+v, %s) = %v, want %v", tc.set, host, got, tc.want)
		}
	}
}
