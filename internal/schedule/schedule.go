// Package schedule is the execution-strategy half of the algorithm/schedule
// split the source paper's speedups rest on.  A lifted kernel (the
// algorithm) says only *what* each output sample is; a Schedule says *how*
// the executors should compute it: how output tiles are blocked, how many
// workers render them, which lane width the register rows run in, and —
// for multi-stage pipelines — whether intermediate stages materialize full
// planes or stream through a sliding window of ring-buffered rows.
//
// Schedules are plain data, decoupled from Program/CompiledKernel: the
// same compiled pipeline runs under any valid schedule and produces
// bit-identical output (values, error positions and error messages), so a
// tuner is free to search the schedule space and keep only the fastest
// candidate.  The tuner (`helium tune`) persists its winners in a
// schedules.json Set consumed by `helium run`, `helium gen` and the
// generated package.
package schedule

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// Fusion names an inter-stage execution strategy for multi-stage
// pipelines.
type Fusion string

const (
	// Materialize computes every stage fully into a freshly allocated
	// intermediate plane before the next stage starts — the baseline
	// strategy, maximally parallel within a stage.
	Materialize Fusion = "materialize"
	// SlidingWindow streams stages: a producer stage computes only the
	// rows its consumer still needs, ring-buffered, so deep pipelines
	// never allocate a full-size intermediate plane.
	SlidingWindow Fusion = "slidingWindow"
)

// Stage is the per-stage half of a schedule.  Zero values mean "use the
// executor's built-in heuristic".
type Stage struct {
	// TileW and TileH override the cache-blocked parallel driver's tile
	// extents (clamped to the stage output); 0 keeps the L1/L2 heuristic.
	TileW int `json:"tile_w,omitempty"`
	TileH int `json:"tile_h,omitempty"`
	// Lane widens the register-row lane type to 8, 16, 32 or 64 bits.  The
	// width-inference pass fixes the narrowest sound lane; a schedule may
	// only widen (narrower requests are clamped up), so any Lane value is
	// safe.  0 keeps the proven minimum.
	Lane int `json:"lane,omitempty"`
}

// Schedule is one kernel's complete execution strategy.
type Schedule struct {
	// Workers is the parallel worker count; 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Fusion is the inter-stage strategy; empty means Materialize.
	Fusion Fusion `json:"fusion,omitempty"`
	// WindowRows is the ring-buffer height per intermediate plane under
	// SlidingWindow; 0 picks the minimal window (the consumer stage's
	// vertical footprint).  Values below the minimum are clamped up.
	WindowRows int `json:"window_rows,omitempty"`
	// Stages holds per-stage overrides; missing entries mean defaults.
	Stages []Stage `json:"stages,omitempty"`
}

// Default returns the heuristic schedule the executors used before the
// schedule layer existed: materialize every stage, GOMAXPROCS workers,
// L1/L2 tile heuristic, proven lanes.
func Default() *Schedule { return &Schedule{} }

// FusionKind returns the effective fusion strategy (empty normalizes to
// Materialize).
func (s *Schedule) FusionKind() Fusion {
	if s == nil || s.Fusion == "" {
		return Materialize
	}
	return s.Fusion
}

// EffectiveWorkers resolves the worker count (0 means GOMAXPROCS).
func (s *Schedule) EffectiveWorkers() int {
	if s == nil || s.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Workers
}

// StageAt returns stage i's overrides, or the zero Stage when the
// schedule does not spell them out.
func (s *Schedule) StageAt(i int) Stage {
	if s == nil || i < 0 || i >= len(s.Stages) {
		return Stage{}
	}
	return s.Stages[i]
}

// Validate checks a schedule against a pipeline of nStages stages.
func (s *Schedule) Validate(nStages int) error {
	if s == nil {
		return nil
	}
	switch s.Fusion {
	case "", Materialize, SlidingWindow:
	default:
		return fmt.Errorf("schedule: unknown fusion strategy %q", s.Fusion)
	}
	if s.FusionKind() == SlidingWindow && nStages < 2 {
		return fmt.Errorf("schedule: slidingWindow fusion needs at least 2 stages, pipeline has %d", nStages)
	}
	if s.Workers < 0 {
		return fmt.Errorf("schedule: negative worker count %d", s.Workers)
	}
	if s.WindowRows < 0 {
		return fmt.Errorf("schedule: negative window rows %d", s.WindowRows)
	}
	if len(s.Stages) > nStages {
		return fmt.Errorf("schedule: %d stage entries for a %d-stage pipeline", len(s.Stages), nStages)
	}
	for i, st := range s.Stages {
		if st.TileW < 0 || st.TileH < 0 {
			return fmt.Errorf("schedule: stage %d: negative tile %dx%d", i, st.TileW, st.TileH)
		}
		switch st.Lane {
		case 0, 8, 16, 32, 64:
		default:
			return fmt.Errorf("schedule: stage %d: lane width %d is not 8, 16, 32 or 64", i, st.Lane)
		}
	}
	return nil
}

// String renders the schedule compactly for reports and logs.
func (s *Schedule) String() string {
	if s == nil {
		return "default"
	}
	out := string(s.FusionKind())
	if s.FusionKind() == SlidingWindow && s.WindowRows > 0 {
		out += fmt.Sprintf("(%d)", s.WindowRows)
	}
	if s.Workers > 0 {
		out += fmt.Sprintf(" workers=%d", s.Workers)
	}
	for i, st := range s.Stages {
		if st == (Stage{}) {
			continue
		}
		out += fmt.Sprintf(" s%d[", i)
		if st.TileW > 0 || st.TileH > 0 {
			out += fmt.Sprintf("tile=%dx%d", st.TileW, st.TileH)
		}
		if st.Lane > 0 {
			out += fmt.Sprintf(" lane=%d", st.Lane)
		}
		out += "]"
	}
	return out
}

// Set is the committed artifact of a tuning run: one winning schedule per
// kernel, plus the configuration it was measured at.
type Set struct {
	// Config describes the lift geometry the schedules were tuned at.
	Config string `json:"config"`
	// GoMaxProcs records the core count of the tuning machine; schedules
	// tuned on one core are honest about not having explored parallelism.
	GoMaxProcs int `json:"gomaxprocs"`
	// Machine is the tuning machine's class key (MachineKey of the tuning
	// run).  Consumers on a different machine class should warn before
	// applying the set: a tile or worker count tuned elsewhere is a
	// hypothesis there, not a measurement.
	Machine string `json:"machine,omitempty"`
	// Kernels maps kernel name to its winning schedule.
	Kernels map[string]*Schedule `json:"kernels"`
}

// MachineKey names the machine class schedules are tuned against: the
// core count the worker sweep saw and the widest register-row lane the
// executors batch at.  It is deliberately coarse — schedules transfer
// across same-shape machines, and anything finer (cache sizes, exact
// CPU model) would invalidate sets too eagerly.
func MachineKey(cores, laneBits int) string {
	return fmt.Sprintf("%dc/%db", cores, laneBits)
}

// HostMachineKey is MachineKey for the current process: GOMAXPROCS cores
// and the 64-bit general registers the pure-Go row loops batch in.
func HostMachineKey() string { return MachineKey(runtime.GOMAXPROCS(0), 64) }

// MatchesMachine reports whether the set's schedules are measurements on
// the given machine class.  A nil set or one with no machine stamp
// matches anywhere: there is nothing to contradict.
func (s *Set) MatchesMachine(host string) bool {
	return s == nil || s.Machine == "" || s.Machine == host
}

// For returns the schedule tuned for a kernel, or nil when the set has
// none (callers fall back to Default).
func (s *Set) For(kernel string) *Schedule {
	if s == nil {
		return nil
	}
	return s.Kernels[kernel]
}

// Load reads a schedule set from a JSON file.
func Load(path string) (*Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var set Set
	if err := json.Unmarshal(data, &set); err != nil {
		return nil, fmt.Errorf("schedule: %s does not parse: %w", path, err)
	}
	for name, sc := range set.Kernels {
		// A set does not know stage counts; validate the parts it can.
		if err := sc.Validate(maxStages); err != nil {
			return nil, fmt.Errorf("schedule: %s: kernel %s: %w", path, name, err)
		}
	}
	return &set, nil
}

// maxStages bounds per-kernel stage entries during set-level validation,
// where the pipeline depth is unknown; per-pipeline Validate calls still
// enforce the real count.
const maxStages = 64

// Save writes the set as stable, human-diffable JSON (map keys sort).
func (s *Set) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// GridOpts configures candidate enumeration for the tuner.
type GridOpts struct {
	// Stages is the pipeline depth; fusion candidates only appear for 2+.
	Stages int
	// MinWindow is the smallest of the chain's per-gap minimal windows
	// (each gap's consumer footprint).  Candidates at or below it are
	// indistinguishable from the minimal-window candidate on every gap
	// and collapse into it; anything above stays distinct, because a
	// window between two gaps' minima still changes the larger gap's
	// ring.
	MinWindow int
	// OutW and OutH bound tile candidates to the output extent.
	OutW, OutH int
	// MaxWorkers caps the worker sweep (usually GOMAXPROCS).
	MaxWorkers int
	// Smoke shrinks the grid to a handful of candidates for CI.
	Smoke bool
}

// Grid enumerates the tuner's candidate schedules, the heuristic default
// first (so the previous hard-coded strategy is always a candidate and the
// winner can never be slower than it).
func Grid(o GridOpts) []*Schedule {
	workers := []int{0}
	if o.MaxWorkers > 1 {
		for w := 1; w <= o.MaxWorkers; w *= 2 {
			workers = append(workers, w)
		}
	}
	tiles := [][2]int{{0, 0}, {64, 8}, {128, 16}, {256, 32}}
	windows := []int{0, 2, 8}
	if o.Smoke {
		workers = workers[:min(2, len(workers))]
		tiles = tiles[:2]
		windows = windows[:2]
	}

	var out []*Schedule
	seen := map[string]bool{}
	// Candidates dedupe by effective semantics, not spelling: Workers 0
	// means GOMAXPROCS (== the explicit MaxWorkers entry), and any window
	// at or below the minimal footprint means the minimal window — the
	// tuner verifies and times every candidate, so a semantic duplicate
	// is pure waste.
	add := func(s *Schedule) {
		n := *s
		if n.Workers == 0 {
			n.Workers = max(o.MaxWorkers, 1)
		}
		if n.FusionKind() == SlidingWindow && n.WindowRows <= o.MinWindow {
			n.WindowRows = 0
		}
		key := n.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, s)
		}
	}
	add(Default())
	for _, w := range workers {
		for _, t := range tiles {
			tw, th := t[0], t[1]
			if tw > o.OutW && o.OutW > 0 || th > o.OutH && o.OutH > 0 {
				continue
			}
			st := Stage{TileW: tw, TileH: th}
			stages := []Stage(nil)
			if st != (Stage{}) {
				stages = make([]Stage, max(o.Stages, 1))
				for i := range stages {
					stages[i] = st
				}
			}
			add(&Schedule{Workers: w, Stages: stages})
			if o.Stages >= 2 {
				for _, win := range windows {
					w2 := win
					if w2 != 0 && w2 < o.MinWindow {
						w2 = o.MinWindow
					}
					add(&Schedule{Workers: w, Fusion: SlidingWindow, WindowRows: w2})
				}
			}
		}
	}
	return out
}
