// Package faultpoint is a minimal fault-injection facility: named points
// in the pipeline consult Enabled and, when armed, fail on purpose.  The
// degradation tests use it to prove the system's failure handling without
// having to construct organically broken inputs for every failure class
// (a truncated trace, a corrupted reconstructed buffer, a stale generated
// backend, a schedule tuned for another machine).
//
// Points are armed programmatically (tests) or through the
// HELIUM_FAULTPOINTS environment variable, a comma-separated list of
// point specs consumed at startup — which is how the CLI smoke tests
// inject faults into `go run ./cmd/helium` without new flags.
//
// A spec is a point name with an optional activation mode:
//
//	name        always on (every Enabled check fires)
//	name:0.1    probabilistic: each check fires with probability 0.1
//	name@3      after-N-hits: dormant for the first 2 checks, fires
//	            from the 3rd check on
//
// The intermittent modes exist for chaos testing: a backend that fails
// one request in ten, or a trace that truncates only on the third run,
// exercises retry, degradation and circuit-breaker paths an always-on
// fault can never reach.
package faultpoint

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// EnvVar is the environment variable arming faultpoints at startup.
const EnvVar = "HELIUM_FAULTPOINTS"

// mode is one armed point's activation state.
type mode struct {
	// always fires on every check.
	always bool
	// prob fires each check independently with this probability (0 =
	// mode unused).
	prob float64
	// after fires from the after'th check on (0 = mode unused); hits
	// counts the checks seen so far.
	after, hits uint64
}

var (
	mu      sync.Mutex
	points  = map[string]string{} // name -> doc
	enabled = map[string]*mode{}
	// fired counts, per point, how many Enabled checks actually fired.
	// Cumulative for the process lifetime — Reset disarms points but does
	// NOT clear counts, so metrics built on them stay monotonic (a
	// Prometheus counter must never go backward).
	fired = map[string]uint64{}
	// rand drives the probabilistic mode.  Deterministically seeded: two
	// runs of one binary draw the same stream, so a flaky chaos test can
	// be replayed.  Seed guards determinism for tests that re-seed.
	rand = rng(1)
)

func init() {
	for _, spec := range strings.Split(os.Getenv(EnvVar), ",") {
		if spec = strings.TrimSpace(spec); spec == "" {
			continue
		}
		if err := Arm(spec); err != nil {
			// A typo'd spec must not silently disable the chaos a test
			// thinks it is running under; be loud, then continue.
			fmt.Fprintf(os.Stderr, "faultpoint: %s: %v\n", EnvVar, err)
		}
	}
}

// Register declares a faultpoint with a one-line description of the
// failure it injects.  It returns the name so hosting packages can
// register in a var declaration; registering the same name twice keeps
// the first doc.
func Register(name, doc string) string {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		points[name] = doc
	}
	return name
}

// parseSpec splits a point spec into its name and activation mode.
func parseSpec(spec string) (name string, m mode, err error) {
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = spec[:i]
		p, perr := strconv.ParseFloat(spec[i+1:], 64)
		if perr != nil || p < 0 || p > 1 {
			return "", mode{}, fmt.Errorf("faultpoint: bad probability in %q (want name:p with p in [0,1])", spec)
		}
		return name, mode{prob: p}, nil
	}
	if i := strings.IndexByte(spec, '@'); i >= 0 {
		name = spec[:i]
		n, nerr := strconv.ParseUint(spec[i+1:], 10, 64)
		if nerr != nil || n == 0 {
			return "", mode{}, fmt.Errorf("faultpoint: bad hit count in %q (want name@n with n >= 1)", spec)
		}
		return name, mode{after: n}, nil
	}
	return spec, mode{always: true}, nil
}

// Arm parses one spec (name, name:p or name@n) and arms the point.
func Arm(spec string) error {
	name, m, err := parseSpec(spec)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("faultpoint: empty point name in %q", spec)
	}
	mu.Lock()
	defer mu.Unlock()
	enabled[name] = &m
	return nil
}

// Enabled reports whether the named point fires on this check.  Always-on
// points fire every time; probabilistic points draw independently per
// check; after-N points count checks and fire from the Nth on.
func Enabled(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	m := enabled[name]
	fire := false
	switch {
	case m == nil:
	case m.always:
		fire = true
	case m.after > 0:
		m.hits++
		fire = m.hits >= m.after
	case m.prob > 0:
		fire = float64(rand.next()>>11)/(1<<53) < m.prob
	}
	if fire {
		fired[name]++
	}
	return fire
}

// TriggerCounts returns, per point name, how many Enabled checks have
// fired since process start.  Counts are cumulative (Reset does not
// clear them) so scrape hooks can mirror them into monotonic counters.
func TriggerCounts() map[string]uint64 {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]uint64, len(fired))
	for k, v := range fired {
		out[k] = v
	}
	return out
}

// Enable arms a point always-on programmatically.
func Enable(name string) {
	mu.Lock()
	defer mu.Unlock()
	enabled[name] = &mode{always: true}
}

// EnableProb arms a point probabilistically: each Enabled check fires
// independently with probability p.
func EnableProb(name string, p float64) {
	mu.Lock()
	defer mu.Unlock()
	enabled[name] = &mode{prob: p}
}

// EnableAfter arms a point in after-N-hits mode: the first n-1 Enabled
// checks stay quiet, every check from the nth on fires.
func EnableAfter(name string, n uint64) {
	mu.Lock()
	defer mu.Unlock()
	enabled[name] = &mode{after: n}
}

// Disable disarms a point.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(enabled, name)
}

// Reset disarms every point (the environment variable is not re-read).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	enabled = map[string]*mode{}
}

// Seed re-seeds the probabilistic draw stream, so tests asserting
// statistical bounds are deterministic regardless of what ran before.
func Seed(s uint64) {
	mu.Lock()
	defer mu.Unlock()
	rand = rng(s)
}

// Known returns the registered point names, sorted, with their docs.
func Known() map[string]string {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]string, len(points))
	for k, v := range points {
		out[k] = v
	}
	return out
}

// Names returns the registered point names, sorted.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(points))
	for k := range points {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// rng is a splitmix64 stream, deterministic and dependency-free.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
