// Package faultpoint is a minimal fault-injection facility: named points
// in the pipeline consult Enabled and, when armed, fail on purpose.  The
// degradation tests use it to prove the system's failure handling without
// having to construct organically broken inputs for every failure class
// (a truncated trace, a corrupted reconstructed buffer, a stale generated
// backend, a schedule tuned for another machine).
//
// Points are armed programmatically (tests) or through the
// HELIUM_FAULTPOINTS environment variable, a comma-separated list of
// point names consumed at startup — which is how the CLI smoke tests
// inject faults into `go run ./cmd/helium` without new flags.
package faultpoint

import (
	"os"
	"sort"
	"strings"
	"sync"
)

// EnvVar is the environment variable arming faultpoints at startup.
const EnvVar = "HELIUM_FAULTPOINTS"

var (
	mu      sync.Mutex
	points  = map[string]string{} // name -> doc
	enabled = map[string]bool{}
)

func init() {
	for _, name := range strings.Split(os.Getenv(EnvVar), ",") {
		if name = strings.TrimSpace(name); name != "" {
			enabled[name] = true
		}
	}
}

// Register declares a faultpoint with a one-line description of the
// failure it injects.  It returns the name so hosting packages can
// register in a var declaration; registering the same name twice keeps
// the first doc.
func Register(name, doc string) string {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		points[name] = doc
	}
	return name
}

// Enabled reports whether the named point is armed.
func Enabled(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	return enabled[name]
}

// Enable arms a point programmatically.
func Enable(name string) {
	mu.Lock()
	defer mu.Unlock()
	enabled[name] = true
}

// Disable disarms a point.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(enabled, name)
}

// Reset disarms every point (the environment variable is not re-read).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	enabled = map[string]bool{}
}

// Known returns the registered point names, sorted, with their docs.
func Known() map[string]string {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]string, len(points))
	for k, v := range points {
		out[k] = v
	}
	return out
}

// Names returns the registered point names, sorted.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(points))
	for k := range points {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
