package faultpoint

import "testing"

func TestEnableDisable(t *testing.T) {
	defer Reset()
	name := Register("test.point", "a test point")
	if Enabled(name) {
		t.Fatalf("point %q armed before Enable", name)
	}
	Enable(name)
	if !Enabled(name) {
		t.Fatalf("point %q not armed after Enable", name)
	}
	Disable(name)
	if Enabled(name) {
		t.Fatalf("point %q still armed after Disable", name)
	}
}

func TestRegisterKeepsFirstDoc(t *testing.T) {
	Register("test.dup", "first")
	Register("test.dup", "second")
	if doc := Known()["test.dup"]; doc != "first" {
		t.Fatalf("duplicate registration overwrote doc: %q", doc)
	}
}

func TestNamesSorted(t *testing.T) {
	Register("test.b", "")
	Register("test.a", "")
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestEnableUnregisteredPoint(t *testing.T) {
	defer Reset()
	Enable("test.unregistered")
	if !Enabled("test.unregistered") {
		t.Fatal("unregistered points must still arm (env var order is arbitrary)")
	}
}
