package faultpoint

import "testing"

func TestEnableDisable(t *testing.T) {
	defer Reset()
	name := Register("test.point", "a test point")
	if Enabled(name) {
		t.Fatalf("point %q armed before Enable", name)
	}
	Enable(name)
	if !Enabled(name) {
		t.Fatalf("point %q not armed after Enable", name)
	}
	Disable(name)
	if Enabled(name) {
		t.Fatalf("point %q still armed after Disable", name)
	}
}

func TestRegisterKeepsFirstDoc(t *testing.T) {
	Register("test.dup", "first")
	Register("test.dup", "second")
	if doc := Known()["test.dup"]; doc != "first" {
		t.Fatalf("duplicate registration overwrote doc: %q", doc)
	}
}

func TestNamesSorted(t *testing.T) {
	Register("test.b", "")
	Register("test.a", "")
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestEnableUnregisteredPoint(t *testing.T) {
	defer Reset()
	Enable("test.unregistered")
	if !Enabled("test.unregistered") {
		t.Fatal("unregistered points must still arm (env var order is arbitrary)")
	}
}

// TestArmSpecSyntax pins the three spec forms: bare name (always on),
// name:p (probabilistic) and name@n (after-N-hits), plus rejection of
// malformed specs.
func TestArmSpecSyntax(t *testing.T) {
	defer Reset()
	if err := Arm("test.always"); err != nil {
		t.Fatalf("Arm bare name: %v", err)
	}
	for i := 0; i < 5; i++ {
		if !Enabled("test.always") {
			t.Fatal("bare spec is not always-on")
		}
	}
	if err := Arm("test.prob:0.5"); err != nil {
		t.Fatalf("Arm probabilistic: %v", err)
	}
	if err := Arm("test.after@2"); err != nil {
		t.Fatalf("Arm after-N: %v", err)
	}
	for _, bad := range []string{"test.x:1.5", "test.x:-0.1", "test.x:zzz", "test.x@0", "test.x@-1", "test.x@abc", ":0.5", "@3"} {
		if err := Arm(bad); err == nil {
			t.Errorf("Arm(%q) accepted a malformed spec", bad)
		}
	}
}

// TestAfterNHits asserts name@n stays dormant for the first n-1 checks
// and fires from the nth on, permanently.
func TestAfterNHits(t *testing.T) {
	defer Reset()
	EnableAfter("test.after", 3)
	for i := 1; i <= 2; i++ {
		if Enabled("test.after") {
			t.Fatalf("after-3 point fired on hit %d", i)
		}
	}
	for i := 3; i <= 6; i++ {
		if !Enabled("test.after") {
			t.Fatalf("after-3 point quiet on hit %d", i)
		}
	}
}

// TestProbabilistic asserts name:p fires at roughly the requested rate —
// deterministic under a fixed stream seed — and that the edge rates 0
// and 1 are exact.
func TestProbabilistic(t *testing.T) {
	defer Reset()
	defer Seed(1)
	Seed(42)
	EnableProb("test.prob", 0.3)
	fired := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		if Enabled("test.prob") {
			fired++
		}
	}
	if fired < draws*2/10 || fired > draws*4/10 {
		t.Fatalf("p=0.3 fired %d/%d times, outside [%d,%d]", fired, draws, draws*2/10, draws*4/10)
	}
	EnableProb("test.never", 0)
	EnableProb("test.surely", 1)
	for i := 0; i < 100; i++ {
		if Enabled("test.never") {
			t.Fatal("p=0 fired")
		}
		if !Enabled("test.surely") {
			t.Fatal("p=1 stayed quiet")
		}
	}
}

// TestTriggerCounts asserts fired checks are counted per point, that
// quiet checks are not, and that Reset leaves the counts alone (they
// back monotonic Prometheus counters).
func TestTriggerCounts(t *testing.T) {
	defer Reset()
	base := TriggerCounts()["test.count"]
	Enable("test.count")
	for i := 0; i < 3; i++ {
		Enabled("test.count")
	}
	Disable("test.count")
	Enabled("test.count") // disarmed: checked but must not count
	if got := TriggerCounts()["test.count"]; got != base+3 {
		t.Fatalf("trigger count = %d, want %d", got, base+3)
	}
	Reset()
	if got := TriggerCounts()["test.count"]; got != base+3 {
		t.Fatalf("Reset cleared trigger counts: %d, want %d", got, base+3)
	}
}

// TestModesReplaceAndReset asserts re-arming replaces the previous mode
// (including its hit counter) and Reset disarms everything.
func TestModesReplaceAndReset(t *testing.T) {
	defer Reset()
	EnableAfter("test.mode", 2)
	Enabled("test.mode") // hit 1: dormant
	Enable("test.mode")  // replace with always-on
	if !Enabled("test.mode") {
		t.Fatal("re-armed always-on point stayed in after-N mode")
	}
	EnableAfter("test.mode", 2) // counter starts over
	if Enabled("test.mode") {
		t.Fatal("re-arming did not reset the hit counter")
	}
	Reset()
	if Enabled("test.mode") {
		t.Fatal("Reset left a point armed")
	}
}
