package image

import (
	"bytes"
	"testing"
)

func TestPlaneGeometry(t *testing.T) {
	cases := []struct {
		w, h, pad  int
		wantStride int
	}{
		{16, 8, 0, 16},
		{17, 8, 0, 32},
		{22, 10, 1, 32},  // 22+2 rounded up
		{30, 4, 1, 32},   // exactly 32
		{1, 1, 0, 16},    // minimum rounds up to one alignment unit
		{62, 3, 1, 64},   // 64 exactly
		{100, 2, 2, 112}, // 104 -> 112
	}
	for _, c := range cases {
		p := NewPlane(c.w, c.h, c.pad)
		if p.Stride != c.wantStride {
			t.Errorf("NewPlane(%d,%d,%d).Stride = %d, want %d", c.w, c.h, c.pad, p.Stride, c.wantStride)
		}
		if p.Stride%Align != 0 {
			t.Errorf("stride %d not %d-byte aligned", p.Stride, Align)
		}
		if len(p.Pix) != p.Stride*(c.h+2*c.pad) {
			t.Errorf("Pix size %d, want %d", len(p.Pix), p.Stride*(c.h+2*c.pad))
		}
	}
}

func TestPlaneIndexRoundTrip(t *testing.T) {
	p := NewPlane(22, 10, 1)
	seen := make(map[int]bool)
	for y := -1; y < p.Height+1; y++ {
		for x := -1; x < p.Width+1; x++ {
			i := p.Index(x, y)
			if i < 0 || i >= len(p.Pix) {
				t.Fatalf("Index(%d,%d) = %d out of range", x, y, i)
			}
			if seen[i] {
				t.Fatalf("Index(%d,%d) = %d collides with another coordinate", x, y, i)
			}
			seen[i] = true
			// Round-trip through the layout equations.
			if wantY := i/p.Stride - p.Pad; wantY != y {
				t.Fatalf("Index(%d,%d): recovered y %d", x, y, wantY)
			}
			if wantX := i%p.Stride - p.Pad; wantX != x {
				t.Fatalf("Index(%d,%d): recovered x %d", x, y, wantX)
			}
		}
	}
}

func TestPlaneInteriorRoundTrip(t *testing.T) {
	p := NewPlane(21, 9, 1)
	p.FillPattern(42)
	in := p.Interior()
	if len(in) != 21*9 {
		t.Fatalf("Interior length %d, want %d", len(in), 21*9)
	}
	q := NewPlane(21, 9, 1)
	q.SetInterior(in)
	if !q.Equal(p) {
		t.Error("SetInterior(Interior()) does not round-trip")
	}
}

func TestPadEdgesClamps(t *testing.T) {
	p := NewPlane(4, 3, 2)
	p.FillPattern(7)
	// Corners of the padding must equal the nearest interior corner.
	if got, want := p.At(-2, -2), p.At(0, 0); got != want {
		t.Errorf("top-left padding %d, want clamped %d", got, want)
	}
	if got, want := p.At(5, 4), p.At(3, 2); got != want {
		t.Errorf("bottom-right padding %d, want clamped %d", got, want)
	}
	if got, want := p.At(2, -1), p.At(2, 0); got != want {
		t.Errorf("top padding %d, want clamped %d", got, want)
	}
}

func TestInterleavedLayout(t *testing.T) {
	im := NewInterleaved(22, 5, 3)
	if im.Stride != 80 { // 66 rounded up to 16
		t.Errorf("Stride = %d, want 80", im.Stride)
	}
	if im.Index(1, 0, 0)-im.Index(0, 0, 0) != 3 {
		t.Error("adjacent pixels are not Channels bytes apart")
	}
	if im.Index(0, 1, 0)-im.Index(0, 0, 0) != im.Stride {
		t.Error("adjacent rows are not Stride bytes apart")
	}
	im.Set(3, 2, 1, 0xAB)
	if im.At(3, 2, 1) != 0xAB {
		t.Error("Set/At do not round-trip")
	}

	im.FillPattern(9)
	in := im.Interior()
	if len(in) != 22*5*3 {
		t.Fatalf("Interior length %d, want %d", len(in), 22*5*3)
	}
	for y := 0; y < im.Height; y++ {
		row := im.Pix[y*im.Stride : y*im.Stride+22*3]
		if !bytes.Equal(in[y*22*3:(y+1)*22*3], row) {
			t.Fatalf("Interior row %d does not match pixel data", y)
		}
	}
}

func TestPlaneFlatMatchesAt(t *testing.T) {
	p := NewPlane(22, 10, 2)
	p.FillPattern(11)
	pix, base, stride := p.Flat()
	for y := -p.Pad; y < p.Height+p.Pad; y++ {
		for x := -p.Pad; x < p.Width+p.Pad; x++ {
			if got, want := pix[base+y*stride+x], p.At(x, y); got != want {
				t.Fatalf("Flat[%d,%d] = %d, want At = %d", x, y, got, want)
			}
		}
	}
}

func TestInterleavedFlatMatchesAt(t *testing.T) {
	im := NewInterleaved(13, 7, 3)
	im.FillPattern(12)
	pix, base, stride, pixStep := im.Flat()
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			for c := 0; c < im.Channels; c++ {
				if got, want := pix[base+y*stride+x*pixStep+c], im.At(x, y, c); got != want {
					t.Fatalf("Flat[%d,%d,%d] = %d, want At = %d", x, y, c, got, want)
				}
			}
		}
	}
}

func TestFillPatternDeterministic(t *testing.T) {
	a := NewPlane(16, 16, 0)
	b := NewPlane(16, 16, 0)
	a.FillPattern(5)
	b.FillPattern(5)
	if !a.Equal(b) {
		t.Error("FillPattern is not deterministic for equal seeds")
	}
	c := NewPlane(16, 16, 0)
	c.FillPattern(6)
	if a.Equal(c) {
		t.Error("different seeds produced identical planes")
	}
	if a.DiffCount(c, 0) == 0 {
		t.Error("DiffCount reports no differing pixels for different seeds")
	}
}
