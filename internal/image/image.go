// Package image provides the pixel buffer layouts used by the legacy
// applications in this reproduction and by the lifted kernels: padded planar
// 8-bit planes (the Photoshop-like layout described in paper section 4.3)
// and interleaved RGB rows (the IrfanView-like layout).
//
// All content is generated deterministically so analyses and tests are
// reproducible without external image files.
package image

import "fmt"

// Align is the scanline alignment in bytes used by the planar layout.
const Align = 16

// Plane is a single 8-bit channel with optional edge padding and scanlines
// rounded up to Align bytes, exactly the layout Helium reverse engineers
// for Photoshop ("pads each edge by one pixel, then rounds each scanline up
// ... for 16-byte alignment").
type Plane struct {
	// Width and Height are the interior (unpadded) extents in pixels.
	Width, Height int
	// Pad is the edge padding in pixels on every side.
	Pad int
	// Stride is the distance in bytes between the starts of consecutive
	// scanlines (covers interior plus padding, rounded up to Align).
	Stride int
	// Pix holds Stride*(Height+2*Pad) bytes.
	Pix []byte
}

// NewPlane allocates a plane with the given interior size and edge padding.
func NewPlane(width, height, pad int) *Plane {
	if width <= 0 || height <= 0 || pad < 0 {
		panic(fmt.Sprintf("image: invalid plane dimensions %dx%d pad %d", width, height, pad))
	}
	stride := (width + 2*pad + Align - 1) / Align * Align
	return &Plane{
		Width:  width,
		Height: height,
		Pad:    pad,
		Stride: stride,
		Pix:    make([]byte, stride*(height+2*pad)),
	}
}

// Index returns the offset into Pix of interior pixel (x, y).  Coordinates
// may extend into the padding (negative or >= extent) by up to Pad pixels.
func (p *Plane) Index(x, y int) int {
	return (y+p.Pad)*p.Stride + (x + p.Pad)
}

// At returns the pixel at interior coordinates (x, y).
func (p *Plane) At(x, y int) byte { return p.Pix[p.Index(x, y)] }

// Set stores a pixel at interior coordinates (x, y).
func (p *Plane) Set(x, y int, v byte) { p.Pix[p.Index(x, y)] = v }

// Flat exposes the plane's raw backing for flat-index addressing: pixel
// (x, y) lives at pix[base + y*stride + x], for interior and padding
// coordinates alike.  The compiled IR backend uses this to fold a stencil
// tap into a single indexed load with no per-sample interface dispatch.
func (p *Plane) Flat() (pix []byte, base, stride int) {
	return p.Pix, p.Index(0, 0), p.Stride
}

// Interior returns a copy of the interior pixels in row-major order,
// without padding.  This is the "known input data" Helium searches for in
// the memory dump during dimensionality inference.
func (p *Plane) Interior() []byte {
	out := make([]byte, 0, p.Width*p.Height)
	for y := 0; y < p.Height; y++ {
		row := p.Index(0, y)
		out = append(out, p.Pix[row:row+p.Width]...)
	}
	return out
}

// SetInterior fills the interior from row-major data of size Width*Height.
func (p *Plane) SetInterior(data []byte) {
	if len(data) != p.Width*p.Height {
		panic(fmt.Sprintf("image: interior size mismatch: got %d want %d", len(data), p.Width*p.Height))
	}
	for y := 0; y < p.Height; y++ {
		copy(p.Pix[p.Index(0, y):], data[y*p.Width:(y+1)*p.Width])
	}
}

// FillPattern fills the interior with a deterministic pseudo-random pattern
// derived from seed and replicates edge pixels into the padding.
func (p *Plane) FillPattern(seed uint64) {
	r := rng(seed)
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			p.Set(x, y, byte(r.next()))
		}
	}
	p.PadEdges()
}

// PadEdges replicates the nearest interior pixel into the padding region
// (clamp-to-edge), the boundary handling the Photoshop-like host uses.
func (p *Plane) PadEdges() {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	for y := -p.Pad; y < p.Height+p.Pad; y++ {
		for x := -p.Pad; x < p.Width+p.Pad; x++ {
			if x >= 0 && x < p.Width && y >= 0 && y < p.Height {
				continue
			}
			p.Set(x, y, p.At(clamp(x, 0, p.Width-1), clamp(y, 0, p.Height-1)))
		}
	}
}

// Clone returns a deep copy of the plane.
func (p *Plane) Clone() *Plane {
	q := *p
	q.Pix = append([]byte(nil), p.Pix...)
	return &q
}

// Equal reports whether two planes have identical geometry and interior
// pixels (padding is ignored).
func (p *Plane) Equal(q *Plane) bool {
	if p.Width != q.Width || p.Height != q.Height {
		return false
	}
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			if p.At(x, y) != q.At(x, y) {
				return false
			}
		}
	}
	return true
}

// DiffCount returns the number of interior pixels whose absolute difference
// exceeds tol.
func (p *Plane) DiffCount(q *Plane, tol int) int {
	n := 0
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			d := int(p.At(x, y)) - int(q.At(x, y))
			if d < 0 {
				d = -d
			}
			if d > tol {
				n++
			}
		}
	}
	return n
}

// PlanarImage is a set of planes (one per channel) stored consecutively in
// memory, the Photoshop-like layout ("stores the R, G and B planes of a
// color image separately").
type PlanarImage struct {
	Planes []*Plane
}

// NewPlanarImage allocates channels planes of the given geometry.
func NewPlanarImage(width, height, pad, channels int) *PlanarImage {
	img := &PlanarImage{}
	for i := 0; i < channels; i++ {
		img.Planes = append(img.Planes, NewPlane(width, height, pad))
	}
	return img
}

// FillPattern fills every plane with a deterministic pattern.
func (img *PlanarImage) FillPattern(seed uint64) {
	for i, p := range img.Planes {
		p.FillPattern(seed + uint64(i)*7919)
	}
}

// PlaneSize returns the byte size of a single plane buffer.
func (img *PlanarImage) PlaneSize() int {
	p := img.Planes[0]
	return p.Stride * (p.Height + 2*p.Pad)
}

// Bytes concatenates all plane buffers (padding included) in channel order,
// which is exactly how the planar image is laid out in the emulated heap.
func (img *PlanarImage) Bytes() []byte {
	out := make([]byte, 0, img.PlaneSize()*len(img.Planes))
	for _, p := range img.Planes {
		out = append(out, p.Pix...)
	}
	return out
}

// SetBytes overwrites all plane buffers from a concatenated layout produced
// by Bytes.
func (img *PlanarImage) SetBytes(data []byte) {
	sz := img.PlaneSize()
	if len(data) != sz*len(img.Planes) {
		panic(fmt.Sprintf("image: planar byte size mismatch: got %d want %d", len(data), sz*len(img.Planes)))
	}
	for i, p := range img.Planes {
		copy(p.Pix, data[i*sz:(i+1)*sz])
	}
}

// Interleaved is an interleaved multi-channel 8-bit image (RGBRGB...), the
// IrfanView-like layout, with scanlines rounded up to Align bytes.
type Interleaved struct {
	// Width and Height are the extents in pixels; Channels is the number of
	// interleaved samples per pixel.
	Width, Height, Channels int
	// Stride is the distance in bytes between scanline starts.
	Stride int
	// Pix holds Stride*Height bytes.
	Pix []byte
}

// NewInterleaved allocates an interleaved image.
func NewInterleaved(width, height, channels int) *Interleaved {
	if width <= 0 || height <= 0 || channels <= 0 {
		panic(fmt.Sprintf("image: invalid interleaved dimensions %dx%dx%d", width, height, channels))
	}
	stride := (width*channels + Align - 1) / Align * Align
	return &Interleaved{
		Width: width, Height: height, Channels: channels,
		Stride: stride,
		Pix:    make([]byte, stride*height),
	}
}

// Index returns the offset of channel c of pixel (x, y).
func (im *Interleaved) Index(x, y, c int) int {
	return y*im.Stride + x*im.Channels + c
}

// At returns channel c of pixel (x, y).
func (im *Interleaved) At(x, y, c int) byte { return im.Pix[im.Index(x, y, c)] }

// Flat exposes the raw backing for flat-index addressing: channel c of
// pixel (x, y) lives at pix[base + y*stride + x*pixStep + c].
func (im *Interleaved) Flat() (pix []byte, base, stride, pixStep int) {
	return im.Pix, 0, im.Stride, im.Channels
}

// Set stores channel c of pixel (x, y).
func (im *Interleaved) Set(x, y, c int, v byte) { im.Pix[im.Index(x, y, c)] = v }

// FillPattern fills the image with a deterministic pseudo-random pattern.
func (im *Interleaved) FillPattern(seed uint64) {
	r := rng(seed)
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			for c := 0; c < im.Channels; c++ {
				im.Set(x, y, c, byte(r.next()))
			}
		}
	}
}

// Interior returns a copy of the pixel samples in row-major order without
// the alignment padding at the end of each scanline.
func (im *Interleaved) Interior() []byte {
	out := make([]byte, 0, im.Width*im.Height*im.Channels)
	for y := 0; y < im.Height; y++ {
		row := y * im.Stride
		out = append(out, im.Pix[row:row+im.Width*im.Channels]...)
	}
	return out
}

// Clone returns a deep copy of the image.
func (im *Interleaved) Clone() *Interleaved {
	q := *im
	q.Pix = append([]byte(nil), im.Pix...)
	return &q
}

// DiffCount returns the number of samples whose absolute difference
// exceeds tol.
func (im *Interleaved) DiffCount(q *Interleaved, tol int) int {
	n := 0
	for y := 0; y < im.Height; y++ {
		for x := 0; x < im.Width; x++ {
			for c := 0; c < im.Channels; c++ {
				d := int(im.At(x, y, c)) - int(q.At(x, y, c))
				if d < 0 {
					d = -d
				}
				if d > tol {
					n++
				}
			}
		}
	}
	return n
}

// rng is a tiny splitmix64 generator so image content is deterministic and
// independent of math/rand behaviour across Go versions.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
