package liftedkernels

// The bounds-check gate: the emitter brackets every unrolled batch loop
// and scalar tail with `// bce:begin` / `// bce:end` markers and promises
// the compiler's prove pass discharges every access between them.  This
// test recompiles the package with -d=ssa/check_bce and fails if any
// IsInBounds / IsSliceInBounds diagnostic lands inside a marker range —
// the head-cutting loop idiom regressing (say, back to a counted
// `s[x+k]` form the prove pass cannot handle) breaks the build, not just
// the benchmark numbers.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// bceAllowlist holds "file.go:line" positions whose surviving bounds
// check is understood and accepted.  It is empty on purpose: nothing
// inside the markers is allowed to check today, and any addition needs a
// written justification here.
var bceAllowlist = map[string]string{}

// markerRanges scans one source file for bce:begin/bce:end pairs and
// returns the half-open line ranges between them.
func markerRanges(t *testing.T, path string) [][2]int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	var ranges [][2]int
	open := 0
	for i, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.Contains(line, "// bce:begin"):
			if open != 0 {
				t.Fatalf("%s:%d: nested bce:begin (previous at line %d)", path, i+1, open)
			}
			open = i + 1
		case strings.Contains(line, "// bce:end"):
			if open == 0 {
				t.Fatalf("%s:%d: bce:end without bce:begin", path, i+1)
			}
			ranges = append(ranges, [2]int{open, i + 1})
			open = 0
		}
	}
	if open != 0 {
		t.Fatalf("%s:%d: unterminated bce:begin", path, open)
	}
	return ranges
}

// goList runs `go list` with the given format over this package.
func goList(t *testing.T, format string) string {
	t.Helper()
	cmd := exec.Command("go", "list", "-deps", "-export", "-f", format, ".")
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("go list: %v\n%s", err, ee.Stderr)
		}
		t.Fatalf("go list: %v", err)
	}
	return string(out)
}

// TestGeneratedLoopsAreBoundsCheckFree recompiles the package with the
// check_bce debug flag and asserts zero bounds-check diagnostics inside
// the emitter's bce:begin/bce:end markers.  Diagnostics outside the
// markers (runtime helpers, checked edge loops) are expected and ignored
// — only the hot unrolled loops carry the guarantee.
func TestGeneratedLoopsAreBoundsCheckFree(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}

	// The build cache suppresses compiler diagnostics on cache hits, so
	// `go build -gcflags` is not a reliable gate.  Compile the package
	// directly instead: an importcfg from `go list -export` supplies the
	// dependency export data, and `go tool compile` always runs fresh.
	importcfg := goList(t, "{{if .Export}}packagefile {{.ImportPath}}={{.Export}}{{end}}")
	cfgPath := filepath.Join(t.TempDir(), "importcfg")
	if err := os.WriteFile(cfgPath, []byte(importcfg), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "list", "-f", "{{.ImportPath}}\n{{range .GoFiles}}{{.}}\n{{end}}", ".")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list files: %v", err)
	}
	lines := strings.Fields(string(out))
	if len(lines) < 2 {
		t.Fatalf("go list returned no source files: %q", out)
	}
	pkgPath, files := lines[0], lines[1:]

	ranges := map[string][][2]int{}
	for _, f := range files {
		ranges[f] = markerRanges(t, f)
	}

	args := []string{"tool", "compile", "-p", pkgPath, "-importcfg", cfgPath,
		"-d=ssa/check_bce", "-o", filepath.Join(t.TempDir(), "out.o")}
	args = append(args, files...)
	diag, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool compile: %v\n%s", err, diag)
	}

	diagRe := regexp.MustCompile(`(?m)^(?:.*/)?([^/:]+\.go):(\d+):\d+: Found Is(?:Slice)?InBounds$`)
	total, inside := 0, 0
	for _, m := range diagRe.FindAllStringSubmatch(string(diag), -1) {
		total++
		file := m[1]
		line, _ := strconv.Atoi(m[2])
		for _, r := range ranges[file] {
			if line > r[0] && line < r[1] {
				inside++
				key := fmt.Sprintf("%s:%d", file, line)
				if why, ok := bceAllowlist[key]; ok {
					t.Logf("allowlisted bounds check at %s (%s)", key, why)
					continue
				}
				t.Errorf("bounds check survives inside bce markers at %s (range %d-%d)", key, r[0], r[1])
			}
		}
	}
	if total == 0 {
		// A gate that never sees a diagnostic is a gate that silently
		// stopped working (flag renamed, output format changed).  The
		// runtime helpers always carry a few legitimate checks.
		t.Fatalf("check_bce produced zero diagnostics anywhere — the gate is not measuring")
	}
	t.Logf("check_bce: %d diagnostics total, %d inside markers", total, inside)
}
