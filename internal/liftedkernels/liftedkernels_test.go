// End-to-end test of the checked-in generated package (this file is
// handwritten; `helium gen` only rewrites runtime.go and kernels.go).
package liftedkernels_test

import (
	"bytes"
	"testing"

	"helium/internal/ir"
	"helium/internal/legacy"
	"helium/internal/lift"
	"helium/internal/liftedkernels"
)

// genImage mirrors cmd/helium's mapping from evaluator sources onto the
// generated package's flat geometry.
func genImage(src ir.Source) (*liftedkernels.Image, bool) {
	switch s := src.(type) {
	case ir.PlaneSource:
		pix, base, stride := s.P.Flat()
		return &liftedkernels.Image{Pix: pix, Base: base, Stride: stride, PixStep: 1}, true
	case ir.InterleavedSource:
		pix, base, stride, pixStep := s.Im.Flat()
		return &liftedkernels.Image{Pix: pix, Base: base, Stride: stride, PixStep: pixStep, ChanStep: 1}, true
	}
	return nil, false
}

// TestGeneratedKernelsMatchVM lifts the corpus at a geometry and seed
// different from the one the package was generated at, and demands the
// generated code reproduce the legacy binaries' own output byte for byte —
// the generated row loops are size-generic, only their registration
// defaults record the gen-time geometry.
func TestGeneratedKernelsMatchVM(t *testing.T) {
	cfg := legacy.Config{Width: 33, Height: 17, Seed: 9}
	if len(liftedkernels.Kernels()) == 0 {
		t.Fatal("generated registry is empty (run `helium gen`)")
	}
	for _, k := range legacy.Kernels() {
		inst := k.Instantiate(cfg)
		res, err := lift.Lift(k.Name, lift.Target{
			Prog:  inst.Prog,
			Setup: inst.Setup,
			Known: lift.KnownInput{
				Width: inst.Width, Height: inst.Height, Channels: inst.Channels,
				Interleaved: inst.Interleaved, Interior: inst.InputInterior,
			},
		})
		if err != nil {
			t.Fatalf("%s: lift: %v", k.Name, err)
		}
		gk, ok := liftedkernels.Lookup(k.Name)
		if !ok {
			t.Fatalf("%s: not in the generated registry (run `helium gen`)", k.Name)
		}
		img, ok := genImage(res.MaterializeInput())
		if !ok {
			t.Fatalf("%s: input cannot be materialized as a flat image", k.Name)
		}
		w, h := res.EvalDims()
		got, err := gk.Eval(img, w, h)
		if err != nil {
			t.Fatalf("%s: generated eval: %v", k.Name, err)
		}
		want, err := res.VMOutput()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if !bytes.Equal(got, want) {
			bad := 0
			for i := range got {
				if got[i] != want[i] {
					bad++
				}
			}
			t.Errorf("%s: generated output differs from the VM's on %d/%d samples at %s", k.Name, bad, len(want), cfg)
		}
		if gk.DefaultWidth == w && gk.DefaultHeight == h {
			t.Errorf("%s: test geometry %dx%d accidentally equals the gen-time default; pick a different size",
				k.Name, gk.DefaultWidth, gk.DefaultHeight)
		}
	}
}
