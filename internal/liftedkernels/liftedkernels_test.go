// End-to-end test of the checked-in generated package (this file is
// handwritten; `helium gen` only rewrites runtime.go and kernels.go).
package liftedkernels_test

import (
	"bytes"
	"fmt"
	"testing"

	"helium/internal/ir"
	"helium/internal/legacy"
	"helium/internal/lift"
	"helium/internal/liftedkernels"
)

// genImage mirrors cmd/helium's mapping from evaluator sources onto the
// generated package's flat geometry.
func genImage(src ir.Source) (*liftedkernels.Image, bool) {
	switch s := src.(type) {
	case ir.PlaneSource:
		pix, base, stride := s.P.Flat()
		return &liftedkernels.Image{Pix: pix, Base: base, Stride: stride, PixStep: 1}, true
	case ir.InterleavedSource:
		pix, base, stride, pixStep := s.Im.Flat()
		return &liftedkernels.Image{Pix: pix, Base: base, Stride: stride, PixStep: pixStep, ChanStep: 1}, true
	}
	return nil, false
}

// TestGeneratedKernelsMatchVM lifts the corpus at a geometry and seed
// different from the one the package was generated at, and demands the
// generated code reproduce the legacy binaries' own output byte for byte —
// the generated row loops are size-generic, only their registration
// defaults record the gen-time geometry.
func TestGeneratedKernelsMatchVM(t *testing.T) {
	cfg := legacy.Config{Width: 33, Height: 17, Seed: 9}
	if len(liftedkernels.Kernels()) == 0 {
		t.Fatal("generated registry is empty (run `helium gen`)")
	}
	for _, k := range legacy.Kernels() {
		inst := k.Instantiate(cfg)
		res, err := lift.Lift(k.Name, lift.Target{
			Prog:  inst.Prog,
			Setup: inst.Setup,
			Known: lift.KnownInput{
				Width: inst.Width, Height: inst.Height, Channels: inst.Channels,
				Interleaved: inst.Interleaved, Interior: inst.InputInterior,
			},
		})
		if err != nil {
			t.Fatalf("%s: lift: %v", k.Name, err)
		}
		gk, ok := liftedkernels.Lookup(k.Name)
		if !ok {
			t.Fatalf("%s: not in the generated registry (run `helium gen`)", k.Name)
		}
		img, ok := genImage(res.MaterializeInput())
		if !ok {
			t.Fatalf("%s: input cannot be materialized as a flat image", k.Name)
		}
		w, h := res.EvalDims()
		got, err := gk.Eval(img, w, h)
		if err != nil {
			t.Fatalf("%s: generated eval: %v", k.Name, err)
		}
		want, err := res.VMOutput()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if !bytes.Equal(got, want) {
			bad := 0
			for i := range got {
				if got[i] != want[i] {
					bad++
				}
			}
			t.Errorf("%s: generated output differs from the VM's on %d/%d samples at %s", k.Name, bad, len(want), cfg)
		}
		if gk.DefaultWidth == w && gk.DefaultHeight == h {
			t.Errorf("%s: test geometry %dx%d accidentally equals the gen-time default; pick a different size",
				k.Name, gk.DefaultWidth, gk.DefaultHeight)
		}
	}
}

// TestGeneratedHonorsScheduleSpec pins the generated runtime's schedule
// layer: every kernel re-run under non-default schedules — parallel row
// strips, GOMAXPROCS workers, sliding-window fusion for the multi-stage
// pipeline, and the embedded autotuned schedule — must reproduce the
// serial reference Eval byte for byte.
func TestGeneratedHonorsScheduleSpec(t *testing.T) {
	cfg := legacy.Config{Width: 28, Height: 21, Seed: 4}
	fusedSeen := false
	for _, k := range legacy.Kernels() {
		inst := k.Instantiate(cfg)
		res, err := lift.Lift(k.Name, lift.Target{
			Prog:  inst.Prog,
			Setup: inst.Setup,
			Known: lift.KnownInput{
				Width: inst.Width, Height: inst.Height, Channels: inst.Channels,
				Interleaved: inst.Interleaved, Interior: inst.InputInterior,
			},
		})
		if err != nil {
			t.Fatalf("%s: lift: %v", k.Name, err)
		}
		gk, ok := liftedkernels.Lookup(k.Name)
		if !ok {
			t.Fatalf("%s: not in the generated registry", k.Name)
		}
		img, ok := genImage(res.MaterializeInput())
		if !ok {
			t.Fatalf("%s: input cannot be materialized", k.Name)
		}
		w, h := res.EvalDims()
		want, err := gk.Eval(img, w, h)
		if err != nil {
			t.Fatalf("%s: reference eval: %v", k.Name, err)
		}
		specs := []liftedkernels.ScheduleSpec{
			{Workers: 3},
			{Workers: -1}, // GOMAXPROCS
		}
		if len(gk.Stages) >= 2 {
			fusedSeen = true
			specs = append(specs,
				liftedkernels.ScheduleSpec{Workers: 1, Fusion: "slidingWindow"},
				liftedkernels.ScheduleSpec{Workers: 4, Fusion: "slidingWindow", WindowRows: 5},
			)
		}
		for _, spec := range specs {
			got, err := gk.EvalSched(img, w, h, spec)
			if err != nil {
				t.Errorf("%s: EvalSched(%+v): %v", k.Name, spec, err)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: EvalSched(%+v) differs from Eval", k.Name, spec)
			}
		}
		got, err := gk.EvalTuned(img, w, h)
		if err != nil {
			t.Errorf("%s: EvalTuned: %v", k.Name, err)
		} else if !bytes.Equal(got, want) {
			t.Errorf("%s: EvalTuned (schedule %+v) differs from Eval", k.Name, gk.Sched)
		}
	}
	if !fusedSeen {
		t.Error("no multi-stage generated kernel exercised sliding-window fusion")
	}
	if _, err := liftedkernels.Kernels()[0].EvalSched(&liftedkernels.Image{}, 1, 1,
		liftedkernels.ScheduleSpec{Fusion: "bogus"}); err == nil {
		t.Error("EvalSched must reject an unknown fusion strategy")
	}
}

// TestFusedRejectsFootprintOverreads pins the runtime's fusion
// validation: a consumer stage whose recorded read footprint escapes its
// producer's extent must error under slidingWindow rather than silently
// read recycled ring rows (a full materialized plane and a ring wrap
// overreads differently, so fusion must be loud here).
func TestFusedRejectsFootprintOverreads(t *testing.T) {
	zeroRow := func(dst []byte, step int, img *liftedkernels.Image, y, xbase, n int) (int, error) {
		for x := 0; x < n; x++ {
			dst[x*step] = 0
		}
		return -1, nil
	}
	mk := func(s1 liftedkernels.StageSpec) *liftedkernels.Kernel {
		s0 := liftedkernels.StageSpec{Channels: 1, Rows: []liftedkernels.RowFunc{zeroRow}}
		s1.Channels = 1
		s1.Rows = []liftedkernels.RowFunc{zeroRow}
		return &liftedkernels.Kernel{Name: "overread", Channels: 1,
			Stages: []liftedkernels.StageSpec{s0, s1}}
	}
	img := &liftedkernels.Image{Pix: make([]byte, 256), Stride: 16, PixStep: 1}
	sliding := liftedkernels.ScheduleSpec{Workers: 1, Fusion: "slidingWindow"}

	if _, err := mk(liftedkernels.StageSpec{MinDY: 0, MaxDY: 0}).EvalSched(img, 8, 8, sliding); err != nil {
		t.Fatalf("in-footprint chain must fuse: %v", err)
	}
	if _, err := mk(liftedkernels.StageSpec{MinDX: -1}).EvalSched(img, 8, 8, sliding); err == nil {
		t.Error("negative column footprint must not fuse")
	}
	if _, err := mk(liftedkernels.StageSpec{MaxDX: 1}).EvalSched(img, 8, 8, sliding); err == nil {
		t.Error("column footprint past the producer width must not fuse")
	}
	if _, err := mk(liftedkernels.StageSpec{MinDY: -1}).EvalSched(img, 8, 8, sliding); err == nil {
		t.Error("negative row footprint must not fuse")
	}
	if _, err := mk(liftedkernels.StageSpec{MaxDY: 1}).EvalSched(img, 8, 8, sliding); err == nil {
		t.Error("row footprint past the producer height must not fuse")
	}
}

// TestFusedCoversUnconsumedProducerRows pins the generated runtime's
// strip coverage: producer rows below the consumers' footprint (positive
// MinDY) and above it are still produced under sliding-window fusion, so
// a fault confined to them is reported exactly as Eval reports it.
func TestFusedCoversUnconsumedProducerRows(t *testing.T) {
	failAt := func(badY int) liftedkernels.RowFunc {
		return func(dst []byte, step int, img *liftedkernels.Image, y, xbase, n int) (int, error) {
			if y == badY {
				return 2, fmt.Errorf("synthetic fault at row %d", y)
			}
			for x := 0; x < n; x++ {
				dst[x*step] = byte(y)
			}
			return -1, nil
		}
	}
	mk := func(badY int) *liftedkernels.Kernel {
		return &liftedkernels.Kernel{Name: "lowrows", Channels: 1, Stages: []liftedkernels.StageSpec{
			// Producer renders two extra rows; its row badY faults.
			{Channels: 1, DH: 2, Rows: []liftedkernels.RowFunc{failAt(badY)}},
			// Consumer reads producer rows [y+1, y+2]: producer row 0 is
			// never consumed, nor is its last row beyond the pull range.
			{Channels: 1, OriginY: 1, MinDY: 1, MaxDY: 2, Rows: []liftedkernels.RowFunc{failAt(-10)}},
		}}
	}
	img := &liftedkernels.Image{Pix: make([]byte, 1024), Stride: 32, PixStep: 1}
	const w, h = 8, 6
	for _, badY := range []int{0, h + 1} { // below and above the consumed range
		k := mk(badY)
		_, werr := k.Eval(img, w, h)
		if werr == nil {
			t.Fatalf("badY=%d: serial reference did not fault", badY)
		}
		for _, workers := range []int{1, 3} {
			_, gerr := k.EvalSched(img, w, h, liftedkernels.ScheduleSpec{
				Workers: workers, Fusion: "slidingWindow"})
			if gerr == nil || gerr.Error() != werr.Error() {
				t.Errorf("badY=%d workers=%d: fused error %q, want %q", badY, workers, gerr, werr)
			}
		}
	}
}
