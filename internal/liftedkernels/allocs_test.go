// Steady-state allocation gate: the Scratch-based entry points promise
// zero allocations per evaluation once the scratch has warmed up — the
// shape a render loop or benchmark harness relies on.  Single-stage
// kernels (plain and autotuned-tile drivers), the sliding-window fused
// multi-stage pipeline, and the reduction all hold the guarantee.
package liftedkernels_test

import (
	"testing"

	"helium/internal/legacy"
	"helium/internal/lift"
	"helium/internal/liftedkernels"
)

// liftInput lifts one corpus kernel at cfg and returns its generated-
// package image plus output geometry.
func liftInput(t *testing.T, k legacy.Kernel, cfg legacy.Config) (*liftedkernels.Image, int, int) {
	t.Helper()
	inst := k.Instantiate(cfg)
	res, err := lift.Lift(k.Name, lift.Target{
		Prog:  inst.Prog,
		Setup: inst.Setup,
		Known: lift.KnownInput{
			Width: inst.Width, Height: inst.Height, Channels: inst.Channels,
			Interleaved: inst.Interleaved, Interior: inst.InputInterior,
		},
	})
	if err != nil {
		t.Fatalf("%s: lift: %v", k.Name, err)
	}
	img, ok := genImage(res.MaterializeInput())
	if !ok {
		t.Fatalf("%s: input cannot be materialized as a flat image", k.Name)
	}
	w, h := res.EvalDims()
	return img, w, h
}

// TestEvalIntoSteadyStateAllocFree drives every corpus kernel through
// the reusable-scratch entry points and demands AllocsPerRun report
// exactly zero in steady state, under both the serial default and the
// kernel's embedded tuned schedule (forced to one worker — spawning
// goroutines allocates by construction, so the parallel path's scratch
// reuse is covered by the per-worker sub-scratches it draws from the
// same Scratch).
func TestEvalIntoSteadyStateAllocFree(t *testing.T) {
	cfg := legacy.Config{Width: 64, Height: 48, Seed: 3}
	for _, k := range legacy.Kernels() {
		gk, ok := liftedkernels.Lookup(k.Name)
		if !ok {
			t.Fatalf("%s: not in the generated registry (run `helium gen`)", k.Name)
		}
		img, w, h := liftInput(t, k, cfg)

		specs := []struct {
			name string
			spec liftedkernels.ScheduleSpec
		}{
			{"serial", liftedkernels.Serial()},
		}
		tuned := gk.Sched
		tuned.Workers = 1
		specs = append(specs, struct {
			name string
			spec liftedkernels.ScheduleSpec
		}{"embedded-schedule", tuned})

		for _, s := range specs {
			sc := new(liftedkernels.Scratch)
			if _, err := gk.EvalInto(sc, img, w, h, s.spec); err != nil {
				t.Fatalf("%s/%s: EvalInto: %v", k.Name, s.name, err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := gk.EvalInto(sc, img, w, h, s.spec); err != nil {
					t.Fatalf("%s/%s: EvalInto: %v", k.Name, s.name, err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s/%s: EvalInto allocates %.0f times per run in steady state; want 0",
					k.Name, s.name, allocs)
			}
		}

		if gk.Tuned != nil {
			sc := new(liftedkernels.Scratch)
			if _, err := gk.EvalTunedInto(sc, img, w, h); err != nil {
				t.Fatalf("%s: EvalTunedInto: %v", k.Name, err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := gk.EvalTunedInto(sc, img, w, h); err != nil {
					t.Fatalf("%s: EvalTunedInto: %v", k.Name, err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s: EvalTunedInto allocates %.0f times per run in steady state; want 0",
					k.Name, allocs)
			}
		}
	}
}
