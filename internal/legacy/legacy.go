// Package legacy is the corpus of "legacy binaries" the lifting pipeline
// is exercised against: optimized image-processing kernels hand-assembled
// to the ISA in internal/isa, each wrapped in a host-application-like main
// that always performs baseline work (a buffer copy) and applies the filter
// only when the host parameter block requests it.  That on/off switch is
// what lets the two-phase coverage diff of internal/lift localize the
// filter code, exactly like running the real application with and without
// the filter (paper section 3.1).
//
// The kernels exhibit the obfuscations the paper fights: brighten is a
// lookup-table kernel unrolled four ways with a peeled remainder loop,
// boxblur3 runs its unrolled inner loop under a tiled column driver,
// sharpen mixes unrolled x87 floating point code, a known library call and
// branch-free clamping over an interleaved RGB layout, blur2p pipelines
// two separable blur passes through a private scratch plane (multi-stage
// lifting), hist256 accumulates a 256-bin histogram table (reduction
// lifting), clampsharp clamps with real conditional branches (predicated
// lifting), downsample2x and upsample2x walk strided source rows (affine
// index-map lifting), and histeq feeds a cumulative histogram table into a
// per-pixel equalization pass (reduction-consuming stage lifting).
package legacy

import (
	"fmt"

	"helium/internal/asm"
	"helium/internal/isa"
	"helium/internal/vm"
)

// Host parameter block layout (offsets from vm.ParamBlock).  The mains read
// these the way a real legacy application reads its host state; the
// analyses never look at them.
const (
	pbFlag    = 0  // nonzero: apply the filter after the baseline copy
	pbSrcBase = 4  // source buffer base address
	pbDstBase = 8  // destination buffer base address
	pbWidth   = 12 // image width in pixels
	pbHeight  = 16 // image height in pixels
	pbStride  = 20 // scanline stride in bytes
	pbSrcPtr  = 24 // source pointer handed to the filter (interior origin)
	pbDstPtr  = 28 // destination pointer handed to the filter
	pbTotal   = 32 // total buffer size in bytes, for the baseline copy
)

// pb returns the 32-bit memory operand of a parameter block field.
func pb(off int32) isa.Operand {
	return isa.Mem(isa.RegNone, int32(vm.ParamBlock)+off, 4)
}

// Config selects the deterministic workload an instance is built for.
type Config struct {
	Width, Height int
	Seed          uint64
}

// String renders the config compactly for test names.
func (c Config) String() string {
	return fmt.Sprintf("%dx%d seed %d", c.Width, c.Height, c.Seed)
}

// Instance is one legacy binary instantiated for a concrete workload:
// the program, its deterministic input, the harness that plays host, and
// the ground-truth data tests validate the pipeline against.
type Instance struct {
	Name string
	Prog *isa.Program

	// FilterEntry is the ground-truth entry address of the filter function.
	// Only tests may consult it; the pipeline must rediscover it.
	FilterEntry uint32

	// Width, Height and Channels describe the image; Interleaved selects
	// between the planar and interleaved layouts.
	Width, Height, Channels int
	Interleaved             bool

	// RefW and RefH are the dimensions of the filtered output image when
	// they differ from the input (resize kernels); zero means the output
	// mirrors the input dimensions.
	RefW, RefH int

	// InputInterior is the row-major interior of the deterministic input
	// (Width*Channels samples per row), the "known data" the buffer
	// reconstruction searches for.
	InputInterior []byte

	// Reference is the expected full output interior (baseline copy plus
	// filter), computed by a pure Go reimplementation.
	Reference []byte

	// OffReference is the expected output when the filter flag is off —
	// the baseline copy seen through ReadOutput's window.  Nil means the
	// input interior (image filters whose output window mirrors the
	// input); reductions read a table window the copy fills with raw
	// buffer bytes instead.
	OffReference []byte

	setup      func(m *vm.Machine, apply bool)
	readOutput func(m *vm.Machine) []byte
}

// RefDims returns the filtered output dimensions: RefW x RefH when set,
// the input dimensions otherwise.
func (inst *Instance) RefDims() (w, h int) {
	if inst.RefW > 0 && inst.RefH > 0 {
		return inst.RefW, inst.RefH
	}
	return inst.Width, inst.Height
}

// Setup resets the machine and plays host: it loads the input buffers and
// fills the parameter block.  apply selects whether the filter runs.
func (inst *Instance) Setup(m *vm.Machine, apply bool) { inst.setup(m, apply) }

// ReadOutput extracts the full output interior from machine memory after a
// run, in the same row-major sample order as Reference.
func (inst *Instance) ReadOutput(m *vm.Machine) []byte { return inst.readOutput(m) }

// RunVM executes the instance with the filter enabled and returns the
// output interior.
func (inst *Instance) RunVM() ([]byte, error) {
	m := vm.NewMachine(inst.Prog)
	inst.Setup(m, true)
	if err := m.Run(0); err != nil {
		return nil, err
	}
	return inst.ReadOutput(m), nil
}

// Kernel is one corpus entry.
type Kernel struct {
	Name        string
	Description string
	Instantiate func(cfg Config) *Instance
}

// Kernels returns the corpus in a stable order.
func Kernels() []Kernel {
	return []Kernel{
		brightenKernel(), boxBlurKernel(), sharpenKernel(),
		blur2pKernel(), hist256Kernel(), clampSharpKernel(),
		downsample2xKernel(), upsample2xKernel(), histEqKernel(),
	}
}

// Lookup finds a corpus kernel by name.
func Lookup(name string) (Kernel, bool) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// bufAddrs places the source and destination buffers in the emulated heap
// on separate pages, so trace memory dumps of the input are never disturbed
// by output writes.
func bufAddrs(srcSize int) (srcAddr, dstAddr uint32) {
	srcAddr = vm.HeapBase
	dstAddr = srcAddr + uint32((srcSize+0xfff)&^0xfff) + 0x1000
	return srcAddr, dstAddr
}

// writeParams fills the host parameter block.
func writeParams(m *vm.Machine, apply bool, srcBase, dstBase uint32, w, h, stride int, srcPtr, dstPtr uint32, total int) {
	flag := uint64(0)
	if apply {
		flag = 1
	}
	base := vm.ParamBlock
	m.Mem.Write(base+pbFlag, 4, flag)
	m.Mem.Write(base+pbSrcBase, 4, uint64(srcBase))
	m.Mem.Write(base+pbDstBase, 4, uint64(dstBase))
	m.Mem.Write(base+pbWidth, 4, uint64(w))
	m.Mem.Write(base+pbHeight, 4, uint64(h))
	m.Mem.Write(base+pbStride, 4, uint64(stride))
	m.Mem.Write(base+pbSrcPtr, 4, uint64(srcPtr))
	m.Mem.Write(base+pbDstPtr, 4, uint64(dstPtr))
	m.Mem.Write(base+pbTotal, 4, uint64(total))
}

// emitMain emits the host-like entry point: an unconditional baseline copy
// of the whole source buffer, then a call to the filter only when the host
// flag asks for it.  The filter receives (srcPtr, dstPtr, width, height,
// stride) cdecl-style.
func emitMain(b *asm.Builder) {
	eax, esp := isa.RegOp(isa.EAX), isa.RegOp(isa.ESP)
	b.Label("main")
	b.Prologue(0)
	// copy(srcBase, dstBase, total)
	b.Push(pb(pbTotal))
	b.Push(pb(pbDstBase))
	b.Push(pb(pbSrcBase))
	b.Call("copy")
	b.Add(esp, isa.ImmOp(12))
	// if (flag) filter(srcPtr, dstPtr, width, height, stride)
	b.Mov(eax, pb(pbFlag))
	b.Test(eax, eax)
	b.Jcc(isa.JZ, "main_skip")
	b.Push(pb(pbStride))
	b.Push(pb(pbHeight))
	b.Push(pb(pbWidth))
	b.Push(pb(pbDstPtr))
	b.Push(pb(pbSrcPtr))
	b.Call("filter")
	b.Add(esp, isa.ImmOp(20))
	b.Label("main_skip")
	b.Epilogue()
}

// emitCopy emits the baseline byte-copy routine copy(src, dst, n) shared by
// all mains.  It runs in both the filter-on and filter-off executions, so
// its blocks fall out of the coverage diff.
func emitCopy(b *asm.Builder) {
	eax := isa.RegOp(isa.EAX)
	ecx := isa.RegOp(isa.ECX)
	edx := isa.RegOp(isa.EDX)
	esi := isa.RegOp(isa.ESI)
	edi := isa.RegOp(isa.EDI)
	b.Label("copy")
	b.Prologue(0)
	b.Mov(esi, asm.Arg(0))
	b.Mov(edi, asm.Arg(1))
	b.Mov(ecx, asm.Arg(2))
	b.Mov(edx, isa.ImmOp(0))
	b.Label("copy_loop")
	b.Cmp(edx, ecx)
	b.Jcc(isa.JGE, "copy_done")
	b.Movzx(eax, isa.MemOp(isa.ESI, isa.EDX, 1, 0, 1))
	b.Mov(isa.MemOp(isa.EDI, isa.EDX, 1, 0, 1), isa.RegOp(isa.AL))
	b.Inc(edx)
	b.Jmp("copy_loop")
	b.Label("copy_done")
	b.Epilogue()
}

// mustFilterEntry resolves the ground-truth filter entry after a build.
func mustFilterEntry(b *asm.Builder, p *isa.Program) uint32 {
	addr, ok := asm.LabelAddr(b, p, "filter")
	if !ok {
		panic("legacy: program has no filter label")
	}
	return addr
}
