package legacy

import (
	"fmt"

	"helium/internal/asm"
	"helium/internal/isa"
	"helium/internal/vm"
)

// This file is the exported face of the host harness, for builders of
// legacy binaries living outside the package (the randomized fuzzer in
// internal/fuzzgen).  The corpus kernels use the unexported forms
// directly; the semantics are identical.

// EmitHost emits the shared host scaffolding into a builder: the main
// entry (baseline copy, then the filter call gated on the host flag) and
// the baseline copy routine.  The caller emits a "filter" label with
// cdecl signature filter(src, dst, width, height, stride) afterwards.
func EmitHost(b *asm.Builder) {
	emitMain(b)
	emitCopy(b)
}

// BufAddrs places source and destination buffers on separate heap pages
// (see bufAddrs).
func BufAddrs(srcSize int) (srcAddr, dstAddr uint32) {
	return bufAddrs(srcSize)
}

// WriteParams fills the host parameter block for a run.
func WriteParams(m *vm.Machine, apply bool, srcBase, dstBase uint32, w, h, stride int, srcPtr, dstPtr uint32, total int) {
	writeParams(m, apply, srcBase, dstBase, w, h, stride, srcPtr, dstPtr, total)
}

// FilterEntryAddr resolves the ground-truth "filter" label of a built
// program, erroring (not panicking) when the label is missing.
func FilterEntryAddr(b *asm.Builder, p *isa.Program) (uint32, error) {
	addr, ok := asm.LabelAddr(b, p, "filter")
	if !ok {
		return 0, fmt.Errorf("legacy: program %s has no filter label", p.Name)
	}
	return addr, nil
}

// SetHarness installs the instance's host closures: setup resets the
// machine and plays host, readOutput extracts the output interior after a
// run.  Corpus kernels assign the unexported fields directly; external
// builders use this.
func (inst *Instance) SetHarness(setup func(m *vm.Machine, apply bool), readOutput func(m *vm.Machine) []byte) {
	inst.setup = setup
	inst.readOutput = readOutput
}

// RunVMBounded executes the instance with the filter enabled under an
// explicit step budget and returns the output interior.
func (inst *Instance) RunVMBounded(maxSteps uint64) ([]byte, error) {
	m := vm.NewMachine(inst.Prog)
	inst.Setup(m, true)
	if err := m.Run(maxSteps); err != nil {
		return nil, err
	}
	return inst.ReadOutput(m), nil
}
