package legacy

import (
	"helium/internal/asm"
	"helium/internal/image"
	"helium/internal/isa"
	"helium/internal/vm"
)

// brightenAmount is baked into the lookup table at "compile" time, the way
// a shipped legacy binary bakes in its tuning constants.
const brightenAmount = 48

// brightenLUT is the clamped brighten table: lut[v] = min(v+amount, 255).
func brightenLUT() []byte {
	lut := make([]byte, 256)
	for i := range lut {
		v := i + brightenAmount
		if v > 255 {
			v = 255
		}
		lut[i] = byte(v)
	}
	return lut
}

// buildBrighten assembles the brighten legacy binary: a planar 8-bit plane
// is brightened through a 256-entry lookup table, with the inner loop
// unrolled four ways and a peeled remainder loop — the classic shape of an
// optimized table-mapping kernel.
func buildBrighten() (*asm.Builder, *isa.Program) {
	b := asm.New("brighten")
	lutAddr := b.Data(brightenLUT())

	emitMain(b)
	emitCopy(b)

	eax := isa.RegOp(isa.EAX)
	ebx := isa.RegOp(isa.EBX)
	ecx := isa.RegOp(isa.ECX)
	esi := isa.RegOp(isa.ESI)
	edi := isa.RegOp(isa.EDI)
	src, dst, w, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)
	y, rowSrc, rowDst := asm.Local(1), asm.Local(2), asm.Local(3)

	// lane emits one pixel: dst[x+k] = lut[src[x+k]] with x in ecx.
	lane := func(k int32) {
		b.Movzx(eax, isa.MemOp(isa.ESI, isa.ECX, 1, k, 1))
		b.Movzx(eax, isa.MemOp(isa.EAX, isa.RegNone, 0, int32(lutAddr), 1))
		b.Mov(isa.MemOp(isa.EDI, isa.ECX, 1, k, 1), isa.RegOp(isa.AL))
	}

	b.Label("filter") // filter(src, dst, w, h, stride)
	b.Prologue(16)
	b.Mov(eax, src)
	b.Mov(rowSrc, eax)
	b.Mov(eax, dst)
	b.Mov(rowDst, eax)
	b.Mov(y, isa.ImmOp(0))

	b.Label("b_row")
	b.Mov(eax, y)
	b.Cmp(eax, h)
	b.Jcc(isa.JGE, "b_done")
	b.Mov(esi, rowSrc)
	b.Mov(edi, rowDst)
	b.Mov(ecx, isa.ImmOp(0))
	b.Mov(ebx, w)
	b.And(ebx, isa.ImmOp(-4)) // unrolled trip limit w&^3

	b.Label("b_x4")
	b.Cmp(ecx, ebx)
	b.Jcc(isa.JGE, "b_xrem")
	lane(0)
	lane(1)
	lane(2)
	lane(3)
	b.Add(ecx, isa.ImmOp(4))
	b.Jmp("b_x4")

	b.Label("b_xrem") // peeled remainder: up to three trailing pixels
	b.Cmp(ecx, w)
	b.Jcc(isa.JGE, "b_rownext")
	lane(0)
	b.Inc(ecx)
	b.Jmp("b_xrem")

	b.Label("b_rownext")
	b.Mov(eax, rowSrc)
	b.Add(eax, stride)
	b.Mov(rowSrc, eax)
	b.Mov(eax, rowDst)
	b.Add(eax, stride)
	b.Mov(rowDst, eax)
	b.Inc(y)
	b.Jmp("b_row")

	b.Label("b_done")
	b.Epilogue()

	return b, b.MustBuild()
}

func brightenKernel() Kernel {
	return Kernel{
		Name:        "brighten",
		Description: "LUT brighten over a planar 8-bit plane, unrolled x4 with a peeled remainder loop",
		Instantiate: func(cfg Config) *Instance {
			builder, prog := buildBrighten()
			pl := image.NewPlane(cfg.Width, cfg.Height, 0)
			pl.FillPattern(cfg.Seed)
			srcBytes := append([]byte(nil), pl.Pix...)
			srcAddr, dstAddr := bufAddrs(len(srcBytes))

			lut := brightenLUT()
			ref := make([]byte, 0, cfg.Width*cfg.Height)
			for _, s := range pl.Interior() {
				ref = append(ref, lut[s])
			}

			inst := &Instance{
				Name:          "brighten",
				Prog:          prog,
				FilterEntry:   mustFilterEntry(builder, prog),
				Width:         cfg.Width,
				Height:        cfg.Height,
				Channels:      1,
				InputInterior: pl.Interior(),
				Reference:     ref,
			}
			inst.setup = func(m *vm.Machine, apply bool) {
				m.Reset()
				m.Mem.WriteBytes(srcAddr, srcBytes)
				writeParams(m, apply, srcAddr, dstAddr,
					cfg.Width, cfg.Height, pl.Stride,
					srcAddr, dstAddr, len(srcBytes))
			}
			inst.readOutput = func(m *vm.Machine) []byte {
				out := make([]byte, 0, cfg.Width*cfg.Height)
				for yy := 0; yy < cfg.Height; yy++ {
					row := m.Mem.ReadBytes(dstAddr+uint32(yy*pl.Stride), cfg.Width)
					out = append(out, row...)
				}
				return out
			}
			return inst
		},
	}
}
