package legacy

import (
	"helium/internal/asm"
	"helium/internal/image"
	"helium/internal/isa"
	"helium/internal/vm"
)

// buildBoxBlur assembles the 3x3 box blur legacy binary.  The filter is a
// tile driver: it splits the image into two column tiles and calls the
// worker once per tile, the structure optimizing compilers and hand-tuned
// libraries give blocked stencils.  The worker's inner loop is unrolled two
// ways with a peeled remainder pixel.  The source plane carries one pixel
// of edge padding (clamp-to-edge, prepared by the host), so every output
// pixel — edges included — computes the same expression.
func buildBoxBlur() (*asm.Builder, *isa.Program) {
	b := asm.New("boxblur3")

	emitMain(b)
	emitCopy(b)

	eax := isa.RegOp(isa.EAX)
	ebx := isa.RegOp(isa.EBX)
	ecx := isa.RegOp(isa.ECX)
	edx := isa.RegOp(isa.EDX)
	esi := isa.RegOp(isa.ESI)
	edi := isa.RegOp(isa.EDI)
	esp := isa.RegOp(isa.ESP)

	// filter(src, dst, w, h, stride): the tile driver.
	{
		src, dst, w, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)
		xmid := asm.Local(1)
		b.Label("filter")
		b.Prologue(8)
		b.Mov(eax, w)
		b.Shr(eax, 1)
		b.Mov(xmid, eax)
		// tile(src, dst, 0, xmid, h, stride)
		b.Push(stride)
		b.Push(h)
		b.Push(xmid)
		b.Push(isa.ImmOp(0))
		b.Push(dst)
		b.Push(src)
		b.Call("blur_tile")
		b.Add(esp, isa.ImmOp(24))
		// tile(src, dst, xmid, w, h, stride)
		b.Push(stride)
		b.Push(h)
		b.Push(w)
		b.Push(xmid)
		b.Push(dst)
		b.Push(src)
		b.Call("blur_tile")
		b.Add(esp, isa.ImmOp(24))
		b.Epilogue()
	}

	// blur_tile(src, dst, x0, x1, h, stride): blur columns [x0, x1).
	{
		src, dst, x0, x1, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4), asm.Arg(5)
		y := asm.Local(1)

		// lane emits one pixel at x = ecx+k: a nine-sample sum rounded and
		// divided by nine.  esi/edi point at the current source/dest rows.
		lane := func(k int32) {
			// edx walks the three source rows around the pixel.
			b.Lea(isa.EDX, isa.MemOp(isa.ESI, isa.ECX, 1, k, 4))
			b.Sub(edx, stride)
			b.Xor(eax, eax)
			for row := 0; row < 3; row++ {
				if row > 0 {
					b.Add(edx, stride)
				}
				for d := int32(-1); d <= 1; d++ {
					b.Movzx(ebx, isa.Mem(isa.EDX, d, 1))
					b.Add(eax, ebx)
				}
			}
			b.Add(eax, isa.ImmOp(4))
			b.Mov(ebx, isa.ImmOp(9))
			b.Div(ebx)
			b.Mov(isa.MemOp(isa.EDI, isa.ECX, 1, k, 1), isa.RegOp(isa.AL))
		}

		b.Label("blur_tile")
		b.Prologue(8)
		b.Mov(y, isa.ImmOp(0))

		b.Label("t_row")
		b.Mov(eax, y)
		b.Cmp(eax, h)
		b.Jcc(isa.JGE, "t_done")
		b.Mov(eax, y)
		b.Imul(eax, stride)
		b.Mov(esi, src)
		b.Add(esi, eax)
		b.Mov(edi, dst)
		b.Add(edi, eax)
		b.Mov(ecx, x0)

		b.Label("t_x2") // unrolled x2: while x+1 < x1
		b.Lea(isa.EAX, isa.Mem(isa.ECX, 1, 4))
		b.Cmp(eax, x1)
		b.Jcc(isa.JGE, "t_xrem")
		lane(0)
		lane(1)
		b.Add(ecx, isa.ImmOp(2))
		b.Jmp("t_x2")

		b.Label("t_xrem") // peeled remainder: at most one pixel
		b.Cmp(ecx, x1)
		b.Jcc(isa.JGE, "t_rownext")
		lane(0)
		b.Inc(ecx)

		b.Label("t_rownext")
		b.Inc(y)
		b.Jmp("t_row")

		b.Label("t_done")
		b.Epilogue()
	}

	return b, b.MustBuild()
}

func boxBlurKernel() Kernel {
	return Kernel{
		Name:        "boxblur3",
		Description: "3x3 box blur over a padded planar plane, tiled column driver with an unrolled x2 worker",
		Instantiate: func(cfg Config) *Instance {
			builder, prog := buildBoxBlur()
			pl := image.NewPlane(cfg.Width, cfg.Height, 1)
			pl.FillPattern(cfg.Seed) // fills interior and clamps the padding
			srcBytes := append([]byte(nil), pl.Pix...)
			srcAddr, dstAddr := bufAddrs(len(srcBytes))
			origin := pl.Index(0, 0) // interior origin offset inside the buffer

			ref := make([]byte, 0, cfg.Width*cfg.Height)
			for yy := 0; yy < cfg.Height; yy++ {
				for xx := 0; xx < cfg.Width; xx++ {
					sum := 0
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							sum += int(pl.At(xx+dx, yy+dy))
						}
					}
					ref = append(ref, byte((sum+4)/9))
				}
			}

			inst := &Instance{
				Name:          "boxblur3",
				Prog:          prog,
				FilterEntry:   mustFilterEntry(builder, prog),
				Width:         cfg.Width,
				Height:        cfg.Height,
				Channels:      1,
				InputInterior: pl.Interior(),
				Reference:     ref,
			}
			inst.setup = func(m *vm.Machine, apply bool) {
				m.Reset()
				m.Mem.WriteBytes(srcAddr, srcBytes)
				writeParams(m, apply, srcAddr, dstAddr,
					cfg.Width, cfg.Height, pl.Stride,
					srcAddr+uint32(origin), dstAddr+uint32(origin), len(srcBytes))
			}
			inst.readOutput = func(m *vm.Machine) []byte {
				out := make([]byte, 0, cfg.Width*cfg.Height)
				for yy := 0; yy < cfg.Height; yy++ {
					row := m.Mem.ReadBytes(dstAddr+uint32(pl.Index(0, yy)), cfg.Width)
					out = append(out, row...)
				}
				return out
			}
			return inst
		},
	}
}
