package legacy

import (
	"helium/internal/asm"
	"helium/internal/image"
	"helium/internal/isa"
	"helium/internal/vm"
)

// histEqBins is the equalizer's table size: one 4-byte bin per bucket of
// eight sample values (index = value >> 3).
const histEqBins = 32

// histEqImgOff is the offset of the equalized image inside the destination
// buffer; the gap past the bin table keeps the two written regions apart.
const histEqImgOff = 16384

// buildHistEq assembles the histogram-equalization legacy binary: the
// filter zeroes a 32-bin dword table at the start of the destination
// buffer, then for every source pixel increments every bin from the
// pixel's bucket upward — the incremental form of a cumulative histogram,
// leaving bins[j] = #pixels with bucket <= j — and finally remaps each
// pixel through the table: out = cdf[in >> 3] * 255 / cdf[31], written at
// histEqImgOff (the last cumulative bin holds the pixel count, so the
// remap never references the image extent directly and the lifted kernel
// generalizes to any size).  The remap loop is unrolled two ways with a
// peeled remainder.  Lifting this needs a reduction stage ordered before a
// stencil stage, with the stencil consuming the reduction's table.
func buildHistEq() (*asm.Builder, *isa.Program) {
	b := asm.New("histeq")

	emitMain(b)
	emitCopy(b)

	eax := isa.RegOp(isa.EAX)
	ebx := isa.RegOp(isa.EBX)
	ecx := isa.RegOp(isa.ECX)
	edx := isa.RegOp(isa.EDX)
	esi := isa.RegOp(isa.ESI)
	edi := isa.RegOp(isa.EDI)

	src, dst, w, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)
	y, drow := asm.Local(1), asm.Local(2)

	// lane remaps one pixel at x = ecx+k through the cumulative table.
	// div leaves the remainder in edx, so the output row pointer reloads
	// from its local slot after the divide.
	lane := func(k int32) {
		b.Movzx(eax, isa.MemOp(isa.ESI, isa.ECX, 1, k, 1))
		b.Shr(eax, 3)
		b.Mov(eax, isa.MemOp(isa.EDI, isa.EAX, 4, 0, 4))
		b.Imul3(isa.EAX, eax, 255)
		b.Mov(ebx, isa.Mem(isa.EDI, (histEqBins-1)*4, 4))
		b.Div(ebx)
		b.Mov(edx, drow)
		b.Mov(isa.MemOp(isa.EDX, isa.ECX, 1, k, 1), isa.RegOp(isa.AL))
	}

	b.Label("filter") // filter(src, dst, w, h, stride)
	b.Prologue(8)
	b.Mov(edi, dst)

	// Zero the bin table.
	b.Mov(ecx, isa.ImmOp(0))
	b.Label("he_zero")
	b.Cmp(ecx, isa.ImmOp(histEqBins))
	b.Jcc(isa.JGE, "he_acc")
	b.Mov(isa.MemOp(isa.EDI, isa.ECX, 4, 0, 4), isa.ImmOp(0))
	b.Inc(ecx)
	b.Jmp("he_zero")

	// Accumulate: every pixel bumps its bucket and all buckets above it.
	b.Label("he_acc")
	b.Mov(y, isa.ImmOp(0))

	b.Label("he_arow")
	b.Mov(eax, y)
	b.Cmp(eax, h)
	b.Jcc(isa.JGE, "he_lut")
	b.Mov(eax, y)
	b.Imul(eax, stride)
	b.Mov(esi, src)
	b.Add(esi, eax)
	b.Mov(ecx, isa.ImmOp(0))

	b.Label("he_apix")
	b.Cmp(ecx, w)
	b.Jcc(isa.JGE, "he_arownext")
	b.Movzx(eax, isa.MemOp(isa.ESI, isa.ECX, 1, 0, 1))
	b.Shr(eax, 3)
	b.Label("he_asuf")
	b.Add(isa.MemOp(isa.EDI, isa.EAX, 4, 0, 4), isa.ImmOp(1))
	b.Inc(eax)
	b.Cmp(eax, isa.ImmOp(histEqBins))
	b.Jcc(isa.JL, "he_asuf")
	b.Inc(ecx)
	b.Jmp("he_apix")

	b.Label("he_arownext")
	b.Inc(y)
	b.Jmp("he_arow")

	// Remap every pixel through the finished table.
	b.Label("he_lut")
	b.Mov(y, isa.ImmOp(0))

	b.Label("he_lrow")
	b.Mov(eax, y)
	b.Cmp(eax, h)
	b.Jcc(isa.JGE, "he_done")
	b.Mov(eax, y)
	b.Imul(eax, stride)
	b.Mov(esi, src)
	b.Add(esi, eax)
	b.Mov(eax, y)
	b.Imul(eax, stride)
	b.Add(eax, dst)
	b.Add(eax, isa.ImmOp(histEqImgOff))
	b.Mov(drow, eax)
	b.Mov(ecx, isa.ImmOp(0))

	b.Label("he_lx2") // unrolled x2: while x+1 < w
	b.Lea(isa.EAX, isa.Mem(isa.ECX, 1, 4))
	b.Cmp(eax, w)
	b.Jcc(isa.JGE, "he_lxrem")
	lane(0)
	lane(1)
	b.Add(ecx, isa.ImmOp(2))
	b.Jmp("he_lx2")

	b.Label("he_lxrem") // peeled remainder: at most one pixel
	b.Cmp(ecx, w)
	b.Jcc(isa.JGE, "he_lrownext")
	lane(0)
	b.Inc(ecx)

	b.Label("he_lrownext")
	b.Inc(y)
	b.Jmp("he_lrow")

	b.Label("he_done")
	b.Epilogue()

	return b, b.MustBuild()
}

// histEqReference computes the expected equalized image in pure Go.
func histEqReference(interior []byte, w, h int) []byte {
	var cdf [histEqBins]uint32
	for _, s := range interior {
		cdf[s>>3]++
	}
	for i := 1; i < histEqBins; i++ {
		cdf[i] += cdf[i-1]
	}
	npx := uint32(w * h)
	out := make([]byte, len(interior))
	for i, s := range interior {
		out[i] = byte(cdf[s>>3] * 255 / npx)
	}
	return out
}

func histEqKernel() Kernel {
	return Kernel{
		Name:        "histeq",
		Description: "histogram equalization: cumulative 32-bin table reduction feeding a per-pixel remap, unrolled x2",
		Instantiate: func(cfg Config) *Instance {
			builder, prog := buildHistEq()
			pl := image.NewPlane(cfg.Width, cfg.Height, 0)
			pl.FillPattern(cfg.Seed)
			srcBytes := append([]byte(nil), pl.Pix...)
			srcAddr, dstAddr := bufAddrs(len(srcBytes))

			var pastTable []byte
			if histEqImgOff < len(srcBytes) {
				pastTable = srcBytes[histEqImgOff:]
			}

			inst := &Instance{
				Name:          "histeq",
				Prog:          prog,
				FilterEntry:   mustFilterEntry(builder, prog),
				Width:         cfg.Width,
				Height:        cfg.Height,
				Channels:      1,
				InputInterior: pl.Interior(),
				Reference:     histEqReference(pl.Interior(), cfg.Width, cfg.Height),
				OffReference:  copyWindow(pastTable, pl.Stride, cfg.Width, cfg.Height),
			}
			inst.setup = func(m *vm.Machine, apply bool) {
				m.Reset()
				m.Mem.WriteBytes(srcAddr, srcBytes)
				writeParams(m, apply, srcAddr, dstAddr,
					cfg.Width, cfg.Height, pl.Stride,
					srcAddr, dstAddr, len(srcBytes))
			}
			inst.readOutput = func(m *vm.Machine) []byte {
				out := make([]byte, 0, cfg.Width*cfg.Height)
				for yy := 0; yy < cfg.Height; yy++ {
					out = append(out, m.Mem.ReadBytes(dstAddr+uint32(histEqImgOff+yy*pl.Stride), cfg.Width)...)
				}
				return out
			}
			return inst
		},
	}
}
