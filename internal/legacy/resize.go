package legacy

import (
	"helium/internal/asm"
	"helium/internal/image"
	"helium/internal/isa"
	"helium/internal/vm"
)

// upsampleRowPad is the extra destination bytes upsample2x leaves after
// each output row; the gap keeps the written region visibly row-structured
// so buffer reconstruction reads the output stride off the write runs.
const upsampleRowPad = 4

// copyWindow returns the bytes a ReadOutput window shows when only the
// baseline copy ran: the source buffer copied into the destination, reads
// past its end seeing the emulator's zero-filled memory.
func copyWindow(srcBytes []byte, stride, rowBytes, rows int) []byte {
	out := make([]byte, 0, rows*rowBytes)
	for y := 0; y < rows; y++ {
		for x := 0; x < rowBytes; x++ {
			off := y*stride + x
			if off < len(srcBytes) {
				out = append(out, srcBytes[off])
			} else {
				out = append(out, 0)
			}
		}
	}
	return out
}

// buildDownsample2x assembles the 2x box downsampler.  Every output pixel
// averages a 2x2 source block with rounding: out(x,y) = (in(2x,2y) +
// in(2x+1,2y) + in(2x,2y+1) + in(2x+1,2y+1) + 2) / 4.  The source rows are
// walked with a scaled index register (the strided addressing that defeats
// coordinate-relative tap matching), the inner loop is unrolled two ways
// with a peeled remainder, and output rows reuse the source stride, so the
// written rows sit apart in memory.
func buildDownsample2x() (*asm.Builder, *isa.Program) {
	b := asm.New("downsample2x")

	emitMain(b)
	emitCopy(b)

	eax := isa.RegOp(isa.EAX)
	ebx := isa.RegOp(isa.EBX)
	ecx := isa.RegOp(isa.ECX)
	edx := isa.RegOp(isa.EDX)
	esi := isa.RegOp(isa.ESI)
	edi := isa.RegOp(isa.EDI)

	src, dst, w, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)
	y, outW, outH := asm.Local(1), asm.Local(2), asm.Local(3)

	// lane averages the 2x2 block feeding output pixel x = ecx+k.  edx
	// walks the two source rows of the block.
	lane := func(k int32) {
		b.Lea(isa.EDX, isa.MemOp(isa.ESI, isa.ECX, 2, 2*k, 4))
		b.Movzx(eax, isa.Mem(isa.EDX, 0, 1))
		b.Movzx(ebx, isa.Mem(isa.EDX, 1, 1))
		b.Add(eax, ebx)
		b.Add(edx, stride)
		b.Movzx(ebx, isa.Mem(isa.EDX, 0, 1))
		b.Add(eax, ebx)
		b.Movzx(ebx, isa.Mem(isa.EDX, 1, 1))
		b.Add(eax, ebx)
		b.Add(eax, isa.ImmOp(2))
		b.Shr(eax, 2)
		b.Mov(isa.MemOp(isa.EDI, isa.ECX, 1, k, 1), isa.RegOp(isa.AL))
	}

	b.Label("filter") // filter(src, dst, w, h, stride)
	b.Prologue(12)
	b.Mov(eax, w)
	b.Shr(eax, 1)
	b.Mov(outW, eax)
	b.Mov(eax, h)
	b.Shr(eax, 1)
	b.Mov(outH, eax)
	b.Mov(y, isa.ImmOp(0))

	b.Label("ds_row")
	b.Mov(eax, y)
	b.Cmp(eax, outH)
	b.Jcc(isa.JGE, "ds_done")
	// esi = src + (2y)*stride, edi = dst + y*stride
	b.Mov(eax, y)
	b.Add(eax, eax)
	b.Imul(eax, stride)
	b.Mov(esi, src)
	b.Add(esi, eax)
	b.Mov(eax, y)
	b.Imul(eax, stride)
	b.Mov(edi, dst)
	b.Add(edi, eax)
	b.Mov(ecx, isa.ImmOp(0))

	b.Label("ds_x2") // unrolled x2: while x+1 < outW
	b.Lea(isa.EAX, isa.Mem(isa.ECX, 1, 4))
	b.Cmp(eax, outW)
	b.Jcc(isa.JGE, "ds_xrem")
	lane(0)
	lane(1)
	b.Add(ecx, isa.ImmOp(2))
	b.Jmp("ds_x2")

	b.Label("ds_xrem") // peeled remainder: at most one pixel
	b.Cmp(ecx, outW)
	b.Jcc(isa.JGE, "ds_rownext")
	lane(0)
	b.Inc(ecx)

	b.Label("ds_rownext")
	b.Inc(y)
	b.Jmp("ds_row")

	b.Label("ds_done")
	b.Epilogue()

	return b, b.MustBuild()
}

func downsample2xKernel() Kernel {
	return Kernel{
		Name:        "downsample2x",
		Description: "2x box downsampler (2x2 block average), strided source rows, unrolled x2",
		Instantiate: func(cfg Config) *Instance {
			builder, prog := buildDownsample2x()
			pl := image.NewPlane(cfg.Width, cfg.Height, 0)
			pl.FillPattern(cfg.Seed)
			srcBytes := append([]byte(nil), pl.Pix...)
			srcAddr, dstAddr := bufAddrs(len(srcBytes))
			outW, outH := cfg.Width/2, cfg.Height/2

			ref := make([]byte, 0, outW*outH)
			for yy := 0; yy < outH; yy++ {
				for xx := 0; xx < outW; xx++ {
					sum := int(pl.At(2*xx, 2*yy)) + int(pl.At(2*xx+1, 2*yy)) +
						int(pl.At(2*xx, 2*yy+1)) + int(pl.At(2*xx+1, 2*yy+1))
					ref = append(ref, byte((sum+2)/4))
				}
			}

			inst := &Instance{
				Name:          "downsample2x",
				Prog:          prog,
				FilterEntry:   mustFilterEntry(builder, prog),
				Width:         cfg.Width,
				Height:        cfg.Height,
				Channels:      1,
				RefW:          outW,
				RefH:          outH,
				InputInterior: pl.Interior(),
				Reference:     ref,
				OffReference:  copyWindow(srcBytes, pl.Stride, outW, outH),
			}
			inst.setup = func(m *vm.Machine, apply bool) {
				m.Reset()
				m.Mem.WriteBytes(srcAddr, srcBytes)
				writeParams(m, apply, srcAddr, dstAddr,
					cfg.Width, cfg.Height, pl.Stride,
					srcAddr, dstAddr, len(srcBytes))
			}
			inst.readOutput = func(m *vm.Machine) []byte {
				out := make([]byte, 0, outW*outH)
				for yy := 0; yy < outH; yy++ {
					out = append(out, m.Mem.ReadBytes(dstAddr+uint32(yy*pl.Stride), outW)...)
				}
				return out
			}
			return inst
		},
	}
}

// buildUpsample2x assembles the 2x nearest-neighbor upsampler: out(x,y) =
// in(x/2, y/2).  The loop runs over source pixels and duplicates each one
// into an output pair — the store-strided form optimized upsamplers take —
// with the source row selected by shifting the output row index.  Output
// rows are padded by upsampleRowPad bytes.
func buildUpsample2x() (*asm.Builder, *isa.Program) {
	b := asm.New("upsample2x")

	emitMain(b)
	emitCopy(b)

	eax := isa.RegOp(isa.EAX)
	ecx := isa.RegOp(isa.ECX)
	esi := isa.RegOp(isa.ESI)
	edi := isa.RegOp(isa.EDI)

	src, dst, w, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)
	y, outH, ostride := asm.Local(1), asm.Local(2), asm.Local(3)

	// pair duplicates source pixel x = ecx+k into output pixels 2x, 2x+1.
	pair := func(k int32) {
		b.Movzx(eax, isa.MemOp(isa.ESI, isa.ECX, 1, k, 1))
		b.Mov(isa.MemOp(isa.EDI, isa.ECX, 2, 2*k, 1), isa.RegOp(isa.AL))
		b.Mov(isa.MemOp(isa.EDI, isa.ECX, 2, 2*k+1, 1), isa.RegOp(isa.AL))
	}

	b.Label("filter") // filter(src, dst, w, h, stride)
	b.Prologue(12)
	b.Mov(eax, h)
	b.Add(eax, eax)
	b.Mov(outH, eax)
	b.Mov(eax, w)
	b.Add(eax, eax)
	b.Add(eax, isa.ImmOp(upsampleRowPad))
	b.Mov(ostride, eax)
	b.Mov(y, isa.ImmOp(0))

	b.Label("us_row")
	b.Mov(eax, y)
	b.Cmp(eax, outH)
	b.Jcc(isa.JGE, "us_done")
	// esi = src + (y/2)*stride, edi = dst + y*ostride
	b.Mov(eax, y)
	b.Shr(eax, 1)
	b.Imul(eax, stride)
	b.Mov(esi, src)
	b.Add(esi, eax)
	b.Mov(eax, y)
	b.Imul(eax, ostride)
	b.Mov(edi, dst)
	b.Add(edi, eax)
	b.Mov(ecx, isa.ImmOp(0))

	b.Label("us_x2") // unrolled x2 over source pixels: while x+1 < w
	b.Lea(isa.EAX, isa.Mem(isa.ECX, 1, 4))
	b.Cmp(eax, w)
	b.Jcc(isa.JGE, "us_xrem")
	pair(0)
	pair(1)
	b.Add(ecx, isa.ImmOp(2))
	b.Jmp("us_x2")

	b.Label("us_xrem") // peeled remainder: at most one source pixel
	b.Cmp(ecx, w)
	b.Jcc(isa.JGE, "us_rownext")
	pair(0)
	b.Inc(ecx)

	b.Label("us_rownext")
	b.Inc(y)
	b.Jmp("us_row")

	b.Label("us_done")
	b.Epilogue()

	return b, b.MustBuild()
}

func upsample2xKernel() Kernel {
	return Kernel{
		Name:        "upsample2x",
		Description: "2x nearest-neighbor upsampler (pixel duplication), store-strided pairs, unrolled x2",
		Instantiate: func(cfg Config) *Instance {
			builder, prog := buildUpsample2x()
			pl := image.NewPlane(cfg.Width, cfg.Height, 0)
			pl.FillPattern(cfg.Seed)
			srcBytes := append([]byte(nil), pl.Pix...)
			srcAddr, dstAddr := bufAddrs(len(srcBytes))
			outW, outH := 2*cfg.Width, 2*cfg.Height
			ostride := outW + upsampleRowPad

			ref := make([]byte, 0, outW*outH)
			for yy := 0; yy < outH; yy++ {
				for xx := 0; xx < outW; xx++ {
					ref = append(ref, pl.At(xx/2, yy/2))
				}
			}

			inst := &Instance{
				Name:          "upsample2x",
				Prog:          prog,
				FilterEntry:   mustFilterEntry(builder, prog),
				Width:         cfg.Width,
				Height:        cfg.Height,
				Channels:      1,
				RefW:          outW,
				RefH:          outH,
				InputInterior: pl.Interior(),
				Reference:     ref,
				OffReference:  copyWindow(srcBytes, ostride, outW, outH),
			}
			inst.setup = func(m *vm.Machine, apply bool) {
				m.Reset()
				m.Mem.WriteBytes(srcAddr, srcBytes)
				writeParams(m, apply, srcAddr, dstAddr,
					cfg.Width, cfg.Height, pl.Stride,
					srcAddr, dstAddr, len(srcBytes))
			}
			inst.readOutput = func(m *vm.Machine) []byte {
				out := make([]byte, 0, outW*outH)
				for yy := 0; yy < outH; yy++ {
					out = append(out, m.Mem.ReadBytes(dstAddr+uint32(yy*ostride), outW)...)
				}
				return out
			}
			return inst
		},
	}
}
