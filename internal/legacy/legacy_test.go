package legacy

import (
	"bytes"
	"fmt"
	"testing"

	"helium/internal/vm"
)

var testConfigs = []Config{
	{Width: 22, Height: 10, Seed: 1},
	{Width: 21, Height: 9, Seed: 7}, // odd width exercises the peeled remainders
}

// TestKernelsMatchReference runs every corpus kernel on the VM and checks
// the emulated output against the pure Go reference implementation.
func TestKernelsMatchReference(t *testing.T) {
	for _, k := range Kernels() {
		for _, cfg := range testConfigs {
			t.Run(fmt.Sprintf("%s/%s", k.Name, cfg), func(t *testing.T) {
				inst := k.Instantiate(cfg)
				got, err := inst.RunVM()
				if err != nil {
					t.Fatalf("RunVM: %v", err)
				}
				if !bytes.Equal(got, inst.Reference) {
					t.Fatalf("VM output differs from reference (%d/%d samples differ)",
						diffCount(got, inst.Reference), len(inst.Reference))
				}
			})
		}
	}
}

// TestFilterOffLeavesCopy checks the host harness contract the localization
// relies on: with the filter flag off, the program still runs its baseline
// copy, so the output equals the input.
func TestFilterOffLeavesCopy(t *testing.T) {
	for _, k := range Kernels() {
		t.Run(k.Name, func(t *testing.T) {
			inst := k.Instantiate(testConfigs[0])
			m := vm.NewMachine(inst.Prog)
			inst.Setup(m, false)
			if err := m.Run(0); err != nil {
				t.Fatalf("Run: %v", err)
			}
			want := inst.OffReference
			if want == nil {
				want = inst.InputInterior
			}
			got := inst.ReadOutput(m)
			if !bytes.Equal(got, want) {
				t.Fatalf("filter-off output is not the baseline copy (%d/%d samples differ)",
					diffCount(got, want), len(got))
			}
		})
	}
}

func diffCount(a, b []byte) int {
	n := 0
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			n++
		}
	}
	return n
}
