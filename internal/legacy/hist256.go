package legacy

import (
	"encoding/binary"

	"helium/internal/asm"
	"helium/internal/image"
	"helium/internal/isa"
	"helium/internal/vm"
)

// hist256Bins is the accumulator table size: one 4-byte bin per 8-bit
// sample value.
const hist256Bins = 256

// buildHist256 assembles the histogram legacy binary: the filter zeroes a
// 256-bin dword table at the start of the destination buffer, then walks
// the source plane incrementing the bin its sample value selects — the
// classic accumulate-into-table reduction no stencil expression can
// model.  The pixel loop is unrolled two ways with a peeled remainder.
func buildHist256() (*asm.Builder, *isa.Program) {
	b := asm.New("hist256")

	emitMain(b)
	emitCopy(b)

	eax := isa.RegOp(isa.EAX)
	ecx := isa.RegOp(isa.ECX)
	esi := isa.RegOp(isa.ESI)
	edi := isa.RegOp(isa.EDI)

	src, dst, w, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)
	y, pairEnd := asm.Local(1), asm.Local(2)

	// lane counts one sample: inc dword [edi + 4*src[x+k]].
	lane := func(k int32) {
		b.Movzx(eax, isa.MemOp(isa.ESI, isa.ECX, 1, k, 1))
		b.Inc(isa.MemOp(isa.EDI, isa.EAX, 4, 0, 4))
	}

	b.Label("filter") // filter(src, dst, w, h, stride)
	b.Prologue(8)
	b.Mov(edi, dst)

	// Zero the bin table.
	b.Mov(ecx, isa.ImmOp(0))
	b.Label("hz_zero")
	b.Cmp(ecx, isa.ImmOp(hist256Bins))
	b.Jcc(isa.JGE, "hz_count")
	b.Mov(isa.MemOp(isa.EDI, isa.ECX, 4, 0, 4), isa.ImmOp(0))
	b.Inc(ecx)
	b.Jmp("hz_zero")

	b.Label("hz_count")
	b.Mov(y, isa.ImmOp(0))

	b.Label("hz_row")
	b.Mov(eax, y)
	b.Cmp(eax, h)
	b.Jcc(isa.JGE, "hz_done")
	b.Mov(eax, y)
	b.Imul(eax, stride)
	b.Mov(esi, src)
	b.Add(esi, eax)
	b.Mov(eax, w)
	b.And(eax, isa.ImmOp(-2))
	b.Mov(pairEnd, eax)
	b.Mov(ecx, isa.ImmOp(0))

	b.Label("hz_x2") // unrolled x2
	b.Cmp(ecx, pairEnd)
	b.Jcc(isa.JGE, "hz_xrem")
	lane(0)
	lane(1)
	b.Add(ecx, isa.ImmOp(2))
	b.Jmp("hz_x2")

	b.Label("hz_xrem") // peeled remainder: at most one pixel
	b.Cmp(ecx, w)
	b.Jcc(isa.JGE, "hz_rownext")
	lane(0)
	b.Inc(ecx)

	b.Label("hz_rownext")
	b.Inc(y)
	b.Jmp("hz_row")

	b.Label("hz_done")
	b.Epilogue()

	return b, b.MustBuild()
}

// hist256Reference computes the expected bin table in pure Go.
func hist256Reference(interior []byte) []byte {
	var bins [hist256Bins]uint32
	for _, s := range interior {
		bins[s]++
	}
	out := make([]byte, 0, hist256Bins*4)
	for _, v := range bins {
		out = binary.LittleEndian.AppendUint32(out, v)
	}
	return out
}

func hist256Kernel() Kernel {
	return Kernel{
		Name:        "hist256",
		Description: "256-bin dword histogram of a planar plane (accumulate-into-table reduction), unrolled x2",
		Instantiate: func(cfg Config) *Instance {
			builder, prog := buildHist256()
			pl := image.NewPlane(cfg.Width, cfg.Height, 0)
			pl.FillPattern(cfg.Seed)
			srcBytes := append([]byte(nil), pl.Pix...)
			srcAddr, dstAddr := bufAddrs(len(srcBytes))
			// With the filter off the table window shows the baseline copy's
			// first bytes: the copied source buffer (padding included),
			// zero-filled past its end for small images.
			offRef := make([]byte, hist256Bins*4)
			copy(offRef, srcBytes)

			inst := &Instance{
				Name:          "hist256",
				Prog:          prog,
				FilterEntry:   mustFilterEntry(builder, prog),
				Width:         cfg.Width,
				Height:        cfg.Height,
				Channels:      1,
				InputInterior: pl.Interior(),
				Reference:     hist256Reference(pl.Interior()),
				OffReference:  offRef,
			}
			inst.setup = func(m *vm.Machine, apply bool) {
				m.Reset()
				m.Mem.WriteBytes(srcAddr, srcBytes)
				writeParams(m, apply, srcAddr, dstAddr,
					cfg.Width, cfg.Height, pl.Stride,
					srcAddr, dstAddr, len(srcBytes))
			}
			inst.readOutput = func(m *vm.Machine) []byte {
				return m.Mem.ReadBytes(dstAddr, hist256Bins*4)
			}
			return inst
		},
	}
}
