package legacy

import (
	"helium/internal/asm"
	"helium/internal/image"
	"helium/internal/isa"
	"helium/internal/vm"
)

// blur2pTmpStride is the scanline stride of the filter's private scratch
// plane.  It is deliberately not the image stride and not a round number:
// buffer reconstruction must rediscover it from the write runs.
const blur2pTmpStride = 4

// buildBlur2p assembles the two-pass separable box blur legacy binary.
// The filter pipelines through a statically allocated scratch plane the
// way shipped binaries use private temporaries: pass one (hblur) writes a
// horizontally blurred copy of rows -1..h into the scratch buffer, pass
// two (vblur) blurs the scratch vertically into the destination.  Each
// pass divides by 3 with rounding, so the result is *not* the one-pass
// 3x3 box blur — the intermediate quantization is real and the lifter
// must recover both stages to reproduce it.  Both inner loops are
// unrolled two ways with a peeled remainder.
func buildBlur2p(tmpBase uint32, width int) (*asm.Builder, *isa.Program) {
	b := asm.New("blur2p")
	tstride := int64(width + blur2pTmpStride)

	emitMain(b)
	emitCopy(b)

	eax := isa.RegOp(isa.EAX)
	ebx := isa.RegOp(isa.EBX)
	ecx := isa.RegOp(isa.ECX)
	esi := isa.RegOp(isa.ESI)
	edi := isa.RegOp(isa.EDI)
	esp := isa.RegOp(isa.ESP)

	// filter(src, dst, w, h, stride): run the two passes.
	{
		src, dst, w, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)
		b.Label("filter")
		b.Prologue(0)
		// hblur(src, w, h, stride)
		b.Push(stride)
		b.Push(h)
		b.Push(w)
		b.Push(src)
		b.Call("hblur")
		b.Add(esp, isa.ImmOp(16))
		// vblur(dst, w, h, stride)
		b.Push(stride)
		b.Push(h)
		b.Push(w)
		b.Push(dst)
		b.Call("vblur")
		b.Add(esp, isa.ImmOp(16))
		b.Epilogue()
	}

	// avg3 sums three bytes already gathered into eax, rounds, and divides
	// by 3 (the div leaves the quotient in eax and clobbers edx).
	avg3 := func() {
		b.Inc(eax)
		b.Mov(ebx, isa.ImmOp(3))
		b.Div(ebx)
	}

	// hblur(src, w, h, stride): tmp rows 0..h+1 = horizontal [1 1 1]/3 of
	// src rows -1..h (the source plane's edge padding supplies the border).
	{
		src, w, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3)
		ty, pairEnd := asm.Local(1), asm.Local(2)

		lane := func(k int32) {
			b.Movzx(eax, isa.MemOp(isa.ESI, isa.ECX, 1, k-1, 1))
			b.Movzx(ebx, isa.MemOp(isa.ESI, isa.ECX, 1, k, 1))
			b.Add(eax, ebx)
			b.Movzx(ebx, isa.MemOp(isa.ESI, isa.ECX, 1, k+1, 1))
			b.Add(eax, ebx)
			avg3()
			b.Mov(isa.MemOp(isa.EDI, isa.ECX, 1, k, 1), isa.RegOp(isa.AL))
		}

		b.Label("hblur")
		b.Prologue(8)
		b.Mov(ty, isa.ImmOp(0))

		b.Label("h2_row") // for ty in [0, h+2): source row ty-1
		b.Mov(eax, h)
		b.Add(eax, isa.ImmOp(2))
		b.Cmp(ty, eax)
		b.Jcc(isa.JGE, "h2_done")
		// esi = src + (ty-1)*stride
		b.Mov(eax, ty)
		b.Dec(eax)
		b.Imul(eax, stride)
		b.Mov(esi, src)
		b.Add(esi, eax)
		// edi = tmp + ty*tstride
		b.Mov(eax, ty)
		b.Imul3(isa.EAX, eax, tstride)
		b.Add(eax, isa.ImmOp(int64(tmpBase)))
		b.Mov(edi, eax)
		b.Mov(eax, w)
		b.And(eax, isa.ImmOp(-2))
		b.Mov(pairEnd, eax)
		b.Mov(ecx, isa.ImmOp(0))

		b.Label("h2_x2")
		b.Cmp(ecx, pairEnd)
		b.Jcc(isa.JGE, "h2_xrem")
		lane(0)
		lane(1)
		b.Add(ecx, isa.ImmOp(2))
		b.Jmp("h2_x2")

		b.Label("h2_xrem") // peeled remainder: at most one pixel
		b.Cmp(ecx, w)
		b.Jcc(isa.JGE, "h2_rownext")
		lane(0)
		b.Inc(ecx)

		b.Label("h2_rownext")
		b.Inc(ty)
		b.Jmp("h2_row")

		b.Label("h2_done")
		b.Epilogue()
	}

	// vblur(dst, w, h, stride): dst rows 0..h = vertical [1 1 1]/3 of tmp
	// rows y..y+2.
	{
		dst, w, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3)
		y, pairEnd := asm.Local(1), asm.Local(2)

		lane := func(k int32) {
			b.Movzx(eax, isa.MemOp(isa.ESI, isa.ECX, 1, k, 1))
			b.Movzx(ebx, isa.MemOp(isa.ESI, isa.ECX, 1, k+int32(tstride), 1))
			b.Add(eax, ebx)
			b.Movzx(ebx, isa.MemOp(isa.ESI, isa.ECX, 1, k+2*int32(tstride), 1))
			b.Add(eax, ebx)
			avg3()
			b.Mov(isa.MemOp(isa.EDI, isa.ECX, 1, k, 1), isa.RegOp(isa.AL))
		}

		b.Label("vblur")
		b.Prologue(8)
		b.Mov(y, isa.ImmOp(0))

		b.Label("v2_row")
		b.Mov(eax, y)
		b.Cmp(eax, h)
		b.Jcc(isa.JGE, "v2_done")
		// esi = tmp + y*tstride (rows y, y+1, y+2 via displacements)
		b.Mov(eax, y)
		b.Imul3(isa.EAX, eax, tstride)
		b.Add(eax, isa.ImmOp(int64(tmpBase)))
		b.Mov(esi, eax)
		// edi = dst + y*stride
		b.Mov(eax, y)
		b.Imul(eax, stride)
		b.Mov(edi, dst)
		b.Add(edi, eax)
		b.Mov(eax, w)
		b.And(eax, isa.ImmOp(-2))
		b.Mov(pairEnd, eax)
		b.Mov(ecx, isa.ImmOp(0))

		b.Label("v2_x2")
		b.Cmp(ecx, pairEnd)
		b.Jcc(isa.JGE, "v2_xrem")
		lane(0)
		lane(1)
		b.Add(ecx, isa.ImmOp(2))
		b.Jmp("v2_x2")

		b.Label("v2_xrem") // peeled remainder: at most one pixel
		b.Cmp(ecx, w)
		b.Jcc(isa.JGE, "v2_rownext")
		lane(0)
		b.Inc(ecx)

		b.Label("v2_rownext")
		b.Inc(y)
		b.Jmp("v2_row")

		b.Label("v2_done")
		b.Epilogue()
	}

	return b, b.MustBuild()
}

// blur2pReference computes the expected output in pure Go: the horizontal
// pass into an (h+2)-row temp with per-pass rounding, then the vertical
// pass.
func blur2pReference(pl *image.Plane) []byte {
	w, h := pl.Width, pl.Height
	tmp := make([][]byte, h+2)
	for ty := range tmp {
		tmp[ty] = make([]byte, w)
		sy := ty - 1
		for x := 0; x < w; x++ {
			s := int(pl.At(x-1, sy)) + int(pl.At(x, sy)) + int(pl.At(x+1, sy))
			tmp[ty][x] = byte((s + 1) / 3)
		}
	}
	out := make([]byte, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := int(tmp[y][x]) + int(tmp[y+1][x]) + int(tmp[y+2][x])
			out = append(out, byte((s+1)/3))
		}
	}
	return out
}

func blur2pKernel() Kernel {
	return Kernel{
		Name:        "blur2p",
		Description: "two-pass separable box blur through a private scratch plane, per-pass rounding, unrolled x2",
		Instantiate: func(cfg Config) *Instance {
			pl := image.NewPlane(cfg.Width, cfg.Height, 1)
			pl.FillPattern(cfg.Seed)
			srcBytes := append([]byte(nil), pl.Pix...)
			srcAddr, dstAddr := bufAddrs(len(srcBytes))
			origin := pl.Index(0, 0)
			// The scratch plane lives in its own pages past the destination,
			// the way a legacy binary owns a static work buffer.
			tmpBase := dstAddr + uint32((len(srcBytes)+0xfff)&^0xfff) + 0x1000
			builder, prog := buildBlur2p(tmpBase, cfg.Width)

			inst := &Instance{
				Name:          "blur2p",
				Prog:          prog,
				FilterEntry:   mustFilterEntry(builder, prog),
				Width:         cfg.Width,
				Height:        cfg.Height,
				Channels:      1,
				InputInterior: pl.Interior(),
				Reference:     blur2pReference(pl),
			}
			inst.setup = func(m *vm.Machine, apply bool) {
				m.Reset()
				m.Mem.WriteBytes(srcAddr, srcBytes)
				writeParams(m, apply, srcAddr, dstAddr,
					cfg.Width, cfg.Height, pl.Stride,
					srcAddr+uint32(origin), dstAddr+uint32(origin), len(srcBytes))
			}
			inst.readOutput = func(m *vm.Machine) []byte {
				out := make([]byte, 0, cfg.Width*cfg.Height)
				for yy := 0; yy < cfg.Height; yy++ {
					row := m.Mem.ReadBytes(dstAddr+uint32(pl.Index(0, yy)), cfg.Width)
					out = append(out, row...)
				}
				return out
			}
			return inst
		},
	}
}
