package legacy

import (
	"encoding/binary"
	"math"

	"helium/internal/asm"
	"helium/internal/image"
	"helium/internal/isa"
	"helium/internal/vm"
)

// sharpenGain is the center coefficient of the unsharp kernel, stored in
// the binary's data segment as a float64 the x87 code multiplies by.
const sharpenGain = 5.0

// buildSharpen assembles the sharpen legacy binary: an unsharp mask over
// an interleaved RGB image, computed in x87 floating point with a known
// library call (sqrt) on the center tap, rounded back to integer and
// clamped branch-free with the sar/not/and idiom.  The sample loop is
// unrolled two ways with a peeled remainder; only interior pixels are
// filtered, so the host's baseline copy provides the border.
func buildSharpen() (*asm.Builder, *isa.Program) {
	b := asm.New("sharpen")
	gain := make([]byte, 8)
	binary.LittleEndian.PutUint64(gain, math.Float64bits(sharpenGain))
	gainAddr := b.Data(gain)
	gainOp := isa.Mem(isa.RegNone, int32(gainAddr), 8)

	emitMain(b)
	emitCopy(b)

	eax := isa.RegOp(isa.EAX)
	ebx := isa.RegOp(isa.EBX)
	ecx := isa.RegOp(isa.ECX)
	edx := isa.RegOp(isa.EDX)
	esi := isa.RegOp(isa.ESI)
	edi := isa.RegOp(isa.EDI)

	src, dst, w, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)
	y, n, pairEnd := asm.Local(1), asm.Local(2), asm.Local(3)
	ftmp := isa.Mem(isa.EBP, -24, 8) // float64 spill slot
	itmp := isa.Mem(isa.EBP, -28, 4) // integer<->x87 transfer slot

	// lane emits one sample at offset esi/edi + ecx + k: the unsharp value
	// 5*c - (l+r+u+d) with c routed through sqrt(c*c), then clamped to
	// [0, 255] without branches.
	lane := func(k int32) {
		// center tap: sqrt(c*c) * gain
		b.Movzx(eax, isa.MemOp(isa.ESI, isa.ECX, 1, k, 1))
		b.Mov(itmp, eax)
		b.Fild(itmp)
		b.Fild(itmp)
		b.Fmulp()
		b.CallSym("sqrt")
		b.Fmul(gainOp)
		// horizontal neighbors via edx = &row[x]
		b.Lea(isa.EDX, isa.MemOp(isa.ESI, isa.ECX, 1, 0, 4))
		b.Movzx(eax, isa.Mem(isa.EDX, k-3, 1))
		b.Mov(itmp, eax)
		b.Fild(itmp)
		b.Movzx(eax, isa.Mem(isa.EDX, k+3, 1))
		b.Mov(itmp, eax)
		b.Fild(itmp)
		b.Faddp()
		// vertical neighbors via ebx = row +/- stride
		b.Mov(ebx, edx)
		b.Sub(ebx, stride)
		b.Movzx(eax, isa.Mem(isa.EBX, k, 1))
		b.Mov(itmp, eax)
		b.Fild(itmp)
		b.Faddp()
		b.Add(ebx, stride)
		b.Add(ebx, stride)
		b.Movzx(eax, isa.Mem(isa.EBX, k, 1))
		b.Mov(itmp, eax)
		b.Fild(itmp)
		b.Faddp()
		// v = round(5c - sum)
		b.Fstp(ftmp)
		b.Fsub(ftmp)
		b.Fistp(itmp)
		b.Mov(eax, itmp)
		// v = max(v, 0): v &= ^(v >> 31)
		b.Mov(ebx, eax)
		b.Sar(ebx, 31)
		b.Not(ebx)
		b.And(eax, ebx)
		// v = min(v, 255): 255 + ((v-255) & ((v-255) >> 31))
		b.Mov(ebx, eax)
		b.Sub(ebx, isa.ImmOp(255))
		b.Mov(edx, ebx)
		b.Sar(edx, 31)
		b.And(ebx, edx)
		b.Add(ebx, isa.ImmOp(255))
		b.Mov(isa.MemOp(isa.EDI, isa.ECX, 1, k, 1), isa.RegOp(isa.BL))
	}

	b.Label("filter") // filter(src, dst, w, h, stride)
	b.Prologue(32)
	// n = 3*(w-2) interior samples per row
	b.Mov(eax, w)
	b.Sub(eax, isa.ImmOp(2))
	b.Imul3(isa.EAX, eax, 3)
	b.Mov(n, eax)
	b.Mov(y, isa.ImmOp(1))

	b.Label("s_row")
	b.Mov(eax, y)
	b.Mov(ebx, h)
	b.Dec(ebx)
	b.Cmp(eax, ebx)
	b.Jcc(isa.JGE, "s_done")
	b.Mov(eax, y)
	b.Imul(eax, stride)
	b.Mov(esi, src)
	b.Add(esi, eax)
	b.Mov(edi, dst)
	b.Add(edi, eax)
	// samples run from offset 3 to 3+n; pairs stop at 3 + (n & ^1)
	b.Mov(eax, n)
	b.And(eax, isa.ImmOp(-2))
	b.Add(eax, isa.ImmOp(3))
	b.Mov(pairEnd, eax)
	b.Mov(ecx, isa.ImmOp(3))

	b.Label("s_pair") // unrolled x2
	b.Cmp(ecx, pairEnd)
	b.Jcc(isa.JGE, "s_rem")
	lane(0)
	lane(1)
	b.Add(ecx, isa.ImmOp(2))
	b.Jmp("s_pair")

	b.Label("s_rem") // peeled remainder: at most one sample
	b.Mov(eax, n)
	b.Add(eax, isa.ImmOp(3))
	b.Cmp(ecx, eax)
	b.Jcc(isa.JGE, "s_rownext")
	lane(0)
	b.Inc(ecx)

	b.Label("s_rownext")
	b.Inc(y)
	b.Jmp("s_row")

	b.Label("s_done")
	b.Epilogue()

	return b, b.MustBuild()
}

// sharpenReference computes the expected output in pure Go: the baseline
// copy everywhere, the clamped unsharp value on interior pixels.  All the
// float64 steps of the legacy code are exact on these integer inputs, so
// integer arithmetic reproduces them bit for bit.
func sharpenReference(im *image.Interleaved) []byte {
	out := append([]byte(nil), im.Interior()...)
	rowBytes := im.Width * im.Channels
	for y := 1; y < im.Height-1; y++ {
		for x := 1; x < im.Width-1; x++ {
			for c := 0; c < im.Channels; c++ {
				v := 5*int(im.At(x, y, c)) -
					(int(im.At(x-1, y, c)) + int(im.At(x+1, y, c)) +
						int(im.At(x, y-1, c)) + int(im.At(x, y+1, c)))
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				out[y*rowBytes+x*im.Channels+c] = byte(v)
			}
		}
	}
	return out
}

func sharpenKernel() Kernel {
	return Kernel{
		Name:        "sharpen",
		Description: "x87 unsharp mask over interleaved RGB with a sqrt library call and branch-free clamping, unrolled x2",
		Instantiate: func(cfg Config) *Instance {
			builder, prog := buildSharpen()
			im := image.NewInterleaved(cfg.Width, cfg.Height, 3)
			im.FillPattern(cfg.Seed)
			srcBytes := append([]byte(nil), im.Pix...)
			srcAddr, dstAddr := bufAddrs(len(srcBytes))

			inst := &Instance{
				Name:          "sharpen",
				Prog:          prog,
				FilterEntry:   mustFilterEntry(builder, prog),
				Width:         cfg.Width,
				Height:        cfg.Height,
				Channels:      3,
				Interleaved:   true,
				InputInterior: im.Interior(),
				Reference:     sharpenReference(im),
			}
			inst.setup = func(m *vm.Machine, apply bool) {
				m.Reset()
				m.Mem.WriteBytes(srcAddr, srcBytes)
				writeParams(m, apply, srcAddr, dstAddr,
					cfg.Width, cfg.Height, im.Stride,
					srcAddr, dstAddr, len(srcBytes))
			}
			inst.readOutput = func(m *vm.Machine) []byte {
				rowBytes := cfg.Width * 3
				out := make([]byte, 0, rowBytes*cfg.Height)
				for yy := 0; yy < cfg.Height; yy++ {
					row := m.Mem.ReadBytes(dstAddr+uint32(yy*im.Stride), rowBytes)
					out = append(out, row...)
				}
				return out
			}
			return inst
		},
	}
}
