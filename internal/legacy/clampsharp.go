package legacy

import (
	"helium/internal/asm"
	"helium/internal/image"
	"helium/internal/isa"
	"helium/internal/vm"
)

// buildClampSharp assembles the branch-clamped sharpen legacy binary: an
// integer unsharp mask (5*center minus the four neighbors) over a padded
// planar plane whose clamp to [0, 255] uses real conditional branches —
// the control-flow-divergent shape the predicated lifter must collapse
// into one select/min/max tree.  The sample loop is unrolled two ways with
// a peeled remainder.
func buildClampSharp() (*asm.Builder, *isa.Program) {
	b := asm.New("clampsharp")

	emitMain(b)
	emitCopy(b)

	eax := isa.RegOp(isa.EAX)
	ebx := isa.RegOp(isa.EBX)
	ecx := isa.RegOp(isa.ECX)
	edx := isa.RegOp(isa.EDX)
	esi := isa.RegOp(isa.ESI)
	edi := isa.RegOp(isa.EDI)

	src, dst, w, h, stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)
	y, pairEnd := asm.Local(1), asm.Local(2)

	// lane emits one pixel at offset esi/edi + ecx + k: the unsharp value
	// clamped with two branch diamonds.  tag keeps the clamp labels unique
	// per emitted copy.
	lane := func(k int32, tag string) {
		// v = 5*c - (l + r + u + d)
		b.Movzx(eax, isa.MemOp(isa.ESI, isa.ECX, 1, k, 1))
		b.Imul3(isa.EAX, eax, 5)
		b.Movzx(ebx, isa.MemOp(isa.ESI, isa.ECX, 1, k-1, 1))
		b.Sub(eax, ebx)
		b.Movzx(ebx, isa.MemOp(isa.ESI, isa.ECX, 1, k+1, 1))
		b.Sub(eax, ebx)
		b.Lea(isa.EDX, isa.MemOp(isa.ESI, isa.ECX, 1, k, 4))
		b.Sub(edx, stride)
		b.Movzx(ebx, isa.Mem(isa.EDX, 0, 1))
		b.Sub(eax, ebx)
		b.Add(edx, stride)
		b.Add(edx, stride)
		b.Movzx(ebx, isa.Mem(isa.EDX, 0, 1))
		b.Sub(eax, ebx)
		// if (v < 0) v = 0 — a real branch, not the sar/and idiom
		b.Cmp(eax, isa.ImmOp(0))
		b.Jcc(isa.JGE, "cs_lo_"+tag)
		b.Mov(eax, isa.ImmOp(0))
		b.Label("cs_lo_" + tag)
		// if (v > 255) v = 255
		b.Cmp(eax, isa.ImmOp(255))
		b.Jcc(isa.JLE, "cs_hi_"+tag)
		b.Mov(eax, isa.ImmOp(255))
		b.Label("cs_hi_" + tag)
		b.Mov(isa.MemOp(isa.EDI, isa.ECX, 1, k, 1), isa.RegOp(isa.AL))
	}

	b.Label("filter") // filter(src, dst, w, h, stride)
	b.Prologue(8)
	b.Mov(y, isa.ImmOp(0))

	b.Label("cs_row")
	b.Mov(eax, y)
	b.Cmp(eax, h)
	b.Jcc(isa.JGE, "cs_done")
	b.Mov(eax, y)
	b.Imul(eax, stride)
	b.Mov(esi, src)
	b.Add(esi, eax)
	b.Mov(edi, dst)
	b.Add(edi, eax)
	b.Mov(eax, w)
	b.And(eax, isa.ImmOp(-2))
	b.Mov(pairEnd, eax)
	b.Mov(ecx, isa.ImmOp(0))

	b.Label("cs_x2") // unrolled x2
	b.Cmp(ecx, pairEnd)
	b.Jcc(isa.JGE, "cs_xrem")
	lane(0, "a")
	lane(1, "b")
	b.Add(ecx, isa.ImmOp(2))
	b.Jmp("cs_x2")

	b.Label("cs_xrem") // peeled remainder: at most one pixel
	b.Cmp(ecx, w)
	b.Jcc(isa.JGE, "cs_rownext")
	lane(0, "r")
	b.Inc(ecx)

	b.Label("cs_rownext")
	b.Inc(y)
	b.Jmp("cs_row")

	b.Label("cs_done")
	b.Epilogue()

	return b, b.MustBuild()
}

// clampSharpValue computes the unclamped unsharp value of one pixel — the
// single source of truth the reference output and the divergence check
// share.
func clampSharpValue(pl *image.Plane, x, y int) int {
	return 5*int(pl.At(x, y)) -
		(int(pl.At(x-1, y)) + int(pl.At(x+1, y)) +
			int(pl.At(x, y-1)) + int(pl.At(x, y+1)))
}

// clampSharpReference computes the expected output in pure Go.
func clampSharpReference(pl *image.Plane) []byte {
	out := make([]byte, 0, pl.Width*pl.Height)
	for y := 0; y < pl.Height; y++ {
		for x := 0; x < pl.Width; x++ {
			v := clampSharpValue(pl, x, y)
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out = append(out, byte(v))
		}
	}
	return out
}

// ClampSharpDiverges reports whether the clamp branches of the reference
// output diverge three ways (below, inside and above range) on the given
// config — the property that makes the instance exercise predicated
// lifting.  Tests assert it for the shipped configurations.
func ClampSharpDiverges(cfg Config) bool {
	pl := image.NewPlane(cfg.Width, cfg.Height, 1)
	pl.FillPattern(cfg.Seed)
	low, mid, high := false, false, false
	for y := 0; y < pl.Height; y++ {
		for x := 0; x < pl.Width; x++ {
			switch v := clampSharpValue(pl, x, y); {
			case v < 0:
				low = true
			case v > 255:
				high = true
			default:
				mid = true
			}
		}
	}
	return low && mid && high
}

func clampSharpKernel() Kernel {
	return Kernel{
		Name:        "clampsharp",
		Description: "integer unsharp mask over a padded planar plane, clamped with real branches, unrolled x2",
		Instantiate: func(cfg Config) *Instance {
			builder, prog := buildClampSharp()
			pl := image.NewPlane(cfg.Width, cfg.Height, 1)
			pl.FillPattern(cfg.Seed)
			srcBytes := append([]byte(nil), pl.Pix...)
			srcAddr, dstAddr := bufAddrs(len(srcBytes))
			origin := pl.Index(0, 0)

			inst := &Instance{
				Name:          "clampsharp",
				Prog:          prog,
				FilterEntry:   mustFilterEntry(builder, prog),
				Width:         cfg.Width,
				Height:        cfg.Height,
				Channels:      1,
				InputInterior: pl.Interior(),
				Reference:     clampSharpReference(pl),
			}
			inst.setup = func(m *vm.Machine, apply bool) {
				m.Reset()
				m.Mem.WriteBytes(srcAddr, srcBytes)
				writeParams(m, apply, srcAddr, dstAddr,
					cfg.Width, cfg.Height, pl.Stride,
					srcAddr+uint32(origin), dstAddr+uint32(origin), len(srcBytes))
			}
			inst.readOutput = func(m *vm.Machine) []byte {
				out := make([]byte, 0, cfg.Width*cfg.Height)
				for yy := 0; yy < cfg.Height; yy++ {
					row := m.Mem.ReadBytes(dstAddr+uint32(pl.Index(0, yy)), cfg.Width)
					out = append(out, row...)
				}
				return out
			}
			return inst
		},
	}
}
