package fuzzgen

import (
	"encoding/binary"
	"fmt"

	"helium/internal/asm"
	"helium/internal/image"
	"helium/internal/isa"
	"helium/internal/legacy"
	"helium/internal/vm"
)

// histBins is the reduction shape's table size (one dword bin per sample
// value).
const histBins = 256

// redConsumeImgOff is the offset of the remapped image inside the
// reduction-consuming shape's destination buffer; the gap past the bin
// table keeps the two written regions at least regionGap apart,
// histeq-style.
const redConsumeImgOff = 8192

// affineOutW is the strided shape's output width: the widest x for which
// both taps Stride*x+SOff and Stride*x+SOff+1 stay inside the interior.
func affineOutW(s Spec) int {
	return (s.Width-2-s.SOff)/s.Stride + 1
}

// quadOutW is the non-affine shape's output width: three columns reading
// source offsets 0, 1 and 4 — the minimum that no affine map a*x+b fits.
const quadOutW = 3

// emitter assembles one spec's filter code.  The label counter keeps the
// peeled, unrolled and tiled loop copies from colliding.
type emitter struct {
	b    *asm.Builder
	spec Spec
	n    int
}

// uniq returns a fresh label.
func (e *emitter) uniq(prefix string) string {
	e.n++
	return fmt.Sprintf("fz_%s%d", prefix, e.n)
}

// Register operand shorthands.
var (
	eaxOp = isa.RegOp(isa.EAX)
	ebxOp = isa.RegOp(isa.EBX)
	ecxOp = isa.RegOp(isa.ECX)
	edxOp = isa.RegOp(isa.EDX)
	esiOp = isa.RegOp(isa.ESI)
	ediOp = isa.RegOp(isa.EDI)
	espOp = isa.RegOp(isa.ESP)
)

// zero emits the chosen zero idiom for a register.
func (e *emitter) zero(r isa.Operand) {
	if e.spec.Obf.SelVariant {
		e.b.Xor(r, r)
	} else {
		e.b.Mov(r, isa.ImmOp(0))
	}
}

// bump emits the chosen increment idiom for a register or memory operand.
func (e *emitter) bump(op isa.Operand) {
	if e.spec.Obf.SelVariant {
		e.b.Add(op, isa.ImmOp(1))
	} else {
		e.b.Inc(op)
	}
}

// mulConst multiplies eax by a small constant, either with imul or — under
// the strength-reduction obfuscation — with the shift-add sequence an
// optimizer would pick.  edx is clobbered.
func (e *emitter) mulConst(c int) {
	if !e.spec.Obf.StrengthReduce {
		e.b.Imul3(isa.EAX, eaxOp, int64(c))
		return
	}
	switch c {
	case 1:
	case 2:
		e.b.Add(eaxOp, eaxOp)
	case 3:
		e.b.Mov(edxOp, eaxOp)
		e.b.Add(eaxOp, eaxOp)
		e.b.Add(eaxOp, edxOp)
	case 4:
		e.b.Shl(eaxOp, 2)
	case 5:
		e.b.Mov(edxOp, eaxOp)
		e.b.Shl(eaxOp, 2)
		e.b.Add(eaxOp, edxOp)
	default:
		e.b.Imul3(isa.EAX, eaxOp, int64(c))
	}
}

// stride is a scanline stride that is either a function argument or a
// compile-time constant (the private scratch plane's).
type stride struct {
	mem   isa.Operand
	imm   int64
	isImm bool
}

func argStride(op isa.Operand) stride { return stride{mem: op} }
func immStride(v int64) stride        { return stride{imm: v, isImm: true} }

// mulStrideEAX multiplies eax by the stride.
func (e *emitter) mulStrideEAX(s stride) {
	if s.isImm {
		e.b.Imul3(isa.EAX, eaxOp, s.imm)
	} else {
		e.b.Imul(eaxOp, s.mem)
	}
}

// loopCfg describes one generated row/column loop nest.
type loopCfg struct {
	src, dst             isa.Operand // row-zero base operands (arg or imm)
	srcStride, dstStride stride
	x0, x1               isa.Operand // column bounds (arg, local or imm)
	h                    isa.Operand // row count
	fixedDst             bool        // dst does not advance per row (bin table)
	unroll               int
	peel                 bool
}

// loopNest emits the standard obfuscated nest: per row, recompute the row
// pointers, then run the unrolled column loop with its peeled scalar
// remainder.  lane emits one pixel at column ecx+k.  Local(1) holds y;
// shape code may use Local(2..4); Local(5) is the dead-code store.
func (e *emitter) loopNest(cfg loopCfg, lane func(k int32)) {
	b := e.b
	y := asm.Local(1)
	b.Mov(y, isa.ImmOp(0))

	if cfg.peel {
		// Row 0 through a separate, never-unrolled loop copy.
		e.rowBody(cfg, 1, lane)
		e.bump(y)
	}

	row, done := e.uniq("row"), e.uniq("rowdone")
	b.Label(row)
	b.Mov(eaxOp, y)
	b.Cmp(eaxOp, cfg.h)
	b.Jcc(isa.JGE, done)
	e.rowBody(cfg, cfg.unroll, lane)
	e.bump(y)
	b.Jmp(row)
	b.Label(done)
}

// rowBody emits one copy of the row setup and column loop at the current
// Local(1) row.
func (e *emitter) rowBody(cfg loopCfg, unroll int, lane func(k int32)) {
	b := e.b
	y := asm.Local(1)

	b.Mov(eaxOp, y)
	e.mulStrideEAX(cfg.srcStride)
	b.Mov(esiOp, cfg.src)
	b.Add(esiOp, eaxOp)
	if cfg.fixedDst {
		b.Mov(ediOp, cfg.dst)
	} else {
		b.Mov(eaxOp, y)
		e.mulStrideEAX(cfg.dstStride)
		b.Mov(ediOp, cfg.dst)
		b.Add(ediOp, eaxOp)
	}
	if e.spec.Obf.DeadCode {
		// Dead stack-local store plus padding nops: the analyses must
		// discount both (stack writes are excluded from region discovery).
		b.Nop()
		b.Mov(asm.Local(5), eaxOp)
		b.Nop()
	}

	if imm, ok := immVal(cfg.x0); ok && imm == 0 {
		e.zero(ecxOp)
	} else {
		b.Mov(ecxOp, cfg.x0)
	}

	rem, end := e.uniq("xrem"), e.uniq("xend")
	if unroll > 1 {
		head := e.uniq("xu")
		b.Label(head)
		b.Lea(isa.EAX, isa.Mem(isa.ECX, int32(unroll-1), 4))
		b.Cmp(eaxOp, cfg.x1)
		b.Jcc(isa.JGE, rem)
		for k := 0; k < unroll; k++ {
			lane(int32(k))
		}
		b.Add(ecxOp, isa.ImmOp(int64(unroll)))
		b.Jmp(head)
	}
	b.Label(rem)
	b.Cmp(ecxOp, cfg.x1)
	b.Jcc(isa.JGE, end)
	lane(0)
	e.bump(ecxOp)
	b.Jmp(rem)
	b.Label(end)
}

// immVal extracts an immediate operand's value.
func immVal(op isa.Operand) (int64, bool) {
	if op.Kind == isa.KindImm {
		return op.Imm, true
	}
	return 0, false
}

// srcByte loads the byte at [esi + ecx + d] zero-extended into eax.
func (e *emitter) srcByte(d int32) {
	e.b.Movzx(eaxOp, isa.MemOp(isa.ESI, isa.ECX, 1, d, 1))
}

// storeAL stores al at [edi + ecx + k].
func (e *emitter) storeAL(k int32) {
	e.b.Mov(isa.MemOp(isa.EDI, isa.ECX, 1, k, 1), isa.RegOp(isa.AL))
}

// lane returns the per-pixel body for the spec's shape.
func (e *emitter) lane() func(k int32) {
	b, s := e.b, e.spec
	switch s.Shape {
	case ShapePoint:
		return func(k int32) {
			e.srcByte(k)
			e.mulConst(s.A)
			b.Add(eaxOp, isa.ImmOp(int64(s.B)))
			if s.Shift > 0 {
				b.Shr(eaxOp, int64(s.Shift))
			}
			e.storeAL(k)
		}
	case ShapeStencil3:
		weights := []int{s.W0, s.W1, s.W2}
		return func(k int32) {
			e.zero(ebxOp)
			for i, d := range []int32{-1, 0, 1} {
				e.srcByte(k + d)
				e.mulConst(weights[i])
				b.Add(ebxOp, eaxOp)
			}
			b.Add(ebxOp, isa.ImmOp(2))
			b.Shr(ebxOp, 2)
			b.Mov(isa.MemOp(isa.EDI, isa.ECX, 1, k, 1), isa.RegOp(isa.BL))
		}
	case ShapePredicated:
		return func(k int32) {
			e.srcByte(k)
			skip := e.uniq("pge")
			b.Cmp(eaxOp, isa.ImmOp(int64(s.Thresh)))
			b.Jcc(isa.JGE, skip)
			b.Add(eaxOp, isa.ImmOp(int64(s.B)))
			b.Label(skip)
			e.storeAL(k)
		}
	case ShapeReduction:
		return func(k int32) {
			e.srcByte(k)
			slot := isa.MemOp(isa.EDI, isa.EAX, 4, 0, 4)
			if s.Delta == 1 {
				e.bump(slot)
			} else {
				b.Add(slot, isa.ImmOp(int64(s.Delta)))
			}
		}
	case ShapeAffine:
		return func(k int32) {
			// edx = Stride*x; the taps sit at Stride*(x+k)+SOff and one
			// past it, so the scaled index defeats translation unification.
			b.Mov(edxOp, ecxOp)
			b.Add(edxOp, edxOp)
			if s.Stride == 3 {
				b.Add(edxOp, ecxOp)
			}
			d := int32(s.Stride)*k + int32(s.SOff)
			b.Movzx(eaxOp, isa.MemOp(isa.ESI, isa.EDX, 1, d, 1))
			b.Movzx(ebxOp, isa.MemOp(isa.ESI, isa.EDX, 1, d+1, 1))
			b.Add(eaxOp, ebxOp)
			e.bump(eaxOp)
			b.Shr(eaxOp, 1)
			e.storeAL(k)
		}
	case ShapeUnsupportedJS:
		return func(k int32) {
			e.srcByte(k)
			keep := e.uniq("js")
			b.Cmp(eaxOp, isa.ImmOp(int64(s.Thresh)))
			b.Jcc(isa.JS, keep) // sign-flag branch after cmp: rejected by design
			b.Mov(eaxOp, isa.ImmOp(0))
			b.Label(keep)
			e.storeAL(k)
		}
	case ShapeUnsupportedAdc:
		return func(k int32) {
			e.srcByte(k)
			b.Add(eaxOp, isa.ImmOp(int64(s.B)))
			b.Adc(eaxOp, isa.ImmOp(1)) // carry-as-data: rejected by design
			e.storeAL(k)
		}
	case ShapeUnsupportedQuad:
		return func(k int32) {
			// eax = (x+k)^2: a source index quadratic in the column, which
			// no affine map fits — the refit must reject it.
			b.Lea(isa.EAX, isa.Mem(isa.ECX, k, 4))
			b.Imul(eaxOp, eaxOp)
			b.Movzx(eaxOp, isa.MemOp(isa.ESI, isa.EAX, 1, 0, 1))
			b.Add(eaxOp, isa.ImmOp(int64(s.B)))
			e.storeAL(k)
		}
	}
	panic("fuzzgen: lane for unhandled shape") // unreachable: Build validates the shape
}

// stage1Lane is the two-stage pipeline's first (point) stage.
func (e *emitter) stage1Lane() func(k int32) {
	b, s := e.b, e.spec
	return func(k int32) {
		e.srcByte(k)
		e.mulConst(s.A)
		b.Add(eaxOp, isa.ImmOp(int64(s.B)))
		b.Shr(eaxOp, 1)
		e.storeAL(k)
	}
}

// stage2Lane is the two-stage pipeline's second stage: a two-tap average
// over the scratch plane.
func (e *emitter) stage2Lane() func(k int32) {
	b := e.b
	return func(k int32) {
		e.srcByte(k)
		b.Movzx(ebxOp, isa.MemOp(isa.ESI, isa.ECX, 1, k+1, 1))
		b.Add(eaxOp, ebxOp)
		e.bump(eaxOp)
		b.Shr(eaxOp, 1)
		e.storeAL(k)
	}
}

// emitSingleStage emits the filter for the single-region shapes, with or
// without the two-tile column driver.
func (e *emitter) emitSingleStage() {
	b, s := e.b, e.spec
	src, dst, w, h, strideArg := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)

	if s.Shape == ShapeReduction {
		b.Label("filter")
		b.Prologue(32)
		// Zero the bin table, then count.
		b.Mov(ediOp, dst)
		e.zero(ecxOp)
		zl, zd := e.uniq("zl"), e.uniq("zd")
		b.Label(zl)
		b.Cmp(ecxOp, isa.ImmOp(histBins))
		b.Jcc(isa.JGE, zd)
		b.Mov(isa.MemOp(isa.EDI, isa.ECX, 4, 0, 4), isa.ImmOp(0))
		e.bump(ecxOp)
		b.Jmp(zl)
		b.Label(zd)
		e.loopNest(loopCfg{
			src: src, dst: dst,
			srcStride: argStride(strideArg), dstStride: argStride(strideArg),
			x0: isa.ImmOp(0), x1: w, h: h,
			fixedDst: true, unroll: s.Obf.Unroll,
		}, e.lane())
		b.Epilogue()
		return
	}

	if !s.Obf.TileCols {
		// The strided and quadratic shapes' column bounds are their output
		// widths, baked as immediates (the instance geometry is fixed at
		// build time).
		x1 := w
		switch s.Shape {
		case ShapeAffine:
			x1 = isa.ImmOp(int64(affineOutW(s)))
		case ShapeUnsupportedQuad:
			x1 = isa.ImmOp(quadOutW)
		}
		b.Label("filter")
		b.Prologue(32)
		e.loopNest(loopCfg{
			src: src, dst: dst,
			srcStride: argStride(strideArg), dstStride: argStride(strideArg),
			x0: isa.ImmOp(0), x1: x1, h: h,
			unroll: s.Obf.Unroll, peel: s.Obf.PeelFirstRow,
		}, e.lane())
		b.Epilogue()
		return
	}

	// Two-tile column driver, boxblur-style: worker(src, dst, x0, x1, h,
	// stride) over [0, w/2) then [w/2, w).
	xmid := asm.Local(1)
	b.Label("filter")
	b.Prologue(32)
	b.Mov(eaxOp, w)
	b.Shr(eaxOp, 1)
	b.Mov(xmid, eaxOp)
	for tile := 0; tile < 2; tile++ {
		b.Push(strideArg)
		b.Push(h)
		if tile == 0 {
			b.Push(xmid)
			b.Push(isa.ImmOp(0))
		} else {
			b.Push(w)
			b.Push(xmid)
		}
		b.Push(dst)
		b.Push(src)
		b.Call("fz_worker")
		b.Add(espOp, isa.ImmOp(24))
	}
	b.Epilogue()

	wsrc, wdst, wx0, wx1, wh, wstride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4), asm.Arg(5)
	b.Label("fz_worker")
	b.Prologue(32)
	e.loopNest(loopCfg{
		src: wsrc, dst: wdst,
		srcStride: argStride(wstride), dstStride: argStride(wstride),
		x0: wx0, x1: wx1, h: wh,
		unroll: s.Obf.Unroll, peel: s.Obf.PeelFirstRow,
	}, e.lane())
	b.Epilogue()
}

// emitTwoStage emits the scratch-plane pipeline: stage one writes the
// private temp, stage two averages it into the destination at width W-1.
func (e *emitter) emitTwoStage(tmpBase uint32, tmpStride int64) {
	b, s := e.b, e.spec
	src, dst, w, h, strideArg := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)

	b.Label("filter")
	b.Prologue(0)
	for _, call := range []struct {
		buf isa.Operand
		fn  string
	}{{src, "fz_s1"}, {dst, "fz_s2"}} {
		b.Push(strideArg)
		b.Push(h)
		b.Push(w)
		b.Push(call.buf)
		b.Call(call.fn)
		b.Add(espOp, isa.ImmOp(16))
	}
	b.Epilogue()

	// fz_s1(src, w, h, stride): tmp[y][x] = (A*src[y][x] + B) >> 1.
	{
		s1src, s1w, s1h, s1stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3)
		b.Label("fz_s1")
		b.Prologue(32)
		e.loopNest(loopCfg{
			src: s1src, dst: isa.ImmOp(int64(tmpBase)),
			srcStride: argStride(s1stride), dstStride: immStride(tmpStride),
			x0: isa.ImmOp(0), x1: s1w, h: s1h,
			unroll: s.Obf.Unroll, peel: s.Obf.PeelFirstRow,
		}, e.stage1Lane())
		b.Epilogue()
	}

	// fz_s2(dst, w, h, stride): dst[y][x] = (tmp[y][x]+tmp[y][x+1]+1)>>1
	// for x in [0, w-1).
	{
		s2dst, s2w, s2h, s2stride := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3)
		x1 := asm.Local(2)
		b.Label("fz_s2")
		b.Prologue(32)
		b.Mov(eaxOp, s2w)
		b.Dec(eaxOp)
		b.Mov(x1, eaxOp)
		e.loopNest(loopCfg{
			src: isa.ImmOp(int64(tmpBase)), dst: s2dst,
			srcStride: immStride(tmpStride), dstStride: argStride(s2stride),
			x0: isa.ImmOp(0), x1: x1, h: s2h,
			unroll: 1,
		}, e.stage2Lane())
		b.Epilogue()
	}
}

// emitRedConsume emits the reduction-consuming pipeline, histeq-style:
// zero a Bins-entry dword table at the start of the destination buffer,
// accumulate the incremental cumulative histogram (every pixel bumps its
// bucket and all buckets above it), then remap every pixel through the
// finished table — out = tbl[s>>TblShift] * ScaleM / tbl[Bins-1] — at
// redConsumeImgOff.  Only the remap loop honors the unroll obfuscation,
// matching the legacy binary it models.
func (e *emitter) emitRedConsume() {
	b, s := e.b, e.spec
	bins := int64(s.Bins)
	src, dst, w, h, strideArg := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)
	y, drow := asm.Local(1), asm.Local(2)

	// lane remaps one pixel at x = ecx+k.  div leaves the remainder in
	// edx, so the output row pointer reloads from its local slot after it.
	lane := func(k int32) {
		b.Movzx(eaxOp, isa.MemOp(isa.ESI, isa.ECX, 1, k, 1))
		b.Shr(eaxOp, int64(s.TblShift))
		b.Mov(eaxOp, isa.MemOp(isa.EDI, isa.EAX, 4, 0, 4))
		b.Imul3(isa.EAX, eaxOp, int64(s.ScaleM))
		b.Mov(ebxOp, isa.Mem(isa.EDI, int32(bins-1)*4, 4))
		b.Div(ebxOp)
		b.Mov(edxOp, drow)
		b.Mov(isa.MemOp(isa.EDX, isa.ECX, 1, k, 1), isa.RegOp(isa.AL))
	}

	// deadRowSetup is the optional dead store + nop padding obfuscation.
	deadRowSetup := func() {
		if s.Obf.DeadCode {
			b.Nop()
			b.Mov(asm.Local(5), eaxOp)
			b.Nop()
		}
	}

	b.Label("filter")
	b.Prologue(32)
	b.Mov(ediOp, dst)

	// Zero the bin table.
	zl, acc := e.uniq("rcz"), e.uniq("rcacc")
	e.zero(ecxOp)
	b.Label(zl)
	b.Cmp(ecxOp, isa.ImmOp(bins))
	b.Jcc(isa.JGE, acc)
	b.Mov(isa.MemOp(isa.EDI, isa.ECX, 4, 0, 4), isa.ImmOp(0))
	e.bump(ecxOp)
	b.Jmp(zl)

	// Accumulate the incremental cumulative histogram.
	b.Label(acc)
	b.Mov(y, isa.ImmOp(0))
	arow, apix, asuf, arownext, lut := e.uniq("rcar"), e.uniq("rcap"),
		e.uniq("rcas"), e.uniq("rcan"), e.uniq("rclut")
	b.Label(arow)
	b.Mov(eaxOp, y)
	b.Cmp(eaxOp, h)
	b.Jcc(isa.JGE, lut)
	b.Mov(eaxOp, y)
	b.Imul(eaxOp, strideArg)
	b.Mov(esiOp, src)
	b.Add(esiOp, eaxOp)
	deadRowSetup()
	e.zero(ecxOp)
	b.Label(apix)
	b.Cmp(ecxOp, w)
	b.Jcc(isa.JGE, arownext)
	b.Movzx(eaxOp, isa.MemOp(isa.ESI, isa.ECX, 1, 0, 1))
	b.Shr(eaxOp, int64(s.TblShift))
	b.Label(asuf)
	e.bump(isa.MemOp(isa.EDI, isa.EAX, 4, 0, 4))
	e.bump(eaxOp)
	b.Cmp(eaxOp, isa.ImmOp(bins))
	b.Jcc(isa.JL, asuf)
	e.bump(ecxOp)
	b.Jmp(apix)
	b.Label(arownext)
	e.bump(y)
	b.Jmp(arow)

	// Remap every pixel through the finished table.
	b.Label(lut)
	b.Mov(y, isa.ImmOp(0))
	lrow, ldone := e.uniq("rclr"), e.uniq("rcld")
	b.Label(lrow)
	b.Mov(eaxOp, y)
	b.Cmp(eaxOp, h)
	b.Jcc(isa.JGE, ldone)
	b.Mov(eaxOp, y)
	b.Imul(eaxOp, strideArg)
	b.Mov(esiOp, src)
	b.Add(esiOp, eaxOp)
	b.Mov(eaxOp, y)
	b.Imul(eaxOp, strideArg)
	b.Add(eaxOp, dst)
	b.Add(eaxOp, isa.ImmOp(redConsumeImgOff))
	b.Mov(drow, eaxOp)
	deadRowSetup()
	e.zero(ecxOp)

	rem, end := e.uniq("rclxr"), e.uniq("rclxe")
	if s.Obf.Unroll > 1 {
		head := e.uniq("rclxu")
		b.Label(head)
		b.Lea(isa.EAX, isa.Mem(isa.ECX, int32(s.Obf.Unroll-1), 4))
		b.Cmp(eaxOp, w)
		b.Jcc(isa.JGE, rem)
		for k := 0; k < s.Obf.Unroll; k++ {
			lane(int32(k))
		}
		b.Add(ecxOp, isa.ImmOp(int64(s.Obf.Unroll)))
		b.Jmp(head)
	}
	b.Label(rem)
	b.Cmp(ecxOp, w)
	b.Jcc(isa.JGE, end)
	lane(0)
	e.bump(ecxOp)
	b.Jmp(rem)
	b.Label(end)
	e.bump(y)
	b.Jmp(lrow)
	b.Label(ldone)
	b.Epilogue()
}

// emitPartialTable emits the deliberately-broken cousin of emitRedConsume:
// one row loop that accumulates the row into the cumulative table and then
// immediately remaps that row through it, so every row but the last is
// remapped through a partially written reduction table.  The extractor
// must reject the table read, never lift it.
func (e *emitter) emitPartialTable() {
	b, s := e.b, e.spec
	bins := int64(s.Bins)
	src, dst, w, h, strideArg := asm.Arg(0), asm.Arg(1), asm.Arg(2), asm.Arg(3), asm.Arg(4)
	y, drow := asm.Local(1), asm.Local(2)

	b.Label("filter")
	b.Prologue(32)
	b.Mov(ediOp, dst)

	// Zero the bin table.
	zl, rl := e.uniq("ptz"), e.uniq("ptr")
	e.zero(ecxOp)
	b.Label(zl)
	b.Cmp(ecxOp, isa.ImmOp(bins))
	b.Jcc(isa.JGE, rl)
	b.Mov(isa.MemOp(isa.EDI, isa.ECX, 4, 0, 4), isa.ImmOp(0))
	e.bump(ecxOp)
	b.Jmp(zl)

	b.Label(rl)
	b.Mov(y, isa.ImmOp(0))
	row, apix, asuf, lx, rownext, done := e.uniq("ptrow"), e.uniq("ptap"),
		e.uniq("ptas"), e.uniq("ptlx"), e.uniq("ptrn"), e.uniq("ptd")
	b.Label(row)
	b.Mov(eaxOp, y)
	b.Cmp(eaxOp, h)
	b.Jcc(isa.JGE, done)
	b.Mov(eaxOp, y)
	b.Imul(eaxOp, strideArg)
	b.Mov(esiOp, src)
	b.Add(esiOp, eaxOp)
	b.Mov(eaxOp, y)
	b.Imul(eaxOp, strideArg)
	b.Add(eaxOp, dst)
	b.Add(eaxOp, isa.ImmOp(redConsumeImgOff))
	b.Mov(drow, eaxOp)
	if s.Obf.DeadCode {
		b.Nop()
		b.Mov(asm.Local(5), eaxOp)
		b.Nop()
	}

	// Accumulate this row into the table.
	e.zero(ecxOp)
	b.Label(apix)
	b.Cmp(ecxOp, w)
	b.Jcc(isa.JGE, lx)
	b.Movzx(eaxOp, isa.MemOp(isa.ESI, isa.ECX, 1, 0, 1))
	b.Shr(eaxOp, int64(s.TblShift))
	b.Label(asuf)
	e.bump(isa.MemOp(isa.EDI, isa.EAX, 4, 0, 4))
	e.bump(eaxOp)
	b.Cmp(eaxOp, isa.ImmOp(bins))
	b.Jcc(isa.JL, asuf)
	e.bump(ecxOp)
	b.Jmp(apix)

	// Remap this row through the table as it stands so far.
	b.Label(lx)
	e.zero(ecxOp)
	lbody := e.uniq("ptlb")
	b.Label(lbody)
	b.Cmp(ecxOp, w)
	b.Jcc(isa.JGE, rownext)
	b.Movzx(eaxOp, isa.MemOp(isa.ESI, isa.ECX, 1, 0, 1))
	b.Shr(eaxOp, int64(s.TblShift))
	b.Mov(eaxOp, isa.MemOp(isa.EDI, isa.EAX, 4, 0, 4))
	b.Imul3(isa.EAX, eaxOp, int64(s.ScaleM))
	b.Mov(ebxOp, isa.Mem(isa.EDI, int32(bins-1)*4, 4))
	b.Div(ebxOp)
	b.Mov(edxOp, drow)
	b.Mov(isa.MemOp(isa.EDX, isa.ECX, 1, 0, 1), isa.RegOp(isa.AL))
	e.bump(ecxOp)
	b.Jmp(lbody)

	b.Label(rownext)
	e.bump(y)
	b.Jmp(row)
	b.Label(done)
	b.Epilogue()
}

// reference computes the spec's expected filtered output in pure Go.  It
// depends only on the shape parameters — obfuscations are semantics
// preserving, which is exactly what the harness checks.
func reference(s Spec, pl *image.Plane, srcBytes []byte) []byte {
	w, h := s.Width, s.Height
	switch s.Shape {
	case ShapePoint:
		out := make([]byte, 0, w*h)
		for _, v := range pl.Interior() {
			out = append(out, byte((s.A*int(v)+s.B)>>s.Shift))
		}
		return out
	case ShapeStencil3:
		out := make([]byte, 0, w*h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := s.W0*int(pl.At(x-1, y)) + s.W1*int(pl.At(x, y)) + s.W2*int(pl.At(x+1, y))
				out = append(out, byte((v+2)>>2))
			}
		}
		return out
	case ShapePredicated:
		out := make([]byte, 0, w*h)
		for _, v := range pl.Interior() {
			if int(v) < s.Thresh {
				out = append(out, byte(int(v)+s.B))
			} else {
				out = append(out, v)
			}
		}
		return out
	case ShapeReduction:
		var bins [histBins]uint32
		for _, v := range pl.Interior() {
			bins[v] += uint32(s.Delta)
		}
		out := make([]byte, 0, histBins*4)
		for _, v := range bins {
			out = binary.LittleEndian.AppendUint32(out, v)
		}
		return out
	case ShapeTwoStage:
		tmp := make([]int, w*h)
		for i, v := range pl.Interior() {
			tmp[i] = int(byte((s.A*int(v) + s.B) >> 1))
		}
		out := make([]byte, 0, (w-1)*h)
		for y := 0; y < h; y++ {
			for x := 0; x < w-1; x++ {
				out = append(out, byte((tmp[y*w+x]+tmp[y*w+x+1]+1)>>1))
			}
		}
		return out
	case ShapeAffine:
		outW := affineOutW(s)
		out := make([]byte, 0, outW*h)
		for y := 0; y < h; y++ {
			for x := 0; x < outW; x++ {
				a := int(pl.At(s.Stride*x+s.SOff, y))
				c := int(pl.At(s.Stride*x+s.SOff+1, y))
				out = append(out, byte((a+c+1)>>1))
			}
		}
		return out
	case ShapeRedConsume:
		cdf := make([]uint32, s.Bins)
		for _, v := range pl.Interior() {
			cdf[int(v)>>s.TblShift]++
		}
		for i := 1; i < s.Bins; i++ {
			cdf[i] += cdf[i-1]
		}
		total := cdf[s.Bins-1] // the pixel count: never zero
		out := make([]byte, 0, w*h)
		for _, v := range pl.Interior() {
			out = append(out, byte(cdf[int(v)>>s.TblShift]*uint32(s.ScaleM)/total))
		}
		return out
	case ShapeUnsupportedJS:
		out := make([]byte, 0, w*h)
		for _, v := range pl.Interior() {
			if int(v) < s.Thresh {
				out = append(out, v)
			} else {
				out = append(out, 0)
			}
		}
		return out
	case ShapeUnsupportedAdc:
		out := make([]byte, 0, w*h)
		for _, v := range pl.Interior() {
			out = append(out, byte(int(v)+s.B+1))
		}
		return out
	case ShapeUnsupportedQuad:
		// The quadratic index walks the flat interior (rows are contiguous,
		// pad is zero), clamped to zero past the buffer like the VM's
		// untouched memory.
		flat := pl.Interior()
		out := make([]byte, 0, quadOutW*h)
		for y := 0; y < h; y++ {
			for x := 0; x < quadOutW; x++ {
				v := byte(0)
				if idx := y*w + x*x; idx < len(flat) {
					v = flat[idx]
				}
				out = append(out, byte(int(v)+s.B))
			}
		}
		return out
	case ShapeUnsupportedPartialTable:
		flat := pl.Interior()
		cdf := make([]uint32, s.Bins)
		out := make([]byte, 0, w*h)
		for y := 0; y < h; y++ {
			row := flat[y*w : (y+1)*w]
			for _, v := range row {
				for j := int(v) >> s.TblShift; j < s.Bins; j++ {
					cdf[j]++
				}
			}
			for _, v := range row {
				out = append(out, byte(cdf[int(v)>>s.TblShift]*uint32(s.ScaleM)/cdf[s.Bins-1]))
			}
		}
		return out
	}
	_ = srcBytes
	return nil
}

// Build assembles the legacy binary a spec describes and wraps it in a
// ready-to-run instance: deterministic input, host harness and pure-Go
// reference output.  Builder errors come back as errors, never panics.
func Build(s Spec) (*legacy.Instance, error) {
	if s.Shape < 0 || s.Shape >= numShapes {
		return nil, fmt.Errorf("fuzzgen: spec has no shape (%d)", s.Shape)
	}
	if s.Width < 4 || s.Height < 2 {
		return nil, fmt.Errorf("fuzzgen: image %dx%d too small", s.Width, s.Height)
	}
	pad := 0
	if s.Shape == ShapeStencil3 {
		pad = 1
	}
	pl := image.NewPlane(s.Width, s.Height, pad)
	pl.FillPattern(s.Seed)
	srcBytes := append([]byte(nil), pl.Pix...)
	srcAddr, dstAddr := legacy.BufAddrs(len(srcBytes))
	origin := pl.Index(0, 0)

	b := asm.New(s.Name())
	legacy.EmitHost(b)
	e := &emitter{b: b, spec: s}

	tmpStride := int64(s.Width + 3)
	switch {
	case s.Shape == ShapeTwoStage:
		tmpBase := dstAddr + uint32((len(srcBytes)+0xfff)&^0xfff) + 0x1000
		e.emitTwoStage(tmpBase, tmpStride)
	case s.Shape == ShapeRedConsume:
		e.emitRedConsume()
	case s.Shape == ShapeUnsupportedPartialTable:
		e.emitPartialTable()
	default:
		e.emitSingleStage()
	}

	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("fuzzgen: %s: %w", s.Name(), err)
	}
	entry, err := legacy.FilterEntryAddr(b, prog)
	if err != nil {
		return nil, err
	}

	inst := &legacy.Instance{
		Name:          s.Name(),
		Prog:          prog,
		FilterEntry:   entry,
		Width:         s.Width,
		Height:        s.Height,
		Channels:      1,
		InputInterior: pl.Interior(),
		Reference:     reference(s, pl, srcBytes),
	}
	stridePix := pl.Stride
	inst.SetHarness(
		func(m *vm.Machine, apply bool) {
			m.Reset()
			m.Mem.WriteBytes(srcAddr, srcBytes)
			legacy.WriteParams(m, apply, srcAddr, dstAddr,
				s.Width, s.Height, stridePix,
				srcAddr+uint32(origin), dstAddr+uint32(origin), len(srcBytes))
		},
		func(m *vm.Machine) []byte {
			if s.Shape == ShapeReduction {
				return m.Mem.ReadBytes(dstAddr, histBins*4)
			}
			outW, off := s.Width, uint32(0)
			switch s.Shape {
			case ShapeTwoStage:
				outW = s.Width - 1
			case ShapeAffine:
				outW = affineOutW(s)
			case ShapeUnsupportedQuad:
				outW = quadOutW
			case ShapeRedConsume, ShapeUnsupportedPartialTable:
				off = redConsumeImgOff
			}
			out := make([]byte, 0, outW*s.Height)
			for y := 0; y < s.Height; y++ {
				out = append(out, m.Mem.ReadBytes(dstAddr+off+uint32(pl.Index(0, y)), outW)...)
			}
			return out
		},
	)
	return inst, nil
}
