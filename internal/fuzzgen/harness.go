package fuzzgen

import (
	"bytes"
	"fmt"
	"go/parser"
	"go/token"

	"helium/internal/ir"
	"helium/internal/legacy"
	"helium/internal/lift"
)

// Emulation budgets: the generated programs are tiny, so anything that
// busts these is a hang, not a slow kernel.
const (
	maxSteps      = 20_000_000
	maxTraceInsts = 2_000_000
)

// Outcome classifies one fuzz case.  The pipeline's contract admits
// exactly two: Verified and Rejected.  Everything else is a bug the
// harness fails on — or, for GeneratorBug, a bug in the fuzzer itself.
type Outcome int

const (
	// OutcomeVerified: the pipeline lifted the binary and every backend
	// (interpreter, compiled serial/parallel/fused, generated source)
	// reproduced the VM's output bit-exactly.
	OutcomeVerified Outcome = iota
	// OutcomeRejected: the pipeline returned a typed *lift.Rejection
	// naming the phase that gave up.
	OutcomeRejected
	// OutcomeGeneratorBug: the generated binary itself misbehaved (build
	// error, or its VM output disagrees with the pure-Go reference); the
	// pipeline was never at fault.
	OutcomeGeneratorBug
	// OutcomePanicked: some pipeline stage panicked.
	OutcomePanicked
	// OutcomeUntypedError: the pipeline failed with an error that is not
	// a typed rejection.
	OutcomeUntypedError
	// OutcomeWrongAnswer: the pipeline claimed success but its output
	// differs from the reference — the worst failure class.
	OutcomeWrongAnswer
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeVerified:
		return "verified"
	case OutcomeRejected:
		return "rejected"
	case OutcomeGeneratorBug:
		return "generator-bug"
	case OutcomePanicked:
		return "panicked"
	case OutcomeUntypedError:
		return "untyped-error"
	case OutcomeWrongAnswer:
		return "wrong-answer"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Report is the harness verdict on one spec.
type Report struct {
	Spec    Spec
	Outcome Outcome
	// Phase is the rejecting pipeline phase (OutcomeRejected only).
	Phase lift.Phase
	// Err is the diagnostic or failure detail (nil for OutcomeVerified).
	Err error
}

// Ok reports whether the outcome is within the pipeline's contract.
func (r Report) Ok() bool {
	return r.Outcome == OutcomeVerified || r.Outcome == OutcomeRejected
}

// String renders the report for logs.
func (r Report) String() string {
	s := fmt.Sprintf("%s: %s", r.Spec.Name(), r.Outcome)
	if r.Outcome == OutcomeRejected {
		s += fmt.Sprintf(" at %s", r.Phase)
	}
	if r.Err != nil {
		s += fmt.Sprintf(": %v", r.Err)
	}
	return s
}

// Run drives the full pipeline against one spec and classifies the
// result: generate, emulate for ground truth, lift, verify every backend,
// and generate compilable Go source.  Panics anywhere in the pipeline are
// caught and reported, never propagated.
func Run(spec Spec) Report {
	inst, err := Build(spec)
	if err != nil {
		return Report{Spec: spec, Outcome: OutcomeGeneratorBug, Err: err}
	}

	// Ground truth: the binary itself must behave before the pipeline is
	// judged against it.
	got, err := inst.RunVMBounded(maxSteps)
	if err != nil {
		return Report{Spec: spec, Outcome: OutcomeGeneratorBug, Err: fmt.Errorf("vm run: %w", err)}
	}
	if !bytes.Equal(got, inst.Reference) {
		return Report{Spec: spec, Outcome: OutcomeGeneratorBug,
			Err: fmt.Errorf("vm output disagrees with the Go reference (%d/%d bytes differ)", diffCount(got, inst.Reference), len(inst.Reference))}
	}

	rep := Report{Spec: spec}
	err = runPipeline(spec, inst, &rep)
	if rep.Outcome == OutcomePanicked {
		return rep
	}
	return classify(rep, err)
}

// classify folds a pipeline error into the report.
func classify(rep Report, err error) Report {
	if err == nil {
		rep.Outcome = OutcomeVerified
		return rep
	}
	if rej, ok := lift.AsRejection(err); ok {
		rep.Outcome = OutcomeRejected
		rep.Phase = rej.Phase
		rep.Err = rej
		return rep
	}
	rep.Outcome = OutcomeUntypedError
	rep.Err = err
	return rep
}

// runPipeline performs lift + all-backend verification, converting panics
// into the report.  A non-nil error return is classified by the caller; a
// report already marked is final.
func runPipeline(spec Spec, inst *legacy.Instance, rep *Report) (err error) {
	defer func() {
		if r := recover(); r != nil {
			rep.Outcome = OutcomePanicked
			rep.Err = fmt.Errorf("pipeline panic: %v", r)
		}
	}()

	res, err := lift.Lift(spec.Name(), lift.Target{
		Prog:  inst.Prog,
		Setup: inst.Setup,
		Known: lift.KnownInput{
			Width: inst.Width, Height: inst.Height, Channels: inst.Channels,
			Interleaved: inst.Interleaved, Interior: inst.InputInterior,
		},
		MaxSteps:      maxSteps,
		MaxTraceInsts: maxTraceInsts,
	})
	if err != nil {
		return err
	}

	// Interpreter backend, checked stage by stage against the dump.
	if err := res.Verify(); err != nil {
		return err
	}
	// Compiled backend on every execution path (serial, parallel, fused).
	c, err := res.VerifyCompiled(2)
	if err != nil {
		return err
	}
	_ = c

	// The pipeline verified itself against the VM dump; now hold it to
	// the generator's independent reference.  A mismatch here means
	// "verified but wrong" — the failure class the paper's differential
	// testing exists to rule out.
	out, err := res.EvalIR()
	if err != nil {
		return fmt.Errorf("evaluating the verified pipeline: %w", err)
	}
	if !bytes.Equal(out, inst.Reference) {
		rep.Outcome = OutcomeWrongAnswer
		rep.Err = fmt.Errorf("verified pipeline disagrees with the reference (%d/%d bytes differ)", diffCount(out, inst.Reference), len(inst.Reference))
		return nil
	}

	// Generated-source backend: render the Go package for this kernel and
	// demand it parses (full compile+run per case is the nightly job's
	// budget, not the smoke corpus's).
	unit := ir.GenKernel{Name: "fuzzcase"}
	for i := range res.Stages {
		st := &res.Stages[i]
		if st.Red != nil {
			unit.Red = st.Red
			unit.RedFirst = i < len(res.Stages)-1
		} else {
			unit.Stages = append(unit.Stages, st.Kernel)
		}
	}
	src, err := ir.GenerateUnits("fuzzcase", []ir.GenKernel{unit})
	if err != nil {
		return fmt.Errorf("codegen: %w", err)
	}
	if _, err := parser.ParseFile(token.NewFileSet(), "fuzzcase.go", src, 0); err != nil {
		return fmt.Errorf("codegen emitted unparsable Go: %w", err)
	}
	return nil
}

// diffCount counts differing bytes over the common prefix plus the length
// difference.
func diffCount(a, b []byte) int {
	n := min(len(a), len(b))
	d := max(len(a), len(b)) - n
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}
