// Package fuzzgen generates randomized "legacy binaries" — stencil,
// point, predicated, reduction and multi-stage kernels assembled through
// internal/asm under randomized obfuscations (unrolling, loop peeling,
// column tiling, dead code, strength reduction, instruction-selection
// variants) — and drives the full lifting pipeline against each one.
// Every generated program is paired with a pure-Go reference, so the
// harness can assert the paper's end-to-end contract on arbitrary inputs:
// the pipeline either reproduces the binary bit-exactly on every backend
// or returns a typed, named rejection diagnostic.  It must never panic,
// hang, or silently produce a wrong answer.
package fuzzgen

import "fmt"

// Shape is the semantic family of a generated kernel.
type Shape int

// The generated kernel families.  The two Unsupported shapes sit just
// outside the pipeline's pattern language on purpose: they must come back
// as rejections whose diagnostics name the offending instruction and the
// nearest supported pattern.
const (
	// ShapePoint is dst[x] = ((A*src[x] + B) >> Shift) & 0xff.
	ShapePoint Shape = iota
	// ShapeStencil3 is a horizontal three-tap weighted stencil over a
	// padded plane: dst[x] = ((W0*s[x-1] + W1*s[x] + W2*s[x+1] + 2) >> 2) & 0xff.
	ShapeStencil3
	// ShapePredicated conditionally brightens below a threshold with a
	// real branch: dst[x] = s[x] < Thresh ? (s[x]+B) & 0xff : s[x].
	ShapePredicated
	// ShapeReduction accumulates a 256-bin dword histogram, Delta per
	// sample.
	ShapeReduction
	// ShapeTwoStage pipelines a point stage through a private scratch
	// plane into a horizontal average: tmp[x] = (A*s[x]+B)>>1, then
	// dst[x] = (tmp[x] + tmp[x+1] + 1) >> 1 at width W-1.
	ShapeTwoStage
	// ShapeAffine is a strided two-tap average — dst[x] = (s[S*x+F] +
	// s[S*x+F+1] + 1) >> 1 with randomized stride S and offset F — whose
	// scaled source index defeats translation-based unification and must
	// come back through the affine index-map refit.
	ShapeAffine
	// ShapeRedConsume runs a cumulative histogram reduction with a
	// randomized table width into a per-pixel LUT remap that consumes the
	// table: dst[x] = tbl[s[x]>>shift] * M / tbl[Bins-1].  The reduction
	// is ordered before the stencil, histeq-style.
	ShapeRedConsume
	// ShapeUnsupportedJS branches on the sign flag of a compare (js),
	// which the extractor rejects by design.
	ShapeUnsupportedJS
	// ShapeUnsupportedAdc folds the carry flag into data with adc, which
	// the extractor rejects by design.
	ShapeUnsupportedAdc
	// ShapeUnsupportedQuad indexes the source at x*x — non-affine index
	// arithmetic that sits just outside the affine index-map refit, which
	// must reject it by design.
	ShapeUnsupportedQuad
	// ShapeUnsupportedPartialTable interleaves a cumulative histogram's
	// accumulation with the pass that consumes its table, row by row, so
	// the consuming stage reads a partially written reduction table —
	// rejected by design (a consuming stage must follow the whole
	// reduction).
	ShapeUnsupportedPartialTable

	numShapes
)

// String names the shape for reports and test names.
func (s Shape) String() string {
	switch s {
	case ShapePoint:
		return "point"
	case ShapeStencil3:
		return "stencil3"
	case ShapePredicated:
		return "predicated"
	case ShapeReduction:
		return "reduction"
	case ShapeTwoStage:
		return "twostage"
	case ShapeAffine:
		return "affine"
	case ShapeRedConsume:
		return "redconsume"
	case ShapeUnsupportedJS:
		return "unsupported-js"
	case ShapeUnsupportedAdc:
		return "unsupported-adc"
	case ShapeUnsupportedQuad:
		return "unsupported-quad"
	case ShapeUnsupportedPartialTable:
		return "unsupported-partialtable"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// Supported reports whether the pipeline is expected to lift and verify
// the shape (false: it must return a typed rejection).
func (s Shape) Supported() bool {
	switch s {
	case ShapeUnsupportedJS, ShapeUnsupportedAdc, ShapeUnsupportedQuad, ShapeUnsupportedPartialTable:
		return false
	}
	return true
}

// Obfuscation selects the semantics-preserving code-shape transforms the
// emitter applies — the paper's adversaries: what optimizing compilers
// and hand-tuners do to stencil loops.
type Obfuscation struct {
	// Unroll is the inner-loop unroll factor (1, 2 or 4), always with a
	// peeled scalar remainder loop.
	Unroll int
	// PeelFirstRow emits row 0 through a separate non-unrolled loop copy
	// before the main row loop.
	PeelFirstRow bool
	// TileCols splits the columns into two tiles driven by a separate
	// worker function, boxblur-style.
	TileCols bool
	// DeadCode sprinkles nops and dead stack-local writes into the row
	// setup (exercising the analyses' stack-write exclusion).
	DeadCode bool
	// StrengthReduce replaces constant multiplies with shift-add
	// sequences where the constant allows it.
	StrengthReduce bool
	// SelVariant picks alternate instruction selections for the same
	// semantics (xor vs mov 0, inc vs add 1).
	SelVariant bool
}

// String renders the active obfuscations compactly.
func (o Obfuscation) String() string {
	s := fmt.Sprintf("u%d", o.Unroll)
	if o.PeelFirstRow {
		s += "+peel"
	}
	if o.TileCols {
		s += "+tile"
	}
	if o.DeadCode {
		s += "+dead"
	}
	if o.StrengthReduce {
		s += "+sr"
	}
	if o.SelVariant {
		s += "+sel"
	}
	return s
}

// Spec fully determines one generated legacy binary and its workload.
// Everything is derived deterministically from Seed, so a failing seed is
// a complete reproducer.
type Spec struct {
	Seed          uint64
	Shape         Shape
	Width, Height int
	// A, B and Shift parameterize the point families.
	A, B  int
	Shift int
	// W0..W2 are the stencil tap weights.
	W0, W1, W2 int
	// Thresh is the predicated threshold.
	Thresh int
	// Delta is the histogram increment (1 or 2).
	Delta int
	// Stride and SOff parameterize the affine shape's index map
	// in = Stride*x + SOff.
	Stride, SOff int
	// Bins is the reduction-consuming shape's table width; TblShift
	// buckets a sample into it (Bins<<TblShift == 256).
	Bins, TblShift int
	// ScaleM is the reduction-consuming remap's numerator constant.
	ScaleM int
	Obf    Obfuscation
}

// Name renders a stable identifier for test names and fixtures.
func (s Spec) Name() string {
	return fmt.Sprintf("seed%d-%s-%dx%d-%s", s.Seed, s.Shape, s.Width, s.Height, s.Obf)
}

// rng is a splitmix64 stream: tiny, seedable and good enough for shape
// dice (crypto quality is beside the point; determinism is not).
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// coin returns true with probability 1/2.
func (r *rng) coin() bool { return r.next()&1 == 1 }

// NewSpec derives a full program spec from a seed.  Supported shapes are
// drawn four times as often as the deliberately-unsupported ones, so a
// smoke corpus exercises both the verify path and the rejection path.
func NewSpec(seed uint64) Spec {
	r := rng{state: seed}
	// 0..13: twelve supported draws, two unsupported.
	var shape Shape
	switch r.intn(14) {
	case 0, 1:
		shape = ShapePoint
	case 2, 3:
		shape = ShapeStencil3
	case 4, 5:
		shape = ShapePredicated
	case 6:
		shape = ShapeReduction
	case 7:
		shape = ShapeTwoStage
	case 8, 9:
		shape = ShapeAffine
	case 10, 11:
		shape = ShapeRedConsume
	case 12:
		shape = ShapeUnsupportedJS
	default:
		shape = ShapeUnsupportedAdc
	}
	return newSpecShaped(seed, shape, &r)
}

// NewSpecShaped derives a spec with the shape pinned, for targeted tests
// (rejection diagnostics, fault injection) that need a specific family.
func NewSpecShaped(seed uint64, shape Shape) Spec {
	r := rng{state: seed}
	r.next() // burn the shape draw so parameters match NewSpec's stream
	return newSpecShaped(seed, shape, &r)
}

func newSpecShaped(seed uint64, shape Shape, r *rng) Spec {
	s := Spec{
		Seed:   seed,
		Shape:  shape,
		Width:  8 + r.intn(14), // 8..21
		Height: 4 + r.intn(8),  // 4..11
		A:      []int{2, 3, 4, 5}[r.intn(4)],
		B:      1 + r.intn(96),
		Shift:  r.intn(3),
		W0:     1 + r.intn(4),
		W1:     1 + r.intn(4),
		W2:     1 + r.intn(4),
		Thresh: 64 + r.intn(128),
		Delta:  1 + r.intn(2),
		Obf: Obfuscation{
			Unroll:         []int{1, 2, 4}[r.intn(3)],
			PeelFirstRow:   r.coin(),
			TileCols:       r.coin(),
			DeadCode:       r.coin(),
			StrengthReduce: r.coin(),
			SelVariant:     r.coin(),
		},
		Stride: 2 + r.intn(2),
		SOff:   r.intn(2),
		Bins:   []int{16, 32, 64}[r.intn(3)],
		ScaleM: []int{100, 200, 255}[r.intn(3)],
	}
	s.TblShift = map[int]int{16: 4, 32: 3, 64: 2}[s.Bins]
	// Tiling restructures the filter into a driver + worker pair; keep it
	// to the single-stage stencil families where that structure is
	// idiomatic (reductions and multi-stage filters tile their own ways).
	if shape == ShapeReduction || shape == ShapeTwoStage {
		s.Obf.TileCols = false
		s.Obf.PeelFirstRow = s.Obf.PeelFirstRow && shape != ShapeReduction
	}
	// The affine refit re-extracts single-region traces; the two-tile
	// driver is out of its scope.  The reduction-consuming pipeline lays
	// out its own three passes, histeq-style.
	if shape == ShapeAffine || shape == ShapeUnsupportedQuad {
		s.Obf.TileCols = false
	}
	if shape == ShapeRedConsume || shape == ShapeUnsupportedPartialTable {
		s.Obf.TileCols = false
		s.Obf.PeelFirstRow = false
	}
	return s
}
