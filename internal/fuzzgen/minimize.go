package fuzzgen

import (
	"fmt"
	"strconv"
	"strings"
)

// FailsContract is the nightly failure predicate: a spec fails when its
// pipeline run lands outside the verified-or-rejected contract, or on the
// wrong side of it for its shape (a supported shape that stops verifying
// is a canonicalizer regression even though a rejection is "typed").
// Minimization preserves exactly this predicate.
func FailsContract(spec Spec) bool {
	rep := Run(spec)
	if !rep.Ok() {
		return true
	}
	if spec.Shape.Supported() {
		return rep.Outcome != OutcomeVerified
	}
	return rep.Outcome != OutcomeRejected
}

// MinimizeResult is a minimization outcome: the original failing spec,
// the smallest spec still failing, and the predicate budget spent.
type MinimizeResult struct {
	Original, Minimal Spec
	Runs              int
}

// Line renders the ready-to-commit testdata/regressions.txt line.  The
// replay fixture format derives the whole spec from the seed, so the line
// keeps the ORIGINAL seed (the reproducer) and carries the minimized
// shape in the note, where a human reads it while fixing the bug.
func (m MinimizeResult) Line() string {
	note := fmt.Sprintf("fuzzer find, minimized at the same seed: still fails as %s", strings.TrimPrefix(m.Minimal.Name(), fmt.Sprintf("seed%d-", m.Minimal.Seed)))
	if m.Minimal == m.Original {
		note = fmt.Sprintf("fuzzer find: %s (irreducible)", strings.TrimPrefix(m.Original.Name(), fmt.Sprintf("seed%d-", m.Original.Seed)))
	}
	return fmt.Sprintf("%d %s", m.Original.Seed, note)
}

// Minimize shrinks a failing spec to a minimal reproducer at the same
// seed: it greedily disables obfuscations one at a time, then
// binary-searches the width and height down toward the generator's floor
// (8x4), and repeats until a fixpoint.  Every accepted step re-runs the
// failure predicate, so the result is verified failing regardless of
// whether the failure is monotone in any single knob.
func Minimize(spec Spec, fails func(Spec) bool) MinimizeResult {
	m := MinimizeResult{Original: spec, Minimal: spec}
	check := func(c Spec) bool {
		m.Runs++
		return fails(c)
	}
	if !check(spec) {
		return m // not failing: nothing to preserve
	}
	for round := 0; round < 4; round++ {
		before := m.Minimal

		// Obfuscations, one at a time: keep any single disablement that
		// still fails (a greedy ddmin over six independent knobs).
		for _, mut := range []func(*Obfuscation){
			func(o *Obfuscation) { o.Unroll = 1 },
			func(o *Obfuscation) { o.PeelFirstRow = false },
			func(o *Obfuscation) { o.TileCols = false },
			func(o *Obfuscation) { o.DeadCode = false },
			func(o *Obfuscation) { o.StrengthReduce = false },
			func(o *Obfuscation) { o.SelVariant = false },
		} {
			c := m.Minimal
			mut(&c.Obf)
			if c != m.Minimal && check(c) {
				m.Minimal = c
			}
		}

		// Geometry: binary-search each extent down to the generator floor.
		m.Minimal.Width = shrinkInt(m.Minimal.Width, 8, func(v int) bool {
			c := m.Minimal
			c.Width = v
			return check(c)
		})
		m.Minimal.Height = shrinkInt(m.Minimal.Height, 4, func(v int) bool {
			c := m.Minimal
			c.Height = v
			return check(c)
		})

		if m.Minimal == before {
			break
		}
	}
	return m
}

// shrinkInt binary-searches the smallest value in [floor, cur] where
// failsAt holds, maintaining the invariant that the returned value was
// actually tested failing (cur is known failing on entry).
func shrinkInt(cur, floor int, failsAt func(int) bool) int {
	lo, hi := floor, cur
	for lo < hi {
		mid := lo + (hi-lo)/2
		if failsAt(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

// ParseSeedList extracts fuzz seeds from the nightly artifact format: one
// entry per line, either a bare integer or a spec name ("seed123-...",
// what the log scraper collects), comments and blanks ignored.
func ParseSeedList(data string) ([]uint64, error) {
	var seeds []uint64
	seen := map[uint64]bool{}
	for _, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tok := strings.Fields(line)[0]
		tok = strings.TrimPrefix(tok, "seed")
		if i := strings.IndexByte(tok, '-'); i >= 0 {
			tok = tok[:i]
		}
		seed, err := strconv.ParseUint(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fuzzgen: bad seed line %q: %w", line, err)
		}
		if !seen[seed] {
			seen[seed] = true
			seeds = append(seeds, seed)
		}
	}
	return seeds, nil
}
