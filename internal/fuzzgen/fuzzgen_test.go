package fuzzgen

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"helium/internal/faultpoint"
	"helium/internal/lift"
)

// corpusSize returns the smoke corpus size: HELIUM_FUZZ_N when set, 200
// by default (the CI smoke budget), less under -short.
func corpusSize(t *testing.T) int {
	if s := os.Getenv("HELIUM_FUZZ_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad HELIUM_FUZZ_N=%q", s)
		}
		return n
	}
	if testing.Short() {
		return 40
	}
	return 200
}

// runCorpus fans the seeds across workers and returns the reports.
func runCorpus(seeds []uint64) []Report {
	reports := make([]Report, len(seeds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, seed := range seeds {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, seed uint64) {
			defer wg.Done()
			defer func() { <-sem }()
			reports[i] = Run(NewSpec(seed))
		}(i, seed)
	}
	wg.Wait()
	return reports
}

// TestSmokeCorpus is the pipeline's randomized end-to-end contract check:
// N seeded random binaries, each either verified bit-exact on every
// backend or rejected with a typed diagnostic.  Panics, untyped errors,
// wrong answers and generator bugs all fail, and supported shapes must
// actually verify (a rejection there means the canonicalizer regressed
// against some obfuscation mix).
func TestSmokeCorpus(t *testing.T) {
	n := corpusSize(t)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	counts := map[Outcome]int{}
	shapes := map[Shape]int{}
	for _, rep := range runCorpus(seeds) {
		counts[rep.Outcome]++
		if !rep.Ok() {
			t.Errorf("%s", rep)
			continue
		}
		if rep.Spec.Shape.Supported() && rep.Outcome != OutcomeVerified {
			t.Errorf("supported shape not verified: %s", rep)
		}
		if !rep.Spec.Shape.Supported() && rep.Outcome != OutcomeRejected {
			t.Errorf("unsupported shape not rejected: %s", rep)
		}
		if rep.Outcome == OutcomeVerified {
			shapes[rep.Spec.Shape]++
		}
	}
	t.Logf("corpus of %d: %d verified, %d rejected; verified by shape: %v", n,
		counts[OutcomeVerified], counts[OutcomeRejected], shapes)
	if counts[OutcomeVerified] == 0 || counts[OutcomeRejected] == 0 {
		t.Fatalf("degenerate corpus: %v", counts)
	}
}

// TestEveryShapeEveryObfuscation pins one seed per (shape, unroll) pair so
// a regression in any single family is named directly instead of sampled.
func TestEveryShapeEveryObfuscation(t *testing.T) {
	for shape := Shape(0); shape < numShapes; shape++ {
		for seed := uint64(1); seed <= 6; seed++ {
			spec := NewSpecShaped(seed*977, shape)
			t.Run(spec.Name(), func(t *testing.T) {
				t.Parallel()
				rep := Run(spec)
				if !rep.Ok() {
					t.Fatalf("%s", rep)
				}
				if spec.Shape.Supported() != (rep.Outcome == OutcomeVerified) {
					t.Fatalf("unexpected outcome: %s", rep)
				}
			})
		}
	}
}

// TestRejectionDiagnosticsSurvive asserts the PR-4 diagnostic contract on
// fuzz-generated unsupported shapes: the rejection must come from the
// right phase, name the offending instruction or arithmetic, and suggest
// the nearest supported pattern — not just fail, and never panic.  The
// quad and partial-table rows sit just outside the affine index-map and
// reduction-consuming patterns respectively.
func TestRejectionDiagnosticsSurvive(t *testing.T) {
	cases := []struct {
		shape Shape
		phase lift.Phase
		wants []string
	}{
		{ShapeUnsupportedJS, lift.PhaseExtract,
			[]string{"js", "nearest supported pattern"}},
		{ShapeUnsupportedAdc, lift.PhaseExtract,
			[]string{"adc", "nearest supported pattern", "carry"}},
		// Non-affine index arithmetic (src[x*x]): the translation unifier
		// fails, the affine refit names the tap bases that fit no a*x+b.
		{ShapeUnsupportedQuad, lift.PhaseUnify,
			[]string{"do not fit an affine map", "not affine in the output coordinate"}},
		// A stage consuming a partially written reduction table: the
		// extractor names the premature read and the ordering rule.
		{ShapeUnsupportedPartialTable, lift.PhaseExtract,
			[]string{"reads the reduction table", "before the table is fully written",
				"a consuming stage must run after the whole reduction"}},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 4; seed++ {
			spec := NewSpecShaped(seed*1301, tc.shape)
			t.Run(spec.Name(), func(t *testing.T) {
				rep := Run(spec)
				if rep.Outcome != OutcomeRejected {
					t.Fatalf("want rejection, got %s", rep)
				}
				if rep.Phase != tc.phase {
					t.Errorf("rejected at phase %s, want %s", rep.Phase, tc.phase)
				}
				msg := rep.Err.Error()
				for _, want := range tc.wants {
					if !strings.Contains(msg, want) {
						t.Errorf("diagnostic %q does not mention %q", msg, want)
					}
				}
			})
		}
	}
}

// TestReplayRegressions replays the committed failing-seed fixtures.
// Each line of testdata/regressions.txt is "<seed> <comment>": a seed
// that once triggered a panic, hang or misclassification.  They must all
// stay inside the contract forever.
func TestReplayRegressions(t *testing.T) {
	f, err := os.Open("testdata/regressions.txt")
	if err != nil {
		t.Fatalf("open fixtures: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		seed, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			t.Fatalf("bad fixture line %q: %v", line, err)
		}
		spec := NewSpec(seed)
		t.Run(spec.Name(), func(t *testing.T) {
			rep := Run(spec)
			if !rep.Ok() {
				t.Fatalf("regression fixture failing again: %s", rep)
			}
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read fixtures: %v", err)
	}
}

// TestFaultCorruptInput arms the buffer-corruption faultpoint and demands
// the pipeline degrade to a typed rejection — a corrupted reconstruction
// must never survive to a wrong answer.
func TestFaultCorruptInput(t *testing.T) {
	faultpoint.Enable("lift.corrupt-input")
	defer faultpoint.Reset()
	for seed := uint64(1); seed <= 8; seed++ {
		spec := NewSpecShaped(seed*577, ShapePoint)
		rep := Run(spec)
		if rep.Outcome == OutcomeWrongAnswer || rep.Outcome == OutcomePanicked || rep.Outcome == OutcomeUntypedError {
			t.Fatalf("corrupted input broke the contract: %s", rep)
		}
		if rep.Outcome == OutcomeVerified {
			t.Fatalf("corrupted input verified cleanly (faultpoint not wired?): %s", rep)
		}
	}
}

// TestFaultTruncateTrace arms the truncated-trace faultpoint: a capture
// that dies mid-filter must come back as a typed rejection at the trace
// phase.
func TestFaultTruncateTrace(t *testing.T) {
	faultpoint.Enable("trace.truncate")
	defer faultpoint.Reset()
	spec := NewSpecShaped(42, ShapeStencil3)
	rep := Run(spec)
	if rep.Outcome != OutcomeRejected {
		t.Fatalf("want rejection, got %s", rep)
	}
	if rep.Phase != lift.PhaseTrace {
		t.Fatalf("want rejection at %s, got %s", lift.PhaseTrace, rep)
	}
}

// TestBudgetsBound checks the spec-derived programs stay tiny enough that
// the step budget means "hang", not "slow": the largest image at the
// deepest shape must finish far under budget.
func TestBudgetsBound(t *testing.T) {
	spec := NewSpecShaped(7, ShapeTwoStage)
	spec.Width, spec.Height = 21, 11
	inst, err := Build(spec)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := inst.RunVMBounded(maxSteps / 10); err != nil {
		t.Fatalf("worst-case program busts a tenth of the budget: %v", err)
	}
}
