package fuzzgen

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"helium/internal/faultpoint"
)

// TestMinimizeSyntheticPredicate checks the search machinery against a
// predicate with a known minimum: the "bug" needs DeadCode and at least
// 13 columns, nothing else.  The minimizer must strip every other
// obfuscation, keep DeadCode, and land exactly on the width threshold and
// the height floor.
func TestMinimizeSyntheticPredicate(t *testing.T) {
	fails := func(s Spec) bool { return s.Obf.DeadCode && s.Width >= 13 }
	start := NewSpecShaped(99, ShapeStencil3)
	start.Width, start.Height = 21, 11
	start.Obf = Obfuscation{Unroll: 4, PeelFirstRow: true, TileCols: true, DeadCode: true, StrengthReduce: true, SelVariant: true}
	if !fails(start) {
		t.Fatal("synthetic start spec does not fail")
	}

	m := Minimize(start, fails)
	got := m.Minimal
	if !fails(got) {
		t.Fatalf("minimized spec no longer fails: %s", got.Name())
	}
	want := Obfuscation{Unroll: 1, DeadCode: true}
	if got.Obf != want {
		t.Errorf("minimized obfuscations %s, want u1+dead only", got.Obf)
	}
	if got.Width != 13 || got.Height != 4 {
		t.Errorf("minimized geometry %dx%d, want the 13x4 threshold", got.Width, got.Height)
	}
	if got.Seed != start.Seed {
		t.Errorf("minimization changed the seed: %d -> %d", start.Seed, got.Seed)
	}
	if m.Runs > 60 {
		t.Errorf("minimization spent %d predicate runs; the binary search should stay well under 60", m.Runs)
	}

	line := m.Line()
	if !strings.HasPrefix(line, strconv.FormatUint(start.Seed, 10)+" ") {
		t.Errorf("regression line %q does not lead with the original seed", line)
	}
	if !strings.Contains(line, "13x4") {
		t.Errorf("regression line %q does not carry the minimized shape", line)
	}
}

// TestMinimizeNonFailingSpecIsIdentity pins the guard: a spec that does
// not fail comes back untouched after one predicate run.
func TestMinimizeNonFailingSpecIsIdentity(t *testing.T) {
	spec := NewSpecShaped(7, ShapePoint)
	m := Minimize(spec, func(Spec) bool { return false })
	if m.Minimal != spec || m.Runs != 1 {
		t.Fatalf("non-failing spec minimized anyway (%d runs)", m.Runs)
	}
}

// TestMinimizeRealPipelineFailure minimizes an actual contract violation:
// under the corrupt-input faultpoint every supported shape stops
// verifying, so the minimizer — running the real pipeline as its
// predicate — must walk the spec down to the 8x4 floor with all
// obfuscations stripped while the failure persists.
func TestMinimizeRealPipelineFailure(t *testing.T) {
	faultpoint.Enable("lift.corrupt-input")
	defer faultpoint.Reset()
	spec := NewSpecShaped(4242, ShapePoint)
	spec.Obf = Obfuscation{Unroll: 2, PeelFirstRow: true, DeadCode: true, StrengthReduce: true, SelVariant: true}
	if !FailsContract(spec) {
		t.Fatal("corrupt-input faultpoint not biting; cannot exercise the minimizer")
	}

	m := Minimize(spec, FailsContract)
	got := m.Minimal
	if (got.Obf != Obfuscation{Unroll: 1}) {
		t.Errorf("minimized obfuscations %s, want none", got.Obf)
	}
	if got.Width != 8 || got.Height != 4 {
		t.Errorf("minimized geometry %dx%d, want the 8x4 floor", got.Width, got.Height)
	}
	if !FailsContract(got) {
		t.Fatal("minimized spec no longer violates the contract")
	}
}

// TestParseSeedList covers both artifact formats the nightly job
// produces: scraped spec names and bare seeds, with comments, blanks and
// duplicates.
func TestParseSeedList(t *testing.T) {
	seeds, err := ParseSeedList("# failing seeds\nseed123-point-12x8-u2+peel\n\n77 some note\nseed123-point-12x8-u2+peel\nseed9-stencil3-8x4-u1\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{123, 77, 9}
	if len(seeds) != len(want) {
		t.Fatalf("parsed %v, want %v", seeds, want)
	}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("parsed %v, want %v", seeds, want)
		}
	}
	if _, err := ParseSeedList("not-a-seed\n"); err == nil {
		t.Fatal("malformed line parsed without error")
	}
}

// TestMinimizeSeedList is the nightly workflow's minimization stage,
// env-gated so the normal test run skips it.  It reads the failing-seed
// artifact (HELIUM_FUZZ_MINIMIZE, a file path or an inline comma list),
// minimizes each seed that still violates the contract, and writes
// ready-to-commit testdata/regressions.txt lines to
// HELIUM_FUZZ_MINIMIZE_OUT.  It reports, it does not judge: the corpus
// job already failed, this stage only sharpens the reproducers.
func TestMinimizeSeedList(t *testing.T) {
	src := os.Getenv("HELIUM_FUZZ_MINIMIZE")
	if src == "" {
		t.Skip("set HELIUM_FUZZ_MINIMIZE to a seeds file (or inline list) to run the minimization stage")
	}
	data := src
	if raw, err := os.ReadFile(src); err == nil {
		data = string(raw)
	} else {
		data = strings.ReplaceAll(src, ",", "\n")
	}
	seeds, err := ParseSeedList(data)
	if err != nil {
		t.Fatal(err)
	}

	var lines []string
	for _, seed := range seeds {
		spec := NewSpec(seed)
		if !FailsContract(spec) {
			t.Logf("seed %d no longer violates the contract; skipping", seed)
			continue
		}
		m := Minimize(spec, FailsContract)
		t.Logf("seed %d minimized in %d runs: %s", seed, m.Runs, m.Minimal.Name())
		t.Logf("ready to commit: %s", m.Line())
		lines = append(lines, m.Line())
	}
	if out := os.Getenv("HELIUM_FUZZ_MINIMIZE_OUT"); out != "" && len(lines) > 0 {
		if err := os.WriteFile(out, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote %d regression line(s) to %s", len(lines), out)
	}
}
