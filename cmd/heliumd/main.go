// Command heliumd serves the lifted kernel corpus over HTTP —
// lifting-as-a-service.  A request names a corpus kernel and a geometry;
// the server lifts the legacy binary once (caching the outcome, good or
// poisoned, forever), executes the tuned regenerated kernel, and answers
// with the output bytes.  Robustness is the contract: under injected
// faults, overload and hostile requests every response is bit-exact
// pixels or a typed error — never a wrong answer, a hung connection, or
// a dead process.
//
// Usage:
//
//	heliumd [-addr :8080] [-schedules schedules.json] [-workers N]
//	        [-queue N] [-per-kernel N] [-timeout 10s] [-drain 10s]
//	        [-warm] [-eval-workers N] [-fault-slow 25ms]
//	        [-log-level info] [-pprof]
//	heliumd -ref -kernel name [-width N] [-height N] [-seed N]
//	heliumd -bench [-bench-out BENCH_serve.json] [-bench-kernel name]
//	        [-bench-levels 1,4,16] [-bench-requests N]
//
// Endpoints:
//
//	POST /v1/eval?kernel=name&width=W&height=H[&seed=S]
//	     body = raw input interior bytes; empty body or GET = the
//	     deterministic seed pattern (helium run's workload)
//	GET  /healthz   liveness (200 while the process serves)
//	GET  /readyz    readiness (503 while warming or draining)
//	GET  /v1/kernels  registry state, breaker states, per-backend counters
//	GET  /v1/stats    global counters
//	GET  /metrics     Prometheus text exposition of every instrument
//	GET  /debug/pprof/  net/http/pprof (only with -pprof)
//
// Operational logs are structured key=value lines on stderr (-log-level
// selects the threshold); every eval response carries an X-Helium-Trace
// id naming its access-log line.  stdout stays reserved for payload
// bytes (-ref) and the scripted lifecycle lines CI greps.
//
// -ref prints the ground-truth response bytes for a pattern-mode request
// computed by re-emulating the legacy binary directly — independent of
// every lifted path — so CI can diff served bytes against the binary's
// own output.  -bench runs the load generator against an in-process
// server and writes BENCH_serve.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"helium/internal/obs"
	"helium/internal/schedule"
	"helium/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		schedPath = flag.String("schedules", "schedules.json", "tuned schedule set (missing file = heuristic defaults)")
		workers   = flag.Int("workers", 0, "execution pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "admission queue depth (full queue sheds with 503)")
		perKernel = flag.Int("per-kernel", 0, "per-kernel concurrency limit (0 = pool size)")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request execution deadline")
		drain     = flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
		warm      = flag.Bool("warm", true, "lift the whole corpus before reporting ready")
		evalW     = flag.Int("eval-workers", 1, "intra-request parallelism (requests parallelize across the pool)")
		slow      = flag.Duration("fault-slow", 25*time.Millisecond, "injected delay of the serve.slow-backend faultpoint")
		maxW      = flag.Int("max-width", 2048, "largest accepted request width")
		maxH      = flag.Int("max-height", 2048, "largest accepted request height")
		logLevel  = flag.String("log-level", "info", "stderr log threshold: debug, info, warn, error, off")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		ref    = flag.Bool("ref", false, "print the vm ground-truth response for one request and exit")
		kernel = flag.String("kernel", "boxblur3", "kernel for -ref")
		width  = flag.Int("width", 40, "request width for -ref/-bench")
		height = flag.Int("height", 24, "request height for -ref/-bench")
		seed   = flag.Uint64("seed", 1, "request seed for -ref/-bench")

		bench     = flag.Bool("bench", false, "run the load generator against an in-process server and exit")
		benchOut  = flag.String("bench-out", "BENCH_serve.json", "bench report path")
		benchKern = flag.String("bench-kernel", "boxblur3", "kernel the bench requests target")
		benchLvls = flag.String("bench-levels", "1,4,16", "comma-separated concurrent client counts")
		benchReqs = flag.Int("bench-requests", 400, "requests per concurrency level")
	)
	flag.Parse()

	log := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel))
	scheds, err := loadSchedules(*schedPath, log)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heliumd: %v\n", err)
		os.Exit(1)
	}
	opts := serve.Options{
		Schedules:        scheds,
		Workers:          *workers,
		QueueDepth:       *queue,
		PerKernel:        *perKernel,
		Timeout:          *timeout,
		DrainTimeout:     *drain,
		EvalWorkers:      *evalW,
		SlowBackendDelay: *slow,
		MaxWidth:         *maxW,
		MaxHeight:        *maxH,
		Logger:           log,
		EnablePprof:      *pprofOn,
	}

	switch {
	case *ref:
		s := serve.New(opts)
		out, err := s.Reference(*kernel, *width, *height, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heliumd: ref: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
	case *bench:
		if opts.PerKernel == 0 {
			// Let the queue, not the per-kernel limit, govern overload at
			// high client counts.
			opts.PerKernel = *queue
		}
		levels, err := parseLevels(*benchLvls)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heliumd: %v\n", err)
			os.Exit(1)
		}
		s := serve.New(opts)
		s.Warm()
		rep, err := s.Bench(serve.BenchOptions{
			Kernel: *benchKern, Width: *width, Height: *height, Seed: *seed,
			Levels: levels, Requests: *benchReqs,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "heliumd: bench: %v\n", err)
			os.Exit(1)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		s.Shutdown(ctx)
		cancel()
		data, _ := json.MarshalIndent(rep, "", "  ")
		data = append(data, '\n')
		if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "heliumd: bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d levels)\n", *benchOut, len(rep.Levels))
	default:
		if err := run(opts, *addr, *warm, log); err != nil {
			fmt.Fprintf(os.Stderr, "heliumd: %v\n", err)
			os.Exit(1)
		}
	}
}

// run serves until SIGINT/SIGTERM, then drains gracefully.  The final
// "heliumd: drained, bye" stays a bare stdout line — the scripted
// lifecycle marker CI greps for.
func run(opts serve.Options, addr string, warm bool, log *obs.Logger) error {
	s := serve.New(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Info("listening", "addr", ln.Addr().String(), "pprof", opts.EnablePprof)

	// Catch signals before the (multi-second) warm-up: a SIGTERM that
	// lands mid-warm must still drain gracefully, not kill the process.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	if warm {
		// Warm in the background so signals stay responsive; /readyz
		// turns 200 only once the whole corpus's lift outcome is cached.
		// (Warm itself logs the "corpus warmed" line with the duration.)
		go s.Warm()
	} else {
		s.MarkReady()
	}
	select {
	case err := <-done:
		return err
	case got := <-sig:
		log.Info("draining", "signal", got.String(), "budget", opts.DrainTimeout)
		if opts.DrainTimeout <= 0 {
			opts.DrainTimeout = 10 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		fmt.Println("heliumd: drained, bye")
		return <-done
	}
}

// loadSchedules mirrors the CLI's exec-consumer policy: a missing file
// means heuristic defaults, a parse failure is fatal, and a set tuned on
// another machine class is dropped with the reason logged to stderr
// (the server executes; it must not apply stale tuning — and stdout
// stays clean for payload bytes).
func loadSchedules(path string, log *obs.Logger) (*schedule.Set, error) {
	set, err := schedule.Load(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	if host := schedule.HostMachineKey(); !set.MatchesMachine(host) {
		log.Warn("dropping schedules: machine mismatch (re-run `helium tune`)",
			"path", path, "tuned_for", set.Machine, "host", host)
		return nil, nil
	}
	return set, nil
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no concurrency levels given")
	}
	return out, nil
}
