package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"helium/internal/schedule"
)

// captureStderr mirrors captureStdout for the warn-and-apply path, whose
// warning goes to stderr so `helium gen` pipelines stay clean.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	fn()
	w.Close()
	return <-done
}

// TestLoadSchedulesFileStates is the table over every schedules.json
// state a deployment can hand the CLI — missing, empty, malformed,
// invalid, unstamped, same-machine, other-machine — crossed with the two
// consumer roles: executing consumers (`helium run`) must never apply a
// set tuned elsewhere (drop with the reason printed, or refuse under
// -strict), while analysis consumers (`helium gen`, `helium bench`)
// warn-and-apply so artifacts stay byte-stable across build hosts.
func TestLoadSchedulesFileStates(t *testing.T) {
	// The host key is dynamic; render the fixture against the real one.
	hostSet := `{"machine":"` + schedule.HostMachineKey() + `","kernels":{"brighten":{"workers":1}}}`

	cases := []struct {
		name    string
		content string // file body; "" with missing=true means no file
		missing bool

		wantErr     bool // parse/validation failure: fatal for every consumer
		wantExecSet bool // forExec keeps the set
		wantAnaSet  bool // analysis keeps the set
		wantStrict  bool // forExec -strict errors even where plain exec degrades
		stdoutHas   string
		stderrHas   string
	}{
		{
			name:        "missing file",
			missing:     true,
			wantExecSet: false, wantAnaSet: false,
		},
		{
			name:    "empty file",
			content: "",
			wantErr: true,
		},
		{
			name:    "malformed json",
			content: `{"kernels": {`,
			wantErr: true,
		},
		{
			name:    "invalid schedule",
			content: `{"kernels":{"brighten":{"workers":-3}}}`,
			wantErr: true,
		},
		{
			name:    "invalid lane width",
			content: `{"kernels":{"brighten":{"stages":[{"lane":13}]}}}`,
			wantErr: true,
		},
		{
			name:        "unstamped set matches anywhere",
			content:     `{"kernels":{"brighten":{"workers":1}}}`,
			wantExecSet: true, wantAnaSet: true,
		},
		{
			name:        "same machine class",
			content:     hostSet,
			wantExecSet: true, wantAnaSet: true,
		},
		{
			name:        "other machine class",
			content:     `{"machine":"64c/512b","kernels":{"brighten":{"workers":32}}}`,
			wantExecSet: false, wantAnaSet: true, wantStrict: true,
			stdoutHas: "machine class 64c/512b",
			stderrHas: "warning",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "schedules.json")
			if !tc.missing {
				if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			if tc.wantErr {
				// Corrupt sets are fatal for every consumer: silently
				// benching or generating against defaults while claiming
				// the tuned set would be worse than stopping.
				for _, forExec := range []bool{true, false} {
					if _, err := loadSchedules(path, false, forExec, false); err == nil {
						t.Errorf("forExec=%v accepted the corrupt set", forExec)
					}
				}
				return
			}

			// Executing consumer (`helium run`).
			stdout := captureStdout(t, func() {
				set, err := loadSchedules(path, false, true, false)
				if err != nil {
					t.Errorf("forExec: unexpected error: %v", err)
				}
				if (set != nil) != tc.wantExecSet {
					t.Errorf("forExec kept set: %v, want %v", set != nil, tc.wantExecSet)
				}
			})
			if !tc.wantExecSet && !tc.missing {
				// A dropped set must say why on stdout, next to the run's
				// own backend report.
				if !strings.Contains(stdout, "fallback:") || !strings.Contains(stdout, tc.stdoutHas) {
					t.Errorf("drop reason not printed:\nstdout: %q", stdout)
				}
			}

			// Executing consumer under -strict: refuse instead of degrade.
			_, strictErr := loadSchedules(path, false, true, true)
			if (strictErr != nil) != tc.wantStrict {
				t.Errorf("strict error = %v, want error: %v", strictErr, tc.wantStrict)
			}
			if tc.wantStrict && !strings.Contains(strictErr.Error(), "-strict") {
				t.Errorf("strict refusal does not name the mode: %v", strictErr)
			}

			// Analysis consumer (`helium gen`/`bench`): warn-and-apply.
			anaErr := captureStderr(t, func() {
				set, err := loadSchedules(path, false, false, false)
				if err != nil {
					t.Errorf("analysis: unexpected error: %v", err)
				}
				if (set != nil) != tc.wantAnaSet {
					t.Errorf("analysis kept set: %v, want %v", set != nil, tc.wantAnaSet)
				}
			})
			if tc.stderrHas != "" && !strings.Contains(anaErr, tc.stderrHas) {
				t.Errorf("analysis warning missing %q:\nstderr: %q", tc.stderrHas, anaErr)
			}
			if tc.stderrHas == "" && strings.Contains(anaErr, "warning") {
				t.Errorf("analysis warned about a clean set:\nstderr: %q", anaErr)
			}
		})
	}
}
