package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"helium/internal/faultpoint"
	"helium/internal/legacy"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// everything it printed.  The degradation chain reports its fallbacks on
// stdout — they are part of the answer, not diagnostics — so the tests
// read them from there.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	fn()
	w.Close()
	out := <-done
	os.Stdout = old
	return out
}

func corpusKernel(t *testing.T, name string) legacy.Kernel {
	t.Helper()
	k, ok := legacy.Lookup(name)
	if !ok {
		t.Fatalf("corpus kernel %q missing", name)
	}
	return k
}

// TestBackendChain pins the degradation order: every chain steps through
// strictly simpler evaluators and ends at direct VM emulation.
func TestBackendChain(t *testing.T) {
	cases := map[string][]string{
		"generated": {"generated", "compiled", "interp", "vm"},
		"compiled":  {"compiled", "interp", "vm"},
		"interp":    {"interp", "vm"},
	}
	for backend, want := range cases {
		got := backendChain(backend)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("backendChain(%q) = %v, want %v", backend, got, want)
		}
	}
}

// TestDegradationChain injects a generated-backend verification failure
// and demands the run still succeed — bit-exact through the compiled
// backend — with the fallback reason surfaced in the output.
func TestDegradationChain(t *testing.T) {
	faultpoint.Enable("gen.verify-fail")
	defer faultpoint.Reset()
	k := corpusKernel(t, "brighten")
	cfg := legacy.Config{Width: 40, Height: 24, Seed: 1}
	var err error
	out := captureStdout(t, func() {
		err = run(k, cfg, "generated", 1, false, false, nil)
	})
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if !strings.Contains(out, "fallback: generated backend failed") {
		t.Errorf("output does not record the fallback reason:\n%s", out)
	}
	if !strings.Contains(out, "degrading to compiled") {
		t.Errorf("output does not name the next backend:\n%s", out)
	}
	if !strings.Contains(out, "pixel-exact (compiled backend") {
		t.Errorf("output does not show the compiled backend verifying:\n%s", out)
	}
}

// TestStrictDisablesDegradation asserts -strict turns the same injected
// fault into a hard error instead of a fallback.
func TestStrictDisablesDegradation(t *testing.T) {
	faultpoint.Enable("gen.verify-fail")
	defer faultpoint.Reset()
	k := corpusKernel(t, "brighten")
	cfg := legacy.Config{Width: 40, Height: 24, Seed: 1}
	var err error
	out := captureStdout(t, func() {
		err = run(k, cfg, "generated", 1, false, true, nil)
	})
	if err == nil {
		t.Fatal("strict run with an injected backend fault succeeded")
	}
	if !strings.Contains(err.Error(), "generated backend") || !strings.Contains(err.Error(), "-strict") {
		t.Errorf("strict error does not name the backend and mode: %v", err)
	}
	if strings.Contains(out, "fallback:") {
		t.Errorf("strict run still degraded:\n%s", out)
	}
}

// TestVMTerminalBackend proves the chain's last resort works on its own:
// direct emulation against the pure-Go reference, no lifted result.
func TestVMTerminalBackend(t *testing.T) {
	k := corpusKernel(t, "brighten")
	inst := k.Instantiate(legacy.Config{Width: 40, Height: 24, Seed: 1})
	out := captureStdout(t, func() {
		if err := runBackend("vm", k, inst, nil, 1, false, nil); err != nil {
			t.Errorf("vm terminal backend: %v", err)
		}
	})
	if !strings.Contains(out, "(vm backend, direct emulation)") {
		t.Errorf("vm backend did not report itself:\n%s", out)
	}
}

// TestScheduleMismatchFallsBack arms the machine-mismatch faultpoint and
// asserts an executing consumer drops the tuned set with the reason
// printed, while analysis consumers (gen/bench) keep it.
func TestScheduleMismatchFallsBack(t *testing.T) {
	faultpoint.Enable("sched.machine-mismatch")
	defer faultpoint.Reset()
	path := filepath.Join(repoRoot(), "schedules.json")

	out := captureStdout(t, func() {
		set, err := loadSchedules(path, false, true, false)
		if err != nil {
			t.Errorf("loadSchedules forExec: %v", err)
		}
		if set != nil {
			t.Error("mismatched schedule set was kept for execution")
		}
	})
	if !strings.Contains(out, "fallback:") || !strings.Contains(out, "machine class") {
		t.Errorf("mismatch fallback reason not printed:\n%s", out)
	}

	// -strict refuses instead of degrading.
	if _, err := loadSchedules(path, false, true, true); err == nil {
		t.Error("strict loadSchedules accepted a mismatched set")
	}

	// Analysis consumers keep the set (with a stderr warning) so that
	// `helium gen -check` stays byte-stable across build hosts.
	set, err := loadSchedules(path, false, false, false)
	if err != nil || set == nil {
		t.Errorf("analysis loadSchedules dropped the set: set=%v err=%v", set, err)
	}
}
