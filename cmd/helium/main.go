// Command helium runs the lifting pipeline end to end against the legacy
// corpus: it executes a kernel under the tracing VM, localizes the filter
// by coverage diffing, reconstructs the buffer structure, extracts and
// canonicalizes per-pixel expression trees, prints the lifted Halide-like
// IR, and verifies the IR pixel-exactly against the binary's own output.
//
// Usage:
//
//	helium [-kernel name] [-width N] [-height N] [-seed N] [-v]
//
// With no -kernel, every corpus kernel is lifted.  The exit status is
// nonzero if any kernel fails to lift or verify.
package main

import (
	"flag"
	"fmt"
	"os"

	"helium/internal/legacy"
	"helium/internal/lift"
)

func main() {
	var (
		kernelName = flag.String("kernel", "", "lift a single corpus kernel (default: all)")
		width      = flag.Int("width", 40, "image width in pixels")
		height     = flag.Int("height", 24, "image height in pixels")
		seed       = flag.Uint64("seed", 1, "deterministic input pattern seed")
		verbose    = flag.Bool("v", false, "print localization and buffer details")
		list       = flag.Bool("list", false, "list the corpus kernels and exit")
	)
	flag.Parse()

	if *list {
		for _, k := range legacy.Kernels() {
			fmt.Printf("%-10s %s\n", k.Name, k.Description)
		}
		return
	}

	// The pipeline needs images big enough that the output buffer dwarfs
	// the filter's stack traffic and row structure is observable.
	if *width < 12 || *height < 6 || *width > 4096 || *height > 4096 {
		fmt.Fprintf(os.Stderr, "helium: image size %dx%d out of range (min 12x6, max 4096x4096)\n", *width, *height)
		os.Exit(2)
	}

	kernels := legacy.Kernels()
	if *kernelName != "" {
		k, ok := legacy.Lookup(*kernelName)
		if !ok {
			fmt.Fprintf(os.Stderr, "helium: unknown kernel %q (try -list)\n", *kernelName)
			os.Exit(2)
		}
		kernels = []legacy.Kernel{k}
	}

	cfg := legacy.Config{Width: *width, Height: *height, Seed: *seed}
	failed := false
	for _, k := range kernels {
		if err := run(k, cfg, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "helium: %s: %v\n", k.Name, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func run(k legacy.Kernel, cfg legacy.Config, verbose bool) error {
	inst := k.Instantiate(cfg)
	tgt := lift.Target{
		Prog:  inst.Prog,
		Setup: inst.Setup,
		Known: lift.KnownInput{
			Width:       inst.Width,
			Height:      inst.Height,
			Channels:    inst.Channels,
			Interleaved: inst.Interleaved,
			Interior:    inst.InputInterior,
		},
	}

	fmt.Printf("=== %s (%s)\n", k.Name, cfg)
	res, err := lift.Lift(k.Name, tgt)
	if err != nil {
		return err
	}

	if verbose {
		fmt.Printf("localization: filter entry %#x (candidates %#x), coverage %d on / %d off blocks, diff %d\n",
			res.Loc.FilterEntry, res.Loc.Candidates, res.Loc.OnBlocks, res.Loc.OffBlocks, len(res.Loc.Diff))
		fmt.Printf("buffers: input base %#x stride %d; output base %#x stride %d, %dx%d px, %d channel(s)\n",
			res.Bufs.In.Base, res.Bufs.In.Stride,
			res.Bufs.Out.Base, res.Bufs.Out.Stride,
			res.Bufs.Out.Width(), res.Bufs.Out.Rows, res.Bufs.Out.Channels)
		fmt.Printf("trace: %d dynamic instructions (of %d executed), %d KiB dumped, %d sample trees\n",
			res.TraceInsts, res.TraceSteps, res.Dump.Size()/1024, res.Samples)
	}

	fmt.Print(res.Kernel)
	if err := res.Verify(); err != nil {
		return err
	}
	fmt.Printf("verified: %d samples pixel-exact\n\n", res.Samples)
	return nil
}
