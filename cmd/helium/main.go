// Command helium runs the lifting pipeline end to end against the legacy
// corpus: it executes a kernel under the tracing VM, localizes the filter
// by coverage diffing, reconstructs the buffer structure, extracts and
// canonicalizes per-pixel expression trees, prints the lifted Halide-like
// IR, and verifies the chosen backend pixel-exactly against the binary's
// own output.
//
// Usage:
//
//	helium [-kernel name] [-width N] [-height N] [-seed N] [-v]
//	       [-backend interp|compiled|generated] [-workers N]
//	       [-schedules schedules.json] [-strict]
//	helium -bench [-bench-out BENCH_lift.json] [-workers-sweep auto|1,2,4]
//	       [-cpuprofile f] [-memprofile f]
//	helium tune [-out schedules.json] [-smoke] [-width N] [-height N]
//	helium gen [-out dir] [-check] [-schedules schedules.json]
//
// With no -kernel, every corpus kernel is lifted.  The default backend
// compiles the lifted trees to register programs and evaluates them both
// serially and with the cache-blocked parallel driver — plus, when a
// tuned schedule set is present, under that schedule (sliding-window
// fusion included); -backend interp selects the tree-walking evaluator
// and -backend generated the ahead-of-time Go code in
// internal/liftedkernels.  Either way the output is compared byte for
// byte with what the legacy binary wrote.
//
// When a backend fails, run degrades gracefully down the chain
// generated -> compiled -> interp -> vm, printing the reason for each
// step down; the terminal vm backend re-emulates the binary directly, so
// a correct answer always comes back even when the lift itself fails.
// -strict disables the chain: the first failure is fatal.  A schedule
// set tuned on a different machine class is likewise dropped for
// execution, with the reason printed (re-run `helium tune` to
// re-measure).
//
// -bench times VM emulation against all execution backends (including
// the tuned schedule) over the corpus, sweeps the parallel backends over
// worker counts, and writes a machine-readable JSON report.
//
// The tune subcommand is the autotuner: it races candidate schedules
// (tiles, workers, materialize vs sliding-window fusion) per kernel,
// verifying each candidate bit-exact before timing it, and writes the
// winners to schedules.json; -smoke runs a tiny grid and asserts the
// artifact round-trips, for CI.
//
// The gen subcommand regenerates the internal/liftedkernels package from
// the corpus (true ahead-of-time codegen), embedding the tuned schedules
// as the generated kernels' defaults; -check verifies the checked-in
// package is up to date instead of writing, for CI.
//
// The exit status is nonzero if anything fails to lift, verify, tune or
// regenerate cleanly.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"helium/internal/faultpoint"
	"helium/internal/ir"
	"helium/internal/legacy"
	"helium/internal/lift"
	"helium/internal/liftedkernels"
	"helium/internal/schedule"
	"helium/internal/vm"
)

// The CLI's injectable failures, exercised by the degradation tests and
// the CI fault-injection smoke (HELIUM_FAULTPOINTS=name helium ...).
var (
	// fpGenVerifyFail corrupts one byte of the generated backend's output
	// before verification, modeling a stale internal/liftedkernels.
	fpGenVerifyFail = faultpoint.Register("gen.verify-fail",
		"corrupt one byte of the generated backend's output before verification")
	// fpSchedMismatch treats the loaded schedule set as tuned on a
	// different machine class, forcing the heuristic-default fallback.
	fpSchedMismatch = faultpoint.Register("sched.machine-mismatch",
		"treat the loaded schedule set as tuned on a different machine class")
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "gen" {
		if err := runGen(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "helium: gen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "tune" {
		if err := runTune(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "helium: tune: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var (
		kernelName = flag.String("kernel", "", "lift a single corpus kernel (default: all)")
		width      = flag.Int("width", 40, "image width in pixels")
		height     = flag.Int("height", 24, "image height in pixels")
		seed       = flag.Uint64("seed", 1, "deterministic input pattern seed")
		backend    = flag.String("backend", "compiled", "evaluation backend: interp, compiled or generated")
		workers    = flag.Int("workers", 0, "parallel eval workers (0 = GOMAXPROCS)")
		verbose    = flag.Bool("v", false, "print localization and buffer details")
		list       = flag.Bool("list", false, "list the corpus kernels and exit")
		bench      = flag.Bool("bench", false, "benchmark VM vs all evaluation backends over the corpus")
		benchOut   = flag.String("bench-out", "BENCH_lift.json", "benchmark report path (with -bench)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the bench run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile after the bench run to this file")
		schedPath  = flag.String("schedules", "schedules.json", "tuned schedule set consumed by run/bench (missing file = heuristic defaults)")
		sweep      = flag.String("workers-sweep", "auto", "bench worker-count sweep: comma list or \"auto\" (powers of two up to GOMAXPROCS)")
		strict     = flag.Bool("strict", false, "disable graceful backend degradation: the first backend failure is fatal")
	)
	flag.Parse()

	if *list {
		for _, k := range legacy.Kernels() {
			fmt.Printf("%-10s %s\n", k.Name, k.Description)
		}
		return
	}
	switch *backend {
	case "interp", "compiled", "generated":
	default:
		fmt.Fprintf(os.Stderr, "helium: unknown backend %q (interp, compiled or generated)\n", *backend)
		os.Exit(2)
	}
	if (*cpuProf != "" || *memProf != "") && !*bench {
		fmt.Fprintf(os.Stderr, "helium: -cpuprofile/-memprofile only apply to -bench runs\n")
		os.Exit(2)
	}

	// The pipeline needs images big enough that the output buffer dwarfs
	// the filter's stack traffic and row structure is observable.
	if *width < 12 || *height < 6 || *width > 4096 || *height > 4096 {
		fmt.Fprintf(os.Stderr, "helium: image size %dx%d out of range (min 12x6, max 4096x4096)\n", *width, *height)
		os.Exit(2)
	}

	kernels := legacy.Kernels()
	if *kernelName != "" {
		k, ok := legacy.Lookup(*kernelName)
		if !ok {
			fmt.Fprintf(os.Stderr, "helium: unknown kernel %q (try -list)\n", *kernelName)
			os.Exit(2)
		}
		kernels = []legacy.Kernel{k}
	}

	// run executes under the loaded schedules, so a machine-class mismatch
	// must fall back (or, with -strict, fail); bench only times them and
	// keeps the historical warn-and-apply behavior so its artifact stays
	// comparable across machines.
	scheds, err := loadSchedules(*schedPath, *verbose, !*bench, *strict)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helium: %v\n", err)
		os.Exit(1)
	}
	cfg := legacy.Config{Width: *width, Height: *height, Seed: *seed}
	if *bench {
		if err := runBench(kernels, cfg, *workers, *benchOut, *cpuProf, *memProf, scheds, *sweep); err != nil {
			fmt.Fprintf(os.Stderr, "helium: bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	failed := false
	for _, k := range kernels {
		if err := run(k, cfg, *backend, *workers, *verbose, *strict, scheds.For(k.Name)); err != nil {
			fmt.Fprintf(os.Stderr, "helium: %s: %v\n", k.Name, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// loadSchedules reads the tuned schedule set.  A missing file is fine —
// heuristic defaults apply, the set is an optimization — but a file that
// exists and fails to parse or validate is an error: silently ignoring a
// corrupt schedules.json would bench and generate against defaults while
// claiming to use the tuned set.
//
// A schedule is a measurement only on the machine class that timed it.
// When the set is about to drive execution (forExec) and was tuned
// elsewhere, it is dropped in favor of the heuristic defaults with the
// reason printed — or, under -strict, refused outright.  Analysis
// consumers (gen, bench) keep it with a warning: gen's artifact must not
// depend on the build host, and bench wants cross-machine comparability.
func loadSchedules(path string, verbose, forExec, strict bool) (*schedule.Set, error) {
	set, err := schedule.Load(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			if verbose {
				fmt.Printf("schedules: %s not found; using heuristic defaults\n", path)
			}
			return nil, nil
		}
		return nil, err
	}
	host := schedule.HostMachineKey()
	if set.MatchesMachine(host) && !faultpoint.Enabled(fpSchedMismatch) {
		return set, nil
	}
	if !forExec {
		fmt.Fprintf(os.Stderr, "helium: warning: %s was tuned on machine class %s; this host is %s (re-run `helium tune` to re-measure)\n",
			path, set.Machine, host)
		return set, nil
	}
	if strict {
		return nil, fmt.Errorf("%s was tuned on machine class %s but this host is %s (running -strict: re-run `helium tune`)",
			path, set.Machine, host)
	}
	fmt.Printf("fallback: %s was tuned on machine class %s but this host is %s; using heuristic default schedules (re-run `helium tune` to re-measure)\n",
		path, set.Machine, host)
	return nil, nil
}

func target(inst *legacy.Instance) lift.Target {
	return lift.Target{
		Prog:  inst.Prog,
		Setup: inst.Setup,
		Known: lift.KnownInput{
			Width:       inst.Width,
			Height:      inst.Height,
			Channels:    inst.Channels,
			Interleaved: inst.Interleaved,
			Interior:    inst.InputInterior,
		},
	}
}

// genImage maps a concrete evaluator source onto the generated package's
// flat Image geometry.
func genImage(src ir.Source) (*liftedkernels.Image, bool) {
	switch s := src.(type) {
	case ir.PlaneSource:
		pix, base, stride := s.P.Flat()
		return &liftedkernels.Image{Pix: pix, Base: base, Stride: stride, PixStep: 1}, true
	case ir.InterleavedSource:
		pix, base, stride, pixStep := s.Im.Flat()
		return &liftedkernels.Image{Pix: pix, Base: base, Stride: stride, PixStep: pixStep, ChanStep: 1}, true
	}
	return nil, false
}

// evalGenerated renders a lifted result through the checked-in generated
// package and verifies it against the legacy binary's own output.
func evalGenerated(name string, res *lift.Result) (*liftedkernels.Kernel, []byte, error) {
	gk, ok := liftedkernels.Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("kernel %q is not in internal/liftedkernels (run `helium gen`)", name)
	}
	img, ok := genImage(res.MaterializeInput())
	if !ok {
		return nil, nil, fmt.Errorf("kernel %q input cannot be materialized as a flat image", name)
	}
	w, h := res.EvalDims()
	out, err := gk.Eval(img, w, h)
	if err != nil {
		return nil, nil, fmt.Errorf("generated eval: %w", err)
	}
	if faultpoint.Enabled(fpGenVerifyFail) && len(out) > 0 {
		out = append([]byte(nil), out...)
		out[len(out)/2] ^= 0x40
	}
	want, err := res.VMOutput()
	if err != nil {
		return nil, nil, err
	}
	if !bytes.Equal(out, want) {
		return nil, nil, fmt.Errorf("generated code output differs from the VM's (stale internal/liftedkernels? run `helium gen`)")
	}
	return gk, out, nil
}

// printLifted renders the lifted pipeline: one Halide-like definition per
// stage.
func printLifted(res *lift.Result) {
	for i := range res.Stages {
		st := &res.Stages[i]
		if st.Red != nil {
			fmt.Print(st.Red)
			continue
		}
		fmt.Print(st.Kernel)
	}
}

// backendChain is the graceful-degradation order: the requested backend
// first, then progressively simpler evaluators, ending at direct VM
// emulation — which needs nothing from the lift, so a correct answer is
// always reachable.
func backendChain(backend string) []string {
	switch backend {
	case "generated":
		return []string{"generated", "compiled", "interp", "vm"}
	case "compiled":
		return []string{"compiled", "interp", "vm"}
	default:
		return []string{"interp", "vm"}
	}
}

func run(k legacy.Kernel, cfg legacy.Config, backend string, workers int, verbose, strict bool, tuned *schedule.Schedule) error {
	inst := k.Instantiate(cfg)

	fmt.Printf("=== %s (%s)\n", k.Name, cfg)
	chain := backendChain(backend)
	res, err := lift.Lift(k.Name, target(inst))
	if err != nil {
		if strict {
			return err
		}
		// With no lifted result every evaluator is off the table; only the
		// VM itself can still answer.  That loses everything the lift adds,
		// but the legacy output is still reproduced — and the reason is on
		// record.
		fmt.Printf("fallback: lift failed: %v; degrading to vm\n", err)
		chain, res = []string{"vm"}, nil
	}

	if res != nil {
		if verbose {
			fmt.Printf("localization: filter entry %#x (candidates %#x), coverage %d on / %d off blocks, diff %d\n",
				res.Loc.FilterEntry, res.Loc.Candidates, res.Loc.OnBlocks, res.Loc.OffBlocks, len(res.Loc.Diff))
			fmt.Printf("buffers: input base %#x stride %d; output base %#x stride %d, %dx%d px, %d channel(s)\n",
				res.Bufs.In.Base, res.Bufs.In.Stride,
				res.Bufs.Out.Base, res.Bufs.Out.Stride,
				res.Bufs.Out.Width(), res.Bufs.Out.Rows, res.Bufs.Out.Channels)
			fmt.Printf("trace: %d dynamic instructions (of %d executed), %d KiB dumped, %d sample trees\n",
				res.TraceInsts, res.TraceSteps, res.Dump.Size()/1024, res.Samples)
			line := "phases:"
			for _, pt := range res.PhaseTimes {
				line += fmt.Sprintf(" %s=%s", pt.Phase, pt.Dur.Round(10*time.Microsecond))
			}
			fmt.Println(line)
		}
		printLifted(res)
	}

	for i, be := range chain {
		err := runBackend(be, k, inst, res, workers, verbose, tuned)
		if err == nil {
			return nil
		}
		if strict {
			return fmt.Errorf("%s backend: %w (running -strict: degradation disabled)", be, err)
		}
		if i+1 == len(chain) {
			return fmt.Errorf("every backend failed; last (%s): %w", be, err)
		}
		fmt.Printf("fallback: %s backend failed: %v; degrading to %s\n", be, err, chain[i+1])
	}
	return nil
}

// runBackend verifies one backend and prints its success line.  The
// terminal "vm" backend re-emulates the binary and checks its output
// against the instance's pure-Go reference, needing no lifted result.
func runBackend(be string, k legacy.Kernel, inst *legacy.Instance, res *lift.Result, workers int, verbose bool, tuned *schedule.Schedule) error {
	switch be {
	case "interp":
		if err := res.Verify(); err != nil {
			return err
		}
		fmt.Printf("verified: %d samples pixel-exact (interp backend)\n\n", res.Samples)
	case "compiled":
		ck, err := res.VerifyCompiled(workers)
		if err != nil {
			return err
		}
		if verbose {
			progs := ck.Progs()
			insts, consts, loads := 0, 0, 0
			lanes := make([]int, 0, len(progs))
			for _, p := range progs {
				insts += p.NumInsts()
				consts += p.NumConsts()
				loads += p.NumLoads()
				lanes = append(lanes, p.LaneBits())
			}
			fmt.Printf("compiled: %d instruction(s), %d pooled constant(s), %d tap(s) across %d channel program(s) in %d stage(s), lane bits %v\n",
				insts, consts, loads, len(progs), len(res.Stages), lanes)
		}
		if tuned != nil {
			if err := ck.VerifySchedule(tuned); err != nil {
				return err
			}
			if verbose {
				line := fmt.Sprintf("schedule: tuned [%s] verified", tuned)
				if tuned.FusionKind() == schedule.SlidingWindow {
					if rings, err := ck.RingRows(tuned.WindowRows); err == nil {
						line += fmt.Sprintf(", intermediate ring rows %v", rings)
					}
				}
				fmt.Println(line)
			}
		}
		fmt.Printf("verified: %d samples pixel-exact (compiled backend, serial + %d workers)\n\n",
			res.Samples, ck.Workers(workers))
	case "generated":
		gk, _, err := evalGenerated(k.Name, res)
		if err != nil {
			return err
		}
		if verbose {
			lanes := gk.LaneBits
			for _, st := range gk.Stages {
				lanes = append(lanes, st.LaneBits...)
			}
			fmt.Printf("generated: package liftedkernels kernel %s, lane bits %v\n", gk.Name, lanes)
		}
		fmt.Printf("verified: %d samples pixel-exact (generated Go backend)\n\n", res.Samples)
	case "vm":
		m := vm.NewMachine(inst.Prog)
		inst.Setup(m, true)
		if err := m.Run(0); err != nil {
			return err
		}
		got := inst.ReadOutput(m)
		if !bytes.Equal(got, inst.Reference) {
			return fmt.Errorf("vm output differs from the pure-Go reference (%d samples)", len(got))
		}
		fmt.Printf("verified: %d samples pixel-exact (vm backend, direct emulation)\n\n", len(got))
	default:
		return fmt.Errorf("unknown backend %q", be)
	}
	return nil
}

// runGen regenerates (or, with -check, verifies) the ahead-of-time
// compiled kernel package from the lifted corpus.
func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		out       = fs.String("out", filepath.Join("internal", "liftedkernels"), "output package directory")
		check     = fs.Bool("check", false, "verify the checked-in package matches instead of writing")
		width     = fs.Int("width", 40, "image width the corpus is lifted at")
		height    = fs.Int("height", 24, "image height the corpus is lifted at")
		seed      = fs.Uint64("seed", 1, "deterministic input pattern seed")
		schedPath = fs.String("schedules", "schedules.json", "tuned schedule set embedded as the generated kernels' default")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scheds, err := loadSchedules(*schedPath, false, false, false)
	if err != nil {
		return err
	}
	files, err := GenerateCorpusPackage(legacy.Config{Width: *width, Height: *height, Seed: *seed}, scheds)
	if err != nil {
		return err
	}

	if *check {
		for name, want := range files {
			path := filepath.Join(*out, name)
			got, err := os.ReadFile(path)
			if err != nil {
				return fmt.Errorf("%s: %w (run `helium gen` and commit the result)", path, err)
			}
			if !bytes.Equal(got, []byte(want)) {
				return fmt.Errorf("%s is stale: run `helium gen` and commit the result", path)
			}
		}
		fmt.Printf("gen: %d file(s) in %s are up to date\n", len(files), *out)
		return nil
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for name, content := range files {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("gen: wrote %s (%d bytes)\n", path, len(content))
	}
	return nil
}

// GenerateCorpusPackage lifts every corpus kernel at the given config and
// renders the liftedkernels package sources: file name -> content.  The
// tuned schedule set (nil = none) is embedded as each kernel's default
// schedule.
func GenerateCorpusPackage(cfg legacy.Config, scheds *schedule.Set) (map[string]string, error) {
	var units []ir.GenKernel
	for _, k := range legacy.Kernels() {
		inst := k.Instantiate(cfg)
		res, err := lift.Lift(k.Name, target(inst))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		u := ir.GenKernel{Name: k.Name, Sched: scheds.For(k.Name)}
		for i := range res.Stages {
			st := &res.Stages[i]
			if st.Red != nil {
				u.Red = st.Red
				// A reduction anywhere but last feeds later stages its
				// serialized table instead of ending the pipeline.
				u.RedFirst = i < len(res.Stages)-1
			} else {
				u.Stages = append(u.Stages, st.Kernel)
			}
		}
		units = append(units, u)
	}
	src, err := ir.GenerateUnits("liftedkernels", units)
	if err != nil {
		return nil, err
	}
	return map[string]string{
		"runtime.go": ir.GenerateRuntime("liftedkernels"),
		"kernels.go": src,
	}, nil
}

// benchEntry is one kernel's timing row in the JSON report.
type benchEntry struct {
	Kernel      string             `json:"kernel"`
	Width       int                `json:"width"`
	Height      int                `json:"height"`
	Samples     int                `json:"samples"`
	NsPerSample map[string]float64 `json:"ns_per_sample"`
	Speedup     map[string]float64 `json:"speedup_vs_interp"`
	// LiftPhases is the one-time lift cost split by pipeline phase, in
	// milliseconds (localize, trace, extract, ... verify, compile) — the
	// "how long until this binary serves" half of the report, next to the
	// steady-state ns_per_sample half.
	LiftPhases map[string]float64 `json:"lift_phases,omitempty"`
	// Schedule is the tuned schedule the "scheduled" backend ran (JSON of
	// schedule.Schedule; omitted for reduction-only kernels).
	Schedule *schedule.Schedule `json:"schedule,omitempty"`
	// Sweeps maps the GOMAXPROCS value the sweep ran under to worker-count
	// rows of per-backend ns/sample — scaling curves keyed by the
	// parallelism actually available, so a 1-core container's flat curve
	// is never mistaken for a multi-core measurement.
	Sweeps map[string]map[string]map[string]float64 `json:"sweeps_by_gomaxprocs,omitempty"`
}

// benchReport is the whole machine-readable benchmark artifact.
type benchReport struct {
	Config   string       `json:"config"`
	MaxProcs int          `json:"gomaxprocs"`
	CPUs     int          `json:"cpus"`
	Machine  string       `json:"machine"`
	Workers  int          `json:"workers"`
	Kernels  []benchEntry `json:"kernels"`
}

// benchBackends is the timing matrix, in report order: VM emulation, the
// tree-walking interpreter, the serial row-vectorized register executor,
// the cache-blocked tiled parallel driver, the tiled driver under the
// tuned schedule, and the ahead-of-time generated Go code
// (single-threaded).
var benchBackends = []string{"vm", "interp", "compiled", "compiled-tiled", "scheduled", "generated"}

// sweepWorkers parses the -workers-sweep flag: a comma list of counts, or
// "auto" for powers of two up to GOMAXPROCS (always including GOMAXPROCS
// itself).
func sweepWorkers(spec string) ([]int, error) {
	maxp := runtime.GOMAXPROCS(0)
	var out []int
	seen := map[int]bool{}
	add := func(w int) {
		if w >= 1 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	if spec == "auto" || spec == "" {
		for w := 1; w <= maxp; w *= 2 {
			add(w)
		}
		add(maxp)
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers-sweep entry %q", part)
		}
		add(w)
	}
	sort.Ints(out)
	return out, nil
}

// timeIt measures fn's steady-state nanoseconds per call: after one
// warmup call, three measurement rounds of at least two iterations and
// ~15ms each, keeping the fastest round.  The minimum across rounds is
// far more robust to scheduler and thermal noise on a shared machine than
// one long mean, which matters because the committed baseline asserts
// cross-backend orderings.
func timeIt(fn func() error) (float64, error) {
	const (
		rounds   = 3
		minIters = 2
		minTime  = 15 * time.Millisecond
	)
	if err := fn(); err != nil {
		return 0, err
	}
	best := math.Inf(1)
	for r := 0; r < rounds; r++ {
		iters := 0
		start := time.Now()
		for {
			if err := fn(); err != nil {
				return 0, err
			}
			iters++
			if iters >= minIters && time.Since(start) >= minTime {
				break
			}
		}
		if ns := float64(time.Since(start).Nanoseconds()) / float64(iters); ns < best {
			best = ns
		}
	}
	return best, nil
}

// runBench lifts each kernel once, verifies every backend, then times VM
// emulation, the tree-walking interpreter, the compiled backend (serial,
// cache-blocked parallel, and under the tuned schedule), and the
// generated Go code over the same image, writing ns-per-sample per kernel
// per backend — plus a worker-count sweep of the parallel backends — to
// the JSON report.
func runBench(kernels []legacy.Kernel, cfg legacy.Config, workers int, outPath, cpuProf, memProf string, scheds *schedule.Set, sweepSpec string) error {
	sweep, err := sweepWorkers(sweepSpec)
	if err != nil {
		return err
	}
	if cpuProf != "" {
		f, err := os.Create(cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	report := benchReport{
		Config:   cfg.String(),
		MaxProcs: runtime.GOMAXPROCS(0),
		CPUs:     runtime.NumCPU(),
		Machine:  schedule.HostMachineKey(),
	}
	for _, k := range kernels {
		inst := k.Instantiate(cfg)
		res, err := lift.Lift(k.Name, target(inst))
		if err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}
		if err := res.Verify(); err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}
		ck, err := res.VerifyCompiled(workers)
		if err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}
		gk, _, err := evalGenerated(k.Name, res)
		if err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}
		src := res.MaterializeInput()
		img, _ := genImage(src)
		outW, outH := res.EvalDims()
		want, err := res.VMOutput()
		if err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}
		samples := len(want)
		report.Workers = ck.Workers(workers)

		tuned := scheds.For(k.Name)
		if tuned == nil {
			tuned = schedule.Default()
		}
		if err := ck.VerifySchedule(tuned); err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}

		m := vm.NewMachine(inst.Prog)
		runs := map[string]func() error{
			"vm": func() error {
				inst.Setup(m, true)
				return m.Run(0)
			},
			"interp": func() error {
				_, err := res.EvalIRAt(src, outW, outH)
				return err
			},
			"compiled": func() error {
				_, err := ck.EvalAt(src, outW, outH)
				return err
			},
			"compiled-tiled": func() error {
				_, err := ck.EvalParallelAt(src, outW, outH, workers)
				return err
			},
			"scheduled": func() error {
				_, err := ck.EvalScheduledAt(src, outW, outH, tuned)
				return err
			},
			"generated": func() error {
				_, err := gk.Eval(img, outW, outH)
				return err
			},
		}
		// Reductions have no register-program form: their compiled chain is
		// the reduction evaluator itself, so only the honest backends are
		// timed.
		backends := benchBackends
		isRed := res.Reduction != nil && res.Kernel == nil
		if isRed {
			backends = []string{"vm", "interp", "generated"}
		}
		entry := benchEntry{
			Kernel:      k.Name,
			Width:       cfg.Width,
			Height:      cfg.Height,
			Samples:     samples,
			NsPerSample: make(map[string]float64),
			Speedup:     make(map[string]float64),
			LiftPhases:  make(map[string]float64),
		}
		// res carries the spans of every phase run so far: the lift
		// pipeline itself plus the Verify and VerifyCompiled calls above.
		for _, pt := range res.PhaseTimes {
			entry.LiftPhases[string(pt.Phase)] += float64(pt.Dur.Nanoseconds()) / 1e6
		}
		if !isRed {
			entry.Schedule = tuned
		}
		for _, name := range backends {
			ns, err := timeIt(runs[name])
			if err != nil {
				return fmt.Errorf("%s/%s: %w", k.Name, name, err)
			}
			entry.NsPerSample[name] = ns / float64(samples)
		}
		// Worker sweep: the parallel backends re-timed at each worker
		// count, keyed by the GOMAXPROCS the sweep ran under — scaling
		// curves only when the machine has the cores (a 1-core container's
		// curve is flat and honestly labeled "1").
		if !isRed {
			gsc := new(liftedkernels.Scratch)
			rows := map[string]map[string]float64{}
			for _, w := range sweep {
				row := map[string]float64{}
				ns, err := timeIt(func() error {
					_, err := ck.EvalParallelAt(src, outW, outH, w)
					return err
				})
				if err != nil {
					return fmt.Errorf("%s/compiled-tiled@%d: %w", k.Name, w, err)
				}
				row["compiled-tiled"] = ns / float64(samples)
				wsc := *tuned
				wsc.Workers = w
				ns, err = timeIt(func() error {
					_, err := ck.EvalScheduledAt(src, outW, outH, &wsc)
					return err
				})
				if err != nil {
					return fmt.Errorf("%s/scheduled@%d: %w", k.Name, w, err)
				}
				row["scheduled"] = ns / float64(samples)
				gspec := liftedkernels.ScheduleSpec{Workers: w, Fusion: gk.Sched.Fusion, WindowRows: gk.Sched.WindowRows, Stages: gk.Sched.Stages}
				ns, err = timeIt(func() error {
					_, err := gk.EvalInto(gsc, img, outW, outH, gspec)
					return err
				})
				if err != nil {
					return fmt.Errorf("%s/generated@%d: %w", k.Name, w, err)
				}
				row["generated"] = ns / float64(samples)
				rows[fmt.Sprint(w)] = row
			}
			entry.Sweeps = map[string]map[string]map[string]float64{
				fmt.Sprint(report.MaxProcs): rows,
			}
		}
		base := entry.NsPerSample["interp"]
		for name, ns := range entry.NsPerSample {
			if ns > 0 {
				entry.Speedup[name] = base / ns
			}
		}
		report.Kernels = append(report.Kernels, entry)
		genVsCompiled := 0.0
		if g := entry.NsPerSample["generated"]; g > 0 {
			genVsCompiled = entry.NsPerSample["compiled"] / g
		}
		fmt.Printf("%-10s %7d samples   vm %9.1f   interp %7.2f   compiled %6.2f   tiled %6.2f   scheduled %6.2f   generated %6.2f  ns/sample  (generated %0.1fx interp, %0.1fx compiled)\n",
			k.Name, samples,
			entry.NsPerSample["vm"], entry.NsPerSample["interp"],
			entry.NsPerSample["compiled"], entry.NsPerSample["compiled-tiled"],
			entry.NsPerSample["scheduled"],
			entry.NsPerSample["generated"],
			entry.Speedup["generated"], genVsCompiled)
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)

	if memProf != "" {
		f, err := os.Create(memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
