// Command helium runs the lifting pipeline end to end against the legacy
// corpus: it executes a kernel under the tracing VM, localizes the filter
// by coverage diffing, reconstructs the buffer structure, extracts and
// canonicalizes per-pixel expression trees, prints the lifted Halide-like
// IR, and verifies the chosen backend pixel-exactly against the binary's
// own output.
//
// Usage:
//
//	helium [-kernel name] [-width N] [-height N] [-seed N] [-v]
//	       [-backend interp|compiled] [-workers N]
//	helium -bench [-bench-out BENCH_lift.json]
//
// With no -kernel, every corpus kernel is lifted.  The default backend
// compiles the lifted trees to register programs and evaluates them both
// serially and with the parallel row-strip driver; -backend interp selects
// the tree-walking evaluator.  Either way the output is compared byte for
// byte with what the legacy binary wrote.  -bench times VM emulation
// against both backends over the corpus and writes a machine-readable
// JSON report.  The exit status is nonzero if anything fails to lift or
// verify.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"helium/internal/legacy"
	"helium/internal/lift"
	"helium/internal/vm"
)

func main() {
	var (
		kernelName = flag.String("kernel", "", "lift a single corpus kernel (default: all)")
		width      = flag.Int("width", 40, "image width in pixels")
		height     = flag.Int("height", 24, "image height in pixels")
		seed       = flag.Uint64("seed", 1, "deterministic input pattern seed")
		backend    = flag.String("backend", "compiled", "evaluation backend: interp or compiled")
		workers    = flag.Int("workers", 0, "parallel eval workers (0 = GOMAXPROCS)")
		verbose    = flag.Bool("v", false, "print localization and buffer details")
		list       = flag.Bool("list", false, "list the corpus kernels and exit")
		bench      = flag.Bool("bench", false, "benchmark VM vs interp vs compiled over the corpus")
		benchOut   = flag.String("bench-out", "BENCH_lift.json", "benchmark report path (with -bench)")
	)
	flag.Parse()

	if *list {
		for _, k := range legacy.Kernels() {
			fmt.Printf("%-10s %s\n", k.Name, k.Description)
		}
		return
	}
	if *backend != "interp" && *backend != "compiled" {
		fmt.Fprintf(os.Stderr, "helium: unknown backend %q (interp or compiled)\n", *backend)
		os.Exit(2)
	}

	// The pipeline needs images big enough that the output buffer dwarfs
	// the filter's stack traffic and row structure is observable.
	if *width < 12 || *height < 6 || *width > 4096 || *height > 4096 {
		fmt.Fprintf(os.Stderr, "helium: image size %dx%d out of range (min 12x6, max 4096x4096)\n", *width, *height)
		os.Exit(2)
	}

	kernels := legacy.Kernels()
	if *kernelName != "" {
		k, ok := legacy.Lookup(*kernelName)
		if !ok {
			fmt.Fprintf(os.Stderr, "helium: unknown kernel %q (try -list)\n", *kernelName)
			os.Exit(2)
		}
		kernels = []legacy.Kernel{k}
	}

	cfg := legacy.Config{Width: *width, Height: *height, Seed: *seed}
	if *bench {
		if err := runBench(kernels, cfg, *workers, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "helium: bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	failed := false
	for _, k := range kernels {
		if err := run(k, cfg, *backend, *workers, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "helium: %s: %v\n", k.Name, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func target(inst *legacy.Instance) lift.Target {
	return lift.Target{
		Prog:  inst.Prog,
		Setup: inst.Setup,
		Known: lift.KnownInput{
			Width:       inst.Width,
			Height:      inst.Height,
			Channels:    inst.Channels,
			Interleaved: inst.Interleaved,
			Interior:    inst.InputInterior,
		},
	}
}

func run(k legacy.Kernel, cfg legacy.Config, backend string, workers int, verbose bool) error {
	inst := k.Instantiate(cfg)

	fmt.Printf("=== %s (%s)\n", k.Name, cfg)
	res, err := lift.Lift(k.Name, target(inst))
	if err != nil {
		return err
	}

	if verbose {
		fmt.Printf("localization: filter entry %#x (candidates %#x), coverage %d on / %d off blocks, diff %d\n",
			res.Loc.FilterEntry, res.Loc.Candidates, res.Loc.OnBlocks, res.Loc.OffBlocks, len(res.Loc.Diff))
		fmt.Printf("buffers: input base %#x stride %d; output base %#x stride %d, %dx%d px, %d channel(s)\n",
			res.Bufs.In.Base, res.Bufs.In.Stride,
			res.Bufs.Out.Base, res.Bufs.Out.Stride,
			res.Bufs.Out.Width(), res.Bufs.Out.Rows, res.Bufs.Out.Channels)
		fmt.Printf("trace: %d dynamic instructions (of %d executed), %d KiB dumped, %d sample trees\n",
			res.TraceInsts, res.TraceSteps, res.Dump.Size()/1024, res.Samples)
	}

	fmt.Print(res.Kernel)
	switch backend {
	case "interp":
		if err := res.Verify(); err != nil {
			return err
		}
		fmt.Printf("verified: %d samples pixel-exact (interp backend)\n\n", res.Samples)
	case "compiled":
		ck, err := res.VerifyCompiled(workers)
		if err != nil {
			return err
		}
		if verbose {
			insts, consts, loads := 0, 0, 0
			for _, p := range ck.Progs {
				insts += p.NumInsts()
				consts += p.NumConsts()
				loads += p.NumLoads()
			}
			fmt.Printf("compiled: %d instruction(s), %d pooled constant(s), %d tap(s) across %d channel program(s)\n",
				insts, consts, loads, len(ck.Progs))
		}
		fmt.Printf("verified: %d samples pixel-exact (compiled backend, serial + %d workers)\n\n",
			res.Samples, ck.Workers(workers))
	}
	return nil
}

// benchEntry is one kernel's timing row in the JSON report.
type benchEntry struct {
	Kernel      string             `json:"kernel"`
	Width       int                `json:"width"`
	Height      int                `json:"height"`
	Samples     int                `json:"samples"`
	NsPerSample map[string]float64 `json:"ns_per_sample"`
	Speedup     map[string]float64 `json:"speedup_vs_interp"`
}

// benchReport is the whole machine-readable benchmark artifact.
type benchReport struct {
	Config   string       `json:"config"`
	MaxProcs int          `json:"gomaxprocs"`
	Workers  int          `json:"workers"`
	Kernels  []benchEntry `json:"kernels"`
}

// timeIt measures fn's steady-state nanoseconds per call: at least three
// iterations and at least ~40ms of wall time.
func timeIt(fn func() error) (float64, error) {
	const (
		minIters = 3
		minTime  = 40 * time.Millisecond
	)
	iters := 0
	start := time.Now()
	for {
		if err := fn(); err != nil {
			return 0, err
		}
		iters++
		if iters >= minIters && time.Since(start) >= minTime {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

// runBench lifts each kernel once, verifies both backends, then times VM
// emulation, the tree-walking interpreter and the compiled backend (serial
// and parallel) over the same image, writing ns-per-sample per kernel per
// backend to the JSON report.
func runBench(kernels []legacy.Kernel, cfg legacy.Config, workers int, outPath string) error {
	report := benchReport{
		Config:   cfg.String(),
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, k := range kernels {
		inst := k.Instantiate(cfg)
		res, err := lift.Lift(k.Name, target(inst))
		if err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}
		if err := res.Verify(); err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}
		ck, err := res.VerifyCompiled(workers)
		if err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}
		src := res.MaterializeInput()
		samples := res.Kernel.OutWidth * res.Kernel.OutHeight * res.Kernel.Channels
		report.Workers = ck.Workers(workers)

		m := vm.NewMachine(inst.Prog)
		runs := map[string]func() error{
			"vm": func() error {
				inst.Setup(m, true)
				return m.Run(0)
			},
			"interp": func() error {
				_, err := res.Kernel.Eval(src)
				return err
			},
			"compiled": func() error {
				_, err := ck.Eval(src)
				return err
			},
			"compiled-parallel": func() error {
				_, err := ck.EvalParallel(src, workers)
				return err
			},
		}
		entry := benchEntry{
			Kernel:      k.Name,
			Width:       cfg.Width,
			Height:      cfg.Height,
			Samples:     samples,
			NsPerSample: make(map[string]float64),
			Speedup:     make(map[string]float64),
		}
		for _, name := range []string{"vm", "interp", "compiled", "compiled-parallel"} {
			ns, err := timeIt(runs[name])
			if err != nil {
				return fmt.Errorf("%s/%s: %w", k.Name, name, err)
			}
			entry.NsPerSample[name] = ns / float64(samples)
		}
		base := entry.NsPerSample["interp"]
		for name, ns := range entry.NsPerSample {
			if ns > 0 {
				entry.Speedup[name] = base / ns
			}
		}
		report.Kernels = append(report.Kernels, entry)
		fmt.Printf("%-10s %7d samples   vm %9.1f   interp %7.2f   compiled %6.2f   parallel %6.2f  ns/sample  (compiled %0.1fx)\n",
			k.Name, samples,
			entry.NsPerSample["vm"], entry.NsPerSample["interp"],
			entry.NsPerSample["compiled"], entry.NsPerSample["compiled-parallel"],
			entry.Speedup["compiled"])
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
