// The autotuner: search the schedule space per corpus kernel and commit
// the winners.  This is the practical payoff of the algorithm/schedule
// split — the lifted kernel fixes WHAT to compute, `helium tune` measures
// candidate strategies (tile extents, worker counts, lane widths,
// materialize vs sliding-window fusion) and records the fastest one in
// schedules.json, which `helium run`, `helium -bench`, `helium gen` and
// the generated package then consume.  The heuristic default is always
// candidate zero, so a tuned schedule is never slower than the previous
// hard-coded strategy on the machine that tuned it.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"runtime"
	"time"

	"helium/internal/legacy"
	"helium/internal/lift"
	"helium/internal/schedule"
)

// tuneResult is one kernel's tuning outcome, for reporting.
type tuneResult struct {
	kernel            string
	sched             *schedule.Schedule
	bestNs, defaultNs float64
	candidates        int
	pruned            int
}

// runTune benchmarks candidate schedules for every corpus kernel and
// writes the winners to a schedules.json set.
func runTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	var (
		out        = fs.String("out", "schedules.json", "schedule set output path")
		smoke      = fs.Bool("smoke", false, "tiny candidate grid for CI; asserts the written set round-trips")
		width      = fs.Int("width", 256, "image width candidates are timed at")
		height     = fs.Int("height", 192, "image height candidates are timed at")
		seed       = fs.Uint64("seed", 1, "deterministic input pattern seed")
		maxWorkers = fs.Int("max-workers", 0, "cap of the worker-count search (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicitSize := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "width" || f.Name == "height" {
			explicitSize = true
		}
	})
	cfg := legacy.Config{Width: *width, Height: *height, Seed: *seed}
	if *smoke && !explicitSize {
		// Smoke mode shrinks the default geometry for CI speed, but an
		// explicitly requested size wins.
		cfg = legacy.Config{Width: 48, Height: 32, Seed: *seed}
	}
	fmt.Printf("tuning at %s\n", cfg)

	set := &schedule.Set{
		Config:     cfg.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Machine:    schedule.HostMachineKey(),
		Kernels:    map[string]*schedule.Schedule{},
	}
	var results []tuneResult
	for _, k := range legacy.Kernels() {
		r, err := tuneKernel(k, cfg, *smoke, *maxWorkers)
		if err != nil {
			return fmt.Errorf("%s: %w", k.Name, err)
		}
		set.Kernels[k.Name] = r.sched
		results = append(results, *r)
		fmt.Printf("%-10s %3d candidate(s), %2d pruned   best %8.2f ns/sample (default %8.2f, %0.2fx)   %s\n",
			r.kernel, r.candidates, r.pruned, r.bestNs, r.defaultNs, r.defaultNs/max64f(r.bestNs, 1e-9), r.sched)
	}

	if err := set.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d kernels)\n", *out, len(set.Kernels))

	// Round-trip assertion: the written artifact must load and validate,
	// and cover the whole corpus — the smoke gate CI runs.
	loaded, err := schedule.Load(*out)
	if err != nil {
		return fmt.Errorf("round-trip: %w", err)
	}
	for _, k := range legacy.Kernels() {
		if loaded.For(k.Name) == nil {
			return fmt.Errorf("round-trip: kernel %s missing from %s", k.Name, *out)
		}
	}
	if *smoke {
		fmt.Println("tune: smoke round-trip OK")
	}
	return nil
}

func max64f(v, lo float64) float64 {
	if v < lo {
		return lo
	}
	return v
}

// tuneKernel lifts one kernel, verifies it, and races the candidate grid.
// maxWorkers caps the worker-count search; 0 searches up to GOMAXPROCS.
func tuneKernel(k legacy.Kernel, cfg legacy.Config, smoke bool, maxWorkers int) (*tuneResult, error) {
	inst := k.Instantiate(cfg)
	res, err := lift.Lift(k.Name, target(inst))
	if err != nil {
		return nil, err
	}
	c, err := res.VerifyCompiled(0)
	if err != nil {
		return nil, err
	}

	// Reduction-only pipelines have no schedulable stencil work: the
	// scatter update runs serially whatever the schedule says, so the
	// default schedule is recorded as-is.
	onlyReductions := true
	for i := range res.Stages {
		if res.Stages[i].Kernel != nil {
			onlyReductions = false
		}
	}
	outW, outH := res.EvalDims()
	if onlyReductions {
		sc := schedule.Default()
		src := res.MaterializeInput()
		ns, err := timeIt(func() error {
			_, err := c.EvalScheduledAt(src, outW, outH, sc)
			return err
		})
		if err != nil {
			return nil, err
		}
		perSample := ns / float64(outW*outH)
		return &tuneResult{kernel: k.Name, sched: sc, bestNs: perSample, defaultNs: perSample, candidates: 1}, nil
	}

	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	opts := schedule.GridOpts{
		Stages:     1,
		OutW:       outW,
		OutH:       outH,
		MaxWorkers: maxWorkers,
		Smoke:      smoke,
	}
	if c.Fusable() {
		opts.Stages = len(res.Stages)
		if rings, err := c.RingRows(0); err == nil && len(rings) > 0 {
			// The smallest per-gap window: candidates at or below it are
			// minimal on every gap (see GridOpts.MinWindow).
			opts.MinWindow = rings[0]
			for _, r := range rings[1:] {
				opts.MinWindow = min(opts.MinWindow, r)
			}
		}
	}
	grid := schedule.Grid(opts)

	src := res.MaterializeInput()
	want, err := res.VMOutput()
	if err != nil {
		return nil, err
	}
	samples := float64(len(want))

	r := &tuneResult{kernel: k.Name, candidates: len(grid)}
	for i, cand := range grid {
		if err := cand.Validate(len(res.Stages)); err != nil {
			return nil, fmt.Errorf("candidate %s: %w", cand, err)
		}
		run := func() error {
			got, err := c.EvalScheduledAt(src, outW, outH, cand)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("schedule %s changed the output", cand)
			}
			return nil
		}
		// Early pruning: one quick probe; a candidate already far behind
		// the leader is not worth steady-state timing.
		start := time.Now()
		if err := run(); err != nil {
			return nil, err
		}
		// r.sched is nil until the first candidate is timed, so the
		// default (candidate zero) is never pruned.
		quick := float64(time.Since(start).Nanoseconds())
		if r.sched != nil && quick > 1.8*r.bestNs*samples {
			r.pruned++
			continue
		}
		ns, err := timeIt(run)
		if err != nil {
			return nil, err
		}
		perSample := ns / samples
		if i == 0 {
			r.defaultNs = perSample
		}
		if r.sched == nil || perSample < r.bestNs {
			r.sched, r.bestNs = cand, perSample
		}
	}
	return r, nil
}
