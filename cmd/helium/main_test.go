package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"helium/internal/legacy"
	"helium/internal/schedule"
)

// repoRoot locates the repository root relative to this package.
func repoRoot() string { return filepath.Join("..", "..") }

// repoSchedules loads the committed tuned schedule set.
func repoSchedules(t *testing.T) *schedule.Set {
	t.Helper()
	set, err := schedule.Load(filepath.Join(repoRoot(), "schedules.json"))
	if err != nil {
		t.Fatalf("committed schedules.json missing or invalid: %v (run `helium tune`)", err)
	}
	return set
}

// TestSchedulesCoverCorpus asserts the committed autotuner artifact
// parses, names the tuning machine, and holds a valid schedule for every
// corpus kernel.
func TestSchedulesCoverCorpus(t *testing.T) {
	set := repoSchedules(t)
	if set.Config == "" || set.GoMaxProcs < 1 || set.Machine == "" {
		t.Fatalf("schedules.json header incomplete: %+v", set)
	}
	for _, k := range legacy.Kernels() {
		sc := set.For(k.Name)
		if sc == nil {
			t.Errorf("schedules.json is missing corpus kernel %q", k.Name)
			continue
		}
		if err := sc.Validate(8); err != nil {
			t.Errorf("%s: committed schedule invalid: %v", k.Name, err)
		}
	}
	if len(set.Kernels) != len(legacy.Kernels()) {
		t.Errorf("schedules.json holds %d kernels, corpus has %d", len(set.Kernels), len(legacy.Kernels()))
	}
}

// TestBenchBaselineCoversCorpus asserts the committed benchmark baseline
// parses, covers every corpus kernel with every backend, and preserves the
// headline property of the source backend: generated Go beats the
// row-vectorized register executor single-threaded on every kernel.
func TestBenchBaselineCoversCorpus(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(repoRoot(), "BENCH_lift.json"))
	if err != nil {
		t.Fatalf("committed benchmark baseline missing: %v (run `helium -bench -bench-out BENCH_lift.json`)", err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_lift.json does not parse: %v", err)
	}
	if report.Config == "" || report.MaxProcs < 1 || report.Workers < 1 {
		t.Fatalf("BENCH_lift.json header incomplete: %+v", report)
	}
	byName := map[string]benchEntry{}
	for _, e := range report.Kernels {
		byName[e.Kernel] = e
	}
	// Reductions have no register-program backends; the bench times only
	// the honest three for them.
	reductionBackends := map[string][]string{
		"hist256": {"vm", "interp", "generated"},
	}
	for _, k := range legacy.Kernels() {
		e, ok := byName[k.Name]
		if !ok {
			t.Errorf("baseline is missing corpus kernel %q", k.Name)
			continue
		}
		if e.Samples <= 0 {
			t.Errorf("%s: nonpositive sample count %d", k.Name, e.Samples)
		}
		backends, isRed := reductionBackends[k.Name], false
		if backends == nil {
			backends = benchBackends
		} else {
			isRed = true
		}
		for _, backend := range backends {
			ns, ok := e.NsPerSample[backend]
			if !ok || ns <= 0 {
				t.Errorf("%s: backend %q missing or nonpositive in baseline", k.Name, backend)
			}
		}
		// Every entry records the one-time lift cost split by phase; the
		// load-bearing phases can never be free.
		if len(e.LiftPhases) == 0 {
			t.Errorf("%s: baseline entry has no lift_phases", k.Name)
		}
		for _, phase := range []string{"localize", "trace", "verify", "compile"} {
			if ms, ok := e.LiftPhases[phase]; !ok || ms <= 0 {
				t.Errorf("%s: lift phase %q missing or nonpositive in baseline", k.Name, phase)
			}
		}
		if isRed {
			continue
		}
		if gen, comp := e.NsPerSample["generated"], e.NsPerSample["compiled"]; gen >= comp {
			t.Errorf("%s: generated backend (%.2f ns/sample) does not beat the register executor (%.2f ns/sample)",
				k.Name, gen, comp)
		}
		// The autotuned schedule must never lose to the previous
		// hard-coded strategy (the heuristic tiled driver); 10%% headroom
		// absorbs measurement noise between the two timings.
		if sched, tiled := e.NsPerSample["scheduled"], e.NsPerSample["compiled-tiled"]; sched > tiled*1.10 {
			t.Errorf("%s: tuned schedule (%.2f ns/sample) is slower than the hard-coded strategy (%.2f ns/sample)",
				k.Name, sched, tiled)
		}
		if e.Schedule == nil {
			t.Errorf("%s: baseline entry records no schedule", k.Name)
		}
		if len(e.Sweeps) == 0 {
			t.Errorf("%s: baseline entry has no worker sweeps", k.Name)
		}
		for gmpStr, rows := range e.Sweeps {
			gmp, err := strconv.Atoi(gmpStr)
			if err != nil || gmp < 1 {
				t.Errorf("%s: bad sweep gomaxprocs key %q", k.Name, gmpStr)
				continue
			}
			if len(rows) == 0 {
				t.Errorf("%s: sweep under gomaxprocs %d is empty", k.Name, gmp)
				continue
			}
			for wStr, row := range rows {
				if w, err := strconv.Atoi(wStr); err != nil || w < 1 {
					t.Errorf("%s: bad sweep worker key %q", k.Name, wStr)
				}
				for _, backend := range []string{"compiled-tiled", "scheduled", "generated"} {
					if ns, ok := row[backend]; !ok || ns <= 0 {
						t.Errorf("%s: sweep %s@%s: backend %q missing or nonpositive", k.Name, gmpStr, wStr, backend)
					}
				}
			}
			// Scaling is only assertable when the sweep actually had the
			// cores: a 1-core container's curve is honestly flat, and a
			// sweep oversubscribed past the physical CPUs proves nothing.
			if gmp < 2 || gmp > report.CPUs {
				continue
			}
			base, ok := rows["1"]
			if !ok {
				t.Errorf("%s: multi-core sweep under gomaxprocs %d lacks the 1-worker row", k.Name, gmp)
				continue
			}
			scaled := false
			for wStr, row := range rows {
				if w, _ := strconv.Atoi(wStr); w >= 2 && row["generated"] > 0 && row["generated"] < base["generated"] {
					scaled = true
				}
			}
			if !scaled {
				t.Errorf("%s: generated backend shows no >1x scaling at 2+ workers under gomaxprocs %d", k.Name, gmp)
			}
		}
	}
	if len(byName) != len(legacy.Kernels()) {
		t.Errorf("baseline holds %d kernels, corpus has %d", len(byName), len(legacy.Kernels()))
	}
}

// TestGeneratedPackageUpToDate regenerates the liftedkernels sources
// in-memory and diffs them against the checked-in files, so any drift
// between the lifting pipeline and the committed generated code fails
// tier-1 — not just the CI gen-check job.
func TestGeneratedPackageUpToDate(t *testing.T) {
	files, err := GenerateCorpusPackage(legacy.Config{Width: 40, Height: 24, Seed: 1}, repoSchedules(t))
	if err != nil {
		t.Fatalf("GenerateCorpusPackage: %v", err)
	}
	for name, want := range files {
		path := filepath.Join(repoRoot(), "internal", "liftedkernels", name)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `helium gen` and commit the result)", path, err)
		}
		if string(got) != want {
			t.Errorf("%s is stale: run `helium gen` and commit the result", path)
		}
	}
}
